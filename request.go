package cssi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// SearchRequest describes one k-NN query against any index flavor —
// *Index, *ConcurrentIndex, or *ShardedIndex — through the single Do
// entry point. The zero value of every optional field means "off", so
// the minimal request is SearchRequest{Query: q, K: k, Lambda: λ}.
//
// Do subsumes the legacy Search* variants (Search, SearchStats,
// SearchInto, SearchApprox*, SearchExplain, SearchWithKeywords): each
// knob that used to be its own method is one field here, and the knobs
// compose — e.g. Approx+Dst+Stats is one request instead of a missing
// method. Two combinations are rejected with ErrUnsupportedRequest
// because no sound implementation exists: Keywords with Approx (the
// keyword path is exact by construction) and Keywords with
// Explain/Trace (the brute-force arm of the keyword path bypasses the
// instrumented cluster scan).
type SearchRequest struct {
	// Query is the query object; only X, Y and Vec are consulted. Must
	// be non-nil with a vector of the index's dimensionality (panics
	// otherwise, matching the legacy entry points' contract for
	// programmer errors).
	Query *Object
	// K is the number of neighbors (must be >= 1).
	K int
	// Lambda weighs the spatial vs semantic distance, in [0,1].
	Lambda float64
	// Approx selects the approximate CSSIA algorithm instead of exact
	// CSSI.
	Approx bool
	// Quant selects how the SQ8 quantized arena participates. The zero
	// value (QuantAuto) applies the exactness-preserving quantized
	// filter wherever the index has an arena; QuantOff forces the pure
	// float32 path; QuantOnly answers from the quantized arena with a
	// final exact rerank — approximate by construction, so it requires
	// Approx (rejected with ErrUnsupportedRequest otherwise). The
	// keyword path ignores Quant (it is exact regardless).
	Quant QuantMode
	// QuantRerank tunes the QuantOnly overfetch: the exact rerank pool
	// holds QuantRerank·K candidates (<= 0 selects DefaultQuantRerank;
	// larger is more accurate and slower). Ignored outside QuantOnly.
	QuantRerank int
	// Route engages the learned cluster router trained at Build time.
	// On an exact request it only re-prioritizes the cluster visit order
	// (the admissible bound still decides every cut), so results stay
	// bit-identical to an unrouted exact search; with Approx it switches
	// to the routed approximate mode that visits clusters in predicted
	// relevance order until RouteTarget's probability mass is covered.
	// Silently ignored when the index has no trained router (tiny
	// indexes skip training). The keyword path ignores Route.
	Route bool
	// RouteTarget is the routed approximate mode's recall knob: the
	// fraction of total predicted probability mass that must be covered
	// before the scan stops, in (0,1]. <= 0 selects DefaultRouteTarget;
	// values above 1 behave as 1 (visit everything). Ignored unless both
	// Route and Approx are set.
	RouteTarget float64
	// Keywords, when non-empty, restricts results to objects whose text
	// contains every keyword (boolean AND, stop words ignored).
	// Requires EnableKeywordFilter (panics otherwise, like
	// SearchWithKeywords); an unusable keyword list (empty after
	// normalization, or all stop words) fails with ErrUnusableKeywords.
	Keywords []string
	// Dst, when non-nil, receives the results appended (typically
	// dst[:0] of a buffer retained across queries — the zero-allocation
	// steady state of the legacy SearchInto).
	Dst []Result
	// Stats, when non-nil, accumulates the query's work counters.
	Stats *Stats
	// Explain, when non-nil, accumulates the per-query search-internals
	// trace (reuse across queries with ExplainStats.Reset). On a
	// ShardedIndex the cross-shard aggregate is merged in; pair with
	// Trace for the per-shard spans.
	Explain *ExplainStats
	// Trace, when non-nil, is filled with the per-shard explain trace.
	// Only a ShardedIndex has shards to trace: on *Index and
	// *ConcurrentIndex a Trace request fails with
	// ErrUnsupportedRequest (wrap the index with ShardedFrom to trace
	// it as a single shard).
	Trace *SearchTrace
	// RequestID stamps the Trace and the always-on tracer's recorded
	// trace (a fresh ID is generated when empty). The server passes its
	// X-Request-Id here, which is what makes /debug/traces lookups by
	// request ID work.
	RequestID string
	// TraceID stamps the recorded trace with the W3C trace-context
	// trace ID the request arrived with, joining distributed traces to
	// the in-process span tree. Ignored when no trace sink is
	// installed.
	TraceID string
	// Deadline, when > 0, is the query's time budget: past it the
	// search stops consuming clusters and returns the exact top-k of
	// the candidates examined so far — an admissible partial prefix,
	// flagged via Meta.Partial (see ResponseMeta.Partial for the
	// precise guarantee). 0 means no budget; negative fails with
	// ErrInvalidDeadline. Under DoContext the tighter of Deadline and
	// the context's deadline applies. The keyword path ignores the
	// budget (its brute-force arm is not cluster-driven).
	Deadline time.Duration
	// Cache selects the request's result-cache participation; the zero
	// value follows the index default (EnableResultCache). See
	// CacheMode.
	Cache CacheMode
	// Meta, when non-nil, receives the response metadata (partial,
	// cache hit, snapshot ID) for this request; see ResponseMeta.
	Meta *ResponseMeta

	// deadline and cancel are the context-resolved budget (see
	// resolveBudget); requests reach do() only after resolution.
	deadline time.Time
	cancel   <-chan struct{}
}

// BatchSearchRequest describes one batched k-NN workload for DoBatch:
// many queries sharing K/Lambda/Approx, answered across a bounded
// worker pool. It is the single batched entry point behind the legacy
// SearchBatch/BatchSearch pairs.
type BatchSearchRequest struct {
	// Queries are the query objects (each needing X, Y, Vec).
	Queries []Object
	// K is the per-query neighbor count (DoBatch returns ErrInvalidK
	// when < 1).
	K int
	// Lambda weighs the spatial vs semantic distance, in [0,1].
	Lambda float64
	// Approx selects CSSIA instead of exact CSSI.
	Approx bool
	// Quant and QuantRerank select the SQ8 quantized participation for
	// every query of the batch, with the same contract as the
	// SearchRequest fields of the same names.
	Quant       QuantMode
	QuantRerank int
	// Route and RouteTarget select the learned cluster router for every
	// query of the batch, with the same contract as the SearchRequest
	// fields of the same names.
	Route       bool
	RouteTarget float64
	// Parallelism bounds the worker pool; <= 0 selects GOMAXPROCS and
	// larger values are clamped to GOMAXPROCS.
	Parallelism int
	// Stats, when non-nil, accumulates the summed work counters of the
	// whole batch.
	Stats *Stats
	// RequestID and TraceID stamp the always-on tracer's recorded
	// trace, with the same contract as the SearchRequest fields of the
	// same names. Ignored when no trace sink is installed.
	RequestID string
	TraceID   string
	// Deadline is the whole batch's time budget — one absolute instant
	// shared by every query, not a per-query allowance — with the same
	// contract as SearchRequest.Deadline. Queries cut by the budget
	// return admissible partial prefixes; Meta.Partial reports whether
	// any query was cut.
	Deadline time.Duration
	// Cache selects the batch's result-cache participation (probed per
	// query); see CacheMode.
	Cache CacheMode
	// Meta, when non-nil, receives the response metadata for the whole
	// batch; see ResponseMeta.
	Meta *ResponseMeta

	// deadline and cancel are the context-resolved budget; partialOut,
	// when non-nil (one slot per query), receives per-query partial
	// flags — the cache layer uses it to fill only complete answers.
	deadline   time.Time
	cancel     <-chan struct{}
	partialOut []bool
}

// ErrUnusableKeywords is returned by Do when a keyword-constrained
// request's keyword list normalizes to nothing (empty, or all stop
// words) — the error-value form of the legacy SearchWithKeywords
// ok=false.
var ErrUnusableKeywords = errors.New("cssi: keyword list unusable (empty or all stop words)")

// ErrUnsupportedRequest is returned by Do for field combinations with
// no sound implementation (see SearchRequest). Test with errors.Is.
var ErrUnsupportedRequest = errors.New("cssi: unsupported search request")

// ErrInvalidQuery is returned by Do and DoBatch when a query carries a
// non-finite value — a NaN or infinite coordinate or vector component.
// Such a query has no defined distance to anything, so answering it
// would return silent garbage; callers feeding user input should treat
// this as a bad request. Test with errors.Is.
var ErrInvalidQuery = errors.New("cssi: invalid query (non-finite coordinate or vector component)")

// ErrInvalidLambda is returned by Do and DoBatch when Lambda is NaN or
// outside [0,1] — the λ-weighted distance is only defined on that
// interval. Test with errors.Is. (The legacy Search* wrappers still
// panic: they funnel through Do and mustResults panics on any error.)
var ErrInvalidLambda = errors.New("cssi: lambda out of [0,1]")

// validateNumerics rejects the malformed numeric inputs every index
// flavor's Do and DoBatch must refuse identically: a NaN/out-of-range
// Lambda, non-finite query coordinates or vector components, and a
// non-finite RouteTarget. A nil query passes — the legacy nil-query
// panic in checkQuery stays the programmer-error contract.
func validateNumerics(q *Object, lambda, routeTarget float64) error {
	if math.IsNaN(lambda) || lambda < 0 || lambda > 1 {
		return fmt.Errorf("%w: got %v", ErrInvalidLambda, lambda)
	}
	if math.IsNaN(routeTarget) || math.IsInf(routeTarget, 0) {
		return fmt.Errorf("%w: RouteTarget %v is not finite", ErrUnsupportedRequest, routeTarget)
	}
	if q == nil {
		return nil
	}
	if !finite(q.X) || !finite(q.Y) {
		return fmt.Errorf("%w: location (%v, %v)", ErrInvalidQuery, q.X, q.Y)
	}
	for i, v := range q.Vec {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("%w: vector component %d is %v", ErrInvalidQuery, i, v)
		}
	}
	return nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// validateBatchNumerics is validateNumerics over a whole batch,
// identifying the offending query in the error.
func validateBatchNumerics(queries []Object, lambda, routeTarget float64) error {
	if err := validateNumerics(nil, lambda, routeTarget); err != nil {
		return err
	}
	for i := range queries {
		if err := validateNumerics(&queries[i], lambda, routeTarget); err != nil {
			return fmt.Errorf("batch query %d: %w", i, err)
		}
	}
	return nil
}

// mustResults unwraps a Do call built from a legacy wrapper whose
// request carries no fallible fields (no Keywords, no Trace on a
// flat index), keeping the wrappers' no-error signatures honest.
func mustResults(res []Result, err error) []Result {
	if err != nil {
		panic(err)
	}
	return res
}

// checkKeywordRequest rejects the keyword-incompatible field
// combinations shared by every index flavor's Do.
func checkKeywordRequest(req *SearchRequest) error {
	if req.Approx {
		return fmt.Errorf("%w: Keywords cannot combine with Approx (the keyword path is exact)", ErrUnsupportedRequest)
	}
	if req.Explain != nil || req.Trace != nil {
		return fmt.Errorf("%w: Keywords cannot combine with Explain or Trace", ErrUnsupportedRequest)
	}
	return nil
}

// checkQuantMode rejects the quant combination with no sound
// implementation: QuantOnly selects by quantized estimates and reranks
// only an overfetched pool, so it cannot honor an exact request.
func checkQuantMode(approx bool, quant QuantMode) error {
	if quant == QuantOnly && !approx {
		return fmt.Errorf("%w: QuantOnly requires Approx (the quantized-only scan is approximate)", ErrUnsupportedRequest)
	}
	return nil
}

// searchOptions translates the request's algorithm knobs into the core
// dispatch options.
func (req *SearchRequest) searchOptions() core.SearchOptions {
	return core.SearchOptions{
		Approx: req.Approx, Quant: req.Quant, QuantRerank: req.QuantRerank,
		Route: req.Route, RouteTarget: req.RouteTarget,
		Deadline: req.deadline, Cancel: req.cancel,
	}
}

// searchOptions translates the batch request's algorithm knobs into
// the core dispatch options.
func (req *BatchSearchRequest) searchOptions() core.SearchOptions {
	return core.SearchOptions{
		Approx: req.Approx, Quant: req.Quant, QuantRerank: req.QuantRerank,
		Route: req.Route, RouteTarget: req.RouteTarget,
		Deadline: req.deadline, Cancel: req.cancel,
	}
}

// Do answers one k-NN query described by req — the single search entry
// point every legacy Search* variant now delegates to. Programmer
// errors (nil query, K < 1, wrong vector dimensionality, Keywords
// without EnableKeywordFilter) panic exactly as the legacy entry points
// did; conditions a correct caller can hit at runtime — often by
// passing through unvalidated user input — return a typed error:
// ErrInvalidLambda (Lambda NaN or outside [0,1]), ErrInvalidQuery
// (non-finite query coordinates or vector components),
// ErrUnusableKeywords, ErrUnsupportedRequest.
//
// With a trace sink installed (SetTraceSink) every Do records a
// single-span trace into the sink's tail sampler; without one the
// request pays no tracing cost at all.
//
// Do is exactly DoContext(context.Background(), req); use DoContext to
// compose the request with a context's deadline and cancellation.
func (x *Index) Do(req SearchRequest) ([]Result, error) {
	return x.DoContext(context.Background(), req)
}

// do is the untraced request dispatch behind Do.
func (x *Index) do(req SearchRequest) ([]Result, error) {
	if err := validateNumerics(req.Query, req.Lambda, req.RouteTarget); err != nil {
		return nil, err
	}
	checkQuery(req.Query, req.K, req.Lambda)
	x.checkQueryVec(req.Query)
	if err := checkQuantMode(req.Approx, req.Quant); err != nil {
		return nil, err
	}
	req.metaReset(x.snapID)
	if len(req.Keywords) > 0 {
		if err := checkKeywordRequest(&req); err != nil {
			return nil, err
		}
		res, ok := x.searchWithKeywords(req.Query, req.K, req.Lambda, req.Keywords)
		if !ok {
			return nil, ErrUnusableKeywords
		}
		if req.Dst != nil {
			return append(req.Dst, res...), nil
		}
		return res, nil
	}
	if req.Trace != nil {
		return nil, fmt.Errorf("%w: Trace requires a ShardedIndex (wrap with ShardedFrom)", ErrUnsupportedRequest)
	}
	var pm core.SearchMeta
	if req.Explain != nil {
		res := x.core.SearchExplainOptionsMetaInto(req.Dst, req.Query, req.K, req.Lambda, req.searchOptions(), req.Explain, &pm)
		req.metaPartial(pm.Partial)
		if req.Stats != nil {
			req.Stats.Add(&req.Explain.Stats)
		}
		return res, nil
	}
	res := x.core.SearchOptionsMetaInto(req.Dst, req.Query, req.K, req.Lambda, req.searchOptions(), req.Stats, &pm)
	req.metaPartial(pm.Partial)
	return res, nil
}

// DoBatch answers the batched workload described by req — the single
// batched entry point behind the legacy SearchBatch/BatchSearch pairs.
// K < 1 returns ErrInvalidK; a NaN/out-of-range Lambda returns
// ErrInvalidLambda and a query with non-finite coordinates or vector
// components returns ErrInvalidQuery (identifying the offending query),
// both before any fan-out; an empty batch returns an empty result
// without spinning up workers; wrong vector dimensionality panics on
// the caller's goroutine, as the legacy entry points did.
//
// DoBatch is exactly DoBatchContext(context.Background(), req).
func (x *Index) DoBatch(req BatchSearchRequest) ([][]Result, error) {
	return x.DoBatchContext(context.Background(), req)
}

// doBatch is the untraced batch dispatch behind DoBatch.
func (x *Index) doBatch(req BatchSearchRequest) ([][]Result, error) {
	if req.K < 1 {
		return nil, ErrInvalidK
	}
	if err := checkQuantMode(req.Approx, req.Quant); err != nil {
		return nil, err
	}
	if err := validateBatchNumerics(req.Queries, req.Lambda, req.RouteTarget); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		req.metaFill(x.snapID, nil)
		return [][]Result{}, nil
	}
	checkQuery(&req.Queries[0], req.K, req.Lambda)
	for i := range req.Queries {
		if len(req.Queries[i].Vec) != x.core.Dim() {
			panic(fmt.Sprintf("cssi: batch query %d has vector dim %d, index expects %d",
				i, len(req.Queries[i].Vec), x.core.Dim()))
		}
	}
	partials := req.partialOut
	if partials == nil && req.Meta != nil && req.budgeted() {
		partials = make([]bool, len(req.Queries))
	}
	out, err := x.core.SearchBatchOptionsMeta(req.Queries, req.K, req.Lambda, req.Parallelism,
		req.searchOptions(), req.Stats, partials)
	if err != nil {
		// Unreachable: K < 1, the only input the core entry point
		// refuses, was rejected above.
		panic(err)
	}
	req.metaFill(x.snapID, partials)
	return out, nil
}

// Do answers one k-NN query against the current snapshot (lock-free);
// see Index.Do for the request contract. A trace sink installed on the
// wrapper (SetTraceSink) records every Do regardless of which snapshot
// serves it. With a result cache enabled (EnableResultCache) repeated
// queries are served from it, bit-identical to an uncached search of
// the same snapshot.
//
// Do is exactly DoContext(context.Background(), req).
func (c *ConcurrentIndex) Do(req SearchRequest) ([]Result, error) {
	return c.DoContext(context.Background(), req)
}

// DoBatch answers a batched workload against the current snapshot: the
// whole batch runs to completion against the one snapshot it loaded,
// even while writers publish newer ones concurrently. See Index.DoBatch
// for the request contract.
//
// DoBatch is exactly DoBatchContext(context.Background(), req).
func (c *ConcurrentIndex) DoBatch(req BatchSearchRequest) ([][]Result, error) {
	return c.DoBatchContext(context.Background(), req)
}

// Do answers one k-NN query across the shards — scatter/gather (or the
// bound-carrying sequential chain where that is faster) for plain
// requests, the per-shard explain scatter when Explain or Trace is set,
// and the keyword scatter for keyword-constrained requests. See
// Index.Do for the request contract; exact results are bit-identical
// to a flat index over the same objects.
//
// Do is exactly DoContext(context.Background(), req).
func (s *ShardedIndex) Do(req SearchRequest) ([]Result, error) {
	return s.DoContext(context.Background(), req)
}

// doSinked dispatches a budget-resolved request, recording a trace
// when a sink is installed.
func (s *ShardedIndex) doSinked(req SearchRequest) ([]Result, error) {
	sink := s.sink.Load()
	if sink == nil {
		return s.do(req, nil)
	}
	req.ensureMeta()
	op := "search"
	if len(req.Keywords) > 0 {
		op = "keyword"
	}
	t, start := beginTrace(sink, "sharded", op, 1, req.K, req.Lambda, req.searchOptions(), req.RequestID, req.TraceID)
	// One ID across the recorded trace and any caller-visible
	// SearchTrace the explain path fills.
	req.RequestID = t.RequestID
	res, err := s.do(req, t)
	t.Partial = req.Meta.Partial
	endTrace(sink, t, res, err, start)
	return res, err
}

// do is the request dispatch behind ShardedIndex.Do. With tr non-nil
// (a trace sink is installed) the search paths record per-shard spans
// into it; results are bit-identical either way.
func (s *ShardedIndex) do(req SearchRequest, tr *SearchTrace) ([]Result, error) {
	if err := validateNumerics(req.Query, req.Lambda, req.RouteTarget); err != nil {
		return nil, err
	}
	if err := checkQuantMode(req.Approx, req.Quant); err != nil {
		return nil, err
	}
	req.metaReset(s.snapshotID())
	if len(req.Keywords) > 0 {
		s.checkRead(req.Query, req.K, req.Lambda)
		if err := checkKeywordRequest(&req); err != nil {
			return nil, err
		}
		res, ok := s.searchKeywords(req.Query, req.K, req.Lambda, req.Keywords)
		if !ok {
			return nil, ErrUnusableKeywords
		}
		if req.Dst != nil {
			return append(req.Dst, res...), nil
		}
		return res, nil
	}
	var pm core.SearchMeta
	if req.Explain != nil || req.Trace != nil {
		res, trc := s.searchExplain(req.Query, req.K, req.Lambda, req.searchOptions(), req.RequestID, &pm)
		req.metaPartial(pm.Partial)
		if req.Trace != nil {
			*req.Trace = *trc
		}
		if tr != nil {
			tr.Shards = append(tr.Shards, trc.Shards...)
			tr.Parallel = trc.Parallel
			tr.GatherNanos = trc.GatherNanos
		}
		if req.Explain != nil {
			req.Explain.Merge(&trc.Total)
			req.Explain.KthDistance = trc.Total.KthDistance
		}
		if req.Stats != nil {
			req.Stats.Add(&trc.Total.Stats)
		}
		if req.Dst != nil {
			return append(req.Dst, res...), nil
		}
		return res, nil
	}
	if req.Approx {
		res := s.searchApprox(req.Dst, req.Query, req.K, req.Lambda, req.searchOptions(), req.Stats, tr, &pm)
		req.metaPartial(pm.Partial)
		return res, nil
	}
	res := s.searchExact(req.Dst, req.Query, req.K, req.Lambda, req.searchOptions(), req.Stats, tr, &pm)
	req.metaPartial(pm.Partial)
	return res, nil
}

// DoBatch answers a batched workload with one scatter (or the chained
// sequential path on a single-core host); see Index.DoBatch for the
// request contract.
//
// DoBatch is exactly DoBatchContext(context.Background(), req).
func (s *ShardedIndex) DoBatch(req BatchSearchRequest) ([][]Result, error) {
	return s.DoBatchContext(context.Background(), req)
}

// doBatchSinked dispatches a budget-resolved batch, recording a trace
// when a sink is installed.
func (s *ShardedIndex) doBatchSinked(req BatchSearchRequest) ([][]Result, error) {
	sink := s.sink.Load()
	if sink == nil {
		return s.doBatch(req, nil)
	}
	req.ensureMeta()
	t, start := beginTrace(sink, "sharded", "batch", len(req.Queries), req.K, req.Lambda, req.searchOptions(), req.RequestID, req.TraceID)
	out, err := s.doBatch(req, t)
	t.Partial = req.Meta.Partial
	endTraceBatch(sink, t, out, err, start)
	return out, err
}
