// Command datagen generates a synthetic spatio-textual dataset (the
// stand-in for the paper's Twitter/Yelp corpora) and writes it to a file
// for later use by cssiquery.
//
// Usage:
//
//	datagen -kind twitter -size 20000 -dim 100 -seed 1 -out twitter.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	var (
		kind   = flag.String("kind", "twitter", "dataset kind: twitter or yelp")
		size   = flag.Int("size", 20000, "number of objects")
		dim    = flag.Int("dim", 100, "embedding dimensionality")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "output file (required)")
		format = flag.String("format", "gob", "output format: gob (binary, with vectors) or csv (id,x,y,text)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	var k dataset.Kind
	switch *kind {
	case "twitter":
		k = dataset.TwitterLike
	case "yelp":
		k = dataset.YelpLike
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	ds, err := dataset.Generate(dataset.GenConfig{Kind: k, Size: *size, Dim: *dim, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	switch *format {
	case "gob":
		err = ds.Save(f)
	case "csv":
		err = ds.SaveCSV(f)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: save: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d %s objects (n=%d) to %s (%s)\n", ds.Len(), *kind, *dim, *out, *format)
}
