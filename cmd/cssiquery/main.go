// Command cssiquery demonstrates the full pipeline: it obtains a dataset
// (generated on the fly, or loaded from a datagen file), builds the
// CSSI/CSSIA index, and answers a k-NN query, printing both the exact and
// the approximate result with timing and pruning statistics.
//
// Query by example object:
//
//	cssiquery -kind yelp -size 20000 -qid 42 -k 10 -lambda 0.5
//
// Query by free text and location (dataset generated inline, so the
// embedding model is available to encode the text):
//
//	cssiquery -kind twitter -size 20000 -x 0.4 -y 0.6 -text "wb wc wd" -k 5
//
// With -trace the exact query additionally runs through the always-on
// tracer and its span tree is printed — the same trace a server
// retains in /debug/traces. With -server URL the query is sent to a
// running cssiserve instead (W3C traceparent attached) and the
// retained trace is fetched back from its /v1/debug/traces endpoint:
//
//	cssiquery -size 20000 -qid 42 -trace
//	cssiquery -size 20000 -qid 42 -trace -server http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/obs"
)

func main() {
	var (
		kind   = flag.String("kind", "twitter", "dataset kind: twitter or yelp")
		size   = flag.Int("size", 20000, "number of objects (when generating)")
		dim    = flag.Int("dim", 100, "embedding dimensionality (when generating)")
		seed   = flag.Uint64("seed", 1, "random seed")
		data   = flag.String("data", "", "load dataset from a datagen file instead of generating")
		qid    = flag.Int("qid", -1, "query by the object with this ID")
		qx     = flag.Float64("x", -1, "query longitude in [0,1] (with -text)")
		qy     = flag.Float64("y", -1, "query latitude in [0,1] (with -text)")
		qtext  = flag.String("text", "", "query text (requires a generated dataset)")
		k      = flag.Int("k", 10, "number of neighbors")
		lambda = flag.Float64("lambda", 0.5, "balance parameter λ (1 = purely spatial)")
		route  = flag.Bool("route", false, "also run the learned-router modes: routed exact (bit-identical) and routed approximate")
		target = flag.Float64("route-target", 0, "routed approximate recall knob in (0,1] (0 = library default)")
		trace  = flag.Bool("trace", false, "record and print the exact query's span tree (the trace a server would retain in /debug/traces)")
		srvURL = flag.String("server", "", "with -trace: send the query to this cssiserve base URL and fetch the retained trace back")
	)
	flag.Parse()

	ds, err := obtainDataset(*data, *kind, *size, *dim, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset: %d objects, n=%d\n", ds.Len(), ds.Dim)

	start := time.Now()
	idx, err := cssi.Build(ds, cssi.Options{Seed: *seed})
	if err != nil {
		fail(err)
	}
	fmt.Printf("index: %d hybrid clusters, built in %v\n\n", idx.NumClusters(), time.Since(start).Round(time.Millisecond))

	q, err := makeQuery(ds, *qid, *qx, *qy, *qtext)
	if err != nil {
		fail(err)
	}

	if *trace && *srvURL != "" {
		if err := traceAgainstServer(*srvURL, q, *k, *lambda); err != nil {
			fail(err)
		}
		return
	}

	var stExact cssi.Stats
	t0 := time.Now()
	exact := idx.SearchStats(q, *k, *lambda, &stExact)
	exactTime := time.Since(t0)

	var stApprox cssi.Stats
	t0 = time.Now()
	approx := idx.SearchApproxStats(q, *k, *lambda, &stApprox)
	approxTime := time.Since(t0)

	fmt.Printf("CSSI (exact, %v): visited %d of %d objects (inter-pruned %d, intra-pruned %d)\n",
		exactTime.Round(time.Microsecond), stExact.VisitedObjects, ds.Len(), stExact.InterPruned, stExact.IntraPruned)
	printResults(ds, exact)
	fmt.Printf("\nCSSIA (approximate, %v): visited %d objects, result error %.2f%%\n",
		approxTime.Round(time.Microsecond), stApprox.VisitedObjects, 100*cssi.ErrorRate(exact, approx))
	printResults(ds, approx)

	if *route {
		if !idx.RouterTrained() {
			fmt.Printf("\nrouted modes: no trained router (index too small); -route falls back to the unrouted algorithms\n")
		}
		var stRouted cssi.Stats
		t0 = time.Now()
		routedExact, err := idx.Do(cssi.SearchRequest{Query: q, K: *k, Lambda: *lambda, Route: true, Stats: &stRouted})
		if err != nil {
			fail(err)
		}
		routedTime := time.Since(t0)
		fmt.Printf("\nCSSI routed (exact, %v): visited %d objects, clusters routed %d, result error %.2f%% (must be 0)\n",
			routedTime.Round(time.Microsecond), stRouted.VisitedObjects, stRouted.ClustersRouted, 100*cssi.ErrorRate(exact, routedExact))
		printResults(ds, routedExact)

		var stRA cssi.Stats
		t0 = time.Now()
		routedApprox, err := idx.Do(cssi.SearchRequest{
			Query: q, K: *k, Lambda: *lambda,
			Approx: true, Route: true, RouteTarget: *target, Stats: &stRA,
		})
		if err != nil {
			fail(err)
		}
		raTime := time.Since(t0)
		fmt.Printf("\nCSSIA routed (approximate, %v): visited %d objects, clusters routed %d, result error %.2f%%\n",
			raTime.Round(time.Microsecond), stRA.VisitedObjects, stRA.ClustersRouted, 100*cssi.ErrorRate(exact, routedApprox))
		printResults(ds, routedApprox)
	}

	if *trace {
		if err := traceLocally(idx, q, *k, *lambda); err != nil {
			fail(err)
		}
	}
}

// traceLocally reruns the exact query through the always-on tracer —
// the same machinery a server installs — and prints the retained span
// tree.
func traceLocally(idx *cssi.Index, q *cssi.Object, k int, lambda float64) error {
	sink := obs.NewSink(obs.SinkConfig{BufferSize: 4, SampleEvery: 1})
	idx.SetTraceSink(sink)
	defer idx.SetTraceSink(nil)
	reqID := obs.NewRequestID()
	if _, err := idx.Do(cssi.SearchRequest{Query: q, K: k, Lambda: lambda, RequestID: reqID}); err != nil {
		return err
	}
	t := sink.Ring().Lookup(reqID)
	if t == nil {
		return fmt.Errorf("trace %s not retained", reqID)
	}
	fmt.Println()
	printTrace(t)
	return nil
}

// traceAgainstServer sends the query to a running cssiserve with a
// fresh W3C traceparent attached, then fetches the trace the server
// retained for it from /v1/debug/traces/<request id>.
func traceAgainstServer(base string, q *cssi.Object, k int, lambda float64) error {
	body, err := json.Marshal(map[string]any{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": k, "lambda": lambda,
	})
	if err != nil {
		return err
	}
	traceID := obs.NewTraceID()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", obs.FormatTraceParent(traceID, obs.NewSpanID()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error struct{ Message string } `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return fmt.Errorf("search: %s: %s", resp.Status, env.Error.Message)
	}
	reqID := resp.Header.Get("X-Request-Id")
	fmt.Printf("search ok  request=%s traceparent trace=%s\n", reqID, traceID)
	// The tail sampler may not have retained a fast normal query; the
	// trace ID joins the lookup either way.
	tr, err := http.Get(base + "/v1/debug/traces/" + reqID)
	if err != nil {
		return err
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		return fmt.Errorf("trace %s not retained by the server (tail sampling keeps slow/errored traces and 1-in-N of normal traffic)", reqID)
	}
	var envelope struct {
		Trace *obs.Trace `json:"trace"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&envelope); err != nil || envelope.Trace == nil {
		return fmt.Errorf("malformed trace response: %v", err)
	}
	fmt.Println()
	printTrace(envelope.Trace)
	return nil
}

// printTrace renders one retained trace's span tree.
func printTrace(t *obs.Trace) {
	fmt.Printf("trace %s  request=%s  flavor=%s op=%s algo=%s k=%d lambda=%.2f\n",
		orDash(t.TraceID), t.RequestID, orDash(t.Flavor), orDash(t.Op), t.Algo, t.K, t.Lambda)
	fmt.Printf("  duration=%v gather=%v parallel=%v reason=%s kth=%.5f readEff=%.3f\n",
		time.Duration(t.DurationNanos).Round(time.Microsecond),
		time.Duration(t.GatherNanos).Round(time.Microsecond),
		t.Parallel, orDash(t.SampleReason), t.Total.KthDistance, t.ReadEfficiency)
	if t.Error != "" {
		fmt.Printf("  error=%s\n", t.Error)
	}
	for i := range t.Shards {
		sp := &t.Shards[i]
		st := &sp.Stats
		fmt.Printf("  span shard=%d objects=%d duration=%v\n", sp.Shard, sp.Objects,
			time.Duration(sp.DurationNanos).Round(time.Microsecond))
		fmt.Printf("       order=%v scan=%v quant=%v route=%v delta=%v\n",
			time.Duration(st.OrderNanos).Round(time.Microsecond),
			time.Duration(st.ScanNanos).Round(time.Microsecond),
			time.Duration(st.QuantNanos).Round(time.Microsecond),
			time.Duration(st.RouteNanos).Round(time.Microsecond),
			time.Duration(st.DeltaNanos).Round(time.Microsecond))
		fmt.Printf("       visited=%d interPruned=%d intraPruned=%d clusters examined=%d pruned=%d readEff=%.3f\n",
			st.VisitedObjects, st.InterPruned, st.IntraPruned,
			st.ClustersExamined, st.ClustersPruned, sp.ReadEfficiency)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func obtainDataset(path, kind string, size, dim int, seed uint64) (*cssi.Dataset, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Load(f)
	}
	var k cssi.DatasetKind
	switch kind {
	case "twitter":
		k = cssi.TwitterLike
	case "yelp":
		k = cssi.YelpLike
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
	return cssi.GenerateDataset(cssi.DatasetConfig{Kind: k, Size: size, Dim: dim, Seed: seed})
}

func makeQuery(ds *cssi.Dataset, qid int, x, y float64, text string) (*cssi.Object, error) {
	if text != "" {
		if ds.Model == nil {
			return nil, fmt.Errorf("-text requires a generated dataset (loaded files carry no embedding model)")
		}
		if x < 0 || y < 0 {
			return nil, fmt.Errorf("-text requires -x and -y")
		}
		v, ok := ds.Model.EncodeDocument(text)
		if !ok {
			return nil, fmt.Errorf("query text has fewer than 3 in-vocabulary words")
		}
		return &cssi.Object{ID: 1 << 31, X: x, Y: y, Text: text, Vec: v}, nil
	}
	if qid < 0 {
		qid = 0
	}
	for i := range ds.Objects {
		if ds.Objects[i].ID == uint32(qid) {
			q := ds.Objects[i]
			fmt.Printf("query object %d at (%.3f,%.3f): %q\n\n", q.ID, q.X, q.Y, truncate(q.Text, 60))
			return &q, nil
		}
	}
	return nil, fmt.Errorf("object ID %d not found", qid)
}

func printResults(ds *cssi.Dataset, rs []cssi.Result) {
	for i, r := range rs {
		var text string
		var x, y float64
		for j := range ds.Objects {
			if ds.Objects[j].ID == r.ID {
				text = ds.Objects[j].Text
				x, y = ds.Objects[j].X, ds.Objects[j].Y
				break
			}
		}
		fmt.Printf("  %2d. id=%-8d d=%.5f (%.3f,%.3f) %s\n", i+1, r.ID, r.Dist, x, y, truncate(text, 50))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "cssiquery: %v\n", err)
	os.Exit(1)
}
