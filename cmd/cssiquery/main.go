// Command cssiquery demonstrates the full pipeline: it obtains a dataset
// (generated on the fly, or loaded from a datagen file), builds the
// CSSI/CSSIA index, and answers a k-NN query, printing both the exact and
// the approximate result with timing and pruning statistics.
//
// Query by example object:
//
//	cssiquery -kind yelp -size 20000 -qid 42 -k 10 -lambda 0.5
//
// Query by free text and location (dataset generated inline, so the
// embedding model is available to encode the text):
//
//	cssiquery -kind twitter -size 20000 -x 0.4 -y 0.6 -text "wb wc wd" -k 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/dataset"
)

func main() {
	var (
		kind   = flag.String("kind", "twitter", "dataset kind: twitter or yelp")
		size   = flag.Int("size", 20000, "number of objects (when generating)")
		dim    = flag.Int("dim", 100, "embedding dimensionality (when generating)")
		seed   = flag.Uint64("seed", 1, "random seed")
		data   = flag.String("data", "", "load dataset from a datagen file instead of generating")
		qid    = flag.Int("qid", -1, "query by the object with this ID")
		qx     = flag.Float64("x", -1, "query longitude in [0,1] (with -text)")
		qy     = flag.Float64("y", -1, "query latitude in [0,1] (with -text)")
		qtext  = flag.String("text", "", "query text (requires a generated dataset)")
		k      = flag.Int("k", 10, "number of neighbors")
		lambda = flag.Float64("lambda", 0.5, "balance parameter λ (1 = purely spatial)")
		route  = flag.Bool("route", false, "also run the learned-router modes: routed exact (bit-identical) and routed approximate")
		target = flag.Float64("route-target", 0, "routed approximate recall knob in (0,1] (0 = library default)")
	)
	flag.Parse()

	ds, err := obtainDataset(*data, *kind, *size, *dim, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset: %d objects, n=%d\n", ds.Len(), ds.Dim)

	start := time.Now()
	idx, err := cssi.Build(ds, cssi.Options{Seed: *seed})
	if err != nil {
		fail(err)
	}
	fmt.Printf("index: %d hybrid clusters, built in %v\n\n", idx.NumClusters(), time.Since(start).Round(time.Millisecond))

	q, err := makeQuery(ds, *qid, *qx, *qy, *qtext)
	if err != nil {
		fail(err)
	}

	var stExact cssi.Stats
	t0 := time.Now()
	exact := idx.SearchStats(q, *k, *lambda, &stExact)
	exactTime := time.Since(t0)

	var stApprox cssi.Stats
	t0 = time.Now()
	approx := idx.SearchApproxStats(q, *k, *lambda, &stApprox)
	approxTime := time.Since(t0)

	fmt.Printf("CSSI (exact, %v): visited %d of %d objects (inter-pruned %d, intra-pruned %d)\n",
		exactTime.Round(time.Microsecond), stExact.VisitedObjects, ds.Len(), stExact.InterPruned, stExact.IntraPruned)
	printResults(ds, exact)
	fmt.Printf("\nCSSIA (approximate, %v): visited %d objects, result error %.2f%%\n",
		approxTime.Round(time.Microsecond), stApprox.VisitedObjects, 100*cssi.ErrorRate(exact, approx))
	printResults(ds, approx)

	if *route {
		if !idx.RouterTrained() {
			fmt.Printf("\nrouted modes: no trained router (index too small); -route falls back to the unrouted algorithms\n")
		}
		var stRouted cssi.Stats
		t0 = time.Now()
		routedExact, err := idx.Do(cssi.SearchRequest{Query: q, K: *k, Lambda: *lambda, Route: true, Stats: &stRouted})
		if err != nil {
			fail(err)
		}
		routedTime := time.Since(t0)
		fmt.Printf("\nCSSI routed (exact, %v): visited %d objects, clusters routed %d, result error %.2f%% (must be 0)\n",
			routedTime.Round(time.Microsecond), stRouted.VisitedObjects, stRouted.ClustersRouted, 100*cssi.ErrorRate(exact, routedExact))
		printResults(ds, routedExact)

		var stRA cssi.Stats
		t0 = time.Now()
		routedApprox, err := idx.Do(cssi.SearchRequest{
			Query: q, K: *k, Lambda: *lambda,
			Approx: true, Route: true, RouteTarget: *target, Stats: &stRA,
		})
		if err != nil {
			fail(err)
		}
		raTime := time.Since(t0)
		fmt.Printf("\nCSSIA routed (approximate, %v): visited %d objects, clusters routed %d, result error %.2f%%\n",
			raTime.Round(time.Microsecond), stRA.VisitedObjects, stRA.ClustersRouted, 100*cssi.ErrorRate(exact, routedApprox))
		printResults(ds, routedApprox)
	}
}

func obtainDataset(path, kind string, size, dim int, seed uint64) (*cssi.Dataset, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Load(f)
	}
	var k cssi.DatasetKind
	switch kind {
	case "twitter":
		k = cssi.TwitterLike
	case "yelp":
		k = cssi.YelpLike
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
	return cssi.GenerateDataset(cssi.DatasetConfig{Kind: k, Size: size, Dim: dim, Seed: seed})
}

func makeQuery(ds *cssi.Dataset, qid int, x, y float64, text string) (*cssi.Object, error) {
	if text != "" {
		if ds.Model == nil {
			return nil, fmt.Errorf("-text requires a generated dataset (loaded files carry no embedding model)")
		}
		if x < 0 || y < 0 {
			return nil, fmt.Errorf("-text requires -x and -y")
		}
		v, ok := ds.Model.EncodeDocument(text)
		if !ok {
			return nil, fmt.Errorf("query text has fewer than 3 in-vocabulary words")
		}
		return &cssi.Object{ID: 1 << 31, X: x, Y: y, Text: text, Vec: v}, nil
	}
	if qid < 0 {
		qid = 0
	}
	for i := range ds.Objects {
		if ds.Objects[i].ID == uint32(qid) {
			q := ds.Objects[i]
			fmt.Printf("query object %d at (%.3f,%.3f): %q\n\n", q.ID, q.X, q.Y, truncate(q.Text, 60))
			return &q, nil
		}
	}
	return nil, fmt.Errorf("object ID %d not found", qid)
}

func printResults(ds *cssi.Dataset, rs []cssi.Result) {
	for i, r := range rs {
		var text string
		var x, y float64
		for j := range ds.Objects {
			if ds.Objects[j].ID == r.ID {
				text = ds.Objects[j].Text
				x, y = ds.Objects[j].X, ds.Objects[j].Y
				break
			}
		}
		fmt.Printf("  %2d. id=%-8d d=%.5f (%.3f,%.3f) %s\n", i+1, r.ID, r.Dist, x, y, truncate(text, 50))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "cssiquery: %v\n", err)
	os.Exit(1)
}
