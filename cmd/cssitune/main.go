// Command cssitune grid-searches the index's construction knobs (the
// projection dimensionality m and the cluster multiplier f) against a
// sampled validation workload and recommends a configuration — the
// automated counterpart of the paper's Figs. 9-11 sensitivity analysis,
// runnable against your own parameters.
//
//	cssitune -kind twitter -size 20000 -k 50 -lambda 0.5 -max-error 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		kind     = flag.String("kind", "twitter", "dataset kind: twitter or yelp")
		size     = flag.Int("size", 20000, "dataset size")
		dim      = flag.Int("dim", 100, "embedding dimensionality")
		seed     = flag.Uint64("seed", 1, "random seed")
		k        = flag.Int("k", 50, "workload: neighbors per query")
		lambda   = flag.Float64("lambda", 0.5, "workload: balance parameter")
		queries  = flag.Int("queries", 30, "validation queries")
		maxError = flag.Float64("max-error", 0.01, "CSSIA error budget")
		mList    = flag.String("m", "1,2,3,5", "comma-separated m candidates")
		fList    = flag.String("f", "0.1,0.3,0.5", "comma-separated f candidates")
	)
	flag.Parse()

	var dk cssi.DatasetKind
	switch *kind {
	case "twitter":
		dk = cssi.TwitterLike
	case "yelp":
		dk = cssi.YelpLike
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: dk, Size: *size, Dim: *dim, Seed: *seed})
	if err != nil {
		fail(err)
	}
	ms, err := parseInts(*mList)
	if err != nil {
		fail(err)
	}
	fs, err := parseFloats(*fList)
	if err != nil {
		fail(err)
	}

	results, best, err := cssi.Tune(ds, cssi.TuneConfig{
		MValues: ms, FValues: fs,
		K: *k, Lambda: *lambda, Queries: *queries,
		MaxError: *maxError, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-4s %-5s %-10s %-10s %-11s %-9s\n", "m", "f", "build", "CSSI µs/q", "CSSIA µs/q", "error")
	for i, r := range results {
		marker := " "
		if i == best {
			marker = "*"
		}
		fmt.Printf("%-4d %-5.1f %-10v %-10.0f %-11.0f %6.3f%% %s\n",
			r.M, r.F, r.BuildTime.Round(1e6), r.ExactMicros, r.ApproxMicros, 100*r.Error, marker)
	}
	rec := results[best]
	fmt.Printf("\nrecommended: m=%d f=%.1f (CSSIA %.0f µs/query at %.3f%% error)\n",
		rec.M, rec.F, rec.ApproxMicros, 100*rec.Error)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "cssitune: %v\n", err)
	os.Exit(1)
}
