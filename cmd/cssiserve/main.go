// Command cssiserve runs the CSSI/CSSIA index as an HTTP similarity-
// search service. It either generates a synthetic dataset and builds a
// fresh index, or loads a previously saved index file.
//
//	cssiserve -addr :8080 -kind twitter -size 20000          # fresh
//	cssiserve -addr :8080 -index saved.idx                   # from disk
//
// See internal/server for the JSON API.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/embed"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		kind      = flag.String("kind", "twitter", "dataset kind when generating: twitter or yelp")
		size      = flag.Int("size", 20000, "dataset size when generating")
		dim       = flag.Int("dim", 100, "embedding dimensionality when generating")
		seed      = flag.Uint64("seed", 1, "random seed")
		indexPath = flag.String("index", "", "load a saved index instead of generating")
		savePath  = flag.String("save", "", "after building, save the index to this file")
	)
	flag.Parse()

	var (
		idx   *cssi.Index
		model *embed.Model
		err   error
	)
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatalf("cssiserve: %v", err)
		}
		idx, err = cssi.LoadIndex(f)
		f.Close()
		if err != nil {
			log.Fatalf("cssiserve: load: %v", err)
		}
		log.Printf("loaded index: %d objects, %d hybrid clusters", idx.Len(), idx.NumClusters())
	} else {
		var k cssi.DatasetKind
		switch *kind {
		case "twitter":
			k = cssi.TwitterLike
		case "yelp":
			k = cssi.YelpLike
		default:
			log.Fatalf("cssiserve: unknown kind %q", *kind)
		}
		ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: k, Size: *size, Dim: *dim, Seed: *seed})
		if err != nil {
			log.Fatalf("cssiserve: %v", err)
		}
		model = ds.Model
		start := time.Now()
		idx, err = cssi.Build(ds, cssi.Options{Seed: *seed})
		if err != nil {
			log.Fatalf("cssiserve: build: %v", err)
		}
		log.Printf("built index over %d objects (%d hybrid clusters) in %v",
			idx.Len(), idx.NumClusters(), time.Since(start).Round(time.Millisecond))
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatalf("cssiserve: %v", err)
		}
		if err := idx.Save(f); err != nil {
			log.Fatalf("cssiserve: save: %v", err)
		}
		f.Close()
		log.Printf("saved index to %s", *savePath)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(idx, model).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("cssiserve listening on %s\n", *addr)
	if err = srv.ListenAndServe(); err != nil {
		log.Fatalf("cssiserve: %v", err)
	}
}
