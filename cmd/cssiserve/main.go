// Command cssiserve runs the CSSI/CSSIA index as an HTTP similarity-
// search service. It either generates a synthetic dataset and builds a
// fresh index, or loads a previously saved one.
//
//	cssiserve -addr :8080 -kind twitter -size 20000          # fresh
//	cssiserve -addr :8080 -size 20000 -shards 8              # fresh, sharded
//	cssiserve -addr :8080 -index saved.idx                   # single-index file
//	cssiserve -addr :8080 -index saved.d/                    # sharded directory
//	cssiserve -addr :8080 -ops-addr :6060                    # + pprof/metrics listener
//
// With -shards N the index is hash-partitioned across N goroutine-owned
// shards: reads scatter/gather (exact results identical to unsharded),
// writes route to one shard and pay only that shard's copy-on-write
// cost. -index accepts both a single-index file (served as one shard)
// and a directory written by -save with -shards > 1. See
// internal/server for the JSON API, including GET /metrics and
// POST /debug/explain.
//
// Logs are structured (log/slog, logfmt text): -log-level=debug adds a
// per-request access log line carrying each request's X-Request-Id.
// -ops-addr starts a second listener with the pprof profiling
// endpoints plus /metrics and /healthz, kept off the public port.
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/embed"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		opsAddr   = flag.String("ops-addr", "", "optional second listen address for pprof + metrics (disabled when empty)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error (debug enables the per-request access log)")
		kind      = flag.String("kind", "twitter", "dataset kind when generating: twitter or yelp")
		size      = flag.Int("size", 20000, "dataset size when generating")
		dim       = flag.Int("dim", 100, "embedding dimensionality when generating")
		seed      = flag.Uint64("seed", 1, "random seed")
		shards    = flag.Int("shards", 1, "shard count when building (a loaded index keeps its stored shard count)")
		indexPath = flag.String("index", "", "load a saved index (file or sharded directory) instead of generating")
		savePath  = flag.String("save", "", "after building, save the index here (a directory when -shards > 1)")
		route     = flag.Bool("route", false, "use the learned cluster router by default on query requests (a request's own \"route\" field still wins)")
		target    = flag.Float64("route-target", 0, "default routed-approximate recall knob in (0,1] for requests that omit routeTarget (0 = library default)")
		deltaThr  = flag.Int("delta-threshold", 0, "write-overlay compaction threshold per shard: >0 ops before a background fold, 0 = library default, -1 disables the overlay (eager clone per write)")
		traceBuf  = flag.Int("trace-buffer", 1024, "retained-trace ring capacity for the always-on tracer (0 disables tracing)")
		slowQuery = flag.Duration("slow-query", 100*time.Millisecond, "latency at which a query trace is always retained and logged (0 disables the slow rule)")
		traceSamp = flag.Int("trace-sample", 128, "keep 1 in N normal (fast, successful) traces (0 keeps only slow/errored traces, 1 keeps everything)")
		slo       = flag.String("slo", "5ms,25ms,100ms", "comma-separated ascending latency objectives for the /metrics SLO block")
		cacheCap  = flag.Int("cache", 0, "result cache capacity in entries (>0 enables the snapshot-keyed result cache, -1 selects the library default capacity)")
		deadline  = flag.Duration("deadline", 0, "default time budget for query requests that omit deadlineMs (0 = unbounded); exhausted budgets answer partial results")
		inflight  = flag.Int("max-inflight", 0, "admission control: max concurrently executing requests per query endpoint (0 disables admission control, -1 selects GOMAXPROCS)")
		maxQueue  = flag.Int("max-queue", 64, "admission control: max requests queued per endpoint beyond max-inflight; the excess is shed with 429")
		queueWait = flag.Duration("queue-wait", 0, "admission control: max time a queued request waits for a slot before being shed (0 = 100ms default)")
	)
	flag.Parse()

	logger := newLogger(*logLevel)
	slog.SetDefault(logger)

	var (
		idx   *cssi.ShardedIndex
		model *embed.Model
		err   error
	)
	if *indexPath != "" {
		idx, err = cssi.LoadSharded(*indexPath)
		if err != nil {
			fatal(logger, "load failed", "path", *indexPath, "error", err)
		}
		logger.Info("loaded index",
			"path", *indexPath, "objects", idx.Len(),
			"hybridClusters", idx.NumClusters(), "shards", idx.NumShards())
	} else {
		var k cssi.DatasetKind
		switch *kind {
		case "twitter":
			k = cssi.TwitterLike
		case "yelp":
			k = cssi.YelpLike
		default:
			fatal(logger, "unknown dataset kind", "kind", *kind)
		}
		ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: k, Size: *size, Dim: *dim, Seed: *seed})
		if err != nil {
			fatal(logger, "dataset generation failed", "error", err)
		}
		model = ds.Model
		start := time.Now()
		idx, err = cssi.BuildSharded(ds, *shards, cssi.Options{Seed: *seed})
		if err != nil {
			fatal(logger, "build failed", "error", err)
		}
		logger.Info("built index",
			"objects", idx.Len(), "hybridClusters", idx.NumClusters(),
			"shards", idx.NumShards(), "durationMs", time.Since(start).Milliseconds())
	}
	if *savePath != "" {
		// SaveDir writes the manifest + per-shard layout; for one shard
		// that is still loadable (and LoadSharded also reads legacy
		// single-index files saved by older builds).
		if err := idx.SaveDir(*savePath); err != nil {
			fatal(logger, "save failed", "path", *savePath, "error", err)
		}
		logger.Info("saved index", "path", *savePath)
	}

	api := server.NewSharded(idx, model)
	api.SetLogger(logger)
	api.SetRouteDefaults(*route, *target)
	if err := api.SetDeltaDefaults(*deltaThr); err != nil {
		fatal(logger, "invalid -delta-threshold", "value", *deltaThr, "error", err)
	}
	api.SetTraceOptions(*traceBuf, traceSlowArg(*slowQuery), traceSampleArg(*traceSamp))
	objectives, err := parseSLO(*slo)
	if err != nil {
		fatal(logger, "invalid -slo", "value", *slo, "error", err)
	}
	if err := api.SetSLOObjectives(objectives); err != nil {
		fatal(logger, "invalid -slo", "value", *slo, "error", err)
	}
	if *route && !idx.RouterTrained() {
		logger.Warn("router default requested but not every shard carries a trained router; untrained shards run unrouted")
	}
	if *cacheCap != 0 {
		capacity := *cacheCap
		if capacity < 0 {
			capacity = 0 // library default capacity
		}
		api.EnableResultCache(capacity)
		logger.Info("result cache enabled", "capacity", capacity)
	}
	api.SetDefaultDeadline(*deadline)
	if *inflight != 0 {
		n := *inflight
		if n < 0 {
			n = 0 // GOMAXPROCS
		}
		if err := api.SetAdmissionLimits(n, *maxQueue, *queueWait); err != nil {
			fatal(logger, "invalid admission limits", "error", err)
		}
		logger.Info("admission control enabled",
			"maxInFlight", n, "maxQueue", *maxQueue, "queueWait", *queueWait)
	}

	if *opsAddr != "" {
		ops := &http.Server{
			Addr:              *opsAddr,
			Handler:           api.OpsHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("ops listener starting", "addr", *opsAddr)
			if err := ops.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal(logger, "ops listener failed", "error", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("cssiserve listening", "addr", *addr)
	if err = srv.ListenAndServe(); err != nil {
		fatal(logger, "listener failed", "error", err)
	}
}

// newLogger builds the process logger: logfmt text on stderr at the
// requested level.
func newLogger(level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
}

// traceSlowArg maps the -slow-query flag to the library convention:
// the flag's 0 means "slow rule off", the library's 0 means "default".
func traceSlowArg(d time.Duration) time.Duration {
	if d <= 0 {
		return -1
	}
	return d
}

// traceSampleArg maps the -trace-sample flag to the library
// convention: the flag's 0 means "only slow/errored", the library's 0
// means "default".
func traceSampleArg(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

// parseSLO parses the -slo flag: a comma-separated list of ascending
// Go durations, e.g. "5ms,25ms,100ms".
func parseSLO(s string) ([]time.Duration, error) {
	parts := strings.Split(s, ",")
	out := make([]time.Duration, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		d, err := time.ParseDuration(p)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// fatal logs at Error level and exits nonzero (slog has no Fatal).
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
