// Command cssiserve runs the CSSI/CSSIA index as an HTTP similarity-
// search service. It either generates a synthetic dataset and builds a
// fresh index, or loads a previously saved one.
//
//	cssiserve -addr :8080 -kind twitter -size 20000          # fresh
//	cssiserve -addr :8080 -size 20000 -shards 8              # fresh, sharded
//	cssiserve -addr :8080 -index saved.idx                   # single-index file
//	cssiserve -addr :8080 -index saved.d/                    # sharded directory
//
// With -shards N the index is hash-partitioned across N goroutine-owned
// shards: reads scatter/gather (exact results identical to unsharded),
// writes route to one shard and pay only that shard's copy-on-write
// cost. -index accepts both a single-index file (served as one shard)
// and a directory written by -save with -shards > 1. See
// internal/server for the JSON API, including GET /metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro"
	"repro/internal/embed"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		kind      = flag.String("kind", "twitter", "dataset kind when generating: twitter or yelp")
		size      = flag.Int("size", 20000, "dataset size when generating")
		dim       = flag.Int("dim", 100, "embedding dimensionality when generating")
		seed      = flag.Uint64("seed", 1, "random seed")
		shards    = flag.Int("shards", 1, "shard count when building (a loaded index keeps its stored shard count)")
		indexPath = flag.String("index", "", "load a saved index (file or sharded directory) instead of generating")
		savePath  = flag.String("save", "", "after building, save the index here (a directory when -shards > 1)")
	)
	flag.Parse()

	var (
		idx   *cssi.ShardedIndex
		model *embed.Model
		err   error
	)
	if *indexPath != "" {
		idx, err = cssi.LoadSharded(*indexPath)
		if err != nil {
			log.Fatalf("cssiserve: load: %v", err)
		}
		log.Printf("loaded index: %d objects, %d hybrid clusters, %d shard(s)",
			idx.Len(), idx.NumClusters(), idx.NumShards())
	} else {
		var k cssi.DatasetKind
		switch *kind {
		case "twitter":
			k = cssi.TwitterLike
		case "yelp":
			k = cssi.YelpLike
		default:
			log.Fatalf("cssiserve: unknown kind %q", *kind)
		}
		ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: k, Size: *size, Dim: *dim, Seed: *seed})
		if err != nil {
			log.Fatalf("cssiserve: %v", err)
		}
		model = ds.Model
		start := time.Now()
		idx, err = cssi.BuildSharded(ds, *shards, cssi.Options{Seed: *seed})
		if err != nil {
			log.Fatalf("cssiserve: build: %v", err)
		}
		log.Printf("built index over %d objects (%d hybrid clusters, %d shard(s)) in %v",
			idx.Len(), idx.NumClusters(), idx.NumShards(), time.Since(start).Round(time.Millisecond))
	}
	if *savePath != "" {
		// SaveDir writes the manifest + per-shard layout; for one shard
		// that is still loadable (and LoadSharded also reads legacy
		// single-index files saved by older builds).
		if err := idx.SaveDir(*savePath); err != nil {
			log.Fatalf("cssiserve: save: %v", err)
		}
		log.Printf("saved index to %s", *savePath)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewSharded(idx, model).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("cssiserve listening on %s\n", *addr)
	if err = srv.ListenAndServe(); err != nil {
		log.Fatalf("cssiserve: %v", err)
	}
}
