// Command cssibench regenerates the paper's tables and figures.
//
// Usage:
//
//	cssibench [-exp fig5,table4|all] [-scale 1.0] [-queries 50] [-seed 1] [-csv] [-json out.json]
//
// Each experiment prints one or more tables; -csv switches to
// comma-separated output for plotting, and -json additionally writes
// every table of the run into one machine-readable JSON file. -scale
// multiplies every dataset size (1.0 is laptop scale; the paper's
// server scale corresponds to roughly 250).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment IDs ("+strings.Join(experiments.IDs(), ",")+") or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier (1.0 = laptop scale)")
		queries = flag.Int("queries", 50, "queries per measurement")
		errQ    = flag.Int("error-queries", 400, "queries for error-rate measurements")
		k       = flag.Int("k", 50, "number of nearest neighbors")
		lambda  = flag.Float64("lambda", 0.5, "balance parameter λ")
		dim     = flag.Int("dim", 100, "embedding dimensionality n")
		seed    = flag.Uint64("seed", 1, "random seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir  = flag.String("out", "", "also write each table as CSV into this directory")
		jsonOut = flag.String("json", "", "also write all tables of the run as JSON to this file")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	setup := experiments.Setup{
		Scale: *scale, Queries: *queries, ErrorQueries: *errQ,
		K: *k, Lambda: *lambda, Dim: *dim, Seed: *seed,
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	var collected []experiments.Table
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "cssibench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := runner(setup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cssibench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for i := range tables {
			if *csv {
				tables[i].CSV(os.Stdout)
				fmt.Println()
			} else {
				tables[i].Render(os.Stdout)
			}
			if *outDir != "" {
				if err := writeCSV(*outDir, id, i, &tables[i]); err != nil {
					fmt.Fprintf(os.Stderr, "cssibench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		collected = append(collected, tables...)
		if !*csv {
			fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, setup, collected); err != nil {
			fmt.Fprintf(os.Stderr, "cssibench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeJSON stores the run's setup and every produced table as one JSON
// document (the machine-readable counterpart of the rendered tables,
// e.g. BENCH_concurrency.json in the repo root).
func writeJSON(path string, setup experiments.Setup, tables []experiments.Table) error {
	doc := struct {
		Setup  experiments.Setup   `json:"setup"`
		Tables []experiments.Table `json:"tables"`
	}{Setup: setup, Tables: tables}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// writeCSV stores one table as <dir>/<experiment>_<n>.csv.
func writeCSV(dir, id string, n int, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(fmt.Sprintf("%s/%s_%d.csv", dir, id, n))
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return nil
}
