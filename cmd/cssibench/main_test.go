package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tb := experiments.Table{
		ID:     "figX",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}
	if err := writeCSV(dir, "figX", 0, &tb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figX_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(string(data))
	if got != "a,b\n1,2" {
		t.Fatalf("csv content %q", got)
	}
}

func TestWriteCSVCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "deeper")
	tb := experiments.Table{ID: "t", Header: []string{"x"}, Rows: [][]string{{"1"}}}
	if err := writeCSV(dir, "t", 3, &tb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "t_3.csv")); err != nil {
		t.Fatal(err)
	}
}
