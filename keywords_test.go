package cssi

import (
	"strings"
	"testing"
)

func keywordFixture(t *testing.T) (*Dataset, *Index) {
	t.Helper()
	ds := testDataset(t, 800)
	idx := mustBuild(t, ds, Options{Seed: 41})
	idx.EnableKeywordFilter()
	return ds, idx
}

func TestSearchWithKeywordsMatchesBruteForce(t *testing.T) {
	ds, idx := keywordFixture(t)
	// Use a word that actually occurs.
	word := strings.Fields(ds.Objects[25].Text)[0]
	q := ds.Objects[3]
	got, ok := idx.SearchWithKeywords(&q, 5, 0.5, word)
	if !ok {
		t.Fatalf("keyword %q rejected", word)
	}
	// Brute force over all objects containing the word.
	var want []Result
	for i := range ds.Objects {
		if !containsWord(ds.Objects[i].Text, word) {
			continue
		}
		want = append(want, Result{ID: ds.Objects[i].ID, Dist: idx.space.Distance(nil, 0.5, &q, &ds.Objects[i])})
	}
	sortByDistID(want)
	if len(want) > 5 {
		want = want[:5]
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Every result must contain the keyword.
	for _, r := range got {
		o, _ := idx.Object(r.ID)
		if !containsWord(o.Text, word) {
			t.Fatalf("result %d lacks keyword %q: %q", r.ID, word, o.Text)
		}
	}
}

func containsWord(text, word string) bool {
	for _, w := range strings.Fields(text) {
		if w == word {
			return true
		}
	}
	return false
}

func sortByDistID(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j], rs[j-1]
			if a.Dist < b.Dist || (a.Dist == b.Dist && a.ID < b.ID) {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			} else {
				break
			}
		}
	}
}

func TestSearchWithKeywordsUnusableList(t *testing.T) {
	_, idx := keywordFixture(t)
	q := Object{Vec: make([]float32, 24)}
	if _, ok := idx.SearchWithKeywords(&q, 5, 0.5, "the"); ok {
		t.Fatal("stop-word-only keywords should be rejected")
	}
	if _, ok := idx.SearchWithKeywords(&q, 5, 0.5); ok {
		t.Fatal("empty keywords should be rejected")
	}
}

func TestSearchWithKeywordsNoMatch(t *testing.T) {
	ds, idx := keywordFixture(t)
	q := ds.Objects[0]
	got, ok := idx.SearchWithKeywords(&q, 5, 0.5, "zzznotaword")
	if !ok || got != nil {
		t.Fatalf("got %v ok=%v, want empty+true", got, ok)
	}
}

func TestSearchWithKeywordsPanicsWhenDisabled(t *testing.T) {
	ds := testDataset(t, 50)
	idx := mustBuild(t, ds, Options{Seed: 42})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.SearchWithKeywords(&ds.Objects[0], 3, 0.5, "word")
}

func TestKeywordFilterMaintenance(t *testing.T) {
	ds, idx := keywordFixture(t)
	if !idx.KeywordFilterEnabled() {
		t.Fatal("filter should be enabled")
	}
	// Insert an object with a fresh unique word.
	nova := ds.Objects[0]
	nova.ID = 777777
	nova.Text = nova.Text + " wzzzspecial"
	// Manually register the new word in the vocabulary? Not needed: the
	// filter tokenizes raw text; the vector stays the old one.
	if err := idx.Insert(nova); err != nil {
		t.Fatal(err)
	}
	if df := idx.KeywordDocFrequency("wzzzspecial"); df != 1 {
		t.Fatalf("df after insert = %d", df)
	}
	got, ok := idx.SearchWithKeywords(&nova, 3, 0.5, "wzzzspecial")
	if !ok || len(got) != 1 || got[0].ID != nova.ID {
		t.Fatalf("keyword search after insert: %v ok=%v", got, ok)
	}
	// Delete removes it from the postings.
	if err := idx.Delete(nova.ID); err != nil {
		t.Fatal(err)
	}
	if df := idx.KeywordDocFrequency("wzzzspecial"); df != 0 {
		t.Fatalf("df after delete = %d", df)
	}
	// Update changes the indexed text.
	victim, _ := idx.Object(ds.Objects[10].ID)
	upd := *victim
	upd.Text = "wqqqanother " + upd.Text
	if err := idx.Update(upd); err != nil {
		t.Fatal(err)
	}
	if df := idx.KeywordDocFrequency("wqqqanother"); df != 1 {
		t.Fatalf("df after update = %d", df)
	}
}

func TestKeywordFilterSurvivesRebuild(t *testing.T) {
	ds, idx := keywordFixture(t)
	word := strings.Fields(ds.Objects[5].Text)[0]
	before := idx.KeywordDocFrequency(word)
	if err := idx.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if !idx.KeywordFilterEnabled() {
		t.Fatal("filter lost across rebuild")
	}
	if after := idx.KeywordDocFrequency(word); after != before {
		t.Fatalf("df changed across rebuild: %d -> %d", before, after)
	}
}

func TestKeywordDocFrequencyDisabled(t *testing.T) {
	ds := testDataset(t, 30)
	idx := mustBuild(t, ds, Options{Seed: 43})
	if idx.KeywordDocFrequency("anything") != 0 {
		t.Fatal("disabled filter should report 0")
	}
}

// A very common keyword exercises the filtered-index path (candidates
// above the brute-force cap).
func TestSearchWithKeywordsBroadKeyword(t *testing.T) {
	ds, err := GenerateDataset(DatasetConfig{Kind: TwitterLike, Size: 4000, Dim: 24, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	idx := mustBuild(t, ds, Options{Seed: 44})
	idx.EnableKeywordFilter()
	// Rank-0 word appears in a large share of Zipf-sampled documents.
	word := ds.Model.Vocab.Words[0]
	if idx.KeywordDocFrequency(word) <= keywordBruteForceCap {
		t.Fatalf("word %q not broad enough (%d docs) — test setup invalid", word, idx.KeywordDocFrequency(word))
	}
	q := ds.Objects[9]
	got, ok := idx.SearchWithKeywords(&q, 10, 0.5, word)
	if !ok || len(got) != 10 {
		t.Fatalf("broad keyword search: %d results ok=%v", len(got), ok)
	}
	for _, r := range got {
		o, _ := idx.Object(r.ID)
		if !containsWord(o.Text, word) {
			t.Fatalf("result lacks keyword: %q", o.Text)
		}
	}
	// Must agree with unfiltered brute force restricted to matches.
	var want []Result
	for i := range ds.Objects {
		if containsWord(ds.Objects[i].Text, word) {
			want = append(want, Result{ID: ds.Objects[i].ID, Dist: idx.space.Distance(nil, 0.5, &q, &ds.Objects[i])})
		}
	}
	sortByDistID(want)
	for i := 0; i < 10; i++ {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("broad result %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}
