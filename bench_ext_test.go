// Benchmarks for the beyond-the-paper extensions: ablations, extended
// query types, batch search, maintenance-heavy flows, persistence, and
// the NIQ/LDA appendix substrate.
package cssi

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hnsw"
	"repro/internal/lda"
	"repro/internal/metric"
	"repro/internal/niqtree"
)

// --- Ablation: each pruning mechanism isolated ---

func BenchmarkAblation(b *testing.B) {
	e := getEnv(b, dataset.TwitterLike, benchSize, core.Config{})
	configs := []struct {
		name string
		opts core.AblationOptions
	}{
		{"Full", core.AblationOptions{}},
		{"NoInter", core.AblationOptions{DisableInterCluster: true}},
		{"NoIntra", core.AblationOptions{DisableIntraCluster: true}},
		{"NoPruning", core.AblationOptions{DisableInterCluster: true, DisableIntraCluster: true}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.idx.SearchAblated(e.query(i), benchK, benchLambda, cfg.opts, nil)
			}
		})
	}
}

// --- Extended query types ---

func BenchmarkRangeSearch(b *testing.B) {
	e := getEnv(b, dataset.TwitterLike, benchSize, core.Config{})
	for _, r := range []float64{0.02, 0.05, 0.1} {
		b.Run(fmt.Sprintf("r=%.2f", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.idx.RangeSearch(e.query(i), r, benchLambda, nil)
			}
		})
	}
}

func BenchmarkSearchInBox(b *testing.B) {
	e := getEnv(b, dataset.TwitterLike, benchSize, core.Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := e.query(i)
		e.idx.SearchInBox(q, q.X-0.1, q.Y-0.1, q.X+0.1, q.Y+0.1, 10, nil)
	}
}

// workerLevels returns {1, GOMAXPROCS} without duplicates (they collide
// in sub-benchmark names on single-CPU machines).
func workerLevels() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// --- Batch search throughput (one batch of 64 queries per iteration) ---

func BenchmarkBatchSearch(b *testing.B) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: benchSize, Dim: 100, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := Build(ds, Options{Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	queries := ds.SampleQueries(64, 5)
	for _, workers := range workerLevels() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx.BatchSearch(queries, benchK, benchLambda, false, workers, nil)
			}
		})
	}
}

// --- Parallel index construction ---

func BenchmarkBuildWorkers(b *testing.B) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: benchSize, Dim: 100, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range workerLevels() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				space, err := metric.NewSpace(ds)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Build(ds, space, core.Config{Seed: 77, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Persistence ---

func BenchmarkIndexSaveLoad(b *testing.B) {
	e := getEnv(b, dataset.TwitterLike, benchSize, core.Config{})
	var buf bytes.Buffer
	if err := e.idx.Save(&buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.Run("Save", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := e.idx.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Load(bytes.NewReader(blob)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- NIQ appendix substrate ---

func BenchmarkNIQSearch(b *testing.B) {
	e := getEnv(b, dataset.TwitterLike, benchSize, core.Config{})
	topics, err := niqtree.AssignTopicsLDA(e.ds, e.ds.Model.Vocab, 16, lda.Config{Iterations: 10, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	niq, err := niqtree.Build(e.ds, e.space, topics, niqtree.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		niq.Search(e.query(i), benchK, benchLambda, nil)
	}
}

// --- HNSW appendix substrate ---

func BenchmarkHNSW(b *testing.B) {
	e := getEnv(b, dataset.TwitterLike, benchSize, core.Config{})
	g := hnsw.New(100, hnsw.Config{Seed: 77})
	for i := range e.ds.Objects {
		g.Add(e.ds.Objects[i].Vec)
	}
	b.Run("Search", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Search(e.query(i).Vec, 10, 64)
		}
	})
}
