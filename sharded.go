package cssi

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/rescache"
)

// ShardedIndex partitions one logical CSSI index across P independent
// shards, each a snapshot-published ConcurrentIndex owning a disjoint
// subset of the objects (assignment by a hash of the object ID, so an
// ID's shard never changes). It exists to cut the copy-on-write cost of
// the concurrency layer: a single-op write on a ConcurrentIndex clones
// O(n) snapshot metadata, while on a sharded index it clones only the
// touched shard — O(n/P) — and writes to different shards do not
// serialize against each other at all.
//
//   - Reads SCATTER: every shard answers against its current snapshot,
//     and the per-shard top-k lists are k-way merged in the canonical
//     (ascending distance, ascending ID) order. Because every shard
//     shares the same distance normalizers (computed once over the full
//     dataset at BuildSharded time) and CSSI is exact regardless of how
//     objects are clustered, the merged exact result set is
//     BIT-IDENTICAL to what an unsharded index returns — including tie
//     breaks. SearchApprox remains approximate: its error profile
//     depends on the per-shard clustering, so sharded CSSIA results can
//     differ from unsharded CSSIA (both within the paper's error model).
//   - Writes ROUTE: Insert/Delete/Update touch exactly one shard and
//     pay that shard's O(n/P) clone. P writers on P distinct shards
//     proceed concurrently.
//   - A scatter read and a routed write never block each other: reads
//     are lock-free snapshot loads, and publication is a single atomic
//     pointer store per shard.
//
// Consistency: each read runs against one consistent snapshot PER
// SHARD, loaded independently at scatter time. A write that was
// acknowledged before the read started is always visible; a write
// concurrent with the read is visible iff its shard's snapshot was
// loaded after publication. There is no cross-shard read transaction —
// the same semantics a distributed search cluster gives, in-process.
type ShardedIndex struct {
	shards []*ConcurrentIndex
	dim    int

	// sink is the optional always-on trace collector (SetTraceSink),
	// swapped atomically so it can be (un)installed while serving.
	sink atomic.Pointer[obs.Sink]

	// resCache is the optional snapshot-keyed result cache
	// (EnableResultCache) and epoch its interned composite snapshot
	// token — the vector of per-shard snapshots a cached entry was
	// computed against (see epochToken).
	resCache atomic.Pointer[rescache.Cache]
	epoch    atomic.Pointer[shardEpoch]
}

// shardOf maps an object ID to its owning shard: a multiplicative
// (Fibonacci) hash scrambles the ID so that dense sequential ID ranges
// — the common case for ingestion — still spread uniformly, then the
// high 32 bits select the shard. Deterministic across processes, so a
// persisted sharded index reloads with identical routing.
func shardOf(id uint32, p int) int {
	if p == 1 {
		return 0
	}
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(p))
}

// BuildSharded partitions ds by object ID across the given number of
// shards and builds one CSSI index per shard, in parallel. The distance
// normalizers (DsMax, DtMax) are computed ONCE over the full dataset
// and shared by every shard — this is what makes sharded exact search
// bit-identical to unsharded search; per-shard quantities (clustering,
// PCA model, projected normalizer) are derived from each shard's own
// objects. When Ks/Kt are zero they are derived from the GLOBAL object
// count (√n·f over the full dataset, not the shard size n/P): each
// shard then partitions its objects at the same granularity the flat
// index would, so per-shard clusters stay comparably tight and the
// sharded index's read efficiency matches the flat index's instead of
// degrading with P. Explicit Ks/Kt still apply per shard verbatim.
//
// Every shard must receive at least one object; with a uniform ID hash
// this fails only when ds is tiny relative to the shard count — use
// fewer shards or more data.
func BuildSharded(ds *Dataset, shards int, opts Options) (*ShardedIndex, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cssi: shard count %d, want >= 1", shards)
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("cssi: empty dataset")
	}
	if shards == 1 {
		idx, err := Build(ds, opts)
		if err != nil {
			return nil, err
		}
		return ShardedFrom(idx), nil
	}
	semKind := metric.EuclideanSemantic
	if opts.AngularSemantic {
		semKind = metric.AngularSemantic
	}
	// One Space over the FULL dataset: the conservative diameter
	// estimates every shard must agree on.
	space, err := metric.NewSpaceWithSemantic(ds, semKind)
	if err != nil {
		return nil, err
	}
	parts := make([]*Dataset, shards)
	for i := range parts {
		parts[i] = &Dataset{Dim: ds.Dim, Model: ds.Model}
	}
	for i := range ds.Objects {
		p := parts[shardOf(ds.Objects[i].ID, shards)]
		p.Objects = append(p.Objects, ds.Objects[i])
	}
	for i, p := range parts {
		if p.Len() == 0 {
			return nil, fmt.Errorf("cssi: shard %d of %d would be empty over %d objects; use fewer shards or more data",
				i, shards, ds.Len())
		}
	}
	s := &ShardedIndex{shards: make([]*ConcurrentIndex, shards), dim: ds.Dim}
	// Derive defaulted cluster counts from the GLOBAL object count (see
	// the doc comment): computed once here so every shard — whatever its
	// exact share of the hash — clusters at the flat index's granularity.
	globalK := core.DeriveClusterCount(ds.Len(), opts.F)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each shard gets its OWN copy of the space: core.Build sets
			// the projected-space normalizer (DtProjMax) on it, which is
			// legitimately per-shard, while the shared DsMax/DtMax values
			// are carried over unchanged.
			shardSpace := *space
			cfg := opts.coreConfig()
			if cfg.Ks == 0 {
				cfg.Ks = globalK
			}
			if cfg.Kt == 0 {
				cfg.Kt = globalK
			}
			cfg.Seed = opts.Seed + uint64(i) // distinct, deterministic per-shard seeds
			c, err := core.Build(parts[i], &shardSpace, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("cssi: building shard %d: %w", i, err)
				return
			}
			s.shards[i] = Concurrent(&Index{core: c, space: &shardSpace})
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return s, nil
}

// ShardedFrom wraps an existing single index as a one-shard
// ShardedIndex — the adapter that lets sharded-aware callers (the HTTP
// server, the persistence loader) serve a legacy unsharded index
// through the scatter/gather API unchanged. The wrapped index must not
// be mutated directly afterwards.
func ShardedFrom(idx *Index) *ShardedIndex {
	return &ShardedIndex{shards: []*ConcurrentIndex{Concurrent(idx)}, dim: idx.Dim()}
}

// NumShards returns the number of shards P.
func (s *ShardedIndex) NumShards() int { return len(s.shards) }

// ShardFor returns the shard index that owns (or would own) the given
// object ID.
func (s *ShardedIndex) ShardFor(id uint32) int { return shardOf(id, len(s.shards)) }

// Shard returns the i-th shard's ConcurrentIndex. Intended for
// introspection and tests (e.g. driving per-shard writes directly);
// production writes should go through the routing Insert/Delete/Update
// so IDs land on their hash-assigned shard.
func (s *ShardedIndex) Shard(i int) *ConcurrentIndex { return s.shards[i] }

// scatter runs fn once per shard against an independently loaded
// per-shard snapshot, and returns after all shards finish. fn must
// confine itself to its shard index's slots in any shared output
// slices.
//
// Fan-out is capped at the machine's CPU count: spawning P goroutines
// on fewer than P cores buys no parallelism but multiplies the read's
// scheduler share P-fold, starving concurrent writers, and pays P
// goroutine launches per call. Below the cap, shards are striped over
// min(P, NumCPU) workers; on a single-core host the whole scatter runs
// inline in the caller's goroutine. Results are identical either way —
// fn writes only to its own shard's slot, and the gather step orders
// by (distance, ID) regardless of completion order.
func (s *ShardedIndex) scatter(fn func(shard int, snap *Index)) {
	p := len(s.shards)
	workers := s.scatterDegree()
	if workers <= 1 {
		for i := range s.shards {
			fn(i, s.shards[i].Snapshot())
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < p; i += workers {
				fn(i, s.shards[i].Snapshot())
			}
		}(w)
	}
	wg.Wait()
}

// scatterDegree is the number of goroutines a scatter may use:
// min(P, NumCPU), at least 1. On a single-core host it is always 1 and
// every scatter runs inline.
func (s *ShardedIndex) scatterDegree() int {
	w := runtime.NumCPU()
	if p := len(s.shards); w > p {
		w = p
	}
	if w < 1 {
		w = 1
	}
	return w
}

// gatherStats folds per-shard work counters into the caller's Stats.
func gatherStats(st *Stats, per []Stats) {
	if st == nil {
		return
	}
	for i := range per {
		st.Add(&per[i])
	}
}

// gatherMetas folds the per-shard execution metas into pm: the merged
// answer is partial when any shard's contribution was cut by the time
// budget (each scatter goroutine writes only its own slot, so the
// slice needs no synchronization).
func gatherMetas(pm *core.SearchMeta, metas []core.SearchMeta) {
	for i := range metas {
		if metas[i].Partial {
			pm.Partial = true
			return
		}
	}
}

// Search returns the exact k nearest neighbors of q, scattering the
// query to every shard and merging the per-shard top-k lists. The
// result — order included — is bit-identical to an unsharded Search
// over the same objects.
//
// Deprecated: use Do with a SearchRequest.
func (s *ShardedIndex) Search(q *Object, k int, lambda float64) []Result {
	return mustResults(s.Do(SearchRequest{Query: q, K: k, Lambda: lambda}))
}

// SearchStats is Search with work counters summed across shards.
//
// Deprecated: use Do with SearchRequest.Stats.
func (s *ShardedIndex) SearchStats(q *Object, k int, lambda float64, st *Stats) []Result {
	return mustResults(s.Do(SearchRequest{Query: q, K: k, Lambda: lambda, Stats: st}))
}

// searchExact is the exact scatter/gather search behind Do, appending
// the merged top-k to dst.
//
// When the scatter degree is 1 (single-core host, or P == 1) the shards
// are scanned sequentially with the k-NN heap carried from shard to
// shard (core.SearchSeededInto): shard i starts with the best k
// candidates from shards 0..i-1, so its pruning bound is as tight as a
// flat index's at the same point in the scan, and the final heap IS the
// global top-k — no merge step. Because the shards share one metric
// space's normalizers, distances are globally comparable and the result
// is the same exact top-k the parallel scatter+merge produces.
func (s *ShardedIndex) searchExact(dst []Result, q *Object, k int, lambda float64, opts core.SearchOptions, st *Stats, tr *SearchTrace, pm *core.SearchMeta) []Result {
	s.checkRead(q, k, lambda)
	if s.scatterDegree() == 1 {
		if tr != nil {
			return s.searchExactChainTraced(dst, q, k, lambda, opts, st, tr, pm)
		}
		var local Stats
		pst := &local
		if st == nil {
			pst = nil
		}
		// Per-link metas OR into pm: a budget cut on any link leaves
		// later shards' candidates unexamined, so the whole chained
		// answer is partial.
		var lm core.SearchMeta
		cur := s.shards[0].Snapshot().core.SearchOptionsSeededMetaInto(make([]Result, 0, k), nil, q, k, lambda, opts, pst, &lm)
		pm.Partial = pm.Partial || lm.Partial
		buf := make([]Result, 0, k)
		for i := 1; i < len(s.shards); i++ {
			next := s.shards[i].Snapshot().core.SearchOptionsSeededMetaInto(buf[:0], cur, q, k, lambda, opts, pst, &lm)
			pm.Partial = pm.Partial || lm.Partial
			buf, cur = cur, next
		}
		if st != nil {
			st.Add(&local)
		}
		if dst != nil {
			return append(dst, cur...)
		}
		return cur
	}
	lists := make([][]Result, len(s.shards))
	per := make([]Stats, len(s.shards))
	metas := make([]core.SearchMeta, len(s.shards))
	if tr != nil {
		tr.Parallel = true
		tr.Shards = appendSpans(tr.Shards, len(s.shards))
		s.scatter(func(i int, snap *Index) {
			sp := &tr.Shards[i]
			sp.Shard, sp.Objects = i, snap.Len()
			spanStart := time.Now()
			lists[i] = snap.core.SearchExplainOptionsMetaInto(nil, q, k, lambda, opts, &sp.Stats, &metas[i])
			sp.DurationNanos = time.Since(spanStart).Nanoseconds()
			per[i] = sp.Stats.Stats
		})
	} else {
		s.scatter(func(i int, snap *Index) {
			lists[i] = snap.core.SearchOptionsMetaInto(nil, q, k, lambda, opts, &per[i], &metas[i])
		})
	}
	gatherMetas(pm, metas)
	gatherStats(st, per)
	if dst == nil {
		dst = make([]Result, 0, k)
	}
	if tr != nil {
		g := time.Now()
		dst = knn.MergeSorted(dst, lists, k)
		tr.GatherNanos += time.Since(g).Nanoseconds()
		return dst
	}
	return knn.MergeSorted(dst, lists, k)
}

// appendSpans grows spans to n zeroed entries, reusing a pooled
// trace's capacity so the steady-state traced scatter allocates
// nothing for its span tree.
func appendSpans(spans []SearchSpan, n int) []SearchSpan {
	for i := 0; i < n; i++ {
		spans = append(spans, SearchSpan{})
	}
	return spans
}

// searchExactChainTraced is the single-core bound-carrying chain with
// per-shard span recording: same shard order and carried bound as the
// untraced chain — results stay bit-identical — with each shard's
// phase stats collected through the seeded explain entry point instead
// of forcing the standalone explain scatter (which would give up the
// chain's bound tightening and distort the very latencies being
// traced).
func (s *ShardedIndex) searchExactChainTraced(dst []Result, q *Object, k int, lambda float64, opts core.SearchOptions, st *Stats, tr *SearchTrace, pm *core.SearchMeta) []Result {
	snap := s.shards[0].Snapshot()
	tr.Shards = append(tr.Shards, SearchSpan{Shard: 0, Objects: snap.Len()})
	spanStart := time.Now()
	var lm core.SearchMeta
	cur := snap.core.SearchExplainOptionsSeededMetaInto(make([]Result, 0, k), nil, q, k, lambda, opts, &tr.Shards[0].Stats, &lm)
	pm.Partial = pm.Partial || lm.Partial
	tr.Shards[0].DurationNanos = time.Since(spanStart).Nanoseconds()
	buf := make([]Result, 0, k)
	for i := 1; i < len(s.shards); i++ {
		snap = s.shards[i].Snapshot()
		tr.Shards = append(tr.Shards, SearchSpan{Shard: i, Objects: snap.Len()})
		sp := &tr.Shards[i]
		spanStart = time.Now()
		next := snap.core.SearchExplainOptionsSeededMetaInto(buf[:0], cur, q, k, lambda, opts, &sp.Stats, &lm)
		pm.Partial = pm.Partial || lm.Partial
		sp.DurationNanos = time.Since(spanStart).Nanoseconds()
		buf, cur = cur, next
	}
	if st != nil {
		for i := range tr.Shards {
			st.Add(&tr.Shards[i].Stats.Stats)
		}
	}
	if dst != nil {
		return append(dst, cur...)
	}
	return cur
}

// SearchApprox returns approximate (CSSIA) k nearest neighbors. Each
// shard prunes with its own clustering, so the result can differ from
// an unsharded index's SearchApprox — it is exactly the merge of the
// per-shard CSSIA answers, with the same per-shard error model as the
// paper's.
//
// Deprecated: use Do with SearchRequest.Approx.
func (s *ShardedIndex) SearchApprox(q *Object, k int, lambda float64) []Result {
	return mustResults(s.Do(SearchRequest{Query: q, K: k, Lambda: lambda, Approx: true}))
}

// SearchApproxStats is SearchApprox with work counters summed across
// shards.
//
// Deprecated: use Do with SearchRequest.Approx and SearchRequest.Stats.
func (s *ShardedIndex) SearchApproxStats(q *Object, k int, lambda float64, st *Stats) []Result {
	return mustResults(s.Do(SearchRequest{Query: q, K: k, Lambda: lambda, Approx: true, Stats: st}))
}

// searchApprox is the approximate scatter/gather search behind Do,
// appending the merged top-k to dst.
func (s *ShardedIndex) searchApprox(dst []Result, q *Object, k int, lambda float64, opts core.SearchOptions, st *Stats, tr *SearchTrace, pm *core.SearchMeta) []Result {
	s.checkRead(q, k, lambda)
	lists := make([][]Result, len(s.shards))
	per := make([]Stats, len(s.shards))
	metas := make([]core.SearchMeta, len(s.shards))
	if tr != nil {
		tr.Parallel = s.scatterDegree() > 1
		tr.Shards = appendSpans(tr.Shards, len(s.shards))
		s.scatter(func(i int, snap *Index) {
			sp := &tr.Shards[i]
			sp.Shard, sp.Objects = i, snap.Len()
			spanStart := time.Now()
			lists[i] = snap.core.SearchExplainOptionsMetaInto(nil, q, k, lambda, opts, &sp.Stats, &metas[i])
			sp.DurationNanos = time.Since(spanStart).Nanoseconds()
			per[i] = sp.Stats.Stats
		})
	} else {
		s.scatter(func(i int, snap *Index) {
			lists[i] = snap.core.SearchOptionsMetaInto(nil, q, k, lambda, opts, &per[i], &metas[i])
		})
	}
	gatherMetas(pm, metas)
	gatherStats(st, per)
	if dst == nil {
		dst = make([]Result, 0, k)
	}
	if tr != nil {
		g := time.Now()
		dst = knn.MergeSorted(dst, lists, k)
		tr.GatherNanos += time.Since(g).Nanoseconds()
		return dst
	}
	return knn.MergeSorted(dst, lists, k)
}

// SearchExplain answers one k-NN query — exact CSSI when approx is
// false, CSSIA when true — and returns the per-query trace: one
// SearchSpan per shard (objects scanned vs pruned, prune ratios, span
// wall time) plus the cross-shard aggregate, stamped with requestID
// (pass "" to have one generated). Exact results are bit-identical to
// Search. The explain path always scatters to every shard — even where
// SearchStats would chain shards sequentially with a carried bound — so
// the spans describe each shard's standalone work; the trace is
// diagnostic, not a measurement of the optimized sequential path.
//
// Deprecated: use Do with SearchRequest.Trace (and SearchRequest.Explain
// for the cross-shard aggregate).
func (s *ShardedIndex) SearchExplain(q *Object, k int, lambda float64, approx bool, requestID string) ([]Result, *SearchTrace) {
	var tr SearchTrace
	res := mustResults(s.Do(SearchRequest{Query: q, K: k, Lambda: lambda, Approx: approx, Trace: &tr, RequestID: requestID}))
	return res, &tr
}

// searchExplain is the per-shard-instrumented scatter behind Do's
// Explain/Trace path.
func (s *ShardedIndex) searchExplain(q *Object, k int, lambda float64, opts core.SearchOptions, requestID string, pm *core.SearchMeta) ([]Result, *SearchTrace) {
	s.checkRead(q, k, lambda)
	if requestID == "" {
		requestID = obs.NewRequestID()
	}
	t := &SearchTrace{
		RequestID: requestID,
		Algo:      algoName(opts),
		K:         k,
		Lambda:    lambda,
		Shards:    make([]SearchSpan, len(s.shards)),
		Parallel:  s.scatterDegree() > 1,
	}
	start := time.Now()
	t.StartUnixNanos = start.UnixNano()
	lists := make([][]Result, len(s.shards))
	metas := make([]core.SearchMeta, len(s.shards))
	s.scatter(func(i int, snap *Index) {
		sp := &t.Shards[i]
		sp.Shard = i
		sp.Objects = snap.Len()
		spanStart := time.Now()
		lists[i] = snap.core.SearchExplainOptionsMetaInto(nil, q, k, lambda, opts, &sp.Stats, &metas[i])
		sp.DurationNanos = time.Since(spanStart).Nanoseconds()
	})
	gatherMetas(pm, metas)
	g := time.Now()
	res := knn.MergeSorted(make([]Result, 0, k), lists, k)
	t.GatherNanos = time.Since(g).Nanoseconds()
	t.Partial = pm.Partial
	var kth float64
	if len(res) > 0 {
		kth = res[len(res)-1].Dist
	}
	t.Finish(kth, time.Since(start).Nanoseconds())
	return res, t
}

// RangeSearch returns every object within combined distance r of q,
// in ascending distance order, merged across shards (bit-identical to
// the unsharded RangeSearch).
func (s *ShardedIndex) RangeSearch(q *Object, r, lambda float64) []Result {
	return s.RangeSearchStats(q, r, lambda, nil)
}

// RangeSearchStats is RangeSearch with work counters summed across
// shards.
func (s *ShardedIndex) RangeSearchStats(q *Object, r, lambda float64, st *Stats) []Result {
	s.checkRead(q, 1, lambda)
	if r < 0 {
		panic(fmt.Sprintf("cssi: negative range radius %v", r))
	}
	lists := make([][]Result, len(s.shards))
	per := make([]Stats, len(s.shards))
	s.scatter(func(i int, snap *Index) {
		lists[i] = snap.core.RangeSearch(q, r, lambda, &per[i])
	})
	gatherStats(st, per)
	return knn.MergeSorted(nil, lists, -1)
}

// SearchInBox returns the k objects inside the spatial window that are
// semantically nearest to q, merged across shards (bit-identical to the
// unsharded SearchInBox).
func (s *ShardedIndex) SearchInBox(q *Object, loX, loY, hiX, hiY float64, k int) []Result {
	return s.SearchInBoxStats(q, loX, loY, hiX, hiY, k, nil)
}

// SearchInBoxStats is SearchInBox with work counters summed across
// shards.
func (s *ShardedIndex) SearchInBoxStats(q *Object, loX, loY, hiX, hiY float64, k int, st *Stats) []Result {
	s.checkRead(q, k, 0)
	if loX > hiX || loY > hiY {
		panic("cssi: inverted spatial window")
	}
	lists := make([][]Result, len(s.shards))
	per := make([]Stats, len(s.shards))
	s.scatter(func(i int, snap *Index) {
		lists[i] = snap.core.SearchInBox(q, loX, loY, hiX, hiY, k, &per[i])
	})
	gatherStats(st, per)
	return knn.MergeSorted(make([]Result, 0, k), lists, k)
}

// SearchBatch answers many exact k-NN queries with one scatter: every
// shard runs the whole batch against its snapshot (through the
// zero-alloc batched core path), then each query's per-shard lists are
// merged. Same validation contract as ConcurrentIndex.SearchBatch:
// empty batches return an empty result without touching the shards and
// k <= 0 returns ErrInvalidK.
//
// Deprecated: use DoBatch with a BatchSearchRequest.
func (s *ShardedIndex) SearchBatch(queries []Object, k int, lambda float64) ([][]Result, error) {
	return s.DoBatch(BatchSearchRequest{Queries: queries, K: k, Lambda: lambda})
}

// BatchSearch is SearchBatch with the approximate variant, explicit
// per-shard parallelism, and work counters.
//
// Deprecated: use DoBatch with a BatchSearchRequest.
func (s *ShardedIndex) BatchSearch(queries []Object, k int, lambda float64, approx bool, parallelism int, st *Stats) ([][]Result, error) {
	return s.DoBatch(BatchSearchRequest{Queries: queries, K: k, Lambda: lambda, Approx: approx, Parallelism: parallelism, Stats: st})
}

// doBatch is the batched scatter/gather behind DoBatch. With tr
// non-nil it records one span per shard — full phase stats on the
// sequential chain, work counters and wall time on the parallel
// scatter — plus the gather merge time.
func (s *ShardedIndex) doBatch(req BatchSearchRequest, tr *SearchTrace) ([][]Result, error) {
	queries, k, lambda := req.Queries, req.K, req.Lambda
	approx, parallelism, st := req.Approx, req.Parallelism, req.Stats
	opts := req.searchOptions()
	if k < 1 {
		return nil, ErrInvalidK
	}
	if err := checkQuantMode(req.Approx, req.Quant); err != nil {
		return nil, err
	}
	if err := validateBatchNumerics(queries, lambda, req.RouteTarget); err != nil {
		return nil, err
	}
	if len(queries) == 0 {
		req.metaFill(s.snapshotID(), nil)
		return [][]Result{}, nil
	}
	s.checkRead(&queries[0], k, lambda)
	for i := range queries {
		if len(queries[i].Vec) != s.dim {
			panic(fmt.Sprintf("cssi: batch query %d has vector dim %d, index expects %d",
				i, len(queries[i].Vec), s.dim))
		}
	}
	partials := req.partialOut
	if partials == nil && req.Meta != nil && req.budgeted() {
		partials = make([]bool, len(queries))
	}
	// Sequential scatter (single-core host): chain each query through
	// the shards with the heap carried forward, exactly as SearchStats
	// does. One query's bound from shards 0..i-1 prunes shard i, so the
	// partitioned batch costs the same object-level work as a flat one.
	// The approximate variant keeps the merge path: CSSIA's result is
	// defined per clustering, and the documented sharded semantics are
	// "the merge of the per-shard CSSIA answers".
	if !approx && s.scatterDegree() == 1 {
		snaps := make([]*Index, len(s.shards))
		for i, sh := range s.shards {
			snaps[i] = sh.Snapshot()
		}
		if tr != nil {
			tr.Shards = appendSpans(tr.Shards, len(snaps))
			for i, snap := range snaps {
				tr.Shards[i].Shard, tr.Shards[i].Objects = i, snap.Len()
			}
		}
		var local Stats
		pst := &local
		if st == nil {
			pst = nil
		}
		out := make([][]Result, len(queries))
		cur := make([]Result, 0, k)
		buf := make([]Result, 0, k)
		var lm core.SearchMeta
		for qi := range queries {
			lm.Partial = false
			cur = s.chainShard(snaps[0], tr, 0, cur[:0], nil, &queries[qi], k, lambda, opts, pst, &lm)
			for si := 1; si < len(snaps); si++ {
				next := s.chainShard(snaps[si], tr, si, buf[:0], cur, &queries[qi], k, lambda, opts, pst, &lm)
				buf, cur = cur, next
			}
			if partials != nil && lm.Partial {
				partials[qi] = true
			}
			out[qi] = append(make([]Result, 0, len(cur)), cur...)
		}
		if tr != nil {
			if st != nil {
				for i := range tr.Shards {
					st.Add(&tr.Shards[i].Stats.Stats)
				}
			}
		} else if st != nil {
			st.Add(&local)
		}
		req.metaFill(s.snapshotID(), partials)
		return out, nil
	}
	perShard := make([][][]Result, len(s.shards))
	per := make([]Stats, len(s.shards))
	errs := make([]error, len(s.shards))
	var perPartial [][]bool
	if partials != nil {
		perPartial = make([][]bool, len(s.shards))
		for i := range perPartial {
			perPartial[i] = make([]bool, len(queries))
		}
	}
	if tr != nil {
		tr.Parallel = s.scatterDegree() > 1
		tr.Shards = appendSpans(tr.Shards, len(s.shards))
	}
	s.scatter(func(i int, snap *Index) {
		var shardPartial []bool
		if perPartial != nil {
			shardPartial = perPartial[i]
		}
		if tr != nil {
			sp := &tr.Shards[i]
			sp.Shard, sp.Objects = i, snap.Len()
			spanStart := time.Now()
			perShard[i], errs[i] = snap.core.SearchBatchOptionsMeta(queries, k, lambda, parallelism, opts, &per[i], shardPartial)
			sp.DurationNanos = time.Since(spanStart).Nanoseconds()
			sp.Stats.Stats = per[i]
			return
		}
		perShard[i], errs[i] = snap.core.SearchBatchOptionsMeta(queries, k, lambda, parallelism, opts, &per[i], shardPartial)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	// A query's merged answer is partial when any shard cut it short.
	for si := range perPartial {
		for qi, p := range perPartial[si] {
			if p {
				partials[qi] = true
			}
		}
	}
	gatherStats(st, per)
	var g time.Time
	if tr != nil {
		g = time.Now()
	}
	out := make([][]Result, len(queries))
	lists := make([][]Result, len(s.shards))
	for qi := range queries {
		for si := range s.shards {
			lists[si] = perShard[si][qi]
		}
		out[qi] = knn.MergeSorted(make([]Result, 0, k), lists, k)
	}
	if tr != nil {
		tr.GatherNanos += time.Since(g).Nanoseconds()
	}
	req.metaFill(s.snapshotID(), partials)
	return out, nil
}

// chainShard runs one shard link of the sequential batch chain,
// recording the span when tracing is on: the traced call goes through
// the seeded explain entry point so the span accumulates full phase
// stats across the batch's queries, at identical results.
func (s *ShardedIndex) chainShard(snap *Index, tr *SearchTrace, si int, dst, seed []Result, q *Object, k int, lambda float64, opts core.SearchOptions, pst *Stats, pm *core.SearchMeta) []Result {
	var lm core.SearchMeta
	if tr == nil {
		res := snap.core.SearchOptionsSeededMetaInto(dst, seed, q, k, lambda, opts, pst, &lm)
		pm.Partial = pm.Partial || lm.Partial
		return res
	}
	sp := &tr.Shards[si]
	t0 := time.Now()
	res := snap.core.SearchExplainOptionsSeededMetaInto(dst, seed, q, k, lambda, opts, &sp.Stats, &lm)
	sp.DurationNanos += time.Since(t0).Nanoseconds()
	pm.Partial = pm.Partial || lm.Partial
	return res
}

// checkRead validates a read's inputs on the caller's goroutine, before
// any scatter — a malformed query must panic here, never inside a
// per-shard worker goroutine (where a panic would kill the process).
func (s *ShardedIndex) checkRead(q *Object, k int, lambda float64) {
	checkQuery(q, k, lambda)
	if len(q.Vec) != s.dim {
		panic(fmt.Sprintf("cssi: query vector dim %d, index expects %d", len(q.Vec), s.dim))
	}
}

// Insert adds a new object, cloning and republishing ONLY the owning
// shard — an O(n/P) write where the unsharded ConcurrentIndex pays
// O(n). Writes to different shards proceed concurrently.
func (s *ShardedIndex) Insert(o Object) error {
	return s.shards[s.ShardFor(o.ID)].Insert(o)
}

// Delete removes the object with the given ID from its owning shard.
// Because an ID always hashes to the same shard, deleting an ID that
// was never inserted fails with the owning shard's unknown-ID error.
func (s *ShardedIndex) Delete(id uint32) error {
	return s.shards[s.ShardFor(id)].Delete(id)
}

// Update replaces the stored object carrying o's ID on its owning
// shard (atomically visible there).
func (s *ShardedIndex) Update(o Object) error {
	return s.shards[s.ShardFor(o.ID)].Update(o)
}

// opShard returns the shard an op routes to.
func (s *ShardedIndex) opShard(op Op) int {
	if op.Kind == OpDelete {
		return s.ShardFor(op.ID)
	}
	return s.ShardFor(op.Object.ID)
}

// ApplyBatch groups the ops by owning shard and applies each group as
// one clone-and-publish cycle on its shard, with the groups running in
// parallel. Atomicity is PER SHARD, not global: a group that fails
// leaves its shard untouched and its error reported, while other
// shards' groups still commit — the cross-shard trade every
// partitioned store makes. Within a shard, ops keep their relative
// order from the input slice. Callers needing all-or-nothing semantics
// across shards should use the unsharded ConcurrentIndex.ApplyBatch.
func (s *ShardedIndex) ApplyBatch(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	if len(s.shards) == 1 {
		return s.shards[0].ApplyBatch(ops)
	}
	groups := make([][]Op, len(s.shards))
	for _, op := range ops {
		si := s.opShard(op)
		groups[si] = append(groups[si], op)
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if len(groups[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.shards[i].ApplyBatch(groups[i]); err != nil {
				errs[i] = fmt.Errorf("cssi: shard %d batch: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rebuild reconstructs every shard from scratch, in parallel, each
// shard publishing its fresh index the moment it finishes (staggered
// publication — readers never wait, and at no point is any shard
// unavailable). Shards that fail report their error; the others still
// publish. A rebuild changes no exact search result, so a scatter that
// observes a mix of rebuilt and not-yet-rebuilt shards is harmless.
func (s *ShardedIndex) Rebuild() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.shards[i].Rebuild(); err != nil {
				errs[i] = fmt.Errorf("cssi: rebuilding shard %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RebuildInBackground starts a background rebuild on every shard and
// returns a channel that receives the combined outcome exactly once:
// nil when every shard rebuilt and published, or the joined errors.
// Readers AND writers stay available throughout on every shard, and
// each shard publishes independently as it completes. Shards that are
// already rebuilding (ErrRebuildInProgress) are reported in the
// combined outcome; the remaining shards still rebuild. Only if no
// shard could start is the error returned synchronously.
func (s *ShardedIndex) RebuildInBackground() (<-chan error, error) {
	chans := make([]<-chan error, 0, len(s.shards))
	startErrs := make([]error, 0)
	for i, sh := range s.shards {
		ch, err := sh.RebuildInBackground()
		if err != nil {
			startErrs = append(startErrs, fmt.Errorf("cssi: shard %d: %w", i, err))
			continue
		}
		chans = append(chans, ch)
	}
	if len(chans) == 0 {
		return nil, errors.Join(startErrs...)
	}
	done := make(chan error, 1)
	go func() {
		errs := append([]error(nil), startErrs...)
		for _, ch := range chans {
			if err := <-ch; err != nil {
				errs = append(errs, err)
			}
		}
		done <- errors.Join(errs...)
	}()
	return done, nil
}

// EnableKeywordFilter builds the inverted keyword index on every shard
// (each publishing a new snapshot), enabling SearchWithKeywords.
func (s *ShardedIndex) EnableKeywordFilter() {
	for _, sh := range s.shards {
		sh.EnableKeywordFilter()
	}
}

// KeywordFilterEnabled reports whether every shard carries the keyword
// filter.
func (s *ShardedIndex) KeywordFilterEnabled() bool {
	for _, sh := range s.shards {
		if !sh.KeywordFilterEnabled() {
			return false
		}
	}
	return true
}

// SearchWithKeywords scatters a keyword-constrained search and merges
// the per-shard answers. Requires EnableKeywordFilter on every shard
// (panics otherwise, like the unsharded API); ok=false indicates the
// keyword list was unusable.
//
// Deprecated: use Do with SearchRequest.Keywords (ok=false becomes
// ErrUnusableKeywords).
func (s *ShardedIndex) SearchWithKeywords(q *Object, k int, lambda float64, keywords ...string) ([]Result, bool) {
	if len(keywords) == 0 {
		// An empty SearchRequest.Keywords means "unconstrained"; the
		// legacy contract for an empty list is ok=false. Validate as
		// before, then report it unusable.
		s.checkRead(q, k, lambda)
		for _, sh := range s.shards {
			if !sh.Snapshot().KeywordFilterEnabled() {
				panic("cssi: SearchWithKeywords requires EnableKeywordFilter")
			}
		}
		return nil, false
	}
	res, err := s.Do(SearchRequest{Query: q, K: k, Lambda: lambda, Keywords: keywords})
	if err != nil {
		return nil, false
	}
	return res, true
}

// searchKeywords is the keyword-constrained scatter behind Do; inputs
// are already validated (but the per-shard filter presence is checked
// here, on the caller's goroutine).
func (s *ShardedIndex) searchKeywords(q *Object, k int, lambda float64, keywords []string) ([]Result, bool) {
	snaps := make([]*Index, len(s.shards))
	for i, sh := range s.shards {
		snaps[i] = sh.Snapshot()
		if !snaps[i].KeywordFilterEnabled() {
			panic("cssi: SearchWithKeywords requires EnableKeywordFilter")
		}
	}
	lists := make([][]Result, len(s.shards))
	oks := make([]bool, len(s.shards))
	if len(s.shards) == 1 {
		lists[0], oks[0] = snaps[0].searchWithKeywords(q, k, lambda, keywords)
	} else {
		var wg sync.WaitGroup
		for i := range s.shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				lists[i], oks[i] = snaps[i].searchWithKeywords(q, k, lambda, keywords)
			}(i)
		}
		wg.Wait()
	}
	for _, ok := range oks {
		// Keyword usability depends only on the keyword list, so every
		// shard agrees; any false means the list was unusable.
		if !ok {
			return nil, false
		}
	}
	return knn.MergeSorted(make([]Result, 0, k), lists, k), true
}

// Object looks up a live object on its owning shard, returning a copy.
func (s *ShardedIndex) Object(id uint32) (Object, bool) {
	return s.shards[s.ShardFor(id)].Object(id)
}

// Len returns the total number of live objects across shards. The
// per-shard counts come from independently loaded snapshots (see the
// consistency note on ShardedIndex).
func (s *ShardedIndex) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Dim returns the embedding dimensionality shared by every shard.
func (s *ShardedIndex) Dim() int { return s.dim }

// NumClusters returns the total number of non-empty hybrid clusters
// across shards.
func (s *ShardedIndex) NumClusters() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Snapshot().NumClusters()
	}
	return n
}

// RouterTrained reports whether every shard's current snapshot carries
// a trained cluster router (see Index.RouterTrained; routing degrades
// per shard, so a mixed state still answers Route requests correctly —
// untrained shards just run unrouted).
func (s *ShardedIndex) RouterTrained() bool {
	for _, sh := range s.shards {
		if !sh.Snapshot().RouterTrained() {
			return false
		}
	}
	return true
}

// UpdatesSinceBuild sums the per-shard Insert/Delete counts since each
// shard's last (re)build — the same rebuild heuristic as the unsharded
// API, aggregated.
func (s *ShardedIndex) UpdatesSinceBuild() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Snapshot().UpdatesSinceBuild()
	}
	return n
}

// ShardStat describes one shard's currently published snapshot.
type ShardStat struct {
	// Shard is the shard index in [0, NumShards).
	Shard int
	// Objects is the shard's live object count.
	Objects int
	// Clusters is the shard's non-empty hybrid cluster count.
	Clusters int
	// UpdatesSinceBuild counts the shard's mutations since its last
	// (re)build.
	UpdatesSinceBuild int
	// SnapshotAge is how long ago the shard last published a snapshot.
	SnapshotAge time.Duration
	// Publications counts the shard's snapshot publications since the
	// sharded index was built (initial publication included).
	Publications int64
	// DeltaOps is the number of write ops buffered in the snapshot's
	// overlay (0 when flat or when the overlay is disabled).
	DeltaOps int
	// Compactions counts the shard's completed overlay compactions.
	Compactions int64
	// BaseAge is how long ago the shard's flat base was published —
	// unlike SnapshotAge it moves only on compactions, rebuilds, and
	// eager-mode writes.
	BaseAge time.Duration
}

// ShardStats returns a per-shard snapshot summary — the backing data of
// the /metrics per-shard gauges and a quick balance check (Objects
// should be roughly uniform under hash routing).
func (s *ShardedIndex) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sh := range s.shards {
		snap := sh.Snapshot()
		out[i] = ShardStat{
			Shard:             i,
			Objects:           snap.Len(),
			Clusters:          snap.NumClusters(),
			UpdatesSinceBuild: snap.UpdatesSinceBuild(),
			SnapshotAge:       sh.SnapshotAge(),
			Publications:      sh.Publications(),
			DeltaOps:          snap.DeltaOps(),
			Compactions:       sh.Compactions(),
			BaseAge:           sh.BaseAge(),
		}
	}
	return out
}

// SetDeltaThreshold changes the overlay compaction threshold on every
// shard (see ConcurrentIndex.SetDeltaThreshold for the value contract).
func (s *ShardedIndex) SetDeltaThreshold(threshold int) error {
	if threshold < DeltaDisabled {
		return ErrInvalidDeltaThreshold
	}
	for _, sh := range s.shards {
		if err := sh.SetDeltaThreshold(threshold); err != nil {
			return err
		}
	}
	return nil
}

// SetCompactionObserver registers fn on every shard: it is called with
// each overlay compaction's duration, from whichever shard compacted
// (fn must be safe for concurrent calls; pass nil to unregister).
func (s *ShardedIndex) SetCompactionObserver(fn func(time.Duration)) {
	for _, sh := range s.shards {
		sh.SetCompactionObserver(fn)
	}
}

// Compact synchronously folds every shard's write overlay into a flat
// base (no-op on already-flat shards).
func (s *ShardedIndex) Compact() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		if err := sh.Compact(); err != nil {
			errs[i] = fmt.Errorf("cssi: compacting shard %d: %w", i, err)
		}
	}
	return errors.Join(errs...)
}

// CheckInvariants verifies every shard's structural invariants plus the
// sharding layer's own: each live object resides on the shard its ID
// hashes to, and all shards agree on the shared distance normalizers
// and dimensionality. Tests call it while writes and rebuilds are in
// flight; production code never needs it.
func (s *ShardedIndex) CheckInvariants() error {
	if len(s.shards) == 0 {
		return fmt.Errorf("cssi: sharded index with no shards")
	}
	ref := s.shards[0].Snapshot().space
	for i, sh := range s.shards {
		snap := sh.Snapshot()
		if err := snap.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if snap.Dim() != s.dim {
			return fmt.Errorf("shard %d: dim %d, sharded index expects %d", i, snap.Dim(), s.dim)
		}
		sp := snap.space
		if sp.DsMax != ref.DsMax || sp.DtMax != ref.DtMax || sp.SemanticKind != ref.SemanticKind {
			return fmt.Errorf("shard %d: normalizers (DsMax=%v, DtMax=%v, kind=%v) differ from shard 0 (%v, %v, %v)",
				i, sp.DsMax, sp.DtMax, sp.SemanticKind, ref.DsMax, ref.DtMax, ref.SemanticKind)
		}
		var misrouted error
		snap.core.ForEachLive(func(o *Object) {
			if misrouted == nil && shardOf(o.ID, len(s.shards)) != i {
				misrouted = fmt.Errorf("shard %d: object %d belongs on shard %d", i, o.ID, shardOf(o.ID, len(s.shards)))
			}
		})
		if misrouted != nil {
			return misrouted
		}
	}
	return nil
}
