package cssi_test

import (
	"fmt"

	"repro"
)

// Building an index and running an exact query.
func ExampleBuild() {
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.TwitterLike, Size: 2000, Dim: 32, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	idx, err := cssi.Build(ds, cssi.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	q := ds.Objects[0]
	results := idx.Search(&q, 3, 0.5)
	fmt.Println("results:", len(results))
	fmt.Println("nearest is the query itself:", results[0].ID == q.ID && results[0].Dist == 0)
	// Output:
	// results: 3
	// nearest is the query itself: true
}

// The approximate algorithm answers from the same index; its error is
// measured against the exact result.
func ExampleIndex_SearchApprox() {
	ds, _ := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.YelpLike, Size: 2000, Dim: 32, Seed: 2,
	})
	idx, _ := cssi.Build(ds, cssi.Options{Seed: 2})
	q := ds.Objects[42]
	exact := idx.Search(&q, 10, 0.5)
	approx := idx.SearchApprox(&q, 10, 0.5)
	fmt.Println("error below 20%:", cssi.ErrorRate(exact, approx) < 0.2)
	// Output:
	// error below 20%: true
}

// Range queries return everything within a combined distance.
func ExampleIndex_RangeSearch() {
	ds, _ := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.TwitterLike, Size: 1000, Dim: 32, Seed: 3,
	})
	idx, _ := cssi.Build(ds, cssi.Options{Seed: 3})
	q := ds.Objects[5]
	within := idx.RangeSearch(&q, 0.1, 0.5)
	allInside := true
	for _, r := range within {
		if r.Dist > 0.1 {
			allInside = false
		}
	}
	fmt.Println("found some:", len(within) > 0)
	fmt.Println("all within radius:", allInside)
	// Output:
	// found some: true
	// all within radius: true
}

// Incremental maintenance keeps the index exact while data changes.
func ExampleIndex_Insert() {
	ds, _ := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.TwitterLike, Size: 500, Dim: 32, Seed: 4,
	})
	idx, _ := cssi.Build(ds, cssi.Options{Seed: 4})
	o := ds.Objects[0]
	o.ID = 900000
	o.X, o.Y = 0.123, 0.456
	if err := idx.Insert(o); err != nil {
		panic(err)
	}
	fmt.Println("objects:", idx.Len())
	got := idx.Search(&o, 1, 1.0) // pure spatial: the newcomer is its own NN
	fmt.Println("self found:", got[0].ID == o.ID)
	// Output:
	// objects: 501
	// self found: true
}

// Keyword-constrained semantic search: results must contain the keyword.
func ExampleIndex_SearchWithKeywords() {
	ds, _ := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.YelpLike, Size: 1500, Dim: 32, Seed: 5,
	})
	idx, _ := cssi.Build(ds, cssi.Options{Seed: 5})
	idx.EnableKeywordFilter()

	// The most frequent synthetic word; real applications pass user input.
	keyword := ds.Model.Vocab.Words[0]
	q := ds.Objects[3]
	results, ok := idx.SearchWithKeywords(&q, 5, 0.5, keyword)
	fmt.Println("usable keywords:", ok)
	fmt.Println("got results:", len(results) > 0)
	// Output:
	// usable keywords: true
	// got results: true
}

// Windowed semantic search: the nearest meanings inside a map viewport.
func ExampleIndex_SearchInBox() {
	ds, _ := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.TwitterLike, Size: 1500, Dim: 32, Seed: 6,
	})
	idx, _ := cssi.Build(ds, cssi.Options{Seed: 6})
	q := ds.Objects[10]
	results := idx.SearchInBox(&q, 0, 0, 1, 1, 3) // whole space
	inWindow := true
	for _, r := range results {
		o, _ := idx.Object(r.ID)
		if o.X < 0 || o.X > 1 || o.Y < 0 || o.Y > 1 {
			inWindow = false
		}
	}
	fmt.Println("results:", len(results))
	fmt.Println("all in window:", inWindow)
	// Output:
	// results: 3
	// all in window: true
}
