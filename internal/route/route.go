// Package route implements the learned cluster router: a tiny,
// dependency-free logistic-regression model that predicts, from the
// centroid-level signals a query has already computed for the weak
// lower bound, whether a hybrid cluster contains one of the query's
// true top-k results.
//
// The model is deliberately small — a single linear layer over a
// handful of standardized features, trained by full-batch gradient
// descent — because it sits on the query hot path: scoring one cluster
// must cost a few multiply-adds, not a kernel call. Training is fully
// deterministic (no random initialization, no stochastic sampling), so
// two builds over the same data produce bit-identical weights and the
// routed search order is reproducible.
//
// The package is intentionally ignorant of the index: callers define
// what the features mean (internal/core assembles centroid distances,
// radii slack, bounds, and cluster mass) and this package only fits and
// evaluates the weights. That keeps it reusable for any fixed-width
// feature scheme and keeps the admissibility story out of the model:
// in exact mode the predictor is only ever a visit-order heuristic, so
// a badly fitted model can slow a query down but can never change its
// results.
package route

import (
	"fmt"
	"math"
)

// Model is a trained logistic-regression router. Predict returns the
// estimated probability that the feature vector's cluster holds a
// top-k result. The zero Model is invalid; use Train or restore the
// exported fields from persistence and check Valid.
type Model struct {
	// Bias and W are the logistic layer: logit = Bias + Σ W[i]·z[i]
	// where z is the standardized feature vector.
	Bias float64
	W    []float64
	// Mean and Scale standardize raw features: z[i] = (f[i]−Mean[i])·Scale[i].
	// Scale is the inverse standard deviation (0 for constant features,
	// which then contribute nothing — their effect folds into Bias).
	Mean, Scale []float64
}

// Valid reports whether the model can score nFeatures-wide vectors —
// the guard persistence uses before trusting restored weights.
func (m *Model) Valid(nFeatures int) bool {
	return m != nil &&
		len(m.W) == nFeatures &&
		len(m.Mean) == nFeatures &&
		len(m.Scale) == nFeatures &&
		finiteAll(m.W) && finiteAll(m.Mean) && finiteAll(m.Scale) &&
		!math.IsNaN(m.Bias) && !math.IsInf(m.Bias, 0)
}

// Predict returns σ(logit(f)), the predicted probability in (0,1).
func (m *Model) Predict(f []float64) float64 {
	return sigmoid(m.Logit(f))
}

// Logit returns the raw linear score. It is monotone in Predict, so
// callers that only rank clusters (the exact-reorder mode) can skip
// the exponential.
func (m *Model) Logit(f []float64) float64 {
	s := m.Bias
	for i, v := range f {
		s += m.W[i] * (v - m.Mean[i]) * m.Scale[i]
	}
	return s
}

// Folded is the inference-time form of a Model: the standardization
// constants are folded into the weights, so scoring is one fused
// multiply-add per feature instead of three. Fold once per model,
// score millions of clusters.
type Folded struct {
	Bias float64
	W    []float64
}

// Fold precomputes the inference form. Constant features (Scale 0)
// fold to a zero weight, exactly like Model.Logit neutralizes them.
func (m *Model) Fold() Folded {
	f := Folded{Bias: m.Bias, W: make([]float64, len(m.W))}
	for i := range m.W {
		f.W[i] = m.W[i] * m.Scale[i]
		f.Bias -= f.W[i] * m.Mean[i]
	}
	return f
}

// Logit returns the raw linear score — the same quantity as
// Model.Logit up to floating-point association.
func (f *Folded) Logit(feats []float64) float64 {
	s := f.Bias
	for i, v := range feats {
		s += f.W[i] * v
	}
	return s
}

// Predict returns σ(Logit(feats)).
func (f *Folded) Predict(feats []float64) float64 { return sigmoid(f.Logit(feats)) }

// TrainConfig tunes the gradient-descent fit. The zero value selects
// the defaults, which fit the cluster-routing feature scheme well and
// finish in milliseconds at typical training-set sizes.
type TrainConfig struct {
	// Epochs is the number of full-batch gradient steps (default 150).
	Epochs int
	// LearnRate is the initial step size, decayed harmonically
	// (default 0.5).
	LearnRate float64
	// L2 is the weight-decay coefficient (default 1e-4).
	L2 float64
	// PosWeight scales the gradient contribution of positive examples,
	// compensating the heavy class imbalance of "cluster holds a top-k
	// member" labels (default: #neg/#pos, capped at 64).
	PosWeight float64
}

func (c *TrainConfig) applyDefaults(pos, neg int) {
	if c.Epochs <= 0 {
		c.Epochs = 150
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.5
	}
	if c.L2 <= 0 {
		c.L2 = 1e-4
	}
	if c.PosWeight <= 0 {
		if pos > 0 {
			c.PosWeight = float64(neg) / float64(pos)
		}
		if c.PosWeight < 1 {
			c.PosWeight = 1
		}
		if c.PosWeight > 64 {
			c.PosWeight = 64
		}
	}
}

// Train fits a logistic model to the labeled feature rows. Every row
// must have the same width. Deterministic: full-batch gradient descent
// from zero initialization, so identical inputs yield identical
// weights. Returns an error when the training set is degenerate (no
// rows, inconsistent widths, or single-class labels), in which case
// callers should run unrouted rather than trust a vacuous model.
func Train(rows [][]float64, labels []bool, cfg TrainConfig) (*Model, error) {
	if len(rows) == 0 || len(rows) != len(labels) {
		return nil, fmt.Errorf("route: %d rows for %d labels", len(rows), len(labels))
	}
	d := len(rows[0])
	if d == 0 {
		return nil, fmt.Errorf("route: empty feature rows")
	}
	pos := 0
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("route: row %d has width %d, want %d", i, len(r), d)
		}
		if labels[i] {
			pos++
		}
	}
	if pos == 0 || pos == len(rows) {
		return nil, fmt.Errorf("route: single-class training set (%d/%d positive)", pos, len(rows))
	}
	cfg.applyDefaults(pos, len(rows)-pos)

	m := &Model{
		W:     make([]float64, d),
		Mean:  make([]float64, d),
		Scale: make([]float64, d),
	}
	// Standardization: zero-mean, unit-variance features keep one global
	// learning rate adequate for every dimension.
	n := float64(len(rows))
	for _, r := range rows {
		for j, v := range r {
			m.Mean[j] += v
		}
	}
	for j := range m.Mean {
		m.Mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			dv := v - m.Mean[j]
			m.Scale[j] += dv * dv
		}
	}
	for j := range m.Scale {
		sd := math.Sqrt(m.Scale[j] / n)
		if sd > 1e-12 {
			m.Scale[j] = 1 / sd
		} else {
			m.Scale[j] = 0 // constant feature: carries no signal
		}
	}

	// Full-batch gradient descent on the weighted logistic loss.
	grad := make([]float64, d)
	z := make([]float64, d)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearnRate / (1 + 0.02*float64(epoch))
		for j := range grad {
			grad[j] = 0
		}
		gradB := 0.0
		for i, r := range rows {
			s := m.Bias
			for j, v := range r {
				z[j] = (v - m.Mean[j]) * m.Scale[j]
				s += m.W[j] * z[j]
			}
			// err = σ(s) − y, scaled by the class weight.
			e := sigmoid(s)
			w := 1.0
			if labels[i] {
				e -= 1
				w = cfg.PosWeight
			}
			e *= w
			for j := range z {
				grad[j] += e * z[j]
			}
			gradB += e
		}
		inv := 1 / n
		for j := range m.W {
			m.W[j] -= lr * (grad[j]*inv + cfg.L2*m.W[j])
		}
		m.Bias -= lr * gradB * inv
	}
	// Recalibration (Platt scaling): the class-weighted fit above ranks
	// well but systematically inflates probabilities — PosWeight scales
	// the positive gradient, so rare-positive training sets predict far
	// too much tail mass. Fit logit' = a·logit + b on the UNWEIGHTED
	// loss: a positive a preserves the ranking exactly while the
	// probabilities become honest, which the mass-coverage stopping
	// rule of the routed approximate mode depends on.
	s := make([]float64, len(rows))
	for i, r := range rows {
		s[i] = m.Logit(r)
	}
	a, b := 1.0, 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearnRate / (1 + 0.02*float64(epoch))
		gradA, gradB := 0.0, 0.0
		for i, si := range s {
			e := sigmoid(a*si + b)
			if labels[i] {
				e -= 1
			}
			gradA += e * si
			gradB += e
		}
		inv := 1 / n
		a -= lr * gradA * inv
		b -= lr * gradB * inv
	}
	// Fold the calibration into the weights so inference stays one
	// linear layer. Guard a > 0: a non-positive slope would invert the
	// ranking, and keeping the uncalibrated (well-ranked) model is
	// strictly safer.
	if a > 0 && !math.IsNaN(a) && !math.IsInf(a, 0) && !math.IsNaN(b) && !math.IsInf(b, 0) {
		for j := range m.W {
			m.W[j] *= a
		}
		m.Bias = a*m.Bias + b
	}
	if !m.Valid(d) {
		return nil, fmt.Errorf("route: training diverged to non-finite weights")
	}
	return m, nil
}

func sigmoid(x float64) float64 {
	// Clamp to keep Exp out of the overflow range; σ saturates far
	// earlier anyway.
	if x > 40 {
		return 1
	}
	if x < -40 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

func finiteAll(s []float64) bool {
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
