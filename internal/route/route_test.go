package route

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

// separable builds a linearly separable 2-feature training set: label is
// true iff f0 + f1 > 1, with a comfortable margin around the boundary.
func separable(n int, seed uint64) ([][]float64, []bool) {
	rng := rand.New(rand.NewPCG(seed, 1))
	rows := make([][]float64, 0, n)
	labels := make([]bool, 0, n)
	for len(rows) < n {
		f0, f1 := rng.Float64(), rng.Float64()
		s := f0 + f1
		if s > 0.9 && s < 1.1 {
			continue // margin
		}
		rows = append(rows, []float64{f0, f1})
		labels = append(labels, s > 1)
	}
	return rows, labels
}

func TestTrainSeparable(t *testing.T) {
	rows, labels := separable(400, 11)
	m, err := Train(rows, labels, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid(2) {
		t.Fatal("trained model fails Valid(2)")
	}
	correct := 0
	for i, r := range rows {
		if (m.Predict(r) > 0.5) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(rows)); acc < 0.95 {
		t.Fatalf("training accuracy %.3f on a separable set, want >= 0.95", acc)
	}
}

// TestTrainDeterministic pins the no-RNG training loop: identical inputs
// must produce bit-identical models.
func TestTrainDeterministic(t *testing.T) {
	rows, labels := separable(200, 12)
	a, err := Train(rows, labels, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(rows, labels, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two trainings over identical data differ:\n%+v\n%+v", a, b)
	}
}

func TestTrainDegenerateSets(t *testing.T) {
	if _, err := Train(nil, nil, TrainConfig{}); err == nil {
		t.Fatal("empty set: want error")
	}
	rows := [][]float64{{1, 2}, {3, 4}}
	if _, err := Train(rows, []bool{true, true}, TrainConfig{}); err == nil {
		t.Fatal("single-class set: want error")
	}
	if _, err := Train([][]float64{{1, 2}, {3}}, []bool{true, false}, TrainConfig{}); err == nil {
		t.Fatal("inconsistent row widths: want error")
	}
	if _, err := Train(rows, []bool{true}, TrainConfig{}); err == nil {
		t.Fatal("labels/rows length mismatch: want error")
	}
}

// TestTrainConstantFeature checks that a zero-variance feature is
// neutralized (Scale 0) instead of producing NaNs.
func TestTrainConstantFeature(t *testing.T) {
	rows, labels := separable(200, 13)
	for i := range rows {
		rows[i] = append(rows[i], 7.5) // constant third feature
	}
	m, err := Train(rows, labels, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Scale[2] != 0 {
		t.Fatalf("constant feature scale = %v, want 0", m.Scale[2])
	}
	for _, r := range rows {
		if p := m.Predict(r); math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("Predict = %v, want a probability", p)
		}
	}
}

func TestModelValid(t *testing.T) {
	m := &Model{Bias: 0, W: []float64{1, 2}, Mean: []float64{0, 0}, Scale: []float64{1, 1}}
	if !m.Valid(2) {
		t.Fatal("well-formed model rejected")
	}
	if m.Valid(3) {
		t.Fatal("width mismatch accepted")
	}
	var nilModel *Model
	if nilModel.Valid(2) {
		t.Fatal("nil model accepted")
	}
	bad := &Model{Bias: math.NaN(), W: []float64{1, 2}, Mean: []float64{0, 0}, Scale: []float64{1, 1}}
	if bad.Valid(2) {
		t.Fatal("NaN bias accepted")
	}
}
