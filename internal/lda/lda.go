// Package lda implements Latent Dirichlet Allocation via collapsed Gibbs
// sampling. The paper's related work (§2) describes the NIQ-tree and
// LHQ-tree using LDA-derived topic relevance as their semantic layer —
// in contrast with CSSI's word embeddings — so this substrate exists to
// build the NIQ-style competitor (internal/niqtree) the S²R-tree paper
// compared against.
//
// Documents are slices of word ranks (the tokenized, stop-word-free form
// produced by the text package). Fit runs collapsed Gibbs sweeps over
// token-topic assignments; Infer folds a new document in against the
// fitted topic-word distribution.
package lda

import (
	"fmt"
	"math/rand/v2"
)

// Config controls Fit.
type Config struct {
	// Topics is the number of latent topics T. Required, >= 2.
	Topics int
	// Alpha and Beta are the Dirichlet priors for document-topic and
	// topic-word distributions (defaults 50/T and 0.01, standard
	// heuristics).
	Alpha, Beta float64
	// Iterations is the number of Gibbs sweeps (default 50).
	Iterations int
	// Seed drives the sampler deterministically.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.Alpha <= 0 {
		c.Alpha = 50 / float64(c.Topics)
	}
	if c.Beta <= 0 {
		c.Beta = 0.01
	}
	if c.Iterations <= 0 {
		c.Iterations = 50
	}
}

// Model is a fitted LDA model.
type Model struct {
	// Topics is T; VocabSize is V.
	Topics, VocabSize int
	// Theta[d][t] is document d's topic distribution (rows sum to 1).
	Theta [][]float64
	// Phi[t][v] is topic t's word distribution (rows sum to 1).
	Phi [][]float64

	alpha, beta float64
}

// Fit trains a model on the corpus. Each document is a slice of word
// ranks in [0, vocabSize). Empty documents are allowed (their theta is
// uniform).
func Fit(docs [][]int, vocabSize int, cfg Config) (*Model, error) {
	if cfg.Topics < 2 {
		return nil, fmt.Errorf("lda: Topics = %d, want >= 2", cfg.Topics)
	}
	if vocabSize < 1 {
		return nil, fmt.Errorf("lda: vocabSize = %d, want >= 1", vocabSize)
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("lda: no documents")
	}
	cfg.applyDefaults()
	T, V := cfg.Topics, vocabSize
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6c6461))

	// Gibbs state.
	z := make([][]int, len(docs)) // token-topic assignments
	docTopic := make([][]int, len(docs))
	topicWord := make([][]int, T)
	topicTotal := make([]int, T)
	for t := 0; t < T; t++ {
		topicWord[t] = make([]int, V)
	}
	for d, doc := range docs {
		z[d] = make([]int, len(doc))
		docTopic[d] = make([]int, T)
		for i, w := range doc {
			if w < 0 || w >= V {
				return nil, fmt.Errorf("lda: word rank %d out of [0,%d) in document %d", w, V, d)
			}
			t := rng.IntN(T)
			z[d][i] = t
			docTopic[d][t]++
			topicWord[t][w]++
			topicTotal[t]++
		}
	}

	probs := make([]float64, T)
	vb := float64(V) * cfg.Beta
	for iter := 0; iter < cfg.Iterations; iter++ {
		for d, doc := range docs {
			for i, w := range doc {
				old := z[d][i]
				docTopic[d][old]--
				topicWord[old][w]--
				topicTotal[old]--
				var total float64
				for t := 0; t < T; t++ {
					p := (float64(docTopic[d][t]) + cfg.Alpha) *
						(float64(topicWord[t][w]) + cfg.Beta) /
						(float64(topicTotal[t]) + vb)
					probs[t] = p
					total += p
				}
				u := rng.Float64() * total
				nt := T - 1
				for t := 0; t < T; t++ {
					u -= probs[t]
					if u <= 0 {
						nt = t
						break
					}
				}
				z[d][i] = nt
				docTopic[d][nt]++
				topicWord[nt][w]++
				topicTotal[nt]++
			}
		}
	}

	m := &Model{Topics: T, VocabSize: V, alpha: cfg.Alpha, beta: cfg.Beta}
	m.Theta = make([][]float64, len(docs))
	for d, doc := range docs {
		m.Theta[d] = thetaFromCounts(docTopic[d], len(doc), cfg.Alpha)
	}
	m.Phi = make([][]float64, T)
	for t := 0; t < T; t++ {
		row := make([]float64, V)
		denom := float64(topicTotal[t]) + vb
		for v := 0; v < V; v++ {
			row[v] = (float64(topicWord[t][v]) + cfg.Beta) / denom
		}
		m.Phi[t] = row
	}
	return m, nil
}

func thetaFromCounts(counts []int, docLen int, alpha float64) []float64 {
	T := len(counts)
	out := make([]float64, T)
	denom := float64(docLen) + float64(T)*alpha
	for t, c := range counts {
		out[t] = (float64(c) + alpha) / denom
	}
	return out
}

// Infer folds a new document in against the fitted Phi with a short
// Gibbs chain, returning its topic distribution. It is deterministic for
// a given seed.
func (m *Model) Infer(doc []int, iterations int, seed uint64) []float64 {
	if iterations <= 0 {
		iterations = 20
	}
	rng := rand.New(rand.NewPCG(seed, 0x696e666572))
	T := m.Topics
	counts := make([]int, T)
	z := make([]int, len(doc))
	for i, w := range doc {
		if w < 0 || w >= m.VocabSize {
			z[i] = -1 // out of vocabulary: ignore
			continue
		}
		t := rng.IntN(T)
		z[i] = t
		counts[t]++
	}
	probs := make([]float64, T)
	for iter := 0; iter < iterations; iter++ {
		for i, w := range doc {
			if z[i] < 0 {
				continue
			}
			counts[z[i]]--
			var total float64
			for t := 0; t < T; t++ {
				p := (float64(counts[t]) + m.alpha) * m.Phi[t][w]
				probs[t] = p
				total += p
			}
			u := rng.Float64() * total
			nt := T - 1
			for t := 0; t < T; t++ {
				u -= probs[t]
				if u <= 0 {
					nt = t
					break
				}
			}
			z[i] = nt
			counts[nt]++
		}
	}
	n := 0
	for _, zi := range z {
		if zi >= 0 {
			n++
		}
	}
	return thetaFromCounts(counts, n, m.alpha)
}

// DominantTopic returns the argmax topic of a distribution.
func DominantTopic(theta []float64) int {
	best := 0
	for t, p := range theta {
		if p > theta[best] {
			best = t
		}
	}
	return best
}
