package lda

import (
	"math"
	"math/rand/v2"
	"testing"
)

// synthCorpus builds documents from trueTopics disjoint word blocks, so
// topic recovery is unambiguous.
func synthCorpus(rng *rand.Rand, docs, trueTopics, wordsPerTopic, docLen int) (corpus [][]int, labels []int, vocab int) {
	vocab = trueTopics * wordsPerTopic
	corpus = make([][]int, docs)
	labels = make([]int, docs)
	for d := range corpus {
		topic := rng.IntN(trueTopics)
		labels[d] = topic
		doc := make([]int, docLen)
		for i := range doc {
			if rng.Float64() < 0.9 {
				doc[i] = topic*wordsPerTopic + rng.IntN(wordsPerTopic)
			} else {
				doc[i] = rng.IntN(vocab)
			}
		}
		corpus[d] = doc
	}
	return corpus, labels, vocab
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil, 10, Config{Topics: 3}); err == nil {
		t.Fatal("expected error for empty corpus")
	}
	if _, err := Fit([][]int{{0}}, 10, Config{Topics: 1}); err == nil {
		t.Fatal("expected error for Topics=1")
	}
	if _, err := Fit([][]int{{0}}, 0, Config{Topics: 2}); err == nil {
		t.Fatal("expected error for vocabSize=0")
	}
	if _, err := Fit([][]int{{99}}, 10, Config{Topics: 2}); err == nil {
		t.Fatal("expected error for out-of-range word")
	}
}

func TestDistributionsNormalized(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	corpus, _, vocab := synthCorpus(rng, 50, 3, 10, 20)
	m, err := Fit(corpus, vocab, Config{Topics: 3, Iterations: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for d, theta := range m.Theta {
		var sum float64
		for _, p := range theta {
			if p < 0 {
				t.Fatalf("doc %d: negative probability", d)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d: theta sums to %v", d, sum)
		}
	}
	for tt, phi := range m.Phi {
		var sum float64
		for _, p := range phi {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("topic %d: phi sums to %v", tt, sum)
		}
	}
}

// LDA must recover well-separated topics: documents with the same true
// label should share a dominant topic.
func TestTopicRecovery(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	corpus, labels, vocab := synthCorpus(rng, 200, 3, 15, 30)
	m, err := Fit(corpus, vocab, Config{Topics: 3, Iterations: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Purity of dominant-topic assignment.
	counts := map[[2]int]int{}
	for d := range corpus {
		counts[[2]int{DominantTopic(m.Theta[d]), labels[d]}]++
	}
	clusterTotal := map[int]int{}
	clusterBest := map[int]int{}
	for key, n := range counts {
		clusterTotal[key[0]] += n
		if n > clusterBest[key[0]] {
			clusterBest[key[0]] = n
		}
	}
	var pure, total int
	for c, tot := range clusterTotal {
		pure += clusterBest[c]
		total += tot
	}
	if p := float64(pure) / float64(total); p < 0.9 {
		t.Fatalf("topic purity %v < 0.9", p)
	}
}

func TestFitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	corpus, _, vocab := synthCorpus(rng, 40, 2, 8, 15)
	a, _ := Fit(corpus, vocab, Config{Topics: 2, Iterations: 15, Seed: 9})
	b, _ := Fit(corpus, vocab, Config{Topics: 2, Iterations: 15, Seed: 9})
	for d := range a.Theta {
		for tt := range a.Theta[d] {
			if a.Theta[d][tt] != b.Theta[d][tt] {
				t.Fatal("same seed gave different theta")
			}
		}
	}
}

func TestInfer(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	corpus, labels, vocab := synthCorpus(rng, 200, 3, 15, 30)
	m, err := Fit(corpus, vocab, Config{Topics: 3, Iterations: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Map fitted topics to true labels via the training set.
	topicToLabel := map[int]map[int]int{}
	for d := range corpus {
		tt := DominantTopic(m.Theta[d])
		if topicToLabel[tt] == nil {
			topicToLabel[tt] = map[int]int{}
		}
		topicToLabel[tt][labels[d]]++
	}
	dominantLabel := map[int]int{}
	for tt, dist := range topicToLabel {
		best, bestN := -1, -1
		for l, n := range dist {
			if n > bestN {
				best, bestN = l, n
			}
		}
		dominantLabel[tt] = best
	}
	// Fold in fresh documents and check label agreement.
	fresh, freshLabels, _ := synthCorpus(rng, 60, 3, 15, 30)
	hits := 0
	for d, doc := range fresh {
		theta := m.Infer(doc, 25, uint64(d))
		var sum float64
		for _, p := range theta {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("inferred theta sums to %v", sum)
		}
		if dominantLabel[DominantTopic(theta)] == freshLabels[d] {
			hits++
		}
	}
	if float64(hits)/float64(len(fresh)) < 0.85 {
		t.Fatalf("inference accuracy %d/%d too low", hits, len(fresh))
	}
}

func TestInferHandlesOOVAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	corpus, _, vocab := synthCorpus(rng, 30, 2, 8, 15)
	m, err := Fit(corpus, vocab, Config{Topics: 2, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.Infer([]int{-1, vocab + 5}, 10, 1) // all out of vocabulary
	var sum float64
	for _, p := range theta {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("OOV theta sums to %v", sum)
	}
	theta = m.Infer(nil, 10, 1)
	if len(theta) != 2 {
		t.Fatal("empty doc inference broken")
	}
}

func TestEmptyDocumentInCorpus(t *testing.T) {
	corpus := [][]int{{0, 1, 2}, {}, {3, 4}}
	m, err := Fit(corpus, 5, Config{Topics: 2, Iterations: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range m.Theta[1] {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("empty doc theta sums to %v", sum)
	}
}

func TestDominantTopic(t *testing.T) {
	if DominantTopic([]float64{0.2, 0.5, 0.3}) != 1 {
		t.Fatal("DominantTopic wrong")
	}
}
