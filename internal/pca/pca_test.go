package pca

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/vec"
)

// anisotropic generates points stretched along a known direction so the
// first principal component is predictable.
func anisotropic(rng *rand.Rand, n, count int, dir []float64, spread float64) [][]float32 {
	rows := make([][]float32, count)
	for i := range rows {
		r := make([]float32, n)
		t := rng.NormFloat64() * spread
		for j := 0; j < n; j++ {
			r[j] = float32(t*dir[j] + 0.05*rng.NormFloat64())
		}
		rows[i] = r
	}
	return rows
}

func unitDir(n int, rng *rand.Rand) []float64 {
	d := make([]float64, n)
	var norm float64
	for i := range d {
		d[i] = rng.NormFloat64()
		norm += d[i] * d[i]
	}
	norm = math.Sqrt(norm)
	for i := range d {
		d[i] /= norm
	}
	return d
}

func TestFitRejectsBadConfig(t *testing.T) {
	if _, err := Fit([][]float32{{1, 2}}, Config{Components: 0}); err == nil {
		t.Fatal("expected error for Components=0")
	}
	if _, err := Fit(nil, Config{Components: 1}); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Fit([][]float32{{1, 2}, {1}}, Config{Components: 1}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFirstComponentFindsDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	n := 20
	dir := unitDir(n, rng)
	rows := anisotropic(rng, n, 500, dir, 3.0)
	for _, method := range []Method{Exact, Randomized} {
		m, err := Fit(rows, Config{Components: 2, Method: method, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		// |cos| between component 0 and dir should be near 1.
		var dot float64
		row := m.Components.Row(0)
		for j := range dir {
			dot += row[j] * dir[j]
		}
		if math.Abs(dot) < 0.98 {
			t.Fatalf("method %v: first component misaligned, |cos|=%v", method, math.Abs(dot))
		}
		if m.ExplainedVariance[0] <= m.ExplainedVariance[1] {
			t.Fatalf("method %v: explained variance not descending: %v", method, m.ExplainedVariance)
		}
	}
}

func TestExactAndRandomizedAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	n := 30
	rows := make([][]float32, 400)
	// Two dominant directions with different strengths.
	d1, d2 := unitDir(n, rng), unitDir(n, rng)
	for i := range rows {
		r := make([]float32, n)
		t1 := rng.NormFloat64() * 4
		t2 := rng.NormFloat64() * 2
		for j := 0; j < n; j++ {
			r[j] = float32(t1*d1[j] + t2*d2[j] + 0.02*rng.NormFloat64())
		}
		rows[i] = r
	}
	ex, err := Fit(rows, Config{Components: 3, Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Fit(rows, Config{Components: 3, Method: Randomized, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rel := math.Abs(ex.ExplainedVariance[i]-rd.ExplainedVariance[i]) / (1 + ex.ExplainedVariance[i])
		if rel > 1e-3 {
			t.Fatalf("explained variance %d differs: exact %v vs randomized %v",
				i, ex.ExplainedVariance[i], rd.ExplainedVariance[i])
		}
	}
	// Projections agree up to per-component sign on the two components
	// whose eigenvalues are well separated (the third sits in the noise
	// floor, so its direction is not determined).
	probe := rows[13]
	pe, pr := ex.Transform(probe), rd.Transform(probe)
	for i := 0; i < 2; i++ {
		if math.Abs(math.Abs(float64(pe[i]))-math.Abs(float64(pr[i]))) > 1e-2*(1+math.Abs(float64(pe[i]))) {
			t.Fatalf("projection %d differs beyond sign: %v vs %v", i, pe[i], pr[i])
		}
	}
}

// Projection is a contraction: distances in the projected space never
// exceed distances in the original space (this is what makes CSSIA
// approximate rather than exact — projected lower bounds are not original
// lower bounds).
func TestProjectionContractsDistances(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 21))
	n := 40
	rows := make([][]float32, 300)
	for i := range rows {
		r := make([]float32, n)
		for j := range r {
			r[j] = float32(rng.NormFloat64())
		}
		rows[i] = r
	}
	m, err := Fit(rows, Config{Components: 5, Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	proj := m.TransformAll(rows)
	for trial := 0; trial < 200; trial++ {
		i, j := rng.IntN(len(rows)), rng.IntN(len(rows))
		orig := vec.Dist(rows[i], rows[j])
		p := vec.Dist(proj[i], proj[j])
		if p > orig+1e-5 {
			t.Fatalf("projection expanded distance: %v > %v", p, orig)
		}
	}
}

func TestTransformCentersData(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 3))
	n := 10
	rows := make([][]float32, 200)
	for i := range rows {
		r := make([]float32, n)
		for j := range r {
			r[j] = float32(rng.NormFloat64() + 5) // offset mean
		}
		rows[i] = r
	}
	m, err := Fit(rows, Config{Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	proj := m.TransformAll(rows)
	// Mean of projections ~ 0 per dimension.
	for j := 0; j < 3; j++ {
		var s float64
		for _, p := range proj {
			s += float64(p[j])
		}
		if math.Abs(s/float64(len(proj))) > 1e-3 {
			t.Fatalf("projected mean dim %d = %v, want ~0", j, s/float64(len(proj)))
		}
	}
}

func TestComponentsClampToData(t *testing.T) {
	rows := [][]float32{{1, 2, 3}, {4, 5, 6}}
	m, err := Fit(rows, Config{Components: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.M() > 2 {
		t.Fatalf("components not clamped: m=%d", m.M())
	}
}

func TestExplainedVarianceRatioSumsBelowOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(30, 30))
	rows := make([][]float32, 150)
	for i := range rows {
		r := make([]float32, 12)
		for j := range r {
			r[j] = float32(rng.NormFloat64())
		}
		rows[i] = r
	}
	m, err := Fit(rows, Config{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	ratios := m.ExplainedVarianceRatio()
	for _, r := range ratios {
		if r < 0 {
			t.Fatalf("negative ratio %v", r)
		}
		sum += r
	}
	if sum > 1+1e-9 {
		t.Fatalf("ratios sum to %v > 1", sum)
	}
	// With 4 of 12 isotropic dims the ratio should be meaningful but < 1.
	if sum < 0.15 {
		t.Fatalf("ratios suspiciously low: %v", ratios)
	}
}
