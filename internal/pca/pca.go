// Package pca implements Principal Component Analysis for projecting the
// n-dimensional word-embedding vectors to the m-dimensional space used by
// CSSI's semantic clustering (paper Alg. 1, line 6).
//
// Two fitting paths are provided: an exact path that eigendecomposes the
// n×n covariance matrix (cheap for n≈100), and the randomized-SVD path of
// Halko et al. that the paper uses via scikit-learn, which avoids forming
// the covariance and is preferable when n is large or only a few
// components are needed. Both paths produce the same subspace up to sign
// and are tested against each other.
package pca

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/mat"
)

// Method selects the fitting algorithm.
type Method int

const (
	// Exact eigendecomposes the covariance matrix with cyclic Jacobi.
	Exact Method = iota
	// Randomized uses the randomized SVD of Halko et al. (the paper's
	// choice, §7.1).
	Randomized
)

// Model is a fitted PCA projection. The zero value is not usable; obtain
// one from Fit.
type Model struct {
	// Mean is the per-dimension mean of the training rows (length n).
	Mean []float64
	// Components holds the principal axes as rows (m×n): row i is the
	// i-th component.
	Components *mat.Dense
	// ExplainedVariance holds the variance captured by each component,
	// in descending order.
	ExplainedVariance []float64
	// TotalVariance is the total variance of the (centered) training
	// data, for computing explained-variance ratios.
	TotalVariance float64
}

// Config controls Fit.
type Config struct {
	// Components is m, the output dimensionality. Required, >= 1.
	Components int
	// Method selects the fitting path. Default Exact.
	Method Method
	// Oversample and PowerIters tune the randomized path (defaults 7
	// and 4, matching common practice in scikit-learn).
	Oversample, PowerIters int
	// Seed drives the randomized path deterministically.
	Seed uint64
}

// Fit computes a PCA model of the given rows (each a length-n vector).
// The number of components is capped at min(n, len(rows)).
func Fit(rows [][]float32, cfg Config) (*Model, error) {
	if cfg.Components < 1 {
		return nil, fmt.Errorf("pca: Components = %d, want >= 1", cfg.Components)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("pca: no training rows")
	}
	n := len(rows[0])
	m := cfg.Components
	if m > n {
		m = n
	}
	if m > len(rows) {
		m = len(rows)
	}
	if cfg.Oversample <= 0 {
		cfg.Oversample = 7
	}
	if cfg.PowerIters <= 0 {
		cfg.PowerIters = 4
	}

	mean := make([]float64, n)
	for _, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("pca: ragged input rows (%d vs %d)", len(r), n)
		}
		for j, v := range r {
			mean[j] += float64(v)
		}
	}
	invN := 1 / float64(len(rows))
	for j := range mean {
		mean[j] *= invN
	}

	model := &Model{Mean: mean}
	switch cfg.Method {
	case Randomized:
		// Build the centered data matrix and sketch it.
		x := mat.NewDense(len(rows), n)
		for i, r := range rows {
			xr := x.Row(i)
			for j, v := range r {
				xr[j] = float64(v) - mean[j]
			}
		}
		var total float64
		for _, v := range x.Data {
			total += v * v
		}
		model.TotalVariance = total / float64(len(rows))
		rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))
		res := mat.RandomizedSVD(x, m, cfg.Oversample, cfg.PowerIters, rng)
		comp := mat.NewDense(m, n)
		model.ExplainedVariance = make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				comp.Set(i, j, res.V.At(j, i))
			}
			model.ExplainedVariance[i] = res.S[i] * res.S[i] / float64(len(rows))
		}
		model.Components = comp
	default: // Exact
		cov := covariance(rows, mean)
		var total float64
		for i := 0; i < n; i++ {
			total += cov.At(i, i)
		}
		model.TotalVariance = total
		vals, vecs := mat.JacobiEigen(cov)
		comp := mat.NewDense(m, n)
		model.ExplainedVariance = make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				comp.Set(i, j, vecs.At(j, i))
			}
			ev := vals[i]
			if ev < 0 {
				ev = 0
			}
			model.ExplainedVariance[i] = ev
		}
		model.Components = comp
	}
	return model, nil
}

// covariance forms the biased (1/N) covariance matrix of the centered rows.
func covariance(rows [][]float32, mean []float64) *mat.Dense {
	n := len(mean)
	cov := mat.NewDense(n, n)
	centered := make([]float64, n)
	for _, r := range rows {
		for j, v := range r {
			centered[j] = float64(v) - mean[j]
		}
		for i := 0; i < n; i++ {
			ci := centered[i]
			if ci == 0 {
				continue
			}
			row := cov.Row(i)
			for j := i; j < n; j++ {
				row[j] += ci * centered[j]
			}
		}
	}
	invN := 1 / float64(len(rows))
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := cov.At(i, j) * invN
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov
}

// M returns the output dimensionality of the model.
func (p *Model) M() int { return p.Components.Rows }

// N returns the input dimensionality of the model.
func (p *Model) N() int { return p.Components.Cols }

// Transform projects a single n-dimensional vector to m dimensions.
func (p *Model) Transform(v []float32) []float32 {
	if len(v) != p.N() {
		panic(fmt.Sprintf("pca: Transform input dim %d, model expects %d", len(v), p.N()))
	}
	out := make([]float32, p.M())
	p.TransformInto(out, v)
	return out
}

// TransformInto projects v into dst, which must have length M().
func (p *Model) TransformInto(dst []float32, v []float32) {
	if len(dst) != p.M() {
		panic("pca: TransformInto dst length mismatch")
	}
	for i := 0; i < p.M(); i++ {
		row := p.Components.Row(i)
		var s float64
		for j, x := range v {
			s += (float64(x) - p.Mean[j]) * row[j]
		}
		dst[i] = float32(s)
	}
}

// TransformAll projects every row, returning newly allocated projections.
func (p *Model) TransformAll(rows [][]float32) [][]float32 {
	out := make([][]float32, len(rows))
	buf := make([]float32, p.M()*len(rows))
	for i, r := range rows {
		dst := buf[i*p.M() : (i+1)*p.M() : (i+1)*p.M()]
		p.TransformInto(dst, r)
		out[i] = dst
	}
	return out
}

// ExplainedVarianceRatio returns the fraction of total variance captured
// by each component.
func (p *Model) ExplainedVarianceRatio() []float64 {
	out := make([]float64, len(p.ExplainedVariance))
	if p.TotalVariance == 0 {
		return out
	}
	for i, v := range p.ExplainedVariance {
		out[i] = v / p.TotalVariance
	}
	return out
}
