package core

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/metric"
	"repro/internal/vec"
)

// CheckInvariants verifies the structural properties the correctness
// proofs rest on. It is exercised by the test suite after builds and
// after maintenance streams; production code never calls it.
//
// Checked invariants:
//   - every live object belongs to exactly one hybrid cluster, and its
//     stored member distances match recomputation;
//   - every cluster radius covers all its members, in all three
//     representations (spatial, semantic original, semantic projected);
//   - every element array is conservative (bound dominates the member's
//     true distances) and monotonically non-increasing in both threshold
//     coordinates;
//   - element arrays contain each member exactly once and no deleted
//     objects;
//   - under the Euclidean semantic metric, each projected semantic
//     centroid still equals the projection of its original-space
//     centroid, and the deflated projected weak bound of the lazy
//     cluster ordering never exceeds the true centroid distance
//     (probed with live objects as queries) — the two facts the
//     exactness of Search's lazy ordering rests on.
//   - the SQ8 quant arena (when present) stays consistent with the
//     float32 arena — codebook dimensionality, row counts, per-cluster
//     code blocks matching the arena rows of their elements — and its
//     bound pair stays admissible (probed with live objects as
//     queries), the fact the exactness of the quantized filter rests
//     on.
func (x *Index) CheckInvariants() error {
	if err := x.checkProjBoundSoundness(); err != nil {
		return err
	}
	if err := x.checkQuantSoundness(); err != nil {
		return err
	}
	const eps = 1e-9
	seen := make(map[uint32]int)
	for ci, c := range x.clusters {
		if len(c.members) == 0 {
			return fmt.Errorf("cluster %d is empty but retained", ci)
		}
		if len(c.elems) != len(c.members) {
			return fmt.Errorf("cluster %d: %d elems for %d members", ci, len(c.elems), len(c.members))
		}
		memberDs := make(map[uint32]member, len(c.members))
		for _, m := range c.members {
			if x.deleted.get(m.idx) {
				return fmt.Errorf("cluster %d holds deleted object %d", ci, m.idx)
			}
			if _, dup := seen[m.idx]; dup {
				return fmt.Errorf("object %d in more than one hybrid cluster", m.idx)
			}
			seen[m.idx] = ci
			if ds := x.spatialToCent(m.idx, c.s); abs(ds-m.ds) > eps {
				return fmt.Errorf("object %d stored ds %v, recomputed %v", m.idx, m.ds, ds)
			}
			if dt := x.semanticToCent(m.idx, c.t); abs(dt-m.dt) > eps {
				return fmt.Errorf("object %d stored dt %v, recomputed %v", m.idx, m.dt, dt)
			}
			if m.ds > x.sRad[c.s]+eps {
				return fmt.Errorf("object %d outside spatial radius: %v > %v", m.idx, m.ds, x.sRad[c.s])
			}
			if m.dt > x.tRad[c.t]+eps {
				return fmt.Errorf("object %d outside semantic radius: %v > %v", m.idx, m.dt, x.tRad[c.t])
			}
			if dp := x.projToCent(m.idx, c.t); dp > x.tRadProj[c.t]+eps {
				return fmt.Errorf("object %d outside projected radius: %v > %v", m.idx, dp, x.tRadProj[c.t])
			}
			memberDs[m.idx] = m
		}
		prevDs, prevDt := 2.0, 2.0 // normalized distances never exceed 1
		inElems := make(map[uint32]bool, len(c.elems))
		for ei, e := range c.elems {
			if inElems[e.idx] {
				return fmt.Errorf("cluster %d: object %d twice in elems", ci, e.idx)
			}
			inElems[e.idx] = true
			m, ok := memberDs[e.idx]
			if !ok {
				return fmt.Errorf("cluster %d: elems hold non-member %d", ci, e.idx)
			}
			// Conservativeness: for every λ, λ·e.ds+(1−λ)·e.dt ≥
			// λ·m.ds+(1−λ)·m.dt, which holds iff both coordinates
			// dominate.
			if e.ds < m.ds-eps || e.dt < m.dt-eps {
				return fmt.Errorf("cluster %d elem %d: threshold (%v,%v) below true (%v,%v)",
					ci, ei, e.ds, e.dt, m.ds, m.dt)
			}
			// Monotonicity along the array.
			if e.ds > prevDs+eps || e.dt > prevDt+eps {
				return fmt.Errorf("cluster %d elem %d: thresholds increased", ci, ei)
			}
			prevDs, prevDt = e.ds, e.dt
		}
	}
	// With a write overlay, clusters still hold tombstoned base members
	// (the base is immutable) and none of the overlay's inserts.
	baseLive := x.live
	if d := x.delta; d != nil {
		baseLive = x.live - d.liveCount + d.nTombs
	}
	if len(seen) != baseLive {
		return fmt.Errorf("clusters hold %d objects, base live count is %d", len(seen), baseLive)
	}
	return x.checkOverlay()
}

// checkOverlay verifies the write overlay's internal consistency: the
// counters match the bitsets, the ID map points at live log slots, every
// live log slot belongs to exactly one group, the group radii cover
// their members (the fact scanDelta's pruning rests on), and tombstones
// only mark base positions that are live in the base.
func (x *Index) checkOverlay() error {
	d := x.delta
	if d == nil {
		return nil
	}
	if got := len(d.objs) - d.dead.count(); got != d.liveCount {
		return fmt.Errorf("overlay: %d live log slots, liveCount is %d", got, d.liveCount)
	}
	if got := d.tombs.count(); got != d.nTombs {
		return fmt.Errorf("overlay: %d tombstone bits, nTombs is %d", got, d.nTombs)
	}
	if len(d.idToPos) != d.liveCount {
		return fmt.Errorf("overlay: ID map holds %d entries for %d live slots", len(d.idToPos), d.liveCount)
	}
	for id, pos := range d.idToPos {
		if int(pos) >= len(d.objs) || d.objs[pos].ID != id || d.dead.get(pos) {
			return fmt.Errorf("overlay: ID map entry %d -> %d is stale", id, pos)
		}
	}
	for i := range x.objects {
		if x.deleted.get(uint32(i)) && d.tombs.get(uint32(i)) {
			return fmt.Errorf("overlay: tombstone on base-deleted position %d", i)
		}
	}
	const eps = 1e-9
	grouped := make(map[uint32]bool, len(d.objs))
	for gi := range d.groups {
		g := &d.groups[gi]
		for _, pos := range g.members {
			if grouped[pos] {
				return fmt.Errorf("overlay: log slot %d in more than one group", pos)
			}
			grouped[pos] = true
			if d.dead.get(pos) {
				continue
			}
			o := &d.objs[pos]
			if ds := x.space.SpatialXY(o.X, o.Y, x.sCentX[g.s], x.sCentY[g.s]); ds > g.maxDs+eps {
				return fmt.Errorf("overlay group %d: member %d outside spatial radius: %v > %v", gi, pos, ds, g.maxDs)
			}
			if g.t >= 0 {
				if dt := x.space.SemanticVec(o.Vec, x.tCent[g.t]); dt > g.maxDt+eps {
					return fmt.Errorf("overlay group %d: member %d outside semantic radius: %v > %v", gi, pos, dt, g.maxDt)
				}
			}
		}
	}
	if len(grouped) != len(d.objs) {
		return fmt.Errorf("overlay: groups hold %d of %d log slots", len(grouped), len(d.objs))
	}
	return nil
}

// checkProjBoundSoundness guards the invariant the lazy cluster ordering
// of Search is exact under: centroids are never recomputed after build
// (maintenance only moves radii), so tCentProj[t] remains the PCA image
// of tCent[t], and the deflated projected estimate of fillProjLowerBounds
// is a true lower bound on the original-space centroid distance. It
// verifies both directly — first that each projected centroid matches a
// fresh projection of its original-space centroid, then, using a sample
// of live objects as probe queries, that the weak bound never exceeds
// the true distance. A failure here means a centroid was updated in one
// representation but not the other (or the projection stopped being a
// contraction), which would silently turn exact search approximate.
func (x *Index) checkProjBoundSoundness() error {
	if x.space.SemanticKind != metric.EuclideanSemantic || x.pcaModel == nil || x.m <= 0 {
		return nil // the lazy ordering is disabled; nothing to guard
	}
	reproj := make([]float32, x.m)
	for t := range x.tCent {
		if len(x.tMembers[t]) == 0 {
			continue // never-populated clusters carry meaningless centroids
		}
		x.pcaModel.TransformInto(reproj, x.tCent[t])
		// The stored projected centroid is the mean of member projections;
		// by linearity it equals the projection of the mean up to float32
		// rounding, which projWeakAbsSlack dominates by >100×.
		if d := vec.Dist(reproj, x.tCentProj[t]) / x.space.DtMax; d > projWeakAbsSlack/10 {
			return fmt.Errorf("semantic centroid %d: projected centroid drifted %v (normalized) from the projection of the original-space centroid", t, d)
		}
	}
	// Probe the bound itself with stored objects as queries (a sample
	// keeps CheckInvariants O(n) for large indexes).
	const maxProbes = 128
	probes := 0
	inv := (1 - projWeakRelSlack) / x.space.DtMax
	for i := range x.objects {
		if x.deleted.get(uint32(i)) {
			continue
		}
		if probes++; probes > maxProbes {
			break
		}
		qProj := x.projAt(uint32(i))
		for t := range x.tCent {
			if len(x.tMembers[t]) == 0 {
				continue
			}
			weak := vec.Dist(qProj, x.tCentProj[t])*inv - projWeakAbsSlack
			if weak < 0 {
				weak = 0
			}
			if truth := x.semanticToCent(uint32(i), t); weak > truth {
				return fmt.Errorf("object %d, semantic centroid %d: projected weak bound %v exceeds true centroid distance %v", i, t, weak, truth)
			}
		}
	}
	return nil
}

// checkQuantSoundness guards the invariants the quantized filter's
// exactness rests on: the SQ8 arena mirrors the float32 arena row for
// row, every cluster's contiguous code block agrees with the arena rows
// of its elements (fillClusterQuant ran wherever buildElems did), and
// the certain bound pair actually brackets the true distance — probed
// with live objects as queries, like checkProjBoundSoundness. A failure
// means a quantized exclusion could discard a true result, silently
// turning exact search approximate.
func (x *Index) checkQuantSoundness() error {
	qa := x.quant
	d := x.dim
	if qa == nil {
		for ci, c := range x.clusters {
			if len(c.codes) != 0 || len(c.resid) != 0 {
				return fmt.Errorf("cluster %d carries a quant block but the index has no quant arena", ci)
			}
		}
		return nil
	}
	if got := qa.cb.Dim(); got != d {
		return fmt.Errorf("quant codebook dim %d, index dim %d", got, d)
	}
	if len(qa.codes) != len(x.objects)*d {
		return fmt.Errorf("quant arena holds %d codes for %d objects of dim %d", len(qa.codes), len(x.objects), d)
	}
	if len(qa.resid) != len(x.objects) {
		return fmt.Errorf("quant arena holds %d residuals for %d objects", len(qa.resid), len(x.objects))
	}
	for i, r := range qa.resid {
		if r < 0 || math.IsNaN(float64(r)) {
			return fmt.Errorf("object %d: invalid quant residual %v", i, r)
		}
	}
	for ci, c := range x.clusters {
		if len(c.codes) != len(c.elems)*d || len(c.resid) != len(c.elems) {
			return fmt.Errorf("cluster %d: quant block %d codes / %d residuals for %d elems",
				ci, len(c.codes), len(c.resid), len(c.elems))
		}
		for j := range c.elems {
			idx := c.elems[j].idx
			if !bytes.Equal(c.codes[j*d:(j+1)*d], qa.row(idx, d)) {
				return fmt.Errorf("cluster %d elem %d: code block row disagrees with arena row of object %d", ci, j, idx)
			}
			if c.resid[j] != qa.resid[idx] {
				return fmt.Errorf("cluster %d elem %d: block residual %v, arena residual %v",
					ci, j, c.resid[j], qa.resid[idx])
			}
		}
	}
	// Probe the bound pair with stored objects as queries against a
	// stride of live rows (a sample keeps CheckInvariants O(n)).
	const maxProbes, maxRowsPerProbe = 32, 16
	qAdj := make([]float32, d)
	probes := 0
	for i := range x.objects {
		if x.deleted.get(uint32(i)) {
			continue
		}
		if probes++; probes > maxProbes {
			break
		}
		qa.cb.AdjustQueryInto(qAdj, x.objects[i].Vec)
		rows := 0
		for j := i; j < len(x.objects); j += 7 {
			if x.deleted.get(uint32(j)) {
				continue
			}
			if rows++; rows > maxRowsPerProbe {
				break
			}
			sq := vec.SqDistSQ8(qAdj, qa.cb.Step, qa.row(uint32(j), d))
			truth := float64(vec.Dist(x.vecAt(uint32(i)), x.vecAt(uint32(j))))
			lb := qa.cb.QLowerBound(sq, qa.resid[j])
			ub := qa.cb.QUpperBound(sq, qa.resid[j])
			if lb > truth || truth > ub {
				return fmt.Errorf("objects %d vs %d: quant bounds [%v, %v] do not bracket true distance %v",
					i, j, lb, ub, truth)
			}
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
