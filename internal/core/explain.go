package core

import (
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/obs"
)

// SearchExplainInto answers a k-NN query exactly like SearchInto
// (approx=false, the CSSI algorithm) or SearchApproxInto (approx=true,
// CSSIA) while filling es with the per-query search-internals trace:
// clusters ordered/examined/pruned, objects visited vs pruned,
// early-abandon kernel exits, per-phase wall time, and the final k-NN
// bound. The returned results are bit-identical to the uninstrumented
// call — collection only reads what the algorithms already compute.
//
// es must be non-nil; callers that retain one across queries should
// Reset it first (the counters accumulate). With sufficient dst
// capacity the call performs zero heap allocations, same as SearchInto.
func (x *Index) SearchExplainInto(dst []knn.Result, q *dataset.Object, k int, lambda float64, approx bool, es *obs.SearchStats) []knn.Result {
	return x.SearchExplainOptionsInto(dst, q, k, lambda, SearchOptions{Approx: approx}, es)
}

// SearchExplainOptionsInto is SearchExplainInto with the full
// SearchOptions switches, so the quantized modes can be traced too
// (QuantNanos then carries the quant phase time of the query).
func (x *Index) SearchExplainOptionsInto(dst []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, es *obs.SearchStats) []knn.Result {
	sc := x.getScratch()
	sc.obs = es
	n := len(dst)
	dst = x.searchOptionsWith(sc, dst, nil, q, k, lambda, opts, &es.Stats)
	sc.obs = nil
	x.putScratch(sc)
	if len(dst) > n {
		es.KthDistance = dst[len(dst)-1].Dist
	}
	return dst
}

// SearchExplainOptionsSeededInto is SearchExplainOptionsInto with a
// bound-carrying seed (see SearchOptionsSeededInto): the sharded
// single-core chain uses it so the always-on tracer can record
// per-shard spans without giving up the sequential bound tightening
// that makes the chain fast. The seed applies to the exact path only.
func (x *Index) SearchExplainOptionsSeededInto(dst, seed []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, es *obs.SearchStats) []knn.Result {
	sc := x.getScratch()
	sc.obs = es
	n := len(dst)
	dst = x.searchOptionsWith(sc, dst, seed, q, k, lambda, opts, &es.Stats)
	sc.obs = nil
	x.putScratch(sc)
	if len(dst) > n {
		es.KthDistance = dst[len(dst)-1].Dist
	}
	return dst
}

// DeriveClusterCount exposes the paper's cluster-count rule
// Ks = Kt = √n·f (§7.1, with the laptop-scale calibration of
// Config.Ks) for callers outside the build path — notably the sharded
// build, which derives every shard's cluster counts from the GLOBAL
// object count so per-shard pruning granularity matches the flat
// index's. f = 0 selects the default multiplier (0.3).
func DeriveClusterCount(n int, f float64) int {
	if f == 0 {
		f = 0.3
	}
	return clusterCount(n, f)
}
