// Package core implements the paper's contribution: CSSI (Cluster-based
// Semantic Spatio-textual Indexing) and its approximate variant CSSIA.
//
// The index jointly organizes the spatial and the semantic domain into
// hybrid clusters (§4.1): a spatial K-Means over locations yields Ks
// spatial balls, a semantic K-Means over PCA-projected embeddings yields
// Kt semantic balls, and every object belongs to exactly one (spatial,
// semantic) pair. Each hybrid cluster stores its objects in a single
// array built by a Threshold-Algorithm merge of the two per-centroid
// distance orders, which supports the intra-cluster pruning of Lemma 4.5
// for any query-time λ.
//
// CSSI (Search) is provably exact (Lemma 4.7): clusters are visited in
// ascending lower-bound order (Eq. 4) and both inter-cluster (Lemma 4.4)
// and intra-cluster (Lemma 4.5) pruning preserve the true k-NN set.
// CSSIA (SearchApprox) swaps the semantic cluster representations for
// their projected-space counterparts (§5.2), which shrinks overlap and
// boosts inter-cluster pruning at the cost of a small result error.
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metric"
	"repro/internal/pca"
	"repro/internal/route"
	"repro/internal/vec"
)

// Config controls index construction.
type Config struct {
	// Ks and Kt fix the number of spatial/semantic clusters. When zero
	// they derive from the dataset size and F via the paper's rule
	// Ks = Kt = √|O|·c·f (§7.1). The paper's c yields thousands of
	// hybrid clusters at its 5M-35M scale; at laptop scale the same
	// objects-per-cluster ratio would leave too few clusters for the
	// pruning to show its shape, so c is calibrated to 1.0 here (the
	// default setup then yields ≈1,800 hybrid clusters at 20k objects —
	// the same order as the paper's 4,489). F keeps its role as the
	// granularity multiplier of Fig. 10.
	Ks, Kt int
	// F is the cluster-count multiplier f (default 0.3, the paper's
	// default; sweep 0.1–0.9 in Fig. 10).
	F float64
	// M is the PCA projection dimensionality (default 2).
	M int
	// SampleFraction is the share of objects used to fit K-Means and
	// PCA before assigning the rest (default 0.1, §7.1).
	SampleFraction float64
	// PCAMethod selects the PCA path (default Randomized, the paper's
	// choice).
	PCAMethod pca.Method
	// KMeansIters bounds the Lloyd iterations (default 25).
	KMeansIters int
	// Workers bounds the construction parallelism (0 = GOMAXPROCS).
	// The paper notes that K-Means and hybrid-cluster formation
	// parallelize readily (§7.5); this knob exists mostly for
	// reproducible single-threaded measurements.
	Workers int
	// Seed makes construction deterministic.
	Seed uint64
	// DisableQuant skips building the SQ8-quantized companion arena
	// (see quant.go). The zero value keeps quantization on wherever it
	// applies (Euclidean semantic metric); exact results are identical
	// either way — the quantized pass only prunes provably-excluded
	// candidates — so this knob exists for measurement and as an
	// escape hatch.
	DisableQuant bool
	// DeltaCompactThreshold bounds how many write operations a published
	// snapshot's write overlay may absorb before the concurrent wrappers
	// fold it into a fresh flat base (see overlay.go). Zero selects
	// DefaultDeltaCompactThreshold; DeltaDisabled (-1) switches the write
	// path back to eager O(n) clones — the pre-overlay behavior, kept as
	// the measurable baseline. The core package itself only stores the
	// value (gob-tolerant: absent from older files, loading as 0); the
	// wrappers interpret it.
	DeltaCompactThreshold int
}

const (
	// DefaultDeltaCompactThreshold is the overlay size at which the
	// concurrent wrappers compact by default: large enough that the O(n)
	// fold amortizes to a small constant per write, small enough that the
	// extra per-query delta scan stays well under one cluster's work.
	DefaultDeltaCompactThreshold = 4096
	// DeltaDisabled as a DeltaCompactThreshold disables the write overlay.
	DeltaDisabled = -1
)

func (c *Config) applyDefaults(n int) {
	if c.F == 0 {
		c.F = 0.3
	}
	if c.Ks == 0 {
		c.Ks = clusterCount(n, c.F)
	}
	if c.Kt == 0 {
		c.Kt = clusterCount(n, c.F)
	}
	if c.M <= 0 {
		c.M = 2
	}
	if c.SampleFraction <= 0 || c.SampleFraction > 1 {
		c.SampleFraction = 0.1
	}
	if c.KMeansIters <= 0 {
		c.KMeansIters = 25
	}
}

// clusterCount applies the paper's cluster-count rule with the
// laptop-scale calibration constant (see Config.Ks).
func clusterCount(n int, f float64) int {
	k := int(math.Round(math.Sqrt(float64(n)) * f))
	if k < 4 {
		k = 4
	}
	return k
}

// member is one object of a hybrid cluster with its true normalized
// distances to the cluster's two centroids.
type member struct {
	idx    uint32 // index into Index.objects
	ds, dt float64
}

// element is one slot of the query-time array A (§4.1): the object plus a
// conservative threshold pair, non-increasing along the array, with
// d(o,C) ≤ λ·ds + (1−λ)·dt for every λ.
type element struct {
	idx    uint32
	ds, dt float64
}

// hybrid is one hybrid cluster C = ⟨C^s,R^s,C^t,R^t⟩ plus its object
// array.
type hybrid struct {
	s, t    int // side-cluster indices
	members []member
	elems   []element
	// codes and resid are the cluster's contiguous SQ8 block: row j of
	// codes (stride dim) quantizes the vector of elems[j], resid[j] is
	// its admissible residual. Derived data like elems — rebuilt by
	// fillClusterQuant wherever buildElems runs, shared under COW, nil
	// when the index has no quant arena.
	codes []uint8
	resid []float32
}

// Index is a built CSSI/CSSIA index. Both query algorithms share one
// index: it keeps the semantic cluster representations in the original
// space (for CSSI and for intra-cluster pruning) and in the projected
// space (for CSSIA's inter-cluster pruning, §5.2).
type Index struct {
	cfg   Config
	space *metric.Space

	objects []dataset.Object
	deleted bitset
	live    int
	idToIdx map[uint32]uint32

	// delta, when non-nil, is this snapshot's mutable write overlay (see
	// overlay.go): Insert/Delete/Update land in it instead of the base
	// structures above, which then stay byte-for-byte shared with the
	// parent snapshot. Search runs base + delta; Compact folds the delta
	// into a fresh flat base. nil on flat indexes (Build/Load/Compact
	// products), whose mutations work in place as before.
	delta *overlayDelta

	// The embeddings and their PCA projections live in two contiguous
	// row-major float32 arenas (SoA, fixed stride): row i of vecArena is
	// the n-dimensional vector of objects[i] (objects[i].Vec is a view
	// into it), row i of projArena its m-dimensional projection. The
	// query loops walk these arenas sequentially, so the layout turns
	// the dominant kernel traffic into linear prefetchable reads instead
	// of one pointer chase per row.
	dim       int // n: embedding dimensionality (vecArena stride)
	m         int // m: projection dimensionality (projArena stride)
	vecArena  []float32
	projArena []float32
	// quant is the SQ8-quantized companion of vecArena (nil when
	// disabled or inapplicable; see quant.go). The pointee's slices
	// follow the arenas' append-only/COW discipline; CloneForWrite
	// copies the struct header so clones grow it independently.
	quant *quantArena

	// router is the learned cluster-routing model (nil on indexes too
	// small to train one; see route.go). Immutable after training:
	// snapshots and COW clones share it by pointer, rebuilds retrain it.
	// routerFold is its precomputed inference form (set with router by
	// setRouter); the query path scores with the fold only.
	router     *route.Model
	routerFold route.Folded

	pcaModel *pca.Model

	// Spatial side clusters.
	sCentX, sCentY []float64
	sRad           []float64
	sMembers       [][]uint32

	// Semantic side clusters: original-space and projected
	// representations.
	tCent     [][]float32
	tRad      []float64
	tCentProj [][]float32
	tRadProj  []float64
	tMembers  [][]uint32
	// tValid[t] records whether semantic cluster t had members when its
	// centroid was computed at (re)build time — i.e. whether tCent[t] and
	// tCentProj[t] are meaningful. Clusters that never received a member
	// carry zero centroids that must not attract inserts. Immutable
	// after build (incremental inserts never recompute centroids).
	tValid []bool

	sAssign, tAssign []int

	clusters   []*hybrid
	clusterIdx map[[2]int]*hybrid

	// UpdatesSinceBuild counts Insert/Delete operations since the last
	// (re)build; callers may use it to trigger Rebuild after heavy churn
	// (§6.2).
	UpdatesSinceBuild int
	// insertsSinceBuild and radiusExpansions drive DriftRatio, the
	// rebuild heuristic: an insert falling outside the build-time ball
	// of its nearest clusters signals that the data distribution has
	// moved away from the clustering (the condition §6.2 says warrants
	// a rebuild). The comparison uses the radii as of the last (re)build
	// — not the live, already-expanded ones — so the signal does not
	// saturate after the first outlier.
	builtSRad, builtTRadProj        []float64
	insertsSinceBuild, radiusDrifts int

	// scratchPool recycles per-query searchScratch buffers so the query
	// algorithms allocate nothing in steady state. A pointer (not a
	// value) because Rebuild replaces the whole Index value and
	// sync.Pool must not be copied. Snapshot clones share the pool.
	scratchPool *sync.Pool

	// cow is non-nil while this Index is a copy-on-write clone being
	// prepared for snapshot publication (see clone.go); nil on indexes
	// obtained from Build/Load, whose mutations stay in place.
	cow *cowState
}

// Build constructs the index over the dataset (Alg. 1).
func Build(ds *dataset.Dataset, space *metric.Space, cfg Config) (*Index, error) {
	var tm BuildTimings
	return buildInstrumented(ds, space, cfg, &tm)
}

// buildInstrumented is Build with per-phase wall-clock attribution
// (Fig. 15 reports this breakdown).
func buildInstrumented(ds *dataset.Dataset, space *metric.Space, cfg Config, tm *BuildTimings) (*Index, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	cfg.applyDefaults(ds.Len())
	x := &Index{
		cfg:         cfg,
		space:       space,
		objects:     append([]dataset.Object(nil), ds.Objects...),
		deleted:     newBitset(ds.Len()),
		live:        ds.Len(),
		idToIdx:     make(map[uint32]uint32, ds.Len()),
		clusterIdx:  make(map[[2]int]*hybrid),
		scratchPool: newScratchPool(),
	}
	for i := range x.objects {
		if _, dup := x.idToIdx[x.objects[i].ID]; dup {
			return nil, fmt.Errorf("core: duplicate object ID %d", x.objects[i].ID)
		}
		x.idToIdx[x.objects[i].ID] = uint32(i)
	}

	// Copy the embeddings into the contiguous arena and repoint each
	// object's Vec at its row. The values are bit-identical to the
	// caller's, so downstream distance computations are unchanged.
	x.dim = len(x.objects[0].Vec)
	x.vecArena = make([]float32, len(x.objects)*x.dim)
	for i := range x.objects {
		if len(x.objects[i].Vec) != x.dim {
			return nil, fmt.Errorf("core: object %d has vector dim %d, want %d",
				x.objects[i].ID, len(x.objects[i].Vec), x.dim)
		}
		row := x.vecArena[i*x.dim : (i+1)*x.dim : (i+1)*x.dim]
		copy(row, x.objects[i].Vec)
		x.objects[i].Vec = row
	}

	// --- Spatial clustering (Alg. 1 lines 2-4) ---
	phase := time.Now()
	spatialBuf := make([]float32, 2*len(x.objects))
	spatialPts := make([][]float32, len(x.objects))
	for i := range x.objects {
		p := spatialBuf[2*i : 2*i+2 : 2*i+2]
		p[0], p[1] = float32(x.objects[i].X), float32(x.objects[i].Y)
		spatialPts[i] = p
	}
	sres, err := kmeans.SampleFit(spatialPts, cfg.SampleFraction, kmeans.Config{
		K: cfg.Ks, MaxIters: cfg.KMeansIters, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: spatial clustering: %w", err)
	}
	x.sAssign = sres.Assign
	ks := len(sres.Centroids)
	x.sCentX = make([]float64, ks)
	x.sCentY = make([]float64, ks)
	x.sRad = make([]float64, ks)
	x.sMembers = make([][]uint32, ks)
	for c, cent := range sres.Centroids {
		x.sCentX[c], x.sCentY[c] = float64(cent[0]), float64(cent[1])
	}

	tm.Spatial = time.Since(phase)

	// --- PCA projection (Alg. 1 lines 5-6) ---
	phase = time.Now()
	vecs := make([][]float32, len(x.objects))
	for i := range x.objects {
		vecs[i] = x.objects[i].Vec
	}
	x.pcaModel, err = pca.Fit(sampleRows(vecs, cfg.SampleFraction, cfg.Seed), pca.Config{
		Components: cfg.M, Method: cfg.PCAMethod, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: PCA: %w", err)
	}
	// Project every vector into the projection arena (parallel: rows are
	// independent). proj holds temporary per-row views used only during
	// the remainder of construction; queries go through projAt.
	x.m = x.pcaModel.M()
	x.projArena = make([]float32, x.m*len(vecs))
	proj := make([][]float32, len(vecs))
	parallelFor(len(vecs), cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst := x.projArena[i*x.m : (i+1)*x.m : (i+1)*x.m]
			x.pcaModel.TransformInto(dst, vecs[i])
			proj[i] = dst
		}
	})
	space.SetProjectedNormalizerArena(x.projArena, x.m)

	tm.PCA = time.Since(phase)

	// --- Semantic clustering on the projections (Alg. 1 lines 7-9) ---
	phase = time.Now()
	tres, err := kmeans.SampleFit(proj, cfg.SampleFraction, kmeans.Config{
		K: cfg.Kt, MaxIters: cfg.KMeansIters, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("core: semantic clustering: %w", err)
	}
	tm.Semantic = time.Since(phase)
	phase = time.Now()
	x.tAssign = tres.Assign
	kt := len(tres.Centroids)
	x.tCent = make([][]float32, kt)
	x.tRad = make([]float64, kt)
	x.tCentProj = make([][]float32, kt)
	x.tRadProj = make([]float64, kt)
	x.tMembers = make([][]uint32, kt)
	x.tValid = make([]bool, kt)

	// Side membership lists.
	for i := range x.objects {
		x.sMembers[x.sAssign[i]] = append(x.sMembers[x.sAssign[i]], uint32(i))
		x.tMembers[x.tAssign[i]] = append(x.tMembers[x.tAssign[i]], uint32(i))
	}

	// Semantic cluster representations: the original-space centroid is
	// the mean of the members' n-dimensional vectors (§4.1); the
	// projected centroid is the mean of their projections (§5.2).
	for t := 0; t < kt; t++ {
		ms := x.tMembers[t]
		cent := make([]float32, x.dim)
		centP := make([]float32, x.m)
		x.tValid[t] = len(ms) > 0
		if len(ms) > 0 {
			rows := make([][]float32, len(ms))
			rowsP := make([][]float32, len(ms))
			for i, mi := range ms {
				rows[i] = x.objects[mi].Vec
				rowsP[i] = proj[mi]
			}
			vec.Mean(cent, rows)
			vec.Mean(centP, rowsP)
		}
		x.tCent[t] = cent
		x.tCentProj[t] = centP
	}

	// Per-object distances to the assigned centroids (parallel; these
	// feed both the radii and the hybrid-cluster member records).
	n := len(x.objects)
	dsAll := make([]float64, n)
	dtAll := make([]float64, n)
	dpAll := make([]float64, n)
	parallelFor(n, cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dsAll[i] = x.spatialToCent(uint32(i), x.sAssign[i])
			dtAll[i] = x.semanticToCent(uint32(i), x.tAssign[i])
			dpAll[i] = x.projToCent(uint32(i), x.tAssign[i])
		}
	})
	// Radii in all representations (parallel max folds).
	x.sRad = maxPerPartition(n, ks, cfg.Workers,
		func(i int) int { return x.sAssign[i] },
		func(i int) float64 { return dsAll[i] })
	x.tRad = maxPerPartition(n, kt, cfg.Workers,
		func(i int) int { return x.tAssign[i] },
		func(i int) float64 { return dtAll[i] })
	x.tRadProj = maxPerPartition(n, kt, cfg.Workers,
		func(i int) int { return x.tAssign[i] },
		func(i int) float64 { return dpAll[i] })

	// --- Hybrid clusters and their arrays (Alg. 1 lines 10-14) ---
	for i := range x.objects {
		x.addToHybridWith(uint32(i), dsAll[i], dtAll[i])
	}
	// Train the SQ8 companion arena over the freshly filled vecArena,
	// then build each cluster's element array and contiguous code block
	// together (both are per-cluster derived data).
	x.quant = x.trainQuant()
	clusters := x.clusters
	parallelFor(len(clusters), cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			clusters[i].elems = buildElems(clusters[i].members)
			x.fillClusterQuant(clusters[i])
		}
	})
	// Snapshot the built radii for the DriftRatio heuristic.
	x.builtSRad = append([]float64(nil), x.sRad...)
	x.builtTRadProj = append([]float64(nil), x.tRadProj...)
	tm.Hybrid = time.Since(phase)
	// Train the learned cluster router last: its labeling self-queries
	// are ordinary exact searches, which need the finished index.
	phase = time.Now()
	x.setRouter(x.trainRouter())
	tm.Route = time.Since(phase)
	return x, nil
}

// sampleRows deterministically samples a fraction of rows (at least 2,
// capped at all rows).
func sampleRows(rows [][]float32, fraction float64, seed uint64) [][]float32 {
	n := int(math.Ceil(fraction * float64(len(rows))))
	if n < 2 {
		n = 2
	}
	if n >= len(rows) {
		return rows
	}
	// A fixed-stride sample keyed by the seed keeps this allocation-light
	// and deterministic.
	out := make([][]float32, 0, n)
	stride := len(rows) / n
	if stride < 1 {
		stride = 1
	}
	start := int(seed % uint64(stride))
	for i := start; i < len(rows) && len(out) < n; i += stride {
		out = append(out, rows[i])
	}
	return out
}

// spatialToCent returns the normalized spatial distance from object idx
// to spatial centroid s.
func (x *Index) spatialToCent(idx uint32, s int) float64 {
	o := &x.objects[idx]
	return x.space.SpatialXY(o.X, o.Y, x.sCentX[s], x.sCentY[s])
}

// semanticToCent returns the normalized original-space semantic distance
// from object idx to semantic centroid t.
func (x *Index) semanticToCent(idx uint32, t int) float64 {
	return x.space.SemanticVec(x.objects[idx].Vec, x.tCent[t])
}

// projToCent returns the normalized projected-space distance from object
// idx to the projected semantic centroid t.
func (x *Index) projToCent(idx uint32, t int) float64 {
	return x.space.SemanticProjVec(x.projAt(idx), x.tCentProj[t])
}

// vecAt returns the arena row holding the embedding of the object at
// storage position i (identical to objects[i].Vec).
func (x *Index) vecAt(i uint32) []float32 {
	d := x.dim
	return x.vecArena[int(i)*d : (int(i)+1)*d : (int(i)+1)*d]
}

// projAt returns the arena row holding the m-dimensional projection of
// the object at storage position i.
func (x *Index) projAt(i uint32) []float32 {
	m := x.m
	return x.projArena[int(i)*m : (int(i)+1)*m : (int(i)+1)*m]
}

// addToHybrid places object idx into its hybrid cluster, computing its
// centroid distances. It does not rebuild the element array.
func (x *Index) addToHybrid(idx uint32) *hybrid {
	s, t := x.sAssign[idx], x.tAssign[idx]
	return x.addToHybridWith(idx, x.spatialToCent(idx, s), x.semanticToCent(idx, t))
}

// addToHybridWith is addToHybrid with precomputed centroid distances
// (the bulk-build path computes them in parallel beforehand).
func (x *Index) addToHybridWith(idx uint32, ds, dt float64) *hybrid {
	s, t := x.sAssign[idx], x.tAssign[idx]
	key := [2]int{s, t}
	c := x.clusterIdx[key]
	if c == nil {
		c = &hybrid{s: s, t: t}
		x.clusterIdx[key] = c
		x.clusters = append(x.clusters, c)
		x.markOwnedHybrid(c)
	} else {
		c = x.cowHybrid(c)
	}
	c.members = append(c.members, member{idx: idx, ds: ds, dt: dt})
	return c
}

// Len returns the number of live (non-deleted) objects.
func (x *Index) Len() int { return x.live }

// Dim returns the embedding dimensionality the index was built with —
// the vector length every query and inserted object must carry.
func (x *Index) Dim() int { return x.dim }

// NumClusters returns the number of non-empty hybrid clusters.
func (x *Index) NumClusters() int { return len(x.clusters) }

// Config returns the effective configuration (with defaults applied).
func (x *Index) Config() Config { return x.cfg }

// PCA exposes the fitted projection model (used by the harness to
// project query vectors for analysis).
func (x *Index) PCA() *pca.Model { return x.pcaModel }

// Space exposes the metric space the index computes distances in. The
// snapshot facade reads it because RebuildFresh gives the replacement
// index its own space copy.
func (x *Index) Space() *metric.Space { return x.space }

// Object returns the object stored at the given ID, if it is live.
// With a write overlay present the delta wins: an overlay insert
// shadows nothing (the ID was free), an overlay tombstone hides the
// base object, and an overlay update is a tombstone plus an insert.
func (x *Index) Object(id uint32) (*dataset.Object, bool) {
	if d := x.delta; d != nil {
		if pos, ok := d.idToPos[id]; ok {
			return &d.objs[pos], true
		}
	}
	idx, ok := x.idToIdx[id]
	if !ok || x.deleted.get(idx) {
		return nil, false
	}
	if d := x.delta; d != nil && d.tombs.get(idx) {
		return nil, false
	}
	return &x.objects[idx], true
}
