package core

import "math/bits"

// bitset is a packed bitmap over storage positions — the representation
// of the deleted set and of the overlay's tombstone/dead sets. Packing
// 64 membership flags per word makes the per-clone copy and the linear
// liveness scans 8× smaller than the old []bool, and the hot membership
// check stays a shift+mask.
//
// The COW discipline matches the structures it replaced: clones that may
// mutate deep-copy via clone(); delta clones share the words and never
// write them. Callers maintain the covering invariant — the word slice
// always spans every storage position they index (grown grows it).
type bitset []uint64

// newBitset returns a zeroed bitset covering n bits.
func newBitset(n int) bitset {
	return make(bitset, (n+63)>>6)
}

// get reports whether bit i is set.
func (b bitset) get(i uint32) bool {
	return b[i>>6]>>(i&63)&1 != 0
}

// set sets bit i.
func (b bitset) set(i uint32) {
	b[i>>6] |= 1 << (i & 63)
}

// unset clears bit i.
func (b bitset) unset(i uint32) {
	b[i>>6] &^= 1 << (i & 63)
}

// grown returns b extended with zero words until it covers n bits.
// Growth reallocates whenever the capacity is exact (clone() copies are),
// so a COW child growing its bitmap never writes backing shared with the
// parent.
func (b bitset) grown(n int) bitset {
	want := (n + 63) >> 6
	for len(b) < want {
		b = append(b, 0)
	}
	return b
}

// clone returns a private deep copy.
func (b bitset) clone() bitset {
	return append(bitset(nil), b...)
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// bitsetFromBools packs a []bool (the persisted wire layout) into a
// bitset covering n bits; extra capacity stays zero.
func bitsetFromBools(src []bool, n int) bitset {
	b := newBitset(n)
	for i, v := range src {
		if v {
			b.set(uint32(i))
		}
	}
	return b
}

// bools unpacks the first n bits into a []bool (the persisted wire
// layout, kept stable across the bitset change).
func (b bitset) bools(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = b.get(uint32(i))
	}
	return out
}
