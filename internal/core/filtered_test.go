package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// filteredBrute is the reference: scan only the allowed objects.
func filteredBrute(f *fixture, q *dataset.Object, k int, lambda float64, allow func(uint32) bool) []knn.Result {
	h := knn.NewHeap(k)
	for i := range f.ds.Objects {
		o := &f.ds.Objects[i]
		if !allow(o.ID) {
			continue
		}
		h.Push(knn.Result{ID: o.ID, Dist: f.sp.Distance(nil, lambda, q, o)})
	}
	return h.Sorted()
}

func TestSearchFilteredMatchesBruteForce(t *testing.T) {
	f := build(t, dataset.TwitterLike, 900, Config{Seed: 70})
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 12; trial++ {
		// Random predicate keeping ~30% of objects.
		keep := make(map[uint32]bool)
		for i := range f.ds.Objects {
			if rng.Float64() < 0.3 {
				keep[f.ds.Objects[i].ID] = true
			}
		}
		allow := func(id uint32) bool { return keep[id] }
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		lambda := rng.Float64()
		want := filteredBrute(f, &q, 10, lambda, allow)
		got := f.idx.SearchFiltered(&q, 10, lambda, allow, nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("trial %d result %d: %v vs %v", trial, i, got[i].Dist, want[i].Dist)
			}
			if !allow(got[i].ID) {
				t.Fatalf("trial %d: filtered-out object %d returned", trial, got[i].ID)
			}
		}
	}
}

func TestSearchFilteredAllowAll(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{Seed: 71})
	q := f.ds.Objects[7]
	want := f.idx.Search(&q, 10, 0.5, nil)
	got := f.idx.SearchFiltered(&q, 10, 0.5, func(uint32) bool { return true }, nil)
	sameResults(t, "allow-all filter", want, got)
}

func TestSearchFilteredAllowNone(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 72})
	q := f.ds.Objects[1]
	got := f.idx.SearchFiltered(&q, 10, 0.5, func(uint32) bool { return false }, nil)
	if len(got) != 0 {
		t.Fatalf("expected empty, got %d", len(got))
	}
}

func TestSearchFilteredSingleton(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 73})
	target := f.ds.Objects[123].ID
	q := f.ds.Objects[9]
	got := f.idx.SearchFiltered(&q, 5, 0.5, func(id uint32) bool { return id == target }, nil)
	if len(got) != 1 || got[0].ID != target {
		t.Fatalf("singleton filter returned %v", got)
	}
}

func TestSearchFilteredStatsCounted(t *testing.T) {
	f := build(t, dataset.TwitterLike, 600, Config{Seed: 74})
	q := f.ds.Objects[3]
	var st metric.Stats
	f.idx.SearchFiltered(&q, 10, 0.5, func(id uint32) bool { return id%2 == 0 }, &st)
	if st.VisitedObjects == 0 || st.ClustersExamined == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}
