package core

// lowerBound evaluates L(q,C) of Eq. 4 from the query's distances to the
// cluster's two centroids and the two radii. It covers the four enclosure
// cases: when q lies inside a ball, that side contributes nothing to the
// bound (its per-side lower bound would be negative and is clamped by the
// case analysis); when q lies inside both balls, the bound is zero.
func lowerBound(lambda, dsq, rs, dtq, rt float64) float64 {
	sOut := dsq >= rs
	tOut := dtq >= rt
	switch {
	case sOut && tOut:
		return lambda*(dsq-rs) + (1-lambda)*(dtq-rt)
	case sOut:
		return lambda * (dsq - rs)
	case tOut:
		return (1 - lambda) * (dtq - rt)
	default:
		return 0
	}
}
