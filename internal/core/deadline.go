package core

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/obs"
)

// Deadline-aware search: SearchOptions can carry an absolute time
// budget (and a cancellation signal), and every cluster-consuming loop
// — the exact frontier, the routed exact prefix, CSSIA's projected
// frontier, the routed approximate visit loop, and the QuantOnly bulk
// scan — polls it once per cluster pop, reading the wall clock only
// every deadlineCheckEvery pops so the hot path stays branch-cheap.
// When the budget fires the loop stops consuming clusters and the
// query returns the heap accumulated so far with SearchMeta.Partial
// set.
//
// Admissibility of the truncated answer: the k-NN heap is at every
// instant the exact top-k of the candidate set offered so far, and
// every offered candidate's distance is its true distance — truncation
// withholds candidates, it never corrupts kept ones. A partial answer
// is therefore a sound upper bound on the true k-NN distances (each
// returned distance ≥ its true rank's distance, result k's distance
// bounds the true k-th from above); it is only the completeness claim
// — "no unvisited object is closer" — that is surrendered, which is
// exactly what Partial flags.

// deadlineCheckEvery is the stride, in cluster pops, between wall-clock
// reads of a budgeted query. Cluster scans between two checks bound the
// budget overshoot; at benchmark cluster sizes that keeps the overshoot
// far below a millisecond while unbudgeted-path cost stays one untaken
// branch per pop.
const deadlineCheckEvery = 32

// budgetExpired is polled once per cluster pop by the search loops.
// It latches: once the deadline passes or the cancel channel fires,
// every later call reports true without touching the clock again.
func (sc *searchScratch) budgetExpired() bool {
	if !sc.budgeted {
		return false
	}
	if sc.partial {
		return true
	}
	n := sc.pops
	sc.pops++
	if n%deadlineCheckEvery != 0 {
		return false
	}
	if sc.cancel != nil {
		select {
		case <-sc.cancel:
			sc.partial = true
			return true
		default:
		}
	}
	if !sc.deadline.IsZero() && !time.Now().Before(sc.deadline) {
		sc.partial = true
		return true
	}
	return false
}

// SearchMeta reports per-query execution facts the plain result slice
// cannot carry. The *Meta* entry points fill it; m may be nil when the
// caller only wants the results.
type SearchMeta struct {
	// Partial reports that the query stopped at its time budget (or
	// cancellation signal) before proving completeness: the results are
	// the exact top-k of the candidates examined so far — an admissible
	// prefix — but closer objects may remain unvisited.
	Partial bool
}

func fillMeta(m *SearchMeta, sc *searchScratch) {
	if m != nil {
		m.Partial = sc.partial
	}
}

// SearchOptionsMetaInto is SearchOptionsInto reporting execution
// metadata into m (which may be nil). It is the entry point for
// budgeted queries: without a Deadline or Cancel in opts, m.Partial is
// always false and the call is exactly SearchOptionsInto.
func (x *Index) SearchOptionsMetaInto(dst []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, st *metric.Stats, m *SearchMeta) []knn.Result {
	sc := x.getScratch()
	out := x.searchOptionsWith(sc, dst, nil, q, k, lambda, opts, st)
	fillMeta(m, sc)
	x.putScratch(sc)
	return out
}

// SearchOptionsSeededMetaInto is SearchOptionsSeededInto reporting
// execution metadata into m; the sharded single-core chain uses it so
// a budget cut on any link marks the whole chained answer partial.
func (x *Index) SearchOptionsSeededMetaInto(dst, seed []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, st *metric.Stats, m *SearchMeta) []knn.Result {
	sc := x.getScratch()
	out := x.searchOptionsWith(sc, dst, seed, q, k, lambda, opts, st)
	fillMeta(m, sc)
	x.putScratch(sc)
	return out
}

// SearchExplainOptionsMetaInto is SearchExplainOptionsInto reporting
// execution metadata into m, so traced/explained queries can carry a
// budget too.
func (x *Index) SearchExplainOptionsMetaInto(dst []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, es *obs.SearchStats, m *SearchMeta) []knn.Result {
	return x.searchExplainSeededMeta(dst, nil, q, k, lambda, opts, es, m)
}

// SearchExplainOptionsSeededMetaInto is the seeded form of
// SearchExplainOptionsMetaInto (see SearchExplainOptionsSeededInto).
func (x *Index) SearchExplainOptionsSeededMetaInto(dst, seed []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, es *obs.SearchStats, m *SearchMeta) []knn.Result {
	return x.searchExplainSeededMeta(dst, seed, q, k, lambda, opts, es, m)
}

func (x *Index) searchExplainSeededMeta(dst, seed []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, es *obs.SearchStats, m *SearchMeta) []knn.Result {
	sc := x.getScratch()
	sc.obs = es
	n := len(dst)
	dst = x.searchOptionsWith(sc, dst, seed, q, k, lambda, opts, &es.Stats)
	fillMeta(m, sc)
	sc.obs = nil
	x.putScratch(sc)
	if len(dst) > n {
		es.KthDistance = dst[len(dst)-1].Dist
	}
	return dst
}
