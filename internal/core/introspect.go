package core

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/metric"
)

// ClusterInfo describes one hybrid cluster for analysis (Fig. 4, Fig. 12
// diagnostics). Radii are normalized distances.
type ClusterInfo struct {
	// Size is the number of member objects.
	Size int
	// SpatialRadius is R^s of the cluster's spatial side.
	SpatialRadius float64
	// SemanticRadius is R^t in the original n-dimensional space.
	SemanticRadius float64
	// SemanticRadiusProj is R^t in the projected m-dimensional space
	// (the CSSIA representation).
	SemanticRadiusProj float64
}

// ClusterStats returns per-hybrid-cluster descriptors.
func (x *Index) ClusterStats() []ClusterInfo {
	out := make([]ClusterInfo, len(x.clusters))
	for i, c := range x.clusters {
		out[i] = ClusterInfo{
			Size:               len(c.members),
			SpatialRadius:      x.sRad[c.s],
			SemanticRadius:     x.tRad[c.t],
			SemanticRadiusProj: x.tRadProj[c.t],
		}
	}
	return out
}

// EnclosureRates returns the fraction of hybrid clusters that enclose q
// under the original-space semantic representation (CSSI's view) and
// under the projected representation (CSSIA's view) — the statistic of
// Fig. 4b. A cluster encloses q when q lies inside both its spatial and
// its semantic ball.
func (x *Index) EnclosureRates(q *dataset.Object) (orig, proj float64) {
	if len(x.clusters) == 0 {
		return 0, 0
	}
	qProj := x.pcaModel.Transform(q.Vec)
	var nOrig, nProj int
	for _, c := range x.clusters {
		dsq := x.space.SpatialXY(q.X, q.Y, x.sCentX[c.s], x.sCentY[c.s])
		if dsq < x.sRad[c.s] {
			if x.space.SemanticVec(q.Vec, x.tCent[c.t]) < x.tRad[c.t] {
				nOrig++
			}
			if x.space.SemanticProjVec(qProj, x.tCentProj[c.t]) < x.tRadProj[c.t] {
				nProj++
			}
		}
	}
	total := float64(len(x.clusters))
	return float64(nOrig) / total, float64(nProj) / total
}

// ForEachLive calls fn for every live (non-deleted) object: the base
// objects in storage order minus deletions and overlay tombstones, then
// the overlay's live inserts in append order.
func (x *Index) ForEachLive(fn func(o *dataset.Object)) {
	tombs := x.deltaTombs()
	for i := range x.objects {
		if x.deleted.get(uint32(i)) {
			continue
		}
		if tombs != nil && tombs.get(uint32(i)) {
			continue
		}
		fn(&x.objects[i])
	}
	x.forEachDeltaLive(fn)
}

// ProjectQuery maps a semantic vector into the index's projected space
// (for analysis such as Fig. 3's projected distance histogram).
func (x *Index) ProjectQuery(v []float32) []float32 { return x.pcaModel.Transform(v) }

// ProjectedDistance returns the normalized projected-space semantic
// distance between a projected query and the stored projection of the
// object at the given dataset position.
func (x *Index) ProjectedDistance(qProj []float32, position int) float64 {
	return x.space.SemanticProjVec(qProj, x.projAt(uint32(position)))
}

// BuildTimings records where index-construction time went (Fig. 15).
type BuildTimings struct {
	// Spatial covers the spatial K-Means (fit + assignment).
	Spatial time.Duration
	// PCA covers fitting the projection and transforming all vectors.
	PCA time.Duration
	// Semantic covers the semantic K-Means on the projections.
	Semantic time.Duration
	// Hybrid covers representation computation, hybrid-cluster formation
	// and array building.
	Hybrid time.Duration
	// Route covers training the learned cluster router (self-query
	// labeling plus the gradient-descent fit).
	Route time.Duration
}

// Total returns the summed construction time.
func (t BuildTimings) Total() time.Duration {
	return t.Spatial + t.PCA + t.Semantic + t.Hybrid + t.Route
}

// BuildTimed is Build with a phase-time breakdown.
func BuildTimed(ds *dataset.Dataset, space *metric.Space, cfg Config) (*Index, BuildTimings, error) {
	var tm BuildTimings
	start := time.Now()
	x, err := buildInstrumented(ds, space, cfg, &tm)
	if err != nil {
		return nil, tm, err
	}
	// Attribute any unmeasured remainder (bookkeeping) to Hybrid.
	if rest := time.Since(start) - tm.Total(); rest > 0 {
		tm.Hybrid += rest
	}
	return x, tm, nil
}
