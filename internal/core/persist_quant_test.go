package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/dataset"
)

// A version-3 file carries the SQ8 arena verbatim: the loaded index
// must hold byte-identical codes and residuals (no retraining), and
// answer quantized queries exactly as the original.
func TestSaveLoadPreservesQuantArena(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{Seed: 85})
	if f.idx.quant == nil {
		t.Fatal("fixture index has no quant arena")
	}
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.quant == nil {
		t.Fatal("loaded index lost its quant arena")
	}
	if !bytes.Equal(loaded.quant.codes, f.idx.quant.codes) {
		t.Fatal("quant codes not restored verbatim")
	}
	for i, r := range f.idx.quant.resid {
		if loaded.quant.resid[i] != r {
			t.Fatalf("residual %d: loaded %v, saved %v", i, loaded.quant.resid[i], r)
		}
	}
	for i := range f.idx.quant.cb.Lo {
		if loaded.quant.cb.Lo[i] != f.idx.quant.cb.Lo[i] || loaded.quant.cb.Step[i] != f.idx.quant.cb.Step[i] {
			t.Fatalf("codebook dim %d not restored verbatim", i)
		}
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 5; qi++ {
		q := f.ds.Objects[(qi*83+3)%f.ds.Len()]
		for _, lambda := range []float64{0.2, 0.5} {
			for _, opts := range []SearchOptions{
				{},
				{Quant: QuantOff},
				{Approx: true, Quant: QuantOnly},
			} {
				a := f.idx.SearchOptionsInto(nil, &q, 10, lambda, opts, nil)
				b := loaded.SearchOptionsInto(nil, &q, 10, lambda, opts, nil)
				sameResults(t, "loaded quant", a, b)
			}
		}
	}
}

// saveAsV2 re-encodes a current save in the version-2 layout — arenas
// but no quant fields — exactly what the pre-quant Save wrote (gob
// omits the zeroed fields from the stream just as it omitted the
// then-nonexistent ones).
func saveAsV2(t *testing.T, x *Index) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var g gobIndex
	if err := gob.NewDecoder(&buf).Decode(&g); err != nil {
		t.Fatal(err)
	}
	g.Version = persistVersionV2
	g.QuantLo, g.QuantStep, g.QuantCodes, g.QuantResid = nil, nil, nil, nil
	var v2 bytes.Buffer
	if err := gob.NewEncoder(&v2).Encode(&g); err != nil {
		t.Fatal(err)
	}
	return &v2
}

// Loading a version-2 file retrains the SQ8 arena transparently, and
// the retrained index answers exact queries identically to the
// original (exactness never depends on the codebook).
func TestLoadV2RetrainsQuant(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 86})
	loaded, _, err := Load(saveAsV2(t, f.idx))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.quant == nil {
		t.Fatal("v2 load did not retrain the quant arena")
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 5; qi++ {
		q := f.ds.Objects[(qi*71+5)%f.ds.Len()]
		for _, lambda := range []float64{0.3, 0.7} {
			a := f.idx.Search(&q, 10, lambda, nil)
			b := loaded.Search(&q, 10, lambda, nil)
			sameResults(t, "v2 exact", a, b)
		}
	}
}

// A v1 file (no arenas at all) also gains a quant arena on load.
func TestLoadV1RetrainsQuant(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 87})
	loaded, _, err := Load(saveAsV1(t, f.idx))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.quant == nil {
		t.Fatal("v1 load did not retrain the quant arena")
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// DisableQuant round-trips: the saved file carries no quant fields and
// the loaded index keeps quantization off.
func TestSaveLoadDisabledQuant(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 88, DisableQuant: true})
	if f.idx.quant != nil {
		t.Fatal("DisableQuant index built a quant arena")
	}
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.quant != nil {
		t.Fatal("DisableQuant not honored across save/load")
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := f.ds.Objects[7]
	sameResults(t, "disabled quant", f.idx.Search(&q, 10, 0.5, nil), loaded.Search(&q, 10, 0.5, nil))
}

// Corrupt quant arenas are rejected, not silently mis-sliced.
func TestLoadRejectsCorruptQuantArena(t *testing.T) {
	f := build(t, dataset.TwitterLike, 200, Config{Seed: 89})
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var g gobIndex
	if err := gob.NewDecoder(&buf).Decode(&g); err != nil {
		t.Fatal(err)
	}
	g.QuantResid = g.QuantResid[:len(g.QuantResid)-1]
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&g); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(&out); err == nil {
		t.Fatal("expected error for truncated quant residual arena")
	}
}
