package core

import (
	"bytes"
	"encoding/gob"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// TestRouterTraining pins when Build trains the router: a normally
// sized index carries a model, a tiny one (below the self-query
// sample floor) does not — and Route requests on it silently fall back
// to the unrouted algorithms.
func TestRouterTraining(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1200, Config{Seed: 100})
	if f.idx.Router() == nil {
		t.Fatal("1200-object index should train a router")
	}
	tiny := build(t, dataset.TwitterLike, 40, Config{Seed: 100})
	if tiny.idx.Router() != nil {
		t.Fatal("40-object index should skip router training")
	}
	q := tiny.ds.Objects[0]
	want := tiny.idx.Search(&q, 5, 0.5, nil)
	got := tiny.idx.SearchOptionsInto(nil, &q, 5, 0.5, SearchOptions{Route: true}, nil)
	requireIdentical(t, "tiny fallback", 0, want, got)
}

// TestRoutedExactVsEager is the tentpole's bit-identity property test:
// the routed exact search — router-predicted clusters scanned first,
// admissible bound test deciding every skip — must return results
// bit-identical to the eager reference, while actually routing clusters.
func TestRoutedExactVsEager(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1200, Config{Seed: 101})
	if f.idx.Router() == nil {
		t.Fatal("fixture has no trained router")
	}
	if !f.idx.lazyOrderable() {
		t.Fatal("fixture should take the lazy weak-bound path")
	}
	rng := rand.New(rand.NewPCG(101, 1))
	var st metric.Stats
	for trial := 0; trial < 40; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		k := 1 + rng.IntN(25)
		lambda := rng.Float64()
		want := searchEager(f.idx, nil, &q, k, lambda)
		got := f.idx.SearchOptionsInto(nil, &q, k, lambda, SearchOptions{Route: true}, &st)
		requireIdentical(t, "routed exact", trial, want, got)
	}
	if st.ClustersRouted == 0 {
		t.Fatal("no clusters were routed across 40 queries")
	}
}

// TestRoutedExactEagerBoundPath repeats the bit-identity check on the
// non-lazy ordering path (angular semantics disable the weak projected
// bound, so the router features use true semantic centroid distances).
func TestRoutedExactEagerBoundPath(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 900, Dim: 32, Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpaceWithSemantic(ds, metric.AngularSemantic)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, sp, Config{Seed: 102})
	if err != nil {
		t.Fatal(err)
	}
	if idx.lazyOrderable() {
		t.Fatal("angular fixture should NOT take the lazy weak-bound path")
	}
	if idx.Router() == nil {
		t.Fatal("fixture has no trained router")
	}
	rng := rand.New(rand.NewPCG(102, 1))
	for trial := 0; trial < 25; trial++ {
		q := ds.Objects[rng.IntN(ds.Len())]
		k := 1 + rng.IntN(15)
		lambda := rng.Float64()
		want := searchEager(idx, nil, &q, k, lambda)
		got := idx.SearchOptionsInto(nil, &q, k, lambda, SearchOptions{Route: true}, nil)
		requireIdentical(t, "routed angular", trial, want, got)
	}
}

// TestRoutedExactAfterDeletes holds the bit-identity through deletions
// (shrunken clusters, stale radii, a router trained on the pre-delete
// distribution).
func TestRoutedExactAfterDeletes(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1000, Config{Seed: 103})
	rng := rand.New(rand.NewPCG(103, 1))
	for i := range f.ds.Objects {
		if rng.Float64() < 0.25 {
			if err := f.idx.Delete(f.ds.Objects[i].ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	for trial := 0; trial < 30; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		k := 1 + rng.IntN(20)
		lambda := rng.Float64()
		want := searchEager(f.idx, nil, &q, k, lambda)
		got := f.idx.SearchOptionsInto(nil, &q, k, lambda, SearchOptions{Route: true}, nil)
		requireIdentical(t, "routed exact+deletes", trial, want, got)
	}
}

// routedRecall runs exact and routed-approximate searches over nq
// sampled queries and returns the mean recall@k plus the summed work
// counters of the routed runs.
func routedRecall(f *fixture, nq, k int, target float64, seed uint64) (float64, metric.Stats) {
	rng := rand.New(rand.NewPCG(seed, 1))
	var st metric.Stats
	sum := 0.0
	for i := 0; i < nq; i++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		lambda := rng.Float64()
		exact := f.idx.Search(&q, k, lambda, nil)
		approx := f.idx.SearchOptionsInto(nil, &q, k, lambda,
			SearchOptions{Approx: true, Route: true, RouteTarget: target}, &st)
		sum += 1 - knn.ErrorRate(exact, approx)
	}
	return sum / float64(nq), st
}

// TestRoutedApproxRecallAndKnob checks the routed approximate mode end
// to end: high recall at the default probability-mass target, and the
// RouteTarget knob trading recall for work monotonically (a lower
// target must not examine more clusters).
func TestRoutedApproxRecallAndKnob(t *testing.T) {
	f := build(t, dataset.TwitterLike, 2000, Config{Seed: 104})
	if f.idx.Router() == nil {
		t.Fatal("fixture has no trained router")
	}
	recall, stDefault := routedRecall(f, 30, 10, 0, 104)
	if recall < 0.9 {
		t.Fatalf("mean recall@10 at the default target = %.3f, want >= 0.9", recall)
	}
	if stDefault.ClustersRouted == 0 {
		t.Fatal("routed approximate mode routed no clusters")
	}
	_, stLow := routedRecall(f, 30, 10, 0.3, 104)
	if stLow.ClustersExamined > stDefault.ClustersExamined {
		t.Fatalf("target 0.3 examined %d clusters, default target examined %d — lower target must not examine more",
			stLow.ClustersExamined, stDefault.ClustersExamined)
	}
	full, _ := routedRecall(f, 30, 10, 1, 104)
	if full < recall {
		t.Fatalf("target 1 recall %.3f below default-target recall %.3f", full, recall)
	}
}

// TestRouterPersistRoundTrip pins persist v4: the trained model
// round-trips bit-identically and routed searches agree before and
// after the round trip.
func TestRouterPersistRoundTrip(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1200, Config{Seed: 105})
	if f.idx.Router() == nil {
		t.Fatal("fixture has no trained router")
	}
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Router(), f.idx.Router()) {
		t.Fatal("loaded router differs from the saved one")
	}
	rng := rand.New(rand.NewPCG(105, 1))
	for trial := 0; trial < 10; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		k := 1 + rng.IntN(15)
		lambda := rng.Float64()
		want := f.idx.SearchOptionsInto(nil, &q, k, lambda, SearchOptions{Route: true}, nil)
		got := loaded.SearchOptionsInto(nil, &q, k, lambda, SearchOptions{Route: true}, nil)
		requireIdentical(t, "persist round trip", trial, want, got)
	}
}

// TestRouterPersistPreV4Retrains pins the back-compat contract: a file
// saved before version 4 carries no routing model, and Load retrains
// one from the restored live set — deterministically, so it matches the
// model a fresh Build over the same data produces.
func TestRouterPersistPreV4Retrains(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1200, Config{Seed: 106})
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var g gobIndex
	if err := gob.NewDecoder(&buf).Decode(&g); err != nil {
		t.Fatal(err)
	}
	// Rewrite the file as a v3 ancestor: no route fields at all.
	g.Version = persistVersionV3
	g.RouteHasModel = false
	g.RouteBias, g.RouteW, g.RouteMean, g.RouteScale = 0, nil, nil, nil
	var old bytes.Buffer
	if err := gob.NewEncoder(&old).Encode(&g); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(&old)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Router() == nil {
		t.Fatal("loading a pre-v4 file should retrain the router")
	}
	if !reflect.DeepEqual(loaded.Router(), f.idx.Router()) {
		t.Fatal("retrained router differs from the build-time model over identical data")
	}
}
