package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/scan"
)

// fixture bundles a dataset, its metric space, a built index and a
// scanner for differential testing.
type fixture struct {
	ds  *dataset.Dataset
	sp  *metric.Space
	idx *Index
	sc  *scan.Scanner
}

func build(t testing.TB, kind dataset.Kind, size int, cfg Config) *fixture {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{Kind: kind, Size: size, Dim: 32, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpace(ds)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ds: ds, sp: sp, idx: idx, sc: scan.New(ds, sp)}
}

func sameResults(t *testing.T, ctx string, want, got []knn.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		// Compare distances (ties make IDs ambiguous between equally
		// correct answers).
		if got[i].Dist != want[i].Dist {
			t.Fatalf("%s: result %d dist %v, want %v", ctx, i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	sp := &metric.Space{DsMax: 1, DtMax: 1}
	if _, err := Build(&dataset.Dataset{}, sp, Config{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestBuildRejectsDuplicateIDs(t *testing.T) {
	ds, _ := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 10, Dim: 8, Seed: 1})
	ds.Objects[3].ID = ds.Objects[7].ID
	sp, _ := metric.NewSpace(ds)
	if _, err := Build(ds, sp, Config{}); err == nil {
		t.Fatal("expected error for duplicate IDs")
	}
}

func TestBuildInvariants(t *testing.T) {
	for _, kind := range []dataset.Kind{dataset.TwitterLike, dataset.YelpLike} {
		f := build(t, kind, 800, Config{Seed: 3})
		if err := f.idx.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if f.idx.NumClusters() == 0 {
			t.Fatalf("%v: no hybrid clusters", kind)
		}
		if f.idx.Len() != 800 {
			t.Fatalf("%v: Len = %d", kind, f.idx.Len())
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{})
	cfg := f.idx.Config()
	if cfg.M != 2 || cfg.F != 0.3 || cfg.Ks < 4 || cfg.Kt < 4 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// The central correctness claim (Lemma 4.7): CSSI returns exactly the
// linear-scan result for any λ and k.
func TestCSSIExactness(t *testing.T) {
	for _, kind := range []dataset.Kind{dataset.TwitterLike, dataset.YelpLike} {
		f := build(t, kind, 1200, Config{Seed: 5})
		for _, lambda := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
			for _, k := range []int{1, 5, 50} {
				for qi := 0; qi < 5; qi++ {
					q := f.ds.Objects[(qi*211+7)%f.ds.Len()]
					want := f.sc.Search(&q, k, lambda, nil)
					got := f.idx.Search(&q, k, lambda, nil)
					sameResults(t, kindLambdaK(kind, lambda, k), want, got)
				}
			}
		}
	}
}

func kindLambdaK(kind dataset.Kind, lambda float64, k int) string {
	return kind.String() + "/λ=" + fmtF(lambda) + "/k=" + itoa(k)
}

func fmtF(f float64) string { return string(rune('0'+int(f*10))) + "‰" }
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// CSSIA must return the exact result for λ=1 (pure spatial k-NN: the
// projected semantic bounds are unused; §7.2 reports zero error there).
func TestCSSIAExactForSpatialOnly(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1000, Config{Seed: 6})
	for qi := 0; qi < 10; qi++ {
		q := f.ds.Objects[(qi*97+3)%f.ds.Len()]
		want := f.sc.Search(&q, 10, 1, nil)
		got := f.idx.SearchApprox(&q, 10, 1, nil)
		sameResults(t, "λ=1", want, got)
	}
}

// CSSIA error stays small at the defaults (paper: <1% typically, ≤4% for
// small k).
func TestCSSIAErrorSmall(t *testing.T) {
	f := build(t, dataset.TwitterLike, 2000, Config{Seed: 7})
	var total float64
	const queries = 40
	for qi := 0; qi < queries; qi++ {
		q := f.ds.Objects[(qi*131+17)%f.ds.Len()]
		exact := f.sc.Search(&q, 50, 0.5, nil)
		approx := f.idx.SearchApprox(&q, 50, 0.5, nil)
		total += knn.ErrorRate(exact, approx)
	}
	if avg := total / queries; avg > 0.05 {
		t.Fatalf("average CSSIA error %.4f > 5%%", avg)
	}
}

// The pruning accounting identity of Fig. 12: visited + inter-pruned +
// intra-pruned = |O| for both algorithms.
func TestPruningAccountingIdentity(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1500, Config{Seed: 8})
	q := f.ds.Objects[33]
	for _, approx := range []bool{false, true} {
		var st metric.Stats
		if approx {
			f.idx.SearchApprox(&q, 10, 0.5, &st)
		} else {
			f.idx.Search(&q, 10, 0.5, &st)
		}
		sum := st.VisitedObjects + st.InterPruned + st.IntraPruned
		if sum != int64(f.ds.Len()) {
			t.Fatalf("approx=%v: visited %d + inter %d + intra %d = %d, want %d",
				approx, st.VisitedObjects, st.InterPruned, st.IntraPruned, sum, f.ds.Len())
		}
	}
}

// CSSI must actually prune: on clustered data with a full heap it should
// not visit everything.
func TestCSSIPrunes(t *testing.T) {
	f := build(t, dataset.YelpLike, 4000, Config{Seed: 9})
	var st metric.Stats
	f.idx.Search(&f.ds.Objects[5], 10, 0.5, &st)
	if st.VisitedObjects >= int64(f.ds.Len()) {
		t.Fatalf("CSSI visited all %d objects", st.VisitedObjects)
	}
	if st.InterPruned+st.IntraPruned == 0 {
		t.Fatal("no pruning recorded")
	}
}

// CSSIA prunes at least as aggressively as CSSI on average (the point of
// §5: projected representations overlap less).
func TestCSSIAVisitsFewerOnAverage(t *testing.T) {
	f := build(t, dataset.TwitterLike, 3000, Config{Seed: 10})
	var visCSSI, visCSSIA int64
	for qi := 0; qi < 15; qi++ {
		q := f.ds.Objects[(qi*173+29)%f.ds.Len()]
		var a, b metric.Stats
		f.idx.Search(&q, 10, 0.5, &a)
		f.idx.SearchApprox(&q, 10, 0.5, &b)
		visCSSI += a.VisitedObjects
		visCSSIA += b.VisitedObjects
	}
	if visCSSIA > visCSSI {
		t.Fatalf("CSSIA visited more than CSSI: %d vs %d", visCSSIA, visCSSI)
	}
}

func TestSearchSmallDataset(t *testing.T) {
	f := build(t, dataset.TwitterLike, 5, Config{Seed: 11})
	got := f.idx.Search(&f.ds.Objects[0], 10, 0.5, nil)
	if len(got) != 5 {
		t.Fatalf("got %d results, want 5", len(got))
	}
	got = f.idx.SearchApprox(&f.ds.Objects[0], 10, 0.5, nil)
	if len(got) != 5 {
		t.Fatalf("approx got %d results, want 5", len(got))
	}
}

func TestQueryNotInDataset(t *testing.T) {
	f := build(t, dataset.TwitterLike, 600, Config{Seed: 12})
	// Synthesize a fresh query via the dataset's embedding model.
	qv, ok := f.ds.Model.EncodeDocument(f.ds.Objects[0].Text + " " + f.ds.Objects[1].Text)
	if !ok {
		t.Fatal("could not encode query text")
	}
	q := dataset.Object{ID: 999999, X: 0.42, Y: 0.58, Vec: qv}
	want := f.sc.Search(&q, 10, 0.5, nil)
	got := f.idx.Search(&q, 10, 0.5, nil)
	sameResults(t, "external query", want, got)
}

func TestObjectLookup(t *testing.T) {
	f := build(t, dataset.TwitterLike, 50, Config{Seed: 13})
	o, ok := f.idx.Object(f.ds.Objects[7].ID)
	if !ok || o.ID != f.ds.Objects[7].ID {
		t.Fatal("Object lookup failed")
	}
	if _, ok := f.idx.Object(123456); ok {
		t.Fatal("lookup of unknown ID succeeded")
	}
}

func TestExplicitClusterCounts(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{Ks: 3, Kt: 5, Seed: 14})
	cfg := f.idx.Config()
	if cfg.Ks != 3 || cfg.Kt != 5 {
		t.Fatalf("explicit counts not honored: %+v", cfg)
	}
	if f.idx.NumClusters() > 15 {
		t.Fatalf("more hybrid clusters (%d) than Ks·Kt=15", f.idx.NumClusters())
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Still exact.
	q := f.ds.Objects[3]
	sameResults(t, "小K", f.sc.Search(&q, 10, 0.5, nil), f.idx.Search(&q, 10, 0.5, nil))
}

func TestVaryingMStillExact(t *testing.T) {
	for _, m := range []int{1, 3, 8} {
		f := build(t, dataset.TwitterLike, 700, Config{M: m, Seed: 15})
		q := f.ds.Objects[11]
		sameResults(t, "m", f.sc.Search(&q, 10, 0.5, nil), f.idx.Search(&q, 10, 0.5, nil))
		if err := f.idx.CheckInvariants(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
	}
}

// The paper's bounds hold for arbitrary metric spaces (§4.2): CSSI must
// stay exact when the semantic metric is angular instead of Euclidean,
// across every baseline-free configuration.
func TestCSSIExactWithAngularMetric(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 900, Dim: 32, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpaceWithSemantic(ds, metric.AngularSemantic)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, sp, Config{Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sc := scan.New(ds, sp)
	for _, lambda := range []float64{0, 0.3, 0.7, 1} {
		for qi := 0; qi < 5; qi++ {
			q := ds.Objects[(qi*191+23)%ds.Len()]
			want := sc.Search(&q, 10, lambda, nil)
			got := idx.Search(&q, 10, lambda, nil)
			sameResults(t, "angular", want, got)
		}
	}
	// CSSIA remains usable (approximate) under the angular metric.
	q := ds.Objects[77]
	exact := idx.Search(&q, 20, 0.5, nil)
	approx := idx.SearchApprox(&q, 20, 0.5, nil)
	if e := knn.ErrorRate(exact, approx); e > 0.3 {
		t.Fatalf("angular CSSIA error %v suspiciously high", e)
	}
}
