package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/scan"
)

// liveScanner builds a scanner over the index's current live objects so
// differential checks stay valid after maintenance.
func liveScanner(idx *Index) (*scan.Scanner, *dataset.Dataset) {
	live := make([]dataset.Object, 0, idx.Len())
	for i := range idx.objects {
		if !idx.deleted.get(uint32(i)) {
			live = append(live, idx.objects[i])
		}
	}
	ds := &dataset.Dataset{Objects: live, Dim: idx.pcaModel.N()}
	return scan.New(ds, idx.space), ds
}

func TestInsertBasics(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 20})
	extra, _ := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 50, Dim: 32, Seed: 99})
	for i := range extra.Objects {
		o := extra.Objects[i]
		o.ID += 10000 // avoid collisions
		if err := f.idx.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if f.idx.Len() != 450 {
		t.Fatalf("Len = %d, want 450", f.idx.Len())
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.idx.UpdatesSinceBuild != 50 {
		t.Fatalf("UpdatesSinceBuild = %d", f.idx.UpdatesSinceBuild)
	}
}

func TestInsertRejectsDuplicateAndBadDim(t *testing.T) {
	f := build(t, dataset.TwitterLike, 100, Config{Seed: 21})
	if err := f.idx.Insert(f.ds.Objects[0]); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	bad := dataset.Object{ID: 5000, Vec: []float32{1, 2}}
	if err := f.idx.Insert(bad); err == nil {
		t.Fatal("wrong-dimension insert should fail")
	}
}

func TestCSSIExactAfterInserts(t *testing.T) {
	f := build(t, dataset.TwitterLike, 600, Config{Seed: 22})
	extra, _ := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 300, Dim: 32, Seed: 123})
	for i := range extra.Objects {
		o := extra.Objects[i]
		o.ID += 10000
		if err := f.idx.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	sc, liveDs := liveScanner(f.idx)
	for qi := 0; qi < 8; qi++ {
		q := liveDs.Objects[(qi*157+1)%liveDs.Len()]
		want := sc.Search(&q, 10, 0.5, nil)
		got := f.idx.Search(&q, 10, 0.5, nil)
		sameResults(t, "after inserts", want, got)
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteBasics(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 23})
	if err := f.idx.Delete(f.ds.Objects[10].ID); err != nil {
		t.Fatal(err)
	}
	if f.idx.Len() != 299 {
		t.Fatalf("Len = %d", f.idx.Len())
	}
	if err := f.idx.Delete(f.ds.Objects[10].ID); err == nil {
		t.Fatal("double delete should fail")
	}
	if err := f.idx.Delete(999999); err == nil {
		t.Fatal("delete of unknown ID should fail")
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The deleted object must never appear in results.
	got := f.idx.Search(&f.ds.Objects[10], 5, 0.5, nil)
	for _, r := range got {
		if r.ID == f.ds.Objects[10].ID {
			t.Fatal("deleted object returned by Search")
		}
	}
}

func TestCSSIExactAfterDeletes(t *testing.T) {
	f := build(t, dataset.TwitterLike, 700, Config{Seed: 24})
	rng := rand.New(rand.NewPCG(1, 1))
	deleted := make(map[uint32]bool)
	for len(deleted) < 200 {
		id := f.ds.Objects[rng.IntN(f.ds.Len())].ID
		if deleted[id] {
			continue
		}
		if err := f.idx.Delete(id); err != nil {
			t.Fatal(err)
		}
		deleted[id] = true
	}
	sc, liveDs := liveScanner(f.idx)
	for qi := 0; qi < 8; qi++ {
		q := liveDs.Objects[(qi*101+9)%liveDs.Len()]
		want := sc.Search(&q, 10, 0.4, nil)
		got := f.idx.Search(&q, 10, 0.4, nil)
		sameResults(t, "after deletes", want, got)
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMovesObject(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 25})
	o := f.ds.Objects[42]
	o.X, o.Y = 1-o.X, 1-o.Y // jump across the space
	if err := f.idx.Update(o); err != nil {
		t.Fatal(err)
	}
	if f.idx.Len() != 300 {
		t.Fatalf("Len = %d after update", f.idx.Len())
	}
	got, ok := f.idx.Object(o.ID)
	if !ok || got.X != o.X {
		t.Fatal("update did not take effect")
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Exactness after the update.
	sc, _ := liveScanner(f.idx)
	want := sc.Search(&o, 5, 0.5, nil)
	res := f.idx.Search(&o, 5, 0.5, nil)
	sameResults(t, "after update", want, res)
}

func TestUpdateUnknownIDFails(t *testing.T) {
	f := build(t, dataset.TwitterLike, 50, Config{Seed: 26})
	o := f.ds.Objects[0]
	o.ID = 777777
	if err := f.idx.Update(o); err == nil {
		t.Fatal("update of unknown ID should fail")
	}
}

// Randomized maintenance stream: interleave inserts, deletes and updates,
// then verify invariants and exactness. This is the §6.2 robustness claim.
func TestRandomMaintenanceStream(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{Seed: 27})
	pool, _ := dataset.Generate(dataset.GenConfig{Kind: dataset.YelpLike, Size: 400, Dim: 32, Seed: 321})
	rng := rand.New(rand.NewPCG(9, 9))
	liveIDs := make([]uint32, 0, 900)
	for i := range f.ds.Objects {
		liveIDs = append(liveIDs, f.ds.Objects[i].ID)
	}
	nextPool := 0
	for step := 0; step < 600; step++ {
		switch op := rng.IntN(3); {
		case op == 0 && nextPool < len(pool.Objects): // insert
			o := pool.Objects[nextPool]
			o.ID += 50000
			nextPool++
			if err := f.idx.Insert(o); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			liveIDs = append(liveIDs, o.ID)
		case op == 1 && len(liveIDs) > 50: // delete
			i := rng.IntN(len(liveIDs))
			if err := f.idx.Delete(liveIDs[i]); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			liveIDs[i] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		default: // update (perturb location)
			i := rng.IntN(len(liveIDs))
			o, ok := f.idx.Object(liveIDs[i])
			if !ok {
				t.Fatalf("step %d: live ID %d not found", step, liveIDs[i])
			}
			upd := *o
			upd.X = clamp01(upd.X + rng.NormFloat64()*0.05)
			upd.Y = clamp01(upd.Y + rng.NormFloat64()*0.05)
			if err := f.idx.Update(upd); err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
		}
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sc, liveDs := liveScanner(f.idx)
	if liveDs.Len() != f.idx.Len() {
		t.Fatalf("live mismatch: %d vs %d", liveDs.Len(), f.idx.Len())
	}
	for qi := 0; qi < 6; qi++ {
		q := liveDs.Objects[(qi*67+13)%liveDs.Len()]
		want := sc.Search(&q, 10, 0.5, nil)
		got := f.idx.Search(&q, 10, 0.5, nil)
		sameResults(t, "after stream", want, got)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestRebuild(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 28})
	extra, _ := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 200, Dim: 32, Seed: 55})
	for i := range extra.Objects {
		o := extra.Objects[i]
		o.ID += 20000
		if err := f.idx.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := f.idx.Delete(f.ds.Objects[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.idx.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if f.idx.UpdatesSinceBuild != 0 {
		t.Fatalf("UpdatesSinceBuild = %d after rebuild", f.idx.UpdatesSinceBuild)
	}
	if f.idx.Len() != 500 {
		t.Fatalf("Len = %d after rebuild, want 500", f.idx.Len())
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sc, liveDs := liveScanner(f.idx)
	q := liveDs.Objects[3]
	sameResults(t, "after rebuild", sc.Search(&q, 10, 0.5, nil), f.idx.Search(&q, 10, 0.5, nil))
}

// Radius bookkeeping: deleting the farthest member must shrink the
// radius (conservatively verified through CheckInvariants plus a spot
// check that some radius decreased).
func TestDeleteShrinksRadius(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Ks: 4, Kt: 4, Seed: 29})
	// Find the globally farthest member of spatial cluster 0 and delete it.
	s := 0
	var farIdx uint32
	far := -1.0
	for _, mi := range f.idx.sMembers[s] {
		if d := f.idx.spatialToCent(mi, s); d > far {
			far, farIdx = d, mi
		}
	}
	before := f.idx.sRad[s]
	if err := f.idx.Delete(f.idx.objects[farIdx].ID); err != nil {
		t.Fatal(err)
	}
	if f.idx.sRad[s] > before {
		t.Fatalf("radius grew on delete: %v -> %v", before, f.idx.sRad[s])
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// CSSIA stays reasonable after maintenance (Table 5's claim: error and
// cost roughly unchanged after updates).
func TestCSSIAAfterUpdates(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1000, Config{Seed: 30})
	rng := rand.New(rand.NewPCG(4, 2))
	for step := 0; step < 300; step++ {
		i := rng.IntN(f.ds.Len())
		o, ok := f.idx.Object(f.ds.Objects[i].ID)
		if !ok {
			continue
		}
		upd := *o
		upd.X = clamp01(upd.X + rng.NormFloat64()*0.02)
		if err := f.idx.Update(upd); err != nil {
			t.Fatal(err)
		}
	}
	sc, liveDs := liveScanner(f.idx)
	var totalErr float64
	const queries = 20
	for qi := 0; qi < queries; qi++ {
		q := liveDs.Objects[(qi*71+3)%liveDs.Len()]
		exact := sc.Search(&q, 50, 0.5, nil)
		approx := f.idx.SearchApprox(&q, 50, 0.5, nil)
		var missing int
		got := make(map[uint32]bool)
		for _, r := range approx {
			got[r.ID] = true
		}
		for _, r := range exact {
			if !got[r.ID] {
				missing++
			}
		}
		totalErr += float64(missing) / float64(len(exact))
	}
	if avg := totalErr / queries; avg > 0.08 {
		t.Fatalf("CSSIA error after updates %.4f too high", avg)
	}
	var st metric.Stats
	f.idx.SearchApprox(&liveDs.Objects[0], 10, 0.5, &st)
	if st.VisitedObjects+st.InterPruned+st.IntraPruned != int64(f.idx.Len()) {
		t.Fatal("pruning identity broken after updates")
	}
}

// DriftRatio: in-distribution inserts rarely expand radii; alien inserts
// (shifted far outside the built distribution) almost always do.
func TestDriftRatio(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{Seed: 33})
	if f.idx.DriftRatio() != 0 {
		t.Fatal("DriftRatio should be 0 before inserts")
	}
	inDist, _ := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 200, Dim: 32, Seed: 51})
	for i := range inDist.Objects {
		o := inDist.Objects[i]
		o.ID += 30000
		if err := f.idx.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	inRatio := f.idx.DriftRatio()

	g := build(t, dataset.TwitterLike, 500, Config{Seed: 33})
	for i := range inDist.Objects {
		o := inDist.Objects[i]
		o.ID += 60000
		// Push the semantic vectors far outside the built distribution.
		o.Vec = make([]float32, len(o.Vec))
		for j := range o.Vec {
			o.Vec[j] = 50
		}
		if err := g.idx.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	alienRatio := g.idx.DriftRatio()
	if alienRatio <= inRatio {
		t.Fatalf("alien drift %v should exceed in-distribution drift %v", alienRatio, inRatio)
	}
	if alienRatio < 0.9 {
		t.Fatalf("alien inserts should nearly always expand radii, got %v", alienRatio)
	}
	// Rebuild resets the signal.
	if err := g.idx.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if g.idx.DriftRatio() != 0 {
		t.Fatal("DriftRatio should reset after rebuild")
	}
}
