package core

import (
	"fmt"
	"maps"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// Write overlay (delta) over an immutable base snapshot.
//
// CloneForWrite pays O(n) per clone — the deleted bitmap and the ID map
// are copied eagerly even when the write batch touches one object. The
// overlay replaces that with an O(|delta|) clone: the base structures
// (objects, arenas, clusters, radii, deleted, idToIdx) are shared
// byte-for-byte and NEVER written; every mutation lands in a small
// mutable delta instead.
//
//   - An insert appends the object to the delta's append log, with its
//     vector and projection copied into delta-private arenas, and joins
//     a mini "group" keyed by its nearest (spatial, semantic) base
//     centroid pair.
//   - A delete of a base object sets a tombstone bit at its storage
//     position; a delete of an overlay object marks its log slot dead.
//   - An update is a delete followed by an insert (both dispatch here).
//
// Search runs base + delta: the base scan skips tombstoned positions,
// and the overlay's live inserts are chained onto the same k-NN heap
// (scanDelta) before the final AppendSorted. Exactness: knn.Heap's
// final contents are a pure function of the offered candidate set (ties
// break by ascending ID), the tombstone skip removes exactly the
// deleted candidates, and scanDelta offers every live overlay object
// not provably outside the k-th bound — so exact results are
// bit-identical to a full rebuild over the same live set.
//
// Compact folds the overlay into a fresh flat base by replaying the
// tombstones and then the live inserts through the eager COW path,
// bounding delta size (and hence the extra per-query scan) by the
// compaction threshold.
type overlayDelta struct {
	dim, m int // arena strides, copied from the base index

	// Append log of overlay inserts. objs[i].Vec views vecs; projs holds
	// the PCA projections at stride m. dead marks log slots superseded by
	// a later delete/update; idToPos maps live overlay IDs to log slots.
	objs      []dataset.Object
	vecs      []float32
	projs     []float32
	dead      bitset
	liveCount int
	idToPos   map[uint32]uint32

	// Tombstones over BASE storage positions (parallel to the base
	// deleted bitmap, which stays shared and untouched).
	tombs  bitset
	nTombs int

	// ops counts mutations absorbed since the base was built/compacted —
	// the compaction trigger.
	ops int

	// Overlay inserts grouped by their nearest (spatial, semantic) base
	// centroid pair, with the group's covering radii. scanDelta prunes
	// whole groups with the same Lemma 4.4 bound the base clusters use.
	groups   []overlayGroup
	groupIdx map[[2]int]int32
}

// overlayGroup is a mini cluster of overlay inserts sharing the nearest
// base centroid pair. t == -1 marks inserts with no valid semantic
// centroid (possible only when every semantic cluster was invalid at
// build time); such a group gets no semantic pruning term.
type overlayGroup struct {
	s, t         int
	maxDs, maxDt float64
	members      []uint32 // log positions
}

func newOverlayDelta(x *Index) *overlayDelta {
	return &overlayDelta{
		dim:      x.dim,
		m:        x.m,
		idToPos:  make(map[uint32]uint32),
		tombs:    newBitset(len(x.objects)),
		groupIdx: make(map[[2]int]int32),
	}
}

// clone deep-copies the overlay in O(|delta|): everything a mutation
// may write is private to the copy, so sibling clones of one snapshot
// can never observe each other.
func (d *overlayDelta) clone() *overlayDelta {
	nd := &overlayDelta{
		dim:       d.dim,
		m:         d.m,
		objs:      append([]dataset.Object(nil), d.objs...),
		vecs:      append([]float32(nil), d.vecs...),
		projs:     append([]float32(nil), d.projs...),
		dead:      d.dead.clone(),
		liveCount: d.liveCount,
		idToPos:   maps.Clone(d.idToPos),
		tombs:     d.tombs.clone(),
		nTombs:    d.nTombs,
		ops:       d.ops,
		groups:    append([]overlayGroup(nil), d.groups...),
		groupIdx:  maps.Clone(d.groupIdx),
	}
	// The copied log entries' Vec headers and the copied groups' member
	// slices still reference the parent's backing; repoint the former at
	// the private arena and deep-copy the latter.
	for i := range nd.objs {
		nd.objs[i].Vec = nd.vecRow(uint32(i))
	}
	for i := range nd.groups {
		nd.groups[i].members = append([]uint32(nil), nd.groups[i].members...)
	}
	return nd
}

// vecRow and projRow return the delta-arena rows of log position pos.
func (d *overlayDelta) vecRow(pos uint32) []float32 {
	n := d.dim
	return d.vecs[int(pos)*n : (int(pos)+1)*n : (int(pos)+1)*n]
}

func (d *overlayDelta) projRow(pos uint32) []float32 {
	m := d.m
	return d.projs[int(pos)*m : (int(pos)+1)*m : (int(pos)+1)*m]
}

// CloneWithDelta returns a write-isolated copy whose mutations land in
// the overlay: the clone cost is O(|delta|) — deep-copying the current
// overlay — instead of CloneForWrite's O(n) bitmap and ID-map copies.
// The base structures are shared with x and never written; x must be
// treated as immutable for as long as either copy is in use (the same
// contract CloneForWrite's shared arenas already impose).
func (x *Index) CloneWithDelta() *Index {
	nx := new(Index)
	*nx = *x
	// Overlay mutations never touch the base, so the COW machinery is
	// inert on this clone; drop any state inherited from x's own cloning.
	nx.cow = nil
	if x.delta != nil {
		nx.delta = x.delta.clone()
	} else {
		nx.delta = newOverlayDelta(x)
	}
	return nx
}

// DeltaOps returns the number of write operations the overlay has
// absorbed since the base was built or last compacted (0 on flat
// indexes) — the quantity compaction thresholds compare against.
func (x *Index) DeltaOps() int {
	if x.delta == nil {
		return 0
	}
	return x.delta.ops
}

// DeltaLive returns the number of live overlay inserts (0 on flat
// indexes).
func (x *Index) DeltaLive() int {
	if x.delta == nil {
		return 0
	}
	return x.delta.liveCount
}

// deltaTombs returns the overlay's tombstone bitmap when it has any set
// bits, else nil — scan loops hoist this so the per-object check
// vanishes on tombstone-free snapshots.
func (x *Index) deltaTombs() bitset {
	if x.delta != nil && x.delta.nTombs > 0 {
		return x.delta.tombs
	}
	return nil
}

// deltaInsert is Insert's overlay path: the object joins the append log
// and its (spatial, semantic) group; no base structure is written.
func (x *Index) deltaInsert(o dataset.Object) error {
	d := x.delta
	if _, ok := d.idToPos[o.ID]; ok {
		return fmt.Errorf("core: object ID %d already present", o.ID)
	}
	if prev, ok := x.idToIdx[o.ID]; ok && !x.deleted.get(prev) && !d.tombs.get(prev) {
		return fmt.Errorf("core: object ID %d already present", o.ID)
	}
	if len(o.Vec) != x.pcaModel.N() {
		return fmt.Errorf("core: vector dim %d, index expects %d", len(o.Vec), x.pcaModel.N())
	}
	pos := uint32(len(d.objs))
	d.vecs = append(d.vecs, o.Vec...)
	o.Vec = d.vecRow(pos)
	d.projs = append(d.projs, make([]float32, d.m)...)
	x.pcaModel.TransformInto(d.projRow(pos), o.Vec)
	d.objs = append(d.objs, o)
	d.dead = d.dead.grown(len(d.objs))
	d.idToPos[o.ID] = pos

	// Nearest base centroids — the same assignment rule as the eager
	// Insert, so compaction replay lands the object in the same cluster.
	s := 0
	bestS := x.space.SpatialXY(o.X, o.Y, x.sCentX[0], x.sCentY[0])
	for c := 1; c < len(x.sCentX); c++ {
		if ds := x.space.SpatialXY(o.X, o.Y, x.sCentX[c], x.sCentY[c]); ds < bestS {
			s, bestS = c, ds
		}
	}
	proj := d.projRow(pos)
	t, bestT := -1, 0.0
	for c := 0; c < len(x.tCentProj); c++ {
		if !x.tValid[c] {
			continue
		}
		if dp := x.space.SemanticProjVec(proj, x.tCentProj[c]); t < 0 || dp < bestT {
			t, bestT = c, dp
		}
	}

	// Group membership and covering radii (original-space semantic
	// distance, matching the bound scanDelta applies).
	key := [2]int{s, t}
	gi, ok := d.groupIdx[key]
	if !ok {
		gi = int32(len(d.groups))
		d.groups = append(d.groups, overlayGroup{s: s, t: t})
		d.groupIdx[key] = gi
	}
	g := &d.groups[gi]
	if bestS > g.maxDs {
		g.maxDs = bestS
	}
	if t >= 0 {
		if dt := x.space.SemanticVec(o.Vec, x.tCent[t]); dt > g.maxDt {
			g.maxDt = dt
		}
	}
	g.members = append(g.members, pos)

	// Scalar per-clone counters (the struct copy made them private).
	x.insertsSinceBuild++
	if bestS > x.builtSRad[s] || (t >= 0 && bestT > x.builtTRadProj[t]) {
		x.radiusDrifts++
	}
	d.liveCount++
	d.ops++
	x.live++
	x.UpdatesSinceBuild++
	return nil
}

// deltaDelete is Delete's overlay path: overlay inserts die in the log,
// base objects get a tombstone bit; the base deleted bitmap, ID map and
// cluster structures stay untouched.
func (x *Index) deltaDelete(id uint32) error {
	d := x.delta
	if pos, ok := d.idToPos[id]; ok {
		d.dead.set(pos)
		delete(d.idToPos, id)
		d.liveCount--
	} else {
		idx, ok := x.idToIdx[id]
		if !ok || x.deleted.get(idx) || d.tombs.get(idx) {
			return fmt.Errorf("core: object ID %d not present", id)
		}
		d.tombs.set(idx)
		d.nTombs++
	}
	d.ops++
	x.live--
	x.UpdatesSinceBuild++
	return nil
}

// scanDelta chains the overlay's live inserts onto an exact k-NN heap.
// Groups prune with the Lemma 4.4 bound against their covering radii:
// for a member o of group (s,t), the triangle inequality gives
// ds(q,o) ≥ dsq(s) − maxDs and dt(q,o) ≥ dtq(t) − maxDt, so the group
// bound never exceeds a member's true distance. The skip fires only on
// lb > u (strict): with the heap full at u, every member's distance is
// ≥ lb > u and provably cannot displace an entry even on exact ties,
// keeping base+delta results bit-identical to a compacted rebuild.
// Surviving members pay the same exact kernel as scanCluster. Centroid
// distances are computed directly (not via the scratch memo tables)
// because not every caller maintains the memo invariant; group counts
// are bounded by the compaction threshold, and in practice far smaller.
func (x *Index) scanDelta(sc *searchScratch, q *dataset.Object, lambda float64, h *knn.Heap, st *metric.Stats) {
	d := x.delta
	if d == nil || d.liveCount == 0 {
		return
	}
	var phase time.Time
	if sc.obs != nil {
		phase = time.Now()
	}
	for gi := range d.groups {
		g := &d.groups[gi]
		if u, full := h.Bound(); full {
			dsqG := x.space.SpatialXY(q.X, q.Y, x.sCentX[g.s], x.sCentY[g.s])
			lb := lambda * (dsqG - g.maxDs)
			if g.t >= 0 {
				dtqG := x.space.SemanticVec(q.Vec, x.tCent[g.t])
				lb = lowerBound(lambda, dsqG, g.maxDs, dtqG, g.maxDt)
			} else if lb < 0 {
				lb = 0
			}
			if lb > u {
				if st != nil {
					st.ClustersPruned++
					for _, pos := range g.members {
						if !d.dead.get(pos) {
							st.InterPruned++
						}
					}
				}
				continue
			}
		}
		for _, pos := range g.members {
			if d.dead.get(pos) {
				continue
			}
			o := &d.objs[pos]
			if st != nil {
				st.VisitedObjects++
			}
			ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
			var dt float64
			if u, full := h.Bound(); full && lambda < 1 {
				dtBound := (u - lambda*ds) / (1 - lambda)
				var ok bool
				dt, ok = x.space.SemanticBound(st, q.Vec, o.Vec, dtBound)
				if !ok {
					if sc.obs != nil {
						sc.obs.EarlyAbandons++
					}
					continue
				}
			} else {
				dt = x.space.Semantic(st, q.Vec, o.Vec)
			}
			h.Push(knn.Result{ID: o.ID, Dist: metric.Combine(lambda, ds, dt)})
		}
	}
	if sc.obs != nil {
		sc.obs.DeltaNanos += time.Since(phase).Nanoseconds()
	}
}

// forEachDeltaLive visits every live overlay insert. The non-k-NN query
// paths (filtered/range/box/approx and the quantized mode) chain the
// overlay with a full scan instead of scanDelta's group pruning: the
// overlay is bounded by the compaction threshold, so the exact pass is
// cheap, and full coverage keeps the approximate modes' recall no worse
// than a compacted rebuild.
func (x *Index) forEachDeltaLive(fn func(o *dataset.Object)) {
	d := x.delta
	if d == nil {
		return
	}
	for pos := range d.objs {
		if d.dead.get(uint32(pos)) {
			continue
		}
		fn(&d.objs[pos])
	}
}

// Compact folds the write overlay into a fresh flat index: an eager COW
// clone of the base replays the overlay's tombstones (ascending storage
// order) and then its live inserts (append order) through the in-place
// maintenance path. Exact search answers are bit-identical across the
// fold: both sides select the top-k by (distance, ID) from the same
// live object set under admissible-only pruning, so the bookkeeping
// differences (radius shrink order, cluster membership order) cannot
// change results. x itself is never mutated — callers publish the
// returned flat index in its place.
func (x *Index) Compact() (*Index, error) {
	d := x.delta
	if d == nil {
		return x, nil
	}
	if d.ops == 0 {
		nx := new(Index)
		*nx = *x
		nx.delta = nil
		nx.cow = nil
		return nx, nil
	}
	nx := x.CloneForWrite()
	// x.live and the drift counters already include the overlay's net
	// effect; the replay below re-applies every surviving op through the
	// eager path, so rewind them to their base-only values first.
	nx.live = x.live - d.liveCount + d.nTombs
	nx.UpdatesSinceBuild = x.UpdatesSinceBuild - d.ops
	nx.insertsSinceBuild = x.insertsSinceBuild - len(d.objs)
	if d.nTombs > 0 {
		for i := range x.objects {
			if !d.tombs.get(uint32(i)) {
				continue
			}
			if err := nx.Delete(x.objects[i].ID); err != nil {
				return nil, fmt.Errorf("core: compact: %w", err)
			}
		}
	}
	for pos := range d.objs {
		if d.dead.get(uint32(pos)) {
			continue
		}
		if err := nx.Insert(d.objs[pos]); err != nil {
			return nil, fmt.Errorf("core: compact: %w", err)
		}
	}
	return nx, nil
}
