package core

import (
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// SearchFiltered answers an exact k-NN query restricted to the objects
// accepted by allow (e.g. a boolean keyword predicate). The pruning of
// Alg. 2 stays sound under any filter: the bounds lower-bound distances
// for all objects, hence for any subset, and the heap bound U is derived
// only from accepted objects. Rejected objects never have their
// distances computed.
//
// Work accounting: rejected objects are not charged to any counter, so
// the visited+inter+intra identity of the unfiltered algorithms does not
// apply here.
func (x *Index) SearchFiltered(q *dataset.Object, k int, lambda float64, allow func(id uint32) bool, st *metric.Stats) []knn.Result {
	sc := x.getScratch()
	defer x.putScratch(sc)
	x.fillSpatialCentroidDists(sc, q)
	x.fillSemanticCentroidDists(sc, q)
	for _, c := range x.clusters {
		sc.order = append(sc.order, orderedCluster{
			lb: lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtq[c.t], x.tRad[c.t]),
			c:  c,
		})
	}
	sortOrder(sc.order)

	h := &sc.heap
	h.Reset(k)
	for ci := range sc.order {
		oc := &sc.order[ci]
		if u, full := h.Bound(); full && oc.lb >= u {
			if st != nil {
				st.ClustersPruned += int64(len(sc.order) - ci)
			}
			break
		}
		c := oc.c
		if st != nil {
			st.ClustersExamined++
		}
		enclosed := sc.dsq[c.s] < x.sRad[c.s] && sc.dtq[c.t] < x.tRad[c.t]
		dqC := lambda*sc.dsq[c.s] + (1-lambda)*sc.dtq[c.t]
		for ei := range c.elems {
			e := &c.elems[ei]
			if !enclosed {
				if u, full := h.Bound(); full {
					bound := lambda*e.ds + (1-lambda)*e.dt
					if dqC-bound > u {
						break // Lemma 4.5, valid for the filtered subset too
					}
				}
			}
			o := &x.objects[e.idx]
			if !allow(o.ID) {
				continue
			}
			d := x.space.Distance(st, lambda, q, o)
			h.Push(knn.Result{ID: o.ID, Dist: d})
		}
	}
	return h.AppendSorted(nil)
}
