package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// SearchFiltered answers an exact k-NN query restricted to the objects
// accepted by allow (e.g. a boolean keyword predicate). The pruning of
// Alg. 2 stays sound under any filter: the bounds lower-bound distances
// for all objects, hence for any subset, and the heap bound U is derived
// only from accepted objects. Rejected objects never have their
// distances computed.
//
// Work accounting: rejected objects are not charged to any counter, so
// the visited+inter+intra identity of the unfiltered algorithms does not
// apply here.
func (x *Index) SearchFiltered(q *dataset.Object, k int, lambda float64, allow func(id uint32) bool, st *metric.Stats) []knn.Result {
	dsq := make([]float64, len(x.sCentX))
	for s := range dsq {
		dsq[s] = x.space.SpatialXY(q.X, q.Y, x.sCentX[s], x.sCentY[s])
	}
	dtq := make([]float64, len(x.tCent))
	for t := range dtq {
		dtq[t] = x.space.SemanticVec(q.Vec, x.tCent[t])
	}
	order := make([]orderedCluster, len(x.clusters))
	for i, c := range x.clusters {
		order[i] = orderedCluster{
			lb: lowerBound(lambda, dsq[c.s], x.sRad[c.s], dtq[c.t], x.tRad[c.t]),
			c:  c,
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].lb < order[b].lb })

	h := knn.NewHeap(k)
	for ci, oc := range order {
		if u, full := h.Bound(); full && oc.lb >= u {
			if st != nil {
				st.ClustersPruned += int64(len(order) - ci)
			}
			break
		}
		c := oc.c
		if st != nil {
			st.ClustersExamined++
		}
		enclosed := dsq[c.s] < x.sRad[c.s] && dtq[c.t] < x.tRad[c.t]
		dqC := lambda*dsq[c.s] + (1-lambda)*dtq[c.t]
		for ei := range c.elems {
			e := &c.elems[ei]
			if !enclosed {
				if u, full := h.Bound(); full {
					bound := lambda*e.ds + (1-lambda)*e.dt
					if dqC-bound > u {
						break // Lemma 4.5, valid for the filtered subset too
					}
				}
			}
			o := &x.objects[e.idx]
			if !allow(o.ID) {
				continue
			}
			d := x.space.Distance(st, lambda, q, o)
			h.Push(knn.Result{ID: o.ID, Dist: d})
		}
	}
	return h.Sorted()
}
