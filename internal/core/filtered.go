package core

import (
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// SearchFiltered answers an exact k-NN query restricted to the objects
// accepted by allow (e.g. a boolean keyword predicate). The pruning of
// Alg. 2 stays sound under any filter: the bounds lower-bound distances
// for all objects, hence for any subset, and the heap bound U is derived
// only from accepted objects. Rejected objects never have their
// distances computed.
//
// Cluster ordering uses the same lazy best-first frontier as Search:
// entries carry the weak projected-space bound when available and are
// refined to the true L(q,C) on pop (see clusterFrontier), so the
// ordering cost tracks the clusters the filtered scan actually reaches.
//
// Work accounting: rejected objects are not charged to any counter, so
// the visited+inter+intra identity of the unfiltered algorithms does not
// apply here; inter-cluster cut-offs charge ClustersPruned only.
func (x *Index) SearchFiltered(q *dataset.Object, k int, lambda float64, allow func(id uint32) bool, st *metric.Stats) []knn.Result {
	sc := x.getScratch()
	defer x.putScratch(sc)
	x.fillSpatialCentroidDists(sc, q)
	lazy := x.lazyOrderable()
	if lazy {
		x.fillProjLowerBounds(sc, q)
		for _, c := range x.clusters {
			sc.order = append(sc.order, orderedCluster{
				lb: lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtqProj[c.t], x.tRad[c.t]),
				c:  c,
			})
		}
	} else {
		x.fillSemanticCentroidDists(sc, q)
		for _, c := range x.clusters {
			sc.order = append(sc.order, orderedCluster{
				lb:      lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtq[c.t], x.tRad[c.t]),
				c:       c,
				refined: true,
			})
		}
	}
	f := (*clusterFrontier)(&sc.order)
	f.heapify()

	h := &sc.heap
	h.Reset(k)
	tombs := x.deltaTombs()
	for len(*f) > 0 {
		if u, full := h.Bound(); full && (*f)[0].lb >= u {
			if st != nil {
				st.ClustersPruned += int64(len(*f))
			}
			break
		}
		e := f.pop()
		if st != nil {
			st.ClustersOrdered++
		}
		c := e.c
		dtqC := sc.dtq[c.t]
		if !sc.dtqKnown[c.t] {
			dtqC = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			sc.dtq[c.t] = dtqC
			sc.dtqKnown[c.t] = true
		}
		if !e.refined {
			trueLB := lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], dtqC, x.tRad[c.t])
			if len(*f) > 0 && trueLB > (*f)[0].lb {
				e.lb, e.refined = trueLB, true
				f.push(e)
				continue
			}
			if u, full := h.Bound(); full && trueLB >= u {
				if st != nil {
					st.ClustersPruned += int64(len(*f) + 1)
				}
				break
			}
		}
		if st != nil {
			st.ClustersExamined++
		}
		enclosed := sc.dsq[c.s] < x.sRad[c.s] && dtqC < x.tRad[c.t]
		dqC := lambda*sc.dsq[c.s] + (1-lambda)*dtqC
		for ei := range c.elems {
			el := &c.elems[ei]
			if !enclosed {
				if u, full := h.Bound(); full {
					bound := lambda*el.ds + (1-lambda)*el.dt
					if dqC-bound > u {
						break // Lemma 4.5, valid for the filtered subset too
					}
				}
			}
			if tombs != nil && tombs.get(el.idx) {
				continue
			}
			o := &x.objects[el.idx]
			if !allow(o.ID) {
				continue
			}
			d := x.space.Distance(st, lambda, q, o)
			h.Push(knn.Result{ID: o.ID, Dist: d})
		}
	}
	// Overlay chain: the live overlay inserts pass through the same
	// filter and exact distance, so filtered results match a compacted
	// rebuild bit for bit.
	x.forEachDeltaLive(func(o *dataset.Object) {
		if !allow(o.ID) {
			return
		}
		h.Push(knn.Result{ID: o.ID, Dist: x.space.Distance(st, lambda, q, o)})
	})
	return h.AppendSorted(nil)
}
