package core

import (
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/vec"
)

// SQ8-quantized arena: the two-resolution pattern of CSSIA (§5: cheap
// representation for ordering and pruning, full precision for final
// scoring) pushed down into the intra-cluster scan. Alongside the
// float32 vecArena the index keeps one byte per dimension (codes) and
// one float32 per row (an admissible residual), trained at build time
// and maintained through insert/clone/rebuild exactly like the float32
// arena. Two consumers:
//
//   - Exact search (QuantAuto): scanCluster runs a filter-then-rerank
//     pass — the asymmetric kernel's certain lower bound (see
//     vec.QLowerBound) prunes candidates against the k-th distance, and
//     only survivors pay the exact n-dimensional float32 kernel.
//     Every exclusion is provably d > U, so results stay bit-identical
//     to the unquantized scan (see scanClusterQuant for the argument).
//   - Approx search (QuantOnly): a CSSIA-style scan scores whole
//     clusters with the blockwise quantized kernel, overfetches
//     QuantRerank·k candidates by estimated distance, and reranks the
//     pool exactly — a tunable recall/speed trade measured by the
//     cssibench quant experiment.
//
// Quantization is automatically disabled for the angular semantic
// metric (the bound pair is Euclidean) and by Config.DisableQuant.

// QuantMode selects how the SQ8 arena participates in one query.
type QuantMode int

const (
	// QuantAuto (the zero value) uses the quantized filter+rerank pass
	// wherever it provably preserves exactness, and leaves approximate
	// search untouched.
	QuantAuto QuantMode = iota
	// QuantOff forces the pure float32 path for this query.
	QuantOff
	// QuantOnly answers an approximate query from the quantized arena:
	// candidates are selected by quantized distance estimates and only a
	// final QuantRerank·k pool is rescored exactly. Approx-only; the
	// public request layer rejects it for exact queries.
	QuantOnly
)

// sq8LUTMaxDim caps the dimensionality at which the QuantOnly bulk scan
// scores through vec.SQ8LUT lookup tables: the LUT accumulates float32
// in one chain per row, so its agreement with the direct kernel decays
// as ~dim·2⁻²⁴ and the bound slack only provably absorbs it up to about
// 10³ dimensions. Above the cap the scan falls back to the bit-exact
// SqDistSQ8BlockInto.
const sq8LUTMaxDim = 1000

// DefaultQuantRerank is the QuantOnly overfetch multiplier used when a
// request leaves it zero: the exact rerank pool holds 4·k candidates,
// which holds recall@10 ≥ 0.99 on the benchmark workloads.
const DefaultQuantRerank = 4

// SearchOptions bundles the per-query algorithm switches of the
// options-taking entry points. The zero value reproduces SearchInto.
type SearchOptions struct {
	// Approx selects CSSIA instead of exact CSSI.
	Approx bool
	// Quant selects the quantized-arena participation (see QuantMode).
	// QuantOnly only takes effect with Approx set (and an index whose
	// quant arena exists); exact queries treat it as QuantAuto.
	Quant QuantMode
	// QuantRerank is the QuantOnly overfetch multiplier (<= 0 selects
	// DefaultQuantRerank). Ignored outside QuantOnly.
	QuantRerank int
	// Route engages the learned cluster router (see route.go). On an
	// exact query it only re-prioritizes the visit order — results stay
	// bit-identical; with Approx it selects the routed approximate mode
	// whose cluster coverage is tuned by RouteTarget. Silently ignored
	// when the index has no trained router.
	Route bool
	// RouteTarget is the routed approximate mode's probability-mass
	// coverage in (0,1]; <= 0 selects DefaultRouteTarget. Ignored
	// outside Route+Approx.
	RouteTarget float64
	// Deadline, when non-zero, is the absolute instant past which the
	// query stops consuming clusters and returns the admissible prefix
	// accumulated so far (see deadline.go); the Meta entry points
	// report the truncation via SearchMeta.Partial. The zero value
	// means no budget.
	Deadline time.Time
	// Cancel, when non-nil, stops the query at the next budget check
	// once the channel is closed, with the same partial-prefix
	// semantics as Deadline (the facade threads ctx.Done() here).
	Cancel <-chan struct{}
}

// quantArena is the SQ8 companion of vecArena: row i of codes is the
// quantized form of vecArena row i, resid[i] its admissible residual.
// Like the float32 arenas it grows append-only and is shared across COW
// clones (CloneForWrite copies this struct's header; appendRow writes
// only past the parent's length or into reallocated backing).
type quantArena struct {
	cb    vec.SQ8Codebook
	codes []uint8
	resid []float32
}

// row returns code row i.
func (qa *quantArena) row(i uint32, dim int) []uint8 {
	return qa.codes[int(i)*dim : (int(i)+1)*dim : (int(i)+1)*dim]
}

// trainQuant trains the SQ8 codebook over the full vector arena and
// encodes every row (parallel). Returns nil when quantization does not
// apply: disabled by config, or a non-Euclidean semantic metric (the
// bound pair relies on the Euclidean triangle inequality).
func (x *Index) trainQuant() *quantArena {
	if x.cfg.DisableQuant || x.space.SemanticKind != metric.EuclideanSemantic || len(x.vecArena) == 0 {
		return nil
	}
	cb := vec.TrainSQ8(x.vecArena, x.dim)
	n := len(x.objects)
	qa := &quantArena{cb: cb, codes: make([]uint8, n*x.dim), resid: make([]float32, n)}
	parallelFor(n, x.cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			qa.resid[i] = qa.cb.EncodeInto(qa.row(uint32(i), x.dim), x.vecAt(uint32(i)))
		}
	})
	return qa
}

// appendQuantRow encodes the just-appended object into a new quant
// arena row, mirroring appendArenaRows' growth discipline (and its COW
// safety argument: growth reallocates, appends land past the parent's
// length). No-op when the index has no quant arena.
func (x *Index) appendQuantRow(idx uint32) {
	qa := x.quant
	if qa == nil {
		return
	}
	d := x.dim
	if need := len(qa.codes) + d; need > cap(qa.codes) {
		nc := make([]uint8, len(qa.codes), arenaCap(need, cap(qa.codes)))
		copy(nc, qa.codes)
		qa.codes = nc
	}
	qa.codes = qa.codes[:len(qa.codes)+d]
	r := qa.cb.EncodeInto(qa.row(idx, d), x.objects[idx].Vec)
	if need := len(qa.resid) + 1; need > cap(qa.resid) {
		nr := make([]float32, len(qa.resid), arenaCap(need, cap(qa.resid)))
		copy(nr, qa.resid)
		qa.resid = nr
	}
	qa.resid = append(qa.resid, r)
}

// fillClusterQuant (re)builds the cluster's contiguous code block —
// codes and residuals in elems order, so the scan reads the quantized
// rows as one linear byte stream instead of strided arena gathers. Like
// elems, the block is derived data rebuilt wherever buildElems runs and
// never mutated in place afterwards (COW clones share it safely).
func (x *Index) fillClusterQuant(c *hybrid) {
	if x.quant == nil {
		c.codes, c.resid = nil, nil
		return
	}
	d := x.dim
	codes := make([]uint8, len(c.elems)*d)
	resid := make([]float32, len(c.elems))
	for j := range c.elems {
		idx := c.elems[j].idx
		copy(codes[j*d:(j+1)*d], x.quant.row(idx, d))
		resid[j] = x.quant.resid[idx]
	}
	c.codes, c.resid = codes, resid
}

// rerankMult normalizes a QuantOnly overfetch multiplier.
func rerankMult(r int) int {
	if r <= 0 {
		return DefaultQuantRerank
	}
	return r
}

// SearchOptionsInto is SearchInto with the per-query algorithm switches
// of SearchOptions: the zero opts is exactly SearchInto, opts.Approx
// is exactly SearchApproxInto, and the Quant field adds the quantized
// modes. Like the legacy entry points it is allocation-free in steady
// state given sufficient dst capacity.
func (x *Index) SearchOptionsInto(dst []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, st *metric.Stats) []knn.Result {
	sc := x.getScratch()
	out := x.searchOptionsWith(sc, dst, nil, q, k, lambda, opts, st)
	x.putScratch(sc)
	return out
}

// SearchOptionsSeededInto is SearchSeededInto with SearchOptions; the
// seed applies to the exact path only (the approximate algorithms keep
// their own candidate pools), matching the sharded chain that uses it.
func (x *Index) SearchOptionsSeededInto(dst, seed []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, st *metric.Stats) []knn.Result {
	sc := x.getScratch()
	out := x.searchOptionsWith(sc, dst, seed, q, k, lambda, opts, st)
	x.putScratch(sc)
	return out
}

// searchOptionsWith dispatches one query to the algorithm opts selects,
// on a caller-provided scratch (batch workers reuse one across
// queries).
func (x *Index) searchOptionsWith(sc *searchScratch, dst, seed []knn.Result, q *dataset.Object, k int, lambda float64, opts SearchOptions, st *metric.Stats) []knn.Result {
	sc.quantOff = opts.Quant == QuantOff
	sc.routeOn = opts.Route && x.router != nil
	sc.deadline = opts.Deadline
	sc.cancel = opts.Cancel
	sc.budgeted = !opts.Deadline.IsZero() || opts.Cancel != nil
	sc.pops = 0
	sc.partial = false
	if opts.Approx {
		if sc.routeOn {
			return x.searchRoutedWith(sc, dst, q, k, lambda, routeTargetOrDefault(opts.RouteTarget), st)
		}
		if opts.Quant == QuantOnly && x.quant != nil {
			return x.searchQuantWith(sc, dst, q, k, rerankMult(opts.QuantRerank), lambda, st)
		}
		return x.searchApproxWith(sc, dst, q, k, lambda, st)
	}
	return x.searchWithSeed(sc, dst, seed, q, k, lambda, st)
}

// quantSurvivor is one pass-1 survivor of the filter+rerank scan: the
// element index within the cluster and its already-computed spatial
// distance (reused by the rerank pass so modes agree on one spatial
// computation per visited object).
type quantSurvivor struct {
	ei int32
	ds float64
}

// quantTimeSampleEvery is the deterministic sampling rate of the
// quant-phase wall clock: one in this many quantized cluster scans per
// query is timed, and flushQuantTiming scales the sample up to the
// query's QuantNanos estimate. The first scan is always in the sample,
// so any query that took the quantized path reports a non-zero phase.
const quantTimeSampleEvery = 16

// flushQuantTiming folds the query's sampled quantized-scan windows
// into sc.obs.QuantNanos, scaled by the sampling rate and clamped to
// maxNanos (the enclosing scan phase's wall time, which keeps the
// QuantNanos ⊆ ScanNanos phase invariant under sampling error). Called
// where the scan phase closes; resets the sample state for the next
// query on the pooled scratch. No-op when no quantized scan ran.
func (sc *searchScratch) flushQuantTiming(maxNanos int64) {
	if sc.quantScans == 0 {
		return
	}
	timed := (sc.quantScans + quantTimeSampleEvery - 1) / quantTimeSampleEvery
	est := sc.quantSampledNanos * sc.quantScans / timed
	if est > maxNanos {
		est = maxNanos
	}
	sc.obs.QuantNanos += est
	sc.quantScans, sc.quantSampledNanos = 0, 0
}

// scanClusterQuant is the filter-then-rerank form of scanCluster's
// object loop, entered only with a full heap, λ < 1 and a quant block
// present. Exactness argument (the property tests in quant_equiv_test
// pin it): the final heap contents are a pure function of the offered
// candidate set (knn.Heap breaks distance ties by ID), so it suffices
// that every candidate withheld here has combined distance d provably
// greater than the final bound U_final. Three exclusions occur:
//
//   - the intra-cluster threshold break uses u0, the bound at cluster
//     entry: excluded suffixes have d ≥ d(q,C)−bound > u0 ≥ U_final
//     (Lemma 4.5, with a stale-but-larger bound — pruning strictly less
//     than the live-bound reference, never more);
//   - the quantized filter excludes a candidate only when the certain
//     lower bound on its semantic distance exceeds the per-candidate
//     budget (u0 − λ·ds)/(1−λ), hence d = λ·ds + (1−λ)·dt > u0;
//   - the rerank pass reuses the exact early-abandoning kernel with the
//     live bound, identical to the reference loop.
//
// Survivors are rescored with the same float32 kernel the reference
// uses, so kept distances are bit-identical too. The pass-1 window is
// wall-timed on a deterministic 1-in-quantTimeSampleEvery sample of the
// query's scans (see flushQuantTiming): per-cluster timestamps cost two
// clock reads per examined cluster, which at realistic cluster counts
// was most of the tracer's overhead.
func (x *Index) scanClusterQuant(sc *searchScratch, q *dataset.Object, lambda float64, c *hybrid, dqC, u0 float64, enclosed bool, h *knn.Heap, st *metric.Stats) {
	qa := x.quant
	var t0 time.Time
	timed := false
	if sc.obs != nil {
		if sc.quantScans%quantTimeSampleEvery == 0 {
			timed = true
			t0 = time.Now()
		}
		sc.quantScans++
	}
	if !sc.quantQ {
		qa.cb.AdjustQueryInto(sc.qAdj, q.Vec)
		sc.quantQ = true
	}
	dim := x.dim
	invLam := 1 - lambda
	dtMax := x.space.DtMax
	tombs := x.deltaTombs()
	sur := sc.survivors[:0]
	for ei := range c.elems {
		e := &c.elems[ei]
		if !enclosed {
			bound := lambda*e.ds + invLam*e.dt
			if dqC-bound > u0 {
				if st != nil {
					st.IntraPruned += int64(len(c.elems) - ei)
				}
				break
			}
		}
		if tombs != nil && tombs.get(e.idx) {
			continue
		}
		o := &x.objects[e.idx]
		if st != nil {
			st.VisitedObjects++
		}
		ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
		// The candidate can only displace a result with
		// dt < (u0 − λ·ds)/(1−λ); convert that budget to the kernel's
		// unnormalized distance units and abandon-filter against it.
		limit := qa.cb.QPruneLimit((u0-lambda*ds)/invLam*dtMax, c.resid[ei])
		var sq float64
		if limit >= 0 {
			sq = vec.SqDistSQ8Bound(sc.qAdj, qa.cb.Step, c.codes[ei*dim:(ei+1)*dim], limit)
		}
		if sq > limit {
			if st != nil {
				st.QuantPruned++
			}
			continue
		}
		sur = append(sur, quantSurvivor{ei: int32(ei), ds: ds})
	}
	sc.survivors = sur
	if timed {
		sc.quantSampledNanos += time.Since(t0).Nanoseconds()
	}
	for _, s := range sur {
		e := &c.elems[s.ei]
		o := &x.objects[e.idx]
		if st != nil {
			st.QuantReranked++
		}
		u, _ := h.Bound()
		dtBound := (u - lambda*s.ds) / invLam
		dt, ok := x.space.SemanticBound(st, q.Vec, o.Vec, dtBound)
		if !ok {
			if sc.obs != nil {
				sc.obs.EarlyAbandons++
			}
			continue
		}
		h.Push(knn.Result{ID: o.ID, Dist: metric.Combine(lambda, s.ds, dt)})
	}
}

// searchQuantWith is the QuantOnly approximate algorithm: CSSIA's
// projected-space cluster ordering and pruning, but with the
// intra-cluster scan served entirely from the quantized arena — one
// blockwise kernel call scores the whole cluster, candidates are kept
// by estimated distance in an overfetched pool of rerank·k, and the
// pool is rescored exactly at the end. Relative to plain CSSIA it
// trades the per-candidate n-dimensional float32 kernels for byte-wide
// block scans plus k·rerank exact kernels.
func (x *Index) searchQuantWith(sc *searchScratch, dst []knn.Result, q *dataset.Object, k, rerank int, lambda float64, st *metric.Stats) []knn.Result {
	sc.order = sc.order[:0]
	var phase time.Time
	if sc.obs != nil {
		phase = time.Now()
	}
	qProj := sc.qProj
	x.pcaModel.TransformInto(qProj, q.Vec)
	x.fillSpatialCentroidDists(sc, q)
	for t := range sc.dtqProj {
		sc.dtqProj[t] = x.space.SemanticProjVec(qProj, x.tCentProj[t])
	}
	for _, c := range x.clusters {
		sc.order = append(sc.order, orderedCluster{
			lb:      lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtqProj[c.t], x.tRadProj[c.t]),
			c:       c,
			refined: true,
		})
	}
	f := (*clusterFrontier)(&sc.order)
	f.heapify()
	if sc.obs != nil {
		sc.obs.ClustersTotal += int64(len(*f))
		sc.obs.OrderNanos += time.Since(phase).Nanoseconds()
		phase = time.Now()
	}

	qa := x.quant
	qa.cb.AdjustQueryInto(sc.qAdj, q.Vec)
	sc.quantQ = true
	// Bulk scoring goes through the per-query lookup tables where the
	// precision contract allows (see sq8LUTMaxDim): one table load + add
	// per byte instead of the convert/multiply/subtract chain.
	useLUT := x.dim <= sq8LUTMaxDim
	if useLUT {
		sc.lut = qa.cb.BuildSQ8LUTInto(sc.lut, sc.qAdj)
	}
	kq := k * rerank
	tombs := x.deltaTombs()
	cands := sc.cands[:0]
	u := math.Inf(1)      // estimated distance to the kq-th candidate
	uPrime := math.Inf(1) // projected-space bound, as in CSSIA
	for t := range sc.dtqKnown {
		sc.dtqKnown[t] = false
	}
	invDt := 1 / x.space.DtMax

	for len(*f) > 0 {
		if len(cands) >= kq && (*f)[0].lb >= uPrime {
			f.pruneRemaining(st)
			break
		}
		if sc.budgetExpired() {
			break
		}
		e := f.pop()
		if st != nil {
			st.ClustersOrdered++
		}
		c := e.c
		if st != nil {
			st.ClustersExamined++
		}
		if len(c.elems) == 0 {
			continue
		}
		if !sc.dtqKnown[c.t] {
			sc.dtq[c.t] = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			sc.dtqKnown[c.t] = true
		}
		dtqC := sc.dtq[c.t]
		enclosed := sc.dsq[c.s] < x.sRad[c.s] && dtqC < x.tRad[c.t]
		dqC := lambda*sc.dsq[c.s] + (1-lambda)*dtqC

		// One blockwise kernel call scores the whole cluster from its
		// contiguous code block.
		n := len(c.elems)
		est := growSlice(sc.est, n)
		sc.est = est
		var tq time.Time
		timed := false
		if sc.obs != nil {
			if sc.quantScans%quantTimeSampleEvery == 0 {
				timed = true
				tq = time.Now()
			}
			sc.quantScans++
		}
		if useLUT {
			vec.SqDistSQ8LUTBlockInto(est, sc.lut, c.codes)
		} else {
			vec.SqDistSQ8BlockInto(est, sc.qAdj, qa.cb.Step, c.codes)
		}
		if timed {
			sc.quantSampledNanos += time.Since(tq).Nanoseconds()
		}
		if st != nil {
			// The block scan is this mode's semantic distance work.
			st.SemanticDistCalcs += int64(n)
		}
		for ei := range c.elems {
			el := &c.elems[ei]
			if !enclosed && len(cands) >= kq {
				bound := lambda*el.ds + (1-lambda)*el.dt
				if dqC-bound > u {
					if st != nil {
						st.IntraPruned += int64(n - ei)
					}
					break
				}
			}
			if tombs != nil && tombs.get(el.idx) {
				continue
			}
			o := &x.objects[el.idx]
			if st != nil {
				st.VisitedObjects++
			}
			ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
			d := metric.Combine(lambda, ds, math.Sqrt(est[ei])*invDt)
			if d < u || len(cands) < kq {
				dpr := metric.Combine(lambda, ds, x.space.SemanticProjVec(qProj, x.projAt(el.idx)))
				cands.push(cand{id: o.ID, idx: el.idx, d: d, dpr: dpr})
				if len(cands) > kq {
					cands.popMax()
				}
				if len(cands) == kq {
					u = cands[0].d
					uPrime = cands.maxDPr()
				}
			}
		}
	}

	// Exact rerank: the final k come from rescoring the candidate pool
	// with the full float32 kernel (early-abandoning against the
	// rerank-local bound).
	var tr time.Time
	if sc.obs != nil {
		tr = time.Now()
	}
	h := &sc.heap
	h.Reset(k)
	for i := range cands {
		o := &x.objects[cands[i].idx]
		if st != nil {
			st.QuantReranked++
		}
		ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
		var dt float64
		if u2, full := h.Bound(); full && lambda < 1 {
			var ok bool
			dt, ok = x.space.SemanticBound(st, q.Vec, o.Vec, (u2-lambda*ds)/(1-lambda))
			if !ok {
				if sc.obs != nil {
					sc.obs.EarlyAbandons++
				}
				continue
			}
		} else {
			dt = x.space.Semantic(st, q.Vec, o.Vec)
		}
		h.Push(knn.Result{ID: o.ID, Dist: metric.Combine(lambda, ds, dt)})
	}
	sc.cands = cands[:0]
	if sc.obs != nil {
		now := time.Now()
		rerankNanos := now.Sub(tr).Nanoseconds()
		scanNanos := now.Sub(phase).Nanoseconds()
		// The block-scan estimate and the rerank window together must
		// stay inside the scan phase, so the estimate's clamp leaves room
		// for the rerank nanos accrued below.
		sc.flushQuantTiming(scanNanos - rerankNanos)
		sc.obs.QuantNanos += rerankNanos
		sc.obs.ScanNanos += scanNanos
	}
	// The write overlay is scanned in full with the exact kernel, so
	// QuantOnly recall over overlay inserts is never worse than over a
	// compacted base.
	x.scanDelta(sc, q, lambda, h, st)
	return h.AppendSorted(dst)
}
