package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/scan"
)

// Property (Lemma 4.3): for every hybrid cluster and every query, the
// lower bound L(q,C) never exceeds d(q,o) for any member o.
func TestLowerBoundIsValid(t *testing.T) {
	f := build(t, dataset.TwitterLike, 600, Config{Seed: 40})
	x := f.idx
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		lambda := rng.Float64()
		q := &f.ds.Objects[rng.IntN(f.ds.Len())]
		for _, c := range x.clusters {
			dsq := x.space.SpatialXY(q.X, q.Y, x.sCentX[c.s], x.sCentY[c.s])
			dtq := x.space.SemanticVec(q.Vec, x.tCent[c.t])
			lb := lowerBound(lambda, dsq, x.sRad[c.s], dtq, x.tRad[c.t])
			for _, m := range c.members {
				d := x.space.Distance(nil, lambda, q, &x.objects[m.idx])
				if d < lb-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property (§4.3): the array threshold is a conservative approximation of
// d(o,C) for every λ, i.e. d(o,C) ≤ λ·e.ds + (1−λ)·e.dt.
func TestArrayThresholdConservative(t *testing.T) {
	f := build(t, dataset.YelpLike, 500, Config{Seed: 41})
	x := f.idx
	for _, c := range x.clusters {
		byIdx := make(map[uint32]member, len(c.members))
		for _, m := range c.members {
			byIdx[m.idx] = m
		}
		for _, lambda := range []float64{0, 0.25, 0.5, 0.75, 1} {
			for _, e := range c.elems {
				m := byIdx[e.idx]
				dOC := lambda*m.ds + (1-lambda)*m.dt
				bound := lambda*e.ds + (1-lambda)*e.dt
				if dOC > bound+1e-9 {
					t.Fatalf("threshold not conservative: d(o,C)=%v > bound=%v (λ=%v)", dOC, bound, lambda)
				}
			}
		}
	}
}

// Property: buildElems emits exactly one element per member with
// monotonically non-increasing thresholds, for arbitrary member sets.
func TestBuildElemsProperties(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 1 + rng.IntN(60)
		members := make([]member, n)
		for i := range members {
			members[i] = member{
				idx: uint32(i),
				ds:  rng.Float64(),
				dt:  rng.Float64(),
			}
		}
		elems := buildElems(members)
		if len(elems) != n {
			return false
		}
		seen := make(map[uint32]bool, n)
		prevDs, prevDt := 2.0, 2.0
		for _, e := range elems {
			if seen[e.idx] {
				return false
			}
			seen[e.idx] = true
			if e.ds > prevDs+1e-12 || e.dt > prevDt+1e-12 {
				return false
			}
			prevDs, prevDt = e.ds, e.dt
			m := members[e.idx]
			if e.ds < m.ds-1e-12 || e.dt < m.dt-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildElemsEmpty(t *testing.T) {
	if got := buildElems(nil); got != nil {
		t.Fatalf("buildElems(nil) = %v", got)
	}
}

func TestBuildElemsDuplicateDistances(t *testing.T) {
	// All-equal distances must still yield one element per member.
	members := make([]member, 10)
	for i := range members {
		members[i] = member{idx: uint32(i), ds: 0.5, dt: 0.5}
	}
	elems := buildElems(members)
	if len(elems) != 10 {
		t.Fatalf("got %d elems", len(elems))
	}
}

// Property: lowerBound is non-negative and zero when q is inside both
// balls; it equals the Eq. 4 case expressions.
func TestLowerBoundCases(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		lambda := rng.Float64()
		dsq, rs := rng.Float64(), rng.Float64()
		dtq, rt := rng.Float64(), rng.Float64()
		lb := lowerBound(lambda, dsq, rs, dtq, rt)
		if lb < 0 {
			return false
		}
		if dsq < rs && dtq < rt && lb != 0 {
			return false
		}
		if dsq >= rs && dtq >= rt {
			want := lambda*(dsq-rs) + (1-lambda)*(dtq-rt)
			if abs(lb-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property-style differential test: on fully random (unclustered) data —
// a worst case for any clustering index — CSSI remains exact.
func TestCSSIExactOnRandomData(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		n := 80 + rng.IntN(200)
		objs := make([]dataset.Object, n)
		for i := range objs {
			v := make([]float32, 10)
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			objs[i] = dataset.Object{ID: uint32(i), X: rng.Float64(), Y: rng.Float64(), Vec: v}
		}
		ds := &dataset.Dataset{Objects: objs, Dim: 10}
		sp, err := metric.NewSpace(ds)
		if err != nil {
			return false
		}
		idx, err := Build(ds, sp, Config{Seed: seed, Ks: 3 + int(seed%5), Kt: 3 + int(seed%4)})
		if err != nil {
			return false
		}
		sc := scan.New(ds, sp)
		lambda := rng.Float64()
		k := 1 + rng.IntN(20)
		q := objs[rng.IntN(n)]
		want := sc.Search(&q, k, lambda, nil)
		got := idx.Search(&q, k, lambda, nil)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Dist != want[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
