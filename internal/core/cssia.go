package core

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// cand is a CSSIA candidate: its exact combined distance d and the
// projected-space combined distance d' = λ·ds + (1−λ)·d't (§5.3).
type cand struct {
	id     uint32
	d, dpr float64
}

// candHeap keeps the k candidates with the smallest exact distance as a
// max-heap by d, mirroring the paper's priority queue R. Whenever the set
// changes, CSSIA re-derives both U (max d) and U' (max d') — the paper's
// complexity analysis (§6.1) accounts for exactly this per-update scan.
type candHeap []cand

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].d > h[j].d }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(cand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// maxDPr returns max d' over the held candidates.
func (h candHeap) maxDPr() float64 {
	mx := math.Inf(-1)
	for _, c := range h {
		if c.dpr > mx {
			mx = c.dpr
		}
	}
	return mx
}

// SearchApprox answers a k-NN query with the CSSIA algorithm (Alg. 3).
// Inter-cluster pruning runs in the projected space (revised pruning
// property 1, §5.3) with the revised bound U'; intra-cluster pruning is
// identical to CSSI (original space, bound U). Results are approximate:
// the projection contracts distances, so a cluster holding a true
// neighbor can be pruned when its projected bound looks too large.
func (x *Index) SearchApprox(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	qProj := x.pcaModel.Transform(q.Vec)

	dsq := make([]float64, len(x.sCentX))
	for s := range dsq {
		dsq[s] = x.space.SpatialXY(q.X, q.Y, x.sCentX[s], x.sCentY[s])
	}
	// Semantic centroid distances in the projected space (m-dimensional,
	// much cheaper than CSSI's n-dimensional sort — the m·K·logK term of
	// Table 2).
	dtqProj := make([]float64, len(x.tCentProj))
	for t := range dtqProj {
		dtqProj[t] = x.space.SemanticProjVec(qProj, x.tCentProj[t])
	}

	order := make([]orderedCluster, len(x.clusters))
	for i, c := range x.clusters {
		order[i] = orderedCluster{
			lb: lowerBound(lambda, dsq[c.s], x.sRad[c.s], dtqProj[c.t], x.tRadProj[c.t]),
			c:  c,
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].lb < order[b].lb })

	var cands candHeap
	u := math.Inf(1)      // distance to current k-NN in the original space
	uPrime := math.Inf(1) // distance to current k-NN in the projected space
	// dtqOrig caches the original-space semantic centroid distances that
	// intra-cluster pruning needs, computed lazily per examined cluster.
	dtqOrig := make([]float64, len(x.tCent))
	dtqKnown := make([]bool, len(x.tCent))

	for ci, oc := range order {
		if len(cands) >= k && oc.lb >= uPrime {
			// Revised pruning property 1 (§5.3) in the projected space.
			if st != nil {
				for _, rest := range order[ci:] {
					st.ClustersPruned++
					st.InterPruned += int64(len(rest.c.elems))
				}
			}
			break
		}
		c := oc.c
		if st != nil {
			st.ClustersExamined++
		}
		if !dtqKnown[c.t] {
			dtqOrig[c.t] = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			dtqKnown[c.t] = true
		}
		enclosed := dsq[c.s] < x.sRad[c.s] && dtqOrig[c.t] < x.tRad[c.t]
		dqC := lambda*dsq[c.s] + (1-lambda)*dtqOrig[c.t]
		for ei := range c.elems {
			e := &c.elems[ei]
			if !enclosed && len(cands) >= k {
				bound := lambda*e.ds + (1-lambda)*e.dt
				if dqC-bound > u {
					// Pruning property 2 (identical to CSSI, original
					// space).
					if st != nil {
						st.IntraPruned += int64(len(c.elems) - ei)
					}
					break
				}
			}
			o := &x.objects[e.idx]
			if st != nil {
				st.VisitedObjects++
			}
			ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
			dt := x.space.Semantic(st, q.Vec, o.Vec)
			d := metric.Combine(lambda, ds, dt)
			if d < u || len(cands) < k {
				dpr := metric.Combine(lambda, ds, x.space.SemanticProjVec(qProj, x.proj[e.idx]))
				heap.Push(&cands, cand{id: o.ID, d: d, dpr: dpr})
				if len(cands) > k {
					heap.Pop(&cands)
				}
				if len(cands) == k {
					u = cands[0].d
					uPrime = cands.maxDPr()
				}
			}
		}
	}
	out := make([]knn.Result, len(cands))
	for i, c := range cands {
		out[i] = knn.Result{ID: c.id, Dist: c.d}
	}
	knn.SortResults(out)
	return out
}
