package core

import (
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// cand is a CSSIA candidate: its exact combined distance d (an
// estimated distance in the QuantOnly mode, which reranks the pool
// exactly afterwards) and the projected-space combined distance
// d' = λ·ds + (1−λ)·d't (§5.3). idx is the storage position, kept so
// the QuantOnly rerank reaches the object without an ID lookup.
type cand struct {
	id     uint32
	idx    uint32
	d, dpr float64
}

// candHeap keeps the k candidates with the smallest exact distance as a
// max-heap by d, mirroring the paper's priority queue R. Whenever the set
// changes, CSSIA re-derives both U (max d) and U' (max d') — the paper's
// complexity analysis (§6.1) accounts for exactly this per-update scan.
// The sift operations are hand-written (no container/heap) so pushes do
// not box candidates onto the heap; the backing array is pooled in
// searchScratch.
type candHeap []cand

func (h *candHeap) push(v cand) {
	*h = append(*h, v)
	items := *h
	i := len(items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if items[p].d >= items[i].d {
			break
		}
		items[p], items[i] = items[i], items[p]
		i = p
	}
}

// popMax removes the candidate with the largest exact distance.
func (h *candHeap) popMax() {
	items := *h
	n := len(items) - 1
	items[0] = items[n]
	*h = items[:n]
	items = items[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		big := l
		if r := l + 1; r < n && items[r].d > items[l].d {
			big = r
		}
		if items[i].d >= items[big].d {
			break
		}
		items[i], items[big] = items[big], items[i]
		i = big
	}
}

// maxDPr returns max d' over the held candidates.
func (h candHeap) maxDPr() float64 {
	mx := math.Inf(-1)
	for _, c := range h {
		if c.dpr > mx {
			mx = c.dpr
		}
	}
	return mx
}

// SearchApprox answers a k-NN query with the CSSIA algorithm (Alg. 3).
// Inter-cluster pruning runs in the projected space (revised pruning
// property 1, §5.3) with the revised bound U'; intra-cluster pruning is
// identical to CSSI (original space, bound U). Results are approximate:
// the projection contracts distances, so a cluster holding a true
// neighbor can be pruned when its projected bound looks too large.
func (x *Index) SearchApprox(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	return x.SearchApproxInto(nil, q, k, lambda, st)
}

// SearchApproxInto is SearchApprox appending the results to dst; like
// SearchInto it is allocation-free in steady state given sufficient dst
// capacity.
func (x *Index) SearchApproxInto(dst []knn.Result, q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	sc := x.getScratch()
	out := x.searchApproxWith(sc, dst, q, k, lambda, st)
	x.putScratch(sc)
	return out
}

func (x *Index) searchApproxWith(sc *searchScratch, dst []knn.Result, q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	// The scratch may be reused across queries by a SearchBatch worker;
	// the cluster order is rebuilt from empty each time.
	sc.order = sc.order[:0]
	var phase time.Time
	if sc.obs != nil {
		phase = time.Now()
	}
	qProj := sc.qProj
	x.pcaModel.TransformInto(qProj, q.Vec)

	x.fillSpatialCentroidDists(sc, q)
	// Semantic centroid distances in the projected space (m-dimensional,
	// much cheaper than CSSI's n-dimensional sort — the m·K·logK term of
	// Table 2).
	for t := range sc.dtqProj {
		sc.dtqProj[t] = x.space.SemanticProjVec(qProj, x.tCentProj[t])
	}

	// CSSIA's inter-cluster bounds live entirely in the projected space
	// (§5.3), so frontier entries are already final — refined from the
	// start, never re-pushed; the heap only supplies the lazy best-first
	// consumption order.
	for _, c := range x.clusters {
		sc.order = append(sc.order, orderedCluster{
			lb:      lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtqProj[c.t], x.tRadProj[c.t]),
			c:       c,
			refined: true,
		})
	}
	f := (*clusterFrontier)(&sc.order)
	f.heapify()
	if sc.obs != nil {
		sc.obs.ClustersTotal += int64(len(*f))
		sc.obs.OrderNanos += time.Since(phase).Nanoseconds()
		phase = time.Now()
	}

	cands := sc.cands[:0]
	tombs := x.deltaTombs()
	u := math.Inf(1)      // distance to current k-NN in the original space
	uPrime := math.Inf(1) // distance to current k-NN in the projected space
	// sc.dtq caches the original-space semantic centroid distances that
	// intra-cluster pruning needs, computed lazily per examined cluster.
	for t := range sc.dtqKnown {
		sc.dtqKnown[t] = false
	}

	for len(*f) > 0 {
		if len(cands) >= k && (*f)[0].lb >= uPrime {
			// Revised pruning property 1 (§5.3) in the projected space.
			f.pruneRemaining(st)
			break
		}
		if sc.budgetExpired() {
			break
		}
		e := f.pop()
		if st != nil {
			st.ClustersOrdered++
		}
		c := e.c
		if st != nil {
			st.ClustersExamined++
		}
		if !sc.dtqKnown[c.t] {
			sc.dtq[c.t] = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			sc.dtqKnown[c.t] = true
		}
		dtqC := sc.dtq[c.t]
		enclosed := sc.dsq[c.s] < x.sRad[c.s] && dtqC < x.tRad[c.t]
		dqC := lambda*sc.dsq[c.s] + (1-lambda)*dtqC
		for ei := range c.elems {
			e := &c.elems[ei]
			if !enclosed && len(cands) >= k {
				bound := lambda*e.ds + (1-lambda)*e.dt
				if dqC-bound > u {
					// Pruning property 2 (identical to CSSI, original
					// space).
					if st != nil {
						st.IntraPruned += int64(len(c.elems) - ei)
					}
					break
				}
			}
			if tombs != nil && tombs.get(e.idx) {
				continue
			}
			o := &x.objects[e.idx]
			if st != nil {
				st.VisitedObjects++
			}
			ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
			var dt float64
			if len(cands) >= k && lambda < 1 {
				// Early abandonment (see scanCluster): a candidate only
				// joins R with d < U, i.e. dt < (U − λ·ds)/(1−λ).
				dtBound := (u - lambda*ds) / (1 - lambda)
				var ok bool
				dt, ok = x.space.SemanticBound(st, q.Vec, o.Vec, dtBound)
				if !ok {
					if sc.obs != nil {
						sc.obs.EarlyAbandons++
					}
					continue
				}
			} else {
				dt = x.space.Semantic(st, q.Vec, o.Vec)
			}
			d := metric.Combine(lambda, ds, dt)
			if d < u || len(cands) < k {
				dpr := metric.Combine(lambda, ds, x.space.SemanticProjVec(qProj, x.projAt(e.idx)))
				cands.push(cand{id: o.ID, idx: e.idx, d: d, dpr: dpr})
				if len(cands) > k {
					cands.popMax()
				}
				if len(cands) == k {
					u = cands[0].d
					uPrime = cands.maxDPr()
				}
			}
		}
	}
	// The write overlay is scanned in full with the exact kernel: every
	// live overlay insert is offered to the candidate pool, so CSSIA's
	// recall over overlay inserts is never worse than over a compacted
	// base (and tombstoned base objects, skipped above, can never
	// resurface).
	var deltaSpent int64
	if d := x.delta; d != nil && d.liveCount > 0 {
		var td time.Time
		if sc.obs != nil {
			td = time.Now()
		}
		for pos := range d.objs {
			if d.dead.get(uint32(pos)) {
				continue
			}
			o := &d.objs[pos]
			if st != nil {
				st.VisitedObjects++
			}
			ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
			var dt float64
			if len(cands) >= k && lambda < 1 {
				dtBound := (u - lambda*ds) / (1 - lambda)
				var ok bool
				dt, ok = x.space.SemanticBound(st, q.Vec, o.Vec, dtBound)
				if !ok {
					if sc.obs != nil {
						sc.obs.EarlyAbandons++
					}
					continue
				}
			} else {
				dt = x.space.Semantic(st, q.Vec, o.Vec)
			}
			dd := metric.Combine(lambda, ds, dt)
			if dd < u || len(cands) < k {
				dpr := metric.Combine(lambda, ds, x.space.SemanticProjVec(qProj, d.projRow(uint32(pos))))
				cands.push(cand{id: o.ID, d: dd, dpr: dpr})
				if len(cands) > k {
					cands.popMax()
				}
				if len(cands) == k {
					u = cands[0].d
				}
			}
		}
		if sc.obs != nil {
			deltaSpent = time.Since(td).Nanoseconds()
			sc.obs.DeltaNanos += deltaSpent
		}
	}
	n := len(dst)
	for _, c := range cands {
		dst = append(dst, knn.Result{ID: c.id, Dist: c.d})
	}
	knn.SortResults(dst[n:])
	if sc.obs != nil {
		// DeltaNanos is disjoint from ScanNanos by contract: carve the
		// overlay window out of the scan window that encloses it here.
		sc.obs.ScanNanos += time.Since(phase).Nanoseconds() - deltaSpent
	}
	sc.cands = cands[:0]
	return dst
}
