package core

import "repro/internal/metric"

// clusterFrontier is a binary min-heap of orderedCluster keyed by lb —
// the lazy best-first replacement for the eager sortOrder of Alg. 2
// line 4 / Alg. 3 line 5. The query loop only ever consumes clusters in
// ascending lower-bound order until the k-NN bound cuts the rest off
// (Lemma 4.4), so a full O(K log K) sort over all Ks×Kt hybrid clusters
// does ordering work proportional to the index size; the heap does
// O(K) to establish the invariant (bottom-up heapify) and then
// O(log K) per cluster actually reached, making ordering cost
// proportional to what the bound lets the query visit.
//
// Laziness composes with the weak projected-space bound: entries may be
// pushed with a cheap weak bound (refined=false) and refined to the
// true bound only when popped. The invariant that keeps the best-first
// order admissible is weak(C) ≤ true(C) for every cluster C: a popped
// weak bound that refines to a true bound still ≤ the next head is
// provably the global minimum true bound (every remaining entry's key
// already exceeds it, and keys only under-estimate), so the cluster can
// be consumed immediately; otherwise it is re-pushed with its true
// bound and refined at most once.
//
// The backing array is the pooled searchScratch.order slice, so the
// heap allocates nothing in steady state. The sift operations are
// hand-written (no container/heap) to avoid interface boxing, matching
// candHeap.
type clusterFrontier []orderedCluster

// heapify establishes the min-heap invariant bottom-up in O(len(f)).
func (f clusterFrontier) heapify() {
	for i := len(f)/2 - 1; i >= 0; i-- {
		f.siftDown(i)
	}
}

func (f clusterFrontier) siftDown(i int) {
	n := len(f)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && f[r].lb < f[l].lb {
			small = r
		}
		if f[i].lb <= f[small].lb {
			return
		}
		f[i], f[small] = f[small], f[i]
		i = small
	}
}

// pop removes and returns the entry with the smallest lower bound.
// The caller must ensure the frontier is non-empty.
func (f *clusterFrontier) pop() orderedCluster {
	h := *f
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	h.siftDown(0)
	*f = h
	return top
}

// push inserts e, restoring the heap invariant in O(log len(f)). The
// backing array retains its capacity across pops, so a refine-re-push
// never reallocates.
func (f *clusterFrontier) push(e orderedCluster) {
	h := append(*f, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].lb <= h[i].lb {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	*f = h
}

// pruneRemaining charges every entry still in the frontier to the
// inter-cluster pruning counters: called when the head's lower bound
// reaches the k-NN bound U, at which point every remaining entry —
// refined or not, since weak bounds only under-estimate — provably
// cannot contain a result (Lemma 4.4).
func (f clusterFrontier) pruneRemaining(st *metric.Stats) {
	if st == nil {
		return
	}
	for i := range f {
		st.ClustersPruned++
		st.InterPruned += int64(len(f[i].c.elems))
	}
}
