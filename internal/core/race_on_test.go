//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. Under
// race, sync.Pool intentionally bypasses its caches to widen coverage,
// so zero-allocation assertions cannot hold and are skipped.
const raceEnabled = true
