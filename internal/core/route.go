package core

import (
	"math"
	"slices"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/route"
)

// Learned cluster routing. A small logistic model (internal/route) is
// trained at build time from sampled self-queries to predict which
// hybrid clusters contain true top-k results, from exactly the
// centroid-level signals every query already computes for the weak
// lower bound — so scoring all K clusters costs a few multiply-adds
// per cluster on top of work the search was doing anyway. Two
// consumers:
//
//   - Exact search (SearchOptions.Route): routePrefix moves the R
//     highest-scoring clusters to the front of the visit order and the
//     search scans them before falling back to the admissible
//     best-first frontier over the rest. Results stay bit-identical
//     (see searchWithSeed): a routed cluster is only skipped when its
//     true lower bound already exceeds the current k-NN bound — the
//     same Lemma 4.4 test the frontier applies — and everything else
//     is scanned by the exact scan. The model only changes the order
//     in which the k-th distance tightens.
//   - Approximate search (Route+Approx): searchRoutedWith visits
//     clusters in descending predicted probability until the requested
//     share of the total predicted probability mass is covered — the
//     CSSIA idea with the geometric projected bound replaced by the
//     trained predictor, and recall tuned by RouteTarget instead of a
//     projection dimension.
//
// The model is immutable after training: COW clones and snapshots
// share it by pointer, Rebuild/RebuildFresh retrain it (they rebuild
// through Build), and persistence stores the weights (persist v4) with
// retrain-on-load for older files.

// routeFeatureCount is the width of the per-(query,cluster) feature
// vector. Keyword overlap is deliberately absent: the keyword-filtered
// path bypasses cluster routing entirely (it scans posting lists, not
// clusters), so the signal would never be consulted.
const routeFeatureCount = 7

// DefaultRouteTarget is the probability-mass coverage searchRoutedWith
// uses when the request leaves RouteTarget zero. The trained model is
// recalibrated (Platt scaling, see route.Train) so predicted
// probabilities are honest; covering 90% of the predicted mass holds
// recall@10 ≥ 0.95 on the benchmark workloads with a comfortable
// margin while visiting a fraction of the clusters the exact search
// examines (the routing experiment records the full recall/latency
// curve).
const DefaultRouteTarget = 0.9

const (
	// routedPrefixCap bounds how many predicted-best clusters the exact
	// mode scans ahead of the admissible frontier. Enough to tighten
	// the k-th distance near its final value in one burst; small enough
	// that a mispredicting model wastes little work (the skipped-if-
	// provably-excluded test still applies to every prefix cluster).
	routedPrefixCap = 16
	// routeTrainQueries/routeTrainK size the self-query training set.
	routeTrainQueries = 64
	routeTrainK       = 10
	// routeTrainMinLive skips training tiny indexes where routing can
	// not beat simply scanning (and single-class labels are likely).
	routeTrainMinLive = 64
	// routeNegPerQuery bounds the negatives kept per training query
	// (deterministic stride subsampling): full negative sets would
	// swamp both the class balance and the training cost at large K.
	routeNegPerQuery = 48
)

// routeTrainLambdas are the λ values the self-queries train across, so
// the λ feature sees the span of mixes instead of a point mass.
var routeTrainLambdas = [...]float64{0.25, 0.5, 0.75}

// routeFeats assembles one cluster's feature vector. dtEst is the
// semantic ordering estimate the current path uses (the weak projected
// lower bound under the lazy ordering, the true centroid distance
// otherwise) — training uses the same estimate the queries will, so
// the model never sees a distribution it was not fitted on.
func routeFeats(f []float64, lambda, dsq, sRad, dtEst, tRad, lb, sizeFrac float64) {
	f[0] = dsq
	f[1] = dsq - sRad // spatial slack: negative inside the ball
	f[2] = dtEst
	f[3] = dtEst - tRad // semantic slack
	f[4] = lb
	f[5] = sizeFrac
	f[6] = lambda
}

// routeDtEst returns the semantic ordering estimate for side-cluster t
// from whichever bound fill ran (see routeFeats).
func (sc *searchScratch) routeDtEst(lazy bool, t int) float64 {
	if lazy {
		return sc.dtqProj[t]
	}
	return sc.dtq[t]
}

// routeTargetOrDefault normalizes a request's RouteTarget.
func routeTargetOrDefault(t float64) float64 {
	if t <= 0 {
		return DefaultRouteTarget
	}
	if t > 1 {
		return 1
	}
	return t
}

// trainRouter fits the routing model from deterministic self-queries:
// stored objects are replayed as queries, the exact top-k labels the
// clusters that held a result, and every cluster contributes a feature
// row (negatives subsampled by a fixed stride). Returns nil — routing
// then falls back to the unrouted algorithms — when the index is too
// small to benefit or the training set is degenerate. Runs after the
// cluster arrays are built: the labeling queries are ordinary exact
// searches against the finished index.
func (x *Index) trainRouter() *route.Model {
	if x.live < routeTrainMinLive || len(x.clusters) < 4 {
		return nil
	}
	nq := routeTrainQueries
	if nq > x.live {
		nq = x.live
	}
	// Deterministic sample of live objects, keyed by the build seed
	// (same discipline as sampleRows).
	liveIdx := make([]uint32, 0, x.live)
	for i := range x.objects {
		if !x.deleted.get(uint32(i)) {
			liveIdx = append(liveIdx, uint32(i))
		}
	}
	stride := len(liveIdx) / nq
	if stride < 1 {
		stride = 1
	}
	start := int(x.cfg.Seed % uint64(stride))

	lazy := x.lazyOrderable()
	invN := 1.0 / float64(x.live)
	var rows [][]float64
	var labels []bool
	pos := make(map[*hybrid]bool, routeTrainK)
	results := make([]knn.Result, 0, routeTrainK)

	sc := x.getScratch()
	defer x.putScratch(sc)
	qi := 0
	for i := start; i < len(liveIdx) && qi < nq; i += stride {
		o := &x.objects[liveIdx[i]]
		q := dataset.Object{X: o.X, Y: o.Y, Vec: o.Vec}
		lambda := routeTrainLambdas[qi%len(routeTrainLambdas)]
		qi++

		// Exact answer → positive clusters. The query is a stored
		// object, so its own cluster is always positive (distance 0).
		results = x.SearchInto(results[:0], &q, routeTrainK, lambda, nil)
		clear(pos)
		for _, r := range results {
			idx, ok := x.idToIdx[r.ID]
			if !ok {
				continue
			}
			if c := x.clusterIdx[[2]int{x.sAssign[idx], x.tAssign[idx]}]; c != nil {
				pos[c] = true
			}
		}
		if len(pos) == 0 {
			continue
		}

		// Feature rows from the same bound fills the queries use.
		x.fillSpatialCentroidDists(sc, &q)
		if lazy {
			x.fillProjLowerBounds(sc, &q)
		} else {
			x.fillSemanticCentroidDists(sc, &q)
		}
		negStride := (len(x.clusters) + routeNegPerQuery - 1) / routeNegPerQuery
		if negStride < 1 {
			negStride = 1
		}
		negSeen := 0
		for _, c := range x.clusters {
			label := pos[c]
			if !label {
				negSeen++
				if negSeen%negStride != 0 {
					continue
				}
			}
			dtEst := sc.routeDtEst(lazy, c.t)
			lb := lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], dtEst, x.tRad[c.t])
			f := make([]float64, routeFeatureCount)
			routeFeats(f, lambda, sc.dsq[c.s], x.sRad[c.s], dtEst, x.tRad[c.t], lb, float64(len(c.elems))*invN)
			rows = append(rows, f)
			labels = append(labels, label)
		}
	}
	m, err := route.Train(rows, labels, route.TrainConfig{})
	if err != nil {
		return nil // degenerate set: run unrouted
	}
	return m
}

// Router exposes the trained routing model (nil when the index is too
// small or training was degenerate); tests and the persistence layer
// read it.
func (x *Index) Router() *route.Model { return x.router }

// setRouter installs a trained model together with its folded
// inference form — the only shape the query path touches, so scoring a
// cluster is one fused multiply-add per feature.
func (x *Index) setRouter(m *route.Model) {
	x.router = m
	if m != nil {
		x.routerFold = m.Fold()
	} else {
		x.routerFold = route.Folded{}
	}
}

// routePrefix scores every entry of sc.order with the learned router
// and moves the R best to the front in descending-score order,
// returning R. Scores are raw logits (monotone in the probability).
// One pass: a tiny insertion-sorted top-R candidate list replaces the
// old O(R·n) selection scan, and ties keep the earlier position so the
// routed order is deterministic.
func (x *Index) routePrefix(sc *searchScratch, lambda float64, lazy bool) int {
	n := len(sc.order)
	r := routedPrefixCap
	if r > n {
		r = n
	}
	if r == 0 {
		return 0
	}
	scores := growSlice(sc.routeScore, n)
	sc.routeScore = scores
	var fv [routeFeatureCount]float64
	invN := 1.0
	if x.live > 0 {
		invN = 1.0 / float64(x.live)
	}
	// selIdx holds the current top-R positions, descending score (ties:
	// earlier position first, because a later equal score never
	// displaces an earlier one).
	var selIdx [routedPrefixCap]int
	sel := 0
	for i := range sc.order {
		e := &sc.order[i]
		c := e.c
		dtEst := sc.routeDtEst(lazy, c.t)
		routeFeats(fv[:], lambda, sc.dsq[c.s], x.sRad[c.s], dtEst, x.tRad[c.t], e.lb, float64(len(c.elems))*invN)
		s := x.routerFold.Logit(fv[:])
		scores[i] = s
		if sel == r && s <= scores[selIdx[sel-1]] {
			continue
		}
		if sel < r {
			sel++
		}
		j := sel - 1
		for ; j > 0 && scores[selIdx[j-1]] < s; j-- {
			selIdx[j] = selIdx[j-1]
		}
		selIdx[j] = i
	}
	// Stable in-place partition: selected entries to the front in
	// selection order, everything else keeps its relative order behind
	// them. Writing the tail back-to-front never clobbers an unread
	// entry because each write lands at or past the read position.
	var prefix [routedPrefixCap]orderedCluster
	for j := 0; j < sel; j++ {
		prefix[j] = sc.order[selIdx[j]]
	}
	var byPos [routedPrefixCap]int
	copy(byPos[:sel], selIdx[:sel])
	slices.Sort(byPos[:sel])
	w, p := n, sel-1
	for i := n - 1; i >= 0; i-- {
		if p >= 0 && byPos[p] == i {
			p--
			continue
		}
		w--
		sc.order[w] = sc.order[i]
	}
	copy(sc.order[:sel], prefix[:sel])
	return sel
}

// searchRoutedWith is the routed approximate mode: clusters are
// visited in descending predicted probability until the visited share
// of the total predicted probability mass reaches target (and the heap
// holds k results), and every visited cluster is scanned exactly. The
// answer is the exact top-k over the union of visited clusters, so
// recall is governed purely by cluster coverage — the knob target
// trades it against latency, ablated against CSSIA by the routing
// experiment.
func (x *Index) searchRoutedWith(sc *searchScratch, dst []knn.Result, q *dataset.Object, k int, lambda, target float64, st *metric.Stats) []knn.Result {
	sc.order = sc.order[:0]
	sc.quantQ = false
	var phase time.Time
	if sc.obs != nil {
		phase = time.Now()
	}
	x.fillSpatialCentroidDists(sc, q)
	lazy := x.lazyOrderable()
	if lazy {
		x.fillProjLowerBounds(sc, q)
	} else {
		x.fillSemanticCentroidDists(sc, q)
	}

	nc := len(x.clusters)
	probs := growSlice(sc.routeScore, nc)
	sc.routeScore = probs
	keys := growSlice(sc.routeKey, nc)
	sc.routeKey = keys
	var fv [routeFeatureCount]float64
	invN := 1.0
	if x.live > 0 {
		invN = 1.0 / float64(x.live)
	}
	total := 0.0
	for i, c := range x.clusters {
		dtEst := sc.routeDtEst(lazy, c.t)
		lb := lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], dtEst, x.tRad[c.t])
		routeFeats(fv[:], lambda, sc.dsq[c.s], x.sRad[c.s], dtEst, x.tRad[c.t], lb, float64(len(c.elems))*invN)
		p := x.routerFold.Predict(fv[:])
		probs[i] = p
		// Pack (probability, cluster position) into one sortable word:
		// p is non-negative, so its float32 bit pattern orders like its
		// value and the complement orders descending; the position in
		// the low half makes ties deterministic (build order). Sorting
		// primitive keys is several times faster than a comparator sort
		// over structs.
		keys[i] = uint64(^math.Float32bits(float32(p)))<<32 | uint64(uint32(i))
		total += p
	}
	// Lazy selection: a binary min-heap over the packed keys yields
	// clusters in descending probability one pop at a time. The visit
	// loop usually stops after a small prefix, so heapify O(n) + m·log n
	// pops beats sorting all n keys.
	for i := nc/2 - 1; i >= 0; i-- {
		siftDownU64(keys, i, nc)
	}
	if sc.obs != nil {
		el := time.Since(phase).Nanoseconds()
		sc.obs.ClustersTotal += int64(nc)
		sc.obs.RouteNanos += el
		sc.obs.OrderNanos += el
		phase = time.Now()
	}

	h := &sc.heap
	h.Reset(k)
	mass := 0.0
	left := nc
	for left > 0 {
		if _, full := h.Bound(); full && mass >= target*total {
			if st != nil {
				// Skipped by routing policy, not by an admissible bound;
				// still accounted as skipped work for the read-efficiency
				// metrics.
				for j := 0; j < left; j++ {
					st.ClustersPruned++
					st.InterPruned += int64(len(x.clusters[uint32(keys[j])].elems))
				}
			}
			break
		}
		if sc.budgetExpired() {
			break
		}
		ci := uint32(keys[0])
		left--
		keys[0] = keys[left]
		siftDownU64(keys[:left], 0, left)
		mass += probs[ci]
		c := x.clusters[ci]
		if st != nil {
			st.ClustersRouted++
		}
		if !sc.dtqKnown[c.t] {
			sc.dtq[c.t] = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			sc.dtqKnown[c.t] = true
		}
		x.scanCluster(sc, q, lambda, c, sc.dsq[c.s], sc.dtq[c.t], h, st)
	}
	if sc.obs != nil {
		el := time.Since(phase).Nanoseconds()
		sc.obs.ScanNanos += el
		sc.flushQuantTiming(el)
	}
	// The write overlay is scanned in full (exactly): routed recall stays
	// governed by base-cluster coverage alone, and overlay inserts are
	// never missed. Scanned after the ScanNanos window closes — the
	// overlay accrues to the disjoint DeltaNanos phase inside scanDelta.
	x.scanDelta(sc, q, lambda, h, st)
	return h.AppendSorted(dst)
}

// siftDownU64 restores the min-heap property of keys[:n] from root i.
func siftDownU64(keys []uint64, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && keys[r] < keys[l] {
			m = r
		}
		if keys[i] <= keys[m] {
			return
		}
		keys[i], keys[m] = keys[m], keys[i]
		i = m
	}
}
