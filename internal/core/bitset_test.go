package core

import (
	"math/rand"
	"testing"
)

// TestBitsetEquivalence drives a bitset and a []bool reference through
// the same random op stream and checks every observable agrees.
func TestBitsetEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 1000
	ref := make([]bool, 0, n)
	b := newBitset(0)
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 && len(ref) < n: // append a bit
			ref = append(ref, false)
			b = b.grown(len(ref))
		case op == 1 && len(ref) > 0: // set
			i := uint32(rng.Intn(len(ref)))
			ref[i] = true
			b.set(i)
		case op == 2 && len(ref) > 0: // unset
			i := uint32(rng.Intn(len(ref)))
			ref[i] = false
			b.unset(i)
		case len(ref) > 0: // probe
			i := uint32(rng.Intn(len(ref)))
			if b.get(i) != ref[i] {
				t.Fatalf("step %d: bit %d = %v, reference %v", step, i, b.get(i), ref[i])
			}
		}
	}
	want := 0
	for i, v := range ref {
		if b.get(uint32(i)) != v {
			t.Fatalf("final: bit %d = %v, reference %v", i, b.get(uint32(i)), v)
		}
		if v {
			want++
		}
	}
	if got := b.count(); got != want {
		t.Fatalf("count() = %d, reference %d", got, want)
	}
	// Round trip through the persisted []bool layout.
	back := bitsetFromBools(b.bools(len(ref)), len(ref))
	for i := range ref {
		if back.get(uint32(i)) != ref[i] {
			t.Fatalf("round trip: bit %d = %v, reference %v", i, back.get(uint32(i)), ref[i])
		}
	}
}

// TestBitsetCloneIsolation checks a clone's writes never leak into the
// original (the property the COW discipline rests on).
func TestBitsetCloneIsolation(t *testing.T) {
	b := newBitset(130)
	b.set(5)
	b.set(129)
	c := b.clone()
	c.set(6)
	c.unset(5)
	if !b.get(5) || b.get(6) {
		t.Fatal("clone write mutated the original")
	}
	if !c.get(6) || c.get(5) || !c.get(129) {
		t.Fatal("clone lost its own state")
	}
	// Growing a clone (exact capacity) must reallocate, never extend
	// shared backing in place.
	g := b.clone().grown(64 * 10)
	g.set(600)
	if len(b) != 3 {
		t.Fatalf("grow extended the original: %d words", len(b))
	}
}
