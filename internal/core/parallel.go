package core

import (
	"runtime"
	"sync"
)

// parallelFor splits [0,n) into contiguous chunks and runs fn(lo,hi) on
// up to workers goroutines (workers <= 0 selects GOMAXPROCS). It is the
// fan-out primitive behind the parallel parts of index construction —
// the paper notes (§7.5) that K-Means and hybrid-cluster formation
// parallelize readily.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// maxPerPartition folds a per-index value into per-partition maxima in
// parallel: for each i in [0,n), value(i) is accumulated into
// out[part(i)] under max. Each worker keeps private partials that are
// merged at the end, so no locking is needed in the hot loop.
func maxPerPartition(n, parts, workers int, part func(i int) int, value func(i int) float64) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	partials := make([][]float64, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		local := make([]float64, parts)
		partials[w] = local
		wg.Add(1)
		go func(lo, hi int, local []float64) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				p := part(i)
				if v := value(i); v > local[p] {
					local[p] = v
				}
			}
		}(lo, hi, local)
		w++
	}
	wg.Wait()
	out := make([]float64, parts)
	for _, local := range partials[:w] {
		for p, v := range local {
			if v > out[p] {
				out[p] = v
			}
		}
	}
	return out
}
