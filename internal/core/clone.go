package core

import "repro/internal/dataset"

// Copy-on-write cloning (the engine behind the RCU-style snapshot
// publication in the public ConcurrentIndex): CloneForWrite produces a
// new Index value that SHARES every structure queries read but writers
// never mutate in place — the vector/projection arenas, the object
// slice, the centroid tables, the cluster assignments and the hybrid
// clusters themselves — and COPIES only the small mutable metadata a
// maintenance operation may write into (radii, membership-list headers,
// the cluster directory, the deleted bitmap and the ID map).
//
// The safety argument has two halves:
//
//   - Interior writes (slots readers of the parent can see) only ever
//     happen to structures the clone owns: the eager copies below, plus
//     lazily-owned pieces (cowHybrid, ensureOwnedObjects, removeIdxCOW)
//     that mutations acquire right before writing.
//   - Append-only growth (objects, deleted, sAssign/tAssign, the
//     arenas, side-membership lists) may land in backing arrays shared
//     with the parent, but always at offsets >= the parent's length.
//     Readers never index past their own snapshot's length, and writers
//     are serialized, so a slot is written at most once before the
//     snapshot containing it is published (an atomic-pointer store,
//     which orders those writes before any reader's loads).
//
// A clone must be built, mutated and published by one goroutine at a
// time (ConcurrentIndex serializes writers on a mutex); published
// snapshots must never be mutated again except by cloning them anew.
type cowState struct {
	// ownsObjects marks that the objects slice has been copied, so
	// interior writes (arena-growth repointing) are safe.
	ownsObjects bool
	// ownedHybrids holds the hybrid clusters this clone has already
	// replaced with private copies; mutations may write them in place.
	ownedHybrids map[*hybrid]bool
}

// CloneForWrite returns a write-isolated copy of the index: applying
// Insert/Delete/Update to the clone never mutates state visible through
// x, so readers may keep using x (lock-free) while the clone is
// prepared and then published in its place. The cost is O(n) for the
// deleted bitmap and the ID map plus O(Ks+Kt+|clusters|) slice-header
// and directory copies — the arenas, objects, centroids and per-cluster
// arrays are shared until a mutation actually touches them.
func (x *Index) CloneForWrite() *Index {
	nx := new(Index)
	*nx = *x

	// The struct copy above would share a write overlay's pointer; the
	// eager clone mutates the base structures directly, so it starts
	// flat. Callers folding an overlay replay it themselves (Compact).
	nx.delta = nil
	nx.deleted = x.deleted.clone()
	nx.idToIdx = make(map[uint32]uint32, len(x.idToIdx))
	for id, i := range x.idToIdx {
		nx.idToIdx[id] = i
	}
	nx.sRad = append([]float64(nil), x.sRad...)
	nx.tRad = append([]float64(nil), x.tRad...)
	nx.tRadProj = append([]float64(nil), x.tRadProj...)
	nx.sMembers = append([][]uint32(nil), x.sMembers...)
	nx.tMembers = append([][]uint32(nil), x.tMembers...)
	nx.clusters = append([]*hybrid(nil), x.clusters...)
	nx.clusterIdx = make(map[[2]int]*hybrid, len(x.clusterIdx))
	for key, c := range x.clusterIdx {
		nx.clusterIdx[key] = c
	}

	// The quant arena struct is behind a pointer, so its slice headers
	// are copied explicitly: appendQuantRow on the clone then grows the
	// clone's own headers (past the parent's length, or into reallocated
	// backing) instead of mutating state the parent's readers see.
	if x.quant != nil {
		q := *x.quant
		nx.quant = &q
	}

	nx.cow = &cowState{ownedHybrids: make(map[*hybrid]bool)}
	return nx
}

// ensureOwnedObjects copies the objects slice before the first interior
// write (arena regrowth repoints every stored Vec view). Append-only
// writes don't need it: they land past the parent's length.
func (x *Index) ensureOwnedObjects() {
	if x.cow == nil || x.cow.ownsObjects {
		return
	}
	x.objects = append([]dataset.Object(nil), x.objects...)
	x.cow.ownsObjects = true
}

// cowHybrid returns a hybrid cluster safe to mutate in place: c itself
// outside COW mode (or when this clone already owns it), otherwise a
// private copy spliced into the clone's cluster directory in c's stead.
// The members slice is copied with one slot of headroom (the common
// mutation is a single insert); elems is left shared because every
// mutation rebuilds it from the members anyway.
func (x *Index) cowHybrid(c *hybrid) *hybrid {
	if x.cow == nil || x.cow.ownedHybrids[c] {
		return c
	}
	nc := &hybrid{
		s:       c.s,
		t:       c.t,
		members: append(make([]member, 0, len(c.members)+1), c.members...),
		elems:   c.elems,
		codes:   c.codes,
		resid:   c.resid,
	}
	x.clusterIdx[[2]int{c.s, c.t}] = nc
	for i, cc := range x.clusters {
		if cc == c {
			x.clusters[i] = nc
			break
		}
	}
	x.cow.ownedHybrids[nc] = true
	return nc
}

// markOwnedHybrid registers a hybrid created by this clone so later
// mutations in the same write batch skip the copy.
func (x *Index) markOwnedHybrid(c *hybrid) {
	if x.cow != nil {
		x.cow.ownedHybrids[c] = true
	}
}

// removeIdxCOW removes idx from a membership list. Outside COW mode it
// swap-removes in place; in COW mode it builds a fresh slice, because
// both the interior overwrite and the truncation-then-reappend pattern
// would corrupt the parent's view of a shared backing array.
func (x *Index) removeIdxCOW(list []uint32, idx uint32) []uint32 {
	if x.cow == nil {
		return removeIdx(list, idx)
	}
	for i, v := range list {
		if v != idx {
			continue
		}
		out := make([]uint32, len(list)-1)
		copy(out, list[:i])
		copy(out[i:], list[i+1:])
		return out
	}
	return list
}
