package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
)

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, workers := range []int{0, 1, 3, 8, 2000} {
			var count int64
			seen := make([]int32, n)
			parallelFor(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
					atomic.AddInt64(&count, 1)
				}
			})
			if count != int64(n) {
				t.Fatalf("n=%d workers=%d: visited %d", n, workers, count)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestMaxPerPartition(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	parts := []int{0, 1, 0, 1, 2, 2, 0, 1}
	for _, workers := range []int{1, 2, 5} {
		got := maxPerPartition(len(vals), 3, workers,
			func(i int) int { return parts[i] },
			func(i int) float64 { return vals[i] })
		want := []float64{4, 6, 9}
		for p := range want {
			if got[p] != want[p] {
				t.Fatalf("workers=%d partition %d: %v want %v", workers, p, got[p], want[p])
			}
		}
	}
}

func TestMaxPerPartitionEmpty(t *testing.T) {
	got := maxPerPartition(0, 3, 4, func(int) int { return 0 }, func(int) float64 { return 1 })
	for _, v := range got {
		if v != 0 {
			t.Fatalf("empty fold produced %v", got)
		}
	}
}

// The Workers knob must not change the built index: single-threaded and
// parallel builds answer identically.
func TestWorkersDoNotChangeResults(t *testing.T) {
	f1 := build(t, dataset.TwitterLike, 600, Config{Seed: 92, Workers: 1})
	f8 := build(t, dataset.TwitterLike, 600, Config{Seed: 92, Workers: 8})
	for qi := 0; qi < 5; qi++ {
		q := f1.ds.Objects[(qi*113+7)%f1.ds.Len()]
		a := f1.idx.Search(&q, 10, 0.5, nil)
		b := f8.idx.Search(&q, 10, 0.5, nil)
		sameResults(t, "workers", a, b)
	}
	if err := f8.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
