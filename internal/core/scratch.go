package core

import (
	"sync"
	"time"

	"repro/internal/knn"
	"repro/internal/obs"
	"repro/internal/vec"
)

// searchScratch holds every per-query buffer the query algorithms need.
// The buffers grow to the high-water mark of the index geometry (Ks, Kt,
// cluster count, k, m) and are then reused: in steady state a query
// performs zero heap allocations. Scratches live in the Index's
// sync.Pool, so concurrent queries each draw their own and SearchBatch
// workers keep one for a whole batch.
type searchScratch struct {
	// dsq[s] is the normalized spatial distance from q to spatial
	// centroid s (always filled eagerly: Ks cheap 2-D distances).
	dsq []float64
	// dtq[t] is the normalized original-space semantic distance from q
	// to semantic centroid t, filled lazily per visited cluster and
	// memoized; dtqKnown[t] marks the filled entries.
	dtq      []float64
	dtqKnown []bool
	// dtqProj[t] is a projected-space value per semantic centroid: the
	// normalized d't for CSSIA, or the weak lower bound on dtq that CSSI
	// orders clusters by (see fillProjLowerBounds).
	dtqProj []float64
	// qProj is the PCA projection of the query vector (length m).
	qProj []float32
	// order is the backing array of the best-first cluster frontier
	// (Alg. 2 line 4 / Alg. 3 line 5 made lazy; see clusterFrontier).
	order []orderedCluster
	// heap collects the k best results; cands is CSSIA's candidate
	// max-heap.
	heap  knn.Heap
	cands candHeap
	// Quantized-scan state. qAdj is the codebook-adjusted query q − lo
	// (length dim), filled lazily by the first quantized cluster scan of
	// a query and marked valid by quantQ; quantOff forces the float32
	// path for the current query; survivors and est are the pass-1
	// survivor list and per-element block scores of the quantized scans;
	// lut holds the per-query lookup tables of the QuantOnly bulk scan
	// (built once per query, reused across its clusters and across
	// pooled queries).
	qAdj      []float32
	quantQ    bool
	quantOff  bool
	survivors []quantSurvivor
	est       []float64
	lut       vec.SQ8LUT
	// Sampled quant-phase timing (explain/trace path only): the scans of
	// a query are counted in quantScans and every quantTimeSampleEvery-th
	// one is wall-timed into quantSampledNanos; flushQuantTiming scales
	// the sample into the query's QuantNanos when the scan phase closes.
	// Timing every scan individually costs two clock reads per examined
	// cluster, which dominates the tracer's overhead at realistic cluster
	// counts.
	quantScans        int64
	quantSampledNanos int64
	// Learned-routing state. routeOn arms the exact-reorder pre-pass
	// for the current query (set per query by searchOptionsWith, only
	// when the index has a trained router); routeScore is the
	// per-cluster score/probability buffer of routePrefix and the
	// routed approximate mode; routeKey is the latter's packed
	// (probability, position) sort keys.
	routeOn    bool
	routeScore []float64
	routeKey   []uint64
	// Time-budget state (see deadline.go). budgeted arms the per-pop
	// budget polling for the current query — false (the normal case)
	// keeps every check a single untaken branch; deadline and cancel
	// are the query's absolute cut-off instant and cancellation signal;
	// pops counts cluster pops so the wall clock is read only every
	// deadlineCheckEvery pops; partial latches once the budget fires,
	// marking the returned heap a truncated (but admissible) prefix.
	budgeted bool
	deadline time.Time
	cancel   <-chan struct{}
	pops     int
	partial  bool
	// obs, when non-nil, receives the search-internals trace of the
	// current query (explain path only). nil — the normal case — keeps
	// every instrumentation site an untaken branch: zero extra work,
	// zero allocations.
	obs *obs.SearchStats
}

func newScratchPool() *sync.Pool {
	return &sync.Pool{New: func() interface{} { return new(searchScratch) }}
}

// getScratch draws a scratch from the pool and sizes its centroid-level
// buffers for the index's current geometry.
func (x *Index) getScratch() *searchScratch {
	sc := x.scratchPool.Get().(*searchScratch)
	sc.dsq = growSlice(sc.dsq, len(x.sCentX))
	sc.dtq = growSlice(sc.dtq, len(x.tCent))
	sc.dtqKnown = growSlice(sc.dtqKnown, len(x.tCent))
	sc.dtqProj = growSlice(sc.dtqProj, len(x.tCent))
	sc.qProj = growSlice(sc.qProj, x.m)
	if cap(sc.order) < len(x.clusters) {
		sc.order = make([]orderedCluster, 0, len(x.clusters))
	}
	sc.order = sc.order[:0]
	if x.quant != nil {
		sc.qAdj = growSlice(sc.qAdj, x.dim)
	}
	sc.quantQ = false
	sc.quantOff = false
	sc.quantScans = 0
	sc.quantSampledNanos = 0
	sc.routeOn = false
	sc.budgeted = false
	sc.deadline = time.Time{}
	sc.cancel = nil
	sc.pops = 0
	sc.partial = false
	sc.obs = nil
	return sc
}

// putScratch returns a scratch to the pool for reuse.
func (x *Index) putScratch(sc *searchScratch) {
	x.scratchPool.Put(sc)
}

// growSlice returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
