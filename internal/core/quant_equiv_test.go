package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/obs"
)

// identicalResults is sameResults strengthened to IDs: the quantized
// filter claims BIT-identical behavior (the kept set is a pure function
// of the offered candidates and every exclusion provably cannot be a
// result), so even tie-broken IDs must agree, not just distances.
func identicalResults(t *testing.T, ctx string, want, got []knn.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// The tentpole exactness property: the SQ8 filter+rerank scan answers
// every query bit-identically to the pure float32 path, across
// datasets, λ (including the spatial-only and semantic-only edges), k,
// and both member and perturbed non-member queries.
func TestQuantFilterBitIdentical(t *testing.T) {
	for _, kind := range []dataset.Kind{dataset.TwitterLike, dataset.YelpLike} {
		f := build(t, kind, 900, Config{Seed: 90})
		if f.idx.quant == nil {
			t.Fatal("fixture index has no quant arena")
		}
		for qi := 0; qi < 12; qi++ {
			q := f.ds.Objects[(qi*67+11)%f.ds.Len()]
			if qi%2 == 1 {
				// Perturbed non-member query: off-grid location and a
				// vector between two stored ones.
				other := f.ds.Objects[(qi*131+29)%f.ds.Len()]
				q.X = (q.X + other.X) / 2
				q.Y = (q.Y + other.Y) / 2
				vec := append([]float32(nil), q.Vec...)
				for i := range vec {
					vec[i] = (vec[i] + other.Vec[i]) / 2
				}
				q.Vec = vec
			}
			for _, lambda := range []float64{0, 0.2, 0.5, 0.8, 1} {
				for _, k := range []int{1, 10, 40} {
					want := f.idx.SearchOptionsInto(nil, &q, k, lambda, SearchOptions{Quant: QuantOff}, nil)
					got := f.idx.SearchOptionsInto(nil, &q, k, lambda, SearchOptions{}, nil)
					identicalResults(t, "quant filter", want, got)
				}
			}
		}
	}
}

// Bit-identity must survive maintenance churn: inserts extend the quant
// arena with the build-time codebook (clamping absorbed into stored
// residuals), deletes rebuild cluster code blocks.
func TestQuantBitIdenticalUnderMaintenance(t *testing.T) {
	f := build(t, dataset.TwitterLike, 600, Config{Seed: 91})
	// Delete a swath, insert objects both in- and out-of-range of the
	// build-time codebook.
	for i := 0; i < 80; i++ {
		if err := f.idx.Delete(f.ds.Objects[i*3].ID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		nova := f.ds.Objects[i*5+1]
		nova.ID = uint32(100000 + i)
		nova.X *= 1.1
		vec := append([]float32(nil), nova.Vec...)
		if i%3 == 0 {
			// Push some dimensions outside the trained [lo, hi] range so
			// the clamped-encoding path is exercised.
			for j := range vec {
				vec[j] = vec[j]*3 + 2
			}
		}
		nova.Vec = vec
		if err := f.idx.Insert(nova); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 8; qi++ {
		q := f.ds.Objects[(qi*101+7)%f.ds.Len()]
		for _, lambda := range []float64{0.3, 0.6} {
			want := f.idx.SearchOptionsInto(nil, &q, 10, lambda, SearchOptions{Quant: QuantOff}, nil)
			got := f.idx.SearchOptionsInto(nil, &q, 10, lambda, SearchOptions{}, nil)
			identicalResults(t, "quant after churn", want, got)
		}
	}
}

// COW clones share the quant arena safely: queries against the parent
// snapshot answer identically before and after a clone mutates.
func TestQuantBitIdenticalAcrossClone(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 92})
	q := f.ds.Objects[13]
	before := f.idx.SearchOptionsInto(nil, &q, 10, 0.5, SearchOptions{}, nil)

	clone := f.idx.CloneForWrite()
	for i := 0; i < 40; i++ {
		nova := f.ds.Objects[i*7+2]
		nova.ID = uint32(200000 + i)
		if err := clone.Insert(nova); err != nil {
			t.Fatal(err)
		}
	}
	if err := clone.Delete(f.ds.Objects[3].ID); err != nil {
		t.Fatal(err)
	}

	after := f.idx.SearchOptionsInto(nil, &q, 10, 0.5, SearchOptions{}, nil)
	identicalResults(t, "parent after clone mutation", before, after)
	// And the clone itself stays exact.
	want := clone.SearchOptionsInto(nil, &q, 10, 0.5, SearchOptions{Quant: QuantOff}, nil)
	got := clone.SearchOptionsInto(nil, &q, 10, 0.5, SearchOptions{}, nil)
	identicalResults(t, "clone quant filter", want, got)
}

// The seeded entry point (the sharded gather chain) preserves
// bit-identity too.
func TestQuantSeededBitIdentical(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{Seed: 93})
	q := f.ds.Objects[21]
	seed := f.idx.Search(&q, 5, 0.4, nil)
	want := f.idx.SearchOptionsSeededInto(nil, seed, &q, 10, 0.4, SearchOptions{Quant: QuantOff}, nil)
	got := f.idx.SearchOptionsSeededInto(nil, seed, &q, 10, 0.4, SearchOptions{}, nil)
	identicalResults(t, "seeded quant", want, got)
}

// SearchBatchOptions agrees with per-query SearchOptionsInto in every
// quant mode.
func TestQuantBatchMatchesSingle(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{Seed: 94})
	queries := make([]dataset.Object, 30)
	for i := range queries {
		queries[i] = f.ds.Objects[(i*37+5)%f.ds.Len()]
	}
	for _, opts := range []SearchOptions{
		{},
		{Quant: QuantOff},
		{Approx: true, Quant: QuantOnly},
	} {
		batch, err := f.idx.SearchBatchOptions(queries, 10, 0.5, 4, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			single := f.idx.SearchOptionsInto(nil, &queries[i], 10, 0.5, opts, nil)
			identicalResults(t, "batch vs single", single, batch[i])
		}
	}
}

// QuantOnly is approximate but must stay well-formed (sorted, k
// results, live IDs) and reach high recall against the exact answer at
// the default rerank multiplier.
func TestQuantOnlyRecall(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1000, Config{Seed: 95})
	const k = 10
	hits, total := 0, 0
	for qi := 0; qi < 20; qi++ {
		q := f.ds.Objects[(qi*53+9)%f.ds.Len()]
		exact := f.idx.Search(&q, k, 0.5, nil)
		approx := f.idx.SearchOptionsInto(nil, &q, k, 0.5, SearchOptions{Approx: true, Quant: QuantOnly}, nil)
		if len(approx) != k {
			t.Fatalf("query %d: got %d results, want %d", qi, len(approx), k)
		}
		for i := 1; i < len(approx); i++ {
			if approx[i].Dist < approx[i-1].Dist {
				t.Fatalf("query %d: results not sorted", qi)
			}
		}
		in := make(map[uint32]bool, k)
		for _, r := range exact {
			in[r.ID] = true
		}
		for _, r := range approx {
			if in[r.ID] {
				hits++
			}
		}
		total += k
	}
	if recall := float64(hits) / float64(total); recall < 0.95 {
		t.Fatalf("QuantOnly recall@%d = %.3f, want >= 0.95", k, recall)
	}
}

// Raising the rerank multiplier must not lower recall below the
// default's, and a huge multiplier converges to near-exact.
func TestQuantOnlyRerankConverges(t *testing.T) {
	f := build(t, dataset.TwitterLike, 800, Config{Seed: 96})
	const k = 10
	recallAt := func(rerank int) float64 {
		hits, total := 0, 0
		for qi := 0; qi < 15; qi++ {
			q := f.ds.Objects[(qi*41+3)%f.ds.Len()]
			exact := f.idx.Search(&q, k, 0.5, nil)
			approx := f.idx.SearchOptionsInto(nil, &q, k, 0.5,
				SearchOptions{Approx: true, Quant: QuantOnly, QuantRerank: rerank}, nil)
			in := make(map[uint32]bool, k)
			for _, r := range exact {
				in[r.ID] = true
			}
			for _, r := range approx {
				if in[r.ID] {
					hits++
				}
			}
			total += k
		}
		return float64(hits) / float64(total)
	}
	if r := recallAt(40); r < 0.99 {
		t.Fatalf("recall at rerank=40 is %.3f, want >= 0.99", r)
	}
}

// The quant observability contract: QuantAuto populates the new
// counters, QuantOff leaves them zero, and the traced results stay
// bit-identical to the untraced call.
func TestQuantExplainCounters(t *testing.T) {
	f := build(t, dataset.TwitterLike, 800, Config{Seed: 97})
	q := f.ds.Objects[31]

	var es obs.SearchStats
	got := f.idx.SearchExplainOptionsInto(nil, &q, 10, 0.5, SearchOptions{}, &es)
	want := f.idx.SearchOptionsInto(nil, &q, 10, 0.5, SearchOptions{}, nil)
	identicalResults(t, "explained quant", want, got)
	if es.QuantPruned+es.QuantReranked == 0 {
		t.Fatal("QuantAuto trace shows no quantized filter activity")
	}
	if es.QuantNanos <= 0 {
		t.Fatal("QuantAuto trace has no quant phase time")
	}
	if es.QuantNanos > es.ScanNanos {
		t.Fatalf("QuantNanos %d exceeds ScanNanos %d (must be a subset)", es.QuantNanos, es.ScanNanos)
	}

	var off obs.SearchStats
	f.idx.SearchExplainOptionsInto(nil, &q, 10, 0.5, SearchOptions{Quant: QuantOff}, &off)
	if off.QuantPruned != 0 || off.QuantReranked != 0 || off.QuantNanos != 0 {
		t.Fatalf("QuantOff trace carries quant counters: %+v", off.Stats)
	}

	var only obs.SearchStats
	f.idx.SearchExplainOptionsInto(nil, &q, 10, 0.5, SearchOptions{Approx: true, Quant: QuantOnly}, &only)
	if only.QuantReranked == 0 {
		t.Fatal("QuantOnly trace shows no rerank activity")
	}
}

// Quantization is disabled for the angular semantic metric (the bound
// pair is Euclidean); searches still answer, off the float32 path.
func TestQuantDisabledForAngular(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 300, Dim: 32, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpaceWithSemantic(ds, metric.AngularSemantic)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, sp, Config{Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	if idx.quant != nil {
		t.Fatal("angular index built a quant arena")
	}
	q := ds.Objects[5]
	want := idx.SearchOptionsInto(nil, &q, 10, 0.5, SearchOptions{Quant: QuantOff}, nil)
	got := idx.SearchOptionsInto(nil, &q, 10, 0.5, SearchOptions{}, nil)
	identicalResults(t, "angular fallback", want, got)
}

// DisableQuant yields a quant-free index whose results match a
// quantized index bit for bit (the config only removes the filter).
func TestDisableQuantConfig(t *testing.T) {
	on := build(t, dataset.TwitterLike, 400, Config{Seed: 99})
	off := build(t, dataset.TwitterLike, 400, Config{Seed: 99, DisableQuant: true})
	if off.idx.quant != nil {
		t.Fatal("DisableQuant index built a quant arena")
	}
	for qi := 0; qi < 5; qi++ {
		q := on.ds.Objects[(qi*89+17)%on.ds.Len()]
		identicalResults(t, "config off",
			off.idx.Search(&q, 10, 0.5, nil),
			on.idx.Search(&q, 10, 0.5, nil))
	}
}
