package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// Ablated searches must all return the exact result — pruning only
// removes non-results.
func TestAblationsAreExact(t *testing.T) {
	f := build(t, dataset.TwitterLike, 900, Config{Seed: 60})
	combos := []AblationOptions{
		{},
		{DisableInterCluster: true},
		{DisableIntraCluster: true},
		{DisableClusterOrder: true},
		{DisableInterCluster: true, DisableIntraCluster: true},
		{DisableInterCluster: true, DisableIntraCluster: true, DisableClusterOrder: true},
	}
	for _, lambda := range []float64{0.2, 0.5, 0.9} {
		q := f.ds.Objects[44]
		want := f.sc.Search(&q, 10, lambda, nil)
		for _, opts := range combos {
			got := f.idx.SearchAblated(&q, 10, lambda, opts, nil)
			sameResults(t, "ablated", want, got)
		}
	}
}

// Disabling pruning must strictly increase visited objects (on data where
// the full algorithm prunes at all).
func TestAblationVisitsMore(t *testing.T) {
	f := build(t, dataset.TwitterLike, 2000, Config{Seed: 61})
	q := f.ds.Objects[17]
	var full, noInter, noIntra, none metric.Stats
	f.idx.SearchAblated(&q, 10, 0.5, AblationOptions{}, &full)
	f.idx.SearchAblated(&q, 10, 0.5, AblationOptions{DisableInterCluster: true}, &noInter)
	f.idx.SearchAblated(&q, 10, 0.5, AblationOptions{DisableIntraCluster: true}, &noIntra)
	f.idx.SearchAblated(&q, 10, 0.5, AblationOptions{DisableInterCluster: true, DisableIntraCluster: true}, &none)
	if none.VisitedObjects != int64(f.ds.Len()) {
		t.Fatalf("fully ablated search visited %d of %d", none.VisitedObjects, f.ds.Len())
	}
	if full.VisitedObjects > noInter.VisitedObjects || full.VisitedObjects > noIntra.VisitedObjects {
		t.Fatalf("pruning did not reduce visits: full=%d noInter=%d noIntra=%d",
			full.VisitedObjects, noInter.VisitedObjects, noIntra.VisitedObjects)
	}
}

// SearchAblated with no switches must agree exactly with Search.
func TestAblatedDefaultMatchesSearch(t *testing.T) {
	f := build(t, dataset.YelpLike, 700, Config{Seed: 62})
	for qi := 0; qi < 5; qi++ {
		q := f.ds.Objects[(qi*111+5)%f.ds.Len()]
		a := f.idx.Search(&q, 10, 0.5, nil)
		b := f.idx.SearchAblated(&q, 10, 0.5, AblationOptions{}, nil)
		sameResults(t, "default ablation", a, b)
	}
}

// rangeBrute is the reference range query.
func rangeBrute(f *fixture, q *dataset.Object, r, lambda float64) []knn.Result {
	var out []knn.Result
	for i := range f.ds.Objects {
		d := f.sp.Distance(nil, lambda, q, &f.ds.Objects[i])
		if d <= r {
			out = append(out, knn.Result{ID: f.ds.Objects[i].ID, Dist: d})
		}
	}
	knn.SortResults(out)
	return out
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	f := build(t, dataset.TwitterLike, 800, Config{Seed: 63})
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 15; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		lambda := rng.Float64()
		r := 0.02 + rng.Float64()*0.1
		want := rangeBrute(f, &q, r, lambda)
		got := f.idx.RangeSearch(&q, r, lambda, nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d (r=%v λ=%v): got %d results, want %d", trial, r, lambda, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
				t.Fatalf("trial %d result %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRangeSearchZeroRadius(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 64})
	q := f.ds.Objects[9]
	got := f.idx.RangeSearch(&q, 0, 0.5, nil)
	if len(got) < 1 || got[0].ID != q.ID {
		t.Fatalf("zero-radius range should return the query object itself, got %v", got)
	}
}

func TestRangeSearchPrunes(t *testing.T) {
	f := build(t, dataset.TwitterLike, 3000, Config{Seed: 65})
	q := f.ds.Objects[10]
	var st metric.Stats
	f.idx.RangeSearch(&q, 0.05, 0.5, &st)
	if st.VisitedObjects >= int64(f.ds.Len()) {
		t.Fatal("range search visited everything")
	}
	if st.VisitedObjects+st.InterPruned+st.IntraPruned != int64(f.ds.Len()) {
		t.Fatalf("range accounting identity broken: %+v", st)
	}
}

// boxBrute is the reference windowed semantic k-NN.
func boxBrute(f *fixture, q *dataset.Object, loX, loY, hiX, hiY float64, k int) []knn.Result {
	h := knn.NewHeap(k)
	for i := range f.ds.Objects {
		o := &f.ds.Objects[i]
		if o.X < loX || o.X > hiX || o.Y < loY || o.Y > hiY {
			continue
		}
		h.Push(knn.Result{ID: o.ID, Dist: f.sp.SemanticVec(q.Vec, o.Vec)})
	}
	return h.Sorted()
}

func TestSearchInBoxMatchesBruteForce(t *testing.T) {
	f := build(t, dataset.TwitterLike, 900, Config{Seed: 66})
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 15; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		cx, cy := rng.Float64(), rng.Float64()
		w := 0.1 + rng.Float64()*0.4
		loX, loY := cx-w/2, cy-w/2
		hiX, hiY := cx+w/2, cy+w/2
		want := boxBrute(f, &q, loX, loY, hiX, hiY, 5)
		got := f.idx.SearchInBox(&q, loX, loY, hiX, hiY, 5, nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("trial %d result %d: %v vs %v", trial, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestSearchInBoxEmptyWindow(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 67})
	q := f.ds.Objects[1]
	got := f.idx.SearchInBox(&q, 2, 2, 3, 3, 5, nil) // window outside [0,1]²
	if len(got) != 0 {
		t.Fatalf("expected empty result, got %d", len(got))
	}
}

func TestSearchInBoxWholeSpaceEqualsSemanticKNN(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{Seed: 68})
	q := f.ds.Objects[3]
	boxed := f.idx.SearchInBox(&q, 0, 0, 1, 1, 10, nil)
	pure := f.sc.Search(&q, 10, 0, nil) // λ=0 is pure semantic
	for i := range pure {
		if boxed[i].Dist != pure[i].Dist {
			t.Fatalf("result %d: %v vs %v", i, boxed[i].Dist, pure[i].Dist)
		}
	}
}

func TestSearchInBoxAccounting(t *testing.T) {
	f := build(t, dataset.TwitterLike, 2000, Config{Seed: 69})
	q := f.ds.Objects[8]
	var st metric.Stats
	f.idx.SearchInBox(&q, 0.4, 0.4, 0.6, 0.6, 10, &st)
	if st.VisitedObjects+st.InterPruned+st.IntraPruned != int64(f.ds.Len()) {
		t.Fatalf("box accounting identity broken: %+v (len=%d)", st, f.ds.Len())
	}
}
