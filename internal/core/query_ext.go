package core

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// This file implements the additional query types the paper's conclusion
// (§8) names as future work — "other query types that combine spatial
// with semantic retrieval and can exploit our indexing based on the
// hybrid clusters". Both reuse the hybrid clusters and the bounds of §4:
//
//   - RangeSearch: all objects within combined distance r of the query;
//   - SearchInBox: the k semantically nearest objects whose location
//     falls inside a spatial window.

// RangeSearch returns every object o with d(q,o) = λ·ds + (1−λ)·dt ≤ r,
// ordered by ascending distance. Pruning mirrors the k-NN algorithm with
// the fixed radius in place of the adaptive bound U: clusters with
// L(q,C) > r cannot contain results (Lemma 4.3), and within a cluster the
// scan stops once d(q,C) − bound > r (Lemma 4.5). Like Search, the
// semantic centroid distances are computed lazily per surviving cluster
// under the Euclidean metric, and candidate kernels abandon early once
// dt provably pushes d beyond r.
func (x *Index) RangeSearch(q *dataset.Object, r, lambda float64, st *metric.Stats) []knn.Result {
	sc := x.getScratch()
	defer x.putScratch(sc)
	x.fillSpatialCentroidDists(sc, q)
	lazy := x.lazyOrderable()
	if lazy {
		x.fillProjLowerBounds(sc, q)
	} else {
		x.fillSemanticCentroidDists(sc, q)
	}
	// Range search needs no cluster ordering (and hence no frontier):
	// the pruning bound is the fixed radius r, not an adaptive k-NN
	// bound that tightens as results accumulate, so the per-cluster
	// lower-bound filter below already prunes exactly the clusters a
	// sorted cut-off would — sorting could only save the remaining cheap
	// float comparisons at the cost of ordering all clusters.
	var out []knn.Result
	tombs := x.deltaTombs()
	for _, c := range x.clusters {
		var weak float64
		if lazy {
			weak = lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtqProj[c.t], x.tRad[c.t])
		} else {
			weak = lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtq[c.t], x.tRad[c.t])
		}
		if weak > r {
			if st != nil {
				st.ClustersPruned++
				st.InterPruned += int64(len(c.elems))
			}
			continue
		}
		dtqC := sc.dtq[c.t]
		if !sc.dtqKnown[c.t] {
			dtqC = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			sc.dtq[c.t] = dtqC
			sc.dtqKnown[c.t] = true
		}
		if lazy {
			if lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], dtqC, x.tRad[c.t]) > r {
				if st != nil {
					st.ClustersPruned++
					st.InterPruned += int64(len(c.elems))
				}
				continue
			}
		}
		if st != nil {
			st.ClustersExamined++
		}
		enclosed := sc.dsq[c.s] < x.sRad[c.s] && dtqC < x.tRad[c.t]
		dqC := lambda*sc.dsq[c.s] + (1-lambda)*dtqC
		for ei := range c.elems {
			e := &c.elems[ei]
			if !enclosed {
				bound := lambda*e.ds + (1-lambda)*e.dt
				if dqC-bound > r {
					if st != nil {
						st.IntraPruned += int64(len(c.elems) - ei)
					}
					break
				}
			}
			if tombs != nil && tombs.get(e.idx) {
				continue
			}
			o := &x.objects[e.idx]
			if st != nil {
				st.VisitedObjects++
			}
			ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
			var dt float64
			if lambda < 1 {
				// A result needs d ≤ r, i.e. dt ≤ (r − λ·ds)/(1−λ); the
				// kernel abandons once dt provably exceeds that.
				dtBound := (r - lambda*ds) / (1 - lambda)
				var ok bool
				dt, ok = x.space.SemanticBound(st, q.Vec, o.Vec, dtBound)
				if !ok {
					continue
				}
			} else {
				dt = x.space.Semantic(st, q.Vec, o.Vec)
			}
			if d := metric.Combine(lambda, ds, dt); d <= r {
				out = append(out, knn.Result{ID: o.ID, Dist: d})
			}
		}
	}
	// Overlay chain: every live overlay insert is tested exactly against
	// the fixed radius, so range results match a compacted rebuild.
	x.forEachDeltaLive(func(o *dataset.Object) {
		if st != nil {
			st.VisitedObjects++
		}
		ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
		var dt float64
		if lambda < 1 {
			var ok bool
			dt, ok = x.space.SemanticBound(st, q.Vec, o.Vec, (r-lambda*ds)/(1-lambda))
			if !ok {
				return
			}
		} else {
			dt = x.space.Semantic(st, q.Vec, o.Vec)
		}
		if d := metric.Combine(lambda, ds, dt); d <= r {
			out = append(out, knn.Result{ID: o.ID, Dist: d})
		}
	})
	knn.SortResults(out)
	return out
}

// boxMinDistXY returns the Euclidean distance from (px,py) to the
// rectangle [loX,hiX]×[loY,hiY] (zero inside), without the slice
// round-trip of geo.Rect.MinDist.
func boxMinDistXY(px, py, loX, loY, hiX, hiY float64) float64 {
	var dx, dy float64
	if px < loX {
		dx = loX - px
	} else if px > hiX {
		dx = px - hiX
	}
	if py < loY {
		dy = loY - py
	} else if py > hiY {
		dy = py - hiY
	}
	// Same formula as geo.Rect.MinDist so pruning decisions are
	// bit-for-bit unchanged.
	return math.Sqrt(dx*dx + dy*dy)
}

// SearchInBox returns the k objects inside the spatial window [loX,hiX]×
// [loY,hiY] that are semantically nearest to q (pure dt ranking). Hybrid
// clusters whose spatial ball cannot intersect the window are pruned
// wholesale; within a cluster the semantic side of Lemma 4.5 cuts the
// scan once dt(q,Ct) − e.dt exceeds the current k-th semantic distance.
func (x *Index) SearchInBox(q *dataset.Object, loX, loY, hiX, hiY float64, k int, st *metric.Stats) []knn.Result {
	sc := x.getScratch()
	defer x.putScratch(sc)
	lazy := x.lazyOrderable()
	if lazy {
		x.fillProjLowerBounds(sc, q)
	} else {
		x.fillSemanticCentroidDists(sc, q)
	}
	// Order clusters by their semantic lower bound so the cut-off of
	// Lemma 4.4 (with the pure-semantic metric) applies, via the same
	// lazy best-first frontier as Search. Under the lazy path entries
	// carry the weak projected bound (max(0, w−R^t) ≤ max(0, dtq−R^t))
	// and are refined to the true semantic bound on pop.
	for _, c := range x.clusters {
		// Spatial filter: the cluster ball (center, radius in normalized
		// units) must reach the window.
		centerDist := boxMinDistXY(x.sCentX[c.s], x.sCentY[c.s], loX, loY, hiX, hiY) / x.space.DsMax
		if centerDist > x.sRad[c.s] {
			if st != nil {
				st.ClustersPruned++
				st.InterPruned += int64(len(c.elems))
			}
			continue
		}
		var dtEst float64
		if lazy {
			dtEst = sc.dtqProj[c.t]
		} else {
			dtEst = sc.dtq[c.t]
		}
		lb := dtEst - x.tRad[c.t]
		if lb < 0 {
			lb = 0
		}
		sc.order = append(sc.order, orderedCluster{lb: lb, c: c, refined: !lazy})
	}
	f := (*clusterFrontier)(&sc.order)
	f.heapify()

	h := &sc.heap
	h.Reset(k)
	tombs := x.deltaTombs()
	for len(*f) > 0 {
		if u, full := h.Bound(); full && (*f)[0].lb >= u {
			f.pruneRemaining(st)
			break
		}
		e := f.pop()
		if st != nil {
			st.ClustersOrdered++
		}
		c := e.c
		dtqC := sc.dtq[c.t]
		if !sc.dtqKnown[c.t] {
			dtqC = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			sc.dtq[c.t] = dtqC
			sc.dtqKnown[c.t] = true
		}
		if !e.refined {
			trueLB := dtqC - x.tRad[c.t]
			if trueLB < 0 {
				trueLB = 0
			}
			if len(*f) > 0 && trueLB > (*f)[0].lb {
				e.lb, e.refined = trueLB, true
				f.push(e)
				continue
			}
			if u, full := h.Bound(); full && trueLB >= u {
				if st != nil {
					st.ClustersPruned++
					st.InterPruned += int64(len(c.elems))
				}
				f.pruneRemaining(st)
				break
			}
		}
		if st != nil {
			st.ClustersExamined++
		}
		enclosedSem := dtqC < x.tRad[c.t]
		for ei := range c.elems {
			e := &c.elems[ei]
			if !enclosedSem {
				if u, full := h.Bound(); full && dtqC-e.dt > u {
					if st != nil {
						st.IntraPruned += int64(len(c.elems) - ei)
					}
					break
				}
			}
			if tombs != nil && tombs.get(e.idx) {
				continue
			}
			o := &x.objects[e.idx]
			if o.X < loX || o.X > hiX || o.Y < loY || o.Y > hiY {
				if st != nil {
					st.IntraPruned++
				}
				continue
			}
			if st != nil {
				st.VisitedObjects++
			}
			if u, full := h.Bound(); full {
				// Pure-semantic ranking: only dt < u can enter the heap,
				// so the kernel may abandon at u directly.
				dt, ok := x.space.SemanticBound(st, q.Vec, o.Vec, u)
				if ok {
					h.Push(knn.Result{ID: o.ID, Dist: dt})
				}
			} else {
				h.Push(knn.Result{ID: o.ID, Dist: x.space.Semantic(st, q.Vec, o.Vec)})
			}
		}
	}
	// Overlay chain: live overlay inserts pass the same window filter and
	// pure-semantic ranking, so box results match a compacted rebuild.
	x.forEachDeltaLive(func(o *dataset.Object) {
		if o.X < loX || o.X > hiX || o.Y < loY || o.Y > hiY {
			return
		}
		if st != nil {
			st.VisitedObjects++
		}
		if u, full := h.Bound(); full {
			if dt, ok := x.space.SemanticBound(st, q.Vec, o.Vec, u); ok {
				h.Push(knn.Result{ID: o.ID, Dist: dt})
			}
		} else {
			h.Push(knn.Result{ID: o.ID, Dist: x.space.Semantic(st, q.Vec, o.Vec)})
		}
	})
	return h.AppendSorted(nil)
}
