package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/knn"
	"repro/internal/metric"
)

// This file implements the additional query types the paper's conclusion
// (§8) names as future work — "other query types that combine spatial
// with semantic retrieval and can exploit our indexing based on the
// hybrid clusters". Both reuse the hybrid clusters and the bounds of §4:
//
//   - RangeSearch: all objects within combined distance r of the query;
//   - SearchInBox: the k semantically nearest objects whose location
//     falls inside a spatial window.

// RangeSearch returns every object o with d(q,o) = λ·ds + (1−λ)·dt ≤ r,
// ordered by ascending distance. Pruning mirrors the k-NN algorithm with
// the fixed radius in place of the adaptive bound U: clusters with
// L(q,C) > r cannot contain results (Lemma 4.3), and within a cluster the
// scan stops once d(q,C) − bound > r (Lemma 4.5).
func (x *Index) RangeSearch(q *dataset.Object, r, lambda float64, st *metric.Stats) []knn.Result {
	dsq := make([]float64, len(x.sCentX))
	for s := range dsq {
		dsq[s] = x.space.SpatialXY(q.X, q.Y, x.sCentX[s], x.sCentY[s])
	}
	dtq := make([]float64, len(x.tCent))
	for t := range dtq {
		dtq[t] = x.space.SemanticVec(q.Vec, x.tCent[t])
	}
	var out []knn.Result
	for _, c := range x.clusters {
		lb := lowerBound(lambda, dsq[c.s], x.sRad[c.s], dtq[c.t], x.tRad[c.t])
		if lb > r {
			if st != nil {
				st.ClustersPruned++
				st.InterPruned += int64(len(c.elems))
			}
			continue
		}
		if st != nil {
			st.ClustersExamined++
		}
		enclosed := dsq[c.s] < x.sRad[c.s] && dtq[c.t] < x.tRad[c.t]
		dqC := lambda*dsq[c.s] + (1-lambda)*dtq[c.t]
		for ei := range c.elems {
			e := &c.elems[ei]
			if !enclosed {
				bound := lambda*e.ds + (1-lambda)*e.dt
				if dqC-bound > r {
					if st != nil {
						st.IntraPruned += int64(len(c.elems) - ei)
					}
					break
				}
			}
			o := &x.objects[e.idx]
			d := x.space.Distance(st, lambda, q, o)
			if d <= r {
				out = append(out, knn.Result{ID: o.ID, Dist: d})
			}
		}
	}
	knn.SortResults(out)
	return out
}

// SearchInBox returns the k objects inside the spatial window [loX,hiX]×
// [loY,hiY] that are semantically nearest to q (pure dt ranking). Hybrid
// clusters whose spatial ball cannot intersect the window are pruned
// wholesale; within a cluster the semantic side of Lemma 4.5 cuts the
// scan once dt(q,Ct) − e.dt exceeds the current k-th semantic distance.
func (x *Index) SearchInBox(q *dataset.Object, loX, loY, hiX, hiY float64, k int, st *metric.Stats) []knn.Result {
	box := geo.Rect{Lo: []float64{loX, loY}, Hi: []float64{hiX, hiY}}
	dtq := make([]float64, len(x.tCent))
	for t := range dtq {
		dtq[t] = x.space.SemanticVec(q.Vec, x.tCent[t])
	}
	// Order clusters by their semantic lower bound so the cut-off of
	// Lemma 4.4 (with the pure-semantic metric) applies.
	type boxedCluster struct {
		lb float64
		c  *hybrid
	}
	var order []boxedCluster
	for _, c := range x.clusters {
		// Spatial filter: the cluster ball (center, radius in normalized
		// units) must reach the window.
		centerDist := box.MinDist([]float64{x.sCentX[c.s], x.sCentY[c.s]}) / x.space.DsMax
		if centerDist > x.sRad[c.s] {
			if st != nil {
				st.ClustersPruned++
				st.InterPruned += int64(len(c.elems))
			}
			continue
		}
		lb := dtq[c.t] - x.tRad[c.t]
		if lb < 0 {
			lb = 0
		}
		order = append(order, boxedCluster{lb: lb, c: c})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].lb < order[b].lb })

	h := knn.NewHeap(k)
	for ci, oc := range order {
		if u, full := h.Bound(); full && oc.lb >= u {
			if st != nil {
				for _, rest := range order[ci:] {
					st.ClustersPruned++
					st.InterPruned += int64(len(rest.c.elems))
				}
			}
			break
		}
		if st != nil {
			st.ClustersExamined++
		}
		c := oc.c
		enclosedSem := dtq[c.t] < x.tRad[c.t]
		for ei := range c.elems {
			e := &c.elems[ei]
			if !enclosedSem {
				if u, full := h.Bound(); full && dtq[c.t]-e.dt > u {
					if st != nil {
						st.IntraPruned += int64(len(c.elems) - ei)
					}
					break
				}
			}
			o := &x.objects[e.idx]
			if o.X < loX || o.X > hiX || o.Y < loY || o.Y > hiY {
				if st != nil {
					st.IntraPruned++
				}
				continue
			}
			if st != nil {
				st.VisitedObjects++
			}
			d := x.space.Semantic(st, q.Vec, o.Vec)
			h.Push(knn.Result{ID: o.ID, Dist: d})
		}
	}
	return h.Sorted()
}
