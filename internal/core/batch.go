package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// SearchBatch answers queries[i] into result slot i using a bounded
// worker pool. workers <= 0 selects GOMAXPROCS; approx selects CSSIA
// instead of CSSI. Each worker draws one scratch from the index's pool
// for its whole run and accumulates work counters locally, so a
// steady-state batch allocates only the per-query result slices and
// never contends on st. Queries are drawn from a shared atomic cursor,
// which load-balances skewed per-query costs better than static
// chunking.
//
// An empty batch returns an empty (non-nil) result without spinning up
// any worker; k <= 0 is rejected with an error rather than panicking
// inside a worker (knn.Heap would otherwise reject it k times, once per
// query, deep in the pool).
func (x *Index) SearchBatch(queries []dataset.Object, k int, lambda float64, workers int, approx bool, st *metric.Stats) ([][]knn.Result, error) {
	return x.SearchBatchOptions(queries, k, lambda, workers, SearchOptions{Approx: approx}, st)
}

// SearchBatchOptions is SearchBatch with the full SearchOptions
// switches, so batched workloads reach the quantized modes. Batches are
// where the quantized scans pay off most: the per-cluster code blocks
// touched by one query stay cache-resident for the next, so candidate
// loads amortize across the batch.
func (x *Index) SearchBatchOptions(queries []dataset.Object, k int, lambda float64, workers int, opts SearchOptions, st *metric.Stats) ([][]knn.Result, error) {
	return x.SearchBatchOptionsMeta(queries, k, lambda, workers, opts, st, nil)
}

// SearchBatchOptionsMeta is SearchBatchOptions reporting per-query
// execution metadata: when partial is non-nil it must have one slot
// per query and partial[i] is set when query i stopped at its time
// budget (see SearchOptions.Deadline); slots of complete queries are
// left untouched. Each worker writes only its own queries' slots, so
// the slice needs no synchronization.
func (x *Index) SearchBatchOptionsMeta(queries []dataset.Object, k int, lambda float64, workers int, opts SearchOptions, st *metric.Stats, partial []bool) ([][]knn.Result, error) {
	if partial != nil && len(partial) != len(queries) {
		panic(fmt.Sprintf("core: batch partial slice has %d slots for %d queries", len(partial), len(queries)))
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: batch k = %d, want >= 1", k)
	}
	out := make([][]knn.Result, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	// Reject malformed queries before any worker starts: a panic inside a
	// worker goroutine would not be recoverable by the caller (net/http
	// recovers handler panics, not goroutine panics — an unrecovered one
	// kills the process), so every query must be proven safe up front.
	for i := range queries {
		if len(queries[i].Vec) != x.dim {
			panic(fmt.Sprintf("core: batch query %d has vector dim %d, index expects %d",
				i, len(queries[i].Vec), x.dim))
		}
	}
	// Clamp to GOMAXPROCS at the library layer (the HTTP server clamps
	// too, but library callers get the same guarantee): a batch can
	// never spawn more runnable goroutines than the scheduler has
	// processors, no matter what parallelism the caller requests.
	if maxW := runtime.GOMAXPROCS(0); workers <= 0 || workers > maxW {
		workers = maxW
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	stats := make([]metric.Stats, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Defense in depth: any residual worker panic is re-raised on
			// the calling goroutine after the pool drains, where the
			// caller (or net/http) can recover it.
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			sc := x.getScratch()
			var local *metric.Stats
			if st != nil {
				local = &stats[w]
			}
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(queries) {
					break
				}
				out[qi] = x.searchOptionsWith(sc, nil, nil, &queries[qi], k, lambda, opts, local)
				if partial != nil && sc.partial {
					partial[qi] = true
				}
			}
			x.putScratch(sc)
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if st != nil {
		for i := range stats {
			st.Add(&stats[i])
		}
	}
	return out, nil
}
