package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// SearchBatch answers queries[i] into result slot i using a bounded
// worker pool. workers <= 0 selects GOMAXPROCS; approx selects CSSIA
// instead of CSSI. Each worker draws one scratch from the index's pool
// for its whole run and accumulates work counters locally, so a
// steady-state batch allocates only the per-query result slices and
// never contends on st. Queries are drawn from a shared atomic cursor,
// which load-balances skewed per-query costs better than static
// chunking.
func (x *Index) SearchBatch(queries []dataset.Object, k int, lambda float64, workers int, approx bool, st *metric.Stats) [][]knn.Result {
	out := make([][]knn.Result, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	stats := make([]metric.Stats, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := x.getScratch()
			var local *metric.Stats
			if st != nil {
				local = &stats[w]
			}
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(queries) {
					break
				}
				if approx {
					out[qi] = x.searchApproxWith(sc, nil, &queries[qi], k, lambda, local)
				} else {
					out[qi] = x.searchWith(sc, nil, &queries[qi], k, lambda, local)
				}
			}
			x.putScratch(sc)
		}(w)
	}
	wg.Wait()
	if st != nil {
		for i := range stats {
			st.Add(&stats[i])
		}
	}
	return out
}
