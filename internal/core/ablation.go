package core

import (
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// AblationOptions are the ablation switches for SearchAblated: they disable
// individual pruning mechanisms so their contribution can be measured
// (the design-choice ablations called out in DESIGN.md). All pruning
// enabled is exactly Search; with everything disabled the algorithm
// degenerates to a cluster-ordered scan. Results are identical in all
// configurations — pruning only ever skips objects that cannot be
// results (Lemmas 4.4 and 4.5) — which the test suite verifies.
type AblationOptions struct {
	// DisableInterCluster turns off pruning property 1 (Lemma 4.4):
	// every hybrid cluster is examined.
	DisableInterCluster bool
	// DisableIntraCluster turns off pruning property 2 (Lemma 4.5):
	// every object of an examined cluster is evaluated.
	DisableIntraCluster bool
	// DisableClusterOrder skips sorting clusters by L(q,C); clusters are
	// examined in arbitrary (storage) order, which weakens inter-cluster
	// pruning to a filter instead of a cut-off.
	DisableClusterOrder bool
}

// SearchAblated is Search with individual pruning mechanisms switched
// off. It remains exact for every combination of switches.
func (x *Index) SearchAblated(q *dataset.Object, k int, lambda float64, opts AblationOptions, st *metric.Stats) []knn.Result {
	// The ablation path keeps the paper-faithful eager centroid shape of
	// Alg. 2 (all semantic centroid distances up front, no weak-bound
	// refinement or early abandonment) so the measured pruning deltas
	// isolate the switches below; it still draws its buffers from the
	// scratch pool. With ordering enabled the visit order comes from the
	// same best-first frontier as Search (entries already refined, so
	// pops never re-push).
	sc := x.getScratch()
	defer x.putScratch(sc)
	x.fillSpatialCentroidDists(sc, q)
	x.fillSemanticCentroidDists(sc, q)
	for _, c := range x.clusters {
		sc.order = append(sc.order, orderedCluster{
			lb:      lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtq[c.t], x.tRad[c.t]),
			c:       c,
			refined: true,
		})
	}

	h := &sc.heap
	h.Reset(k)
	if opts.DisableClusterOrder {
		// Storage order: the cut-off is unsound without ordering, so
		// inter-cluster pruning degrades to a per-cluster filter.
		for ci := range sc.order {
			oc := &sc.order[ci]
			if !opts.DisableInterCluster {
				if u, full := h.Bound(); full && oc.lb >= u {
					if st != nil {
						st.ClustersPruned++
						st.InterPruned += int64(len(oc.c.elems))
					}
					continue
				}
			}
			x.scanClusterAblated(q, lambda, oc.c, sc.dsq[oc.c.s], sc.dtq[oc.c.t], h, st, opts.DisableIntraCluster)
		}
		x.scanDelta(sc, q, lambda, h, st)
		return h.AppendSorted(nil)
	}
	f := (*clusterFrontier)(&sc.order)
	f.heapify()
	for len(*f) > 0 {
		if !opts.DisableInterCluster {
			if u, full := h.Bound(); full && (*f)[0].lb >= u {
				f.pruneRemaining(st)
				break
			}
		}
		e := f.pop()
		if st != nil {
			st.ClustersOrdered++
		}
		x.scanClusterAblated(q, lambda, e.c, sc.dsq[e.c.s], sc.dtq[e.c.t], h, st, opts.DisableIntraCluster)
	}
	// The overlay scan is not ablatable — its group pruning is part of
	// the overlay subsystem, not of the mechanisms under study — and it
	// keeps ablated results exact over base + delta.
	x.scanDelta(sc, q, lambda, h, st)
	return h.AppendSorted(nil)
}

// scanClusterAblated is scanCluster with the intra-cluster pruning
// optionally disabled.
func (x *Index) scanClusterAblated(q *dataset.Object, lambda float64, c *hybrid, dsqC, dtqC float64, h *knn.Heap, st *metric.Stats, noIntra bool) {
	if st != nil {
		st.ClustersExamined++
	}
	enclosed := dsqC < x.sRad[c.s] && dtqC < x.tRad[c.t]
	dqC := lambda*dsqC + (1-lambda)*dtqC
	tombs := x.deltaTombs()
	for ei := range c.elems {
		e := &c.elems[ei]
		if !noIntra && !enclosed {
			if u, full := h.Bound(); full {
				bound := lambda*e.ds + (1-lambda)*e.dt
				if dqC-bound > u {
					if st != nil {
						st.IntraPruned += int64(len(c.elems) - ei)
					}
					return
				}
			}
		}
		if tombs != nil && tombs.get(e.idx) {
			continue
		}
		o := &x.objects[e.idx]
		d := x.space.Distance(st, lambda, q, o)
		h.Push(knn.Result{ID: o.ID, Dist: d})
	}
}
