package core

import (
	"testing"

	"repro/internal/dataset"
)

// The invariant checker must actually detect corruption — each mutation
// below violates one checked property.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(x *Index)
	}{
		{"shrunken spatial radius", func(x *Index) {
			x.sRad[x.clusters[0].s] = 0
		}},
		{"shrunken semantic radius", func(x *Index) {
			x.tRad[x.clusters[0].t] = 0
		}},
		{"shrunken projected radius", func(x *Index) {
			x.tRadProj[x.clusters[0].t] = 0
		}},
		{"corrupted member distance", func(x *Index) {
			x.clusters[0].members[0].ds += 0.5
		}},
		{"non-conservative threshold", func(x *Index) {
			c := x.clusters[0]
			c.elems[len(c.elems)-1].ds = 0
			c.elems[len(c.elems)-1].dt = 0
		}},
		{"non-monotonic thresholds", func(x *Index) {
			c := x.clusters[0]
			if len(c.elems) < 2 {
				t.Skip("cluster too small")
			}
			c.elems[len(c.elems)-1].ds = c.elems[0].ds + 0.5
		}},
		{"duplicated element", func(x *Index) {
			c := x.clusters[0]
			c.elems[len(c.elems)-1] = c.elems[0]
		}},
		{"phantom deleted member", func(x *Index) {
			x.deleted.set(x.clusters[0].members[0].idx)
		}},
		{"wrong live count", func(x *Index) {
			x.live--
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			f := build(t, dataset.TwitterLike, 300, Config{Seed: 78})
			if err := f.idx.CheckInvariants(); err != nil {
				t.Fatalf("pre-mutation index invalid: %v", err)
			}
			// Move a cluster with several members to the front so every
			// mutation has something to corrupt.
			for i, c := range f.idx.clusters {
				if len(c.members) >= 3 {
					f.idx.clusters[0], f.idx.clusters[i] = c, f.idx.clusters[0]
					break
				}
			}
			m.mutate(f.idx)
			if err := f.idx.CheckInvariants(); err == nil {
				t.Fatalf("%s not detected", m.name)
			}
		})
	}
}
