package core

import (
	"slices"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/vec"
)

// orderedCluster pairs a hybrid cluster with its query-specific lower
// bound, the key of the best-first frontier (Alg. 2 line 4 / Alg. 3
// line 5). refined reports whether lb is the true lower bound L(q,C)
// (Eq. 4) or the cheap weak under-estimate from the projected space;
// the frontier refines weak entries only when they are popped.
type orderedCluster struct {
	lb      float64
	c       *hybrid
	refined bool
}

// sortOrder sorts clusters by ascending lower bound: the eager
// ordering the lazy clusterFrontier replaced. It is retained as the
// reference implementation for the lazy-vs-eager equality tests.
// slices.SortFunc (not sort.Slice) so the comparator is monomorphized
// and the sort does not allocate.
func sortOrder(order []orderedCluster) {
	slices.SortFunc(order, func(a, b orderedCluster) int {
		switch {
		case a.lb < b.lb:
			return -1
		case a.lb > b.lb:
			return 1
		default:
			return 0
		}
	})
}

// fillSpatialCentroidDists computes the normalized spatial distance from
// q to every spatial centroid into sc.dsq (Ks cheap 2-D distances,
// always eager).
func (x *Index) fillSpatialCentroidDists(sc *searchScratch, q *dataset.Object) {
	for s := range sc.dsq {
		sc.dsq[s] = x.space.SpatialXY(q.X, q.Y, x.sCentX[s], x.sCentY[s])
	}
}

// fillSemanticCentroidDists computes all Kt original-space semantic
// centroid distances eagerly (the fallback path when the lazy ordering
// does not apply).
func (x *Index) fillSemanticCentroidDists(sc *searchScratch, q *dataset.Object) {
	for t := range sc.dtq {
		sc.dtq[t] = x.space.SemanticVec(q.Vec, x.tCent[t])
		sc.dtqKnown[t] = true
	}
}

// lazyOrderable reports whether cluster ordering can use the cheap
// projected-space lower bound on dtq instead of computing all Kt
// n-dimensional centroid distances up front. The bound relies on the
// PCA projection being a contraction of the Euclidean metric, so it is
// restricted to the Euclidean semantic kind.
func (x *Index) lazyOrderable() bool {
	return x.space.SemanticKind == metric.EuclideanSemantic && x.pcaModel != nil && x.m > 0
}

// projWeakRelSlack and projWeakAbsSlack deflate the projected-space
// estimate of dtq so that it is a certain lower bound despite
// floating-point noise. Mathematically ‖W(q−C^t)‖ ≤ ‖q−C^t‖ for the
// orthonormal components W, and the stored projected centroid equals
// the projection of the original-space centroid by linearity of the
// mean — but both are computed in float32, so the computed projected
// distance can exceed the true one by a few float32 ulps of the
// component magnitudes. The absolute slack (in normalized [0,1] units)
// dominates that error by >100×, and costs effectively no pruning
// power: it only matters for clusters whose bound ties the k-NN bound
// to within 1e-5.
//
// The bound additionally relies on tCentProj[t] being the PCA image of
// tCent[t]. That holds because centroids are immutable after build —
// maintenance only adjusts radii (see Insert in maintain.go) — and both
// representations are recomputed together by Build. CheckInvariants
// (checkProjBoundSoundness) asserts the pairing and probes that the
// deflated bound never exceeds the true centroid distance, so a future
// change to centroid maintenance or to the projection cannot silently
// turn exact search approximate.
const (
	projWeakRelSlack = 1e-6
	projWeakAbsSlack = 1e-5
)

// fillProjLowerBounds projects q and fills sc.dtqProj[t] with a weak
// lower bound on the original-space centroid distance dtq[t], clearing
// the dtq memoization flags. Used by the lazy ordering of Search: the
// true dtq of a cluster is only computed when the cluster is actually
// reached (satellite fix for the eager all-Kt computation).
func (x *Index) fillProjLowerBounds(sc *searchScratch, q *dataset.Object) {
	x.pcaModel.TransformInto(sc.qProj, q.Vec)
	inv := (1 - projWeakRelSlack) / x.space.DtMax
	for t := range sc.dtqProj {
		w := vec.Dist(sc.qProj, x.tCentProj[t])*inv - projWeakAbsSlack
		if w < 0 {
			w = 0
		}
		sc.dtqProj[t] = w
	}
	for t := range sc.dtqKnown {
		sc.dtqKnown[t] = false
	}
}

// Search answers an exact k-NN query with the CSSI algorithm (Alg. 2).
// Centroid-level distance computations are not charged to st — the
// evaluation counts object-level work (visited objects, and §7.7 counts
// CSSI distance calculations as visited×2), and the centroid distances
// per query are part of the index overhead reflected in wall time
// instead.
func (x *Index) Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	return x.SearchInto(nil, q, k, lambda, st)
}

// SearchInto is Search appending the results to dst (usually dst[:0] of
// a retained buffer). With a dst of sufficient capacity, a steady-state
// call performs zero heap allocations: all per-query state comes from
// the index's scratch pool.
func (x *Index) SearchInto(dst []knn.Result, q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	sc := x.getScratch()
	out := x.searchWithSeed(sc, dst, nil, q, k, lambda, st)
	x.putScratch(sc)
	return out
}

// SearchSeededInto is SearchInto with the k-NN heap pre-loaded from
// seed before any cluster is examined. The seed entries must be real
// candidates whose distances are comparable to this index's (same
// metric space normalizers) and must not duplicate any object stored
// here. The returned list is the exact top-k of seed ∪ this index's
// objects — which is what lets a sequential scan over disjoint
// partitions chain the call shard to shard, carrying the pruning bound
// forward: each shard starts with the tightest bound discovered so far
// instead of re-deriving one from scratch, so the partitioned scan
// does the same total pruning work as one flat index. dst and seed
// must not share storage.
func (x *Index) SearchSeededInto(dst, seed []knn.Result, q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	sc := x.getScratch()
	out := x.searchWithSeed(sc, dst, seed, q, k, lambda, st)
	x.putScratch(sc)
	return out
}

func (x *Index) searchWith(sc *searchScratch, dst []knn.Result, q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	return x.searchWithSeed(sc, dst, nil, q, k, lambda, st)
}

func (x *Index) searchWithSeed(sc *searchScratch, dst, seed []knn.Result, q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	// The scratch may be reused across queries by a SearchBatch worker;
	// the cluster order is rebuilt from empty each time, and the cached
	// codebook-adjusted query (filled lazily by the quantized scan) is
	// invalidated.
	sc.order = sc.order[:0]
	sc.quantQ = false
	var phase time.Time
	if sc.obs != nil {
		phase = time.Now()
	}
	x.fillSpatialCentroidDists(sc, q)

	// Cluster ordering (Alg. 2 line 4), lazy on two axes. First, the
	// ordering key: the original-space semantic centroid distances
	// dominate the centroid-level cost (Kt n-dimensional kernels), yet a
	// query that fills its heap early never consults most of them, so
	// under the Euclidean metric entries carry a weak lower bound from
	// the m-dimensional projected space and the true dtq is computed
	// only for clusters the scan actually reaches, memoized per semantic
	// side-cluster. Second, the ordering itself: instead of eagerly
	// sorting all Ks×Kt clusters, a best-first min-heap is heapified in
	// O(K) and clusters are popped on demand — a query cut off after
	// examining E clusters pays O(K + E log K) ordering work, not
	// O(K log K). Exactness is preserved: the weak bound never exceeds
	// the true L(q,C) (lowerBound is non-decreasing in dtq), so a popped
	// entry whose refined bound still does not exceed the next head is
	// provably the minimum true bound and the cut-off of Lemma 4.4 stays
	// sound (see clusterFrontier).
	lazy := x.lazyOrderable()
	if lazy {
		x.fillProjLowerBounds(sc, q)
		for _, c := range x.clusters {
			sc.order = append(sc.order, orderedCluster{
				lb: lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtqProj[c.t], x.tRad[c.t]),
				c:  c,
			})
		}
	} else {
		x.fillSemanticCentroidDists(sc, q)
		for _, c := range x.clusters {
			sc.order = append(sc.order, orderedCluster{
				lb:      lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtq[c.t], x.tRad[c.t]),
				c:       c,
				refined: true,
			})
		}
	}
	// Learned exact-reorder pre-pass (see route.go): the router moves
	// its R predicted-best clusters to the front of the order; they are
	// scanned below before the admissible frontier over the remainder
	// runs, so the k-th distance tightens near its final value within a
	// few clusters and the Lemma 4.4 cut fires much earlier.
	routedPrefix := 0
	if sc.routeOn && x.router != nil {
		var rt time.Time
		if sc.obs != nil {
			rt = time.Now()
		}
		routedPrefix = x.routePrefix(sc, lambda, lazy)
		if sc.obs != nil {
			sc.obs.RouteNanos += time.Since(rt).Nanoseconds()
		}
	}
	rest := sc.order[routedPrefix:]
	f := (*clusterFrontier)(&rest)
	f.heapify()
	if sc.obs != nil {
		sc.obs.ClustersTotal += int64(len(sc.order))
		sc.obs.OrderNanos += time.Since(phase).Nanoseconds()
		phase = time.Now()
	}

	h := &sc.heap
	h.Reset(k)
	for _, r := range seed {
		h.Push(r)
	}
	for i := 0; i < routedPrefix; i++ {
		if sc.budgetExpired() {
			break
		}
		e := &sc.order[i]
		c := e.c
		if st != nil {
			st.ClustersRouted++
		}
		dtqC := sc.dtq[c.t]
		if !sc.dtqKnown[c.t] {
			dtqC = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			sc.dtq[c.t] = dtqC
			sc.dtqKnown[c.t] = true
		}
		if u, full := h.Bound(); full {
			// Admissibility of the skip: L(q,C) underestimates every
			// member's distance, and u only tightens toward the final
			// bound U_final, so L(q,C) ≥ u ≥ U_final proves the cluster
			// holds no candidate that could enter the final heap. The
			// final heap is a pure function of the offered candidate set
			// (knn.Heap breaks ties by ID), so results stay bit-identical
			// no matter which clusters the router front-loads.
			trueLB := lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], dtqC, x.tRad[c.t])
			if trueLB >= u {
				if st != nil {
					st.ClustersPruned++
					st.InterPruned += int64(len(c.elems))
				}
				continue
			}
		}
		x.scanCluster(sc, q, lambda, c, sc.dsq[c.s], dtqC, h, st)
	}
	for len(*f) > 0 {
		if u, full := h.Bound(); full && (*f)[0].lb >= u {
			// Pruning property 1 (Lemma 4.4): every remaining entry's key
			// is ≥ the head's, and keys only under-estimate true bounds.
			f.pruneRemaining(st)
			break
		}
		if sc.budgetExpired() {
			// Time budget fired: stop consuming the frontier and return
			// the heap as-is — an admissible truncated prefix (see
			// deadline.go), flagged Partial by the Meta entry points.
			break
		}
		e := f.pop()
		if st != nil {
			st.ClustersOrdered++
		}
		c := e.c
		dtqC := sc.dtq[c.t]
		if !sc.dtqKnown[c.t] {
			dtqC = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			sc.dtq[c.t] = dtqC
			sc.dtqKnown[c.t] = true
		}
		if !e.refined {
			// The weak bound admitted this cluster; refine to the true
			// L(q,C). If it worsens past the next head the cluster is not
			// necessarily next — re-push it with its true bound (at most
			// once per cluster). Otherwise it provably holds the minimum
			// remaining true bound and is consumed now.
			trueLB := lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], dtqC, x.tRad[c.t])
			if len(*f) > 0 && trueLB > (*f)[0].lb {
				e.lb, e.refined = trueLB, true
				f.push(e)
				continue
			}
			if u, full := h.Bound(); full && trueLB >= u {
				// The minimum remaining true bound already reaches U:
				// this cluster and everything still in the frontier are
				// pruned (Lemma 4.4).
				if st != nil {
					st.ClustersPruned++
					st.InterPruned += int64(len(c.elems))
				}
				f.pruneRemaining(st)
				break
			}
		}
		x.scanCluster(sc, q, lambda, c, sc.dsq[c.s], dtqC, h, st)
	}
	if sc.obs != nil {
		el := time.Since(phase).Nanoseconds()
		sc.obs.ScanNanos += el
		sc.flushQuantTiming(el)
	}
	// Chain the write overlay's live inserts onto the same heap (a no-op
	// on flat snapshots). Exactness is unchanged: the final heap is a
	// pure function of the offered candidate set, the base scan offered
	// every live base candidate not provably excluded, and scanDelta
	// offers every live overlay candidate not provably excluded.
	x.scanDelta(sc, q, lambda, h, st)
	return h.AppendSorted(dst)
}

// scanCluster examines the objects of one hybrid cluster (Alg. 2 lines
// 8-18), applying intra-cluster pruning (Lemma 4.5) via the conservative
// array thresholds.
func (x *Index) scanCluster(sc *searchScratch, q *dataset.Object, lambda float64, c *hybrid, dsqC, dtqC float64, h *knn.Heap, st *metric.Stats) {
	if st != nil {
		st.ClustersExamined++
	}
	// q is "enclosed" in C when it lies inside both balls (case 4 of
	// Eq. 4); intra-cluster pruning is only attempted otherwise (Alg. 2
	// line 9).
	enclosed := dsqC < x.sRad[c.s] && dtqC < x.tRad[c.t]
	dqC := lambda*dsqC + (1-lambda)*dtqC
	// With a full heap, λ < 1 and a quantized code block for this
	// cluster, the scan switches to the filter-then-rerank pass: the SQ8
	// lower bound excludes most candidates without touching the float32
	// arena, and only survivors pay the exact kernel. Results stay
	// bit-identical (see scanClusterQuant); the unquantized loop below
	// remains both the reference and the path for unfilled heaps, λ = 1,
	// QuantOff queries, and quantless indexes.
	if x.quant != nil && !sc.quantOff && lambda < 1 && len(c.codes) == len(c.elems)*x.dim && len(c.elems) > 0 {
		if u0, full := h.Bound(); full {
			x.scanClusterQuant(sc, q, lambda, c, dqC, u0, enclosed, h, st)
			return
		}
	}
	tombs := x.deltaTombs()
	for ei := range c.elems {
		e := &c.elems[ei]
		if !enclosed {
			if u, full := h.Bound(); full {
				bound := lambda*e.ds + (1-lambda)*e.dt // ≥ d(o,C)
				if dqC-bound > u {
					// Pruning property 2: every later element sits even
					// closer to the centroid (thresholds non-increasing),
					// so d(q,C) − d(o,C) only grows.
					if st != nil {
						st.IntraPruned += int64(len(c.elems) - ei)
					}
					return
				}
			}
		}
		// Overlay tombstones hide base objects the shared cluster arrays
		// still list.
		if tombs != nil && tombs.get(e.idx) {
			continue
		}
		o := &x.objects[e.idx]
		if st != nil {
			st.VisitedObjects++
		}
		ds := x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
		var dt float64
		if u, full := h.Bound(); full && lambda < 1 {
			// Early abandonment: o can only enter the heap with
			// d = λ·ds + (1−λ)·dt < u, i.e. dt < (u − λ·ds)/(1−λ). The
			// kernel stops once its monotone partial sum proves dt beyond
			// that, so far-away candidates cost a fraction of the full
			// n-dimensional work. A non-abandoned dt is bit-identical to
			// the plain kernel, keeping results exact.
			dtBound := (u - lambda*ds) / (1 - lambda)
			var ok bool
			dt, ok = x.space.SemanticBound(st, q.Vec, o.Vec, dtBound)
			if !ok {
				if sc.obs != nil {
					sc.obs.EarlyAbandons++
				}
				continue
			}
		} else {
			dt = x.space.Semantic(st, q.Vec, o.Vec)
		}
		h.Push(knn.Result{ID: o.ID, Dist: metric.Combine(lambda, ds, dt)})
	}
}
