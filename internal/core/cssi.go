package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// orderedCluster pairs a hybrid cluster with its query-specific lower
// bound for the sort in Alg. 2 line 4 / Alg. 3 line 5.
type orderedCluster struct {
	lb float64
	c  *hybrid
}

// Search answers an exact k-NN query with the CSSI algorithm (Alg. 2).
// Centroid-level distance computations are not charged to st — the
// evaluation counts object-level work (visited objects, and §7.7 counts
// CSSI distance calculations as visited×2), and the K(s)+K(t) centroid
// distances per query are part of the index overhead reflected in wall
// time instead.
func (x *Index) Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	// Per-side distances from q to every centroid (computed once; each
	// hybrid cluster reuses its sides' values).
	dsq := make([]float64, len(x.sCentX))
	for s := range dsq {
		dsq[s] = x.space.SpatialXY(q.X, q.Y, x.sCentX[s], x.sCentY[s])
	}
	dtq := make([]float64, len(x.tCent))
	for t := range dtq {
		dtq[t] = x.space.SemanticVec(q.Vec, x.tCent[t])
	}

	// Sort hybrid clusters by L(q,C) ascending (Alg. 2 line 4).
	order := make([]orderedCluster, len(x.clusters))
	for i, c := range x.clusters {
		order[i] = orderedCluster{
			lb: lowerBound(lambda, dsq[c.s], x.sRad[c.s], dtq[c.t], x.tRad[c.t]),
			c:  c,
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].lb < order[b].lb })

	h := knn.NewHeap(k)
	for ci, oc := range order {
		if u, full := h.Bound(); full && oc.lb >= u {
			// Pruning property 1 (Lemma 4.4): every remaining cluster
			// has an even larger lower bound.
			if st != nil {
				for _, rest := range order[ci:] {
					st.ClustersPruned++
					st.InterPruned += int64(len(rest.c.elems))
				}
			}
			break
		}
		x.scanCluster(q, lambda, oc.c, dsq[oc.c.s], dtq[oc.c.t], h, st)
	}
	return h.Sorted()
}

// scanCluster examines the objects of one hybrid cluster (Alg. 2 lines
// 8-18), applying intra-cluster pruning (Lemma 4.5) via the conservative
// array thresholds.
func (x *Index) scanCluster(q *dataset.Object, lambda float64, c *hybrid, dsqC, dtqC float64, h *knn.Heap, st *metric.Stats) {
	if st != nil {
		st.ClustersExamined++
	}
	// q is "enclosed" in C when it lies inside both balls (case 4 of
	// Eq. 4); intra-cluster pruning is only attempted otherwise (Alg. 2
	// line 9).
	enclosed := dsqC < x.sRad[c.s] && dtqC < x.tRad[c.t]
	dqC := lambda*dsqC + (1-lambda)*dtqC
	for ei := range c.elems {
		e := &c.elems[ei]
		if !enclosed {
			if u, full := h.Bound(); full {
				bound := lambda*e.ds + (1-lambda)*e.dt // ≥ d(o,C)
				if dqC-bound > u {
					// Pruning property 2: every later element sits even
					// closer to the centroid (thresholds non-increasing),
					// so d(q,C) − d(o,C) only grows.
					if st != nil {
						st.IntraPruned += int64(len(c.elems) - ei)
					}
					return
				}
			}
		}
		o := &x.objects[e.idx]
		d := x.space.Distance(st, lambda, q, o)
		h.Push(knn.Result{ID: o.ID, Dist: d})
	}
}
