package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/pca"
	"repro/internal/route"
	"repro/internal/vec"
)

// Index persistence: Save writes everything needed to answer queries —
// the objects, the PCA model, both semantic cluster representations, the
// assignments and the hybrid-cluster membership — so Load restores a
// fully functional index without re-clustering. The per-cluster element
// arrays are cheap to rebuild and are therefore not serialized.

// gobMember mirrors member with exported fields.
type gobMember struct {
	Idx    uint32
	Ds, Dt float64
}

// gobHybrid mirrors hybrid with exported fields.
type gobHybrid struct {
	S, T    int
	Members []gobMember
}

// gobIndex is the serialized form of an Index. Since version 2 the
// embeddings and projections are stored as the two flat arenas (with
// their strides) instead of per-object vectors and per-row projection
// slices: Objects carry nil Vec on the wire and Load reslices them into
// the decoded vector arena. Version-1 files (per-object Vec plus the
// legacy Proj field) are still accepted — Load migrates them into
// arenas; gob ignores stream fields absent from this struct and leaves
// struct fields absent from the stream at their zero value, so both
// layouts decode through it.
type gobIndex struct {
	Version int
	Cfg     Config

	DsMax, DtMax, DtProjMax float64
	SemanticKind            metric.SemanticMetric

	Objects []dataset.Object
	Deleted []bool
	Live    int

	PCAModel *pca.Model

	Dim, M              int
	VecArena, ProjArena []float32

	// Proj is the legacy per-row projection layout of version-1 files.
	// Never written since version 2; read only by the v1 migration.
	Proj [][]float32

	SCentX, SCentY, SRad []float64
	SMembers             [][]uint32

	TCent     [][]float32
	TRad      []float64
	TCentProj [][]float32
	TRadProj  []float64
	TMembers  [][]uint32
	// TValid marks semantic clusters whose centroids were computed from
	// at least one member (see Index.tValid). Absent from files written
	// before it existed; Load then derives it from current membership.
	TValid             []bool
	SAssign, TAssign   []int
	Clusters           []gobHybrid
	UpdatesSinceBuild_ int

	// The SQ8 quant arena (version 3): the codebook's per-dimension
	// Lo/Step vectors plus the code and residual arenas. All four are
	// empty when the saved index had no quant arena (disabled by config,
	// angular metric, or no objects); version-1/2 files leave them at
	// their gob zero values and Load retrains transparently. The
	// per-cluster contiguous code blocks are derived data, rebuilt by
	// Load like the element arrays.
	QuantLo, QuantStep []float32
	QuantCodes         []uint8
	QuantResid         []float32

	// The learned cluster router (version 4): the logistic layer's
	// weights and the feature standardization. All empty when the saved
	// index had no trained router (too small, degenerate training set);
	// older files leave them at their gob zero values and Load retrains
	// transparently. RouteHasModel disambiguates "saved without a
	// router" from "pre-v4 file": a v4 file with it false loads with a
	// nil router instead of paying a pointless retrain.
	RouteHasModel         bool
	RouteBias             float64
	RouteW                []float64
	RouteMean, RouteScale []float64
}

const (
	persistVersionV1 = 1 // per-object vectors + [][]float32 projections
	persistVersionV2 = 2 // flat vector/projection arenas
	persistVersionV3 = 3 // v2 + the SQ8 quantized arena and codebook
	persistVersion   = 4 // v3 + the learned cluster-routing model
)

// Save writes the index (including its metric-space normalizers) to w.
func (x *Index) Save(w io.Writer) error {
	// The write overlay is a transient in-memory representation; the wire
	// format stays flat, so a snapshot carrying pending overlay writes is
	// folded before serializing.
	if x.delta != nil && x.delta.ops > 0 {
		nx, err := x.Compact()
		if err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		return nx.Save(w)
	}
	// Strip the per-object arena views from a copy of the objects slice
	// (never from the live one): the vectors travel once, in VecArena.
	objs := make([]dataset.Object, len(x.objects))
	copy(objs, x.objects)
	for i := range objs {
		objs[i].Vec = nil
	}
	g := gobIndex{
		Version:            persistVersion,
		Cfg:                x.cfg,
		DsMax:              x.space.DsMax,
		DtMax:              x.space.DtMax,
		DtProjMax:          x.space.DtProjMax,
		SemanticKind:       x.space.SemanticKind,
		Objects:            objs,
		Deleted:            x.deleted.bools(len(x.objects)),
		Live:               x.live,
		PCAModel:           x.pcaModel,
		Dim:                x.dim,
		M:                  x.m,
		VecArena:           x.vecArena,
		ProjArena:          x.projArena,
		SCentX:             x.sCentX,
		SCentY:             x.sCentY,
		SRad:               x.sRad,
		SMembers:           x.sMembers,
		TCent:              x.tCent,
		TRad:               x.tRad,
		TCentProj:          x.tCentProj,
		TRadProj:           x.tRadProj,
		TMembers:           x.tMembers,
		TValid:             x.tValid,
		SAssign:            x.sAssign,
		TAssign:            x.tAssign,
		UpdatesSinceBuild_: x.UpdatesSinceBuild,
	}
	if x.quant != nil {
		g.QuantLo = x.quant.cb.Lo
		g.QuantStep = x.quant.cb.Step
		g.QuantCodes = x.quant.codes
		g.QuantResid = x.quant.resid
	}
	if x.router != nil {
		g.RouteHasModel = true
		g.RouteBias = x.router.Bias
		g.RouteW = x.router.W
		g.RouteMean = x.router.Mean
		g.RouteScale = x.router.Scale
	}
	g.Clusters = make([]gobHybrid, len(x.clusters))
	for i, c := range x.clusters {
		gc := gobHybrid{S: c.s, T: c.t, Members: make([]gobMember, len(c.members))}
		for j, m := range c.members {
			gc.Members[j] = gobMember{Idx: m.idx, Ds: m.ds, Dt: m.dt}
		}
		g.Clusters[i] = gc
	}
	if err := gob.NewEncoder(w).Encode(&g); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// migrateV1 converts a decoded version-1 file — per-object vectors and
// per-row Proj slices, no arenas and no strides — into the version-2
// arena layout in place, after which the common load path applies
// unchanged. The float32 values are copied bit-for-bit, so a migrated
// index answers queries identically to one saved by the old code.
func migrateV1(g *gobIndex) error {
	if len(g.Proj) != len(g.Objects) {
		return fmt.Errorf("v1 file has %d projection rows for %d objects", len(g.Proj), len(g.Objects))
	}
	// Strides come from the stored data itself; the PCA model (always
	// present in v1 files, which were written only by Build) is the
	// fallback for the degenerate no-object case.
	if len(g.Objects) > 0 {
		g.Dim = len(g.Objects[0].Vec)
		g.M = len(g.Proj[0])
	} else if g.PCAModel != nil {
		g.Dim = g.PCAModel.N()
		g.M = g.PCAModel.M()
	}
	g.VecArena = make([]float32, len(g.Objects)*g.Dim)
	g.ProjArena = make([]float32, len(g.Objects)*g.M)
	for i := range g.Objects {
		if len(g.Objects[i].Vec) != g.Dim {
			return fmt.Errorf("v1 file: object %d has vector dim %d, want %d", i, len(g.Objects[i].Vec), g.Dim)
		}
		if len(g.Proj[i]) != g.M {
			return fmt.Errorf("v1 file: object %d has projection dim %d, want %d", i, len(g.Proj[i]), g.M)
		}
		copy(g.VecArena[i*g.Dim:(i+1)*g.Dim], g.Objects[i].Vec)
		copy(g.ProjArena[i*g.M:(i+1)*g.M], g.Proj[i])
		g.Objects[i].Vec = nil // repointed at the arena by the common path
	}
	g.Proj = nil
	return nil
}

// Load restores an index previously written by Save, together with its
// metric space. Both the current arena layout (version 2) and the legacy
// per-object layout (version 1) are accepted.
func Load(r io.Reader) (*Index, *metric.Space, error) {
	var g gobIndex
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, nil, fmt.Errorf("core: load: %w", err)
	}
	switch g.Version {
	case persistVersion, persistVersionV3, persistVersionV2:
	case persistVersionV1:
		if err := migrateV1(&g); err != nil {
			return nil, nil, fmt.Errorf("core: load: %w", err)
		}
	default:
		return nil, nil, fmt.Errorf("core: load: unsupported version %d", g.Version)
	}
	if g.Dim <= 0 || len(g.VecArena) != len(g.Objects)*g.Dim {
		return nil, nil, fmt.Errorf("core: load: vector arena length %d does not match %d objects of dim %d",
			len(g.VecArena), len(g.Objects), g.Dim)
	}
	if g.M <= 0 || len(g.ProjArena) != len(g.Objects)*g.M {
		return nil, nil, fmt.Errorf("core: load: projection arena length %d does not match %d objects of dim %d",
			len(g.ProjArena), len(g.Objects), g.M)
	}
	space := &metric.Space{DsMax: g.DsMax, DtMax: g.DtMax, DtProjMax: g.DtProjMax, SemanticKind: g.SemanticKind}
	x := &Index{
		cfg:               g.Cfg,
		space:             space,
		objects:           g.Objects,
		deleted:           bitsetFromBools(g.Deleted, len(g.Objects)),
		live:              g.Live,
		idToIdx:           make(map[uint32]uint32, g.Live),
		pcaModel:          g.PCAModel,
		dim:               g.Dim,
		m:                 g.M,
		vecArena:          g.VecArena,
		projArena:         g.ProjArena,
		scratchPool:       newScratchPool(),
		sCentX:            g.SCentX,
		sCentY:            g.SCentY,
		sRad:              g.SRad,
		sMembers:          g.SMembers,
		tCent:             g.TCent,
		tRad:              g.TRad,
		tCentProj:         g.TCentProj,
		tRadProj:          g.TRadProj,
		tMembers:          g.TMembers,
		tValid:            g.TValid,
		sAssign:           g.SAssign,
		tAssign:           g.TAssign,
		clusterIdx:        make(map[[2]int]*hybrid, len(g.Clusters)),
		UpdatesSinceBuild: g.UpdatesSinceBuild_,
	}
	for i := range x.objects {
		x.objects[i].Vec = x.vecAt(uint32(i))
		if !x.deleted.get(uint32(i)) {
			x.idToIdx[x.objects[i].ID] = uint32(i)
		}
	}
	// The drift baseline restarts from the loaded radii.
	x.builtSRad = append([]float64(nil), x.sRad...)
	x.builtTRadProj = append([]float64(nil), x.tRadProj...)
	// Files written before TValid existed: approximate centroid validity
	// by current membership (only wrong for clusters emptied by deletes,
	// which then merely stop attracting the all-empty insert fallback).
	if x.tValid == nil {
		x.tValid = make([]bool, len(x.tCent))
		for t := range x.tMembers {
			x.tValid[t] = len(x.tMembers[t]) > 0
		}
	}
	// Restore the SQ8 arena: version-3 files carry it verbatim (when the
	// saved index had one); older files — and v3 files saved without a
	// quant arena — retrain from the restored vector arena, so a legacy
	// load transparently gains the quantized scans. Retraining may pick
	// marginally different codebook ranges than the original build, but
	// exactness never depends on the codebook (only the bound pair does,
	// and it is admissible for any codebook).
	if len(g.QuantLo) > 0 || len(g.QuantStep) > 0 || len(g.QuantCodes) > 0 || len(g.QuantResid) > 0 {
		if len(g.QuantLo) != g.Dim || len(g.QuantStep) != g.Dim {
			return nil, nil, fmt.Errorf("core: load: quant codebook dims %d/%d do not match index dim %d",
				len(g.QuantLo), len(g.QuantStep), g.Dim)
		}
		if len(g.QuantCodes) != len(g.Objects)*g.Dim {
			return nil, nil, fmt.Errorf("core: load: quant code arena length %d does not match %d objects of dim %d",
				len(g.QuantCodes), len(g.Objects), g.Dim)
		}
		if len(g.QuantResid) != len(g.Objects) {
			return nil, nil, fmt.Errorf("core: load: quant residual arena length %d does not match %d objects",
				len(g.QuantResid), len(g.Objects))
		}
		x.quant = &quantArena{
			cb:    vec.NewSQ8Codebook(g.QuantLo, g.QuantStep),
			codes: g.QuantCodes,
			resid: g.QuantResid,
		}
	} else {
		x.quant = x.trainQuant()
	}
	x.clusters = make([]*hybrid, len(g.Clusters))
	for i, gc := range g.Clusters {
		c := &hybrid{s: gc.S, t: gc.T, members: make([]member, len(gc.Members))}
		for j, gm := range gc.Members {
			c.members[j] = member{idx: gm.Idx, ds: gm.Ds, dt: gm.Dt}
		}
		c.elems = buildElems(c.members)
		x.fillClusterQuant(c)
		x.clusters[i] = c
		x.clusterIdx[[2]int{gc.S, gc.T}] = c
	}
	// Restore the learned cluster router: version-4 files carry the
	// weights verbatim; older files retrain from the restored index (a
	// handful of self-queries — the clusters above must be built first),
	// so a legacy load transparently gains routed search. A v4 file
	// explicitly saved without a router stays routerless.
	if g.RouteHasModel {
		m := &route.Model{Bias: g.RouteBias, W: g.RouteW, Mean: g.RouteMean, Scale: g.RouteScale}
		if !m.Valid(routeFeatureCount) {
			return nil, nil, fmt.Errorf("core: load: routing model has %d weights, want %d",
				len(g.RouteW), routeFeatureCount)
		}
		x.setRouter(m)
	} else if g.Version < persistVersion {
		x.setRouter(x.trainRouter())
	}
	return x, space, nil
}
