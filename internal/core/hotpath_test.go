package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// SearchInto/SearchApproxInto must be the same computation as
// Search/SearchApprox, only appending into the caller's buffer.
func TestSearchIntoMatchesSearch(t *testing.T) {
	f := build(t, dataset.TwitterLike, 900, Config{Seed: 21})
	queries := f.ds.SampleQueries(20, 9)
	var buf, bufA []knn.Result
	for qi := range queries {
		q := &queries[qi]
		buf = f.idx.SearchInto(buf[:0], q, 10, 0.5, nil)
		sameResults(t, "SearchInto", f.idx.Search(q, 10, 0.5, nil), buf)
		bufA = f.idx.SearchApproxInto(bufA[:0], q, 10, 0.5, nil)
		sameResults(t, "SearchApproxInto", f.idx.SearchApprox(q, 10, 0.5, nil), bufA)
	}
}

// SearchInto must append after existing dst entries, not clobber them.
func TestSearchIntoAppends(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 22})
	q := &f.ds.Objects[5]
	sentinel := knn.Result{ID: 424242, Dist: -1}
	out := f.idx.SearchInto([]knn.Result{sentinel}, q, 5, 0.5, nil)
	if len(out) != 6 || out[0] != sentinel {
		t.Fatalf("dst prefix not preserved: %+v", out[:1])
	}
	sameResults(t, "appended tail", f.idx.Search(q, 5, 0.5, nil), out[1:])
}

// The core SearchBatch must agree with the sequential loop for every
// worker count, and its merged stats must equal the sequential sums
// (per-query work cannot depend on scheduling).
func TestCoreSearchBatchMatchesSequential(t *testing.T) {
	f := build(t, dataset.TwitterLike, 900, Config{Seed: 23})
	queries := f.ds.SampleQueries(30, 4)
	for _, approx := range []bool{false, true} {
		var seqSt metric.Stats
		seq := make([][]knn.Result, len(queries))
		for qi := range queries {
			if approx {
				seq[qi] = f.idx.SearchApprox(&queries[qi], 8, 0.5, &seqSt)
			} else {
				seq[qi] = f.idx.Search(&queries[qi], 8, 0.5, &seqSt)
			}
		}
		for _, workers := range []int{1, 3, 0} {
			var st metric.Stats
			batch, err := f.idx.SearchBatch(queries, 8, 0.5, workers, approx, &st)
			if err != nil {
				t.Fatalf("approx=%v workers=%d: %v", approx, workers, err)
			}
			if len(batch) != len(queries) {
				t.Fatalf("approx=%v workers=%d: %d result sets", approx, workers, len(batch))
			}
			for qi := range queries {
				sameResults(t, "batch", seq[qi], batch[qi])
			}
			if st != seqSt {
				t.Fatalf("approx=%v workers=%d: stats %+v, sequential %+v", approx, workers, st, seqSt)
			}
		}
	}
}

// Steady-state SearchInto must not allocate: all per-query state comes
// from the pooled scratch and the caller's result buffer. AllocsPerRun
// can see a stray allocation if GC empties the sync.Pool mid-measure,
// so the test retries a few times and passes if any attempt is clean.
func TestSearchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its caches under the race detector; zero-alloc steady state cannot hold")
	}
	f := build(t, dataset.TwitterLike, 2000, Config{Seed: 24})
	queries := f.ds.SampleQueries(16, 6)
	var st metric.Stats
	run := func(name string, query func(buf []knn.Result, q *dataset.Object) []knn.Result) {
		buf := make([]knn.Result, 0, 64)
		for qi := range queries { // warm-up: grow pooled scratch and buffer
			buf = query(buf[:0], &queries[qi])
		}
		var got float64
		for attempt := 0; attempt < 3; attempt++ {
			i := 0
			got = testing.AllocsPerRun(len(queries), func() {
				buf = query(buf[:0], &queries[i%len(queries)])
				i++
			})
			if got == 0 {
				return
			}
		}
		t.Errorf("%s: %v allocs per steady-state query, want 0", name, got)
	}
	run("SearchInto", func(buf []knn.Result, q *dataset.Object) []knn.Result {
		return f.idx.SearchInto(buf, q, 10, 0.5, &st)
	})
	run("SearchApproxInto", func(buf []knn.Result, q *dataset.Object) []knn.Result {
		return f.idx.SearchApproxInto(buf, q, 10, 0.5, &st)
	})
}

// The vector arena must survive maintenance: after inserts force an
// arena regrow plus deletes and updates, every object's Vec must still
// alias the arena row and searches must stay exact.
func TestArenaSurvivesMaintenance(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 25})
	// Enough inserts to outgrow the arena's initial capacity.
	extra, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 300, Dim: 32, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range extra.Objects {
		o := extra.Objects[i]
		o.ID = uint32(1_000_000 + i)
		if err := f.idx.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := f.idx.Delete(f.ds.Objects[i*3].ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := &extra.Objects[7]
	got := f.idx.Search(q, 10, 0.5, nil)
	if len(got) != 10 {
		t.Fatalf("got %d results", len(got))
	}
	if got[0].Dist != 0 {
		t.Fatalf("self-query top distance %v after maintenance", got[0].Dist)
	}
}
