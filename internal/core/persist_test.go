package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	f := build(t, dataset.TwitterLike, 600, Config{Seed: 80})
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, space, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if space.DsMax != f.sp.DsMax || space.DtMax != f.sp.DtMax || space.DtProjMax != f.sp.DtProjMax {
		t.Fatal("metric space not restored")
	}
	if loaded.Len() != f.idx.Len() || loaded.NumClusters() != f.idx.NumClusters() {
		t.Fatalf("shape mismatch: len %d/%d clusters %d/%d",
			loaded.Len(), f.idx.Len(), loaded.NumClusters(), f.idx.NumClusters())
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Loaded index answers identically for all algorithms.
	for qi := 0; qi < 5; qi++ {
		q := f.ds.Objects[(qi*83+3)%f.ds.Len()]
		for _, lambda := range []float64{0.2, 0.5, 1} {
			a := f.idx.Search(&q, 10, lambda, nil)
			b := loaded.Search(&q, 10, lambda, nil)
			sameResults(t, "loaded exact", a, b)
			aa := f.idx.SearchApprox(&q, 10, lambda, nil)
			bb := loaded.SearchApprox(&q, 10, lambda, nil)
			sameResults(t, "loaded approx", aa, bb)
		}
	}
}

func TestLoadedIndexSupportsMaintenance(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 81})
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	nova := f.ds.Objects[0]
	nova.ID = 70000
	nova.X = 0.9
	if err := loaded.Insert(nova); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Delete(f.ds.Objects[5].ID); err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 300 {
		t.Fatalf("len = %d", loaded.Len())
	}
}

func TestSaveAfterMaintenanceRoundTrips(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 82})
	for i := 0; i < 50; i++ {
		if err := f.idx.Delete(f.ds.Objects[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 350 {
		t.Fatalf("len = %d", loaded.Len())
	}
	if loaded.UpdatesSinceBuild != 50 {
		t.Fatalf("UpdatesSinceBuild = %d", loaded.UpdatesSinceBuild)
	}
	// Deleted objects stay deleted.
	if _, ok := loaded.Object(f.ds.Objects[3].ID); ok {
		t.Fatal("deleted object resurrected by round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected error")
	}
}
