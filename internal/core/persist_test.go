package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	f := build(t, dataset.TwitterLike, 600, Config{Seed: 80})
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, space, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if space.DsMax != f.sp.DsMax || space.DtMax != f.sp.DtMax || space.DtProjMax != f.sp.DtProjMax {
		t.Fatal("metric space not restored")
	}
	if loaded.Len() != f.idx.Len() || loaded.NumClusters() != f.idx.NumClusters() {
		t.Fatalf("shape mismatch: len %d/%d clusters %d/%d",
			loaded.Len(), f.idx.Len(), loaded.NumClusters(), f.idx.NumClusters())
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Loaded index answers identically for all algorithms.
	for qi := 0; qi < 5; qi++ {
		q := f.ds.Objects[(qi*83+3)%f.ds.Len()]
		for _, lambda := range []float64{0.2, 0.5, 1} {
			a := f.idx.Search(&q, 10, lambda, nil)
			b := loaded.Search(&q, 10, lambda, nil)
			sameResults(t, "loaded exact", a, b)
			aa := f.idx.SearchApprox(&q, 10, lambda, nil)
			bb := loaded.SearchApprox(&q, 10, lambda, nil)
			sameResults(t, "loaded approx", aa, bb)
		}
	}
}

func TestLoadedIndexSupportsMaintenance(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 81})
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	nova := f.ds.Objects[0]
	nova.ID = 70000
	nova.X = 0.9
	if err := loaded.Insert(nova); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Delete(f.ds.Objects[5].ID); err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 300 {
		t.Fatalf("len = %d", loaded.Len())
	}
}

func TestSaveAfterMaintenanceRoundTrips(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 82})
	for i := 0; i < 50; i++ {
		if err := f.idx.Delete(f.ds.Objects[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 350 {
		t.Fatalf("len = %d", loaded.Len())
	}
	if loaded.UpdatesSinceBuild != 50 {
		t.Fatalf("UpdatesSinceBuild = %d", loaded.UpdatesSinceBuild)
	}
	// Deleted objects stay deleted.
	if _, ok := loaded.Object(f.ds.Objects[3].ID); ok {
		t.Fatal("deleted object resurrected by round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected error")
	}
}

// saveAsV1 re-encodes a current save in the version-1 layout: per-object
// vectors and per-row Proj slices, no arenas, no strides — exactly what
// the pre-arena Save wrote (gob omits the zeroed arena fields from the
// stream just as it omitted the then-nonexistent ones).
func saveAsV1(t *testing.T, x *Index) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var g gobIndex
	if err := gob.NewDecoder(&buf).Decode(&g); err != nil {
		t.Fatal(err)
	}
	g.Version = persistVersionV1
	g.Proj = make([][]float32, len(g.Objects))
	for i := range g.Objects {
		g.Objects[i].Vec = append([]float32(nil), g.VecArena[i*g.Dim:(i+1)*g.Dim]...)
		g.Proj[i] = append([]float32(nil), g.ProjArena[i*g.M:(i+1)*g.M]...)
	}
	g.Dim, g.M = 0, 0
	g.VecArena, g.ProjArena = nil, nil
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(&g); err != nil {
		t.Fatal(err)
	}
	return &v1
}

func TestLoadMigratesV1Format(t *testing.T) {
	f := build(t, dataset.TwitterLike, 500, Config{Seed: 83})
	loaded, space, err := Load(saveAsV1(t, f.idx))
	if err != nil {
		t.Fatal(err)
	}
	if space.DtMax != f.sp.DtMax || space.DtProjMax != f.sp.DtProjMax {
		t.Fatal("metric space not restored from v1 file")
	}
	if loaded.Len() != f.idx.Len() || loaded.Dim() != f.idx.Dim() {
		t.Fatalf("shape mismatch: len %d/%d dim %d/%d",
			loaded.Len(), f.idx.Len(), loaded.Dim(), f.idx.Dim())
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The migrated arenas hold bit-identical values, so every algorithm
	// answers exactly as the original index does.
	for qi := 0; qi < 5; qi++ {
		q := f.ds.Objects[(qi*83+3)%f.ds.Len()]
		for _, lambda := range []float64{0.2, 0.5, 1} {
			sameResults(t, "v1 exact", f.idx.Search(&q, 10, lambda, nil), loaded.Search(&q, 10, lambda, nil))
			sameResults(t, "v1 approx", f.idx.SearchApprox(&q, 10, lambda, nil), loaded.SearchApprox(&q, 10, lambda, nil))
		}
	}
	// And the migrated index keeps supporting maintenance (arena appends).
	nova := f.ds.Objects[0]
	nova.ID = 90000
	if err := loaded.Insert(nova); err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	f := build(t, dataset.TwitterLike, 200, Config{Seed: 84})
	var buf bytes.Buffer
	if err := f.idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var g gobIndex
	if err := gob.NewDecoder(&buf).Decode(&g); err != nil {
		t.Fatal(err)
	}
	g.Version = 99
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&g); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(&out); err == nil {
		t.Fatal("expected error for unknown persist version")
	}
}
