package core

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// searchEager is the pre-frontier reference implementation of exact
// CSSI: every centroid distance computed up front, clusters sorted
// eagerly by TRUE lower bound, then scanned linearly with the Lemma 4.4
// cut-off. It lives in test code only — the production path is the lazy
// best-first frontier, and this reference pins its results.
func searchEager(x *Index, seed []knn.Result, q *dataset.Object, k int, lambda float64) []knn.Result {
	sc := x.getScratch()
	defer x.putScratch(sc)
	sc.order = sc.order[:0]
	x.fillSpatialCentroidDists(sc, q)
	x.fillSemanticCentroidDists(sc, q)
	for _, c := range x.clusters {
		sc.order = append(sc.order, orderedCluster{
			lb:      lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtq[c.t], x.tRad[c.t]),
			c:       c,
			refined: true,
		})
	}
	sortOrder(sc.order)
	h := &sc.heap
	h.Reset(k)
	for _, r := range seed {
		h.Push(r)
	}
	for _, e := range sc.order {
		if u, full := h.Bound(); full && e.lb >= u {
			break
		}
		x.scanCluster(sc, q, lambda, e.c, sc.dsq[e.c.s], sc.dtq[e.c.t], h, nil)
	}
	return h.AppendSorted(nil)
}

// searchApproxEager is the pre-frontier reference implementation of
// CSSIA: projected bounds for every cluster up front, eager sort, then
// the identical scan body run linearly.
func searchApproxEager(x *Index, q *dataset.Object, k int, lambda float64) []knn.Result {
	sc := x.getScratch()
	defer x.putScratch(sc)
	sc.order = sc.order[:0]
	qProj := sc.qProj
	x.pcaModel.TransformInto(qProj, q.Vec)
	x.fillSpatialCentroidDists(sc, q)
	for t := range sc.dtqProj {
		sc.dtqProj[t] = x.space.SemanticProjVec(qProj, x.tCentProj[t])
	}
	for _, c := range x.clusters {
		sc.order = append(sc.order, orderedCluster{
			lb:      lowerBound(lambda, sc.dsq[c.s], x.sRad[c.s], sc.dtqProj[c.t], x.tRadProj[c.t]),
			c:       c,
			refined: true,
		})
	}
	sortOrder(sc.order)
	cands := sc.cands[:0]
	defer func() { sc.cands = cands[:0] }()
	u, uPrime := math.Inf(1), math.Inf(1)
	for t := range sc.dtqKnown {
		sc.dtqKnown[t] = false
	}
	for _, oc := range sc.order {
		if len(cands) >= k && oc.lb >= uPrime {
			break
		}
		c := oc.c
		if !sc.dtqKnown[c.t] {
			sc.dtq[c.t] = x.space.SemanticVec(q.Vec, x.tCent[c.t])
			sc.dtqKnown[c.t] = true
		}
		dtqC := sc.dtq[c.t]
		enclosed := sc.dsq[c.s] < x.sRad[c.s] && dtqC < x.tRad[c.t]
		dqC := lambda*sc.dsq[c.s] + (1-lambda)*dtqC
		for ei := range c.elems {
			e := &c.elems[ei]
			if !enclosed && len(cands) >= k {
				bound := lambda*e.ds + (1-lambda)*e.dt
				if dqC-bound > u {
					break
				}
			}
			o := &x.objects[e.idx]
			ds := x.space.Spatial(nil, q.X, q.Y, o.X, o.Y)
			var dt float64
			if len(cands) >= k && lambda < 1 {
				dtBound := (u - lambda*ds) / (1 - lambda)
				var ok bool
				dt, ok = x.space.SemanticBound(nil, q.Vec, o.Vec, dtBound)
				if !ok {
					continue
				}
			} else {
				dt = x.space.Semantic(nil, q.Vec, o.Vec)
			}
			d := metric.Combine(lambda, ds, dt)
			if d < u || len(cands) < k {
				dpr := metric.Combine(lambda, ds, x.space.SemanticProjVec(qProj, x.projAt(e.idx)))
				cands.push(cand{id: o.ID, d: d, dpr: dpr})
				if len(cands) > k {
					cands.popMax()
				}
				if len(cands) == k {
					u = cands[0].d
					uPrime = cands.maxDPr()
				}
			}
		}
	}
	out := make([]knn.Result, 0, len(cands))
	for _, c := range cands {
		out = append(out, knn.Result{ID: c.id, Dist: c.d})
	}
	knn.SortResults(out)
	return out
}

// TestFrontierPopOrderMatchesSort pins the frontier's heap discipline:
// popping a heapified frontier yields the bounds in the exact order the
// eager sort produced (the best-first order lazily).
func TestFrontierPopOrderMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(120)
		entries := make([]orderedCluster, n)
		sorted := make([]float64, n)
		for i := range entries {
			lb := rng.Float64()
			if rng.IntN(5) == 0 {
				lb = 0 // force ties, the common enclosed-cluster case
			}
			entries[i] = orderedCluster{lb: lb}
			sorted[i] = lb
		}
		ref := append([]orderedCluster(nil), entries...)
		sortOrder(ref)
		f := (*clusterFrontier)(&entries)
		f.heapify()
		for i := 0; len(*f) > 0; i++ {
			got := f.pop()
			if got.lb != ref[i].lb {
				t.Fatalf("trial %d: pop %d has lb %v, eager sort has %v", trial, i, got.lb, ref[i].lb)
			}
		}
	}
}

// TestLazyVsEagerExact drives the lazy frontier search against the
// eager reference over random lambda and k, asserting bit-identical
// results (distances AND IDs — the heap's (dist, ID) tie-break makes
// the exact top-k a pure function of the candidate set).
func TestLazyVsEagerExact(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1200, Config{Seed: 90})
	if !f.idx.lazyOrderable() {
		t.Fatal("fixture should take the lazy weak-bound path")
	}
	rng := rand.New(rand.NewPCG(90, 1))
	for trial := 0; trial < 40; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		k := 1 + rng.IntN(25)
		lambda := rng.Float64()
		want := searchEager(f.idx, nil, &q, k, lambda)
		got := f.idx.Search(&q, k, lambda, nil)
		requireIdentical(t, "exact", trial, want, got)
	}
}

// TestLazyVsEagerExactAfterDeletes repeats the equality check after a
// random ~25% of the objects are deleted, so shrunken clusters and
// stale radii flow through both implementations.
func TestLazyVsEagerExactAfterDeletes(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1000, Config{Seed: 91})
	rng := rand.New(rand.NewPCG(91, 1))
	for i := range f.ds.Objects {
		if rng.Float64() < 0.25 {
			if err := f.idx.Delete(f.ds.Objects[i].ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	for trial := 0; trial < 30; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		k := 1 + rng.IntN(20)
		lambda := rng.Float64()
		want := searchEager(f.idx, nil, &q, k, lambda)
		got := f.idx.Search(&q, k, lambda, nil)
		requireIdentical(t, "exact+deletes", trial, want, got)
	}
}

// TestLazyVsEagerEagerBoundPath covers the non-lazy ordering path (no
// usable projection → entries enter the frontier already refined): an
// angular-semantic space disables the weak bound, but the frontier
// machinery still runs.
func TestLazyVsEagerEagerBoundPath(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 800, Dim: 32, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpaceWithSemantic(ds, metric.AngularSemantic)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, sp, Config{Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	if idx.lazyOrderable() {
		t.Fatal("angular fixture should NOT take the lazy weak-bound path")
	}
	rng := rand.New(rand.NewPCG(92, 1))
	for trial := 0; trial < 25; trial++ {
		q := ds.Objects[rng.IntN(ds.Len())]
		k := 1 + rng.IntN(15)
		lambda := rng.Float64()
		want := searchEager(idx, nil, &q, k, lambda)
		got := idx.Search(&q, k, lambda, nil)
		requireIdentical(t, "angular", trial, want, got)
	}
}

// TestLazyVsEagerSeededChained exercises the sharded single-worker
// path: the dataset is split into disjoint partitions sharing one
// metric space's normalizers (exactly as BuildSharded arranges), the
// k-NN heap is chained partition to partition with SearchSeededInto,
// and the chained result must equal both the flat index's answer and
// an eager-reference chain over the same partitions.
func TestLazyVsEagerSeededChained(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 1100, Dim: 32, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	space, err := metric.NewSpace(ds)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Build(ds, space, Config{Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	const parts = 3
	partDS := make([]*dataset.Dataset, parts)
	for i := range partDS {
		partDS[i] = &dataset.Dataset{Dim: ds.Dim}
	}
	for i := range ds.Objects {
		p := partDS[int(ds.Objects[i].ID)%parts]
		p.Objects = append(p.Objects, ds.Objects[i])
	}
	idxs := make([]*Index, parts)
	for i, p := range partDS {
		// Per-part space copy: Build sets the per-part projected
		// normalizer on it while the shared DsMax/DtMax carry over —
		// mirroring BuildSharded.
		partSpace := *space
		idxs[i], err = Build(p, &partSpace, Config{Seed: 93 + uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewPCG(93, 1))
	for trial := 0; trial < 25; trial++ {
		q := ds.Objects[rng.IntN(ds.Len())]
		k := 1 + rng.IntN(20)
		lambda := rng.Float64()
		var lazy, eager []knn.Result
		for _, x := range idxs {
			lazy = x.SearchSeededInto(nil, lazy, &q, k, lambda, nil)
			eager = searchEager(x, eager, &q, k, lambda)
		}
		want := flat.Search(&q, k, lambda, nil)
		requireIdentical(t, "chained lazy vs flat", trial, want, lazy)
		requireIdentical(t, "chained lazy vs chained eager", trial, eager, lazy)
	}
}

// TestLazyVsEagerApprox drives the frontier-based CSSIA against the
// eager-sorted reference. CSSIA's bounds are final from the start, so
// the frontier consumes clusters in exactly the eager order and the
// approximate answer — normally order-sensitive — must also match.
func TestLazyVsEagerApprox(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1200, Config{Seed: 94})
	rng := rand.New(rand.NewPCG(94, 1))
	for trial := 0; trial < 40; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		k := 1 + rng.IntN(25)
		lambda := rng.Float64()
		want := searchApproxEager(f.idx, &q, k, lambda)
		got := f.idx.SearchApprox(&q, k, lambda, nil)
		requireIdentical(t, "approx", trial, want, got)
	}
}

// TestLazyFilteredRangeBoxAfterDeletes covers the remaining frontier
// consumers — filtered, range, and box search — against brute-force
// references on an index with random deletions.
func TestLazyFilteredRangeBoxAfterDeletes(t *testing.T) {
	f := build(t, dataset.TwitterLike, 900, Config{Seed: 95})
	rng := rand.New(rand.NewPCG(95, 1))
	deleted := make(map[uint32]bool)
	for i := range f.ds.Objects {
		if rng.Float64() < 0.2 {
			id := f.ds.Objects[i].ID
			if err := f.idx.Delete(id); err != nil {
				t.Fatal(err)
			}
			deleted[id] = true
		}
	}
	live := func(id uint32) bool { return !deleted[id] }
	for trial := 0; trial < 15; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		lambda := rng.Float64()
		k := 1 + rng.IntN(15)

		keep := make(map[uint32]bool)
		for i := range f.ds.Objects {
			if rng.Float64() < 0.4 {
				keep[f.ds.Objects[i].ID] = true
			}
		}
		allow := func(id uint32) bool { return keep[id] }
		wantF := filteredBrute(f, &q, k, lambda, func(id uint32) bool { return live(id) && allow(id) })
		gotF := f.idx.SearchFiltered(&q, k, lambda, allow, nil)
		requireIdentical(t, "filtered", trial, wantF, gotF)

		r := 0.1 + 0.3*rng.Float64()
		wantR := rangeBruteLive(f, &q, r, lambda, live)
		gotR := f.idx.RangeSearch(&q, r, lambda, nil)
		requireIdentical(t, "range", trial, wantR, gotR)

		loX, loY := rng.Float64(), rng.Float64()
		hiX, hiY := loX+rng.Float64(), loY+rng.Float64()
		wantB := boxBruteLive(f, &q, loX, loY, hiX, hiY, k, live)
		gotB := f.idx.SearchInBox(&q, loX, loY, hiX, hiY, k, nil)
		requireIdentical(t, "box", trial, wantB, gotB)
	}
}

// TestRoutedExactStressUnderRebuild is the combined property stress:
// an index with ~20% deletions serves routed exact searches from
// several goroutines — each pinned bit-identical to the eager
// reference — while RebuildFresh reconstructs replacement indexes
// (retraining their routers) in the background, exactly the core-level
// shape of the concurrency layer's non-blocking rebuild. The rebuilt
// index must then pass the same bit-identity check. Run under -race
// this also proves the routed pre-pass shares no mutable state across
// queries beyond the pooled scratch.
func TestRoutedExactStressUnderRebuild(t *testing.T) {
	f := build(t, dataset.TwitterLike, 1500, Config{Seed: 96})
	if f.idx.Router() == nil {
		t.Fatal("fixture has no trained router")
	}
	rng := rand.New(rand.NewPCG(96, 1))
	for i := range f.ds.Objects {
		if rng.Float64() < 0.2 {
			if err := f.idx.Delete(f.ds.Objects[i].ID); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Background rebuilds: RebuildFresh never mutates f.idx, so the
	// searchers below keep reading it concurrently, race-free.
	rebuilt := make(chan *Index, 1)
	go func() {
		var last *Index
		for i := 0; i < 3; i++ {
			fresh, err := f.idx.RebuildFresh()
			if err != nil {
				t.Errorf("background rebuild %d: %v", i, err)
				rebuilt <- nil
				return
			}
			last = fresh
		}
		rebuilt <- last
	}()

	const searchers = 4
	var wg sync.WaitGroup
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(96, 2+uint64(g)))
			for trial := 0; trial < 20; trial++ {
				q := f.ds.Objects[rng.IntN(f.ds.Len())]
				k := 1 + rng.IntN(20)
				lambda := rng.Float64()
				want := searchEager(f.idx, nil, &q, k, lambda)
				got := f.idx.SearchOptionsInto(nil, &q, k, lambda, SearchOptions{Route: true}, nil)
				if len(got) != len(want) {
					t.Errorf("searcher %d trial %d: got %d results, want %d", g, trial, len(got), len(want))
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("searcher %d trial %d result %d: got {%d %v}, want {%d %v}",
							g, trial, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	fresh := <-rebuilt
	if fresh == nil {
		return // rebuild already reported its error
	}
	if fresh.Router() == nil {
		t.Fatal("rebuilt index has no retrained router")
	}
	for trial := 0; trial < 15; trial++ {
		q := f.ds.Objects[rng.IntN(f.ds.Len())]
		k := 1 + rng.IntN(20)
		lambda := rng.Float64()
		want := searchEager(fresh, nil, &q, k, lambda)
		got := fresh.SearchOptionsInto(nil, &q, k, lambda, SearchOptions{Route: true}, nil)
		requireIdentical(t, "rebuilt routed", trial, want, got)
	}
}

// rangeBruteLive is the reference range query over live objects.
func rangeBruteLive(f *fixture, q *dataset.Object, r, lambda float64, live func(uint32) bool) []knn.Result {
	var out []knn.Result
	for i := range f.ds.Objects {
		o := &f.ds.Objects[i]
		if !live(o.ID) {
			continue
		}
		if d := f.sp.Distance(nil, lambda, q, o); d <= r {
			out = append(out, knn.Result{ID: o.ID, Dist: d})
		}
	}
	knn.SortResults(out)
	return out
}

// boxBruteLive is the reference windowed semantic k-NN over live
// objects (lambda 0: pure semantic ranking inside the window).
func boxBruteLive(f *fixture, q *dataset.Object, loX, loY, hiX, hiY float64, k int, live func(uint32) bool) []knn.Result {
	h := knn.NewHeap(k)
	for i := range f.ds.Objects {
		o := &f.ds.Objects[i]
		if !live(o.ID) || o.X < loX || o.X > hiX || o.Y < loY || o.Y > hiY {
			continue
		}
		h.Push(knn.Result{ID: o.ID, Dist: f.sp.Semantic(nil, q.Vec, o.Vec)})
	}
	return h.Sorted()
}

// requireIdentical asserts two result lists are bit-identical: same
// length, same IDs, same distances, same order.
func requireIdentical(t *testing.T, ctx string, trial int, want, got []knn.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s trial %d: got %d results, want %d", ctx, trial, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s trial %d result %d: got {%d %v}, want {%d %v}",
				ctx, trial, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}
