package core

import (
	"fmt"

	"repro/internal/dataset"
)

// Insert adds a new object to the index incrementally (§6.2): the object
// joins the nearest spatial and nearest semantic cluster, radii expand if
// needed, and only the affected hybrid cluster's array is rebuilt — the
// clustering itself is untouched.
func (x *Index) Insert(o dataset.Object) error {
	if x.delta != nil {
		return x.deltaInsert(o)
	}
	if prev, ok := x.idToIdx[o.ID]; ok && !x.deleted.get(prev) {
		return fmt.Errorf("core: object ID %d already present", o.ID)
	}
	if len(o.Vec) != x.pcaModel.N() {
		return fmt.Errorf("core: vector dim %d, index expects %d", len(o.Vec), x.pcaModel.N())
	}
	idx := uint32(len(x.objects))
	x.objects = append(x.objects, o)
	x.deleted = x.deleted.grown(len(x.objects))
	x.appendArenaRows(idx)
	x.idToIdx[o.ID] = idx

	// Nearest spatial cluster by location.
	s := 0
	bestS := x.spatialToCent(idx, 0)
	for c := 1; c < len(x.sCentX); c++ {
		if d := x.spatialToCent(idx, c); d < bestS {
			s, bestS = c, d
		}
	}
	// Nearest semantic cluster in the projected space (the space the
	// semantic clustering was fit in). Clusters that never received a
	// member have meaningless centroids and are skipped.
	t, bestT := -1, 0.0
	for c := 0; c < len(x.tCentProj); c++ {
		if len(x.tMembers[c]) == 0 {
			continue
		}
		if d := x.projToCent(idx, c); t < 0 || d < bestT {
			t, bestT = c, d
		}
	}
	if t < 0 {
		// Every semantic cluster is currently empty (the whole dataset
		// was deleted). Fall back to the nearest cluster whose centroid
		// is valid — one that had members at build time — never to an
		// arbitrary cluster whose centroid may be a meaningless zero
		// vector far from any data.
		for c := 0; c < len(x.tCentProj); c++ {
			if !x.tValid[c] {
				continue
			}
			if d := x.projToCent(idx, c); t < 0 || d < bestT {
				t, bestT = c, d
			}
		}
	}
	if t < 0 {
		t, bestT = 0, x.projToCent(idx, 0) // unreachable after Build: ≥1 cluster is always valid
	}
	x.sAssign = append(x.sAssign, s)
	x.tAssign = append(x.tAssign, t)
	x.sMembers[s] = append(x.sMembers[s], idx)
	x.tMembers[t] = append(x.tMembers[t], idx)

	// Expand radii where the newcomer falls outside (§6.2). Only radii
	// ever change after build — the centroids (tCent, tCentProj, sCent*)
	// are immutable until the next Build/Rebuild. The lazy cluster
	// ordering of Search depends on that: its projected weak bound is
	// sound only while tCentProj[t] stays the projection of tCent[t]
	// (see fillProjLowerBounds), so any future centroid maintenance must
	// recompute both representations together. CheckInvariants asserts
	// both the pairing and the bound's soundness.
	if bestS > x.sRad[s] {
		x.sRad[s] = bestS
	}
	if d := x.semanticToCent(idx, t); d > x.tRad[t] {
		x.tRad[t] = d
	}
	if bestT > x.tRadProj[t] {
		x.tRadProj[t] = bestT
	}
	// Drift signal: compare against the build-time balls.
	x.insertsSinceBuild++
	if bestS > x.builtSRad[s] || bestT > x.builtTRadProj[t] {
		x.radiusDrifts++
	}

	c := x.addToHybrid(idx)
	c.elems = buildElems(c.members)
	x.fillClusterQuant(c)
	x.live++
	x.UpdatesSinceBuild++
	return nil
}

// DriftRatio reports the fraction of post-build inserts that landed
// outside the build-time ball of their nearest clusters — a cheap signal
// that the incoming data no longer follows the distribution the clusters
// were fitted on. Values near zero mean the incremental path of §6.2 is
// healthy; sustained high values suggest calling Rebuild. Returns 0
// before any insert.
func (x *Index) DriftRatio() float64 {
	if x.insertsSinceBuild == 0 {
		return 0
	}
	return float64(x.radiusDrifts) / float64(x.insertsSinceBuild)
}

// Delete removes the object with the given ID (§6.2). If the object
// determined one of its clusters' radii, the radius is recomputed from
// the remaining members.
func (x *Index) Delete(id uint32) error {
	if x.delta != nil {
		return x.deltaDelete(id)
	}
	idx, ok := x.idToIdx[id]
	if !ok || x.deleted.get(idx) {
		return fmt.Errorf("core: object ID %d not present", id)
	}
	x.deleted.set(idx)
	delete(x.idToIdx, id)
	x.live--
	x.UpdatesSinceBuild++

	s, t := x.sAssign[idx], x.tAssign[idx]
	x.sMembers[s] = x.removeIdxCOW(x.sMembers[s], idx)
	x.tMembers[t] = x.removeIdxCOW(x.tMembers[t], idx)

	// Remove from the hybrid cluster and rebuild its array.
	key := [2]int{s, t}
	c := x.cowHybrid(x.clusterIdx[key])
	for i := range c.members {
		if c.members[i].idx == idx {
			c.members[i] = c.members[len(c.members)-1]
			c.members = c.members[:len(c.members)-1]
			break
		}
	}
	if len(c.members) == 0 {
		delete(x.clusterIdx, key)
		for i, cc := range x.clusters {
			if cc == c {
				x.clusters[i] = x.clusters[len(x.clusters)-1]
				x.clusters = x.clusters[:len(x.clusters)-1]
				break
			}
		}
	} else {
		c.elems = buildElems(c.members)
		x.fillClusterQuant(c)
	}

	// Shrink radii when the deleted object was the farthest member (the
	// "infrequent case" of §6.2).
	if x.spatialToCent(idx, s) >= x.sRad[s] {
		x.sRad[s] = 0
		for _, mi := range x.sMembers[s] {
			if d := x.spatialToCent(mi, s); d > x.sRad[s] {
				x.sRad[s] = d
			}
		}
	}
	if x.semanticToCent(idx, t) >= x.tRad[t] {
		x.tRad[t] = 0
		for _, mi := range x.tMembers[t] {
			if d := x.semanticToCent(mi, t); d > x.tRad[t] {
				x.tRad[t] = d
			}
		}
	}
	if x.projToCent(idx, t) >= x.tRadProj[t] {
		x.tRadProj[t] = 0
		for _, mi := range x.tMembers[t] {
			if d := x.projToCent(mi, t); d > x.tRadProj[t] {
				x.tRadProj[t] = d
			}
		}
	}
	return nil
}

// Update replaces the stored object with o's ID by o — a deletion
// followed by an insertion, as the paper defines updates (§6.2).
func (x *Index) Update(o dataset.Object) error {
	if err := x.Delete(o.ID); err != nil {
		return fmt.Errorf("core: update: %w", err)
	}
	if err := x.Insert(o); err != nil {
		return fmt.Errorf("core: update: %w", err)
	}
	return nil
}

// Rebuild reconstructs the index from scratch over the live objects —
// the remedy §6.2 prescribes after the data distribution has drifted.
// The rebuild happens in place (x's value is replaced) and refreshes
// the shared metric space's projected normalizer; it must not run
// concurrently with readers — the snapshot path uses RebuildFresh.
func (x *Index) Rebuild() error {
	ds := &dataset.Dataset{Objects: x.collectLive(), Dim: x.pcaModel.N()}
	fresh, err := Build(ds, x.space, x.cfg)
	if err != nil {
		return fmt.Errorf("core: rebuild: %w", err)
	}
	*x = *fresh
	return nil
}

// RebuildFresh builds a brand-new index over the live objects without
// mutating x in any way: the non-blocking rebuild path, where readers
// keep querying x while the replacement is constructed off to the side
// and published afterwards. The fresh index gets its own copy of the
// metric space, because Build recomputes the projected-space normalizer
// (DtProjMax) and concurrent readers of x still depend on the old one.
func (x *Index) RebuildFresh() (*Index, error) {
	ds := &dataset.Dataset{Objects: x.collectLive(), Dim: x.pcaModel.N()}
	spaceCopy := *x.space
	fresh, err := Build(ds, &spaceCopy, x.cfg)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild: %w", err)
	}
	return fresh, nil
}

// collectLive snapshots the live objects in storage order: the base
// objects minus deletions and overlay tombstones, then the overlay's
// live inserts in append order.
func (x *Index) collectLive() []dataset.Object {
	liveObjs := make([]dataset.Object, 0, x.live)
	d := x.delta
	for i := range x.objects {
		if x.deleted.get(uint32(i)) {
			continue
		}
		if d != nil && d.tombs.get(uint32(i)) {
			continue
		}
		liveObjs = append(liveObjs, x.objects[i])
	}
	if d != nil {
		for pos := range d.objs {
			if !d.dead.get(uint32(pos)) {
				liveObjs = append(liveObjs, d.objs[pos])
			}
		}
	}
	return liveObjs
}

// appendArenaRows copies the vector of the just-appended object into a
// new vecArena row, projects it into a new projArena row, and repoints
// the stored object's Vec at the arena. When the vector arena must
// grow, every stored view is repointed at the new backing array —
// amortized O(1) per insert thanks to the doubling growth.
func (x *Index) appendArenaRows(idx uint32) {
	src := x.objects[idx].Vec
	if need := len(x.vecArena) + x.dim; need > cap(x.vecArena) {
		na := make([]float32, len(x.vecArena), arenaCap(need, cap(x.vecArena)))
		copy(na, x.vecArena)
		x.vecArena = na
		// Repointing rewrites every stored Vec view — an interior write,
		// so a COW clone must own the objects slice first. (The append
		// path below needs no ownership: it only writes past the
		// parent's length.)
		x.ensureOwnedObjects()
		for i := uint32(0); i < idx; i++ {
			x.objects[i].Vec = x.vecAt(i)
		}
	}
	x.vecArena = append(x.vecArena, src...)
	x.objects[idx].Vec = x.vecAt(idx)

	if need := len(x.projArena) + x.m; need > cap(x.projArena) {
		na := make([]float32, len(x.projArena), arenaCap(need, cap(x.projArena)))
		copy(na, x.projArena)
		x.projArena = na
	}
	x.projArena = x.projArena[:len(x.projArena)+x.m]
	x.pcaModel.TransformInto(x.projAt(idx), x.objects[idx].Vec)

	// The SQ8 companion row follows the same append discipline; the
	// build-time codebook stays fixed (out-of-range values clamp, with
	// the clamping error absorbed into the stored residual, so the
	// quantized bounds remain admissible without retraining).
	x.appendQuantRow(idx)
}

// arenaCap doubles the arena capacity until it covers need.
func arenaCap(need, old int) int {
	c := old * 2
	if c < need {
		c = need
	}
	return c
}

func removeIdx(list []uint32, idx uint32) []uint32 {
	for i, v := range list {
		if v == idx {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}
