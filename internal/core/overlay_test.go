package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
)

// mutateBoth drives an overlay clone and an eager clone through the
// same write stream: inserts of fresh objects, deletes of base objects,
// updates, and deletes of overlay-inserted objects. Returns the set of
// IDs that must not appear in any result.
func mutateBoth(t *testing.T, overlay, eager *Index, extra []dataset.Object, baseIDs []uint32) map[uint32]bool {
	t.Helper()
	apply := func(op string, fn func(x *Index) error) {
		if err := fn(overlay); err != nil {
			t.Fatalf("overlay %s: %v", op, err)
		}
		if err := fn(eager); err != nil {
			t.Fatalf("eager %s: %v", op, err)
		}
	}
	deadIDs := make(map[uint32]bool)
	// Inserts.
	for i := range extra {
		o := extra[i]
		apply("insert", func(x *Index) error { return x.Insert(o) })
	}
	// Deletes of base objects.
	for _, id := range baseIDs[:len(baseIDs)/2] {
		id := id
		apply("delete", func(x *Index) error { return x.Delete(id) })
		deadIDs[id] = true
	}
	// Updates of base objects: keep the ID, move location and vector.
	for i, id := range baseIDs[len(baseIDs)/2:] {
		o := extra[i%len(extra)]
		o.ID = id
		apply("update", func(x *Index) error { return x.Update(o) })
	}
	// Deletes of overlay-inserted objects (log-slot death path).
	for i := 0; i < len(extra)/4; i++ {
		id := extra[i].ID
		apply("delete-inserted", func(x *Index) error { return x.Delete(id) })
		deadIDs[id] = true
	}
	return deadIDs
}

func overlayFixture(t *testing.T, size int) (*fixture, *Index, *Index, map[uint32]bool) {
	t.Helper()
	f := build(t, dataset.TwitterLike, size, Config{Seed: 91})
	extraDS, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: size / 4, Dim: 32, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	extra := extraDS.Objects
	for i := range extra {
		extra[i].ID += 1 << 20
	}
	var baseIDs []uint32
	for i := 0; i < size/5; i++ {
		baseIDs = append(baseIDs, f.ds.Objects[(i*37+11)%size].ID)
	}
	overlay := f.idx.CloneWithDelta()
	eager := f.idx.CloneForWrite()
	deadIDs := mutateBoth(t, overlay, eager, extra, dedupIDs(baseIDs))
	return f, overlay, eager, deadIDs
}

func dedupIDs(ids []uint32) []uint32 {
	seen := make(map[uint32]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// The tentpole property: after an identical mutation stream, base+delta
// search is bit-identical to the eagerly-mutated clone AND to the
// compacted fold, across every exact mode.
func TestOverlayExactEquivalence(t *testing.T) {
	f, overlay, eager, _ := overlayFixture(t, 1200)
	if overlay.Len() != eager.Len() {
		t.Fatalf("live counts diverged: overlay %d, eager %d", overlay.Len(), eager.Len())
	}
	if err := overlay.CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants: %v", err)
	}
	compacted, err := overlay.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if compacted.DeltaOps() != 0 {
		t.Fatalf("compacted index still carries %d delta ops", compacted.DeltaOps())
	}
	if err := compacted.CheckInvariants(); err != nil {
		t.Fatalf("compacted invariants: %v", err)
	}
	if compacted.Len() != overlay.Len() {
		t.Fatalf("compaction changed live count: %d vs %d", compacted.Len(), overlay.Len())
	}
	for _, lambda := range []float64{0, 0.3, 0.5, 0.8, 1} {
		for _, k := range []int{1, 10, 60} {
			for qi := 0; qi < 4; qi++ {
				q := f.ds.Objects[(qi*211+7)%f.ds.Len()]
				want := eager.Search(&q, k, lambda, nil)
				identicalResults(t, "exact vs eager", want, overlay.Search(&q, k, lambda, nil))
				identicalResults(t, "exact vs compacted", want, compacted.Search(&q, k, lambda, nil))
			}
		}
	}
	q := f.ds.Objects[17]
	// Filtered: an ID-parity predicate.
	allow := func(id uint32) bool { return id%2 == 0 }
	identicalResults(t, "filtered",
		eager.SearchFiltered(&q, 10, 0.5, allow, nil),
		overlay.SearchFiltered(&q, 10, 0.5, allow, nil))
	// Range.
	identicalResults(t, "range",
		eager.RangeSearch(&q, 0.2, 0.5, nil),
		overlay.RangeSearch(&q, 0.2, 0.5, nil))
	// Box (window around the query).
	identicalResults(t, "box",
		eager.SearchInBox(&q, q.X-0.2, q.Y-0.2, q.X+0.2, q.Y+0.2, 10, nil),
		overlay.SearchInBox(&q, q.X-0.2, q.Y-0.2, q.X+0.2, q.Y+0.2, 10, nil))
	// Ablated (all switch combinations stay exact over base+delta).
	for _, opts := range []AblationOptions{
		{}, {DisableInterCluster: true}, {DisableIntraCluster: true}, {DisableClusterOrder: true},
		{DisableInterCluster: true, DisableIntraCluster: true, DisableClusterOrder: true},
	} {
		identicalResults(t, "ablated",
			eager.SearchAblated(&q, 10, 0.5, opts, nil),
			overlay.SearchAblated(&q, 10, 0.5, opts, nil))
	}
	// Routed exact: bit-identical like any exact mode.
	identicalResults(t, "routed exact",
		eager.SearchOptionsInto(nil, &q, 10, 0.5, SearchOptions{Route: true}, nil),
		overlay.SearchOptionsInto(nil, &q, 10, 0.5, SearchOptions{Route: true}, nil))
}

// The approximate modes must never resurrect a deleted object nor miss
// an overlay insert that the eagerly-mutated clone returns. (Their
// base-cluster coverage is heuristic, so full bit-identity is not the
// contract; full-delta scanning plus tombstone skipping is.)
func TestOverlayApproxNoResurrection(t *testing.T) {
	f, overlay, _, deadIDs := overlayFixture(t, 1200)
	check := func(mode string, res []knn.Result) {
		t.Helper()
		for _, r := range res {
			if deadIDs[r.ID] {
				t.Fatalf("%s resurrected deleted object %d", mode, r.ID)
			}
			if _, ok := overlay.Object(r.ID); !ok {
				t.Fatalf("%s returned non-live object %d", mode, r.ID)
			}
		}
	}
	for qi := 0; qi < 6; qi++ {
		q := f.ds.Objects[(qi*131+5)%f.ds.Len()]
		check("approx", overlay.SearchApprox(&q, 20, 0.5, nil))
		check("quant-only", overlay.SearchOptionsInto(nil, &q, 20, 0.5,
			SearchOptions{Approx: true, Quant: QuantOnly}, nil))
		check("routed", overlay.SearchOptionsInto(nil, &q, 20, 0.5,
			SearchOptions{Approx: true, Route: true}, nil))
	}
}

// Sibling isolation: cloning an overlay snapshot and mutating the child
// never changes the parent's answers (the property RCU publication
// rests on).
func TestOverlayCloneIsolation(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 93})
	parent := f.idx.CloneWithDelta()
	if err := parent.Insert(dataset.Object{ID: 1 << 21, X: 0.5, Y: 0.5, Vec: f.ds.Objects[0].Vec}); err != nil {
		t.Fatal(err)
	}
	q := f.ds.Objects[9]
	before := parent.Search(&q, 10, 0.5, nil)
	beforeLen := parent.Len()

	child := parent.CloneWithDelta()
	if err := child.Delete(f.ds.Objects[9].ID); err != nil {
		t.Fatal(err)
	}
	if err := child.Delete(1 << 21); err != nil {
		t.Fatal(err)
	}
	if err := child.Insert(dataset.Object{ID: 1 << 22, X: 0.1, Y: 0.9, Vec: f.ds.Objects[1].Vec}); err != nil {
		t.Fatal(err)
	}
	if parent.Len() != beforeLen {
		t.Fatalf("child mutation changed parent Len: %d -> %d", beforeLen, parent.Len())
	}
	identicalResults(t, "parent after child writes", before, parent.Search(&q, 10, 0.5, nil))
	if _, ok := parent.Object(1 << 21); !ok {
		t.Fatal("child delete leaked into parent overlay")
	}
	if err := child.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Save on an overlay-carrying snapshot folds the delta (the wire format
// stays flat), and the loaded index answers like the overlay did.
func TestOverlayPersistRoundTrip(t *testing.T) {
	f, overlay, eager, _ := overlayFixture(t, 600)
	var buf bytes.Buffer
	if err := overlay.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DeltaOps() != 0 {
		t.Fatal("loaded index carries a write overlay")
	}
	if loaded.Len() != overlay.Len() {
		t.Fatalf("loaded Len %d, want %d", loaded.Len(), overlay.Len())
	}
	for qi := 0; qi < 4; qi++ {
		q := f.ds.Objects[(qi*97+3)%f.ds.Len()]
		identicalResults(t, "loaded",
			eager.Search(&q, 10, 0.5, nil),
			loaded.Search(&q, 10, 0.5, nil))
	}
}

// Mutation-path bookkeeping: DeltaOps counts every write, duplicate and
// missing IDs error exactly like the eager path, and ForEachLive /
// collectLive see base minus tombstones plus live overlay inserts.
func TestOverlayBookkeeping(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 94})
	x := f.idx.CloneWithDelta()
	if x.DeltaOps() != 0 {
		t.Fatalf("fresh overlay has %d ops", x.DeltaOps())
	}
	o := dataset.Object{ID: 1 << 20, X: 0.3, Y: 0.7, Vec: f.ds.Objects[2].Vec}
	if err := x.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(o); err == nil {
		t.Fatal("duplicate overlay insert accepted")
	}
	if err := x.Insert(f.ds.Objects[5]); err == nil {
		t.Fatal("duplicate of base ID accepted")
	}
	if err := x.Delete(424242); err == nil {
		t.Fatal("delete of unknown ID accepted")
	}
	if err := x.Delete(f.ds.Objects[5].ID); err != nil {
		t.Fatal(err)
	}
	if err := x.Delete(f.ds.Objects[5].ID); err == nil {
		t.Fatal("double delete accepted")
	}
	// Re-insert a tombstoned ID: allowed, lands in the overlay.
	if err := x.Insert(f.ds.Objects[5]); err != nil {
		t.Fatalf("re-insert after overlay delete: %v", err)
	}
	if got := x.DeltaOps(); got != 3 {
		t.Fatalf("DeltaOps = %d, want 3", got)
	}
	if x.Len() != 301 {
		t.Fatalf("Len = %d, want 301", x.Len())
	}
	n := 0
	x.ForEachLive(func(*dataset.Object) { n++ })
	if n != 301 {
		t.Fatalf("ForEachLive visited %d, want 301", n)
	}
	if live := x.collectLive(); len(live) != 301 {
		t.Fatalf("collectLive returned %d, want 301", len(live))
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
