package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
)

// Mutating a copy-on-write clone must never change what the parent
// snapshot returns: that isolation is the entire safety argument of the
// lock-free publication scheme in the public ConcurrentIndex.
func TestCloneForWriteIsolation(t *testing.T) {
	f := build(t, dataset.TwitterLike, 400, Config{Seed: 9})
	q := f.ds.Objects[17]
	before := f.idx.Search(&q, 10, 0.5, nil)
	wantLen := f.idx.Len()

	clone := f.idx.CloneForWrite()
	// A mix of every mutation kind, hitting many clusters.
	for i := 0; i < 60; i++ {
		o := f.ds.Objects[i%f.ds.Len()]
		o.ID = uint32(500000 + i)
		if err := clone.Insert(o); err != nil {
			t.Fatalf("clone insert %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := clone.Delete(f.ds.Objects[i].ID); err != nil {
			t.Fatalf("clone delete %d: %v", i, err)
		}
	}

	if f.idx.Len() != wantLen {
		t.Fatalf("parent Len changed: %d, want %d", f.idx.Len(), wantLen)
	}
	after := f.idx.Search(&q, 10, 0.5, nil)
	sameResults(t, "parent search after clone mutation", before, after)
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatalf("parent invariants: %v", err)
	}
	if err := clone.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	if clone.Len() != wantLen+20 {
		t.Fatalf("clone Len = %d, want %d", clone.Len(), wantLen+20)
	}
	// Differential check: the clone answers exactly like a fresh build
	// over its live set would.
	cq := f.ds.Objects[99]
	got := clone.Search(&cq, 8, 0.5, nil)
	fresh, err := clone.RebuildFresh()
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Search(&cq, 8, 0.5, nil)
	sameResults(t, "clone vs rebuilt", want, got)
}

// Growing the clone past the shared arena's capacity must repoint only
// the clone's Vec headers; the parent keeps reading its own arena.
func TestCloneForWriteArenaGrowth(t *testing.T) {
	f := build(t, dataset.TwitterLike, 100, Config{Seed: 5})
	q := f.ds.Objects[3]
	before := f.idx.Search(&q, 5, 0.5, nil)

	clone := f.idx.CloneForWrite()
	// Insert far more rows than any spare arena capacity to force at
	// least one arena growth cycle inside the clone.
	for i := 0; i < 300; i++ {
		o := f.ds.Objects[i%f.ds.Len()]
		o.ID = uint32(700000 + i)
		if err := clone.Insert(o); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	after := f.idx.Search(&q, 5, 0.5, nil)
	sameResults(t, "parent search after arena growth", before, after)
	if err := clone.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatalf("parent invariants: %v", err)
	}
}

// Chained clones (snapshot lineage A -> B -> C) must each stay frozen
// while their successors mutate — the ConcurrentIndex publishes exactly
// such a chain, one clone per write.
func TestCloneChain(t *testing.T) {
	f := build(t, dataset.YelpLike, 200, Config{Seed: 21})
	q := f.ds.Objects[42]
	gen := []*Index{f.idx}
	want := [][]knn.Result{f.idx.Search(&q, 6, 0.5, nil)}
	for g := 0; g < 4; g++ {
		next := gen[len(gen)-1].CloneForWrite()
		o := f.ds.Objects[g]
		o.ID = uint32(800000 + g)
		if err := next.Insert(o); err != nil {
			t.Fatal(err)
		}
		if err := next.Delete(f.ds.Objects[g].ID); err != nil {
			t.Fatal(err)
		}
		gen = append(gen, next)
		want = append(want, next.Search(&q, 6, 0.5, nil))
	}
	// Every generation still answers exactly as it did when it was the
	// head of the chain.
	for g, idx := range gen {
		sameResults(t, "generation", want[g], idx.Search(&q, 6, 0.5, nil))
		if err := idx.CheckInvariants(); err != nil {
			t.Fatalf("generation %d invariants: %v", g, err)
		}
	}
}

// Regression: Insert after deleting EVERY object must fall back to a
// cluster whose centroid was valid at build time, not blindly to
// cluster 0 (whose centroid may be meaningless if it never had
// members). The index must stay searchable throughout.
func TestInsertAfterTotalDeletion(t *testing.T) {
	f := build(t, dataset.TwitterLike, 60, Config{Seed: 13})
	for _, o := range f.ds.Objects {
		if err := f.idx.Delete(o.ID); err != nil {
			t.Fatalf("delete %d: %v", o.ID, err)
		}
	}
	if f.idx.Len() != 0 {
		t.Fatalf("Len = %d after total deletion", f.idx.Len())
	}
	// Re-insert everything; the first insert exercises the all-empty
	// fallback, later ones the normal populated path.
	for i, o := range f.ds.Objects {
		o.ID = uint32(900000 + i)
		if err := f.idx.Insert(o); err != nil {
			t.Fatalf("re-insert %d: %v", i, err)
		}
		// The fallback must have picked a build-time-valid cluster.
		lastT := f.idx.tAssign[len(f.idx.tAssign)-1]
		if !f.idx.tValid[lastT] {
			t.Fatalf("insert %d assigned to invalid semantic cluster %d", i, lastT)
		}
	}
	if err := f.idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := f.ds.Objects[7]
	rs := f.idx.Search(&q, 5, 0.5, nil)
	if len(rs) != 5 {
		t.Fatalf("search after refill returned %d results", len(rs))
	}
	// Differential against exact scan over the re-inserted set.
	fresh, err := f.idx.RebuildFresh()
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "refilled vs rebuilt", fresh.Search(&q, 5, 0.5, nil), rs)
}

// RebuildFresh must leave the receiver untouched (including its metric
// space, which a plain Build would renormalize in place).
func TestRebuildFreshIsolation(t *testing.T) {
	f := build(t, dataset.TwitterLike, 300, Config{Seed: 3})
	for i := 0; i < 50; i++ {
		if err := f.idx.Delete(f.ds.Objects[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	q := f.ds.Objects[222]
	before := f.idx.Search(&q, 10, 0.5, nil)
	spaceBefore := *f.idx.space

	fresh, err := f.idx.RebuildFresh()
	if err != nil {
		t.Fatal(err)
	}
	if *f.idx.space != spaceBefore {
		t.Fatal("RebuildFresh mutated the receiver's metric space")
	}
	sameResults(t, "receiver after RebuildFresh", before, f.idx.Search(&q, 10, 0.5, nil))
	if fresh.Len() != f.idx.Len() {
		t.Fatalf("fresh Len = %d, want %d", fresh.Len(), f.idx.Len())
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatalf("fresh invariants: %v", err)
	}
	if fresh.UpdatesSinceBuild != 0 {
		t.Fatalf("fresh UpdatesSinceBuild = %d", fresh.UpdatesSinceBuild)
	}
}
