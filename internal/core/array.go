package core

import "sort"

// buildElems constructs the query-time array A of a hybrid cluster
// (§4.1): the members are listed twice, once sorted by descending spatial
// distance to the spatial centroid (L_s) and once by descending semantic
// distance to the semantic centroid (L_t); the two lists are merged
// Threshold-Algorithm style, one pair per round, appending each object at
// its first occurrence tagged with the round's (ds, dt) threshold pair.
//
// The resulting array has one element per member and two invariants that
// query processing relies on (Lemma 4.5 and §4.3):
//
//  1. conservativeness — for element e of object o,
//     d(o,C) ≤ λ·e.ds + (1−λ)·e.dt for every λ ∈ [0,1], because o occurs
//     at or after the round position in both descending lists;
//  2. monotonicity — e.ds and e.dt are non-increasing along the array, so
//     once d(q,C) − bound > U holds it holds for every later element.
func buildElems(members []member) []element {
	n := len(members)
	if n == 0 {
		return nil
	}
	ls := make([]int, n)
	lt := make([]int, n)
	for i := range ls {
		ls[i], lt[i] = i, i
	}
	sort.Slice(ls, func(a, b int) bool { return members[ls[a]].ds > members[ls[b]].ds })
	sort.Slice(lt, func(a, b int) bool { return members[lt[a]].dt > members[lt[b]].dt })

	seen := make([]bool, n)
	elems := make([]element, 0, n)
	for pos := 0; pos < n; pos++ {
		a, b := ls[pos], lt[pos]
		thrDs := members[a].ds
		thrDt := members[b].dt
		if !seen[a] {
			seen[a] = true
			elems = append(elems, element{idx: members[a].idx, ds: thrDs, dt: thrDt})
		}
		if !seen[b] {
			seen[b] = true
			elems = append(elems, element{idx: members[b].idx, ds: thrDs, dt: thrDt})
		}
	}
	return elems
}
