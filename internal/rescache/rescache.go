// Package rescache is the snapshot-keyed result cache of the serving
// layer: exact k-NN answers keyed by (query, K, λ, algorithm knobs,
// keyword set) and invalidated wholesale by snapshot identity.
//
// The invalidation contract is what makes the cache trivially correct
// under writes. Every lookup and fill carries an opaque snapshot token
// — the identity (pointer) of the immutable published snapshot the
// request searches. The cache serves an entry only to a request whose
// token is identical to the one the entry was computed against, and
// the moment a request presents a different token (i.e. a writer,
// compaction, or rebuild published a new snapshot) the whole map is
// discarded. A hit therefore proves the cached answer was computed
// against the very snapshot the request would otherwise search, so it
// is bit-identical to the uncached answer by the determinism of the
// search itself; writers never need to enumerate affected entries.
//
// Tokens double as liveness pins: entries hold their token (and the
// cache holds the current one), so the snapshot object behind a token
// stays reachable while any entry references it and its address can
// never be recycled into a colliding identity. The cost is that the
// cache keeps at most one superseded snapshot generation alive between
// a publication and the next probe; callers that want prompt release
// hook Invalidate into their publication path.
//
// Key hashing is only a routing hint: entries store the query they
// answer (coordinates and vector) and a probe compares them, so a
// 64-bit hash collision degrades to a miss, never to a wrong answer.
package rescache

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/knn"
)

// Key identifies one cacheable request shape. Every field that changes
// the answer participates: the query content hash, the neighbor count,
// the distance weight, each algorithm knob, and the canonicalized
// keyword set. Two requests with different modes or keyword sets can
// never share an entry because the map key differs; two different
// queries that collide in Hash are separated by the stored-query
// comparison at probe time.
type Key struct {
	// Hash is the 64-bit FNV-1a digest of the query's coordinates and
	// vector (see HashQuery).
	Hash   uint64
	K      int
	Lambda float64
	// Approx, Quant, Rerank, Route and RouteTarget mirror the request's
	// algorithm knobs. Callers should canonicalize knobs that do not
	// affect the answer in their context (e.g. Rerank outside the
	// quant-only mode) so equivalent requests share entries.
	Approx      bool
	Quant       int
	Rerank      int
	Route       bool
	RouteTarget float64
	// Keywords is the canonical keyword set: lowercased, sorted, joined
	// with NUL (empty for unconstrained requests).
	Keywords string
}

// HashQuery is the 64-bit FNV-1a digest of a query's location and
// vector bits, the Hash field of Key.
func HashQuery(x, y float64, vec []float32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(math.Float64bits(x))
	mix(math.Float64bits(y))
	for _, f := range vec {
		v := uint64(math.Float32bits(f))
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// entry is one cached answer plus the exact query it answers and the
// snapshot token it was computed against.
type entry struct {
	snap any
	x, y float64
	vec  []float32
	res  []knn.Result
	// LRU links (index into Cache.ent; -1 terminates).
	prev, next int
	key        Key
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Fills counts Put insertions
	// and Evictions LRU displacements.
	Hits, Misses, Fills, Evictions int64
	// Invalidations counts wholesale clears triggered by a snapshot
	// change (or an explicit Invalidate call).
	Invalidations int64
	// Entries is the current live entry count.
	Entries int
}

// HitRatio is Hits/(Hits+Misses), 0 before any probe.
func (s Stats) HitRatio() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// DefaultCapacity is the entry capacity New applies when given a
// non-positive one.
const DefaultCapacity = 4096

// Cache is the snapshot-keyed result cache. All methods are safe for
// concurrent use; the critical sections are map probes and pointer
// splices, so the lock is held for far less than the searches it
// short-circuits.
type Cache struct {
	mu   sync.Mutex
	cap  int
	cur  any // snapshot token of every live entry
	m    map[Key]int
	ent  []entry
	free []int
	// LRU list head/tail (most recent at head); -1 when empty.
	head, tail int

	hits, misses, fills, evict, inval atomic.Int64
}

// New returns a cache holding at most capacity entries (<= 0 selects
// DefaultCapacity).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{cap: capacity, m: make(map[Key]int), head: -1, tail: -1}
}

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Fills: c.fills.Load(), Evictions: c.evict.Load(),
		Invalidations: c.inval.Load(), Entries: n,
	}
}

// Invalidate discards every entry. Writers may hook it into their
// snapshot publication path to release superseded snapshots promptly;
// correctness does not depend on it (the token comparison already
// rejects stale entries).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	if len(c.m) > 0 || c.cur != nil {
		c.clearLocked()
		c.inval.Add(1)
	}
	c.mu.Unlock()
}

// clearLocked drops all entries and forgets the current token. Entry
// slots are zeroed so superseded snapshots (and their arenas) pinned by
// the old entries become collectable immediately.
func (c *Cache) clearLocked() {
	clear(c.m)
	for i := range c.ent {
		c.ent[i] = entry{}
	}
	c.ent = c.ent[:0]
	c.free = c.free[:0]
	c.head, c.tail = -1, -1
	c.cur = nil
}

// rotate makes snap the current token, clearing the map when it
// changed. Caller holds the lock.
func (c *Cache) rotate(snap any) {
	if c.cur != snap {
		if c.cur != nil {
			c.clearLocked()
			c.inval.Add(1)
		}
		c.cur = snap
	}
}

// Get probes for the answer of (key, query) computed against snapshot
// snap. On a hit the cached results are appended to dst (a fresh slice
// when dst is nil) — the cache's copy is never aliased out. A probe
// whose token differs from the cache's current one invalidates the
// whole cache and misses.
func (c *Cache) Get(snap any, key Key, x, y float64, vec []float32, dst []knn.Result) ([]knn.Result, bool) {
	c.mu.Lock()
	c.rotate(snap)
	i, ok := c.m[key]
	if !ok || !c.ent[i].matches(x, y, vec) {
		c.mu.Unlock()
		c.misses.Add(1)
		return dst, false
	}
	c.unlink(i)
	c.pushFront(i)
	dst = append(dst, c.ent[i].res...)
	c.mu.Unlock()
	c.hits.Add(1)
	return dst, true
}

// Put stores the answer of (key, query) computed against snapshot
// snap, copying query and results (the caller's slices are not
// retained). Unlike Get, a Put never rotates the current token: a
// slow request finishing against a superseded snapshot must not wipe
// entries fresher requests already filled, so a Put whose token is not
// current is simply dropped (it could never be served — new requests
// present the newer token).
func (c *Cache) Put(snap any, key Key, x, y float64, vec []float32, res []knn.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		c.cur = snap
	}
	if c.cur != snap {
		return
	}
	if i, ok := c.m[key]; ok {
		// Same key, possibly a hash-colliding different query: replace —
		// keeping the most recent answer serves the common re-Put case
		// and collision churn degrades hit rate, never correctness.
		c.ent[i].fill(snap, key, x, y, vec, res)
		c.unlink(i)
		c.pushFront(i)
		return
	}
	i := c.alloc(key)
	c.ent[i].fill(snap, key, x, y, vec, res)
	c.m[key] = i
	c.pushFront(i)
	c.fills.Add(1)
}

// alloc returns a free entry slot, evicting the LRU tail when full.
func (c *Cache) alloc(key Key) int {
	if len(c.free) > 0 {
		i := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		return i
	}
	if len(c.ent) < c.cap {
		c.ent = append(c.ent, entry{})
		return len(c.ent) - 1
	}
	i := c.tail
	c.unlink(i)
	delete(c.m, c.ent[i].key)
	c.evict.Add(1)
	return i
}

func (e *entry) fill(snap any, key Key, x, y float64, vec []float32, res []knn.Result) {
	e.snap, e.key = snap, key
	e.x, e.y = x, y
	e.vec = append(e.vec[:0], vec...)
	e.res = append(e.res[:0], res...)
}

func (e *entry) matches(x, y float64, vec []float32) bool {
	if e.x != x || e.y != y || len(e.vec) != len(vec) {
		return false
	}
	for i, v := range vec {
		if e.vec[i] != v {
			return false
		}
	}
	return true
}

func (c *Cache) pushFront(i int) {
	c.ent[i].prev = -1
	c.ent[i].next = c.head
	if c.head >= 0 {
		c.ent[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

func (c *Cache) unlink(i int) {
	p, n := c.ent[i].prev, c.ent[i].next
	if p >= 0 {
		c.ent[p].next = n
	} else if c.head == i {
		c.head = n
	}
	if n >= 0 {
		c.ent[n].prev = p
	} else if c.tail == i {
		c.tail = p
	}
	c.ent[i].prev, c.ent[i].next = -1, -1
}
