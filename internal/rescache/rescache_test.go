package rescache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/knn"
)

type snap struct{ name string }

func key(k int, kw string) Key { return Key{Hash: uint64(k), K: k, Lambda: 0.5, Keywords: kw} }

func res(ids ...uint32) []knn.Result {
	out := make([]knn.Result, len(ids))
	for i, id := range ids {
		out[i] = knn.Result{ID: id, Dist: float64(id) / 10}
	}
	return out
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(8)
	s := &snap{"s1"}
	vec := []float32{1, 2, 3}
	want := res(7, 9)
	c.Put(s, key(2, ""), 1, 2, vec, want)
	got, ok := c.Get(s, key(2, ""), 1, 2, vec, nil)
	if !ok {
		t.Fatal("expected hit")
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v want %v", got, want)
	}
	// The hit must not alias the cache's copy.
	got[0].ID = 999
	again, _ := c.Get(s, key(2, ""), 1, 2, vec, nil)
	if again[0].ID != 7 {
		t.Fatal("cache entry mutated through returned slice")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotChangeInvalidatesWholesale(t *testing.T) {
	c := New(8)
	s1, s2 := &snap{"s1"}, &snap{"s2"}
	vec := []float32{1}
	c.Put(s1, key(1, ""), 0, 0, vec, res(1))
	c.Put(s1, key(2, ""), 0, 0, vec, res(2))
	if _, ok := c.Get(s2, key(1, ""), 0, 0, vec, nil); ok {
		t.Fatal("hit across snapshot change")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("stats after rotation = %+v", st)
	}
	// Old-token probes after the rotation must also miss.
	if _, ok := c.Get(s1, key(2, ""), 0, 0, vec, nil); ok {
		t.Fatal("hit with stale token")
	}
}

func TestStalePutDropped(t *testing.T) {
	c := New(8)
	s1, s2 := &snap{"s1"}, &snap{"s2"}
	vec := []float32{1}
	c.Put(s2, key(1, ""), 0, 0, vec, res(1))
	// A slow request finishing against the superseded snapshot must not
	// clear s2's entries nor become servable.
	c.Put(s1, key(9, ""), 0, 0, vec, res(9))
	if _, ok := c.Get(s2, key(1, ""), 0, 0, vec, nil); !ok {
		t.Fatal("stale Put wiped current entries")
	}
	if _, ok := c.Get(s1, key(9, ""), 0, 0, vec, nil); ok {
		t.Fatal("stale Put became servable")
	}
}

func TestHashCollisionServesNoWrongAnswer(t *testing.T) {
	c := New(8)
	s := &snap{"s"}
	k := key(1, "")
	c.Put(s, k, 0, 0, []float32{1, 0}, res(1))
	// Same Key, different query content: must miss, never serve.
	if _, ok := c.Get(s, k, 0, 0, []float32{0, 1}, nil); ok {
		t.Fatal("collision served a wrong answer")
	}
	// And a replacing Put takes over the slot.
	c.Put(s, k, 0, 0, []float32{0, 1}, res(2))
	got, ok := c.Get(s, k, 0, 0, []float32{0, 1}, nil)
	if !ok || got[0].ID != 2 {
		t.Fatalf("replacement probe = %v %v", got, ok)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := Key{Hash: 1, K: 10, Lambda: 0.5}
	variants := []Key{
		{Hash: 1, K: 11, Lambda: 0.5},
		{Hash: 1, K: 10, Lambda: 0.6},
		{Hash: 1, K: 10, Lambda: 0.5, Approx: true},
		{Hash: 1, K: 10, Lambda: 0.5, Quant: 2},
		{Hash: 1, K: 10, Lambda: 0.5, Rerank: 8},
		{Hash: 1, K: 10, Lambda: 0.5, Route: true},
		{Hash: 1, K: 10, Lambda: 0.5, RouteTarget: 0.9},
		{Hash: 1, K: 10, Lambda: 0.5, Keywords: "cafe"},
		{Hash: 2, K: 10, Lambda: 0.5},
	}
	c := New(64)
	s := &snap{"s"}
	vec := []float32{1}
	c.Put(s, base, 0, 0, vec, res(1))
	for i, v := range variants {
		if _, ok := c.Get(s, v, 0, 0, vec, nil); ok {
			t.Fatalf("variant %d collided with base key", i)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	s := &snap{"s"}
	vec := []float32{1}
	c.Put(s, key(1, ""), 0, 0, vec, res(1))
	c.Put(s, key(2, ""), 0, 0, vec, res(2))
	// Touch 1 so 2 is the LRU victim.
	if _, ok := c.Get(s, key(1, ""), 0, 0, vec, nil); !ok {
		t.Fatal("warm entry missed")
	}
	c.Put(s, key(3, ""), 0, 0, vec, res(3))
	if _, ok := c.Get(s, key(2, ""), 0, 0, vec, nil); ok {
		t.Fatal("LRU victim survived")
	}
	for _, k := range []int{1, 3} {
		if _, ok := c.Get(s, key(k, ""), 0, 0, vec, nil); !ok {
			t.Fatalf("entry %d evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHashQueryDiscriminates(t *testing.T) {
	h1 := HashQuery(1, 2, []float32{1, 2, 3})
	for i, h2 := range []uint64{
		HashQuery(1.0000001, 2, []float32{1, 2, 3}),
		HashQuery(1, 2, []float32{1, 2, 4}),
		HashQuery(2, 1, []float32{1, 2, 3}),
		HashQuery(1, 2, []float32{1, 2}),
	} {
		if h1 == h2 {
			t.Fatalf("variant %d hashed equal", i)
		}
	}
	if h1 != HashQuery(1, 2, []float32{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
}

// TestConcurrentChurn drives readers, writers and snapshot rotations
// concurrently; run under -race this pins the locking discipline.
func TestConcurrentChurn(t *testing.T) {
	c := New(32)
	snaps := []*snap{{"a"}, {"b"}, {"c"}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vec := []float32{float32(w)}
			for i := 0; i < 2000; i++ {
				s := snaps[(i/64)%len(snaps)]
				k := key(i%16, fmt.Sprint(w%2))
				if got, ok := c.Get(s, k, float64(w), 0, vec, nil); ok {
					if len(got) != 1 || got[0].ID != uint32(i%16) {
						panic("wrong cached answer")
					}
				} else {
					c.Put(s, k, float64(w), 0, vec, res(uint32(i%16)))
				}
				if i%500 == 0 {
					c.Invalidate()
				}
			}
		}(w)
	}
	wg.Wait()
}
