package dataset

import (
	"strings"
	"testing"

	"repro/internal/embed"
)

// FuzzLoadCSV checks the CSV ingestion path never panics and that
// accepted datasets are well formed.
func FuzzLoadCSV(f *testing.F) {
	f.Add("1,0.5,0.5,best coffee shop\n")
	f.Add("")
	f.Add("id,x,y,text\n1,2,3,4\n")
	f.Add("1,nan,inf,pizza place best\n")
	f.Add("not,a,valid\nrow")
	f.Add("1,1,1,\"quoted, text best coffee shop\"\n")
	model, err := embed.LoadGloVe(strings.NewReader(gloveSample))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ds, skipped, err := LoadCSV(strings.NewReader(s), model, CSVOptions{})
		if err != nil {
			return
		}
		if skipped < 0 {
			t.Fatal("negative skip count")
		}
		seen := map[uint32]struct{}{}
		for _, o := range ds.Objects {
			if len(o.Vec) != model.Dim {
				t.Fatalf("object %d has dim %d", o.ID, len(o.Vec))
			}
			if _, dup := seen[o.ID]; dup {
				t.Fatalf("duplicate id %d accepted", o.ID)
			}
			seen[o.ID] = struct{}{}
		}
	})
}
