// Package dataset defines the spatio-textual object model and synthetic
// generators standing in for the paper's Twitter and Yelp corpora (see
// DESIGN.md §4 for the substitution rationale). Locations are normalized
// into [0,1]×[0,1] as in the paper (§7.1), and each object carries the
// n-dimensional document embedding produced by averaging word vectors.
package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/embed"
	"repro/internal/text"
)

// Object is a spatio-textual object: a location, the raw text, and its
// semantic vector.
type Object struct {
	ID   uint32
	X, Y float64
	Text string
	// Vec is the n-dimensional document embedding.
	Vec []float32
	// Topic is the latent topic the generator drew the document from.
	// It is metadata for analysis/tests only; no algorithm reads it.
	Topic int
}

// Dataset is a collection of spatio-textual objects plus the embedding
// model that encodes query text.
type Dataset struct {
	Objects []Object
	// Dim is the semantic dimensionality n.
	Dim int
	// Model encodes free text into the same embedding space. It may be
	// nil for datasets loaded without their model.
	Model *embed.Model `gob:"-"`
}

// Len returns the number of objects.
func (d *Dataset) Len() int { return len(d.Objects) }

// Kind selects a generator family.
type Kind int

const (
	// TwitterLike mimics geo-tagged tweets: broad spatial spread with
	// Gaussian population hot spots plus a uniform background, topics
	// nearly independent of location, short documents.
	TwitterLike Kind = iota
	// YelpLike mimics Yelp reviews: 11 tight metropolitan clusters,
	// topics (business categories) correlated with the venue, longer
	// documents.
	YelpLike
)

func (k Kind) String() string {
	switch k {
	case TwitterLike:
		return "twitter"
	case YelpLike:
		return "yelp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// GenConfig controls Generate.
type GenConfig struct {
	Kind Kind
	// Size is the number of objects to generate. Required.
	Size int
	// Dim is the embedding dimensionality n (default 100).
	Dim int
	// VocabSize and NumTopics control the synthetic vocabulary
	// (defaults 5000 and 50).
	VocabSize, NumTopics int
	// Seed drives all randomness deterministically.
	Seed uint64
}

func (c *GenConfig) applyDefaults() {
	if c.Dim <= 0 {
		c.Dim = 100
	}
	if c.VocabSize <= 0 {
		c.VocabSize = 5000
	}
	if c.NumTopics <= 0 {
		c.NumTopics = 50
	}
}

// Generate produces a deterministic synthetic dataset of the given kind.
func Generate(cfg GenConfig) (*Dataset, error) {
	cfg.applyDefaults()
	if cfg.Size < 1 {
		return nil, fmt.Errorf("dataset: Size = %d, want >= 1", cfg.Size)
	}
	vocab := text.NewVocabulary(cfg.VocabSize, cfg.NumTopics, 1.0)
	model := embed.NewSynthetic(vocab, embed.Config{Dim: cfg.Dim, Seed: cfg.Seed ^ 0xabcdef})
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5ca1ab1e))

	ds := &Dataset{Dim: cfg.Dim, Model: model, Objects: make([]Object, 0, cfg.Size)}
	switch cfg.Kind {
	case TwitterLike:
		generateTwitter(ds, rng, cfg, model)
	case YelpLike:
		generateYelp(ds, rng, cfg, model)
	default:
		return nil, fmt.Errorf("dataset: unknown kind %v", cfg.Kind)
	}
	return ds, nil
}

// spatialCenter is a Gaussian population hot spot.
type spatialCenter struct {
	x, y, sigma, weight float64
}

func drawCenters(rng *rand.Rand, count int, sigmaLo, sigmaHi float64) []spatialCenter {
	cs := make([]spatialCenter, count)
	var total float64
	for i := range cs {
		cs[i] = spatialCenter{
			x:      0.05 + 0.9*rng.Float64(),
			y:      0.05 + 0.9*rng.Float64(),
			sigma:  sigmaLo + (sigmaHi-sigmaLo)*rng.Float64(),
			weight: 0.2 + rng.Float64(),
		}
		total += cs[i].weight
	}
	for i := range cs {
		cs[i].weight /= total
	}
	return cs
}

func sampleCenter(rng *rand.Rand, cs []spatialCenter) *spatialCenter {
	u := rng.Float64()
	for i := range cs {
		u -= cs[i].weight
		if u <= 0 {
			return &cs[i]
		}
	}
	return &cs[len(cs)-1]
}

// clamp01 clips v into [0,1] so all coordinates stay normalized.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func generateTwitter(ds *Dataset, rng *rand.Rand, cfg GenConfig, model *embed.Model) {
	centers := drawCenters(rng, 25, 0.01, 0.06)
	numTopics := model.Vocab.NumTopics()
	for id := 0; len(ds.Objects) < cfg.Size; id++ {
		var x, y float64
		if rng.Float64() < 0.85 {
			c := sampleCenter(rng, centers)
			x = clamp01(c.x + rng.NormFloat64()*c.sigma)
			y = clamp01(c.y + rng.NormFloat64()*c.sigma)
		} else {
			x, y = rng.Float64(), rng.Float64()
		}
		// Topic independent of location: spatial-first indexes learn
		// nothing about semantics (paper §7.2).
		topic := rng.IntN(numTopics)
		length := 3 + rng.IntN(10) // short, tweet-like
		obj, ok := makeObject(rng, model, uint32(len(ds.Objects)), x, y, topic, length, 0.25)
		if !ok {
			continue
		}
		ds.Objects = append(ds.Objects, obj)
	}
}

func generateYelp(ds *Dataset, rng *rand.Rand, cfg GenConfig, model *embed.Model) {
	// 11 metropolitan areas, tight sigmas: strong spatial clustering
	// (paper §7.4).
	metros := drawCenters(rng, 11, 0.004, 0.015)
	numTopics := model.Vocab.NumTopics()
	// Each metro skews toward a subset of categories, giving a mild
	// space/semantics correlation.
	metroTopic := make([]int, len(metros))
	for i := range metroTopic {
		metroTopic[i] = rng.IntN(numTopics)
	}
	for len(ds.Objects) < cfg.Size {
		mi := rng.IntN(len(metros))
		c := metros[mi]
		x := clamp01(c.x + rng.NormFloat64()*c.sigma)
		y := clamp01(c.y + rng.NormFloat64()*c.sigma)
		topic := rng.IntN(numTopics)
		if rng.Float64() < 0.4 {
			topic = (metroTopic[mi] + rng.IntN(5)) % numTopics
		}
		length := 8 + rng.IntN(25) // review-length documents
		obj, ok := makeObject(rng, model, uint32(len(ds.Objects)), x, y, topic, length, 0.2)
		if !ok {
			continue
		}
		ds.Objects = append(ds.Objects, obj)
	}
}

// makeObject samples `length` words mostly from the given topic (with
// probability offTopic a word is drawn globally), builds the raw text and
// its embedding.
func makeObject(rng *rand.Rand, model *embed.Model, id uint32, x, y float64, topic, length int, offTopic float64) (Object, bool) {
	ranks := make([]int, 0, length)
	for i := 0; i < length; i++ {
		if rng.Float64() < offTopic {
			ranks = append(ranks, model.Vocab.SampleWord(rng))
		} else {
			ranks = append(ranks, model.Vocab.SampleTopicWord(rng, topic))
		}
	}
	v, ok := model.EncodeRanks(ranks)
	if !ok {
		return Object{}, false
	}
	words := make([]byte, 0, length*5)
	for i, r := range ranks {
		if i > 0 {
			words = append(words, ' ')
		}
		words = append(words, model.Vocab.Words[r]...)
	}
	return Object{ID: id, X: x, Y: y, Text: string(words), Vec: v, Topic: topic}, true
}

// SampleQueries picks count distinct objects uniformly at random to serve
// as query objects (paper §7.1). The returned objects are copies.
func (d *Dataset) SampleQueries(count int, seed uint64) []Object {
	if count > len(d.Objects) {
		count = len(d.Objects)
	}
	rng := rand.New(rand.NewPCG(seed, 0xdecade))
	perm := rng.Perm(len(d.Objects))
	out := make([]Object, count)
	for i := 0; i < count; i++ {
		out[i] = d.Objects[perm[i]]
	}
	return out
}

// Prefix returns a shallow dataset view over the first n objects; it
// shares object storage with d. It panics if n exceeds the dataset size.
func (d *Dataset) Prefix(n int) *Dataset {
	if n > len(d.Objects) {
		panic(fmt.Sprintf("dataset: Prefix(%d) exceeds size %d", n, len(d.Objects)))
	}
	return &Dataset{Objects: d.Objects[:n], Dim: d.Dim, Model: d.Model}
}

// gobDataset mirrors Dataset for encoding (the embedding model is
// intentionally not persisted; re-generate it from the seed instead).
type gobDataset struct {
	Objects []Object
	Dim     int
}

// Save writes the dataset (without its embedding model) to w using gob.
func (d *Dataset) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(gobDataset{Objects: d.Objects, Dim: d.Dim})
}

// Load reads a dataset previously written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var g gobDataset
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	return &Dataset{Objects: g.Objects, Dim: g.Dim}, nil
}
