package dataset

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/vec"
)

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(GenConfig{Size: 0}); err == nil {
		t.Fatal("expected error for Size=0")
	}
	if _, err := Generate(GenConfig{Kind: Kind(99), Size: 10}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestGenerateTwitterBasics(t *testing.T) {
	ds, err := Generate(GenConfig{Kind: TwitterLike, Size: 500, Dim: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 500 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.Dim != 32 {
		t.Fatalf("Dim = %d", ds.Dim)
	}
	for i, o := range ds.Objects {
		if o.ID != uint32(i) {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
		if o.X < 0 || o.X > 1 || o.Y < 0 || o.Y > 1 {
			t.Fatalf("object %d coordinates out of [0,1]: (%v,%v)", i, o.X, o.Y)
		}
		if len(o.Vec) != 32 {
			t.Fatalf("object %d vector dim %d", i, len(o.Vec))
		}
		if o.Text == "" {
			t.Fatalf("object %d has empty text", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(GenConfig{Kind: YelpLike, Size: 200, Dim: 16, Seed: 42})
	b, _ := Generate(GenConfig{Kind: YelpLike, Size: 200, Dim: 16, Seed: 42})
	for i := range a.Objects {
		if a.Objects[i].Text != b.Objects[i].Text ||
			a.Objects[i].X != b.Objects[i].X ||
			vec.Dist(a.Objects[i].Vec, b.Objects[i].Vec) != 0 {
			t.Fatalf("object %d differs between identically-seeded runs", i)
		}
	}
	c, _ := Generate(GenConfig{Kind: YelpLike, Size: 200, Dim: 16, Seed: 43})
	if a.Objects[0].Text == c.Objects[0].Text && a.Objects[0].X == c.Objects[0].X {
		t.Fatal("different seeds gave identical first object")
	}
}

// Yelp-like data must be much more spatially concentrated than
// Twitter-like data — this drives the paper's §7.4 observation that
// spatial-first indexes beat Scan on Yelp only.
func TestYelpMoreSpatiallyClusteredThanTwitter(t *testing.T) {
	tw, _ := Generate(GenConfig{Kind: TwitterLike, Size: 2000, Dim: 8, Seed: 5})
	yp, _ := Generate(GenConfig{Kind: YelpLike, Size: 2000, Dim: 8, Seed: 5})
	spread := func(ds *Dataset) float64 {
		var mx, my float64
		for _, o := range ds.Objects {
			mx += o.X
			my += o.Y
		}
		mx /= float64(ds.Len())
		my /= float64(ds.Len())
		var v float64
		for _, o := range ds.Objects {
			v += (o.X-mx)*(o.X-mx) + (o.Y-my)*(o.Y-my)
		}
		return v / float64(ds.Len())
	}
	// Average nearest-centroid dispersion proxy: overall variance is not
	// quite the right statistic (metros can be far apart), so also check
	// local density: mean distance to the nearest of 200 sampled others.
	nnDist := func(ds *Dataset) float64 {
		var sum float64
		for i := 0; i < 200; i++ {
			o := ds.Objects[i*7%ds.Len()]
			best := math.Inf(1)
			for j := 0; j < 200; j++ {
				p := ds.Objects[(j*13+1)%ds.Len()]
				if p.ID == o.ID {
					continue
				}
				dx, dy := o.X-p.X, o.Y-p.Y
				if d := dx*dx + dy*dy; d < best {
					best = d
				}
			}
			sum += math.Sqrt(best)
		}
		return sum / 200
	}
	if nnDist(yp) >= nnDist(tw) {
		t.Fatalf("yelp local density (%v) should exceed twitter (%v)", nnDist(yp), nnDist(tw))
	}
	_ = spread
}

func TestObjectTextRoundTripsThroughModel(t *testing.T) {
	ds, _ := Generate(GenConfig{Kind: TwitterLike, Size: 50, Dim: 24, Seed: 9})
	// Re-encoding an object's text must reproduce its stored vector.
	for _, o := range ds.Objects[:10] {
		v, ok := ds.Model.EncodeDocument(o.Text)
		if !ok {
			t.Fatalf("object %d text rejected by model: %q", o.ID, o.Text)
		}
		if vec.Dist(v, o.Vec) > 1e-5 {
			t.Fatalf("object %d re-encoding differs by %v", o.ID, vec.Dist(v, o.Vec))
		}
	}
}

func TestSampleQueries(t *testing.T) {
	ds, _ := Generate(GenConfig{Kind: TwitterLike, Size: 300, Dim: 8, Seed: 2})
	qs := ds.SampleQueries(50, 1)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := make(map[uint32]struct{})
	for _, q := range qs {
		if _, dup := seen[q.ID]; dup {
			t.Fatalf("duplicate query object %d", q.ID)
		}
		seen[q.ID] = struct{}{}
	}
	qs2 := ds.SampleQueries(50, 1)
	for i := range qs {
		if qs[i].ID != qs2[i].ID {
			t.Fatal("SampleQueries not deterministic")
		}
	}
	// Requesting more queries than objects clamps.
	if got := ds.SampleQueries(1000, 3); len(got) != 300 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestPrefix(t *testing.T) {
	ds, _ := Generate(GenConfig{Kind: TwitterLike, Size: 100, Dim: 8, Seed: 3})
	p := ds.Prefix(40)
	if p.Len() != 40 || p.Dim != 8 {
		t.Fatalf("Prefix wrong: len=%d dim=%d", p.Len(), p.Dim)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversize prefix")
		}
	}()
	ds.Prefix(101)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, _ := Generate(GenConfig{Kind: YelpLike, Size: 120, Dim: 16, Seed: 8})
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || got.Dim != ds.Dim {
		t.Fatalf("round trip shape mismatch: %d/%d", got.Len(), got.Dim)
	}
	for i := range ds.Objects {
		a, b := ds.Objects[i], got.Objects[i]
		if a.ID != b.ID || a.X != b.X || a.Y != b.Y || a.Text != b.Text || vec.Dist(a.Vec, b.Vec) != 0 {
			t.Fatalf("object %d differs after round trip", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("expected error for corrupt input")
	}
}

func TestKindString(t *testing.T) {
	if TwitterLike.String() != "twitter" || YelpLike.String() != "yelp" {
		t.Fatal("Kind.String broken")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}
