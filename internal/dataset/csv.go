package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/embed"
)

// CSVOptions controls LoadCSV.
type CSVOptions struct {
	// HasHeader skips the first row.
	HasHeader bool
	// Normalize rescales coordinates into [0,1]×[0,1] after loading
	// (the paper normalizes both corpora this way, §7.1).
	Normalize bool
}

// LoadCSV ingests real spatio-textual records from CSV rows of the form
//
//	id,x,y,text
//
// encoding each text with the given embedding model (averaged word
// vectors, stop-words dropped). Rows whose text has fewer than three
// in-vocabulary words are skipped, mirroring the paper's preprocessing;
// the number of skipped rows is returned. Combined with
// embed.LoadGloVe this is the path for indexing real data with real
// embeddings.
func LoadCSV(r io.Reader, model *embed.Model, opts CSVOptions) (ds *Dataset, skipped int, err error) {
	if model == nil {
		return nil, 0, fmt.Errorf("dataset: LoadCSV requires an embedding model")
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.ReuseRecord = true
	ds = &Dataset{Dim: model.Dim, Model: model}
	first := true
	seen := make(map[uint32]struct{})
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("dataset: csv: %w", err)
		}
		if first && opts.HasHeader {
			first = false
			continue
		}
		first = false
		id64, err := strconv.ParseUint(rec[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("dataset: csv id %q: %w", rec[0], err)
		}
		id := uint32(id64)
		if _, dup := seen[id]; dup {
			return nil, 0, fmt.Errorf("dataset: csv: duplicate id %d", id)
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("dataset: csv x %q: %w", rec[1], err)
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("dataset: csv y %q: %w", rec[2], err)
		}
		vec, ok := model.EncodeDocument(rec[3])
		if !ok {
			skipped++
			continue
		}
		seen[id] = struct{}{}
		ds.Objects = append(ds.Objects, Object{ID: id, X: x, Y: y, Text: rec[3], Vec: vec})
	}
	if opts.Normalize && len(ds.Objects) > 0 {
		normalizeCoords(ds.Objects)
	}
	return ds, skipped, nil
}

// SaveCSV writes the dataset as `id,x,y,text` rows (the LoadCSV format),
// with a header. Vectors are not persisted — they are derived data,
// reproducible from the text via the embedding model.
func (d *Dataset) SaveCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "x", "y", "text"}); err != nil {
		return fmt.Errorf("dataset: csv write: %w", err)
	}
	rec := make([]string, 4)
	for i := range d.Objects {
		o := &d.Objects[i]
		rec[0] = strconv.FormatUint(uint64(o.ID), 10)
		rec[1] = strconv.FormatFloat(o.X, 'g', -1, 64)
		rec[2] = strconv.FormatFloat(o.Y, 'g', -1, 64)
		rec[3] = o.Text
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: csv write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// normalizeCoords rescales all coordinates into [0,1]×[0,1]; degenerate
// axes (all values equal) map to 0.5.
func normalizeCoords(objs []Object) {
	minX, maxX := objs[0].X, objs[0].X
	minY, maxY := objs[0].Y, objs[0].Y
	for i := range objs {
		if objs[i].X < minX {
			minX = objs[i].X
		}
		if objs[i].X > maxX {
			maxX = objs[i].X
		}
		if objs[i].Y < minY {
			minY = objs[i].Y
		}
		if objs[i].Y > maxY {
			maxY = objs[i].Y
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	for i := range objs {
		if spanX > 0 {
			objs[i].X = (objs[i].X - minX) / spanX
		} else {
			objs[i].X = 0.5
		}
		if spanY > 0 {
			objs[i].Y = (objs[i].Y - minY) / spanY
		} else {
			objs[i].Y = 0.5
		}
	}
}
