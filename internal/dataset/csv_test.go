package dataset

import (
	"strings"
	"testing"

	"repro/internal/embed"
)

const gloveSample = `coffee 1.0 0.0
shop 0.9 0.1
best 0.5 0.5
pizza 0.0 1.0
place 0.2 0.8
`

func csvModel(t *testing.T) *embed.Model {
	t.Helper()
	m, err := embed.LoadGloVe(strings.NewReader(gloveSample))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoadCSV(t *testing.T) {
	in := "id,x,y,text\n" +
		"1,10.0,20.0,best coffee shop\n" +
		"2,30.0,40.0,pizza place best\n" +
		"3,50.0,60.0,too short\n" // only 0 in-vocabulary words
	ds, skipped, err := LoadCSV(strings.NewReader(in), csvModel(t), CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || skipped != 1 {
		t.Fatalf("len=%d skipped=%d", ds.Len(), skipped)
	}
	if ds.Objects[0].ID != 1 || ds.Objects[0].X != 10 {
		t.Fatalf("first object wrong: %+v", ds.Objects[0])
	}
	if len(ds.Objects[0].Vec) != 2 {
		t.Fatalf("vector dim %d", len(ds.Objects[0].Vec))
	}
}

func TestLoadCSVNormalize(t *testing.T) {
	in := "1,100,200,best coffee shop\n" +
		"2,300,400,pizza place best\n"
	ds, _, err := LoadCSV(strings.NewReader(in), csvModel(t), CSVOptions{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Objects[0].X != 0 || ds.Objects[0].Y != 0 {
		t.Fatalf("min corner not at origin: %+v", ds.Objects[0])
	}
	if ds.Objects[1].X != 1 || ds.Objects[1].Y != 1 {
		t.Fatalf("max corner not at (1,1): %+v", ds.Objects[1])
	}
}

func TestLoadCSVDegenerateAxis(t *testing.T) {
	in := "1,5,200,best coffee shop\n" +
		"2,5,400,pizza place best\n"
	ds, _, err := LoadCSV(strings.NewReader(in), csvModel(t), CSVOptions{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Objects[0].X != 0.5 || ds.Objects[1].X != 0.5 {
		t.Fatal("degenerate axis should map to 0.5")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	m := csvModel(t)
	cases := map[string]string{
		"bad id":     "x,1,2,best coffee shop\n",
		"bad x":      "1,?,2,best coffee shop\n",
		"bad y":      "1,2,?,best coffee shop\n",
		"wrong cols": "1,2,3\n",
		"dup id":     "1,1,1,best coffee shop\n1,2,2,pizza place best\n",
	}
	for name, in := range cases {
		if _, _, err := LoadCSV(strings.NewReader(in), m, CSVOptions{}); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, _, err := LoadCSV(strings.NewReader(""), nil, CSVOptions{}); err == nil {
		t.Fatal("nil model: expected error")
	}
}

func TestSaveCSVRoundTrip(t *testing.T) {
	m := csvModel(t)
	in := "1,0.25,0.75,best coffee shop\n2,0.5,0.5,\"pizza place, best\"\n"
	ds, _, err := LoadCSV(strings.NewReader(in), m, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := ds.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := LoadCSV(strings.NewReader(buf.String()), m, CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || back.Len() != ds.Len() {
		t.Fatalf("round trip lost rows: len=%d skipped=%d", back.Len(), skipped)
	}
	for i := range ds.Objects {
		a, b := ds.Objects[i], back.Objects[i]
		if a.ID != b.ID || a.X != b.X || a.Y != b.Y || a.Text != b.Text {
			t.Fatalf("object %d differs: %+v vs %+v", i, a, b)
		}
	}
}
