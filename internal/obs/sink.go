package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Retention reasons the tail sampler stamps into Trace.SampleReason.
const (
	KeepSlow    = "slow"
	KeepError   = "error"
	KeepPartial = "partial"
	KeepSampled = "sampled"
)

// SinkConfig configures a Sink's tail-sampling policy.
type SinkConfig struct {
	// BufferSize is the trace ring capacity (default 1024).
	BufferSize int
	// SlowThreshold is the latency at or above which a trace is always
	// retained and reported to the slow handler (default 100ms;
	// negative disables the slow rule).
	SlowThreshold time.Duration
	// SampleEvery keeps a deterministic 1-in-N sample of normal
	// (fast, successful) traffic (default 128; 1 keeps everything;
	// negative keeps only slow/errored/partial traces).
	SampleEvery int
}

func (c *SinkConfig) applyDefaults() {
	if c.BufferSize <= 0 {
		c.BufferSize = 1024
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 128
	}
	if c.SampleEvery < 0 {
		c.SampleEvery = 0
	}
}

// DefaultSinkConfig returns the config a zero SinkConfig resolves to.
func DefaultSinkConfig() SinkConfig {
	var c SinkConfig
	c.applyDefaults()
	return c
}

// Sink is the always-on trace collector: traced Do/DoBatch calls check
// a pooled Trace out with Get, fill it, and hand it back with Finish,
// which applies tail-based retention — every slow, errored, or partial
// trace is kept, plus a deterministic 1-in-N sample of normal traffic
// — into the lock-free TraceRing. Dropped traces are recycled through
// a sync.Pool, so steady-state tracing allocates only when a trace is
// actually retained. All methods are safe for concurrent use.
type Sink struct {
	ring        *TraceRing
	slowNanos   int64
	sampleEvery uint64

	normal     atomic.Uint64 // normal-traffic counter driving 1-in-N
	seen       atomic.Uint64
	retained   atomic.Uint64
	sampledOut atomic.Uint64

	observer atomic.Pointer[func(*Trace)]
	onSlow   atomic.Pointer[func(*Trace)]

	pool sync.Pool
}

// NewSink returns a Sink with cfg's policy (zero fields take defaults).
func NewSink(cfg SinkConfig) *Sink {
	cfg.applyDefaults()
	s := &Sink{
		ring:        NewTraceRing(cfg.BufferSize),
		slowNanos:   cfg.SlowThreshold.Nanoseconds(),
		sampleEvery: uint64(cfg.SampleEvery),
	}
	s.pool.New = func() any { return new(Trace) }
	return s
}

// Ring exposes the retained-trace ring for /debug/traces readers.
func (s *Sink) Ring() *TraceRing { return s.ring }

// SlowThreshold returns the configured always-retain latency bound.
func (s *Sink) SlowThreshold() time.Duration {
	return time.Duration(s.slowNanos)
}

// SampleEvery returns the configured 1-in-N normal-traffic rate.
func (s *Sink) SampleEvery() int { return int(s.sampleEvery) }

// Counts reports lifetime totals: traces seen, retained in the ring,
// and sampled out (recycled).
func (s *Sink) Counts() (seen, retained, sampledOut uint64) {
	return s.seen.Load(), s.retained.Load(), s.sampledOut.Load()
}

// SetObserver installs fn to run on every finished trace — retained or
// not — before the retention decision recycles it. fn must not retain
// t beyond the call and must be cheap: it runs on the request path.
func (s *Sink) SetObserver(fn func(t *Trace)) {
	if fn == nil {
		s.observer.Store(nil)
		return
	}
	s.observer.Store(&fn)
}

// SetSlowHandler installs fn to run on every offending trace — slow,
// errored, or partial (not the 1-in-N normal sample). The trace is
// already retained and immutable, so fn may hold it.
func (s *Sink) SetSlowHandler(fn func(t *Trace)) {
	if fn == nil {
		s.onSlow.Store(nil)
		return
	}
	s.onSlow.Store(&fn)
}

// Get checks a reset Trace out of the pool.
func (s *Sink) Get() *Trace {
	t := s.pool.Get().(*Trace)
	t.Reset()
	return t
}

// Finish classifies t and either retains it in the ring (slow, errored,
// partial, or the deterministic 1-in-N of normal traffic) or recycles
// it. The caller must not touch t after Finish.
func (s *Sink) Finish(t *Trace) {
	if t == nil {
		return
	}
	s.seen.Add(1)
	reason := s.decide(t)
	t.SampleReason = reason
	if obsv := s.observer.Load(); obsv != nil {
		(*obsv)(t)
	}
	if reason == "" {
		s.sampledOut.Add(1)
		s.pool.Put(t)
		return
	}
	s.retained.Add(1)
	if reason != KeepSampled {
		if h := s.onSlow.Load(); h != nil {
			(*h)(t)
		}
	}
	// Retained traces stay out of the pool for good: ring readers may
	// hold references long after the slot is overwritten.
	s.ring.Put(t)
}

// decide implements the tail-sampling rule. Offending traces always
// win; the normal-traffic counter makes the 1-in-N sample deterministic
// (the 1st, N+1th, 2N+1th… normal trace is kept).
func (s *Sink) decide(t *Trace) string {
	switch {
	case t.Error != "":
		return KeepError
	case t.Partial:
		return KeepPartial
	case s.slowNanos > 0 && t.DurationNanos >= s.slowNanos:
		return KeepSlow
	}
	if s.sampleEvery > 0 && (s.normal.Add(1)-1)%s.sampleEvery == 0 {
		return KeepSampled
	}
	return ""
}
