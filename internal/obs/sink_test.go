package obs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestSinkConfigDefaults(t *testing.T) {
	def := DefaultSinkConfig()
	if def.BufferSize != 1024 || def.SlowThreshold != 100*time.Millisecond || def.SampleEvery != 128 {
		t.Fatalf("defaults = %+v", def)
	}
	// Negative knobs disable their rule rather than defaulting.
	s := NewSink(SinkConfig{SlowThreshold: -1, SampleEvery: -1, BufferSize: -5})
	if s.SlowThreshold() > 0 {
		t.Fatalf("negative SlowThreshold not disabled: %v", s.SlowThreshold())
	}
	if s.SampleEvery() != 0 {
		t.Fatalf("negative SampleEvery not disabled: %d", s.SampleEvery())
	}
	if s.Ring().Cap() != 1024 {
		t.Fatalf("non-positive BufferSize not defaulted: %d", s.Ring().Cap())
	}
}

// TestSinkNeverDropsOffenders is the tail-sampling property test: no
// matter how traces interleave, every slow, errored, or partial trace
// is retained and retrievable, only normal traffic is sampled down.
func TestSinkNeverDropsOffenders(t *testing.T) {
	const slow = 10 * time.Millisecond
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		s := NewSink(SinkConfig{BufferSize: 4096, SlowThreshold: slow, SampleEvery: 1 + rng.Intn(64)})
		type offender struct{ id, reason string }
		var offenders []offender
		n := 200 + rng.Intn(400)
		for i := 0; i < n; i++ {
			tr := s.Get()
			tr.RequestID = fmt.Sprintf("%016x", i+1)
			tr.DurationNanos = rng.Int63n(slow.Nanoseconds())
			switch rng.Intn(10) {
			case 0:
				tr.Error = "boom"
				offenders = append(offenders, offender{tr.RequestID, KeepError})
			case 1:
				tr.Partial = true
				offenders = append(offenders, offender{tr.RequestID, KeepPartial})
			case 2:
				tr.DurationNanos = slow.Nanoseconds() + rng.Int63n(1000)
				offenders = append(offenders, offender{tr.RequestID, KeepSlow})
			}
			s.Finish(tr)
		}
		for _, o := range offenders {
			tr := s.Ring().Lookup(o.id)
			if tr == nil {
				t.Fatalf("round %d: offending trace %s (%s) dropped", round, o.id, o.reason)
			}
			if tr.SampleReason != o.reason {
				t.Fatalf("round %d: trace %s reason %q, want %q", round, o.id, tr.SampleReason, o.reason)
			}
		}
		seen, retained, sampledOut := s.Counts()
		if seen != uint64(n) {
			t.Fatalf("seen %d, want %d", seen, n)
		}
		if retained+sampledOut != seen {
			t.Fatalf("retained %d + sampledOut %d != seen %d", retained, sampledOut, seen)
		}
		if retained < uint64(len(offenders)) {
			t.Fatalf("retained %d < %d offenders", retained, len(offenders))
		}
	}
}

func TestSinkDeterministicSampling(t *testing.T) {
	const every = 8
	s := NewSink(SinkConfig{BufferSize: 1024, SampleEvery: every})
	kept := 0
	for i := 0; i < 64; i++ {
		tr := s.Get()
		tr.RequestID = fmt.Sprintf("%016x", i+1)
		s.Finish(tr)
		if s.Ring().Lookup(fmt.Sprintf("%016x", i+1)) != nil {
			kept++
			// The 1st, every+1th, ... normal trace is the kept one.
			if i%every != 0 {
				t.Fatalf("trace %d kept, want only every %dth", i, every)
			}
		}
	}
	if kept != 64/every {
		t.Fatalf("kept %d of 64, want %d", kept, 64/every)
	}
}

func TestSinkSampleEveryOneKeepsAll(t *testing.T) {
	s := NewSink(SinkConfig{BufferSize: 64, SampleEvery: 1})
	for i := 0; i < 32; i++ {
		tr := s.Get()
		tr.RequestID = fmt.Sprintf("%016x", i+1)
		s.Finish(tr)
	}
	_, retained, _ := s.Counts()
	if retained != 32 {
		t.Fatalf("retained %d, want 32", retained)
	}
}

func TestSinkNegativeSampleKeepsOnlyOffenders(t *testing.T) {
	s := NewSink(SinkConfig{BufferSize: 64, SampleEvery: -1, SlowThreshold: time.Millisecond})
	for i := 0; i < 16; i++ {
		tr := s.Get()
		tr.RequestID = fmt.Sprintf("a%015x", i+1)
		s.Finish(tr)
	}
	slow := s.Get()
	slow.RequestID = "bbbbbbbbbbbbbbbb"
	slow.DurationNanos = (2 * time.Millisecond).Nanoseconds()
	s.Finish(slow)
	_, retained, _ := s.Counts()
	if retained != 1 {
		t.Fatalf("retained %d, want only the slow trace", retained)
	}
	if s.Ring().Lookup("bbbbbbbbbbbbbbbb") == nil {
		t.Fatal("slow trace not retained")
	}
}

func TestSinkObserverAndSlowHandler(t *testing.T) {
	s := NewSink(SinkConfig{BufferSize: 16, SlowThreshold: time.Millisecond, SampleEvery: 4})
	var observed, slowSeen []string
	s.SetObserver(func(tr *Trace) { observed = append(observed, tr.RequestID) })
	s.SetSlowHandler(func(tr *Trace) { slowSeen = append(slowSeen, tr.RequestID) })

	fast := s.Get()
	fast.RequestID = "aaaaaaaaaaaaaaaa"
	s.Finish(fast) // 1st normal trace: sampled, but not an offender
	slow := s.Get()
	slow.RequestID = "bbbbbbbbbbbbbbbb"
	slow.DurationNanos = (5 * time.Millisecond).Nanoseconds()
	s.Finish(slow)

	if len(observed) != 2 {
		t.Fatalf("observer saw %d traces, want every trace (2)", len(observed))
	}
	if len(slowSeen) != 1 || slowSeen[0] != "bbbbbbbbbbbbbbbb" {
		t.Fatalf("slow handler saw %v, want only the slow trace", slowSeen)
	}
}

// TestSinkConcurrent drives concurrent Finish calls against ring
// readers under -race: the lock-free retention path must stay safe with
// parallel writers.
func TestSinkConcurrent(t *testing.T) {
	s := NewSink(SinkConfig{BufferSize: 32, SampleEvery: 3, SlowThreshold: time.Microsecond})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				tr := s.Get()
				tr.RequestID = fmt.Sprintf("%08x%08x", w, i)
				if i%7 == 0 {
					tr.DurationNanos = time.Millisecond.Nanoseconds()
				}
				s.Finish(tr)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, tr := range s.Ring().Snapshot(0) {
				_ = tr.RequestID
			}
		}
	}()
	wg.Wait()
	<-done
	seen, retained, sampledOut := s.Counts()
	if seen != 20000 || retained+sampledOut != seen {
		t.Fatalf("counts seen=%d retained=%d sampledOut=%d", seen, retained, sampledOut)
	}
}
