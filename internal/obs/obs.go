// Package obs is the search-internals observability layer: a
// zero-overhead-when-disabled per-query statistics collector the core
// CSSI/CSSIA loops fill in, and the explain-trace wire types the debug
// API returns.
//
// The design mirrors the paper's evaluation methodology (§6/§7): the
// numbers that matter for a cluster-pruning index are *read efficiency*
// — how many objects the pruning let the query skip — and the
// cluster-level examine/prune split, not just wall time. SearchStats
// captures exactly those per query; Trace ties one SearchStats per
// shard together with durations and a request ID for the scatter/gather
// path.
//
// Collection is opt-in per query: the core search scratch carries a
// *SearchStats that is nil in normal operation, and every
// instrumentation site is guarded by that nil check, so the production
// hot path pays a handful of predictable untaken branches and zero
// allocations. The cssibench "obs" experiment measures the bound
// (target: ≤2% overhead with collection on, none off).
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/metric"
)

// SearchStats is the per-query trace one CSSI/CSSIA search fills in
// when collection is enabled. It embeds the object-level work counters
// the evaluation harness already reports (metric.Stats: visited
// objects, inter-/intra-cluster pruned objects, per-space distance
// calculations, clusters examined/pruned) and adds the search-internals
// the paper argues in terms of but the counters alone cannot show.
type SearchStats struct {
	metric.Stats

	// ClustersTotal is the number of hybrid clusters in the query's
	// visit order (ClustersExamined + ClustersPruned ≤ ClustersTotal;
	// the remainder are clusters never reached because the scan ended
	// with the heap unfilled).
	ClustersTotal int64 `json:"clustersTotal"`
	// EarlyAbandons counts semantic kernels that exited before the full
	// n-dimensional sum because the partial distance already proved the
	// candidate beyond the k-NN bound.
	EarlyAbandons int64 `json:"earlyAbandons"`
	// KthDistance is the final k-NN bound U: the combined distance of
	// the worst returned result (0 when the query returned nothing).
	KthDistance float64 `json:"kthDistance"`
	// OrderNanos is wall time of the up-front ordering phase: computing
	// the centroid-level bounds and heapifying the best-first cluster
	// frontier (Alg. 2 line 4 / Alg. 3 line 5). The incremental pops the
	// lazy frontier performs are interleaved with scanning and accrue to
	// ScanNanos, the wall time of the consumption loop.
	OrderNanos int64 `json:"orderNanos"`
	ScanNanos  int64 `json:"scanNanos"`
	// QuantNanos is wall time spent in the SQ8 quantized phases — the
	// pass-1 quantized filter of the exact filter+rerank scan, and the
	// blockwise scoring plus exact rerank of the quantized-only path. It
	// is a subset of ScanNanos, not additional time. Zero whenever the
	// query ran without quantization. The per-cluster windows are a
	// sampled estimate (one in every few scans is wall-timed and scaled,
	// clamped to the scan phase) so always-on tracing does not pay two
	// clock reads per examined cluster.
	QuantNanos int64 `json:"quantNanos"`
	// RouteNanos is wall time spent scoring and ordering clusters with
	// the learned router — a subset of OrderNanos, not additional time.
	// Zero whenever the query ran without routing.
	RouteNanos int64 `json:"routeNanos"`
	// DeltaNanos is wall time spent scanning the snapshot's write
	// overlay (the base+delta chain). It is disjoint from ScanNanos —
	// OrderNanos + ScanNanos + DeltaNanos ≤ the query's wall time — so
	// the three add up to a phase breakdown. Zero on flat snapshots and
	// in processes that never write.
	DeltaNanos int64 `json:"deltaNanos"`
}

// Merge accumulates o into s, keeping the larger KthDistance (the
// per-shard bounds are all ≥ the merged global bound, so callers that
// need the exact global bound set it from the merged result instead).
func (s *SearchStats) Merge(o *SearchStats) {
	s.Stats.Add(&o.Stats)
	s.ClustersTotal += o.ClustersTotal
	s.EarlyAbandons += o.EarlyAbandons
	s.OrderNanos += o.OrderNanos
	s.ScanNanos += o.ScanNanos
	s.QuantNanos += o.QuantNanos
	s.RouteNanos += o.RouteNanos
	s.DeltaNanos += o.DeltaNanos
	if o.KthDistance > s.KthDistance {
		s.KthDistance = o.KthDistance
	}
}

// Reset zeroes every counter so a caller-retained SearchStats can be
// reused across queries without reallocation.
func (s *SearchStats) Reset() { *s = SearchStats{} }

// ObjectsConsidered is the number of objects the query had to account
// for: every object either visited (full distance evaluated) or skipped
// by inter- or intra-cluster pruning.
func (s *SearchStats) ObjectsConsidered() int64 {
	return s.VisitedObjects + s.InterPruned + s.IntraPruned
}

// ReadEfficiency is the paper's §6 headline metric in ratio form: the
// fraction of accounted objects the pruning let the query SKIP. 1 means
// everything was pruned, 0 means a full scan. Returns 0 when the query
// accounted for no objects.
func (s *SearchStats) ReadEfficiency() float64 {
	total := s.ObjectsConsidered()
	if total == 0 {
		return 0
	}
	return float64(s.InterPruned+s.IntraPruned) / float64(total)
}

// ClustersPrunedRatio is the fraction of ordered clusters pruned
// wholesale by the lower bound (Lemma 4.4). Returns 0 when no clusters
// were ordered.
func (s *SearchStats) ClustersPrunedRatio() float64 {
	if s.ClustersTotal == 0 {
		return 0
	}
	return float64(s.ClustersPruned) / float64(s.ClustersTotal)
}

// ShardSpan is one shard's slice of a scatter/gather query: which shard
// ran, how much of its data the search touched, and how long it took.
type ShardSpan struct {
	// Shard is the shard index in [0, NumShards).
	Shard int `json:"shard"`
	// Objects is the live object count of the shard snapshot the span
	// ran against.
	Objects int `json:"objects"`
	// Stats is the shard-local search trace.
	Stats SearchStats `json:"stats"`
	// ReadEfficiency and ClustersPrunedRatio are Stats' derived ratios,
	// precomputed so wire consumers need no arithmetic.
	ReadEfficiency      float64 `json:"readEfficiency"`
	ClustersPrunedRatio float64 `json:"clustersPrunedRatio"`
	// DurationNanos is the span's wall time, including snapshot queue
	// time inside the scatter.
	DurationNanos int64 `json:"durationNanos"`
}

// FillDerived computes the precomputed ratio fields from Stats.
func (sp *ShardSpan) FillDerived() {
	sp.ReadEfficiency = sp.Stats.ReadEfficiency()
	sp.ClustersPrunedRatio = sp.Stats.ClustersPrunedRatio()
}

// Trace is one completed request: the per-shard spans of the
// scatter/gather path plus their aggregate, tied together by a request
// ID that also appears in the server's structured logs. Traces are
// produced in two ways: on demand by SearchExplain, and always-on by
// the tail-sampling Sink every traced Do/DoBatch feeds.
type Trace struct {
	// RequestID correlates this trace with the HTTP request logs (the
	// server propagates X-Request-Id; library callers may pass "").
	RequestID string `json:"requestId"`
	// TraceID is the W3C trace-context trace ID (32 lowercase hex
	// chars) joined from the request's inbound traceparent header, or
	// "" when the request arrived without trace context.
	TraceID string `json:"traceId,omitempty"`
	// Flavor names the serving layer that recorded the trace: "index",
	// "concurrent", or "sharded".
	Flavor string `json:"flavor,omitempty"`
	// Op is the request kind: "search", "batch", or "keyword".
	Op string `json:"op,omitempty"`
	// Queries is the number of queries the request carried (1 for a
	// single search, the batch length for DoBatch).
	Queries int `json:"queries,omitempty"`
	// Results is the total number of results the request returned —
	// the single query's result count, or the per-query result counts
	// summed across a batch.
	Results int `json:"results,omitempty"`
	// Algo names the search algorithm: "cssi" (exact) or "cssia"
	// (approximate), with -sq8/-routed suffixes for the quantized and
	// routed modes.
	Algo string `json:"algo"`
	// K and Lambda echo the query parameters.
	K      int     `json:"k"`
	Lambda float64 `json:"lambda"`
	// Shards holds one span per shard, in shard order.
	Shards []ShardSpan `json:"shards"`
	// Parallel records whether the spans ran concurrently (the
	// multi-core scatter) or back to back (the flat index and the
	// single-core bound-carrying chain). It decides which gather
	// invariant applies: sequential span durations sum to ≤
	// DurationNanos, parallel ones individually stay ≤ DurationNanos.
	Parallel bool `json:"parallel,omitempty"`
	// Total aggregates the per-shard stats; its KthDistance is the
	// merged global bound (the distance of the worst returned result).
	Total SearchStats `json:"total"`
	// ReadEfficiency and ClustersPrunedRatio are Total's derived
	// ratios.
	ReadEfficiency      float64 `json:"readEfficiency"`
	ClustersPrunedRatio float64 `json:"clustersPrunedRatio"`
	// GatherNanos is wall time of the gather merge that combines the
	// per-shard result lists. Zero for single-span traces.
	GatherNanos int64 `json:"gatherNanos,omitempty"`
	// DurationNanos is the whole query's wall time including the
	// scatter fan-out and the gather merge.
	DurationNanos int64 `json:"durationNanos"`
	// StartUnixNanos timestamps the request start (Unix nanoseconds)
	// so /debug/traces consumers can order and age retained entries.
	StartUnixNanos int64 `json:"startUnixNanos,omitempty"`
	// Error carries the request's error string when it failed; the
	// tail sampler always retains errored traces.
	Error string `json:"error,omitempty"`
	// Partial marks responses truncated by the request's time budget
	// (SearchRequest.Deadline or a context deadline); always retained.
	Partial bool `json:"partial,omitempty"`
	// SampleReason records why the tail sampler retained the trace:
	// "slow", "error", "partial", or "sampled" for the deterministic
	// 1-in-N of normal traffic. Empty on traces not yet classified.
	SampleReason string `json:"sampleReason,omitempty"`
}

// Reset zeroes the trace for reuse, keeping the span slice's capacity
// so pooled traces record without reallocating.
func (t *Trace) Reset() {
	shards := t.Shards[:0]
	*t = Trace{Shards: shards}
}

// Finish aggregates the spans into Total and the derived ratios.
// kth is the merged global bound (0 when no results). Finish is
// idempotent: Total is rebuilt from the spans on every call.
func (t *Trace) Finish(kth float64, durationNanos int64) {
	t.Total.Reset()
	for i := range t.Shards {
		t.Shards[i].FillDerived()
		t.Total.Merge(&t.Shards[i].Stats)
	}
	t.Total.KthDistance = kth
	t.ReadEfficiency = t.Total.ReadEfficiency()
	t.ClustersPrunedRatio = t.Total.ClustersPrunedRatio()
	t.DurationNanos = durationNanos
}

// CheckInvariants verifies the trace's internal accounting: phase
// nanos are non-negative and respect the documented subset relations
// (QuantNanos ⊆ ScanNanos, RouteNanos ⊆ OrderNanos, DeltaNanos
// disjoint), each span's phase breakdown fits inside the span's wall
// time, every span fits inside the request's wall time, and — for
// sequentially recorded spans — the span durations plus the gather
// merge sum to no more than the request duration.
func (t *Trace) CheckInvariants() error {
	checkPhases := func(what string, s *SearchStats, wall int64) error {
		for _, p := range []struct {
			name string
			v    int64
		}{
			{"orderNanos", s.OrderNanos}, {"scanNanos", s.ScanNanos},
			{"quantNanos", s.QuantNanos}, {"routeNanos", s.RouteNanos},
			{"deltaNanos", s.DeltaNanos},
		} {
			if p.v < 0 {
				return fmt.Errorf("%s: negative %s %d", what, p.name, p.v)
			}
		}
		if s.QuantNanos > s.ScanNanos {
			return fmt.Errorf("%s: quantNanos %d exceeds scanNanos %d (must be a subset)", what, s.QuantNanos, s.ScanNanos)
		}
		if s.RouteNanos > s.OrderNanos {
			return fmt.Errorf("%s: routeNanos %d exceeds orderNanos %d (must be a subset)", what, s.RouteNanos, s.OrderNanos)
		}
		if wall > 0 {
			if sum := s.OrderNanos + s.ScanNanos + s.DeltaNanos; sum > wall {
				return fmt.Errorf("%s: phase sum %d exceeds wall time %d", what, sum, wall)
			}
		}
		return nil
	}
	var spanSum int64
	for i := range t.Shards {
		sp := &t.Shards[i]
		if sp.DurationNanos < 0 {
			return fmt.Errorf("span %d: negative duration %d", i, sp.DurationNanos)
		}
		if err := checkPhases(fmt.Sprintf("span %d (shard %d)", i, sp.Shard), &sp.Stats, sp.DurationNanos); err != nil {
			return err
		}
		if t.DurationNanos > 0 && sp.DurationNanos > t.DurationNanos {
			return fmt.Errorf("span %d (shard %d): duration %d exceeds trace duration %d", i, sp.Shard, sp.DurationNanos, t.DurationNanos)
		}
		spanSum += sp.DurationNanos
	}
	if t.GatherNanos < 0 {
		return fmt.Errorf("negative gatherNanos %d", t.GatherNanos)
	}
	if !t.Parallel && t.DurationNanos > 0 && spanSum+t.GatherNanos > t.DurationNanos {
		return fmt.Errorf("sequential span durations %d + gather %d exceed trace duration %d", spanSum, t.GatherNanos, t.DurationNanos)
	}
	return checkPhases("total", &t.Total, 0)
}

// reqCounter and reqFallbackBase drive the monotonic fallback for
// request IDs generated while the entropy source is unavailable:
// a clock-seeded base (set once) plus a process-local counter.
var (
	reqCounter      atomic.Uint64
	reqFallbackBase atomic.Uint64
)

// NewRequestID returns a short unique identifier for correlating one
// query's trace, spans, and log lines: 16 lowercase hex chars from
// crypto/rand, falling back to a monotonic clock-seeded counter in the
// same format, so downstream parsing and log grepping never see a
// second shape.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		return hex.EncodeToString(b[:])
	}
	return fallbackRequestID()
}

// fallbackRequestID is NewRequestID's entropy-free path: the top bits
// come from the wall clock at first use (distinguishing processes),
// the bottom from a monotonic counter (distinguishing requests within
// one process). Same 16-hex format as the random path.
func fallbackRequestID() string {
	base := reqFallbackBase.Load()
	if base == 0 {
		seed := uint64(time.Now().UnixNano()) << 20
		if seed == 0 {
			seed = 1 << 20
		}
		reqFallbackBase.CompareAndSwap(0, seed)
		base = reqFallbackBase.Load()
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], base+reqCounter.Add(1))
	return hex.EncodeToString(b[:])
}
