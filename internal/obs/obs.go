// Package obs is the search-internals observability layer: a
// zero-overhead-when-disabled per-query statistics collector the core
// CSSI/CSSIA loops fill in, and the explain-trace wire types the debug
// API returns.
//
// The design mirrors the paper's evaluation methodology (§6/§7): the
// numbers that matter for a cluster-pruning index are *read efficiency*
// — how many objects the pruning let the query skip — and the
// cluster-level examine/prune split, not just wall time. SearchStats
// captures exactly those per query; Trace ties one SearchStats per
// shard together with durations and a request ID for the scatter/gather
// path.
//
// Collection is opt-in per query: the core search scratch carries a
// *SearchStats that is nil in normal operation, and every
// instrumentation site is guarded by that nil check, so the production
// hot path pays a handful of predictable untaken branches and zero
// allocations. The cssibench "obs" experiment measures the bound
// (target: ≤2% overhead with collection on, none off).
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"

	"repro/internal/metric"
)

// SearchStats is the per-query trace one CSSI/CSSIA search fills in
// when collection is enabled. It embeds the object-level work counters
// the evaluation harness already reports (metric.Stats: visited
// objects, inter-/intra-cluster pruned objects, per-space distance
// calculations, clusters examined/pruned) and adds the search-internals
// the paper argues in terms of but the counters alone cannot show.
type SearchStats struct {
	metric.Stats

	// ClustersTotal is the number of hybrid clusters in the query's
	// visit order (ClustersExamined + ClustersPruned ≤ ClustersTotal;
	// the remainder are clusters never reached because the scan ended
	// with the heap unfilled).
	ClustersTotal int64 `json:"clustersTotal"`
	// EarlyAbandons counts semantic kernels that exited before the full
	// n-dimensional sum because the partial distance already proved the
	// candidate beyond the k-NN bound.
	EarlyAbandons int64 `json:"earlyAbandons"`
	// KthDistance is the final k-NN bound U: the combined distance of
	// the worst returned result (0 when the query returned nothing).
	KthDistance float64 `json:"kthDistance"`
	// OrderNanos is wall time of the up-front ordering phase: computing
	// the centroid-level bounds and heapifying the best-first cluster
	// frontier (Alg. 2 line 4 / Alg. 3 line 5). The incremental pops the
	// lazy frontier performs are interleaved with scanning and accrue to
	// ScanNanos, the wall time of the consumption loop.
	OrderNanos int64 `json:"orderNanos"`
	ScanNanos  int64 `json:"scanNanos"`
	// QuantNanos is wall time spent in the SQ8 quantized phases — the
	// pass-1 quantized filter of the exact filter+rerank scan, and the
	// blockwise scoring plus exact rerank of the quantized-only path. It
	// is a subset of ScanNanos, not additional time. Zero whenever the
	// query ran without quantization.
	QuantNanos int64 `json:"quantNanos"`
	// RouteNanos is wall time spent scoring and ordering clusters with
	// the learned router — a subset of OrderNanos, not additional time.
	// Zero whenever the query ran without routing.
	RouteNanos int64 `json:"routeNanos"`
	// DeltaNanos is wall time spent scanning the snapshot's write
	// overlay (the base+delta chain). Zero on flat snapshots and in
	// processes that never write.
	DeltaNanos int64 `json:"deltaNanos"`
}

// Merge accumulates o into s, keeping the larger KthDistance (the
// per-shard bounds are all ≥ the merged global bound, so callers that
// need the exact global bound set it from the merged result instead).
func (s *SearchStats) Merge(o *SearchStats) {
	s.Stats.Add(&o.Stats)
	s.ClustersTotal += o.ClustersTotal
	s.EarlyAbandons += o.EarlyAbandons
	s.OrderNanos += o.OrderNanos
	s.ScanNanos += o.ScanNanos
	s.QuantNanos += o.QuantNanos
	s.RouteNanos += o.RouteNanos
	s.DeltaNanos += o.DeltaNanos
	if o.KthDistance > s.KthDistance {
		s.KthDistance = o.KthDistance
	}
}

// Reset zeroes every counter so a caller-retained SearchStats can be
// reused across queries without reallocation.
func (s *SearchStats) Reset() { *s = SearchStats{} }

// ObjectsConsidered is the number of objects the query had to account
// for: every object either visited (full distance evaluated) or skipped
// by inter- or intra-cluster pruning.
func (s *SearchStats) ObjectsConsidered() int64 {
	return s.VisitedObjects + s.InterPruned + s.IntraPruned
}

// ReadEfficiency is the paper's §6 headline metric in ratio form: the
// fraction of accounted objects the pruning let the query SKIP. 1 means
// everything was pruned, 0 means a full scan. Returns 0 when the query
// accounted for no objects.
func (s *SearchStats) ReadEfficiency() float64 {
	total := s.ObjectsConsidered()
	if total == 0 {
		return 0
	}
	return float64(s.InterPruned+s.IntraPruned) / float64(total)
}

// ClustersPrunedRatio is the fraction of ordered clusters pruned
// wholesale by the lower bound (Lemma 4.4). Returns 0 when no clusters
// were ordered.
func (s *SearchStats) ClustersPrunedRatio() float64 {
	if s.ClustersTotal == 0 {
		return 0
	}
	return float64(s.ClustersPruned) / float64(s.ClustersTotal)
}

// ShardSpan is one shard's slice of a scatter/gather query: which shard
// ran, how much of its data the search touched, and how long it took.
type ShardSpan struct {
	// Shard is the shard index in [0, NumShards).
	Shard int `json:"shard"`
	// Objects is the live object count of the shard snapshot the span
	// ran against.
	Objects int `json:"objects"`
	// Stats is the shard-local search trace.
	Stats SearchStats `json:"stats"`
	// ReadEfficiency and ClustersPrunedRatio are Stats' derived ratios,
	// precomputed so wire consumers need no arithmetic.
	ReadEfficiency      float64 `json:"readEfficiency"`
	ClustersPrunedRatio float64 `json:"clustersPrunedRatio"`
	// DurationNanos is the span's wall time, including snapshot queue
	// time inside the scatter.
	DurationNanos int64 `json:"durationNanos"`
}

// FillDerived computes the precomputed ratio fields from Stats.
func (sp *ShardSpan) FillDerived() {
	sp.ReadEfficiency = sp.Stats.ReadEfficiency()
	sp.ClustersPrunedRatio = sp.Stats.ClustersPrunedRatio()
}

// Trace is one explained query: the per-shard spans of the
// scatter/gather path plus their aggregate, tied together by a request
// ID that also appears in the server's structured logs.
type Trace struct {
	// RequestID correlates this trace with the HTTP request logs (the
	// server propagates X-Request-Id; library callers may pass "").
	RequestID string `json:"requestId"`
	// Algo names the search algorithm: "cssi" (exact) or "cssia"
	// (approximate).
	Algo string `json:"algo"`
	// K and Lambda echo the query parameters.
	K      int     `json:"k"`
	Lambda float64 `json:"lambda"`
	// Shards holds one span per shard, in shard order.
	Shards []ShardSpan `json:"shards"`
	// Total aggregates the per-shard stats; its KthDistance is the
	// merged global bound (the distance of the worst returned result).
	Total SearchStats `json:"total"`
	// ReadEfficiency and ClustersPrunedRatio are Total's derived
	// ratios.
	ReadEfficiency      float64 `json:"readEfficiency"`
	ClustersPrunedRatio float64 `json:"clustersPrunedRatio"`
	// DurationNanos is the whole query's wall time including the
	// scatter fan-out and the gather merge.
	DurationNanos int64 `json:"durationNanos"`
}

// Finish aggregates the spans into Total and the derived ratios.
// kth is the merged global bound (0 when no results).
func (t *Trace) Finish(kth float64, durationNanos int64) {
	t.Total.Reset()
	for i := range t.Shards {
		t.Shards[i].FillDerived()
		t.Total.Merge(&t.Shards[i].Stats)
	}
	t.Total.KthDistance = kth
	t.ReadEfficiency = t.Total.ReadEfficiency()
	t.ClustersPrunedRatio = t.Total.ClustersPrunedRatio()
	t.DurationNanos = durationNanos
}

// reqCounter disambiguates request IDs generated in the same process
// when the entropy source is unavailable.
var reqCounter atomic.Uint64

// NewRequestID returns a short unique identifier for correlating one
// query's trace, spans, and log lines: 16 hex chars of entropy, falling
// back to a process-local counter if the source fails.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}
