package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func validHex16(t *testing.T, id string) {
	t.Helper()
	if len(id) != 16 {
		t.Fatalf("id %q: length %d, want 16", id, len(id))
	}
	if !isLowerHex(id) {
		t.Fatalf("id %q: not lowercase hex", id)
	}
}

func TestNewRequestIDFormat(t *testing.T) {
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		validHex16(t, id)
		if !ValidSpanID(id) {
			t.Fatalf("id %q rejected by ValidSpanID", id)
		}
	}
}

func TestNewRequestIDCollisions(t *testing.T) {
	const n = 100000
	seen := make(map[string]struct{}, n)
	for i := 0; i < n; i++ {
		id := NewRequestID()
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate request ID %q after %d draws", id, i)
		}
		seen[id] = struct{}{}
	}
}

func TestFallbackRequestID(t *testing.T) {
	// The entropy-free path must produce the same 16-hex shape and stay
	// unique within a process (monotonic counter under a clock-seeded
	// base).
	seen := make(map[string]struct{})
	for i := 0; i < 1000; i++ {
		id := fallbackRequestID()
		validHex16(t, id)
		if _, dup := seen[id]; dup {
			t.Fatalf("fallback duplicate %q", id)
		}
		seen[id] = struct{}{}
	}
}

func TestTraceFinishIdempotent(t *testing.T) {
	tr := &Trace{
		Shards: []ShardSpan{
			{Shard: 0, Stats: SearchStats{ClustersTotal: 10, OrderNanos: 5, ScanNanos: 20}},
			{Shard: 1, Stats: SearchStats{ClustersTotal: 6, OrderNanos: 3, ScanNanos: 9}},
		},
	}
	tr.Shards[0].Stats.VisitedObjects = 40
	tr.Shards[0].Stats.InterPruned = 60
	tr.Shards[1].Stats.VisitedObjects = 10
	tr.Shards[1].Stats.InterPruned = 90

	tr.Finish(0.25, 1000)
	first, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Finish must rebuild Total from the spans, not accumulate into it.
	tr.Finish(0.25, 1000)
	second, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("Finish not idempotent:\n first=%s\nsecond=%s", first, second)
	}
	if got, want := tr.Total.ClustersTotal, int64(16); got != want {
		t.Fatalf("Total.ClustersTotal = %d, want %d", got, want)
	}
	if tr.Total.KthDistance != 0.25 {
		t.Fatalf("Total.KthDistance = %v, want 0.25", tr.Total.KthDistance)
	}
}

func TestFillDerivedIdempotent(t *testing.T) {
	sp := ShardSpan{Stats: SearchStats{}}
	sp.Stats.VisitedObjects = 25
	sp.Stats.InterPruned = 50
	sp.Stats.IntraPruned = 25
	sp.Stats.ClustersTotal = 8
	sp.Stats.ClustersPruned = 6
	sp.FillDerived()
	re, cp := sp.ReadEfficiency, sp.ClustersPrunedRatio
	if re != 0.75 {
		t.Fatalf("ReadEfficiency = %v, want 0.75", re)
	}
	if cp != 0.75 {
		t.Fatalf("ClustersPrunedRatio = %v, want 0.75", cp)
	}
	sp.FillDerived()
	if sp.ReadEfficiency != re || sp.ClustersPrunedRatio != cp {
		t.Fatalf("FillDerived not idempotent: %v/%v then %v/%v",
			re, cp, sp.ReadEfficiency, sp.ClustersPrunedRatio)
	}
}

func TestCheckInvariants(t *testing.T) {
	mk := func(mut func(*Trace)) *Trace {
		tr := &Trace{
			DurationNanos: 1000,
			Shards: []ShardSpan{{
				DurationNanos: 400,
				Stats:         SearchStats{OrderNanos: 100, ScanNanos: 200, QuantNanos: 150, RouteNanos: 50, DeltaNanos: 50},
			}},
		}
		if mut != nil {
			mut(tr)
		}
		return tr
	}
	if err := mk(nil).CheckInvariants(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Trace)
		want string
	}{
		{"negative phase", func(tr *Trace) { tr.Shards[0].Stats.ScanNanos = -1 }, "negative"},
		{"quant exceeds scan", func(tr *Trace) { tr.Shards[0].Stats.QuantNanos = 300 }, "quantNanos"},
		{"route exceeds order", func(tr *Trace) { tr.Shards[0].Stats.RouteNanos = 150 }, "routeNanos"},
		{"phase sum exceeds span wall", func(tr *Trace) { tr.Shards[0].Stats.DeltaNanos = 200 }, "phase sum"},
		{"span exceeds trace", func(tr *Trace) { tr.Shards[0].DurationNanos = 1500 }, "exceeds trace duration"},
		{"negative gather", func(tr *Trace) { tr.GatherNanos = -5 }, "gatherNanos"},
		{"sequential sum exceeds duration", func(tr *Trace) {
			tr.Shards = append(tr.Shards, ShardSpan{DurationNanos: 500})
			tr.GatherNanos = 200
		}, "sequential"},
	}
	for _, c := range cases {
		err := mk(c.mut).CheckInvariants()
		if err == nil {
			t.Errorf("%s: invariant violation not detected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// Parallel spans are individually bounded but need not sum.
	par := mk(func(tr *Trace) {
		tr.Parallel = true
		tr.Shards = append(tr.Shards, ShardSpan{DurationNanos: 900})
		tr.GatherNanos = 100
	})
	if err := par.CheckInvariants(); err != nil {
		t.Fatalf("parallel trace rejected: %v", err)
	}
}

func TestTraceResetKeepsSpanCapacity(t *testing.T) {
	tr := &Trace{}
	tr.Shards = append(tr.Shards, ShardSpan{Shard: 1}, ShardSpan{Shard: 2})
	c := cap(tr.Shards)
	tr.RequestID = "deadbeefdeadbeef"
	tr.Reset()
	if len(tr.Shards) != 0 || cap(tr.Shards) != c {
		t.Fatalf("Reset: len=%d cap=%d, want 0/%d", len(tr.Shards), cap(tr.Shards), c)
	}
	if tr.RequestID != "" {
		t.Fatalf("Reset kept RequestID %q", tr.RequestID)
	}
}
