package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// W3C trace-context (traceparent) support. The server parses the
// inbound header on every /v1 route so trace context survives process
// boundaries, joins the trace ID to the X-Request-Id plumbing, and
// echoes a child traceparent so callers can continue the trace.
//
// Format (version 00): "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex
// flags>", all lowercase. Per the spec, an all-zero trace or parent ID
// is invalid, and receivers accept headers with a higher version as
// long as the version-00 prefix parses.

const traceParentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// ParseTraceParent parses a traceparent header value. It returns the
// trace ID and parent span ID (both lowercase hex, without dashes) and
// whether the header was valid. Invalid or absent headers return
// ok=false; callers then start a fresh trace.
func ParseTraceParent(h string) (traceID, parentID string, ok bool) {
	if len(h) < traceParentLen {
		return "", "", false
	}
	// Version-00 headers are exactly 55 chars; future versions may
	// append fields after another dash.
	if len(h) > traceParentLen && h[traceParentLen] != '-' {
		return "", "", false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	version, tid, pid, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isLowerHex(version) || !isLowerHex(tid) || !isLowerHex(pid) || !isLowerHex(flags) {
		return "", "", false
	}
	// Version ff is explicitly forbidden, and a version-00 header must
	// not carry trailing fields.
	if version == "ff" || (version == "00" && len(h) != traceParentLen) {
		return "", "", false
	}
	if allZero(tid) || allZero(pid) {
		return "", "", false
	}
	return tid, pid, true
}

// FormatTraceParent renders a version-00 traceparent with the sampled
// flag set, suitable for response echoing and outbound propagation.
func FormatTraceParent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// NewTraceID returns a fresh 32-hex-char W3C trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fallbackRequestID() + fallbackRequestID()
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 16-hex-char W3C span ID. It shares
// NewRequestID's format on purpose: the server uses the request ID as
// its span ID, which is what joins the two correlation schemes.
func NewSpanID() string { return NewRequestID() }

// ValidSpanID reports whether s has the shape of a W3C span ID:
// exactly 16 lowercase hex chars, not all zero. Request IDs minted by
// NewRequestID always pass; honored inbound X-Request-Id values of
// other formats do not, and callers then mint a separate span ID.
func ValidSpanID(s string) bool {
	return len(s) == 16 && isLowerHex(s) && !allZero(s)
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
