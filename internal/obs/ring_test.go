package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestTraceRingBasics(t *testing.T) {
	r := NewTraceRing(4)
	if r.Cap() != 4 || r.Len() != 0 {
		t.Fatalf("new ring: cap %d len %d, want 4/0", r.Cap(), r.Len())
	}
	for i := 0; i < 3; i++ {
		r.Put(&Trace{RequestID: fmt.Sprintf("%016x", i+1)})
	}
	if r.Len() != 3 {
		t.Fatalf("len %d, want 3", r.Len())
	}
	snap := r.Snapshot(0)
	if len(snap) != 3 {
		t.Fatalf("snapshot %d traces, want 3", len(snap))
	}
	// Newest first.
	if snap[0].RequestID != fmt.Sprintf("%016x", 3) {
		t.Fatalf("snapshot[0] = %q, want newest", snap[0].RequestID)
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0] != snap[0] {
		t.Fatalf("limited snapshot wrong: %v", got)
	}

	// Overwrite on wrap: after 6 puts into capacity 4, IDs 3..6 remain.
	for i := 3; i < 6; i++ {
		r.Put(&Trace{RequestID: fmt.Sprintf("%016x", i+1)})
	}
	if r.Len() != 4 {
		t.Fatalf("wrapped len %d, want 4", r.Len())
	}
	if r.Lookup(fmt.Sprintf("%016x", 1)) != nil || r.Lookup(fmt.Sprintf("%016x", 2)) != nil {
		t.Fatal("overwritten traces still found")
	}
	for i := 3; i <= 6; i++ {
		if r.Lookup(fmt.Sprintf("%016x", i)) == nil {
			t.Fatalf("trace %d not found after wrap", i)
		}
	}
}

func TestTraceRingLookupByTraceID(t *testing.T) {
	r := NewTraceRing(2)
	tr := &Trace{RequestID: "aaaaaaaaaaaaaaaa", TraceID: "0af7651916cd43dd8448eb211c80319c"}
	r.Put(tr)
	if r.Lookup(tr.RequestID) != tr {
		t.Fatal("lookup by request ID failed")
	}
	if r.Lookup(tr.TraceID) != tr {
		t.Fatal("lookup by trace ID failed")
	}
	if r.Lookup("") != nil {
		t.Fatal("empty id matched")
	}
	if r.Lookup("nope") != nil {
		t.Fatal("unknown id matched")
	}
}

func TestTraceRingMinimumCapacity(t *testing.T) {
	r := NewTraceRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap %d, want 1", r.Cap())
	}
	r.Put(&Trace{RequestID: "aaaaaaaaaaaaaaaa"})
	r.Put(&Trace{RequestID: "bbbbbbbbbbbbbbbb"})
	if got := r.Snapshot(0); len(got) != 1 || got[0].RequestID != "bbbbbbbbbbbbbbbb" {
		t.Fatalf("capacity-1 ring holds %v", got)
	}
}

// TestTraceRingConcurrent races writers against Snapshot/Lookup readers
// (run under -race in CI): every trace a reader observes must be a
// complete, immutable value even while slots are concurrently
// overwritten.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8)
	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Put(&Trace{
					RequestID:     fmt.Sprintf("%08x%08x", w, i),
					DurationNanos: int64(i),
				})
			}
		}(w)
	}
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range r.Snapshot(0) {
					// A complete trace: the ID always matches the 16-hex
					// writer/sequence encoding it was stored with.
					if len(tr.RequestID) != 16 {
						t.Errorf("torn trace: id %q", tr.RequestID)
						return
					}
				}
				r.Lookup(fmt.Sprintf("%08x%08x", 0, perWriter-1))
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if r.Len() != 8 {
		t.Fatalf("ring len %d after %d puts, want full (8)", r.Len(), writers*perWriter)
	}
}
