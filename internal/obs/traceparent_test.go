package obs

import (
	"strings"
	"testing"
)

func TestParseTraceParent(t *testing.T) {
	tid := "0af7651916cd43dd8448eb211c80319c"
	pid := "b7ad6b7169203331"
	valid := "00-" + tid + "-" + pid + "-01"
	cases := []struct {
		name    string
		h       string
		wantTID string
		wantPID string
		wantOK  bool
	}{
		{"valid", valid, tid, pid, true},
		{"valid flags 00", "00-" + tid + "-" + pid + "-00", tid, pid, true},
		{"empty", "", "", "", false},
		{"too short", valid[:54], "", "", false},
		{"uppercase hex", "00-" + strings.ToUpper(tid) + "-" + pid + "-01", "", "", false},
		{"bad dash", "00_" + tid + "-" + pid + "-01", "", "", false},
		{"all-zero trace id", "00-" + strings.Repeat("0", 32) + "-" + pid + "-01", "", "", false},
		{"all-zero parent id", "00-" + tid + "-" + strings.Repeat("0", 16) + "-01", "", "", false},
		{"version ff", "ff-" + tid + "-" + pid + "-01", "", "", false},
		{"version 00 with trailing", valid + "-extra", "", "", false},
		{"future version with trailing", "01-" + tid + "-" + pid + "-01-xyz", tid, pid, true},
		{"future version trailing without dash", "01-" + tid + "-" + pid + "-01xyz", "", "", false},
		{"non-hex version", "zz-" + tid + "-" + pid + "-01", "", "", false},
		{"non-hex flags", "00-" + tid + "-" + pid + "-0g", "", "", false},
	}
	for _, c := range cases {
		gotTID, gotPID, ok := ParseTraceParent(c.h)
		if ok != c.wantOK || gotTID != c.wantTID || gotPID != c.wantPID {
			t.Errorf("%s: ParseTraceParent(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.name, c.h, gotTID, gotPID, ok, c.wantTID, c.wantPID, c.wantOK)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if len(tid) != 32 || !isLowerHex(tid) {
			t.Fatalf("NewTraceID() = %q, want 32 lowercase hex chars", tid)
		}
		h := FormatTraceParent(tid, sid)
		gotTID, gotPID, ok := ParseTraceParent(h)
		if !ok || gotTID != tid || gotPID != sid {
			t.Fatalf("round trip %q = (%q, %q, %v), want (%q, %q, true)", h, gotTID, gotPID, ok, tid, sid)
		}
	}
}

func TestValidSpanID(t *testing.T) {
	cases := []struct {
		id   string
		want bool
	}{
		{"b7ad6b7169203331", true},
		{strings.Repeat("0", 16), false}, // all-zero forbidden by the spec
		{"B7AD6B7169203331", false},      // uppercase
		{"b7ad6b71692033", false},        // short
		{"b7ad6b7169203331ff", false},    // long
		{"", false},
		{"req-12345-abcdef", false}, // honored external X-Request-Id shapes
	}
	for _, c := range cases {
		if got := ValidSpanID(c.id); got != c.want {
			t.Errorf("ValidSpanID(%q) = %v, want %v", c.id, got, c.want)
		}
	}
}
