package obs

import "sync/atomic"

// TraceRing is a lock-free fixed-capacity ring of retained traces.
// Writers claim a slot with a single atomic cursor increment and store
// the trace pointer; concurrent readers load slot pointers without
// coordination, so a snapshot is a consistent set of recently retained
// traces rather than a serialized log — exactly what post-hoc
// forensics needs. A trace stored in the ring is immutable from that
// point on and is never returned to the sink's pool (readers may hold
// references across overwrites); the memory bound is therefore
// capacity × trace size plus whatever snapshots readers still hold.
type TraceRing struct {
	slots  []atomic.Pointer[Trace]
	cursor atomic.Uint64
}

// NewTraceRing returns a ring holding up to capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{slots: make([]atomic.Pointer[Trace], capacity)}
}

// Cap returns the ring's fixed capacity.
func (r *TraceRing) Cap() int { return len(r.slots) }

// Len counts the currently occupied slots (≤ Cap, growing until the
// ring first wraps).
func (r *TraceRing) Len() int {
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Put stores t, overwriting the oldest retained trace once the ring is
// full. t must not be mutated after Put.
func (r *TraceRing) Put(t *Trace) {
	if t == nil {
		return
	}
	slot := (r.cursor.Add(1) - 1) % uint64(len(r.slots))
	r.slots[slot].Store(t)
}

// Snapshot returns up to limit retained traces, newest first (limit ≤ 0
// means all). Concurrent Puts may race individual slot loads; each
// returned trace is complete and immutable regardless.
func (r *TraceRing) Snapshot(limit int) []*Trace {
	n := len(r.slots)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]*Trace, 0, limit)
	cur := r.cursor.Load()
	for i := 0; i < n && len(out) < limit; i++ {
		// Walk backwards from the most recently claimed slot.
		slot := (cur + uint64(n) - 1 - uint64(i)) % uint64(n)
		if t := r.slots[slot].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Lookup returns the newest retained trace whose RequestID or TraceID
// equals id, or nil.
func (r *TraceRing) Lookup(id string) *Trace {
	if id == "" {
		return nil
	}
	n := len(r.slots)
	cur := r.cursor.Load()
	for i := 0; i < n; i++ {
		slot := (cur + uint64(n) - 1 - uint64(i)) % uint64(n)
		if t := r.slots[slot].Load(); t != nil && (t.RequestID == id || t.TraceID == id) {
			return t
		}
	}
	return nil
}
