package knn

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewHeapPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewHeap(0)
}

func TestHeapKeepsKSmallest(t *testing.T) {
	h := NewHeap(3)
	for i, d := range []float64{5, 1, 4, 2, 8, 3} {
		h.Push(Result{ID: uint32(i), Dist: d})
	}
	got := h.Sorted()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	wantDists := []float64{1, 2, 3}
	for i, r := range got {
		if r.Dist != wantDists[i] {
			t.Fatalf("result %d dist = %v, want %v", i, r.Dist, wantDists[i])
		}
	}
}

func TestHeapBound(t *testing.T) {
	h := NewHeap(2)
	if _, ok := h.Bound(); ok {
		t.Fatal("Bound should be unavailable before k results")
	}
	h.Push(Result{ID: 1, Dist: 3})
	if _, ok := h.Bound(); ok {
		t.Fatal("Bound should be unavailable with 1 of 2 results")
	}
	h.Push(Result{ID: 2, Dist: 7})
	if b, ok := h.Bound(); !ok || b != 7 {
		t.Fatalf("Bound = %v,%v want 7,true", b, ok)
	}
	h.Push(Result{ID: 3, Dist: 5})
	if b, _ := h.Bound(); b != 5 {
		t.Fatalf("Bound after improvement = %v, want 5", b)
	}
}

func TestHeapPushReturnValue(t *testing.T) {
	h := NewHeap(1)
	if !h.Push(Result{ID: 1, Dist: 4}) {
		t.Fatal("first push should be kept")
	}
	if h.Push(Result{ID: 2, Dist: 4}) {
		t.Fatal("equal distance should not displace the incumbent")
	}
	if !h.Push(Result{ID: 3, Dist: 1}) {
		t.Fatal("better candidate should be kept")
	}
	got := h.Sorted()
	if len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("final heap %v", got)
	}
}

func TestSortedTieBreaksOnID(t *testing.T) {
	h := NewHeap(3)
	h.Push(Result{ID: 9, Dist: 1})
	h.Push(Result{ID: 2, Dist: 1})
	h.Push(Result{ID: 5, Dist: 1})
	got := h.Sorted()
	if got[0].ID != 2 || got[1].ID != 5 || got[2].ID != 9 {
		t.Fatalf("tie-break order wrong: %v", got)
	}
}

// Property: heap result equals brute-force top-k.
func TestHeapMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := 1 + rng.IntN(200)
		k := 1 + rng.IntN(20)
		all := make([]Result, n)
		h := NewHeap(k)
		for i := range all {
			all[i] = Result{ID: uint32(i), Dist: float64(rng.IntN(50))} // ties likely
			h.Push(all[i])
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
		want := k
		if n < k {
			want = n
		}
		got := h.Sorted()
		if len(got) != want {
			return false
		}
		// Compare the distance multiset (ties make IDs ambiguous).
		for i := 0; i < want; i++ {
			if got[i].Dist != all[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorRate(t *testing.T) {
	exact := []Result{{1, 0.1}, {2, 0.2}, {3, 0.3}, {4, 0.4}}
	if e := ErrorRate(exact, exact); e != 0 {
		t.Fatalf("self error = %v", e)
	}
	approx := []Result{{1, 0.1}, {2, 0.2}, {9, 0.35}, {4, 0.4}}
	if e := ErrorRate(exact, approx); e != 0.25 {
		t.Fatalf("error = %v, want 0.25", e)
	}
	if e := ErrorRate(exact, nil); e != 1 {
		t.Fatalf("all-missing error = %v, want 1", e)
	}
}

func TestErrorRatePanicsOnEmptyExact(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ErrorRate(nil, nil)
}
