// Package knn provides the bounded result heap every search algorithm in
// this repository shares, plus the result-set error metric the paper uses
// to evaluate CSSIA (§7.1: missed exact neighbors divided by k).
package knn

import (
	"container/heap"
	"sort"
)

// Result is one k-NN candidate.
type Result struct {
	ID   uint32
	Dist float64
}

// Heap maintains the k best (smallest-distance) results seen so far as a
// max-heap, so the worst kept result is inspectable in O(1). The zero
// value is not usable; construct with NewHeap.
type Heap struct {
	k     int
	items []Result
}

// NewHeap returns a heap retaining the k smallest-distance results.
func NewHeap(k int) *Heap {
	if k < 1 {
		panic("knn: k must be >= 1")
	}
	return &Heap{k: k, items: make([]Result, 0, k+1)}
}

// maxHeap adapts items to container/heap with the largest distance on top.
type maxHeap []Result

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// K returns the heap's capacity.
func (h *Heap) K() int { return h.k }

// Len returns the number of results currently held.
func (h *Heap) Len() int { return len(h.items) }

// Full reports whether k results are held.
func (h *Heap) Full() bool { return len(h.items) >= h.k }

// Bound returns the distance of the current k-th nearest neighbor, or
// +Inf semantics via ok=false while fewer than k results are held. The
// paper's U (d(q,o_nn)).
func (h *Heap) Bound() (float64, bool) {
	if !h.Full() {
		return 0, false
	}
	return h.items[0].Dist, true
}

// Push offers a candidate. It returns true if the candidate was kept
// (i.e., the heap was not full or the candidate beat the current worst).
func (h *Heap) Push(r Result) bool {
	if len(h.items) < h.k {
		mh := maxHeap(h.items)
		heap.Push(&mh, r)
		h.items = mh
		return true
	}
	if r.Dist >= h.items[0].Dist {
		return false
	}
	mh := maxHeap(h.items)
	mh[0] = r
	heap.Fix(&mh, 0)
	h.items = mh
	return true
}

// Items returns the held results in unspecified order (shared storage;
// do not mutate).
func (h *Heap) Items() []Result { return h.items }

// Sorted returns the held results ordered by ascending distance, ties
// broken by ascending ID for determinism.
func (h *Heap) Sorted() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	SortResults(out)
	return out
}

// SortResults orders results by ascending distance, then ascending ID.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}

// ErrorRate returns the paper's CSSIA error metric: the fraction of the
// exact result set missing from the approximate one (|exact \ approx| / k,
// §7.1). It panics if exact is empty.
func ErrorRate(exact, approx []Result) float64 {
	if len(exact) == 0 {
		panic("knn: ErrorRate with empty exact result set")
	}
	got := make(map[uint32]struct{}, len(approx))
	for _, r := range approx {
		got[r.ID] = struct{}{}
	}
	missing := 0
	for _, r := range exact {
		if _, ok := got[r.ID]; !ok {
			missing++
		}
	}
	return float64(missing) / float64(len(exact))
}
