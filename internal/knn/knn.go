// Package knn provides the bounded result heap every search algorithm in
// this repository shares, plus the result-set error metric the paper uses
// to evaluate CSSIA (§7.1: missed exact neighbors divided by k).
package knn

import (
	"slices"
)

// Result is one k-NN candidate.
type Result struct {
	ID   uint32
	Dist float64
}

// Heap maintains the k best (smallest-distance) results seen so far as a
// max-heap, so the worst kept result is inspectable in O(1). The sift
// operations are hand-written rather than going through container/heap:
// the interface indirection there boxes every pushed Result onto the
// heap, which would break the zero-allocation guarantee of the pooled
// search scratch that embeds this type. The zero value is empty with
// k=0; call Reset (or construct with NewHeap) before use.
type Heap struct {
	k     int
	items []Result
}

// NewHeap returns a heap retaining the k smallest-distance results.
func NewHeap(k int) *Heap {
	h := &Heap{}
	h.Reset(k)
	return h
}

// Reset empties the heap and sets its capacity to k, retaining the
// backing storage so a pooled heap reaches zero allocations in steady
// state. It panics if k < 1.
func (h *Heap) Reset(k int) {
	if k < 1 {
		panic("knn: k must be >= 1")
	}
	h.k = k
	if cap(h.items) < k {
		h.items = make([]Result, 0, k)
	} else {
		h.items = h.items[:0]
	}
}

// K returns the heap's capacity.
func (h *Heap) K() int { return h.k }

// Len returns the number of results currently held.
func (h *Heap) Len() int { return len(h.items) }

// Full reports whether k results are held.
func (h *Heap) Full() bool { return len(h.items) >= h.k }

// Bound returns the distance of the current k-th nearest neighbor, or
// +Inf semantics via ok=false while fewer than k results are held. The
// paper's U (d(q,o_nn)).
func (h *Heap) Bound() (float64, bool) {
	if !h.Full() {
		return 0, false
	}
	return h.items[0].Dist, true
}

// worse orders candidates by descending quality: larger distance is
// worse, and on exact distance ties the larger ID is worse. Breaking
// ties by ID makes the kept set a pure function of the candidate set —
// independent of arrival order — which is what lets a sharded index
// chain or merge per-partition heaps and still reproduce the flat
// index's results bit-for-bit.
func worse(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// Push offers a candidate. It returns true if the candidate was kept
// (i.e., the heap was not full or the candidate beat the current
// worst, ties broken by ascending ID).
func (h *Heap) Push(r Result) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.siftUp(len(h.items) - 1)
		return true
	}
	if !worse(h.items[0], r) {
		return false
	}
	h.items[0] = r
	h.siftDown(0)
	return true
}

func (h *Heap) siftUp(i int) {
	items := h.items
	for i > 0 {
		p := (i - 1) / 2
		if !worse(items[i], items[p]) {
			break
		}
		items[p], items[i] = items[i], items[p]
		i = p
	}
}

func (h *Heap) siftDown(i int) {
	items := h.items
	n := len(items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		big := l
		if r := l + 1; r < n && worse(items[r], items[l]) {
			big = r
		}
		if !worse(items[big], items[i]) {
			break
		}
		items[i], items[big] = items[big], items[i]
		i = big
	}
}

// Items returns the held results in unspecified order (shared storage;
// do not mutate).
func (h *Heap) Items() []Result { return h.items }

// AppendSorted appends the held results to dst ordered by ascending
// distance (ties by ascending ID) and returns the extended slice. With a
// dst of sufficient capacity it performs no allocation; the heap itself
// is left unchanged.
func (h *Heap) AppendSorted(dst []Result) []Result {
	n := len(dst)
	dst = append(dst, h.items...)
	SortResults(dst[n:])
	return dst
}

// Sorted returns the held results ordered by ascending distance, ties
// broken by ascending ID for determinism.
func (h *Heap) Sorted() []Result {
	return h.AppendSorted(make([]Result, 0, len(h.items)))
}

// SortResults orders results by ascending distance, then ascending ID.
func SortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
}

// ErrorRate returns the paper's CSSIA error metric: the fraction of the
// exact result set missing from the approximate one (|exact \ approx| / k,
// §7.1). It panics if exact is empty.
func ErrorRate(exact, approx []Result) float64 {
	if len(exact) == 0 {
		panic("knn: ErrorRate with empty exact result set")
	}
	got := make(map[uint32]struct{}, len(approx))
	for _, r := range approx {
		got[r.ID] = struct{}{}
	}
	missing := 0
	for _, r := range exact {
		if _, ok := got[r.ID]; !ok {
			missing++
		}
	}
	return float64(missing) / float64(len(exact))
}
