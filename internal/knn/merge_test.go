package knn

import (
	"math/rand/v2"
	"testing"
)

func TestMergeSortedMatchesGlobalSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		nLists := 1 + rng.IntN(8)
		lists := make([][]Result, nLists)
		var all []Result
		id := uint32(0)
		for li := range lists {
			n := rng.IntN(12)
			for j := 0; j < n; j++ {
				// Quantized distances force plenty of cross-list ties.
				r := Result{ID: id, Dist: float64(rng.IntN(6)) / 4}
				id++
				lists[li] = append(lists[li], r)
				all = append(all, r)
			}
			SortResults(lists[li])
		}
		SortResults(all)
		for _, k := range []int{-1, 0, 1, 3, len(all), len(all) + 5} {
			got := MergeSorted(nil, lists, k)
			want := all
			if k >= 0 && k < len(want) {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d results, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d result %d: %+v, want %+v", trial, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMergeSortedAppendsToDst(t *testing.T) {
	lists := [][]Result{
		{{ID: 1, Dist: 0.1}, {ID: 3, Dist: 0.3}},
		{{ID: 2, Dist: 0.2}},
	}
	dst := []Result{{ID: 99, Dist: 9}}
	got := MergeSorted(dst, lists, 2)
	if len(got) != 3 || got[0].ID != 99 || got[1].ID != 1 || got[2].ID != 2 {
		t.Fatalf("append-to-dst merge wrong: %+v", got)
	}
}

func TestMergeSortedTieBreaksByID(t *testing.T) {
	lists := [][]Result{
		{{ID: 7, Dist: 0.5}},
		{{ID: 3, Dist: 0.5}},
		{{ID: 5, Dist: 0.5}},
	}
	got := MergeSorted(nil, lists, -1)
	if got[0].ID != 3 || got[1].ID != 5 || got[2].ID != 7 {
		t.Fatalf("tie-break order wrong: %+v", got)
	}
}

func TestLessAgreesWithSortResults(t *testing.T) {
	rs := []Result{{ID: 2, Dist: 0.5}, {ID: 1, Dist: 0.5}, {ID: 9, Dist: 0.1}}
	SortResults(rs)
	for i := 1; i < len(rs); i++ {
		if Less(rs[i], rs[i-1]) {
			t.Fatalf("SortResults order disagrees with Less at %d: %+v", i, rs)
		}
	}
}
