package knn

// Less reports whether a orders strictly before b under the repository's
// canonical result order: ascending distance, ties broken by ascending
// ID. Every sorted result list (Heap.AppendSorted, SortResults, the
// sharded gather merge) agrees with this comparator.
func Less(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// MergeSorted k-way-merges the given result lists — each already sorted
// by (ascending distance, ascending ID), as produced by Heap.AppendSorted
// — into dst, keeping at most k results (k < 0 keeps everything). The
// output order is the same canonical order, so merging the per-shard
// top-k lists of a scatter/gather search reproduces exactly the sorted
// global top-k, including deterministic ID tie-breaks.
//
// The merge runs over a small binary heap of list cursors, costing
// O(out · log len(lists)) comparisons and allocating only when dst lacks
// capacity; pass dst[:0] of a retained buffer for allocation-free reuse.
func MergeSorted(dst []Result, lists [][]Result, k int) []Result {
	// Cursor heap: cur[i] indexes into lists[order[h]]… represented as a
	// slice of (list, pos) pairs ordered by the head result.
	type cursor struct {
		list int
		pos  int
	}
	heads := make([]cursor, 0, len(lists))
	head := func(c cursor) Result { return lists[c.list][c.pos] }
	less := func(a, b cursor) bool {
		ra, rb := head(a), head(b)
		if ra.Dist != rb.Dist {
			return ra.Dist < rb.Dist
		}
		if ra.ID != rb.ID {
			return ra.ID < rb.ID
		}
		return a.list < b.list // stable for identical (Dist, ID) pairs
	}
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(heads) {
				return
			}
			small := l
			if r := l + 1; r < len(heads) && less(heads[r], heads[l]) {
				small = r
			}
			if !less(heads[small], heads[i]) {
				return
			}
			heads[i], heads[small] = heads[small], heads[i]
			i = small
		}
	}
	for li := range lists {
		if len(lists[li]) > 0 {
			heads = append(heads, cursor{list: li})
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	base := len(dst)
	for len(heads) > 0 {
		if k >= 0 && len(dst)-base >= k {
			break
		}
		c := heads[0]
		dst = append(dst, head(c))
		if c.pos+1 < len(lists[c.list]) {
			heads[0].pos++
		} else {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		siftDown(0)
	}
	return dst
}
