// Package scan implements the linear-scan baseline of the evaluation
// (§7.1): compute d(q,o) for every object and keep the k smallest. In
// high dimensions this is a strong baseline — the paper includes it
// precisely because it often beats index-based methods there.
package scan

import (
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

// Scanner answers k-NN queries by exhaustive scan.
type Scanner struct {
	objects []dataset.Object
	space   *metric.Space
}

// New returns a Scanner over the dataset's objects.
func New(ds *dataset.Dataset, space *metric.Space) *Scanner {
	return &Scanner{objects: ds.Objects, space: space}
}

// Search returns the exact k nearest neighbors of q under
// d = λ·ds + (1−λ)·dt. Stats (if non-nil) receive one visited object and
// one distance pair per object.
func (s *Scanner) Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	h := knn.NewHeap(k)
	for i := range s.objects {
		o := &s.objects[i]
		d := s.space.Distance(st, lambda, q, o)
		h.Push(knn.Result{ID: o.ID, Dist: d})
	}
	return h.Sorted()
}
