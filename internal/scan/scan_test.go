package scan

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

func setup(t *testing.T, size int) (*dataset.Dataset, *metric.Space, *Scanner) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: size, Dim: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpace(ds)
	if err != nil {
		t.Fatal(err)
	}
	return ds, sp, New(ds, sp)
}

func TestSearchMatchesSortedBruteForce(t *testing.T) {
	ds, sp, sc := setup(t, 300)
	q := ds.Objects[17]
	for _, lambda := range []float64{0, 0.3, 0.5, 1} {
		got := sc.Search(&q, 10, lambda, nil)
		// Independent brute force with full sort.
		all := make([]knn.Result, ds.Len())
		for i := range ds.Objects {
			all[i] = knn.Result{ID: ds.Objects[i].ID, Dist: sp.Distance(nil, lambda, &q, &ds.Objects[i])}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Dist != all[j].Dist {
				return all[i].Dist < all[j].Dist
			}
			return all[i].ID < all[j].ID
		})
		for i := 0; i < 10; i++ {
			if got[i].Dist != all[i].Dist {
				t.Fatalf("λ=%v result %d dist %v, want %v", lambda, i, got[i].Dist, all[i].Dist)
			}
		}
	}
}

func TestQueryObjectIsItsOwnNearestNeighbor(t *testing.T) {
	ds, _, sc := setup(t, 200)
	q := ds.Objects[42]
	got := sc.Search(&q, 1, 0.5, nil)
	if got[0].ID != q.ID || got[0].Dist != 0 {
		t.Fatalf("self-query returned %+v", got[0])
	}
}

func TestStatsVisitEverything(t *testing.T) {
	ds, _, sc := setup(t, 150)
	var st metric.Stats
	sc.Search(&ds.Objects[0], 5, 0.5, &st)
	if st.VisitedObjects != int64(ds.Len()) {
		t.Fatalf("visited %d, want %d", st.VisitedObjects, ds.Len())
	}
	if st.DistCalcs() != 2*int64(ds.Len()) {
		t.Fatalf("dist calcs %d, want %d", st.DistCalcs(), 2*ds.Len())
	}
}

func TestKLargerThanDataset(t *testing.T) {
	ds, _, sc := setup(t, 7)
	got := sc.Search(&ds.Objects[0], 50, 0.5, nil)
	if len(got) != 7 {
		t.Fatalf("got %d results, want all 7", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestLambdaExtremes(t *testing.T) {
	ds, sp, sc := setup(t, 200)
	q := ds.Objects[3]
	// λ=1: ranking must depend only on spatial distance.
	got := sc.Search(&q, 5, 1, nil)
	for _, r := range got {
		o := &ds.Objects[r.ID]
		want := sp.SpatialXY(q.X, q.Y, o.X, o.Y)
		if math.Abs(r.Dist-want) > 1e-12 {
			t.Fatalf("λ=1 distance %v, want spatial %v", r.Dist, want)
		}
	}
	// λ=0: ranking must depend only on semantic distance.
	got = sc.Search(&q, 5, 0, nil)
	for _, r := range got {
		o := &ds.Objects[r.ID]
		want := sp.SemanticVec(q.Vec, o.Vec)
		if math.Abs(r.Dist-want) > 1e-12 {
			t.Fatalf("λ=0 distance %v, want semantic %v", r.Dist, want)
		}
	}
}
