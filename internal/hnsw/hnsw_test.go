package hnsw

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/vec"
)

func randVecs(rng *rand.Rand, n, dim int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

func bruteKNN(data [][]float32, q []float32, k int) []uint32 {
	type pair struct {
		id uint32
		d  float64
	}
	ps := make([]pair, len(data))
	for i, v := range data {
		ps[i] = pair{uint32(i), vec.SqDist(q, v)}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].d < ps[j].d })
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].id
	}
	return out
}

func recall(exact []uint32, approx []uint32) float64 {
	got := make(map[uint32]struct{}, len(approx))
	for _, id := range approx {
		got[id] = struct{}{}
	}
	hits := 0
	for _, id := range exact {
		if _, ok := got[id]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

func TestEmptyGraph(t *testing.T) {
	g := New(4, Config{})
	if got := g.Search([]float32{0, 0, 0, 0}, 3, 16); got != nil {
		t.Fatalf("empty graph returned %v", got)
	}
	if g.Len() != 0 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestSingleAndFewPoints(t *testing.T) {
	g := New(2, Config{Seed: 1})
	g.Add([]float32{0, 0})
	got := g.Search([]float32{1, 1}, 5, 16)
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("got %v", got)
	}
	g.Add([]float32{5, 5})
	g.Add([]float32{1, 1})
	got = g.Search([]float32{0.9, 0.9}, 1, 16)
	if got[0].ID != 2 {
		t.Fatalf("nearest = %d, want 2", got[0].ID)
	}
}

func TestRecallOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	data := randVecs(rng, 2000, 16)
	g := New(16, Config{M: 16, EfConstruction: 128, Seed: 3})
	for _, v := range data {
		g.Add(v)
	}
	var total float64
	const queries = 30
	for i := 0; i < queries; i++ {
		q := randVecs(rng, 1, 16)[0]
		exact := bruteKNN(data, q, 10)
		approx := g.Search(q, 10, 64)
		ids := make([]uint32, len(approx))
		for j, r := range approx {
			ids[j] = r.ID
		}
		total += recall(exact, ids)
	}
	if avg := total / queries; avg < 0.9 {
		t.Fatalf("recall@10 = %.3f < 0.9", avg)
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	data := randVecs(rng, 500, 8)
	g := New(8, Config{Seed: 2})
	for _, v := range data {
		g.Add(v)
	}
	misses := 0
	for i := 0; i < 100; i++ {
		got := g.Search(data[i], 1, 32)
		if got[0].Dist > 1e-6 {
			misses++
		}
	}
	if misses > 2 {
		t.Fatalf("%d/100 self-queries missed", misses)
	}
}

func TestResultsSortedAndDistancesCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	data := randVecs(rng, 300, 6)
	g := New(6, Config{Seed: 5})
	for _, v := range data {
		g.Add(v)
	}
	q := randVecs(rng, 1, 6)[0]
	got := g.Search(q, 10, 64)
	prev := -1.0
	for _, r := range got {
		if r.Dist < prev {
			t.Fatal("results not sorted")
		}
		prev = r.Dist
		want := vec.Dist(q, data[r.ID])
		if diff := r.Dist - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("distance mismatch for %d: %v vs %v", r.ID, r.Dist, want)
		}
	}
}

func TestDimMismatchPanics(t *testing.T) {
	g := New(3, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Add([]float32{1, 2})
}

func TestQueryDimMismatchPanics(t *testing.T) {
	g := New(3, Config{})
	g.Add([]float32{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Search([]float32{1}, 1, 8)
}

func TestDeterministicConstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	data := randVecs(rng, 400, 8)
	build := func() *Graph {
		g := New(8, Config{Seed: 42})
		for _, v := range data {
			g.Add(v)
		}
		return g
	}
	a, b := build(), build()
	q := randVecs(rng, 1, 8)[0]
	ra, rb := a.Search(q, 10, 32), b.Search(q, 10, 32)
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatal("identically-seeded graphs answered differently")
		}
	}
}
