// Package hnsw implements Hierarchical Navigable Small World graphs
// (Malkov & Yashunin, TPAMI 2020), the state-of-the-art approximate
// nearest-neighbor index the paper's related work discusses (§2). It is
// included to reproduce the paper's argument for why such single-metric
// indexes are "not applicable in the context of multi-aspect distance
// functions": an HNSW graph embeds one fixed metric, so the λ-weighted
// spatio-semantic distance would need one graph per λ — and even then
// only an L2 approximation of the weighted-sum metric. The hnsw
// experiment in internal/experiments demonstrates the resulting recall
// loss; see DESIGN.md.
//
// The implementation is the standard one: exponentially distributed
// node levels, greedy descent through the upper layers, and beam (ef)
// search with bidirectional M-bounded linking at each layer.
package hnsw

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/knn"
	"repro/internal/vec"
)

// Config controls graph construction.
type Config struct {
	// M is the maximum number of links per node per layer (layer 0
	// allows 2M). Default 16.
	M int
	// EfConstruction is the beam width during insertion. Default 200.
	EfConstruction int
	// Seed drives level assignment.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
}

// Graph is an HNSW index over float32 vectors under Euclidean distance.
type Graph struct {
	cfg      Config
	dim      int
	ml       float64
	rng      *rand.Rand
	points   [][]float32
	levels   []int
	links    [][][]uint32 // links[node][layer] = neighbor ids
	entry    int
	maxLevel int
}

// New returns an empty graph for vectors of the given dimensionality.
func New(dim int, cfg Config) *Graph {
	if dim < 1 {
		panic("hnsw: dim must be >= 1")
	}
	cfg.applyDefaults()
	return &Graph{
		cfg:      cfg,
		dim:      dim,
		ml:       1 / math.Log(float64(cfg.M)),
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0x686e7377)),
		entry:    -1,
		maxLevel: -1,
	}
}

// Len returns the number of indexed vectors.
func (g *Graph) Len() int { return len(g.points) }

// Dim returns the vector dimensionality.
func (g *Graph) Dim() int { return g.dim }

// Add inserts a vector and returns its id (insertion order).
func (g *Graph) Add(v []float32) uint32 {
	if len(v) != g.dim {
		panic(fmt.Sprintf("hnsw: vector dim %d, graph expects %d", len(v), g.dim))
	}
	id := uint32(len(g.points))
	level := g.randomLevel()
	g.points = append(g.points, vec.Clone(v))
	g.levels = append(g.levels, level)
	layers := make([][]uint32, level+1)
	g.links = append(g.links, layers)

	if g.entry < 0 {
		g.entry = int(id)
		g.maxLevel = level
		return id
	}

	// Greedy descent from the top to level+1.
	cur := uint32(g.entry)
	curDist := vec.SqDist(v, g.points[cur])
	for l := g.maxLevel; l > level; l-- {
		cur, curDist = g.greedyStep(v, cur, curDist, l)
	}

	// Beam search + linking on each layer from min(level, maxLevel)
	// down to 0.
	ef := g.cfg.EfConstruction
	entryPoints := []candidate{{id: cur, dist: curDist}}
	for l := min(level, g.maxLevel); l >= 0; l-- {
		found := g.searchLayer(v, entryPoints, ef, l)
		maxLinks := g.cfg.M
		if l == 0 {
			maxLinks = 2 * g.cfg.M
		}
		neighbors := selectClosest(found, g.cfg.M)
		for _, n := range neighbors {
			g.connect(id, n.id, l, maxLinks)
			g.connect(n.id, id, l, maxLinks)
		}
		entryPoints = found
	}
	if level > g.maxLevel {
		g.maxLevel = level
		g.entry = int(id)
	}
	return id
}

func (g *Graph) randomLevel() int {
	return int(-math.Log(1-g.rng.Float64()) * g.ml)
}

// greedyStep walks to the neighbor closest to v on layer l until no
// improvement is possible.
func (g *Graph) greedyStep(v []float32, cur uint32, curDist float64, l int) (uint32, float64) {
	for {
		improved := false
		for _, n := range g.linkList(cur, l) {
			if d := vec.SqDist(v, g.points[n]); d < curDist {
				cur, curDist = n, d
				improved = true
			}
		}
		if !improved {
			return cur, curDist
		}
	}
}

func (g *Graph) linkList(id uint32, l int) []uint32 {
	if l >= len(g.links[id]) {
		return nil
	}
	return g.links[id][l]
}

// connect adds dst to src's layer-l links, trimming to the closest
// maxLinks when the list overflows.
func (g *Graph) connect(src, dst uint32, l, maxLinks int) {
	if src == dst {
		return
	}
	list := g.links[src][l]
	for _, n := range list {
		if n == dst {
			return
		}
	}
	list = append(list, dst)
	if len(list) > maxLinks {
		// Keep the maxLinks closest neighbors.
		base := g.points[src]
		cands := make([]candidate, len(list))
		for i, n := range list {
			cands[i] = candidate{id: n, dist: vec.SqDist(base, g.points[n])}
		}
		kept := selectClosest(cands, maxLinks)
		list = list[:0]
		for _, c := range kept {
			list = append(list, c.id)
		}
	}
	g.links[src][l] = list
}

// candidate is a (node, squared distance) pair.
type candidate struct {
	id   uint32
	dist float64
}

// minQueue pops the closest candidate first.
type minQueue []candidate

func (q minQueue) Len() int            { return len(q) }
func (q minQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q minQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *minQueue) Push(x interface{}) { *q = append(*q, x.(candidate)) }
func (q *minQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// maxQueue pops the farthest candidate first (the beam's working set).
type maxQueue []candidate

func (q maxQueue) Len() int            { return len(q) }
func (q maxQueue) Less(i, j int) bool  { return q[i].dist > q[j].dist }
func (q maxQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *maxQueue) Push(x interface{}) { *q = append(*q, x.(candidate)) }
func (q *maxQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// searchLayer is the ef-bounded best-first search on one layer.
func (g *Graph) searchLayer(v []float32, entry []candidate, ef, l int) []candidate {
	visited := map[uint32]struct{}{}
	var cands minQueue
	var result maxQueue
	for _, e := range entry {
		if _, dup := visited[e.id]; dup {
			continue
		}
		visited[e.id] = struct{}{}
		heap.Push(&cands, e)
		heap.Push(&result, e)
	}
	for len(result) > ef {
		heap.Pop(&result)
	}
	for cands.Len() > 0 {
		c := heap.Pop(&cands).(candidate)
		if len(result) >= ef && c.dist > result[0].dist {
			break
		}
		for _, n := range g.linkList(c.id, l) {
			if _, dup := visited[n]; dup {
				continue
			}
			visited[n] = struct{}{}
			d := vec.SqDist(v, g.points[n])
			if len(result) < ef || d < result[0].dist {
				heap.Push(&cands, candidate{id: n, dist: d})
				heap.Push(&result, candidate{id: n, dist: d})
				if len(result) > ef {
					heap.Pop(&result)
				}
			}
		}
	}
	return result
}

// selectClosest returns the m closest candidates (simple selection, a
// standard HNSW variant).
func selectClosest(cands []candidate, m int) []candidate {
	out := make([]candidate, len(cands))
	copy(out, cands)
	// Partial selection sort: m is small.
	if m > len(out) {
		m = len(out)
	}
	for i := 0; i < m; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].dist < out[best].dist {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out[:m]
}

// Search returns the approximate k nearest neighbors of q with beam
// width ef (ef is clamped to at least k). Distances in the results are
// Euclidean (not squared).
func (g *Graph) Search(q []float32, k, ef int) []knn.Result {
	if g.entry < 0 {
		return nil
	}
	if len(q) != g.dim {
		panic(fmt.Sprintf("hnsw: query dim %d, graph expects %d", len(q), g.dim))
	}
	if ef < k {
		ef = k
	}
	cur := uint32(g.entry)
	curDist := vec.SqDist(q, g.points[cur])
	for l := g.maxLevel; l >= 1; l-- {
		cur, curDist = g.greedyStep(q, cur, curDist, l)
	}
	found := g.searchLayer(q, []candidate{{id: cur, dist: curDist}}, ef, 0)
	top := selectClosest(found, k)
	out := make([]knn.Result, len(top))
	for i, c := range top {
		out[i] = knn.Result{ID: c.id, Dist: math.Sqrt(c.dist)}
	}
	knn.SortResults(out)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
