package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// Admission control: every query endpoint can sit behind a bounded
// gate — at most maxInFlight requests execute concurrently, at most
// maxQueue more wait (each for at most maxWait) for a slot, and
// everything beyond that is shed immediately with 429 Too Many
// Requests and a Retry-After header. Shedding the excess keeps the
// latency of the admitted requests bounded under overload: with the
// gate sized to the machine (inflight ≈ GOMAXPROCS) a non-shed
// request waits behind at most maxQueue/maxInFlight service times,
// instead of the unbounded goroutine pileup an open server degrades
// into past saturation. Disabled by default; cssiserve enables it via
// -max-inflight/-max-queue/-queue-wait.

// admissionConfig is the server-wide gate sizing SetAdmissionLimits
// records; Handler stamps one gate per query endpoint from it.
type admissionConfig struct {
	maxInFlight int
	maxQueue    int
	maxWait     time.Duration
}

// defaultQueueWait bounds how long a queued request waits for an
// execution slot when SetAdmissionLimits is called with maxWait <= 0.
const defaultQueueWait = 100 * time.Millisecond

// SetAdmissionLimits enables per-endpoint admission control on every
// query endpoint (/search, /search/batch, /keyword-search, /range,
// /box, /debug/explain): at most maxInFlight requests of one endpoint
// execute concurrently (<= 0 selects GOMAXPROCS), at most maxQueue
// more queue for a slot (0 queues nothing: saturated means shed), and
// a queued request waits at most maxWait (<= 0 selects 100ms) before
// it is shed. Shed requests receive 429 with the standard error
// envelope and a Retry-After header. maxQueue < 0 is rejected. Call
// before Handler.
func (s *Server) SetAdmissionLimits(maxInFlight, maxQueue int, maxWait time.Duration) error {
	if maxQueue < 0 {
		return fmt.Errorf("admission: maxQueue must be >= 0, got %d", maxQueue)
	}
	if maxInFlight <= 0 {
		maxInFlight = runtime.GOMAXPROCS(0)
	}
	if maxWait <= 0 {
		maxWait = defaultQueueWait
	}
	s.admit = &admissionConfig{maxInFlight: maxInFlight, maxQueue: maxQueue, maxWait: maxWait}
	return nil
}

// EnableResultCache installs the snapshot-keyed result cache on the
// served index (capacity <= 0 selects the library default). Cached
// answers are bit-identical to uncached searches — entries are keyed
// to the exact snapshot vector they were computed from and a write,
// compaction, or rebuild on any shard invalidates wholesale — so this
// changes tail latency, never results. /metrics grows a result-cache
// block when enabled. Call before Handler.
func (s *Server) EnableResultCache(capacity int) {
	s.idx.EnableResultCache(capacity)
}

// SetDefaultDeadline gives every query request that does not carry its
// own deadlineMs this time budget (0 disables, the default). A request
// that exhausts its budget returns the exact top-k of the candidates
// examined so far with meta.partial=true rather than queue-amplifying
// the overload. Call before Handler.
func (s *Server) SetDefaultDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.defaultDeadline = d
}

// admissionGate is one endpoint's bounded-concurrency gate.
type admissionGate struct {
	name     string
	inflight chan struct{} // capacity maxInFlight; holding a slot = executing
	queued   atomic.Int64  // requests currently waiting for a slot
	maxQueue int64
	maxWait  time.Duration
	shed     atomic.Int64 // requests rejected with 429
}

func newGate(name string, cfg *admissionConfig) *admissionGate {
	return &admissionGate{
		name:     name,
		inflight: make(chan struct{}, cfg.maxInFlight),
		maxQueue: int64(cfg.maxQueue),
		maxWait:  cfg.maxWait,
	}
}

// admit tries to claim an execution slot, queuing for at most maxWait
// when the endpoint is saturated. It returns the release func and the
// time spent queued, or ok=false when the request must be shed (queue
// full, wait exhausted, or client gone).
func (g *admissionGate) admit(r *http.Request) (release func(), wait time.Duration, ok bool) {
	release = func() { <-g.inflight }
	select {
	case g.inflight <- struct{}{}:
		return release, 0, true
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Add(1)
		return nil, 0, false
	}
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	start := time.Now()
	select {
	case g.inflight <- struct{}{}:
		return release, time.Since(start), true
	case <-timer.C:
		g.shed.Add(1)
		return nil, 0, false
	case <-r.Context().Done():
		// The client gave up while queued; count it with the shed — the
		// gate turned the request away without executing it.
		g.shed.Add(1)
		return nil, 0, false
	}
}

// gateStat is one gate's point-in-time counters for /metrics.
type gateStat struct {
	endpoint string
	inflight int
	queued   int64
	shed     int64
}

func (g *admissionGate) stat() gateStat {
	return gateStat{endpoint: g.name, inflight: len(g.inflight), queued: g.queued.Load(), shed: g.shed.Load()}
}

// ctxKeyQueueWait keys the admission gate's queue wait in the request
// context so handlers can surface it in the response meta block.
type ctxKeyQueueWait struct{}

// queueWaitFrom extracts the time the request spent queued at the
// admission gate, 0 when it was admitted immediately or no gate is
// configured.
func queueWaitFrom(ctx context.Context) time.Duration {
	d, _ := ctx.Value(ctxKeyQueueWait{}).(time.Duration)
	return d
}

// admitted wraps a query handler with gate: shed requests are answered
// 429 + Retry-After without ever reaching h, admitted ones carry their
// queue wait in the context.
func (s *Server) admitted(g *admissionGate, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, wait, ok := g.admit(r)
		if !ok {
			// Retry-After is load shedding's contract with well-behaved
			// clients: back off at least this long before retrying.
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusTooManyRequests,
				g.name+" is over capacity; request shed by admission control")
			return
		}
		defer release()
		if wait > 0 {
			r = r.WithContext(context.WithValue(r.Context(), ctxKeyQueueWait{}, wait))
		}
		h(w, r)
	}
}
