package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// newRouteTestServer builds a server over an index large enough that
// Build trains the cluster router.
func newRouteTestServer(t *testing.T, route bool, target float64) (*httptest.Server, *cssi.Dataset) {
	t.Helper()
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: cssi.TwitterLike, Size: 1200, Dim: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cssi.Build(ds, cssi.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.RouterTrained() {
		t.Fatal("fixture index did not train a router")
	}
	api := New(idx, ds.Model)
	api.SetRouteDefaults(route, target)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts, ds
}

// TestSearchRouteField pins the request-level routing contract: a
// routed exact search returns a byte-identical body to the unrouted
// one, and the routed approximate mode honors routeTarget.
func TestSearchRouteField(t *testing.T) {
	ts, ds := newRouteTestServer(t, false, 0)
	q := ds.Objects[11]
	base := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 10, "lambda": 0.5}
	unroutedStatus, unroutedBody := rawPost(t, ts.URL+"/v1/search", base)
	if unroutedStatus != http.StatusOK {
		t.Fatalf("unrouted: %d %s", unroutedStatus, unroutedBody)
	}
	routed := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 10, "lambda": 0.5, "route": true}
	routedStatus, routedBody := rawPost(t, ts.URL+"/v1/search", routed)
	if routedStatus != http.StatusOK {
		t.Fatalf("routed: %d %s", routedStatus, routedBody)
	}
	if !bytes.Equal(stripRequestID(t, unroutedBody), stripRequestID(t, routedBody)) {
		t.Fatalf("routed exact body differs from unrouted:\n%s\nvs\n%s", routedBody, unroutedBody)
	}
	approx := map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 10, "lambda": 0.5,
		"approx": true, "route": true, "routeTarget": 0.9,
	}
	status, body := rawPost(t, ts.URL+"/v1/search", approx)
	if status != http.StatusOK {
		t.Fatalf("routed approx: %d %s", status, body)
	}
	if n := bytes.Count(body, []byte(`"id"`)); n != 10 {
		t.Fatalf("routed approx returned %d results, want 10:\n%s", n, body)
	}
}

// TestRouteServerDefaults pins SetRouteDefaults: with the server-wide
// default on, requests that omit the route field are routed (visible in
// the clusters-routed metric), while an explicit "route": false opts a
// request out.
func TestRouteServerDefaults(t *testing.T) {
	ts, ds := newRouteTestServer(t, true, 0)
	q := ds.Objects[3]
	base := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5}
	for i := 0; i < 3; i++ {
		if status, body := rawPost(t, ts.URL+"/v1/search", base); status != http.StatusOK {
			t.Fatalf("defaulted search: %d %s", status, body)
		}
	}
	if got := metricValue(t, scrapeMetrics(t, ts.URL), "cssi_search_clusters_routed_ratio_count"); got != 3 {
		t.Fatalf("clusters-routed count after 3 defaulted searches = %g, want 3", got)
	}
	optOut := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5, "route": false}
	if status, body := rawPost(t, ts.URL+"/v1/search", optOut); status != http.StatusOK {
		t.Fatalf("opt-out search: %d %s", status, body)
	}
	if got := metricValue(t, scrapeMetrics(t, ts.URL), "cssi_search_clusters_routed_ratio_count"); got != 3 {
		t.Fatalf(`clusters-routed count after "route": false = %g, want still 3`, got)
	}
}

// TestRouteMetricSilentWhenUnrouted asserts the routed-ratio histogram
// is exported (at zero) but never observed on a server that does not
// route.
func TestRouteMetricSilentWhenUnrouted(t *testing.T) {
	ts, ds := newRouteTestServer(t, false, 0)
	q := ds.Objects[8]
	base := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5}
	for i := 0; i < 2; i++ {
		if status, body := rawPost(t, ts.URL+"/v1/search", base); status != http.StatusOK {
			t.Fatalf("search: %d %s", status, body)
		}
	}
	if got := metricValue(t, scrapeMetrics(t, ts.URL), "cssi_search_clusters_routed_ratio_count"); got != 0 {
		t.Fatalf("clusters-routed count on an unrouted server = %g, want 0", got)
	}
}

// TestSearchNonFiniteRejected pins the HTTP surface of the validation
// satellite: non-finite numerics cannot reach the engine. JSON has no
// NaN/Inf literals, so they arrive as out-of-range numbers — the decode
// layer must turn them into a 400, not a 500 or silent garbage.
func TestSearchNonFiniteRejected(t *testing.T) {
	ts, ds := newRouteTestServer(t, false, 0)
	q := ds.Objects[0]
	vec := `[`
	for i := range q.Vec {
		if i > 0 {
			vec += ","
		}
		vec += "0.1"
	}
	vec += `]`
	cases := []struct {
		name string
		body string
	}{
		{"lambda overflow", `{"x":0.5,"y":0.5,"vec":` + vec + `,"k":5,"lambda":1e999}`},
		{"coordinate overflow", `{"x":1e999,"y":0.5,"vec":` + vec + `,"k":5,"lambda":0.5}`},
		{"vec component overflow", `{"x":0.5,"y":0.5,"vec":[1e39` + strings.Repeat(",0.1", len(q.Vec)-1) + `],"k":5,"lambda":0.5}`},
		{"routeTarget overflow", `{"x":0.5,"y":0.5,"vec":` + vec + `,"k":5,"lambda":0.5,"approx":true,"route":true,"routeTarget":1e999}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (body %s)", c.name, resp.StatusCode, b)
		}
		if !bytes.Contains(b, []byte(`"bad_request"`)) {
			t.Fatalf("%s: body lacks the bad_request envelope:\n%s", c.name, b)
		}
	}
}
