package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

// rawPost posts a JSON body and returns (status, body bytes).
func rawPost(t *testing.T, url string, body interface{}) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// stripRequestID blanks the meta block's per-request requestId so two
// responses to identical queries compare byte-identical (every request
// gets a fresh ID; everything else in the body must match exactly).
func stripRequestID(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("response is not a JSON object: %v\n%s", err, body)
	}
	raw, ok := m["meta"]
	if !ok {
		return body
	}
	var meta map[string]interface{}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatalf("meta is not a JSON object: %v\n%s", err, body)
	}
	if _, ok := meta["requestId"]; !ok {
		t.Fatalf("meta block has no requestId:\n%s", body)
	}
	meta["requestId"] = ""
	normalized, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	m["meta"] = normalized
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestV1RoutesMatchLegacy asserts every /v1 route returns a
// byte-identical success body to its legacy unversioned alias (modulo
// the per-request meta.requestId, blanked before comparing).
func TestV1RoutesMatchLegacy(t *testing.T) {
	ts, ds := newTestServer(t)
	q := ds.Objects[5]
	cases := []struct {
		path string
		body interface{}
	}{
		{"/search", map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5}},
		{"/search/batch", map[string]interface{}{
			"queries": []map[string]interface{}{{"x": q.X, "y": q.Y, "vec": q.Vec}},
			"k":       3, "lambda": 0.5,
		}},
		{"/range", map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "radius": 0.2, "lambda": 0.5}},
		{"/box", map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "loX": 0, "loY": 0, "hiX": 1, "hiY": 1}},
	}
	for _, c := range cases {
		legacyStatus, legacyBody := rawPost(t, ts.URL+c.path, c.body)
		v1Status, v1Body := rawPost(t, ts.URL+"/v1"+c.path, c.body)
		if legacyStatus != http.StatusOK || v1Status != http.StatusOK {
			t.Fatalf("%s: status legacy=%d v1=%d", c.path, legacyStatus, v1Status)
		}
		if !bytes.Equal(stripRequestID(t, legacyBody), stripRequestID(t, v1Body)) {
			t.Fatalf("%s: body differs between legacy and /v1:\n%s\nvs\n%s", c.path, legacyBody, v1Body)
		}
	}
	for _, path := range []string{"/healthz", "/stats"} {
		for _, p := range []string{path, "/v1" + path} {
			resp, err := http.Get(ts.URL + p)
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %v %v", p, err, resp.Status)
			}
			resp.Body.Close()
		}
	}
}

// errorEnvelope mirrors the documented error body shape.
type errorEnvelope struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"request_id"`
	} `json:"error"`
}

// TestErrorEnvelope asserts every non-2xx response — handler errors,
// unknown routes, and method mismatches alike — carries the one JSON
// error envelope with a code, a message, and the request ID.
func TestErrorEnvelope(t *testing.T) {
	ts, ds := newTestServer(t)
	q := ds.Objects[0]
	check := func(name string, status, wantStatus int, wantCode string, body []byte) {
		t.Helper()
		if status != wantStatus {
			t.Fatalf("%s: status %d, want %d (body %s)", name, status, wantStatus, body)
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("%s: body is not the error envelope: %v\n%s", name, err, body)
		}
		if env.Error.Code != wantCode {
			t.Fatalf("%s: code %q, want %q", name, env.Error.Code, wantCode)
		}
		if env.Error.Message == "" {
			t.Fatalf("%s: empty error message", name)
		}
		if env.Error.RequestID == "" {
			t.Fatalf("%s: empty request_id", name)
		}
	}

	// Handler-raised 400: bad lambda.
	status, body := rawPost(t, ts.URL+"/v1/search",
		map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 7.0})
	check("bad lambda", status, http.StatusBadRequest, "bad_request", body)

	// Router-raised 404: unknown route.
	status, body = rawPost(t, ts.URL+"/v1/nope", map[string]interface{}{})
	check("unknown route", status, http.StatusNotFound, "not_found", body)

	// Router-raised 405: wrong method on a known route.
	resp, err := http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	check("method mismatch", resp.StatusCode, http.StatusMethodNotAllowed, "method_not_allowed", b)

	// Handler-raised 404: deleting an unknown object.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/objects?id=999999999", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	check("delete unknown", resp.StatusCode, http.StatusNotFound, "not_found", b)

	// The inbound X-Request-Id must round-trip into the envelope.
	buf, _ := json.Marshal(map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 7.0})
	req, err = http.NewRequest(http.MethodPost, ts.URL+"/v1/search", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "env-test-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var env errorEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.RequestID != "env-test-1" {
		t.Fatalf("request_id %q, want env-test-1", env.Error.RequestID)
	}
}

// TestClustersOrderedMetric asserts the ordering-phase histogram shows
// up in /metrics and accumulates observations after searches.
func TestClustersOrderedMetric(t *testing.T) {
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: cssi.TwitterLike, Size: 500, Dim: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cssi.Build(ds, cssi.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx, ds.Model).Handler())
	t.Cleanup(ts.Close)

	q := ds.Objects[2]
	for i := 0; i < 3; i++ {
		status, body := rawPost(t, ts.URL+"/v1/search",
			map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5})
		if status != http.StatusOK {
			t.Fatalf("search: %d %s", status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	if !bytes.Contains(b, []byte("cssi_search_clusters_ordered_ratio_count 3")) {
		t.Fatalf("clusters-ordered histogram missing or not at 3 observations:\n%s", grepMetric(text, "cssi_search_clusters_ordered_ratio"))
	}
}

// TestRerankRatioMetric asserts the SQ8 rerank-ratio histogram shows up
// in /metrics once quantized-filtered searches ran, and stays silent on
// a quant-free index (observed only when the filter did work).
func TestRerankRatioMetric(t *testing.T) {
	run := func(t *testing.T, opts cssi.Options, wantCount string) string {
		ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: cssi.TwitterLike, Size: 600, Dim: 16, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := cssi.Build(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(idx, ds.Model).Handler())
		t.Cleanup(ts.Close)

		q := ds.Objects[4]
		for i := 0; i < 4; i++ {
			status, body := rawPost(t, ts.URL+"/v1/search",
				map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5})
			if status != http.StatusOK {
				t.Fatalf("search: %d %s", status, body)
			}
		}
		resp, err := http.Get(ts.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(b)
		if !bytes.Contains(b, []byte("cssi_search_rerank_ratio_count "+wantCount)) {
			t.Fatalf("rerank-ratio histogram count != %s:\n%s", wantCount, grepMetric(text, "cssi_search_rerank_ratio"))
		}
		return text
	}
	run(t, cssi.Options{Seed: 7}, "4")
	run(t, cssi.Options{Seed: 7, DisableQuant: true}, "0")
}

// grepMetric extracts the lines of one metric family for error output.
func grepMetric(text, name string) string {
	var out []byte
	for _, line := range bytes.Split([]byte(text), []byte("\n")) {
		if bytes.Contains(line, []byte(name)) {
			out = append(out, line...)
			out = append(out, '\n')
		}
	}
	return string(out)
}
