package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestFormatBound pins the bucket-bound rendering: bounds below 1e-5
// must keep their value (the old %.5f formatting truncated them to
// "0") and every bound must round-trip through ParseFloat.
func TestFormatBound(t *testing.T) {
	cases := map[float64]string{
		1e-06:   "1e-06",
		2.5e-05: "2.5e-05",
		0.0001:  "0.0001",
		0.00025: "0.00025",
		0.25:    "0.25",
		1:       "1",
		2.5:     "2.5",
		60:      "60",
	}
	for in, want := range cases {
		got := formatBound(in)
		if got != want {
			t.Errorf("formatBound(%v) = %q, want %q", in, got, want)
		}
		back, err := strconv.ParseFloat(got, 64)
		if err != nil || back != in {
			t.Errorf("formatBound(%v) = %q does not round-trip (%v, %v)", in, got, back, err)
		}
	}
}

// parseExposition decodes every sample line of a Prometheus text
// exposition into series -> value, failing the test on any line that
// is neither a comment nor a well-formed sample.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if _, dup := out[series]; dup {
			t.Fatalf("duplicate series %q", series)
		}
		out[series] = v
	}
	return out
}

// checkHistogram asserts the cumulative bucket invariants of one
// exposed histogram: monotone non-decreasing buckets, +Inf equal to
// _count, and a parseable le label on every bucket.
func checkHistogram(t *testing.T, text, name string) {
	t.Helper()
	series := parseExposition(t, text)
	count, ok := series[name+"_count"]
	if !ok {
		t.Fatalf("histogram %s has no _count", name)
	}
	if _, ok := series[name+"_sum"]; !ok {
		t.Fatalf("histogram %s has no _sum", name)
	}
	prev := -1.0
	prevBound := -1.0
	buckets := 0
	sawInf := false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+"_bucket{le=\"") {
			continue
		}
		buckets++
		rest := line[len(name)+12:]
		end := strings.IndexByte(rest, '"')
		leStr := rest[:end]
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err != nil {
			t.Fatalf("bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("%s not cumulative at le=%q: %v < %v", name, leStr, v, prev)
		}
		prev = v
		if leStr == "+Inf" {
			sawInf = true
			if v != count {
				t.Fatalf("%s +Inf bucket %v != count %v", name, v, count)
			}
			continue
		}
		bound, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("unparseable le %q in %s", leStr, name)
		}
		if bound <= prevBound {
			t.Fatalf("%s bounds not increasing at %v", name, bound)
		}
		if bound == 0 {
			t.Fatalf("%s has a zero bound (formatBound truncation?)", name)
		}
		prevBound = bound
	}
	if buckets == 0 || !sawInf {
		t.Fatalf("histogram %s: %d buckets, +Inf=%v", name, buckets, sawInf)
	}
}

// Every exported series must parse, every histogram must be present
// (even before any observation) and internally consistent, and the new
// gauge/info series must carry sane values.
func TestMetricsScrapeAndParse(t *testing.T) {
	ts, ds, _ := newShardedTestServer(t)

	// Traffic so each histogram class has observations: a search (query
	// latency + read efficiency), an insert + delete (mutation latency),
	// and a waited rebuild (rebuild duration).
	q := ds.Objects[7]
	if resp, _ := postJSON(t, ts.URL+"/search", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/objects", map[string]interface{}{
		"id": 970001, "x": q.X, "y": q.Y, "vec": q.Vec,
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/objects?id=970001", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v", err)
	}
	if resp, err := http.Post(ts.URL+"/rebuild?wait=1", "application/json", nil); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild: %v %v", err, resp.Status)
	}

	text := scrapeMetrics(t, ts.URL)
	series := parseExposition(t, text)

	for _, h := range []string{
		"cssi_search_latency_seconds",
		"cssi_mutation_latency_seconds",
		"cssi_rebuild_duration_seconds",
		"cssi_search_read_efficiency",
		"cssi_search_clusters_pruned_ratio",
	} {
		checkHistogram(t, text, h)
	}
	if series["cssi_mutation_latency_seconds_count"] < 2 {
		t.Fatalf("mutation latency count %v, want >= 2", series["cssi_mutation_latency_seconds_count"])
	}
	if series["cssi_rebuild_duration_seconds_count"] < 1 {
		t.Fatalf("rebuild duration count %v", series["cssi_rebuild_duration_seconds_count"])
	}
	if series["cssi_search_read_efficiency_count"] < 1 {
		t.Fatalf("read efficiency count %v", series["cssi_search_read_efficiency_count"])
	}

	// Publications: every shard published at least twice (build +
	// rebuild), the written shard a third time.
	pubs := 0.0
	for i := 0; i < 4; i++ {
		p := series[fmt.Sprintf(`cssi_shard_snapshot_publications_total{shard="%d"}`, i)]
		if p < 2 {
			t.Fatalf("shard %d publications %v, want >= 2", i, p)
		}
		pubs += p
	}
	if pubs < 10 { // 4 builds + 4 rebuilds + insert + delete
		t.Fatalf("publications sum %v, want >= 10", pubs)
	}

	if series["cssi_go_goroutines"] < 1 {
		t.Fatalf("goroutines %v", series["cssi_go_goroutines"])
	}
	if series["cssi_go_heap_objects_bytes"] <= 0 {
		t.Fatalf("heap bytes %v", series["cssi_go_heap_objects_bytes"])
	}
	if series["cssi_process_uptime_seconds"] < 0 {
		t.Fatalf("uptime %v", series["cssi_process_uptime_seconds"])
	}
	found := false
	for s, v := range series {
		if strings.HasPrefix(s, "cssi_build_info{") {
			found = true
			if v != 1 {
				t.Fatalf("build info value %v", v)
			}
			if !strings.Contains(s, `goversion="go`) {
				t.Fatalf("build info labels %q", s)
			}
		}
	}
	if !found {
		t.Fatal("cssi_build_info missing")
	}

	// The metrics endpoint instruments itself: a second scrape sees the
	// first one counted.
	text = scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, `cssi_http_requests_total{endpoint="metrics"}`); got < 1 {
		t.Fatalf("metrics endpoint requests %v", got)
	}
}

// An empty registry must still emit every histogram series (scrapers
// and recording rules need the metric to exist from the first scrape).
func TestMetricsEmittedWhenEmpty(t *testing.T) {
	ts, _, _ := newShardedTestServer(t)
	text := scrapeMetrics(t, ts.URL)
	series := parseExposition(t, text)
	for _, name := range []string{
		"cssi_search_latency_seconds_count",
		"cssi_mutation_latency_seconds_count",
		"cssi_rebuild_duration_seconds_count",
		"cssi_search_read_efficiency_count",
		"cssi_search_clusters_pruned_ratio_count",
	} {
		if v, ok := series[name]; !ok || v != 0 {
			t.Fatalf("%s = %v, %v; want present and 0", name, v, ok)
		}
	}
}

// POST /debug/explain must return the same k-NN answer as /search plus
// a per-shard trace tied to the request ID.
func TestExplainEndpoint(t *testing.T) {
	ts, ds, flat := newShardedTestServer(t)
	q := ds.Objects[11]
	body := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5}

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/debug/explain", &buf)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "trace-me-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-1" {
		t.Fatalf("response request id %q", got)
	}

	var out struct {
		Results []struct {
			ID   uint32  `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"results"`
		Trace struct {
			RequestID string  `json:"requestId"`
			Algo      string  `json:"algo"`
			K         int     `json:"k"`
			Lambda    float64 `json:"lambda"`
			Shards    []struct {
				Shard   int `json:"shard"`
				Objects int `json:"objects"`
				Stats   struct {
					VisitedObjects int64 `json:"visitedObjects"`
					InterPruned    int64 `json:"interPruned"`
					IntraPruned    int64 `json:"intraPruned"`
				} `json:"stats"`
				ReadEfficiency float64 `json:"readEfficiency"`
				DurationNanos  int64   `json:"durationNanos"`
			} `json:"shards"`
			Total struct {
				VisitedObjects int64   `json:"visitedObjects"`
				KthDistance    float64 `json:"kthDistance"`
			} `json:"total"`
			ReadEfficiency float64 `json:"readEfficiency"`
			DurationNanos  int64   `json:"durationNanos"`
		} `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}

	want := flat.Search(&q, 5, 0.5)
	if len(out.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(out.Results), len(want))
	}
	for i := range want {
		if out.Results[i].ID != want[i].ID || out.Results[i].Dist != want[i].Dist {
			t.Fatalf("result %d = %+v, want %+v", i, out.Results[i], want[i])
		}
	}
	tr := &out.Trace
	if tr.RequestID != "trace-me-1" || tr.Algo != "cssi" || tr.K != 5 || tr.Lambda != 0.5 {
		t.Fatalf("trace header %+v", tr)
	}
	if len(tr.Shards) != 4 {
		t.Fatalf("%d spans, want 4", len(tr.Shards))
	}
	objects := 0
	visited := int64(0)
	for i, sp := range tr.Shards {
		if sp.Shard != i || sp.DurationNanos < 0 {
			t.Fatalf("span %d: %+v", i, sp)
		}
		objects += sp.Objects
		visited += sp.Stats.VisitedObjects
	}
	if objects != 600 {
		t.Fatalf("span objects sum %d, want 600", objects)
	}
	if visited != tr.Total.VisitedObjects {
		t.Fatalf("span visited sum %d != total %d", visited, tr.Total.VisitedObjects)
	}
	if len(want) > 0 && tr.Total.KthDistance != want[len(want)-1].Dist {
		t.Fatalf("kth %v, want %v", tr.Total.KthDistance, want[len(want)-1].Dist)
	}
	if tr.ReadEfficiency < 0 || tr.ReadEfficiency > 1 {
		t.Fatalf("read efficiency %v", tr.ReadEfficiency)
	}
	if tr.DurationNanos <= 0 {
		t.Fatalf("trace duration %d", tr.DurationNanos)
	}
}

// Requests without an inbound X-Request-Id get a generated one, echoed
// on the response.
func TestRequestIDGenerated(t *testing.T) {
	ts, _, _ := newShardedTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("no generated X-Request-Id on response")
	}
}
