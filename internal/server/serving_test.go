package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// newServingTestServer builds a server with the serving features on:
// result cache, a default deadline, and tight admission limits the
// tests can saturate deterministically.
func newServingTestServer(t *testing.T, cfg func(*Server)) (*httptest.Server, *cssi.Dataset) {
	t.Helper()
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: cssi.TwitterLike, Size: 600, Dim: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cssi.Build(ds, cssi.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	api := New(idx, ds.Model)
	if cfg != nil {
		cfg(api)
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts, ds
}

// metaOf decodes the meta block out of a response body.
func metaOf(t *testing.T, body []byte) map[string]interface{} {
	t.Helper()
	var m struct {
		Meta map[string]interface{} `json:"meta"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad body: %v\n%s", err, body)
	}
	if m.Meta == nil {
		t.Fatalf("no meta block:\n%s", body)
	}
	return m.Meta
}

// TestResponseMetaBlock pins the uniform meta block: every query
// endpoint returns requestId/partial/cacheHit, a cache-enabled server
// reports cacheHit=true on the second identical request, and the
// cached body is bit-identical to the computed one.
func TestResponseMetaBlock(t *testing.T) {
	ts, ds := newServingTestServer(t, func(s *Server) { s.EnableResultCache(256) })
	q := ds.Objects[4]
	body := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5}

	status, first := rawPost(t, ts.URL+"/v1/search", body)
	if status != http.StatusOK {
		t.Fatalf("search: %d %s", status, first)
	}
	meta := metaOf(t, first)
	if meta["requestId"] == "" {
		t.Fatal("empty meta.requestId")
	}
	if meta["cacheHit"] != false || meta["partial"] != false {
		t.Fatalf("first search meta: %+v", meta)
	}

	status, second := rawPost(t, ts.URL+"/v1/search", body)
	if status != http.StatusOK {
		t.Fatalf("search: %d %s", status, second)
	}
	if meta := metaOf(t, second); meta["cacheHit"] != true {
		t.Fatalf("second identical search did not hit the cache: %+v", meta)
	}
	// The answer itself must be bit-identical; visited legitimately drops
	// to 0 on a hit (no search work ran), so compare the results array.
	resultsOf := func(body []byte) json.RawMessage {
		var m struct {
			Results json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("bad body: %v\n%s", err, body)
		}
		return m.Results
	}
	if !bytes.Equal(resultsOf(first), resultsOf(second)) {
		t.Fatalf("cached results differ from computed:\n%s\nvs\n%s", first, second)
	}

	// cache:"off" bypasses — and still answers identically.
	off := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5, "cache": "off"}
	status, third := rawPost(t, ts.URL+"/v1/search", off)
	if status != http.StatusOK {
		t.Fatalf("cache-off search: %d %s", status, third)
	}
	if meta := metaOf(t, third); meta["cacheHit"] != false {
		t.Fatalf("cache:off request reported a hit: %+v", meta)
	}

	// The other query endpoints carry the block too.
	endpoints := []struct {
		path string
		req  map[string]interface{}
	}{
		{"/v1/search/batch", map[string]interface{}{
			"queries": []map[string]interface{}{{"x": q.X, "y": q.Y, "vec": q.Vec}}, "k": 3, "lambda": 0.5}},
		{"/v1/range", map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "radius": 0.2, "lambda": 0.5}},
		{"/v1/box", map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "loX": 0, "loY": 0, "hiX": 1, "hiY": 1}},
		{"/v1/debug/explain", map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5}},
	}
	for _, ep := range endpoints {
		status, b := rawPost(t, ts.URL+ep.path, ep.req)
		if status != http.StatusOK {
			t.Fatalf("%s: %d %s", ep.path, status, b)
		}
		if meta := metaOf(t, b); meta["requestId"] == "" {
			t.Fatalf("%s: empty meta.requestId", ep.path)
		}
	}

	// An invalid cache mode is a 400 in the envelope.
	bad := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5, "cache": "sideways"}
	if status, b := rawPost(t, ts.URL+"/v1/search", bad); status != http.StatusBadRequest {
		t.Fatalf("bogus cache mode: %d %s", status, b)
	}
}

// TestDeadlineMsField pins the request-level budget: a generous
// deadline answers completely, a negative one is a 400, and the
// default-deadline server setting fills requests that omit it.
func TestDeadlineMsField(t *testing.T) {
	ts, ds := newServingTestServer(t, func(s *Server) { s.SetDefaultDeadline(5 * time.Second) })
	q := ds.Objects[8]
	ok := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5, "deadlineMs": 30000}
	status, b := rawPost(t, ts.URL+"/v1/search", ok)
	if status != http.StatusOK {
		t.Fatalf("deadlineMs search: %d %s", status, b)
	}
	if meta := metaOf(t, b); meta["partial"] != false {
		t.Fatalf("30s budget reported partial: %+v", meta)
	}
	bad := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5, "deadlineMs": -3}
	if status, b := rawPost(t, ts.URL+"/v1/search", bad); status != http.StatusBadRequest {
		t.Fatalf("negative deadlineMs: %d %s", status, b)
	}
	// Batch spelling.
	batch := map[string]interface{}{
		"queries": []map[string]interface{}{{"x": q.X, "y": q.Y, "vec": q.Vec}},
		"k":       3, "lambda": 0.5, "deadlineMs": 30000,
	}
	if status, b := rawPost(t, ts.URL+"/v1/search/batch", batch); status != http.StatusOK {
		t.Fatalf("batch deadlineMs: %d %s", status, b)
	}
}

// TestAdmissionControlSheds drives a one-slot gate deterministically:
// with the slot occupied, a zero-queue gate sheds immediately (429,
// Retry-After, envelope code too_many_requests), a queued request
// sheds after maxWait, a released slot admits again, and the shed and
// gauge rows appear in /metrics. (A closed-loop saturation run lives
// in the serve experiment; on a single-core host short handlers never
// overlap, so this test occupies the slot by hand instead.)
func TestAdmissionControlSheds(t *testing.T) {
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: cssi.TwitterLike, Size: 600, Dim: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cssi.Build(ds, cssi.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	api := New(idx, ds.Model)
	if err := api.SetAdmissionLimits(1, 0, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	var searchGate *admissionGate
	for _, g := range api.gates {
		if g.name == "search" {
			searchGate = g
		}
	}
	if searchGate == nil {
		t.Fatal("no gate installed for the search endpoint")
	}

	q := ds.Objects[2]
	body, _ := json.Marshal(map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5})
	post := func() (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	// Occupy the single execution slot; the next request must shed.
	searchGate.inflight <- struct{}{}
	resp, b := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated gate answered %d: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var env errorEnvelope
	if err := json.Unmarshal(b, &env); err != nil || env.Error.Code != "too_many_requests" {
		t.Fatalf("429 envelope wrong: %v %s", err, b)
	}
	if env.Error.RequestID == "" {
		t.Fatal("429 envelope missing request_id")
	}

	// Release the slot: the endpoint admits again.
	<-searchGate.inflight
	if resp, b := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("released gate answered %d: %s", resp.StatusCode, b)
	}

	// With a one-deep queue, a queued request waits and then sheds once
	// maxWait expires while the slot stays occupied.
	searchGate.inflight <- struct{}{}
	start := time.Now()
	resp, _ = post()
	waited := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-timeout request answered %d", resp.StatusCode)
	}
	_ = waited // wall time includes HTTP overhead; the 429 is the contract
	<-searchGate.inflight

	if got := searchGate.shed.Load(); got < 2 {
		t.Fatalf("shed counter %d, want >= 2", got)
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mb)
	for _, want := range []string{
		`cssi_requests_shed_total{endpoint="search"}`,
		`cssi_admission_queue_depth{endpoint="search"}`,
		`cssi_admission_inflight{endpoint="search"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, grepMetric(text, "cssi_admission"))
		}
	}
}

// TestAdmissionQueueWaitSurfaced pins the queue-wait plumbing: a
// request admitted after waiting in the queue reports its wait in
// meta.queueWaitMs.
func TestAdmissionQueueWaitSurfaced(t *testing.T) {
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: cssi.TwitterLike, Size: 400, Dim: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cssi.Build(ds, cssi.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	api := New(idx, ds.Model)
	if err := api.SetAdmissionLimits(1, 4, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	var gate *admissionGate
	for _, g := range api.gates {
		if g.name == "search" {
			gate = g
		}
	}

	// Hold the slot, fire the request (it queues), release after a beat.
	gate.inflight <- struct{}{}
	var wg sync.WaitGroup
	wg.Add(1)
	var meta map[string]interface{}
	go func() {
		defer wg.Done()
		q := ds.Objects[1]
		status, b := rawPost(t, ts.URL+"/v1/search",
			map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 3, "lambda": 0.5})
		if status != http.StatusOK {
			t.Errorf("queued request answered %d: %s", status, b)
			return
		}
		meta = metaOf(t, b)
	}()
	time.Sleep(30 * time.Millisecond)
	<-gate.inflight
	wg.Wait()
	if t.Failed() {
		return
	}
	wait, _ := meta["queueWaitMs"].(float64)
	if wait <= 0 {
		t.Fatalf("queued request did not surface its wait: %+v", meta)
	}
}

// TestCacheMetricsRows asserts the result-cache block appears in
// /metrics once the cache is enabled and the hit counters move.
func TestCacheMetricsRows(t *testing.T) {
	ts, ds := newServingTestServer(t, func(s *Server) { s.EnableResultCache(64) })
	q := ds.Objects[6]
	body := map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5}
	for i := 0; i < 3; i++ {
		if status, b := rawPost(t, ts.URL+"/v1/search", body); status != http.StatusOK {
			t.Fatalf("search %d: %d %s", i, status, b)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	if !strings.Contains(text, "cssi_result_cache_hits_total 2") {
		t.Fatalf("cache hits row wrong:\n%s", grepMetric(text, "cssi_result_cache"))
	}
	if !strings.Contains(text, "cssi_result_cache_hit_ratio") {
		t.Fatalf("hit-ratio row missing:\n%s", grepMetric(text, "cssi_result_cache"))
	}
}
