package server

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// metrics is a minimal, dependency-free Prometheus-style registry for
// the handful of series the server exposes: per-endpoint request and
// error counters, one latency histogram over the query endpoints, and
// per-shard gauges sampled at scrape time. Everything on the request
// path is a plain atomic increment — no locks, no allocation — so
// instrumentation cost is invisible next to a search.
type metrics struct {
	mu        sync.Mutex // guards the endpoint map's shape (values are atomic)
	endpoints map[string]*endpointCounters

	latency latencyHistogram
}

type endpointCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// latencyBuckets are the histogram's upper bounds in seconds, spanning
// sub-100µs cache-warm searches to second-scale cold batches. The
// +Inf bucket is implicit (the _count series).
var latencyBuckets = [numLatencyBuckets]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

const numLatencyBuckets = 14

type latencyHistogram struct {
	counts  [numLatencyBuckets]atomic.Int64 // per-bucket (non-cumulative) counts
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, updated by CAS
}

func (h *latencyHistogram) observe(d time.Duration) {
	sec := d.Seconds()
	// Linear scan: 14 comparisons worst case, branch-predicted, cheaper
	// than anything clever at this bucket count.
	for i, ub := range latencyBuckets {
		if sec <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sec)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointCounters)}
}

// counters returns (registering on first use) the counter pair for an
// endpoint label.
func (m *metrics) counters(endpoint string) *endpointCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.endpoints[endpoint]
	if !ok {
		c = &endpointCounters{}
		m.endpoints[endpoint] = c
	}
	return c
}

// statusRecorder captures the response status so the middleware can
// count 4xx/5xx responses as errors.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// instrument wraps a handler with request/error counting under the
// given endpoint label; observeLatency additionally records the
// handler's wall time into the search latency histogram (set it for
// the query endpoints only — mutations and probes would pollute the
// search distribution).
func (m *metrics) instrument(endpoint string, observeLatency bool, h http.HandlerFunc) http.HandlerFunc {
	c := m.counters(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		c.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		if observeLatency {
			m.latency.observe(time.Since(start))
		}
		if rec.status >= 400 {
			c.errors.Add(1)
		}
	}
}

// handler serves the Prometheus text exposition format (version 0.0.4)
// with only the standard library. sampler supplies the per-shard
// gauges, read fresh at every scrape.
func (m *metrics) handler(sampler func() []cssi.ShardStat) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var b strings.Builder

		b.WriteString("# HELP cssi_http_requests_total HTTP requests received, by endpoint.\n")
		b.WriteString("# TYPE cssi_http_requests_total counter\n")
		m.writeEndpointCounters(&b, "cssi_http_requests_total", func(c *endpointCounters) int64 { return c.requests.Load() })
		b.WriteString("# HELP cssi_http_request_errors_total HTTP responses with status >= 400, by endpoint.\n")
		b.WriteString("# TYPE cssi_http_request_errors_total counter\n")
		m.writeEndpointCounters(&b, "cssi_http_request_errors_total", func(c *endpointCounters) int64 { return c.errors.Load() })

		b.WriteString("# HELP cssi_search_latency_seconds Wall time of query endpoint requests.\n")
		b.WriteString("# TYPE cssi_search_latency_seconds histogram\n")
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += m.latency.counts[i].Load()
			fmt.Fprintf(&b, "cssi_search_latency_seconds_bucket{le=%q} %d\n", formatBound(ub), cum)
		}
		total := m.latency.count.Load()
		fmt.Fprintf(&b, "cssi_search_latency_seconds_bucket{le=\"+Inf\"} %d\n", total)
		fmt.Fprintf(&b, "cssi_search_latency_seconds_sum %g\n", math.Float64frombits(m.latency.sumBits.Load()))
		fmt.Fprintf(&b, "cssi_search_latency_seconds_count %d\n", total)

		stats := sampler()
		b.WriteString("# HELP cssi_shard_objects Live objects per shard.\n")
		b.WriteString("# TYPE cssi_shard_objects gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "cssi_shard_objects{shard=\"%d\"} %d\n", st.Shard, st.Objects)
		}
		b.WriteString("# HELP cssi_shard_snapshot_age_seconds Seconds since the shard last published a snapshot.\n")
		b.WriteString("# TYPE cssi_shard_snapshot_age_seconds gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "cssi_shard_snapshot_age_seconds{shard=\"%d\"} %g\n", st.Shard, st.SnapshotAge.Seconds())
		}

		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(b.String()))
	}
}

// writeEndpointCounters emits one series per endpoint in sorted label
// order (Prometheus does not require it, but deterministic output makes
// the endpoint scrapeable by tests).
func (m *metrics) writeEndpointCounters(b *strings.Builder, name string, get func(*endpointCounters) int64) {
	m.mu.Lock()
	labels := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		labels = append(labels, ep)
	}
	sort.Strings(labels)
	counters := make([]*endpointCounters, len(labels))
	for i, ep := range labels {
		counters[i] = m.endpoints[ep]
	}
	m.mu.Unlock()
	for i, ep := range labels {
		fmt.Fprintf(b, "%s{endpoint=%q} %d\n", name, ep, get(counters[i]))
	}
}

// formatBound renders a bucket bound the way Prometheus clients do
// (shortest representation, no trailing zeros).
func formatBound(ub float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.5f", ub), "0"), ".")
}
