package server

import (
	"fmt"
	"math"
	"net/http"
	rtmetrics "runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
)

// metrics is a minimal, dependency-free Prometheus-style registry for
// the series the server exposes: per-endpoint request and error
// counters, latency histograms split by request class (query vs
// mutation), search-internals histograms (read efficiency and
// clusters-pruned ratio, the paper's §6 headline metrics in ratio
// form), rebuild durations, and gauges sampled at scrape time
// (per-shard state, Go runtime, process uptime). Everything on the
// request path is a plain atomic increment — no locks, no allocation —
// so instrumentation cost is invisible next to a search.
type metrics struct {
	mu        sync.Mutex // guards the endpoint map's shape (values are atomic)
	endpoints map[string]*endpointCounters

	latency            histogram // query endpoints' wall time
	mutationLatency    histogram // mutation endpoints' wall time
	rebuildDuration    histogram // background rebuild wall time
	compactionDuration histogram // overlay compaction wall time (fold through publication)
	readEfficiency     histogram // per search request: fraction of objects pruned
	clustersPruned     histogram // per search request: fraction of clusters pruned
	clustersOrdered    histogram // per search request: ordering-phase pops / clusters considered
	clustersRouted     histogram // per search request: router-placed clusters / clusters considered
	rerankRatio        histogram // per search request: SQ8 survivors reranked / candidates filtered
	shardImbalance     histogram // per traced scatter request: max/mean shard span duration

	// sloBounds are the latency objectives (seconds, ascending) the SLO
	// block counts query and mutation requests against; sloLabels are
	// their preformatted objective label values. Set before Handler.
	sloBounds []float64
	sloLabels []string

	// imbalanceLast is the most recent max/mean shard-span ratio
	// (float64 bits), exposed as the shard-imbalance gauge.
	imbalanceLast atomic.Uint64

	// sink, when non-nil, contributes the tail sampler's lifetime counts
	// and ring occupancy to the scrape.
	sink *obs.Sink

	// admissionStats, when non-nil, samples the per-endpoint admission
	// gates (queue depth, inflight, shed counts) at scrape time; set by
	// Handler when admission control is enabled.
	admissionStats func() []gateStat

	// cacheStats, when non-nil, samples the index's result cache at
	// scrape time (ok=false until EnableResultCache); set by Handler.
	cacheStats func() (cssi.CacheStats, bool)

	start time.Time // process-uptime epoch (registry creation)
}

type endpointCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
	// sloMeasured counts the query/mutation requests measured against
	// the latency objectives; sloViol has one violation counter per
	// objective (same order as metrics.sloBounds).
	sloMeasured atomic.Int64
	sloViol     []atomic.Int64
}

// Bucket upper bounds per histogram. The +Inf bucket is implicit (the
// _count series).
var (
	// latencyBuckets span sub-100µs cache-warm searches to second-scale
	// cold batches.
	latencyBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
	}
	// mutationBuckets start at 1µs: a routed single-shard write is a
	// clone-and-publish whose cost scales with the shard size, so the
	// interesting range sits well below the query endpoints'.
	mutationBuckets = []float64{
		1e-06, 5e-06, 2.5e-05, 0.0001, 0.0005, 0.0025,
		0.01, 0.05, 0.25, 1, 2.5,
	}
	// rebuildBuckets cover per-shard K-Means + PCA reconstruction from
	// toy test indexes to multi-minute production rebuilds.
	rebuildBuckets = []float64{
		0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
	// ratioBuckets resolve the upper end finely: a healthy CSSI query
	// prunes the vast majority of objects, so regressions show up as
	// mass shifting out of the >0.9 buckets.
	ratioBuckets = []float64{
		0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
		0.9, 0.95, 0.99, 0.999, 1,
	}
	// imbalanceBuckets cover the max/mean shard-span ratio: 1 is a
	// perfectly balanced scatter, 2 means the slowest shard took twice
	// the mean (the gather waits on it), and the tail flags a hot shard.
	imbalanceBuckets = []float64{
		1, 1.05, 1.1, 1.2, 1.35, 1.5, 1.75, 2, 2.5, 3, 4, 6, 8,
	}
	// defaultSLOBounds are the latency objectives (seconds) the SLO
	// block ships with: 5ms, 25ms, 100ms.
	defaultSLOBounds = []float64{0.005, 0.025, 0.1}
)

// histogram is a fixed-bucket atomic histogram. Bucket counts are
// stored NON-cumulative (each observation increments exactly one
// bucket) so concurrent observers never contend beyond one cache line;
// the exposition pass accumulates them into the cumulative form the
// Prometheus text format requires.
type histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, updated by CAS

	// exemplars, when enabled via initExemplars, holds the most recent
	// exemplar per bucket (last slot = +Inf), emitted on OpenMetrics
	// scrapes to tie tail buckets to recent request/trace IDs.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar ties one observation to the request that produced it.
type exemplar struct {
	requestID string
	traceID   string
	value     float64
	unixSecs  float64
}

func (h *histogram) init(bounds []float64) {
	h.bounds = bounds
	h.counts = make([]atomic.Int64, len(bounds))
}

// initExemplars turns on per-bucket exemplar capture (one extra slot
// for the +Inf bucket).
func (h *histogram) initExemplars() {
	h.exemplars = make([]atomic.Pointer[exemplar], len(h.bounds)+1)
}

// bucketIndex returns the index of the bucket v falls into, with
// len(bounds) standing for +Inf.
func (h *histogram) bucketIndex(v float64) int {
	// Linear scan: ≤14 comparisons, branch-predicted, cheaper than
	// anything clever at these bucket counts.
	for i, ub := range h.bounds {
		if v <= ub {
			return i
		}
	}
	return len(h.bounds)
}

func (h *histogram) observe(v float64) {
	if i := h.bucketIndex(v); i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// observeExemplar records v and, when exemplar capture is on and the
// observation carries an ID, stamps it as the bucket's latest exemplar.
func (h *histogram) observeExemplar(v float64, requestID, traceID string) {
	h.observe(v)
	if h.exemplars == nil || requestID == "" {
		return
	}
	h.exemplars[h.bucketIndex(v)].Store(&exemplar{
		requestID: requestID,
		traceID:   traceID,
		value:     v,
		unixSecs:  float64(time.Now().UnixNano()) / 1e9,
	})
}

func (h *histogram) observeDuration(d time.Duration) { h.observe(d.Seconds()) }

// write emits the full histogram exposition (HELP, TYPE, cumulative
// buckets, +Inf, sum, count). An empty histogram still emits every
// series — scrapers and recording rules must see the metric exist from
// the first scrape, not only after the first observation. With om set
// (an OpenMetrics scrape) each bucket line additionally carries its
// latest exemplar, pointing at the request/trace ID of a recent
// observation in that bucket.
func (h *histogram) write(b *strings.Builder, name, help string, om bool) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d", name, formatBound(ub), cum)
		h.writeExemplar(b, i, om)
		b.WriteByte('\n')
	}
	total := h.count.Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d", name, total)
	h.writeExemplar(b, len(h.bounds), om)
	b.WriteByte('\n')
	fmt.Fprintf(b, "%s_sum %g\n", name, math.Float64frombits(h.sumBits.Load()))
	fmt.Fprintf(b, "%s_count %d\n", name, total)
}

// writeExemplar appends bucket i's exemplar in OpenMetrics syntax
// (" # {labels} value timestamp"), or nothing when exemplars are off,
// the scrape is plain Prometheus text, or the bucket has none yet.
func (h *histogram) writeExemplar(b *strings.Builder, i int, om bool) {
	if !om || h.exemplars == nil {
		return
	}
	ex := h.exemplars[i].Load()
	if ex == nil {
		return
	}
	if ex.traceID != "" {
		fmt.Fprintf(b, " # {request_id=%q,trace_id=%q} %g %.3f", ex.requestID, ex.traceID, ex.value, ex.unixSecs)
		return
	}
	fmt.Fprintf(b, " # {request_id=%q} %g %.3f", ex.requestID, ex.value, ex.unixSecs)
}

func newMetrics() *metrics {
	m := &metrics{
		endpoints: make(map[string]*endpointCounters),
		start:     time.Now(),
	}
	m.latency.init(latencyBuckets)
	m.mutationLatency.init(mutationBuckets)
	m.rebuildDuration.init(rebuildBuckets)
	// Compactions replay the shard's live set through the eager build
	// machinery — same cost regime as a rebuild, minus K-Means/PCA — so
	// they share the rebuild bucket layout.
	m.compactionDuration.init(rebuildBuckets)
	m.readEfficiency.init(ratioBuckets)
	m.clustersPruned.init(ratioBuckets)
	m.clustersOrdered.init(ratioBuckets)
	m.clustersRouted.init(ratioBuckets)
	m.rerankRatio.init(ratioBuckets)
	m.shardImbalance.init(imbalanceBuckets)
	// Query latency carries exemplars: an OpenMetrics scrape sees which
	// request/trace ID last landed in each bucket, which is the entry
	// point of the p999 chase (bucket → /debug/traces/<id>).
	m.latency.initExemplars()
	m.setSLOBoundsSeconds(defaultSLOBounds)
	return m
}

// setSLOBounds replaces the latency objectives. Bounds must be
// positive and strictly ascending. Call before the handler tree is
// built: existing endpoints' violation counters are reset to match.
func (m *metrics) setSLOBounds(objectives []time.Duration) error {
	secs := make([]float64, len(objectives))
	for i, o := range objectives {
		if o <= 0 {
			return fmt.Errorf("slo objective %v must be positive", o)
		}
		if i > 0 && objectives[i] <= objectives[i-1] {
			return fmt.Errorf("slo objectives must be strictly ascending, got %v after %v", o, objectives[i-1])
		}
		secs[i] = o.Seconds()
	}
	m.setSLOBoundsSeconds(secs)
	return nil
}

func (m *metrics) setSLOBoundsSeconds(secs []float64) {
	labels := make([]string, len(secs))
	for i, s := range secs {
		labels[i] = formatBound(s)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sloBounds = secs
	m.sloLabels = labels
	for _, c := range m.endpoints {
		c.sloViol = make([]atomic.Int64, len(secs))
	}
}

// counters returns (registering on first use) the counter set for an
// endpoint label.
func (m *metrics) counters(endpoint string) *endpointCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.endpoints[endpoint]
	if !ok {
		c = &endpointCounters{sloViol: make([]atomic.Int64, len(m.sloBounds))}
		m.endpoints[endpoint] = c
	}
	return c
}

// observeTrace runs on every finished trace (the sink observer): it
// feeds the shard-imbalance series from multi-span scatters — the
// ratio of the slowest shard span to the mean span, i.e. how long the
// gather idled waiting on the straggler.
func (m *metrics) observeTrace(t *obs.Trace) {
	if len(t.Shards) < 2 {
		return
	}
	var max, sum int64
	for i := range t.Shards {
		d := t.Shards[i].DurationNanos
		sum += d
		if d > max {
			max = d
		}
	}
	if sum <= 0 {
		return
	}
	ratio := float64(max) * float64(len(t.Shards)) / float64(sum)
	m.shardImbalance.observe(ratio)
	m.imbalanceLast.Store(math.Float64bits(ratio))
}

// observeSearchStats feeds the search-internals histograms from the
// work counters a query (or query batch) already collected on the
// normal path — read efficiency is the fraction of accounted objects
// the pruning skipped, clusters-pruned the fraction of examined-or-
// pruned clusters dismissed wholesale by the Lemma 4.4 bound.
func (m *metrics) observeSearchStats(st *cssi.Stats) {
	objTotal := st.VisitedObjects + st.InterPruned + st.IntraPruned
	if objTotal > 0 {
		m.readEfficiency.observe(float64(st.InterPruned+st.IntraPruned) / float64(objTotal))
	}
	clTotal := st.ClustersExamined + st.ClustersPruned
	if clTotal > 0 {
		m.clustersPruned.observe(float64(st.ClustersPruned) / float64(clTotal))
		// Ordering-phase read efficiency: heap pops over clusters
		// considered. A re-pushed cluster pops twice, so the ratio can
		// legitimately exceed 1 — those observations land in the +Inf
		// bucket. Well below 1 means the k-NN bound cut the ordering
		// phase off long before every cluster was even ordered.
		m.clustersOrdered.observe(float64(st.ClustersOrdered) / float64(clTotal))
	}
	// Routed ratio: the fraction of considered clusters whose visit
	// position the learned router decided. Only observed when routing
	// actually ran — unrouted queries would otherwise flood the
	// histogram with zeros.
	if clTotal > 0 && st.ClustersRouted > 0 {
		m.clustersRouted.observe(float64(st.ClustersRouted) / float64(clTotal))
	}
	// Rerank ratio: of the candidates the SQ8 quantized filter examined,
	// the fraction that survived to the exact rerank. Low is good (the
	// cheap bound excluded most of them). Only observed when the filter
	// actually ran — quant-off queries and quant-free indexes would
	// otherwise flood the histogram with meaningless zeros.
	if qTotal := st.QuantPruned + st.QuantReranked; qTotal > 0 {
		m.rerankRatio.observe(float64(st.QuantReranked) / float64(qTotal))
	}
}

// statusRecorder captures the response status so the middleware can
// count 4xx/5xx responses as errors.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// endpointKind classifies an endpoint for latency attribution:
// kindQuery feeds the search latency histogram, kindMutation the
// mutation latency histogram, kindPlain neither (probes and scrapes
// would pollute both distributions).
type endpointKind int

const (
	kindPlain endpointKind = iota
	kindQuery
	kindMutation
)

// instrument wraps a handler with request/error counting under the
// given endpoint label, recording wall time into the kind's histogram.
// Query and mutation requests are additionally measured against the
// SLO latency objectives, and query latency carries the request/trace
// ID as the bucket's exemplar.
func (m *metrics) instrument(endpoint string, kind endpointKind, h http.HandlerFunc) http.HandlerFunc {
	c := m.counters(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		c.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		elapsed := time.Since(start)
		switch kind {
		case kindQuery:
			m.latency.observeExemplar(elapsed.Seconds(), requestIDFrom(r.Context()), traceIDFrom(r.Context()))
		case kindMutation:
			m.mutationLatency.observe(elapsed.Seconds())
		}
		if kind != kindPlain {
			c.sloMeasured.Add(1)
			secs := elapsed.Seconds()
			for i := range m.sloBounds {
				if i < len(c.sloViol) && secs > m.sloBounds[i] {
					c.sloViol[i].Add(1)
				}
			}
		}
		if rec.status >= 400 {
			c.errors.Add(1)
		}
	}
}

// runtimeSampleNames are the runtime/metrics series exported as gauges:
// live goroutines, live heap bytes, and completed GC cycles — the
// trio that explains "the server got slow" at a glance.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
}

// sampleValue renders one runtime/metrics value as a Prometheus number.
func sampleValue(v rtmetrics.Value) string {
	switch v.Kind() {
	case rtmetrics.KindUint64:
		return strconv.FormatUint(v.Uint64(), 10)
	case rtmetrics.KindFloat64:
		return strconv.FormatFloat(v.Float64(), 'g', -1, 64)
	default:
		return "0"
	}
}

// handler serves the Prometheus text exposition format (version 0.0.4)
// with only the standard library. sampler supplies the per-shard
// gauges, read fresh at every scrape; buildVersion labels
// cssi_build_info. A scrape whose Accept header asks for
// application/openmetrics-text is answered in OpenMetrics form
// instead: same series, plus per-bucket exemplars on the query latency
// histogram and a closing # EOF.
func (m *metrics) handler(sampler func() []cssi.ShardStat, buildVersion, goVersion string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		om := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
		var b strings.Builder

		b.WriteString("# HELP cssi_http_requests_total HTTP requests received, by endpoint.\n")
		b.WriteString("# TYPE cssi_http_requests_total counter\n")
		m.writeEndpointCounters(&b, "cssi_http_requests_total", func(c *endpointCounters) int64 { return c.requests.Load() })
		b.WriteString("# HELP cssi_http_request_errors_total HTTP responses with status >= 400, by endpoint.\n")
		b.WriteString("# TYPE cssi_http_request_errors_total counter\n")
		m.writeEndpointCounters(&b, "cssi_http_request_errors_total", func(c *endpointCounters) int64 { return c.errors.Load() })

		// SLO accounting: every query/mutation request is measured against
		// each latency objective; the violation counters split the
		// fast-enough from the too-slow per endpoint and objective.
		b.WriteString("# HELP cssi_slo_requests_total Requests measured against the latency objectives, by endpoint.\n")
		b.WriteString("# TYPE cssi_slo_requests_total counter\n")
		m.writeEndpointCounters(&b, "cssi_slo_requests_total", func(c *endpointCounters) int64 { return c.sloMeasured.Load() })
		b.WriteString("# HELP cssi_slo_violations_total Requests exceeding the latency objective, by endpoint and objective (seconds).\n")
		b.WriteString("# TYPE cssi_slo_violations_total counter\n")
		m.writeSLOViolations(&b)

		m.latency.write(&b, "cssi_search_latency_seconds",
			"Wall time of query endpoint requests.", om)
		m.mutationLatency.write(&b, "cssi_mutation_latency_seconds",
			"Wall time of mutation endpoint requests (insert/update/delete).", om)
		m.rebuildDuration.write(&b, "cssi_rebuild_duration_seconds",
			"Wall time of background index rebuilds, build through publication.", om)
		m.compactionDuration.write(&b, "cssi_compaction_duration_seconds",
			"Wall time of overlay compactions, fold through publication.", om)
		m.readEfficiency.write(&b, "cssi_search_read_efficiency",
			"Per search request: fraction of accounted objects skipped by pruning (1 = everything pruned).", om)
		m.clustersPruned.write(&b, "cssi_search_clusters_pruned_ratio",
			"Per search request: fraction of clusters dismissed wholesale by the lower-bound cut.", om)
		m.clustersOrdered.write(&b, "cssi_search_clusters_ordered_ratio",
			"Per search request: lazy ordering-phase heap pops over clusters considered (re-pushed clusters pop twice, so >1 lands in +Inf).", om)
		m.clustersRouted.write(&b, "cssi_search_clusters_routed_ratio",
			"Per search request: fraction of considered clusters placed by the learned router (observed only when routing ran).", om)
		m.rerankRatio.write(&b, "cssi_search_rerank_ratio",
			"Per search request: fraction of SQ8-filtered candidates surviving to the exact rerank (observed only when the quantized filter ran).", om)
		m.shardImbalance.write(&b, "cssi_shard_imbalance_ratio",
			"Per traced scatter request: slowest shard span over the mean span (1 = balanced; the gather waits on the max).", om)
		b.WriteString("# HELP cssi_shard_imbalance_last Max/mean shard span ratio of the most recent traced scatter request.\n")
		b.WriteString("# TYPE cssi_shard_imbalance_last gauge\n")
		fmt.Fprintf(&b, "cssi_shard_imbalance_last %g\n", math.Float64frombits(m.imbalanceLast.Load()))

		if m.sink != nil {
			seen, retained, sampledOut := m.sink.Counts()
			b.WriteString("# HELP cssi_traces_seen_total Traces completed by the tail sampler.\n")
			b.WriteString("# TYPE cssi_traces_seen_total counter\n")
			fmt.Fprintf(&b, "cssi_traces_seen_total %d\n", seen)
			b.WriteString("# HELP cssi_traces_retained_total Traces retained in the ring (slow, errored, partial, or 1-in-N sampled).\n")
			b.WriteString("# TYPE cssi_traces_retained_total counter\n")
			fmt.Fprintf(&b, "cssi_traces_retained_total %d\n", retained)
			b.WriteString("# HELP cssi_traces_sampled_out_total Normal traces dropped by the tail sampler and recycled.\n")
			b.WriteString("# TYPE cssi_traces_sampled_out_total counter\n")
			fmt.Fprintf(&b, "cssi_traces_sampled_out_total %d\n", sampledOut)
			b.WriteString("# HELP cssi_trace_ring_entries Retained traces currently in the ring.\n")
			b.WriteString("# TYPE cssi_trace_ring_entries gauge\n")
			fmt.Fprintf(&b, "cssi_trace_ring_entries %d\n", m.sink.Ring().Len())
			b.WriteString("# HELP cssi_trace_ring_capacity Trace ring capacity (the retained-trace memory bound).\n")
			b.WriteString("# TYPE cssi_trace_ring_capacity gauge\n")
			fmt.Fprintf(&b, "cssi_trace_ring_capacity %d\n", m.sink.Ring().Cap())
		}

		// Admission control: live gate occupancy and lifetime shed counts,
		// sampled per query endpoint. Only present once SetAdmissionLimits
		// enabled the gates.
		if m.admissionStats != nil {
			gates := m.admissionStats()
			b.WriteString("# HELP cssi_admission_inflight Requests currently executing behind the endpoint's admission gate.\n")
			b.WriteString("# TYPE cssi_admission_inflight gauge\n")
			for _, g := range gates {
				fmt.Fprintf(&b, "cssi_admission_inflight{endpoint=%q} %d\n", g.endpoint, g.inflight)
			}
			b.WriteString("# HELP cssi_admission_queue_depth Requests currently queued for an execution slot.\n")
			b.WriteString("# TYPE cssi_admission_queue_depth gauge\n")
			for _, g := range gates {
				fmt.Fprintf(&b, "cssi_admission_queue_depth{endpoint=%q} %d\n", g.endpoint, g.queued)
			}
			b.WriteString("# HELP cssi_requests_shed_total Requests shed by admission control (429 Too Many Requests), by endpoint.\n")
			b.WriteString("# TYPE cssi_requests_shed_total counter\n")
			for _, g := range gates {
				fmt.Fprintf(&b, "cssi_requests_shed_total{endpoint=%q} %d\n", g.endpoint, g.shed)
			}
		}

		// Result cache: counters sampled from the index's cache. Only
		// present once EnableResultCache installed one.
		if m.cacheStats != nil {
			if cs, ok := m.cacheStats(); ok {
				b.WriteString("# HELP cssi_result_cache_hits_total Result cache probes answered from the cache.\n")
				b.WriteString("# TYPE cssi_result_cache_hits_total counter\n")
				fmt.Fprintf(&b, "cssi_result_cache_hits_total %d\n", cs.Hits)
				b.WriteString("# HELP cssi_result_cache_misses_total Result cache probes that executed the search.\n")
				b.WriteString("# TYPE cssi_result_cache_misses_total counter\n")
				fmt.Fprintf(&b, "cssi_result_cache_misses_total %d\n", cs.Misses)
				b.WriteString("# HELP cssi_result_cache_hit_ratio Hits over probes since the cache was enabled (0 before any probe).\n")
				b.WriteString("# TYPE cssi_result_cache_hit_ratio gauge\n")
				fmt.Fprintf(&b, "cssi_result_cache_hit_ratio %g\n", cs.HitRatio())
				b.WriteString("# HELP cssi_result_cache_entries Live result cache entries.\n")
				b.WriteString("# TYPE cssi_result_cache_entries gauge\n")
				fmt.Fprintf(&b, "cssi_result_cache_entries %d\n", cs.Entries)
				b.WriteString("# HELP cssi_result_cache_invalidations_total Wholesale cache clears triggered by snapshot publications.\n")
				b.WriteString("# TYPE cssi_result_cache_invalidations_total counter\n")
				fmt.Fprintf(&b, "cssi_result_cache_invalidations_total %d\n", cs.Invalidations)
				b.WriteString("# HELP cssi_result_cache_evictions_total LRU displacements from a full cache.\n")
				b.WriteString("# TYPE cssi_result_cache_evictions_total counter\n")
				fmt.Fprintf(&b, "cssi_result_cache_evictions_total %d\n", cs.Evictions)
			}
		}

		stats := sampler()
		b.WriteString("# HELP cssi_shard_objects Live objects per shard.\n")
		b.WriteString("# TYPE cssi_shard_objects gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "cssi_shard_objects{shard=\"%d\"} %d\n", st.Shard, st.Objects)
		}
		b.WriteString("# HELP cssi_shard_snapshot_age_seconds Seconds since the shard last published a snapshot.\n")
		b.WriteString("# TYPE cssi_shard_snapshot_age_seconds gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "cssi_shard_snapshot_age_seconds{shard=\"%d\"} %g\n", st.Shard, st.SnapshotAge.Seconds())
		}
		b.WriteString("# HELP cssi_shard_snapshot_publications_total Snapshot publications per shard since build (initial publication included).\n")
		b.WriteString("# TYPE cssi_shard_snapshot_publications_total counter\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "cssi_shard_snapshot_publications_total{shard=\"%d\"} %d\n", st.Shard, st.Publications)
		}
		b.WriteString("# HELP cssi_shard_delta_ops Write ops buffered in the shard snapshot's delta overlay (0 when flat or disabled).\n")
		b.WriteString("# TYPE cssi_shard_delta_ops gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "cssi_shard_delta_ops{shard=\"%d\"} %d\n", st.Shard, st.DeltaOps)
		}
		b.WriteString("# HELP cssi_shard_base_age_seconds Seconds since the shard's flat base snapshot was published (moves on compactions, rebuilds, and eager writes — not overlay writes).\n")
		b.WriteString("# TYPE cssi_shard_base_age_seconds gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "cssi_shard_base_age_seconds{shard=\"%d\"} %g\n", st.Shard, st.BaseAge.Seconds())
		}
		b.WriteString("# HELP cssi_shard_compactions_total Completed overlay compactions per shard.\n")
		b.WriteString("# TYPE cssi_shard_compactions_total counter\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "cssi_shard_compactions_total{shard=\"%d\"} %d\n", st.Shard, st.Compactions)
		}

		samples := make([]rtmetrics.Sample, len(runtimeSampleNames))
		for i, name := range runtimeSampleNames {
			samples[i].Name = name
		}
		rtmetrics.Read(samples)
		b.WriteString("# HELP cssi_go_goroutines Live goroutines.\n")
		b.WriteString("# TYPE cssi_go_goroutines gauge\n")
		fmt.Fprintf(&b, "cssi_go_goroutines %s\n", sampleValue(samples[0].Value))
		b.WriteString("# HELP cssi_go_heap_objects_bytes Bytes of live heap objects.\n")
		b.WriteString("# TYPE cssi_go_heap_objects_bytes gauge\n")
		fmt.Fprintf(&b, "cssi_go_heap_objects_bytes %s\n", sampleValue(samples[1].Value))
		b.WriteString("# HELP cssi_go_gc_cycles_total Completed GC cycles.\n")
		b.WriteString("# TYPE cssi_go_gc_cycles_total counter\n")
		fmt.Fprintf(&b, "cssi_go_gc_cycles_total %s\n", sampleValue(samples[2].Value))

		b.WriteString("# HELP cssi_build_info Build metadata; value is always 1.\n")
		b.WriteString("# TYPE cssi_build_info gauge\n")
		fmt.Fprintf(&b, "cssi_build_info{version=%q,goversion=%q} 1\n", buildVersion, goVersion)
		b.WriteString("# HELP cssi_process_uptime_seconds Seconds since the server's metrics registry was created.\n")
		b.WriteString("# TYPE cssi_process_uptime_seconds gauge\n")
		fmt.Fprintf(&b, "cssi_process_uptime_seconds %g\n", time.Since(m.start).Seconds())

		contentType := "text/plain; version=0.0.4; charset=utf-8"
		if om {
			b.WriteString("# EOF\n")
			contentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"
		}
		w.Header().Set("Content-Type", contentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(b.String()))
	}
}

// writeSLOViolations emits one series per endpoint × objective in
// sorted endpoint order.
func (m *metrics) writeSLOViolations(b *strings.Builder) {
	m.mu.Lock()
	labels := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		labels = append(labels, ep)
	}
	sort.Strings(labels)
	counters := make([]*endpointCounters, len(labels))
	for i, ep := range labels {
		counters[i] = m.endpoints[ep]
	}
	objectives := m.sloLabels
	m.mu.Unlock()
	for i, ep := range labels {
		for j, obj := range objectives {
			if j >= len(counters[i].sloViol) {
				break
			}
			fmt.Fprintf(b, "cssi_slo_violations_total{endpoint=%q,objective=%q} %d\n", ep, obj, counters[i].sloViol[j].Load())
		}
	}
}

// writeEndpointCounters emits one series per endpoint in sorted label
// order (Prometheus does not require it, but deterministic output makes
// the endpoint scrapeable by tests).
func (m *metrics) writeEndpointCounters(b *strings.Builder, name string, get func(*endpointCounters) int64) {
	m.mu.Lock()
	labels := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		labels = append(labels, ep)
	}
	sort.Strings(labels)
	counters := make([]*endpointCounters, len(labels))
	for i, ep := range labels {
		counters[i] = m.endpoints[ep]
	}
	m.mu.Unlock()
	for i, ep := range labels {
		fmt.Fprintf(b, "%s{endpoint=%q} %d\n", name, ep, get(counters[i]))
	}
}

// formatBound renders a bucket bound the way Prometheus clients do:
// the shortest representation that round-trips, so 0.0001 stays
// "0.0001" and 1e-06 stays "1e-06" (the old %.5f formatting truncated
// any bound below 1e-5 to "0", which collides with a genuine zero
// bound and breaks scrapers that parse le as a float key).
func formatBound(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
