package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

func newTestServer(t *testing.T) (*httptest.Server, *cssi.Dataset) {
	t.Helper()
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: cssi.TwitterLike, Size: 500, Dim: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cssi.Build(ds, cssi.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx, ds.Model).Handler())
	t.Cleanup(ts.Close)
	return ts, ds
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthAndStats(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Objects        int `json:"objects"`
		HybridClusters int `json:"hybridClusters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 500 || stats.HybridClusters == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSearchByVector(t *testing.T) {
	ts, ds := newTestServer(t)
	q := ds.Objects[7]
	resp, out := postJSON(t, ts.URL+"/search", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	var results []struct {
		ID   uint32  `json:"id"`
		Dist float64 `json:"dist"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].ID != q.ID || results[0].Dist != 0 {
		t.Fatalf("self-query top hit %+v", results[0])
	}
}

func TestSearchByText(t *testing.T) {
	ts, ds := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/search", map[string]interface{}{
		"x": 0.5, "y": 0.5, "text": ds.Objects[0].Text, "k": 3, "lambda": 0.0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	var results []struct {
		ID uint32 `json:"id"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if results[0].ID != ds.Objects[0].ID {
		t.Fatalf("semantic text query should hit source object, got %d", results[0].ID)
	}
}

func TestSearchApproxFlag(t *testing.T) {
	ts, ds := newTestServer(t)
	q := ds.Objects[9]
	resp, _ := postJSON(t, ts.URL+"/search", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5, "approx": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSearchValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	// No vec and no text.
	resp, _ := postJSON(t, ts.URL+"/search", map[string]interface{}{"x": 0.1, "y": 0.1, "k": 3, "lambda": 0.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing vec/text: status %d", resp.StatusCode)
	}
	// Bad lambda.
	resp, _ = postJSON(t, ts.URL+"/search", map[string]interface{}{"x": 0.1, "y": 0.1, "text": "a b c", "lambda": 3.0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lambda: status %d", resp.StatusCode)
	}
	// Unknown fields rejected.
	r, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte(`{"bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", r.StatusCode)
	}
}

func TestRangeEndpoint(t *testing.T) {
	ts, ds := newTestServer(t)
	q := ds.Objects[3]
	resp, out := postJSON(t, ts.URL+"/range", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "lambda": 0.5, "radius": 0.1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	var results []struct {
		Dist float64 `json:"dist"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Dist > 0.1 {
			t.Fatalf("result outside radius: %v", r.Dist)
		}
	}
}

func TestBoxEndpoint(t *testing.T) {
	ts, ds := newTestServer(t)
	q := ds.Objects[3]
	resp, out := postJSON(t, ts.URL+"/box", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5,
		"loX": 0.0, "loY": 0.0, "hiX": 1.0, "hiY": 1.0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	// Inverted window rejected.
	resp, _ = postJSON(t, ts.URL+"/box", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "loX": 0.9, "hiX": 0.1, "hiY": 1.0,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted window: status %d", resp.StatusCode)
	}
}

func TestObjectLifecycle(t *testing.T) {
	ts, ds := newTestServer(t)
	// Insert.
	resp, _ := postJSON(t, ts.URL+"/objects", map[string]interface{}{
		"id": 90001, "x": 0.2, "y": 0.3, "vec": ds.Objects[0].Vec,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	// Duplicate insert conflicts.
	resp, _ = postJSON(t, ts.URL+"/objects", map[string]interface{}{
		"id": 90001, "x": 0.2, "y": 0.3, "vec": ds.Objects[0].Vec,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("dup insert status %d", resp.StatusCode)
	}
	// Update.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/objects", bytes.NewReader(mustJSON(map[string]interface{}{
		"id": 90001, "x": 0.8, "y": 0.9, "vec": ds.Objects[1].Vec,
	})))
	req.Header.Set("Content-Type", "application/json")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", r2.StatusCode)
	}
	// Delete.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/objects?id=90001", nil)
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", r3.StatusCode)
	}
	// Delete again: not found.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/objects?id=90001", nil)
	r4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("re-delete status %d", r4.StatusCode)
	}
	// Bad id.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/objects?id=abc", nil)
	r5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r5.Body.Close()
	if r5.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d", r5.StatusCode)
	}
}

// POST /rebuild?wait=1 rebuilds in the background and, with wait,
// reports completion; searches issued before, during, and after must
// keep succeeding against consistent snapshots.
func TestRebuildEndpoint(t *testing.T) {
	ts, ds := newTestServer(t)
	// Mutate first so the rebuild has deletions to compact away.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/objects?id="+
		fmt.Sprint(ds.Objects[0].ID), nil)
	r0, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r0.Body.Close()
	if r0.StatusCode != http.StatusOK {
		t.Fatalf("pre-rebuild delete status %d", r0.StatusCode)
	}

	resp, body := postJSON(t, ts.URL+"/rebuild?wait=1", map[string]interface{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild status %d", resp.StatusCode)
	}
	var status string
	if err := json.Unmarshal(body["status"], &status); err != nil || status != "rebuilt" {
		t.Fatalf("rebuild response %v (err %v)", body, err)
	}
	var n int
	if err := json.Unmarshal(body["objects"], &n); err != nil || n != ds.Len()-1 {
		t.Fatalf("post-rebuild object count %d, want %d", n, ds.Len()-1)
	}

	// Searches on the rebuilt index still work.
	q := ds.Objects[1]
	resp, _ = postJSON(t, ts.URL+"/search", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 3, "lambda": 0.5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rebuild search status %d", resp.StatusCode)
	}

	// Without wait the endpoint acknowledges asynchronously.
	resp, body = postJSON(t, ts.URL+"/rebuild", map[string]interface{}{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async rebuild status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body["status"], &status); err != nil || status != "rebuilding" {
		t.Fatalf("async rebuild response %v (err %v)", body, err)
	}
}

// Concurrent reads and writes must not race (run with -race).
func TestConcurrentReadWrite(t *testing.T) {
	ts, ds := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := ds.Objects[(g*29+i)%ds.Len()]
				resp, _ := postJSON(t, ts.URL+"/search", map[string]interface{}{
					"x": q.X, "y": q.Y, "vec": q.Vec, "k": 3, "lambda": 0.5,
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search status %d", resp.StatusCode)
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := 100000 + g*100 + i
				resp, _ := postJSON(t, ts.URL+"/objects", map[string]interface{}{
					"id": id, "x": 0.5, "y": 0.5, "vec": ds.Objects[0].Vec,
				})
				if resp.StatusCode != http.StatusCreated {
					t.Errorf("insert status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func mustJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("mustJSON: %v", err))
	}
	return b
}

func TestKeywordSearchEndpoint(t *testing.T) {
	ts, ds := newTestServer(t)
	word := strings.Fields(ds.Objects[12].Text)[0]
	q := ds.Objects[3]
	resp, out := postJSON(t, ts.URL+"/keyword-search", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5,
		"keywords": []string{word},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	var results []struct {
		ID   uint32 `json:"id"`
		Text string `json:"text"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results for an occurring keyword")
	}
	for _, r := range results {
		if !strings.Contains(" "+r.Text+" ", " "+word+" ") {
			t.Fatalf("result %d lacks keyword %q: %q", r.ID, word, r.Text)
		}
	}
	// Missing keywords rejected.
	resp, _ = postJSON(t, ts.URL+"/keyword-search", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing keywords: status %d", resp.StatusCode)
	}
	// Stop-word-only keywords rejected.
	resp, _ = postJSON(t, ts.URL+"/keyword-search", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5,
		"keywords": []string{"the"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stop-word keywords: status %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts, ds := newTestServer(t)
	queries := make([]map[string]interface{}, 3)
	for i := range queries {
		q := ds.Objects[i*7]
		queries[i] = map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec}
	}
	resp, out := postJSON(t, ts.URL+"/search/batch", map[string]interface{}{
		"queries": queries, "k": 4, "lambda": 0.5, "workers": 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	var results [][]struct {
		ID   uint32  `json:"id"`
		Dist float64 `json:"dist"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d result lists for %d queries", len(results), len(queries))
	}
	// Each batch entry must match the single-query endpoint exactly.
	for i, q := range queries {
		q["k"] = 4
		q["lambda"] = 0.5
		single, sout := postJSON(t, ts.URL+"/search", q)
		if single.StatusCode != http.StatusOK {
			t.Fatalf("single status %d", single.StatusCode)
		}
		var want []struct {
			ID   uint32  `json:"id"`
			Dist float64 `json:"dist"`
		}
		if err := json.Unmarshal(sout["results"], &want); err != nil {
			t.Fatal(err)
		}
		if len(results[i]) != len(want) {
			t.Fatalf("query %d: %d vs %d results", i, len(results[i]), len(want))
		}
		for j := range want {
			if results[i][j].ID != want[j].ID || results[i][j].Dist != want[j].Dist {
				t.Fatalf("query %d result %d: batch %+v vs single %+v", i, j, results[i][j], want[j])
			}
		}
	}
}

func TestBatchEndpointValidation(t *testing.T) {
	ts, ds := newTestServer(t)
	// Empty batch rejected.
	resp, _ := postJSON(t, ts.URL+"/search/batch", map[string]interface{}{
		"queries": []map[string]interface{}{}, "k": 3, "lambda": 0.5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty queries: status %d", resp.StatusCode)
	}
	// A bad query inside the batch rejected.
	resp, _ = postJSON(t, ts.URL+"/search/batch", map[string]interface{}{
		"queries": []map[string]interface{}{
			{"x": 0.1, "y": 0.2, "vec": ds.Objects[0].Vec},
			{"x": 0.1, "y": 0.2},
		},
		"k": 3, "lambda": 0.5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad inner query: status %d", resp.StatusCode)
	}
	// Bad lambda rejected.
	resp, _ = postJSON(t, ts.URL+"/search/batch", map[string]interface{}{
		"queries": []map[string]interface{}{{"x": 0.1, "y": 0.2, "vec": ds.Objects[0].Vec}},
		"k":       3, "lambda": 2.0,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lambda: status %d", resp.StatusCode)
	}
	// A wrong-dimension vector anywhere in the batch is a 400, never a
	// panic in a search worker (which would kill the server process).
	resp, _ = postJSON(t, ts.URL+"/search/batch", map[string]interface{}{
		"queries": []map[string]interface{}{
			{"x": 0.1, "y": 0.2, "vec": ds.Objects[0].Vec},
			{"x": 0.3, "y": 0.4, "vec": []float32{1, 2, 3}},
		},
		"k": 3, "lambda": 0.5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim vec: status %d", resp.StatusCode)
	}
	// An oversized batch is rejected outright.
	huge := make([]map[string]interface{}, maxBatchQueries+1)
	for i := range huge {
		huge[i] = map[string]interface{}{"x": 0.1, "y": 0.2, "vec": ds.Objects[0].Vec}
	}
	resp, _ = postJSON(t, ts.URL+"/search/batch", map[string]interface{}{
		"queries": huge, "k": 3, "lambda": 0.5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", resp.StatusCode)
	}
	// Absurd client-side worker counts are clamped, not honored: the
	// request still succeeds with bounded parallelism.
	resp, _ = postJSON(t, ts.URL+"/search/batch", map[string]interface{}{
		"queries": []map[string]interface{}{{"x": 0.1, "y": 0.2, "vec": ds.Objects[0].Vec}},
		"k":       3, "lambda": 0.5, "workers": 1 << 20,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clamped workers: status %d", resp.StatusCode)
	}
}

func TestSearchRejectsWrongDimVector(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/search", map[string]interface{}{
		"x": 0.1, "y": 0.2, "vec": []float32{1, 2, 3}, "k": 3, "lambda": 0.5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
}
