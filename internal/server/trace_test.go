package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// newTraceTestServer returns the Server alongside its httptest wrapper
// so tests can reconfigure the trace sink.
func newTraceTestServer(t *testing.T) (*Server, *httptest.Server, *cssi.Dataset) {
	t.Helper()
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: cssi.TwitterLike, Size: 500, Dim: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cssi.Build(ds, cssi.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	api := New(idx, ds.Model)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return api, ts, ds
}

func searchBody(ds *cssi.Dataset, i, k int) map[string]interface{} {
	q := ds.Objects[i]
	return map[string]interface{}{"x": q.X, "y": q.Y, "vec": q.Vec, "k": k, "lambda": 0.5}
}

func postSearch(t *testing.T, ts *httptest.Server, body interface{}, header map[string]string) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("search: %s\n%s", resp.Status, b)
	}
	return resp
}

func getTrace(t *testing.T, ts *httptest.Server, id string) (*obs.Trace, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out struct {
		Trace *obs.Trace `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Trace, resp.StatusCode
}

// TestTraceparentRoundTrip sends W3C trace context through /v1/search
// and asserts (a) the response echoes a traceparent continuing the
// caller's trace with this hop's request ID as span ID, and (b) the
// stored trace is retrievable by request ID with the inbound trace ID
// joined and a phase-consistent span tree.
func TestTraceparentRoundTrip(t *testing.T) {
	api, ts, ds := newTraceTestServer(t)
	api.SetTraceOptions(64, -1, 1) // keep every trace, no slow rule

	tid := "0af7651916cd43dd8448eb211c80319c"
	inbound := obs.FormatTraceParent(tid, "b7ad6b7169203331")
	resp := postSearch(t, ts, searchBody(ds, 5, 5), map[string]string{"traceparent": inbound})

	reqID := resp.Header.Get("X-Request-Id")
	if !obs.ValidSpanID(reqID) {
		t.Fatalf("generated request ID %q is not a valid span ID", reqID)
	}
	echo := resp.Header.Get("traceparent")
	gotTID, gotSpan, ok := obs.ParseTraceParent(echo)
	if !ok {
		t.Fatalf("response traceparent %q invalid", echo)
	}
	if gotTID != tid {
		t.Fatalf("response trace ID %q, want caller's %q", gotTID, tid)
	}
	if gotSpan != reqID {
		t.Fatalf("response span ID %q, want request ID %q (the scheme join)", gotSpan, reqID)
	}

	tr, status := getTrace(t, ts, reqID)
	if status != http.StatusOK {
		t.Fatalf("trace fetch by request ID: status %d", status)
	}
	if tr.RequestID != reqID || tr.TraceID != tid {
		t.Fatalf("stored trace ids %q/%q, want %q/%q", tr.RequestID, tr.TraceID, reqID, tid)
	}
	if tr.Op != "search" || tr.K != 5 || len(tr.Shards) == 0 {
		t.Fatalf("trace envelope wrong: op=%q k=%d spans=%d", tr.Op, tr.K, len(tr.Shards))
	}
	if tr.DurationNanos <= 0 {
		t.Fatalf("trace duration %d", tr.DurationNanos)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("stored trace violates phase invariants: %v", err)
	}

	// The same trace is also addressable by its W3C trace ID.
	if byTID, status := getTrace(t, ts, tid); status != http.StatusOK || byTID.RequestID != reqID {
		t.Fatalf("lookup by trace ID: status %d", status)
	}
}

// TestTraceWithoutInboundContext asserts requests without traceparent
// still record a retrievable trace (with a freshly minted trace ID on
// the response header).
func TestTraceWithoutInboundContext(t *testing.T) {
	api, ts, ds := newTraceTestServer(t)
	api.SetTraceOptions(64, -1, 1)

	resp := postSearch(t, ts, searchBody(ds, 1, 3), nil)
	reqID := resp.Header.Get("X-Request-Id")
	echoTID, _, ok := obs.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q invalid", resp.Header.Get("traceparent"))
	}
	tr, status := getTrace(t, ts, reqID)
	if status != http.StatusOK {
		t.Fatalf("trace fetch: status %d", status)
	}
	if tr.TraceID != echoTID {
		t.Fatalf("stored trace ID %q, want minted %q", tr.TraceID, echoTID)
	}
}

func TestDebugTracesList(t *testing.T) {
	api, ts, ds := newTraceTestServer(t)
	api.SetTraceOptions(64, -1, 1)

	var ids []string
	for i := 0; i < 5; i++ {
		resp := postSearch(t, ts, searchBody(ds, i, 3), nil)
		ids = append(ids, resp.Header.Get("X-Request-Id"))
	}

	get := func(url string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	status, body := get(ts.URL + "/v1/debug/traces")
	if status != http.StatusOK {
		t.Fatalf("list: status %d\n%s", status, body)
	}
	var list tracesResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if !list.Enabled || list.Capacity != 64 || list.SampleEvery != 1 {
		t.Fatalf("policy echo wrong: %+v", list)
	}
	if list.Seen != 5 || list.Retained != 5 || len(list.Traces) != 5 {
		t.Fatalf("counts: seen=%d retained=%d listed=%d, want 5/5/5", list.Seen, list.Retained, len(list.Traces))
	}
	// Newest first: the most recent request leads.
	if list.Traces[0].RequestID != ids[4] {
		t.Fatalf("list[0] = %q, want newest %q", list.Traces[0].RequestID, ids[4])
	}
	for _, s := range list.Traces {
		if s.SampleReason != obs.KeepSampled {
			t.Fatalf("trace %s reason %q, want %q", s.RequestID, s.SampleReason, obs.KeepSampled)
		}
	}

	status, body = get(ts.URL + "/v1/debug/traces?limit=2")
	if err := json.Unmarshal(body, &list); err != nil || status != http.StatusOK {
		t.Fatalf("limited list: %d %v", status, err)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(list.Traces))
	}

	if status, _ = get(ts.URL + "/v1/debug/traces?limit=bogus"); status != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d, want 400", status)
	}
	if status, _ = get(ts.URL + "/v1/debug/traces?limit=-1"); status != http.StatusBadRequest {
		t.Fatalf("negative limit: status %d, want 400", status)
	}
}

func TestTracingDisabled(t *testing.T) {
	api, ts, ds := newTraceTestServer(t)
	api.SetTraceOptions(0, 0, 0) // buffer 0 disables tracing entirely

	resp := postSearch(t, ts, searchBody(ds, 0, 3), nil)
	reqID := resp.Header.Get("X-Request-Id")

	listResp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list tracesResponse
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Enabled || len(list.Traces) != 0 {
		t.Fatalf("disabled sink lists %+v", list)
	}
	if _, status := getTrace(t, ts, reqID); status != http.StatusNotFound {
		t.Fatalf("by-id with tracing off: status %d, want 404", status)
	}
}

// TestSlowQueryForensics retains every query via a 1ns slow threshold
// and asserts the offending trace is retrievable by ID and the slow
// query hit the structured log channel with its correlation IDs.
func TestSlowQueryForensics(t *testing.T) {
	api, ts, ds := newTraceTestServer(t)
	var logBuf bytes.Buffer
	var mu sync.Mutex
	api.SetLogger(slog.New(slog.NewJSONHandler(syncWriter{&mu, &logBuf}, nil)))
	api.SetTraceOptions(64, time.Nanosecond, -1) // everything is "slow", no normal sampling

	resp := postSearch(t, ts, searchBody(ds, 2, 4), nil)
	reqID := resp.Header.Get("X-Request-Id")

	tr, status := getTrace(t, ts, reqID)
	if status != http.StatusOK {
		t.Fatalf("slow trace fetch: status %d", status)
	}
	if tr.SampleReason != obs.KeepSlow {
		t.Fatalf("reason %q, want %q", tr.SampleReason, obs.KeepSlow)
	}

	mu.Lock()
	logs := logBuf.String()
	mu.Unlock()
	for _, want := range []string{"slow query", reqID, "spans"} {
		if !bytes.Contains([]byte(logs), []byte(want)) {
			t.Fatalf("slow-query log missing %q:\n%s", want, logs)
		}
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestTracesConcurrent stresses concurrent search traffic against
// /debug/traces readers (run under -race in CI): the lock-free ring and
// sink counters must hold up while writers retain and readers page.
func TestTracesConcurrent(t *testing.T) {
	api, ts, ds := newTraceTestServer(t)
	api.SetTraceOptions(16, -1, 1)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body, _ := json.Marshal(searchBody(ds, (w*25+i)%len(ds.Objects), 3))
				resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Get(ts.URL + "/v1/debug/traces")
				if err != nil {
					t.Errorf("list: %v", err)
					return
				}
				var list tracesResponse
				if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
					t.Errorf("decode: %v", err)
				}
				resp.Body.Close()
				for _, s := range list.Traces {
					if s.RequestID == "" {
						t.Error("listed trace without request ID")
					}
				}
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list tracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Seen != 100 || list.Retained != 100 {
		t.Fatalf("seen=%d retained=%d, want 100/100", list.Seen, list.Retained)
	}
	if len(list.Traces) != 16 {
		t.Fatalf("ring holds %d traces, want capacity 16", len(list.Traces))
	}
}

// TestMetricsExposeSLOAndTraceSeries asserts the new /metrics series:
// per-endpoint SLO counters, shard-imbalance series, trace-sink
// counters, and OpenMetrics exemplar negotiation.
func TestMetricsExposeSLOAndTraceSeries(t *testing.T) {
	api, ts, ds := newTraceTestServer(t)
	api.SetTraceOptions(64, -1, 1)
	if err := api.SetSLOObjectives([]time.Duration{time.Nanosecond, time.Second}); err != nil {
		t.Fatal(err)
	}
	postSearch(t, ts, searchBody(ds, 3, 5), nil)

	get := func(accept string) string {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	plain := get("")
	for _, want := range []string{
		`cssi_slo_requests_total{endpoint="search"} 1`,
		`cssi_slo_violations_total{endpoint="search",objective="1e-09"} 1`,
		`cssi_slo_violations_total{endpoint="search",objective="1"} 0`,
		"cssi_traces_seen_total 1",
		"cssi_traces_retained_total 1",
		"cssi_trace_ring_capacity 64",
		"cssi_shard_imbalance_ratio_bucket",
	} {
		if !bytes.Contains([]byte(plain), []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if bytes.Contains([]byte(plain), []byte("# EOF")) {
		t.Error("plain scrape carries OpenMetrics terminator")
	}

	om := get("application/openmetrics-text")
	if !bytes.Contains([]byte(om), []byte("# EOF")) {
		t.Error("OpenMetrics scrape missing # EOF terminator")
	}
	if !bytes.Contains([]byte(om), []byte("request_id=")) {
		t.Error("OpenMetrics scrape missing latency exemplar")
	}
}

// TestSLOObjectivesValidation pins the knob's error cases.
func TestSLOObjectivesValidation(t *testing.T) {
	api, _, _ := newTraceTestServer(t)
	if err := api.SetSLOObjectives([]time.Duration{5 * time.Millisecond, time.Millisecond}); err == nil {
		t.Error("descending objectives accepted")
	}
	if err := api.SetSLOObjectives([]time.Duration{0}); err == nil {
		t.Error("zero objective accepted")
	}
	if err := api.SetSLOObjectives([]time.Duration{time.Millisecond, 25 * time.Millisecond}); err != nil {
		t.Errorf("valid objectives rejected: %v", err)
	}
}
