package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// newShardedTestServer serves a 4-shard index; the returned flat index
// is an identically built unsharded reference.
func newShardedTestServer(t *testing.T) (*httptest.Server, *cssi.Dataset, *cssi.Index) {
	t.Helper()
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{Kind: cssi.TwitterLike, Size: 600, Dim: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := cssi.Build(ds, cssi.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := cssi.BuildSharded(ds, 4, cssi.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewSharded(sharded, ds.Model).Handler())
	t.Cleanup(ts.Close)
	return ts, ds, flat
}

// A sharded server must answer exact searches bit-identically to an
// unsharded index, and report per-shard stats.
func TestShardedServerSearchAndStats(t *testing.T) {
	ts, ds, flat := newShardedTestServer(t)
	q := ds.Objects[11]
	resp, out := postJSON(t, ts.URL+"/search", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 5, "lambda": 0.5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	var results []struct {
		ID   uint32  `json:"id"`
		Dist float64 `json:"dist"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	want := flat.Search(&q, 5, 0.5)
	if len(results) != len(want) {
		t.Fatalf("%d results, want %d", len(results), len(want))
	}
	for i := range want {
		if results[i].ID != want[i].ID || results[i].Dist != want[i].Dist {
			t.Fatalf("result %d = %+v, want %+v", i, results[i], want[i])
		}
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Objects  int                      `json:"objects"`
		Shards   int                      `json:"shards"`
		PerShard []map[string]interface{} `json:"perShard"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 600 || stats.Shards != 4 || len(stats.PerShard) != 4 {
		t.Fatalf("stats = %+v", stats)
	}
}

// Mutations routed through the sharded server must land on the right
// shard and stay readable.
func TestShardedServerMutations(t *testing.T) {
	ts, ds, _ := newShardedTestServer(t)
	o := ds.Objects[0]
	resp, out := postJSON(t, ts.URL+"/objects", map[string]interface{}{
		"id": 990001, "x": o.X, "y": o.Y, "vec": o.Vec,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert status %d: %v", resp.StatusCode, out)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/objects?id=990001", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// metricValue extracts one sample value from exposition text.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(series)+1:], "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in:\n%s", series, text)
	return 0
}

// /metrics must expose per-endpoint counters, the search latency
// histogram, and per-shard gauges — and they must move when traffic
// flows.
func TestMetricsEndpoint(t *testing.T) {
	ts, ds, _ := newShardedTestServer(t)
	q := ds.Objects[5]

	// One good search, one bad (unknown field -> 400 on decode).
	if resp, _ := postJSON(t, ts.URL+"/search", map[string]interface{}{
		"x": q.X, "y": q.Y, "vec": q.Vec, "k": 3, "lambda": 0.5,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/search", map[string]interface{}{
		"bogus": true,
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad search status %d", resp.StatusCode)
	}

	text := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, `cssi_http_requests_total{endpoint="search"}`); got != 2 {
		t.Fatalf("search requests = %v, want 2", got)
	}
	if got := metricValue(t, text, `cssi_http_request_errors_total{endpoint="search"}`); got != 1 {
		t.Fatalf("search errors = %v, want 1", got)
	}
	if got := metricValue(t, text, "cssi_search_latency_seconds_count"); got != 2 {
		t.Fatalf("latency count = %v, want 2", got)
	}
	if got := metricValue(t, text, "cssi_search_latency_seconds_sum"); got <= 0 {
		t.Fatalf("latency sum = %v, want > 0", got)
	}
	if got := metricValue(t, text, `cssi_search_latency_seconds_bucket{le="+Inf"}`); got != 2 {
		t.Fatalf("+Inf bucket = %v, want 2", got)
	}
	// Bucket series must be cumulative (monotone non-decreasing).
	prev := -1.0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "cssi_search_latency_seconds_bucket{") {
			parts := strings.Fields(line)
			var v float64
			fmt.Sscanf(parts[len(parts)-1], "%g", &v)
			if v < prev {
				t.Fatalf("histogram not cumulative at %q", line)
			}
			prev = v
		}
	}
	// Per-shard gauges: 4 shards, object counts summing to the corpus.
	sum := 0.0
	for i := 0; i < 4; i++ {
		sum += metricValue(t, text, fmt.Sprintf(`cssi_shard_objects{shard="%d"}`, i))
		if age := metricValue(t, text, fmt.Sprintf(`cssi_shard_snapshot_age_seconds{shard="%d"}`, i)); age < 0 {
			t.Fatalf("shard %d snapshot age %v", i, age)
		}
	}
	if sum != 600 {
		t.Fatalf("shard objects sum %v, want 600", sum)
	}
	// A write shrinks the written shard's snapshot age on the next scrape.
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(map[string]interface{}{"id": 990002, "x": 0.5, "y": 0.5, "vec": ds.Objects[1].Vec})
	if resp, err := http.Post(ts.URL+"/objects", "application/json", &buf); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert: %v %v", err, resp.Status)
	}
	text = scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, `cssi_http_requests_total{endpoint="insert"}`); got < 1 {
		t.Fatalf("insert requests = %v", got)
	}
}
