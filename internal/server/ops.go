package server

import (
	"net/http"
	"net/http/pprof"
)

// OpsHandler returns the operational handler tree, intended for a
// SEPARATE listener from the public API (cssiserve's -ops-addr): the
// pprof profiling endpoints plus duplicates of /metrics and /healthz,
// so profiling and scraping work even when the public port is fronted
// by a proxy that should not expose them.
//
//	GET /debug/pprof/            pprof index
//	GET /debug/pprof/profile     CPU profile (?seconds=N)
//	GET /debug/pprof/heap        heap profile (via the index)
//	GET /debug/pprof/cmdline     process command line
//	GET /debug/pprof/symbol      symbol resolution
//	GET /debug/pprof/trace       execution trace (?seconds=N)
//	GET /metrics                 Prometheus metrics (same registry as the API)
//	GET /healthz                 liveness probe
//
// The named profiles (goroutine, heap, allocs, block, mutex,
// threadcreate) are reachable through the pprof index handler.
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	version, goVersion := buildVersionInfo()
	mux.HandleFunc("GET /metrics", s.met.handler(s.idx.ShardStats, version, goVersion))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}
