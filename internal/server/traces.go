package server

import (
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// maxTraceListLimit caps ?limit on /debug/traces; the fetch-by-ID
// endpoint serves full span trees, the list serves summaries.
const maxTraceListLimit = 1000

// traceSummary is one row of GET /debug/traces: the trace envelope
// without the per-shard span bodies (fetch /debug/traces/{id} for the
// full tree).
type traceSummary struct {
	RequestID      string  `json:"requestId"`
	TraceID        string  `json:"traceId,omitempty"`
	Flavor         string  `json:"flavor,omitempty"`
	Op             string  `json:"op,omitempty"`
	Algo           string  `json:"algo"`
	K              int     `json:"k"`
	Lambda         float64 `json:"lambda"`
	Queries        int     `json:"queries,omitempty"`
	Shards         int     `json:"shards"`
	Parallel       bool    `json:"parallel,omitempty"`
	DurationNanos  int64   `json:"durationNanos"`
	GatherNanos    int64   `json:"gatherNanos,omitempty"`
	StartUnixNanos int64   `json:"startUnixNanos,omitempty"`
	SampleReason   string  `json:"sampleReason,omitempty"`
	Error          string  `json:"error,omitempty"`
	Partial        bool    `json:"partial,omitempty"`
}

// tracesResponse is the body of GET /debug/traces.
type tracesResponse struct {
	Enabled bool `json:"enabled"`
	// Policy echo: ring capacity, always-retain threshold, 1-in-N rate.
	Capacity           int   `json:"capacity,omitempty"`
	SlowThresholdNanos int64 `json:"slowThresholdNanos,omitempty"`
	SampleEvery        int   `json:"sampleEvery,omitempty"`
	// Lifetime totals from the tail sampler.
	Seen       uint64 `json:"seen"`
	Retained   uint64 `json:"retained"`
	SampledOut uint64 `json:"sampledOut"`
	// Traces lists retained traces newest-first.
	Traces []traceSummary `json:"traces"`
}

func summarize(t *obs.Trace) traceSummary {
	return traceSummary{
		RequestID:      t.RequestID,
		TraceID:        t.TraceID,
		Flavor:         t.Flavor,
		Op:             t.Op,
		Algo:           t.Algo,
		K:              t.K,
		Lambda:         t.Lambda,
		Queries:        t.Queries,
		Shards:         len(t.Shards),
		Parallel:       t.Parallel,
		DurationNanos:  t.DurationNanos,
		GatherNanos:    t.GatherNanos,
		StartUnixNanos: t.StartUnixNanos,
		SampleReason:   t.SampleReason,
		Error:          t.Error,
		Partial:        t.Partial,
	}
}

// handleTraces lists the retained traces newest-first as summaries,
// with the sampler's policy and lifetime counts. ?limit=N bounds the
// list (default 100, max 1000).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.sink == nil {
		writeJSON(w, http.StatusOK, tracesResponse{Enabled: false, Traces: []traceSummary{}})
		return
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, r, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = min(n, maxTraceListLimit)
	}
	seen, retained, sampledOut := s.sink.Counts()
	traces := s.sink.Ring().Snapshot(limit)
	resp := tracesResponse{
		Enabled:            true,
		Capacity:           s.sink.Ring().Cap(),
		SlowThresholdNanos: s.sink.SlowThreshold().Nanoseconds(),
		SampleEvery:        s.sink.SampleEvery(),
		Seen:               seen,
		Retained:           retained,
		SampledOut:         sampledOut,
		Traces:             make([]traceSummary, len(traces)),
	}
	for i, t := range traces {
		resp.Traces[i] = summarize(t)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceByID serves one retained trace's full span tree, looked
// up by request ID or W3C trace ID.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.sink == nil {
		writeError(w, r, http.StatusNotFound, "tracing disabled")
		return
	}
	id := r.PathValue("id")
	t := s.sink.Ring().Lookup(id)
	if t == nil {
		writeError(w, r, http.StatusNotFound, "no retained trace with id "+id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]*obs.Trace{"trace": t})
}
