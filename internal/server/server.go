// Package server exposes a built CSSI/CSSIA index over HTTP with a small
// JSON API, turning the library into a standalone similarity-search
// service (the downstream-adoption path: build or load an index, then
// `cssiserve` it).
//
// Endpoints:
//
//	GET  /healthz             liveness probe
//	GET  /stats               index statistics
//	POST /search              k-NN query (exact or approximate)
//	POST /search/batch        many k-NN queries in one request
//	POST /range               range query
//	POST /box                 windowed semantic k-NN
//	POST /objects             insert an object
//	PUT  /objects             update an object
//	DELETE /objects?id=N      delete an object
//	POST /rebuild             non-blocking index rebuild (?wait=1 blocks)
//	POST /debug/explain       k-NN query with a per-shard explain trace
//	GET  /debug/traces        recently retained request traces (tail-sampled)
//	GET  /debug/traces/{id}   one trace by request ID or W3C trace ID
//	GET  /metrics             Prometheus text-format metrics
//
// Every endpoint is also served under the versioned /v1/ prefix
// (/v1/search, /v1/search/batch, ...) — the stable API surface; the
// unversioned paths above are permanent aliases with byte-identical
// bodies. Every non-2xx response (the router's own 404/405 included)
// carries one JSON error envelope:
//
//	{"error": {"code": "bad_request", "message": "...", "request_id": "..."}}
//
// Queries carry either an explicit embedding vector or free text (encoded
// with the dataset's embedding model when one is attached). The server is
// built on the sharded scatter/gather index: reads fan out to every
// shard's lock-free snapshot and merge, writes route to exactly one
// shard's clone-and-publish cycle, and /rebuild reconstructs all shards
// in parallel in the background without stalling either. A single
// unsharded index serves through the same path as one shard
// (cssi.ShardedFrom), with identical exact results either way.
//
// Every request carries a request ID (X-Request-Id, honored inbound,
// generated otherwise, always echoed in the response); the structured
// request log and the /debug/explain trace both carry it, so one slow
// query can be chased from the access log into its per-shard spans.
//
// Tracing is always on: every query records a compact span tree into a
// lock-free ring, the tail sampler retains every slow, errored, or
// partial trace plus a deterministic 1-in-N of normal traffic, and
// retained traces are served at /debug/traces. W3C trace context is
// honored on every route — an inbound traceparent's trace ID joins the
// stored trace, and the response echoes a traceparent for the next hop.
// Slow queries are additionally emitted on a structured slog channel
// with their full span tree, and /metrics carries an SLO block
// (per-endpoint latency-objective counters), a shard-imbalance
// histogram, and — for OpenMetrics scrapes — latency-histogram
// exemplars pointing at recent trace IDs.
//
// Serving under load: every query response carries a uniform "meta"
// block ({"partial","cacheHit","requestId",...}); query requests may
// set "deadlineMs" (exhausting the budget returns the exact top-k of
// the work done so far with meta.partial=true) and "cache" ("on"/
// "off") to steer the optional snapshot-keyed result cache
// (EnableResultCache / cssiserve -cache). With admission control
// enabled (SetAdmissionLimits / -max-inflight,-max-queue,-queue-wait)
// each query endpoint runs behind a bounded queue and sheds the excess
// with 429 + Retry-After, keeping admitted-request latency bounded
// past saturation; /metrics grows admission and result-cache blocks.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/embed"
	"repro/internal/obs"
)

// Server wraps a sharded index and its optional embedding model.
type Server struct {
	idx   *cssi.ShardedIndex
	model *embed.Model // may be nil: text queries then return an error
	met   *metrics
	log   *slog.Logger

	// sink is the always-on tail-sampling trace collector — created
	// with defaults by NewSharded, reconfigured or disabled via
	// SetTraceOptions — that /debug/traces reads and the slow-query
	// log channel feeds from.
	sink *obs.Sink

	// routeDefault turns the learned cluster router on for every /search,
	// /search/batch and /debug/explain request that does not set "route"
	// itself; routeTargetDefault fills a missing "routeTarget". Set via
	// SetRouteDefaults (the cssiserve -route/-route-target flags).
	routeDefault       bool
	routeTargetDefault float64

	// admit sizes the per-endpoint admission gates Handler installs on
	// the query endpoints (nil = no admission control, the default);
	// gates holds the installed gates for the /metrics sampler. Set via
	// SetAdmissionLimits.
	admit *admissionConfig
	gates []*admissionGate

	// defaultDeadline is the time budget given to query requests that
	// omit deadlineMs (0 = unbounded, the default). Set via
	// SetDefaultDeadline.
	defaultDeadline time.Duration
}

// SetRouteDefaults sets the server-wide routing defaults: with route
// true every query request engages the learned cluster router unless
// it explicitly carries "route":false (and a request can still opt in
// with "route":true when the default is off). target fills requests
// that omit or zero "routeTarget" (0 keeps the library default). Call
// before Handler.
func (s *Server) SetRouteDefaults(route bool, target float64) {
	s.routeDefault = route
	s.routeTargetDefault = target
}

// SetDeltaDefaults sets the write-overlay compaction threshold on every
// shard: positive bounds each shard's overlay at that many write ops
// before a background compaction folds it, 0 keeps the library default
// (cssi.DefaultDeltaCompactThreshold), and -1 disables the overlay so
// every write pays an eager clone. Returns
// cssi.ErrInvalidDeltaThreshold for values below -1. Call before
// Handler.
func (s *Server) SetDeltaDefaults(threshold int) error {
	return s.idx.SetDeltaThreshold(threshold)
}

// New returns a Server over a single unsharded index, served as one
// shard (fully equivalent for exact queries). model may be nil if
// clients always send explicit vectors. The index is owned by the
// server afterwards: all mutations must go through its API.
func New(idx *cssi.Index, model *embed.Model) *Server {
	return NewSharded(cssi.ShardedFrom(idx), model)
}

// NewSharded returns a Server over a sharded index. The keyword filter
// is enabled on every shard so the /keyword-search endpoint works out
// of the box. The index is owned by the server afterwards.
func NewSharded(idx *cssi.ShardedIndex, model *embed.Model) *Server {
	if !idx.KeywordFilterEnabled() {
		idx.EnableKeywordFilter()
	}
	s := &Server{idx: idx, model: model, met: newMetrics(), log: slog.Default()}
	// Feed every shard's overlay compactions into the latency histogram
	// (compactions run on background goroutines; the histogram is
	// atomic, so the concurrent observer calls are safe).
	idx.SetCompactionObserver(s.met.compactionDuration.observeDuration)
	// Tracing is always-on by default: every Do records a span tree and
	// the tail sampler retains the slow/errored/partial traces plus a
	// deterministic 1-in-N of normal traffic. SetTraceOptions(0, ...)
	// opts out.
	s.installSink(obs.NewSink(obs.SinkConfig{}))
	return s
}

// installSink wires sink into the index, the slow-query log channel,
// and the shard-imbalance metrics (nil uninstalls tracing entirely).
func (s *Server) installSink(sink *obs.Sink) {
	s.sink = sink
	s.met.sink = sink
	if sink == nil {
		s.idx.SetTraceSink(nil)
		return
	}
	sink.SetObserver(s.met.observeTrace)
	sink.SetSlowHandler(s.logOffendingTrace)
	s.idx.SetTraceSink(sink)
}

// SetTraceOptions reconfigures the always-on tracer: bufferSize is the
// retained-trace ring capacity (≤ 0 disables tracing entirely), slow
// the latency at which a trace is always retained and logged (0 keeps
// the 100ms default, negative disables the slow rule), and sampleEvery
// the deterministic 1-in-N normal-traffic sample (0 keeps the default
// 128, negative keeps only slow/errored/partial traces). Call before
// Handler.
func (s *Server) SetTraceOptions(bufferSize int, slow time.Duration, sampleEvery int) {
	if bufferSize <= 0 {
		s.installSink(nil)
		return
	}
	s.installSink(obs.NewSink(obs.SinkConfig{
		BufferSize:    bufferSize,
		SlowThreshold: slow,
		SampleEvery:   sampleEvery,
	}))
}

// SetSLOObjectives replaces the per-endpoint latency objectives the
// /metrics SLO block counts against (default 5ms/25ms/100ms). Bounds
// must be positive and ascending. Call before Handler.
func (s *Server) SetSLOObjectives(objectives []time.Duration) error {
	return s.met.setSLOBounds(objectives)
}

// logOffendingTrace is the structured slow-query log channel: every
// slow, errored, or partial trace the tail sampler retains is emitted
// with its full span tree, so the forensic loop works from the log
// alone (the same trace stays retrievable at /debug/traces/<id>).
func (s *Server) logOffendingTrace(t *obs.Trace) {
	spans, _ := json.Marshal(t.Shards)
	s.log.Warn("slow query",
		"requestId", t.RequestID,
		"traceId", t.TraceID,
		"reason", t.SampleReason,
		"op", t.Op,
		"algo", t.Algo,
		"flavor", t.Flavor,
		"k", t.K,
		"lambda", t.Lambda,
		"queries", t.Queries,
		"durationMs", float64(t.DurationNanos)/1e6,
		"gatherUs", float64(t.GatherNanos)/1e3,
		"error", t.Error,
		"spans", string(spans),
	)
}

// SetLogger replaces the server's structured logger (default
// slog.Default). Call before Handler; the logger is read by the
// request middleware on every request.
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.log = l
	}
}

// ctxKeyRequestID keys the per-request ID in the request context.
type ctxKeyRequestID struct{}

// ctxKeyTraceID keys the W3C trace ID in the request context.
type ctxKeyTraceID struct{}

// requestIDFrom extracts the middleware-assigned request ID, or ""
// when the handler runs outside the middleware (direct tests).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID{}).(string)
	return id
}

// traceIDFrom extracts the middleware-assigned W3C trace ID, or ""
// when the handler runs outside the middleware (direct tests).
func traceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyTraceID{}).(string)
	return id
}

// buildVersionInfo reads the module version and Go toolchain version
// for cssi_build_info. The module version is "(devel)" for plain
// `go build` working-tree builds.
func buildVersionInfo() (version, goVersion string) {
	version, goVersion = "unknown", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	return version, goVersion
}

// withRequestID is the outermost middleware: it assigns every request
// an ID (honoring an inbound X-Request-Id so traces correlate across
// services), echoes it on the response, and emits one Debug-level
// structured log line per request. Debug level keeps production and
// test output quiet by default; run cssiserve with -log-level=debug
// for an access log.
//
// It also speaks W3C trace context: an inbound traceparent header is
// parsed and its trace ID joined to the request (so the stored trace
// is retrievable by the caller's own distributed trace ID), a fresh
// trace ID is minted otherwise, and the response echoes a traceparent
// whose span ID is this server's request ID — tying the two
// correlation schemes together.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewRequestID()
		}
		traceID, parentSpan, ok := obs.ParseTraceParent(r.Header.Get("traceparent"))
		if !ok {
			traceID = obs.NewTraceID()
		}
		// The request ID doubles as this hop's span ID when it has the
		// right shape; an honored inbound X-Request-Id of another format
		// gets a fresh span ID so the echoed traceparent stays valid.
		spanID := id
		if !obs.ValidSpanID(spanID) {
			spanID = obs.NewSpanID()
		}
		w.Header().Set("X-Request-Id", id)
		w.Header().Set("traceparent", obs.FormatTraceParent(traceID, spanID))
		ctx := context.WithValue(r.Context(), ctxKeyRequestID{}, id)
		ctx = context.WithValue(ctx, ctxKeyTraceID{}, traceID)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		s.log.Debug("http request",
			"requestId", id,
			"traceId", traceID,
			"parentSpan", parentSpan,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"durationUs", time.Since(start).Microseconds(),
		)
	})
}

// Handler returns the HTTP handler tree. Every route is registered
// twice — under the versioned /v1/ prefix (the stable API surface) and
// at its historical unversioned path (a permanent alias for existing
// clients). Both registrations share one instrumented handler, so the
// success bodies are byte-identical and the per-endpoint counters
// aggregate across both spellings. Every endpoint — the metrics scrape
// included — is wrapped with request/error counting; query endpoints
// additionally feed the search latency histogram and mutation
// endpoints the mutation latency histogram. The whole tree sits behind
// the error-envelope middleware (so the router's own 404/405 responses
// come out in the JSON envelope) and the request-ID/logging middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Query endpoints sit behind an admission gate when one is
	// configured (gate inside the instrumentation so shed 429s land in
	// the endpoint's request/error counters and latency histogram).
	s.gates = nil
	query := func(name string, h http.HandlerFunc) http.HandlerFunc {
		if s.admit != nil {
			g := newGate(name, s.admit)
			s.gates = append(s.gates, g)
			h = s.admitted(g, h)
		}
		return s.met.instrument(name, kindQuery, h)
	}
	plain := func(name string, h http.HandlerFunc) http.HandlerFunc { return s.met.instrument(name, kindPlain, h) }
	mutation := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return s.met.instrument(name, kindMutation, h)
	}
	// both registers one handler at its legacy unversioned route and the
	// matching /v1 route. pattern is "METHOD /path".
	both := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, h)
		method, path, _ := strings.Cut(pattern, " ")
		mux.HandleFunc(method+" /v1"+path, h)
	}
	both("GET /healthz", plain("healthz", s.handleHealth))
	both("GET /stats", plain("stats", s.handleStats))
	both("POST /search", query("search", s.handleSearch))
	both("POST /search/batch", query("search_batch", s.handleSearchBatch))
	both("POST /keyword-search", query("keyword_search", s.handleKeywordSearch))
	both("POST /range", query("range", s.handleRange))
	both("POST /box", query("box", s.handleBox))
	both("POST /debug/explain", query("explain", s.handleExplain))
	both("POST /objects", mutation("insert", s.handleInsert))
	both("PUT /objects", mutation("update", s.handleUpdate))
	both("DELETE /objects", mutation("delete", s.handleDelete))
	both("POST /rebuild", plain("rebuild", s.handleRebuild))
	both("GET /debug/traces", plain("traces", s.handleTraces))
	both("GET /debug/traces/{id}", plain("trace_get", s.handleTraceByID))
	version, goVersion := buildVersionInfo()
	// The metrics scrape samples the admission gates and the result
	// cache live (both nil-tolerant: the blocks only appear once the
	// features are enabled).
	if len(s.gates) > 0 {
		s.met.admissionStats = s.gateStats
	}
	s.met.cacheStats = s.idx.ResultCacheStats
	both("GET /metrics", plain("metrics", s.met.handler(s.idx.ShardStats, version, goVersion)))
	return s.withRequestID(withErrorEnvelope(mux))
}

// gateStats samples every admission gate for the metrics scrape.
func (s *Server) gateStats() []gateStat {
	out := make([]gateStat, len(s.gates))
	for i, g := range s.gates {
		out[i] = g.stat()
	}
	return out
}

// queryRequest is the shared request body of the query endpoints.
type queryRequest struct {
	X      float64   `json:"x"`
	Y      float64   `json:"y"`
	Text   string    `json:"text,omitempty"`
	Vec    []float32 `json:"vec,omitempty"`
	K      int       `json:"k,omitempty"`
	Lambda float64   `json:"lambda"`
	Radius float64   `json:"radius,omitempty"` // /range only
	Approx bool      `json:"approx,omitempty"` // /search only
	// Route engages the learned cluster router (/search and
	// /debug/explain): exact requests keep bit-identical results with a
	// reordered cluster scan, approximate requests switch to the routed
	// recall-targeted mode. A pointer so an absent field falls back to
	// the server's -route default while "route":false still opts out.
	Route *bool `json:"route,omitempty"`
	// RouteTarget is the routed approximate mode's recall knob in (0,1];
	// 0 falls back to the server default, then the library default.
	RouteTarget float64 `json:"routeTarget,omitempty"`
	// Keywords are the required terms of /keyword-search (boolean AND).
	Keywords []string `json:"keywords,omitempty"`
	// Box window (/box only).
	LoX float64 `json:"loX,omitempty"`
	LoY float64 `json:"loY,omitempty"`
	HiX float64 `json:"hiX,omitempty"`
	HiY float64 `json:"hiY,omitempty"`
	// DeadlineMs is the request's time budget in milliseconds (/search,
	// /search/batch, /keyword-search, /debug/explain): 0 falls back to
	// the server's -deadline default, then unbounded. A request that
	// exhausts its budget answers with the exact top-k of the candidates
	// examined so far and meta.partial=true instead of running long.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
	// Cache selects result-cache participation: "" follows the server
	// default (the cache, when -cache enabled it), "on" asks explicitly,
	// "off" bypasses the cache for this request.
	Cache string `json:"cache,omitempty"`
}

// resultItem is one answer row.
type resultItem struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Text string  `json:"text,omitempty"`
}

type queryResponse struct {
	Results []resultItem `json:"results"`
	Visited int64        `json:"visited"`
	Meta    *respMeta    `json:"meta,omitempty"`
}

// respMeta is the uniform response metadata block every query endpoint
// returns: what the serving machinery did to the request, surfaced so
// clients can tell a complete answer from a deadline-truncated one and
// a cached answer from a computed one.
type respMeta struct {
	// RequestID echoes the request's X-Request-Id (the same ID the error
	// envelope, access log, and retained traces carry).
	RequestID string `json:"requestId"`
	// Partial reports the answer was truncated by the request's time
	// budget: the results are the exact top-k of the candidates examined
	// before the deadline fired, but more may exist.
	Partial bool `json:"partial"`
	// CacheHit reports the answer was served from the result cache
	// (bit-identical to the uncached answer by construction).
	CacheHit bool `json:"cacheHit"`
	// SnapshotID identifies the index publication the answer was
	// computed against (monotone per serving process; 0 for endpoints
	// that bypass the snapshot machinery).
	SnapshotID uint64 `json:"snapshotId,omitempty"`
	// QueueWaitMs is the time the request spent queued at the admission
	// gate before executing (absent when admitted immediately).
	QueueWaitMs float64 `json:"queueWaitMs,omitempty"`
}

// respMetaFrom assembles the meta block from the index-filled
// ResponseMeta (nil for endpoints that bypass Do) and the request
// context's admission queue wait.
func (s *Server) respMetaFrom(r *http.Request, m *cssi.ResponseMeta) *respMeta {
	out := &respMeta{RequestID: requestIDFrom(r.Context())}
	if m != nil {
		out.Partial, out.CacheHit, out.SnapshotID = m.Partial, m.CacheHit, m.SnapshotID
	}
	if wait := queueWaitFrom(r.Context()); wait > 0 {
		out.QueueWaitMs = float64(wait.Nanoseconds()) / 1e6
	}
	return out
}

// queryBudget resolves a request's deadlineMs against the server
// default.
func (s *Server) queryBudget(ms int64) (time.Duration, error) {
	if ms < 0 {
		return 0, fmt.Errorf("deadlineMs must be >= 0, got %d", ms)
	}
	if ms == 0 {
		return s.defaultDeadline, nil
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// cacheModeFrom parses the request's cache field.
func cacheModeFrom(c string) (cssi.CacheMode, error) {
	switch c {
	case "":
		return cssi.CacheDefault, nil
	case "on":
		return cssi.CacheOn, nil
	case "off":
		return cssi.CacheOff, nil
	}
	return cssi.CacheDefault, fmt.Errorf(`cache must be "on" or "off", got %q`, c)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	shardStats := s.idx.ShardStats()
	shards := make([]map[string]interface{}, len(shardStats))
	for i, st := range shardStats {
		shards[i] = map[string]interface{}{
			"objects":           st.Objects,
			"hybridClusters":    st.Clusters,
			"updatesSinceBuild": st.UpdatesSinceBuild,
			"deltaOps":          st.DeltaOps,
			"compactions":       st.Compactions,
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"objects":           s.idx.Len(),
		"hybridClusters":    s.idx.NumClusters(),
		"updatesSinceBuild": s.idx.UpdatesSinceBuild(),
		"shards":            len(shardStats),
		"perShard":          shards,
	})
}

// buildQuery turns a request into a query object, encoding text when no
// vector is given.
func (s *Server) buildQuery(req *queryRequest) (*cssi.Object, error) {
	vec := req.Vec
	if vec == nil {
		if req.Text == "" {
			return nil, fmt.Errorf("request needs either vec or text")
		}
		if s.model == nil {
			return nil, fmt.Errorf("server has no embedding model; send an explicit vec")
		}
		v, ok := s.model.EncodeDocument(req.Text)
		if !ok {
			return nil, fmt.Errorf("text has fewer than 3 in-vocabulary words")
		}
		vec = v
	}
	// Reject wrong-length vectors here so a malformed request becomes a
	// 400 instead of a panic inside the search hot path.
	if len(vec) != s.idx.Dim() {
		return nil, fmt.Errorf("vector dim %d, index expects %d", len(vec), s.idx.Dim())
	}
	return &cssi.Object{ID: 1<<32 - 1, X: req.X, Y: req.Y, Text: req.Text, Vec: vec}, nil
}

// routeKnobs resolves a request's routing fields against the server
// defaults.
func (s *Server) routeKnobs(route *bool, target float64) (bool, float64) {
	on := s.routeDefault
	if route != nil {
		on = *route
	}
	if target == 0 {
		target = s.routeTargetDefault
	}
	return on, target
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.Lambda < 0 || req.Lambda > 1 {
		writeError(w, r, http.StatusBadRequest, "lambda must be in [0,1]")
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	budget, err := s.queryBudget(req.DeadlineMs)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	cacheMode, err := cacheModeFrom(req.Cache)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	// The scatter pins one immutable snapshot per shard; the metadata
	// decoration afterwards resolves each result ID on its owning shard.
	route, target := s.routeKnobs(req.Route, req.RouteTarget)
	var st cssi.Stats
	var meta cssi.ResponseMeta
	rs, err := s.idx.DoContext(r.Context(), cssi.SearchRequest{
		Query: q, K: req.K, Lambda: req.Lambda, Approx: req.Approx,
		Route: route, RouteTarget: target, Stats: &st,
		Deadline: budget, Cache: cacheMode, Meta: &meta,
		RequestID: requestIDFrom(r.Context()), TraceID: traceIDFrom(r.Context()),
	})
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	s.met.observeSearchStats(&st)
	resp := s.respond(rs, &st)
	resp.Meta = s.respMetaFrom(r, &meta)
	writeJSON(w, http.StatusOK, resp)
}

// explainResponse is the body of /debug/explain: the same k-NN answer
// /search returns plus the per-shard trace.
type explainResponse struct {
	Results []resultItem      `json:"results"`
	Trace   *cssi.SearchTrace `json:"trace"`
	Meta    *respMeta         `json:"meta,omitempty"`
}

// handleExplain answers one k-NN query exactly like /search (the exact
// results are bit-identical) and attaches the per-query explain trace:
// one span per shard with objects scanned vs pruned, prune ratios, and
// span wall time, stamped with the request's ID.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.Lambda < 0 || req.Lambda > 1 {
		writeError(w, r, http.StatusBadRequest, "lambda must be in [0,1]")
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	budget, err := s.queryBudget(req.DeadlineMs)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	route, target := s.routeKnobs(req.Route, req.RouteTarget)
	var trace cssi.SearchTrace
	var meta cssi.ResponseMeta
	// Explain requests never touch the result cache (a cached answer has
	// no per-shard trace to attach), so the cache field is ignored here.
	rs, err := s.idx.DoContext(r.Context(), cssi.SearchRequest{
		Query: q, K: req.K, Lambda: req.Lambda, Approx: req.Approx,
		Route: route, RouteTarget: target,
		Deadline: budget, Meta: &meta,
		Trace: &trace, RequestID: requestIDFrom(r.Context()), TraceID: traceIDFrom(r.Context()),
	})
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	s.met.observeSearchStats(&trace.Total.Stats)
	writeJSON(w, http.StatusOK, explainResponse{
		Results: s.respond(rs, &trace.Total.Stats).Results,
		Trace:   &trace,
		Meta:    s.respMetaFrom(r, &meta),
	})
}

// batchRequest is the body of /search/batch: shared k/lambda/approx and
// one entry per query (each needing only coordinates plus vec or text).
type batchRequest struct {
	Queries []queryRequest `json:"queries"`
	K       int            `json:"k,omitempty"`
	Lambda  float64        `json:"lambda"`
	Approx  bool           `json:"approx,omitempty"`
	// Route and RouteTarget engage the learned cluster router for every
	// query of the batch, with the same fallback-to-server-default
	// semantics as the /search fields.
	Route       *bool   `json:"route,omitempty"`
	RouteTarget float64 `json:"routeTarget,omitempty"`
	// Workers bounds the worker pool (0 = GOMAXPROCS). The server clamps
	// it to GOMAXPROCS regardless, so a client cannot request goroutine
	// amplification.
	Workers int `json:"workers,omitempty"`
	// DeadlineMs and Cache carry the /search semantics for the whole
	// batch: the budget covers the batch end to end (meta.partial
	// reports any query truncated), and the cache is probed per query —
	// only the misses execute.
	DeadlineMs int64  `json:"deadlineMs,omitempty"`
	Cache      string `json:"cache,omitempty"`
}

// maxBatchQueries caps the number of queries one /search/batch request
// may carry; larger workloads should be split client-side. Together with
// the Workers clamp this bounds the per-request goroutine count and
// keeps a single malicious POST from monopolizing the CPU.
const maxBatchQueries = 4096

type batchResponse struct {
	Results [][]resultItem `json:"results"`
	Visited int64          `json:"visited"`
	Meta    *respMeta      `json:"meta,omitempty"`
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.Lambda < 0 || req.Lambda > 1 {
		writeError(w, r, http.StatusBadRequest, "lambda must be in [0,1]")
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, r, http.StatusBadRequest, "queries required")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, r, http.StatusBadRequest,
			fmt.Sprintf("batch of %d queries exceeds the maximum of %d", len(req.Queries), maxBatchQueries))
		return
	}
	// Client-supplied parallelism is a hint, never an amplification
	// vector: clamp to the machine's GOMAXPROCS (<= 0 already selects
	// GOMAXPROCS downstream).
	if maxW := runtime.GOMAXPROCS(0); req.Workers > maxW {
		req.Workers = maxW
	}
	queries := make([]cssi.Object, len(req.Queries))
	for i := range req.Queries {
		q, err := s.buildQuery(&req.Queries[i])
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		queries[i] = *q
	}
	budget, err := s.queryBudget(req.DeadlineMs)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	cacheMode, err := cacheModeFrom(req.Cache)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	route, target := s.routeKnobs(req.Route, req.RouteTarget)
	var st cssi.Stats
	var meta cssi.ResponseMeta
	batches, err := s.idx.DoBatchContext(r.Context(), cssi.BatchSearchRequest{
		Queries: queries, K: req.K, Lambda: req.Lambda,
		Approx: req.Approx, Route: route, RouteTarget: target,
		Parallelism: req.Workers, Stats: &st,
		Deadline: budget, Cache: cacheMode, Meta: &meta,
		RequestID: requestIDFrom(r.Context()), TraceID: traceIDFrom(r.Context()),
	})
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	s.met.observeSearchStats(&st)
	resp := batchResponse{Results: make([][]resultItem, len(batches)), Visited: st.VisitedObjects,
		Meta: s.respMetaFrom(r, &meta)}
	for i, rs := range batches {
		resp.Results[i] = s.respond(rs, &st).Results
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleKeywordSearch(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.Lambda < 0 || req.Lambda > 1 {
		writeError(w, r, http.StatusBadRequest, "lambda must be in [0,1]")
		return
	}
	if len(req.Keywords) == 0 {
		writeError(w, r, http.StatusBadRequest, "keywords required")
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	budget, err := s.queryBudget(req.DeadlineMs)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	cacheMode, err := cacheModeFrom(req.Cache)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	var meta cssi.ResponseMeta
	rs, err := s.idx.DoContext(r.Context(), cssi.SearchRequest{
		Query: q, K: req.K, Lambda: req.Lambda, Keywords: req.Keywords,
		Deadline: budget, Cache: cacheMode, Meta: &meta,
		RequestID: requestIDFrom(r.Context()), TraceID: traceIDFrom(r.Context()),
	})
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "keywords unusable (stop words only?)")
		return
	}
	var st cssi.Stats
	resp := s.respond(rs, &st)
	resp.Meta = s.respMetaFrom(r, &meta)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Radius < 0 {
		writeError(w, r, http.StatusBadRequest, "radius must be >= 0")
		return
	}
	if req.Lambda < 0 || req.Lambda > 1 {
		writeError(w, r, http.StatusBadRequest, "lambda must be in [0,1]")
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	var st cssi.Stats
	rs := s.idx.RangeSearchStats(q, req.Radius, req.Lambda, &st)
	resp := s.respond(rs, &st)
	resp.Meta = s.respMetaFrom(r, nil)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBox(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.LoX > req.HiX || req.LoY > req.HiY {
		writeError(w, r, http.StatusBadRequest, "inverted window")
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	var st cssi.Stats
	rs := s.idx.SearchInBoxStats(q, req.LoX, req.LoY, req.HiX, req.HiY, req.K, &st)
	resp := s.respond(rs, &st)
	resp.Meta = s.respMetaFrom(r, nil)
	writeJSON(w, http.StatusOK, resp)
}

// respond decorates results with object metadata, each ID resolved on
// its owning shard. A result whose object was deleted between the
// search and the decoration keeps its ID and distance with empty
// metadata — the same behavior the single-snapshot server had for
// IDs that missed.
func (s *Server) respond(rs []cssi.Result, st *cssi.Stats) queryResponse {
	resp := queryResponse{Results: make([]resultItem, len(rs)), Visited: st.VisitedObjects}
	for i, r := range rs {
		item := resultItem{ID: r.ID, Dist: r.Dist}
		if o, ok := s.idx.Object(r.ID); ok {
			item.X, item.Y, item.Text = o.X, o.Y, o.Text
		}
		resp.Results[i] = item
	}
	return resp
}

// objectRequest is the insert/update body.
type objectRequest struct {
	ID   uint32    `json:"id"`
	X    float64   `json:"x"`
	Y    float64   `json:"y"`
	Text string    `json:"text,omitempty"`
	Vec  []float32 `json:"vec,omitempty"`
}

func (s *Server) buildObject(req *objectRequest) (cssi.Object, error) {
	vec := req.Vec
	if vec == nil {
		if req.Text == "" || s.model == nil {
			return cssi.Object{}, fmt.Errorf("object needs vec, or text plus a server-side model")
		}
		v, ok := s.model.EncodeDocument(req.Text)
		if !ok {
			return cssi.Object{}, fmt.Errorf("text has fewer than 3 in-vocabulary words")
		}
		vec = v
	}
	if dim := s.idx.Dim(); len(vec) != dim {
		return cssi.Object{}, fmt.Errorf("vector dim %d, index expects %d", len(vec), dim)
	}
	return cssi.Object{ID: req.ID, X: req.X, Y: req.Y, Text: req.Text, Vec: vec}, nil
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req objectRequest
	if !decode(w, r, &req) {
		return
	}
	o, err := s.buildObject(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	err = s.idx.Insert(o)
	if err != nil {
		writeError(w, r, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint32{"id": o.ID})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req objectRequest
	if !decode(w, r, &req) {
		return
	}
	o, err := s.buildObject(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	err = s.idx.Update(o)
	if err != nil {
		writeError(w, r, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint32{"id": o.ID})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "missing or invalid id")
		return
	}
	err = s.idx.Delete(uint32(id))
	if err != nil {
		writeError(w, r, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"deleted": id})
}

// handleRebuild starts a background rebuild (non-blocking: readers and
// writers stay available throughout; mutations landing mid-rebuild are
// replayed before the fresh index is published). With ?wait=1 the
// response is deferred until the rebuild completes.
func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	inner, err := s.idx.RebuildInBackground()
	if err != nil {
		writeError(w, r, http.StatusConflict, err.Error())
		return
	}
	// Observe the rebuild duration whether or not the client waits: the
	// outcome is forwarded through a fresh channel so the ?wait=1 path
	// still receives it exactly once.
	requestID := requestIDFrom(r.Context())
	done := make(chan error, 1)
	go func() {
		err := <-inner
		s.met.rebuildDuration.observeDuration(time.Since(start))
		if err != nil {
			s.log.Error("rebuild failed", "requestId", requestID, "error", err)
		} else {
			s.log.Info("rebuild complete", "requestId", requestID,
				"durationMs", time.Since(start).Milliseconds(), "objects", s.idx.Len())
		}
		done <- err
	}()
	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "rebuilding"})
		return
	}
	if err := <-done; err != nil {
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":  "rebuilt",
		"objects": s.idx.Len(),
	})
}

func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the one JSON error envelope every non-2xx response
// carries — handler-raised and router-raised (404/405) alike — so
// clients parse a single shape: {"error":{"code","message","request_id"}}.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	// Code is a stable machine-readable slug derived from the HTTP
	// status (bad_request, not_found, method_not_allowed, conflict,
	// internal, ...).
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
	// RequestID echoes the request's X-Request-Id so the failure can be
	// chased into the structured log.
	RequestID string `json:"request_id"`
}

// errorCode maps an HTTP status to its envelope code slug.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return strings.ToLower(strings.ReplaceAll(http.StatusText(status), " ", "_"))
	}
}

func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	id := ""
	if r != nil {
		id = requestIDFrom(r.Context())
	}
	writeJSON(w, status, errorBody{Error: errorDetail{
		Code:      errorCode(status),
		Message:   msg,
		RequestID: id,
	}})
}

// envelopeWriter rewrites the router's own plain-text error responses
// (404 unknown route, 405 method mismatch — written by ServeMux, not by
// any handler) into the JSON error envelope. Handler-raised errors pass
// through untouched: they already carry the envelope and are recognized
// by their application/json content type.
type envelopeWriter struct {
	http.ResponseWriter
	r           *http.Request
	intercepted bool
}

func (w *envelopeWriter) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.intercepted = true
		msg := "no such route: " + w.r.URL.Path
		if status == http.StatusMethodNotAllowed {
			msg = w.r.Method + " not allowed on " + w.r.URL.Path
		}
		w.Header().Del("Content-Type")
		w.Header().Del("X-Content-Type-Options")
		writeError(w.ResponseWriter, w.r, status, msg)
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if w.intercepted {
		// Swallow the router's plain-text body; the envelope is written.
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

// withErrorEnvelope wraps the router so its built-in 404/405 responses
// come out in the JSON error envelope like every handler error.
func withErrorEnvelope(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w, r: r}, r)
	})
}
