// Package keyword provides an inverted index over object texts for
// boolean keyword filtering. The paper positions CSSI against classic
// spatial-keyword search (§2), which matches query keywords exactly;
// combining the two — exact containment of required terms plus semantic
// ranking of the survivors — is a natural hybrid this package enables
// (used by Index.SearchWithKeywords in the public API).
package keyword

import (
	"sort"

	"repro/internal/text"
)

// Filter is an inverted index from token to the sorted list of object
// IDs whose text contains it.
//
// Mutations are copy-on-write at the posting-list level: Add and Remove
// install freshly built lists instead of editing in place. Combined
// with Clone (which copies only the map directory and shares the
// lists), this lets a snapshot-publishing writer mutate its clone while
// readers of earlier clones keep scanning the original lists — the same
// discipline the core index uses for its cluster arrays. The asymptotic
// cost is unchanged: the old in-place insert/delete already shifted the
// list's tail, so both paths are O(len) per touched term.
type Filter struct {
	postings map[string][]uint32
	total    int
}

// Clone returns a filter that shares every posting list with f but owns
// its directory, so Add/Remove on the clone never affect f.
func (f *Filter) Clone() *Filter {
	nf := &Filter{postings: make(map[string][]uint32, len(f.postings)), total: f.total}
	for tok, list := range f.postings {
		nf.postings[tok] = list
	}
	return nf
}

// Build tokenizes every (id, text) pair and constructs the postings.
// Tokens are normalized exactly like query keywords (lower-cased,
// stop-words dropped).
func Build(ids []uint32, texts []string) *Filter {
	f := &Filter{postings: make(map[string][]uint32), total: len(ids)}
	for i, id := range ids {
		seen := map[string]struct{}{}
		for _, tok := range text.Tokenize(texts[i]) {
			if _, dup := seen[tok]; dup {
				continue
			}
			seen[tok] = struct{}{}
			f.postings[tok] = append(f.postings[tok], id)
		}
	}
	for tok := range f.postings {
		list := f.postings[tok]
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
	}
	return f
}

// Add indexes one more object (for maintenance parity with the main
// index).
func (f *Filter) Add(id uint32, docText string) {
	seen := map[string]struct{}{}
	for _, tok := range text.Tokenize(docText) {
		if _, dup := seen[tok]; dup {
			continue
		}
		seen[tok] = struct{}{}
		list := f.postings[tok]
		pos := sort.Search(len(list), func(i int) bool { return list[i] >= id })
		if pos < len(list) && list[pos] == id {
			continue
		}
		nl := make([]uint32, len(list)+1)
		copy(nl, list[:pos])
		nl[pos] = id
		copy(nl[pos+1:], list[pos:])
		f.postings[tok] = nl
	}
	f.total++
}

// Remove drops an object from all postings.
func (f *Filter) Remove(id uint32, docText string) {
	for _, tok := range text.Tokenize(docText) {
		list := f.postings[tok]
		pos := sort.Search(len(list), func(i int) bool { return list[i] >= id })
		if pos < len(list) && list[pos] == id {
			nl := make([]uint32, len(list)-1)
			copy(nl, list[:pos])
			copy(nl[pos:], list[pos+1:])
			if len(nl) == 0 {
				delete(f.postings, tok)
			} else {
				f.postings[tok] = nl
			}
		}
	}
	if f.total > 0 {
		f.total--
	}
}

// DocFrequency returns the number of objects containing the token.
func (f *Filter) DocFrequency(token string) int {
	return len(f.postings[normalize(token)])
}

func normalize(token string) string {
	toks := text.Tokenize(token)
	if len(toks) != 1 {
		return ""
	}
	return toks[0]
}

// Candidates returns the sorted IDs of objects containing ALL keywords
// (boolean AND). ok=false means at least one keyword normalizes away
// (e.g. a pure stop word); an empty result with ok=true means no object
// matches.
func (f *Filter) Candidates(keywords []string) (ids []uint32, ok bool) {
	if len(keywords) == 0 {
		return nil, false
	}
	lists := make([][]uint32, 0, len(keywords))
	for _, kw := range keywords {
		norm := normalize(kw)
		if norm == "" {
			return nil, false
		}
		lists = append(lists, f.postings[norm])
	}
	// Intersect starting from the rarest list.
	sort.Slice(lists, func(a, b int) bool { return len(lists[a]) < len(lists[b]) })
	if len(lists[0]) == 0 {
		return []uint32{}, true
	}
	out := append([]uint32(nil), lists[0]...)
	for _, list := range lists[1:] {
		out = intersect(out, list)
		if len(out) == 0 {
			return out, true
		}
	}
	return out, true
}

// intersect merges two sorted lists.
func intersect(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Predicate returns a membership test over the AND-candidate set.
func (f *Filter) Predicate(keywords []string) (allow func(id uint32) bool, ok bool) {
	ids, ok := f.Candidates(keywords)
	if !ok {
		return nil, false
	}
	set := make(map[uint32]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return func(id uint32) bool {
		_, in := set[id]
		return in
	}, true
}
