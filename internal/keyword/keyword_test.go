package keyword

import (
	"testing"
)

func buildTestFilter() *Filter {
	ids := []uint32{1, 2, 3, 4}
	texts := []string{
		"great coffee and cake",
		"coffee shop downtown",
		"pizza place with great view",
		"coffee coffee coffee", // duplicates collapse
	}
	return Build(ids, texts)
}

func TestCandidatesSingleKeyword(t *testing.T) {
	f := buildTestFilter()
	ids, ok := f.Candidates([]string{"coffee"})
	if !ok {
		t.Fatal("unexpected not-ok")
	}
	want := []uint32{1, 2, 4}
	if len(ids) != len(want) {
		t.Fatalf("got %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("got %v, want %v", ids, want)
		}
	}
}

func TestCandidatesANDSemantics(t *testing.T) {
	f := buildTestFilter()
	ids, ok := f.Candidates([]string{"great", "coffee"})
	if !ok || len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("got %v ok=%v", ids, ok)
	}
	// No match.
	ids, ok = f.Candidates([]string{"pizza", "coffee"})
	if !ok || len(ids) != 0 {
		t.Fatalf("got %v ok=%v", ids, ok)
	}
	// Unknown word.
	ids, ok = f.Candidates([]string{"sushi"})
	if !ok || len(ids) != 0 {
		t.Fatalf("got %v ok=%v", ids, ok)
	}
}

func TestCandidatesRejectsStopWordsAndEmpty(t *testing.T) {
	f := buildTestFilter()
	if _, ok := f.Candidates([]string{"the"}); ok {
		t.Fatal("stop word should be rejected")
	}
	if _, ok := f.Candidates(nil); ok {
		t.Fatal("empty keyword list should be rejected")
	}
	if _, ok := f.Candidates([]string{"two words"}); ok {
		t.Fatal("multi-token keyword should be rejected")
	}
}

func TestCandidatesCaseInsensitive(t *testing.T) {
	f := buildTestFilter()
	ids, ok := f.Candidates([]string{"COFFEE"})
	if !ok || len(ids) != 3 {
		t.Fatalf("got %v ok=%v", ids, ok)
	}
}

func TestDocFrequency(t *testing.T) {
	f := buildTestFilter()
	if df := f.DocFrequency("coffee"); df != 3 {
		t.Fatalf("df(coffee) = %d", df)
	}
	if df := f.DocFrequency("sushi"); df != 0 {
		t.Fatalf("df(sushi) = %d", df)
	}
	if df := f.DocFrequency("the"); df != 0 {
		t.Fatalf("df(the) = %d (stop word)", df)
	}
}

func TestAddRemove(t *testing.T) {
	f := buildTestFilter()
	f.Add(10, "fresh coffee beans")
	ids, _ := f.Candidates([]string{"coffee"})
	if len(ids) != 4 || ids[3] != 10 {
		t.Fatalf("after add: %v", ids)
	}
	// Idempotent add of same id.
	f.Add(10, "fresh coffee beans")
	ids, _ = f.Candidates([]string{"coffee"})
	if len(ids) != 4 {
		t.Fatalf("duplicate add changed postings: %v", ids)
	}
	f.Remove(10, "fresh coffee beans")
	ids, _ = f.Candidates([]string{"coffee"})
	if len(ids) != 3 {
		t.Fatalf("after remove: %v", ids)
	}
	// Removing a non-member is harmless.
	f.Remove(999, "coffee")
	ids, _ = f.Candidates([]string{"coffee"})
	if len(ids) != 3 {
		t.Fatalf("phantom remove changed postings: %v", ids)
	}
}

func TestAddKeepsSorted(t *testing.T) {
	f := Build([]uint32{5}, []string{"alpha beta"})
	f.Add(2, "alpha")
	f.Add(9, "alpha")
	ids, _ := f.Candidates([]string{"alpha"})
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("postings unsorted: %v", ids)
		}
	}
}

func TestPredicate(t *testing.T) {
	f := buildTestFilter()
	allow, ok := f.Predicate([]string{"coffee"})
	if !ok {
		t.Fatal("predicate rejected")
	}
	if !allow(1) || !allow(2) || allow(3) {
		t.Fatal("predicate membership wrong")
	}
	if _, ok := f.Predicate([]string{"the"}); ok {
		t.Fatal("stop-word predicate should be rejected")
	}
}
