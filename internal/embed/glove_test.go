package embed

import (
	"strings"
	"testing"
)

const gloveSample = `hello 0.1 0.2 0.3
world -0.5 0.25 1.0
coffee 1.0 0.0 0.0
shop 0.9 0.1 0.0
`

func TestLoadGloVe(t *testing.T) {
	m, err := LoadGloVe(strings.NewReader(gloveSample))
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim != 3 {
		t.Fatalf("Dim = %d", m.Dim)
	}
	v, ok := m.Lookup("world")
	if !ok {
		t.Fatal("'world' not found")
	}
	if v[0] != -0.5 || v[2] != 1.0 {
		t.Fatalf("world vector = %v", v)
	}
	if _, ok := m.Lookup("absent"); ok {
		t.Fatal("unknown word resolved")
	}
}

func TestLoadGloVeEncodesDocuments(t *testing.T) {
	m, err := LoadGloVe(strings.NewReader(gloveSample))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := m.EncodeDocument("the coffee shop hello")
	if !ok {
		t.Fatal("document rejected")
	}
	// Mean of coffee, shop, hello ("the" is a stop word).
	want0 := float32((1.0 + 0.9 + 0.1) / 3)
	if diff := v[0] - want0; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("v[0] = %v, want %v", v[0], want0)
	}
	if _, ok := m.EncodeDocument("hello world"); ok {
		t.Fatal("two-word document should be rejected")
	}
}

func TestLoadGloVeSkipsDuplicatesAndBlankLines(t *testing.T) {
	in := "a 1 2\n\na 9 9\nb 3 4\n"
	m, err := LoadGloVe(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vocab.Size() != 2 {
		t.Fatalf("vocab size = %d", m.Vocab.Size())
	}
	v, _ := m.Lookup("a")
	if v[0] != 1 {
		t.Fatal("duplicate did not keep the first occurrence")
	}
}

func TestLoadGloVeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"short line":    "word\n",
		"ragged":        "a 1 2\nb 3\n",
		"bad component": "a 1 x\n",
	}
	for name, in := range cases {
		if _, err := LoadGloVe(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
