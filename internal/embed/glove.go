package embed

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/text"
)

// LoadGloVe parses a word-embedding file in the GloVe text format — one
// word per line followed by its vector components, space-separated:
//
//	the 0.418 0.24968 -0.41242 ...
//
// This is the format of the pre-trained files the paper uses
// (glove.twitter.27B.100d.txt etc.). All vectors must share one
// dimensionality; the first line fixes it. Duplicate words keep the first
// occurrence. Word topics are unknown for real embeddings, so the
// resulting model has Topics all zero and no TopicCentroids; lookups and
// document encoding work exactly as with the synthetic model.
func LoadGloVe(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		words   []string
		vectors [][]float32
		byWord  = map[string]int{}
		dim     = -1
		lineNo  = 0
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if dim == -1 {
			if len(fields) < 2 {
				return nil, fmt.Errorf("embed: glove line %d: need a word and at least one component", lineNo)
			}
			dim = len(fields) - 1
		}
		if len(fields) != dim+1 {
			return nil, fmt.Errorf("embed: glove line %d: %d components, expected %d", lineNo, len(fields)-1, dim)
		}
		word := fields[0]
		if _, dup := byWord[word]; dup {
			continue
		}
		vec := make([]float32, dim)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 32)
			if err != nil {
				return nil, fmt.Errorf("embed: glove line %d: component %d: %w", lineNo, i, err)
			}
			vec[i] = float32(v)
		}
		byWord[word] = len(words)
		words = append(words, word)
		vectors = append(vectors, vec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("embed: glove: %w", err)
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("embed: glove: no vectors found")
	}
	return &Model{Vocab: text.NewVocabularyFromWords(words), Dim: dim, Vectors: vectors}, nil
}
