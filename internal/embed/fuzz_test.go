package embed

import (
	"strings"
	"testing"
)

// FuzzLoadGloVe checks the parser never panics and that any model it
// accepts is internally consistent.
func FuzzLoadGloVe(f *testing.F) {
	f.Add("hello 0.1 0.2\nworld 0.3 0.4\n")
	f.Add("")
	f.Add("a 1\nb 2\n\n c 3")
	f.Add("word")
	f.Add("x nan inf -inf\n")
	f.Add("dup 1 2\ndup 3 4\n")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := LoadGloVe(strings.NewReader(s))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if m.Dim < 1 {
			t.Fatalf("accepted model with Dim %d", m.Dim)
		}
		if len(m.Vectors) != m.Vocab.Size() {
			t.Fatalf("vectors %d != vocab %d", len(m.Vectors), m.Vocab.Size())
		}
		for i, v := range m.Vectors {
			if len(v) != m.Dim {
				t.Fatalf("vector %d has dim %d, want %d", i, len(v), m.Dim)
			}
		}
		// Every word resolves to a vector of the right shape.
		for _, w := range m.Vocab.Words {
			if v, ok := m.Lookup(w); !ok || len(v) != m.Dim {
				t.Fatalf("lookup(%q) inconsistent", w)
			}
		}
	})
}
