package embed

import (
	"strings"
	"testing"

	"repro/internal/text"
	"repro/internal/vec"
)

func newTestModel() *Model {
	vocab := text.NewVocabulary(1000, 10, 1.0)
	return NewSynthetic(vocab, Config{Dim: 50, Seed: 7})
}

func TestDeterminism(t *testing.T) {
	vocab := text.NewVocabulary(200, 5, 1.0)
	a := NewSynthetic(vocab, Config{Dim: 32, Seed: 11})
	b := NewSynthetic(vocab, Config{Dim: 32, Seed: 11})
	for i := range a.Vectors {
		if vec.Dist(a.Vectors[i], b.Vectors[i]) != 0 {
			t.Fatalf("word %d differs between identically-seeded models", i)
		}
	}
	c := NewSynthetic(vocab, Config{Dim: 32, Seed: 12})
	if vec.Dist(a.Vectors[0], c.Vectors[0]) == 0 {
		t.Fatal("different seeds produced identical vectors")
	}
}

func TestTopicStructure(t *testing.T) {
	m := newTestModel()
	// Words of the same topic should on average be closer than words of
	// different topics.
	var sameSum, diffSum float64
	var sameN, diffN int
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			d := vec.Dist(m.Vectors[i], m.Vectors[j])
			if m.Vocab.Topics[i] == m.Vocab.Topics[j] {
				sameSum += d
				sameN++
			} else {
				diffSum += d
				diffN++
			}
		}
	}
	same := sameSum / float64(sameN)
	diff := diffSum / float64(diffN)
	if same >= diff {
		t.Fatalf("same-topic distance %v >= cross-topic %v", same, diff)
	}
}

func TestLookup(t *testing.T) {
	m := newTestModel()
	v, ok := m.Lookup(m.Vocab.Words[3])
	if !ok || len(v) != 50 {
		t.Fatalf("Lookup failed: ok=%v len=%d", ok, len(v))
	}
	if _, ok := m.Lookup("zzz-not-a-word"); ok {
		t.Fatal("unknown word should not resolve")
	}
}

func TestEncodeTokensAveraging(t *testing.T) {
	m := newTestModel()
	w0, w1, w2 := m.Vocab.Words[0], m.Vocab.Words[1], m.Vocab.Words[2]
	v, ok := m.EncodeTokens([]string{w0, w1, w2})
	if !ok {
		t.Fatal("EncodeTokens rejected 3 valid words")
	}
	for j := 0; j < m.Dim; j++ {
		want := (m.Vectors[0][j] + m.Vectors[1][j] + m.Vectors[2][j]) / 3
		got := v[j]
		if d := float64(want - got); d > 1e-5 || d < -1e-5 {
			t.Fatalf("dim %d: got %v want %v", j, got, want)
		}
	}
}

func TestEncodeTokensMinWordsFilter(t *testing.T) {
	m := newTestModel()
	if _, ok := m.EncodeTokens([]string{m.Vocab.Words[0], m.Vocab.Words[1]}); ok {
		t.Fatal("2 words should be rejected")
	}
	// Unknown words do not count toward the minimum.
	if _, ok := m.EncodeTokens([]string{m.Vocab.Words[0], "nope", "nah", "never"}); ok {
		t.Fatal("1 known + 3 unknown should be rejected")
	}
}

func TestEncodeDocument(t *testing.T) {
	m := newTestModel()
	doc := strings.Join([]string{m.Vocab.Words[5], "the", m.Vocab.Words[6], m.Vocab.Words[7]}, " ")
	v, ok := m.EncodeDocument(doc)
	if !ok {
		t.Fatal("EncodeDocument rejected a valid document")
	}
	// Stop word "the" must not shift the average: compare against
	// explicit ranks.
	want, _ := m.EncodeRanks([]int{5, 6, 7})
	if vec.Dist(v, want) > 1e-6 {
		t.Fatal("stop word affected the document vector")
	}
}

func TestEncodeRanks(t *testing.T) {
	m := newTestModel()
	if _, ok := m.EncodeRanks([]int{1, 2}); ok {
		t.Fatal("EncodeRanks should reject < 3 ranks")
	}
	v, ok := m.EncodeRanks([]int{1, 2, 3, 4})
	if !ok || len(v) != m.Dim {
		t.Fatalf("EncodeRanks failed: ok=%v", ok)
	}
}

func TestEncodeRanksPanicsOutOfRange(t *testing.T) {
	m := newTestModel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range rank")
		}
	}()
	m.EncodeRanks([]int{0, 1, 999999})
}

func TestDefaultsApplied(t *testing.T) {
	vocab := text.NewVocabulary(50, 2, 1.0)
	m := NewSynthetic(vocab, Config{Seed: 1})
	if m.Dim != 100 {
		t.Fatalf("default Dim = %d, want 100", m.Dim)
	}
}
