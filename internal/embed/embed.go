// Package embed is the word-embedding substrate. The paper uses
// pre-trained 100-dimensional GloVe vectors; those are a data asset we do
// not have, so this package provides a deterministic synthetic model with
// the same structure the algorithms rely on (see DESIGN.md §4):
//
//   - each word is a dense n-dimensional vector;
//   - words cluster by latent topic (topic centroid + per-word noise),
//     so semantically related words are close;
//   - document vectors are the average of their word vectors, exactly as
//     the paper computes them (§7.1), which concentrates distances and
//     reproduces the narrow n-dimensional distance distribution of Fig. 3.
//
// The model exposes the same lookup-table interface a real embedding file
// would: word -> vector, plus a document encoder.
package embed

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/text"
	"repro/internal/vec"
)

// Model is a word-embedding lookup table over a vocabulary.
type Model struct {
	Vocab *text.Vocabulary
	// Dim is the embedding dimensionality n (the paper uses 100).
	Dim int
	// Vectors[i] is the embedding of word rank i.
	Vectors [][]float32
	// TopicCentroids[t] is the centroid vector of topic t (used by the
	// generators to correlate documents with topics; not part of a real
	// embedding file but handy for synthesis and tests).
	TopicCentroids [][]float32
}

// Config controls NewSynthetic.
type Config struct {
	// Dim is the embedding dimensionality (default 100).
	Dim int
	// TopicSpread scales the distance between topic centroids
	// (default 1.0).
	TopicSpread float64
	// WordNoise scales per-word deviation from the topic centroid
	// (default 0.35). Smaller values give tighter topics.
	WordNoise float64
	// Seed makes the model deterministic.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.Dim <= 0 {
		c.Dim = 100
	}
	if c.TopicSpread == 0 {
		c.TopicSpread = 1.0
	}
	if c.WordNoise == 0 {
		c.WordNoise = 0.35
	}
}

// NewSynthetic builds a deterministic topic-structured embedding model
// over the given vocabulary.
func NewSynthetic(vocab *text.Vocabulary, cfg Config) *Model {
	cfg.applyDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xe7f3a1))
	numTopics := vocab.NumTopics()
	m := &Model{
		Vocab:          vocab,
		Dim:            cfg.Dim,
		Vectors:        make([][]float32, vocab.Size()),
		TopicCentroids: make([][]float32, numTopics),
	}
	for t := 0; t < numTopics; t++ {
		c := make([]float32, cfg.Dim)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * cfg.TopicSpread)
		}
		m.TopicCentroids[t] = c
	}
	for i := 0; i < vocab.Size(); i++ {
		topic := vocab.Topics[i]
		v := vec.Clone(m.TopicCentroids[topic])
		for j := range v {
			v[j] += float32(rng.NormFloat64() * cfg.WordNoise)
		}
		m.Vectors[i] = v
	}
	return m
}

// Lookup returns the embedding of word w, or ok=false when w is out of
// vocabulary (the paper drops such terms).
func (m *Model) Lookup(w string) (v []float32, ok bool) {
	i, ok := m.Vocab.Index(w)
	if !ok {
		return nil, false
	}
	return m.Vectors[i], true
}

// EncodeTokens averages the embeddings of the in-vocabulary tokens.
// It returns ok=false when fewer than text.MinContentWords tokens are in
// vocabulary, mirroring the paper's "< 3 words are dropped" rule.
func (m *Model) EncodeTokens(tokens []string) (v []float32, ok bool) {
	acc := make([]float64, m.Dim)
	count := 0
	for _, tok := range tokens {
		w, found := m.Lookup(tok)
		if !found {
			continue
		}
		for j, x := range w {
			acc[j] += float64(x)
		}
		count++
	}
	if count < text.MinContentWords {
		return nil, false
	}
	out := make([]float32, m.Dim)
	inv := 1 / float64(count)
	for j := range out {
		out[j] = float32(acc[j] * inv)
	}
	return out, true
}

// EncodeDocument tokenizes s (dropping stop-words) and averages the word
// vectors; ok=false when the document has fewer than three content words.
func (m *Model) EncodeDocument(s string) (v []float32, ok bool) {
	return m.EncodeTokens(text.Tokenize(s))
}

// EncodeRanks averages the embeddings of the given word ranks. It panics
// on an out-of-range rank and returns ok=false for fewer than
// text.MinContentWords ranks.
func (m *Model) EncodeRanks(ranks []int) (v []float32, ok bool) {
	if len(ranks) < text.MinContentWords {
		return nil, false
	}
	acc := make([]float64, m.Dim)
	for _, r := range ranks {
		if r < 0 || r >= len(m.Vectors) {
			panic(fmt.Sprintf("embed: word rank %d out of range", r))
		}
		for j, x := range m.Vectors[r] {
			acc[j] += float64(x)
		}
	}
	out := make([]float32, m.Dim)
	inv := 1 / float64(len(ranks))
	for j := range out {
		out[j] = float32(acc[j] * inv)
	}
	return out, true
}
