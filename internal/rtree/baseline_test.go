package rtree

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/scan"
)

func baselineSetup(t *testing.T, size int) (*dataset.Dataset, *metric.Space, *Baseline, *scan.Scanner) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: size, Dim: 16, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpace(ds)
	if err != nil {
		t.Fatal(err)
	}
	return ds, sp, NewBaseline(ds, sp, 16), scan.New(ds, sp)
}

func TestBaselineMatchesScan(t *testing.T) {
	ds, _, b, sc := baselineSetup(t, 500)
	for _, lambda := range []float64{0.2, 0.5, 0.8, 1.0} {
		for qi := 0; qi < 10; qi++ {
			q := ds.Objects[qi*31%ds.Len()]
			want := sc.Search(&q, 10, lambda, nil)
			got := b.Search(&q, 10, lambda, nil)
			if len(got) != len(want) {
				t.Fatalf("λ=%v: got %d results", lambda, len(got))
			}
			for i := range want {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("λ=%v q=%d result %d: %v vs %v", lambda, q.ID, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

// With λ=0 the spatial lower bound is useless (always 0), so the baseline
// must still be correct — it degenerates to visiting everything.
func TestBaselineLambdaZeroStillExact(t *testing.T) {
	ds, _, b, sc := baselineSetup(t, 300)
	q := ds.Objects[5]
	want := sc.Search(&q, 5, 0, nil)
	var st metric.Stats
	got := b.Search(&q, 5, 0, &st)
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
	if st.VisitedObjects != int64(ds.Len()) {
		t.Fatalf("λ=0 should visit all %d objects, visited %d", ds.Len(), st.VisitedObjects)
	}
}

// With λ=1 (pure spatial k-NN) the R-tree should prune most of the data.
func TestBaselinePrunesWhenSpatial(t *testing.T) {
	ds, _, b, _ := baselineSetup(t, 2000)
	q := ds.Objects[7]
	var st metric.Stats
	got := b.Search(&q, 10, 1.0, &st)
	if len(got) != 10 {
		t.Fatalf("got %d results", len(got))
	}
	if st.VisitedObjects >= int64(ds.Len())/2 {
		t.Fatalf("λ=1 visited %d of %d objects — no pruning", st.VisitedObjects, ds.Len())
	}
}

func TestBaselineKExceedsDataset(t *testing.T) {
	ds, _, b, _ := baselineSetup(t, 8)
	got := b.Search(&ds.Objects[0], 20, 0.5, nil)
	if len(got) != 8 {
		t.Fatalf("got %d results, want 8", len(got))
	}
}
