// Package rtree implements a d-dimensional rectangle R-tree with STR bulk
// loading, quadratic-split insertion, and generic best-first traversal
// (Hjaltason–Samet distance browsing). It backs the spatial-only baseline
// of the evaluation (§7.1 "R-tree"), the spatial layer of the S²R-tree,
// and the reference-space index of the RR*-tree baseline.
package rtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// Entry is a leaf item: a rectangle (possibly degenerate, i.e. a point)
// and the caller's item id.
type Entry struct {
	Rect geo.Rect
	ID   uint32
}

type entry struct {
	rect  geo.Rect
	child *node  // nil at leaves
	id    uint32 // valid at leaves
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is an R-tree over d-dimensional rectangles.
type Tree struct {
	root       *node
	dims       int
	maxEntries int
	minEntries int
	size       int
	split      SplitAlgorithm
}

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 32

// New returns an empty tree for rectangles of the given dimensionality.
// maxEntries <= 0 selects DefaultMaxEntries.
func New(dims, maxEntries int) *Tree {
	if dims < 1 {
		panic("rtree: dims must be >= 1")
	}
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		root:       &node{leaf: true},
		dims:       dims,
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5, // R*-style 40% minimum fill
	}
}

// BulkLoad builds a tree from the entries using Sort-Tile-Recursive
// packing. The input slice is reordered in place.
func BulkLoad(entries []Entry, dims, maxEntries int) *Tree {
	t := New(dims, maxEntries)
	if len(entries) == 0 {
		return t
	}
	es := make([]entry, len(entries))
	for i, e := range entries {
		if e.Rect.Dims() != dims {
			panic(fmt.Sprintf("rtree: entry dims %d != tree dims %d", e.Rect.Dims(), dims))
		}
		es[i] = entry{rect: e.Rect, id: e.ID}
	}
	level := packLevel(es, dims, t.maxEntries, true)
	for len(level) > 1 {
		parents := make([]entry, len(level))
		for i, n := range level {
			parents[i] = entry{rect: nodeRect(n, dims), child: n}
		}
		level = packLevel(parents, dims, t.maxEntries, false)
	}
	t.root = level[0]
	t.size = len(entries)
	return t
}

// packLevel groups entries into nodes of at most maxEntries using STR
// tiling, returning the new nodes.
func packLevel(es []entry, dims, maxEntries int, leaf bool) []*node {
	groups := strPack(es, dims, maxEntries, 0)
	nodes := make([]*node, len(groups))
	for i, g := range groups {
		nodes[i] = &node{leaf: leaf, entries: g}
	}
	return nodes
}

// strPack recursively tiles es along dimension dim, producing groups of
// at most m entries.
func strPack(es []entry, dims, m, dim int) [][]entry {
	if len(es) <= m {
		return [][]entry{es}
	}
	if dim >= dims-1 {
		// Final dimension: sort and chop.
		sortByCenter(es, dim)
		var out [][]entry
		for lo := 0; lo < len(es); lo += m {
			hi := lo + m
			if hi > len(es) {
				hi = len(es)
			}
			out = append(out, es[lo:hi:hi])
		}
		return out
	}
	numGroups := (len(es) + m - 1) / m
	// Number of slabs along this dimension: numGroups^(1/remainingDims).
	remaining := dims - dim
	slabs := int(math.Ceil(math.Pow(float64(numGroups), 1/float64(remaining))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(es) + slabs - 1) / slabs
	sortByCenter(es, dim)
	var out [][]entry
	for lo := 0; lo < len(es); lo += slabSize {
		hi := lo + slabSize
		if hi > len(es) {
			hi = len(es)
		}
		out = append(out, strPack(es[lo:hi:hi], dims, m, dim+1)...)
	}
	return out
}

func sortByCenter(es []entry, dim int) {
	sort.Slice(es, func(i, j int) bool {
		ci := es[i].rect.Lo[dim] + es[i].rect.Hi[dim]
		cj := es[j].rect.Lo[dim] + es[j].rect.Hi[dim]
		return ci < cj
	})
}

func nodeRect(n *node, dims int) geo.Rect {
	r := geo.NewRect(dims)
	for i := range n.entries {
		r.ExtendRect(n.entries[i].rect)
	}
	return r
}

// Size returns the number of stored entries.
func (t *Tree) Size() int { return t.size }

// Dims returns the dimensionality of the tree.
func (t *Tree) Dims() int { return t.dims }

// Height returns the number of levels (1 for a tree holding only a leaf
// root).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

// Insert adds an entry, splitting nodes as needed with the configured
// split algorithm (R* by default).
func (t *Tree) Insert(e Entry) {
	if e.Rect.Dims() != t.dims {
		panic(fmt.Sprintf("rtree: entry dims %d != tree dims %d", e.Rect.Dims(), t.dims))
	}
	t.size++
	split := t.insert(t.root, entry{rect: e.Rect, id: e.ID})
	if split != nil {
		old := t.root
		t.root = &node{
			leaf: false,
			entries: []entry{
				{rect: nodeRect(old, t.dims), child: old},
				{rect: nodeRect(split, t.dims), child: split},
			},
		}
	}
}

// insert descends to a leaf and returns a sibling node if n was split.
func (t *Tree) insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	best := t.chooseSubtree(n, e.rect)
	child := n.entries[best].child
	split := t.insert(child, e)
	n.entries[best].rect.ExtendRect(e.rect)
	if split != nil {
		n.entries[best].rect = nodeRect(child, t.dims)
		n.entries = append(n.entries, entry{rect: nodeRect(split, t.dims), child: split})
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose rect needs least enlargement
// (ties: smaller area).
func (t *Tree) chooseSubtree(n *node, r geo.Rect) int {
	best := 0
	bestEnl, bestArea := -1.0, 0.0
	for i := range n.entries {
		area := n.entries[i].rect.Area()
		enl := n.entries[i].rect.EnlargedArea(r) - area
		if bestEnl < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitNode dispatches to the configured split algorithm.
func (t *Tree) splitNode(n *node) *node {
	if t.split == Quadratic {
		return t.quadraticSplit(n)
	}
	return t.rstarSplit(n)
}

// quadraticSplit splits an overfull node in place and returns the new
// sibling (Guttman's quadratic algorithm).
func (t *Tree) quadraticSplit(n *node) *node {
	es := n.entries
	// Pick the pair wasting the most area as seeds.
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			waste := es[i].rect.EnlargedArea(es[j].rect) - es[i].rect.Area() - es[j].rect.Area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	groupA := []entry{es[seedA]}
	groupB := []entry{es[seedB]}
	rectA := es[seedA].rect.Clone()
	rectB := es[seedB].rect.Clone()
	rest := make([]entry, 0, len(es)-2)
	for i := range es {
		if i != seedA && i != seedB {
			rest = append(rest, es[i])
		}
	}
	for len(rest) > 0 {
		// Force-assign to meet the minimum fill.
		if len(groupA)+len(rest) == t.minEntries {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				rectA.ExtendRect(e.rect)
			}
			break
		}
		if len(groupB)+len(rest) == t.minEntries {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				rectB.ExtendRect(e.rect)
			}
			break
		}
		// Pick the entry with the greatest preference difference.
		bestI, bestDiff := 0, -1.0
		for i, e := range rest {
			dA := rectA.EnlargedArea(e.rect) - rectA.Area()
			dB := rectB.EnlargedArea(e.rect) - rectB.Area()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestI = diff, i
			}
		}
		e := rest[bestI]
		rest[bestI] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		dA := rectA.EnlargedArea(e.rect) - rectA.Area()
		dB := rectB.EnlargedArea(e.rect) - rectB.Area()
		if dA < dB || (dA == dB && len(groupA) < len(groupB)) {
			groupA = append(groupA, e)
			rectA.ExtendRect(e.rect)
		} else {
			groupB = append(groupB, e)
			rectB.ExtendRect(e.rect)
		}
	}
	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}

// pqItem is a best-first queue element: either a node or a leaf entry.
type pqItem struct {
	dist float64
	n    *node // nil for object items
	id   uint32
	rect geo.Rect
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// BestFirst traverses the tree in ascending order of nodeLB over entry
// rectangles, calling emit for each leaf entry (objects arrive in
// ascending lower-bound order). emit returns false to stop the
// traversal — for k-NN, stop once the popped lower bound reaches the
// current k-th best distance. nodesVisited counts internal+leaf nodes
// popped (an index-overhead measure).
func (t *Tree) BestFirst(nodeLB func(geo.Rect) float64, emit func(id uint32, lb float64) bool) (nodesVisited int) {
	if t.size == 0 {
		return 0
	}
	q := pq{{dist: nodeLB(nodeRect(t.root, t.dims)), n: t.root}}
	for len(q) > 0 {
		item := heap.Pop(&q).(pqItem)
		if item.n == nil {
			if !emit(item.id, item.dist) {
				return nodesVisited
			}
			continue
		}
		nodesVisited++
		for i := range item.n.entries {
			e := &item.n.entries[i]
			d := nodeLB(e.rect)
			if e.child != nil {
				heap.Push(&q, pqItem{dist: d, n: e.child})
			} else {
				heap.Push(&q, pqItem{dist: d, id: e.id, rect: e.rect})
			}
		}
	}
	return nodesVisited
}

// Validate checks structural invariants (for tests): child rectangles are
// contained in their parent entry rectangle, leaves are at a uniform
// depth, fan-out respects maxEntries, and the entry count matches Size.
func (t *Tree) Validate() error {
	count := 0
	leafDepth := -1
	var walk func(n *node, depth int, bound *geo.Rect) error
	walk = func(n *node, depth int, bound *geo.Rect) error {
		if len(n.entries) > t.maxEntries {
			return fmt.Errorf("rtree: node with %d entries exceeds max %d", len(n.entries), t.maxEntries)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
		}
		for i := range n.entries {
			e := &n.entries[i]
			if bound != nil {
				for d := 0; d < t.dims; d++ {
					if e.rect.Lo[d] < bound.Lo[d]-1e-12 || e.rect.Hi[d] > bound.Hi[d]+1e-12 {
						return fmt.Errorf("rtree: child rect escapes parent at dim %d", d)
					}
				}
			}
			if n.leaf {
				count++
			} else {
				if e.child == nil {
					return fmt.Errorf("rtree: internal entry without child")
				}
				want := nodeRect(e.child, t.dims)
				for d := 0; d < t.dims; d++ {
					if want.Lo[d] < e.rect.Lo[d]-1e-12 || want.Hi[d] > e.rect.Hi[d]+1e-12 {
						return fmt.Errorf("rtree: stored rect does not cover child at dim %d", d)
					}
				}
				if err := walk(e.child, depth+1, &e.rect); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.root, 0, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: counted %d entries, Size() = %d", count, t.size)
	}
	return nil
}
