package rtree

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func randPoints(rng *rand.Rand, n, dims int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		p := make([]float64, dims)
		for j := range p {
			p[j] = rng.Float64()
		}
		out[i] = Entry{Rect: geo.RectFromPoint(p), ID: uint32(i)}
	}
	return out
}

func pointOf(e Entry) []float64 { return e.Rect.Lo }

// knnBrute returns the ids of the k nearest points to q by brute force.
func knnBrute(entries []Entry, q []float64, k int) []float64 {
	type pair struct {
		d  float64
		id uint32
	}
	ps := make([]pair, len(entries))
	for i, e := range entries {
		var s float64
		for j, v := range pointOf(e) {
			s += (v - q[j]) * (v - q[j])
		}
		ps[i] = pair{math.Sqrt(s), e.ID}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].d < ps[j].d })
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].d
	}
	return out
}

// knnTree runs best-first k-NN over the tree with Euclidean point
// distance and returns the k result distances in order.
func knnTree(t *Tree, q []float64, k int) []float64 {
	var out []float64
	t.BestFirst(
		func(r geo.Rect) float64 { return r.MinDist(q) },
		func(id uint32, lb float64) bool {
			out = append(out, lb) // for points, lb == exact distance
			return len(out) < k
		})
	return out
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil, 2, 0)
	if tr.Size() != 0 {
		t.Fatalf("Size = %d", tr.Size())
	}
	visited := tr.BestFirst(func(geo.Rect) float64 { return 0 }, func(uint32, float64) bool { return true })
	if visited != 0 {
		t.Fatal("traversal of empty tree visited nodes")
	}
}

func TestBulkLoadValidates(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{1, 5, 33, 100, 1000} {
		for _, dims := range []int{1, 2, 3, 5} {
			tr := BulkLoad(randPoints(rng, n, dims), dims, 16)
			if tr.Size() != n {
				t.Fatalf("n=%d dims=%d Size=%d", n, dims, tr.Size())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d dims=%d: %v", n, dims, err)
			}
		}
	}
}

func TestInsertValidates(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	tr := New(2, 8)
	pts := randPoints(rng, 500, 2)
	for _, e := range pts {
		tr.Insert(e)
	}
	if tr.Size() != 500 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatalf("Height = %d, expected splits to raise the tree", tr.Height())
	}
}

func TestKNNMatchesBruteForceBulk(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	entries := randPoints(rng, 800, 2)
	tr := BulkLoad(entries, 2, 16)
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64(), rng.Float64()}
		want := knnBrute(entries, q, 10)
		got := knnTree(tr, q, 10)
		if len(got) != len(want) {
			t.Fatalf("got %d results", len(got))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d result %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestKNNMatchesBruteForceInserted(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	entries := randPoints(rng, 600, 3)
	tr := New(3, 10)
	for _, e := range entries {
		tr.Insert(e)
	}
	for trial := 0; trial < 10; trial++ {
		q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		want := knnBrute(entries, q, 7)
		got := knnTree(tr, q, 7)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d result %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMixedBulkAndInsert(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	entries := randPoints(rng, 300, 2)
	tr := BulkLoad(entries[:200], 2, 12)
	for _, e := range entries[200:] {
		tr.Insert(e)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, 0.5}
	want := knnBrute(entries, q, 5)
	got := knnTree(tr, q, 5)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("result %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestBestFirstEmitsInAscendingOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	entries := randPoints(rng, 400, 2)
	tr := BulkLoad(entries, 2, 16)
	q := []float64{0.3, 0.7}
	prev := -1.0
	tr.BestFirst(
		func(r geo.Rect) float64 { return r.MinDist(q) },
		func(id uint32, lb float64) bool {
			if lb < prev-1e-12 {
				t.Fatalf("emitted out of order: %v after %v", lb, prev)
			}
			prev = lb
			return true
		})
}

func TestRectEntries(t *testing.T) {
	// Non-degenerate rectangles (boxes) also work.
	entries := []Entry{
		{Rect: geo.Rect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}, ID: 1},
		{Rect: geo.Rect{Lo: []float64{5, 5}, Hi: []float64{6, 7}}, ID: 2},
		{Rect: geo.Rect{Lo: []float64{2, 2}, Hi: []float64{3, 3}}, ID: 3},
	}
	tr := BulkLoad(entries, 2, 4)
	q := []float64{5.5, 6}
	var first uint32
	tr.BestFirst(
		func(r geo.Rect) float64 { return r.MinDist(q) },
		func(id uint32, lb float64) bool { first = id; return false })
	if first != 2 {
		t.Fatalf("nearest rect = %d, want 2", first)
	}
}

func TestInsertDimMismatchPanics(t *testing.T) {
	tr := New(2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(Entry{Rect: geo.RectFromPoint([]float64{1, 2, 3})})
}

// Property: for random data, bulk and insert trees agree with brute force
// on the nearest neighbor.
func TestNearestNeighborProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		n := 10 + rng.IntN(300)
		dims := 1 + rng.IntN(4)
		entries := randPoints(rng, n, dims)
		tr := BulkLoad(entries, dims, 4+rng.IntN(28))
		q := make([]float64, dims)
		for j := range q {
			q[j] = rng.Float64()*2 - 0.5
		}
		want := knnBrute(entries, q, 1)
		got := knnTree(tr, q, 1)
		return len(got) == 1 && math.Abs(got[0]-want[0]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Both split algorithms must keep the tree valid and the search exact.
func TestSplitAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	entries := randPoints(rng, 700, 2)
	for _, alg := range []SplitAlgorithm{RStar, Quadratic} {
		tr := NewWithSplit(2, 8, alg)
		for _, e := range entries {
			tr.Insert(e)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("alg %v: %v", alg, err)
		}
		for trial := 0; trial < 5; trial++ {
			q := []float64{rng.Float64(), rng.Float64()}
			want := knnBrute(entries, q, 8)
			got := knnTree(tr, q, 8)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("alg %v trial %d result %d: %v vs %v", alg, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// The R* split's design goal: an overfull node holding two spatially
// separable groups must be split exactly between them (zero overlap).
func TestRStarSplitSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	tr := NewWithSplit(2, 16, RStar)
	n := &node{leaf: true}
	for i := 0; i < 17; i++ { // one over capacity
		cx := 0.1
		if i%2 == 1 {
			cx = 0.9
		}
		p := []float64{cx + 0.02*rng.NormFloat64(), 0.5 + 0.02*rng.NormFloat64()}
		n.entries = append(n.entries, entry{rect: geo.RectFromPoint(p), id: uint32(i)})
	}
	sibling := tr.rstarSplit(n)
	left := coverRect(n.entries, 2)
	right := coverRect(sibling.entries, 2)
	if ov := overlapArea(left, right); ov != 0 {
		t.Fatalf("R* split left overlap %v between separable clusters", ov)
	}
	// Minimum fill respected on both sides.
	if len(n.entries) < tr.minEntries || len(sibling.entries) < tr.minEntries {
		t.Fatalf("minimum fill violated: %d / %d", len(n.entries), len(sibling.entries))
	}
	// All clustered points ended up on their own side.
	for _, e := range n.entries {
		for _, e2 := range sibling.entries {
			if (e.rect.Lo[0] < 0.5) == (e2.rect.Lo[0] < 0.5) {
				t.Fatal("clusters mixed across the split")
			}
		}
	}
}
