package rtree

import (
	"sort"

	"repro/internal/geo"
)

// SplitAlgorithm selects how overfull nodes are split on insertion.
type SplitAlgorithm int

const (
	// RStar is the R*-tree split of Beckmann et al.: choose the split
	// axis by minimum total margin over candidate distributions, then
	// the distribution with minimum overlap (ties: minimum area). It is
	// the default — and what the RR*-tree baseline's name promises.
	RStar SplitAlgorithm = iota
	// Quadratic is Guttman's quadratic split.
	Quadratic
)

// NewWithSplit is New with an explicit split algorithm.
func NewWithSplit(dims, maxEntries int, alg SplitAlgorithm) *Tree {
	t := New(dims, maxEntries)
	t.split = alg
	return t
}

// rstarSplit splits an overfull node in place and returns the new
// sibling.
func (t *Tree) rstarSplit(n *node) *node {
	es := n.entries
	total := len(es)
	m := t.minEntries
	if m < 1 {
		m = 1
	}
	maxK := total - m // distributions put k entries left, m ≤ k ≤ total-m

	// Per axis, consider the entries sorted by lower and by upper
	// bound; pick the axis whose candidate distributions have the
	// smallest summed margin.
	bestAxis, bestBySort := 0, 0
	bestMargin := -1.0
	for axis := 0; axis < t.dims; axis++ {
		for bySort := 0; bySort < 2; bySort++ {
			cand := make([]entry, total)
			copy(cand, es)
			axis := axis
			if bySort == 0 {
				sort.Slice(cand, func(a, b int) bool { return cand[a].rect.Lo[axis] < cand[b].rect.Lo[axis] })
			} else {
				sort.Slice(cand, func(a, b int) bool { return cand[a].rect.Hi[axis] < cand[b].rect.Hi[axis] })
			}
			var marginSum float64
			for k := m; k <= maxK; k++ {
				left := coverRect(cand[:k], t.dims)
				right := coverRect(cand[k:], t.dims)
				marginSum += left.Margin() + right.Margin()
			}
			if bestMargin < 0 || marginSum < bestMargin {
				bestMargin = marginSum
				bestAxis, bestBySort = axis, bySort
			}
		}
	}

	// Re-sort along the chosen axis/order and pick the distribution
	// with the least overlap (ties: least total area).
	cand := make([]entry, total)
	copy(cand, es)
	axis := bestAxis
	if bestBySort == 0 {
		sort.Slice(cand, func(a, b int) bool { return cand[a].rect.Lo[axis] < cand[b].rect.Lo[axis] })
	} else {
		sort.Slice(cand, func(a, b int) bool { return cand[a].rect.Hi[axis] < cand[b].rect.Hi[axis] })
	}
	bestK := m
	bestOverlap, bestArea := -1.0, 0.0
	for k := m; k <= maxK; k++ {
		left := coverRect(cand[:k], t.dims)
		right := coverRect(cand[k:], t.dims)
		ov := overlapArea(left, right)
		area := left.Area() + right.Area()
		if bestOverlap < 0 || ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, bestK = ov, area, k
		}
	}
	left := make([]entry, bestK)
	copy(left, cand[:bestK])
	right := make([]entry, total-bestK)
	copy(right, cand[bestK:])
	n.entries = left
	return &node{leaf: n.leaf, entries: right}
}

// coverRect returns the bounding rectangle of the entries.
func coverRect(es []entry, dims int) geo.Rect {
	r := geo.NewRect(dims)
	for i := range es {
		r.ExtendRect(es[i].rect)
	}
	return r
}

// overlapArea returns the volume of the intersection of a and b.
func overlapArea(a, b geo.Rect) float64 {
	v := 1.0
	for i := range a.Lo {
		lo := a.Lo[i]
		if b.Lo[i] > lo {
			lo = b.Lo[i]
		}
		hi := a.Hi[i]
		if b.Hi[i] < hi {
			hi = b.Hi[i]
		}
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}
