package rtree

import (
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/knn"
	"repro/internal/metric"
)

// Baseline is the evaluation's "R-tree" competitor (§7.1): a spatial-only
// R-tree with the semantic vectors stored at the leaves. Its best-first
// k-NN uses mindist computed under the worst-case assumption that some
// non-visited leaf holds an object with semantic distance zero, so node
// lower bounds carry only the λ-weighted spatial term.
type Baseline struct {
	tree    *Tree
	objects []dataset.Object
	space   *metric.Space
}

// NewBaseline bulk-loads the spatial R-tree over the dataset.
func NewBaseline(ds *dataset.Dataset, space *metric.Space, maxEntries int) *Baseline {
	entries := make([]Entry, ds.Len())
	for i := range ds.Objects {
		o := &ds.Objects[i]
		entries[i] = Entry{Rect: geo.RectFromPoint([]float64{o.X, o.Y}), ID: o.ID}
	}
	return &Baseline{
		tree:    BulkLoad(entries, 2, maxEntries),
		objects: ds.Objects,
		space:   space,
	}
}

// Search returns the exact k nearest neighbors of q under
// d = λ·ds + (1−λ)·dt using best-first traversal.
func (b *Baseline) Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	h := knn.NewHeap(k)
	qp := []float64{q.X, q.Y}
	nodeLB := func(r geo.Rect) float64 {
		// Worst case: semantic distance zero somewhere in the subtree.
		return lambda * r.MinDist(qp) / b.space.DsMax
	}
	nodes := b.tree.BestFirst(nodeLB, func(id uint32, lb float64) bool {
		if bound, ok := h.Bound(); ok && lb >= bound {
			return false // no remaining entry can improve the result
		}
		o := &b.objects[id]
		d := b.space.Distance(st, lambda, q, o)
		h.Push(knn.Result{ID: o.ID, Dist: d})
		return true
	})
	if st != nil {
		st.ClustersExamined += int64(nodes)
	}
	return h.Sorted()
}

// Tree exposes the underlying R-tree (for tests and diagnostics).
func (b *Baseline) Tree() *Tree { return b.tree }
