package geo

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if p.Dist(q) != 5 {
		t.Fatalf("Dist = %v", p.Dist(q))
	}
	if p.SqDist(q) != 25 {
		t.Fatalf("SqDist = %v", p.SqDist(q))
	}
}

func TestNewRectIsEmpty(t *testing.T) {
	r := NewRect(3)
	if !r.IsEmpty() {
		t.Fatal("NewRect should be empty")
	}
	r.ExtendPoint([]float64{1, 2, 3})
	if r.IsEmpty() {
		t.Fatal("rect with one point should not be empty")
	}
	if !r.Contains([]float64{1, 2, 3}) {
		t.Fatal("rect should contain its only point")
	}
}

func TestExtendAndContains(t *testing.T) {
	r := NewRect(2)
	r.ExtendPoint([]float64{0, 0})
	r.ExtendPoint([]float64{2, 3})
	if !r.Contains([]float64{1, 1}) {
		t.Fatal("should contain interior point")
	}
	if r.Contains([]float64{3, 1}) {
		t.Fatal("should not contain exterior point")
	}
	other := RectFromPoint([]float64{5, 5})
	r.ExtendRect(other)
	if !r.Contains([]float64{4, 4}) {
		t.Fatal("ExtendRect did not grow")
	}
}

func TestIntersects(t *testing.T) {
	a := Rect{Lo: []float64{0, 0}, Hi: []float64{2, 2}}
	b := Rect{Lo: []float64{1, 1}, Hi: []float64{3, 3}}
	c := Rect{Lo: []float64{2.5, 2.5}, Hi: []float64{4, 4}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("a and c should not intersect")
	}
	// Touching edges count as intersecting.
	d := Rect{Lo: []float64{2, 0}, Hi: []float64{3, 2}}
	if !a.Intersects(d) {
		t.Fatal("touching rects should intersect")
	}
}

func TestAreaMargin(t *testing.T) {
	r := Rect{Lo: []float64{0, 0, 0}, Hi: []float64{2, 3, 4}}
	if r.Area() != 24 {
		t.Fatalf("Area = %v", r.Area())
	}
	if r.Margin() != 9 {
		t.Fatalf("Margin = %v", r.Margin())
	}
	o := RectFromPoint([]float64{4, 3, 4})
	if got := r.EnlargedArea(o); got != 4*3*4 {
		t.Fatalf("EnlargedArea = %v", got)
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	if d := r.MinDist([]float64{0.5, 0.5}); d != 0 {
		t.Fatalf("inside MinDist = %v", d)
	}
	if d := r.MinDist([]float64{4, 1}); d != 3 {
		t.Fatalf("side MinDist = %v", d)
	}
	if d := r.MinDist([]float64{4, 5}); d != 5 {
		t.Fatalf("corner MinDist = %v", d)
	}
}

func TestMinDistChebyshev(t *testing.T) {
	r := Rect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	if d := r.MinDistChebyshev([]float64{0.2, 0.9}); d != 0 {
		t.Fatalf("inside = %v", d)
	}
	if d := r.MinDistChebyshev([]float64{4, 3}); d != 3 {
		t.Fatalf("outside = %v, want 3", d)
	}
}

func TestCenter(t *testing.T) {
	r := Rect{Lo: []float64{0, 2}, Hi: []float64{4, 6}}
	c := make([]float64, 2)
	r.Center(c)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Center = %v", c)
	}
}

// Property: MinDist lower-bounds the distance to every contained point.
func TestMinDistIsLowerBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		dims := 1 + rng.IntN(5)
		r := NewRect(dims)
		pts := make([][]float64, 8)
		for i := range pts {
			p := make([]float64, dims)
			for j := range p {
				p[j] = rng.Float64()*10 - 5
			}
			r.ExtendPoint(p)
			pts[i] = p
		}
		q := make([]float64, dims)
		for j := range q {
			q[j] = rng.Float64()*20 - 10
		}
		md := r.MinDist(q)
		for _, p := range pts {
			var d float64
			for j := range p {
				d += (p[j] - q[j]) * (p[j] - q[j])
			}
			if md > math.Sqrt(d)+1e-9 {
				return false
			}
		}
		// Chebyshev bound never exceeds Euclidean.
		return r.MinDistChebyshev(q) <= md+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := RectFromPoint([]float64{1, 1})
	c := r.Clone()
	c.ExtendPoint([]float64{9, 9})
	if r.Contains([]float64{5, 5}) {
		t.Fatal("Clone shares storage with original")
	}
}
