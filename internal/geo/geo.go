// Package geo provides the spatial primitives shared by the indexes: 2D
// points, d-dimensional axis-aligned rectangles, and minimum distances
// between points and rectangles (the "mindist" of best-first R-tree
// search).
package geo

import (
	"fmt"
	"math"
)

// Point is a 2D location. Dataset coordinates are normalized into
// [0,1]×[0,1] (paper §7.1).
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// SqDist returns the squared Euclidean distance between p and q.
func (p Point) SqDist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Rect is a d-dimensional axis-aligned rectangle given by per-dimension
// low and high bounds. A Rect with Lo[i] > Hi[i] in any dimension is
// empty.
type Rect struct {
	Lo, Hi []float64
}

// NewRect returns a rectangle of the given dimensionality, initialized
// empty (Lo=+Inf, Hi=-Inf) so that Extend* grows it correctly.
func NewRect(dims int) Rect {
	r := Rect{Lo: make([]float64, dims), Hi: make([]float64, dims)}
	for i := 0; i < dims; i++ {
		r.Lo[i] = math.Inf(1)
		r.Hi[i] = math.Inf(-1)
	}
	return r
}

// RectFromPoint returns a degenerate rectangle containing only p.
func RectFromPoint(p []float64) Rect {
	r := Rect{Lo: make([]float64, len(p)), Hi: make([]float64, len(p))}
	copy(r.Lo, p)
	copy(r.Hi, p)
	return r
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Lo) }

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool {
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return true
		}
	}
	return len(r.Lo) == 0
}

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	out := Rect{Lo: make([]float64, len(r.Lo)), Hi: make([]float64, len(r.Hi))}
	copy(out.Lo, r.Lo)
	copy(out.Hi, r.Hi)
	return out
}

// ExtendPoint grows r to cover p.
func (r *Rect) ExtendPoint(p []float64) {
	if len(p) != len(r.Lo) {
		panic(fmt.Sprintf("geo: ExtendPoint dims %d != rect dims %d", len(p), len(r.Lo)))
	}
	for i, v := range p {
		if v < r.Lo[i] {
			r.Lo[i] = v
		}
		if v > r.Hi[i] {
			r.Hi[i] = v
		}
	}
}

// ExtendRect grows r to cover o.
func (r *Rect) ExtendRect(o Rect) {
	if len(o.Lo) != len(r.Lo) {
		panic("geo: ExtendRect dims mismatch")
	}
	for i := range r.Lo {
		if o.Lo[i] < r.Lo[i] {
			r.Lo[i] = o.Lo[i]
		}
		if o.Hi[i] > r.Hi[i] {
			r.Hi[i] = o.Hi[i]
		}
	}
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p []float64) bool {
	for i, v := range p {
		if v < r.Lo[i] || v > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and o overlap (inclusive).
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < o.Lo[i] || o.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Margin returns the sum of the side lengths of r.
func (r Rect) Margin() float64 {
	var s float64
	for i := range r.Lo {
		s += r.Hi[i] - r.Lo[i]
	}
	return s
}

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		side := r.Hi[i] - r.Lo[i]
		if side < 0 {
			return 0
		}
		a *= side
	}
	return a
}

// EnlargedArea returns the volume of r extended to cover o.
func (r Rect) EnlargedArea(o Rect) float64 {
	a := 1.0
	for i := range r.Lo {
		lo, hi := r.Lo[i], r.Hi[i]
		if o.Lo[i] < lo {
			lo = o.Lo[i]
		}
		if o.Hi[i] > hi {
			hi = o.Hi[i]
		}
		a *= hi - lo
	}
	return a
}

// MinSqDist returns the squared Euclidean distance from point p to the
// nearest point of r (zero when p is inside r).
func (r Rect) MinSqDist(p []float64) float64 {
	var s float64
	for i, v := range p {
		if v < r.Lo[i] {
			d := r.Lo[i] - v
			s += d * d
		} else if v > r.Hi[i] {
			d := v - r.Hi[i]
			s += d * d
		}
	}
	return s
}

// MinDist returns the Euclidean distance from point p to the nearest
// point of r.
func (r Rect) MinDist(p []float64) float64 {
	return math.Sqrt(r.MinSqDist(p))
}

// MinDistChebyshev returns the L∞ distance from point p to the nearest
// point of r. It is the lower bound used in pivot (reference-point)
// spaces, where |d(x,pivot) − d(q,pivot)| ≤ d(x,q) per the triangle
// inequality, so the max per-dimension gap bounds the true distance.
func (r Rect) MinDistChebyshev(p []float64) float64 {
	var mx float64
	for i, v := range p {
		var d float64
		if v < r.Lo[i] {
			d = r.Lo[i] - v
		} else if v > r.Hi[i] {
			d = v - r.Hi[i]
		}
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Center writes the rectangle's center into dst (length Dims).
func (r Rect) Center(dst []float64) {
	for i := range r.Lo {
		dst[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
}
