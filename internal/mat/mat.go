// Package mat implements the dense linear algebra needed by the PCA
// substrate: matrix products, Householder QR, the cyclic Jacobi
// eigendecomposition of symmetric matrices, and the randomized SVD of
// Halko, Martinsson and Tropp that the paper uses (via scikit-learn) for
// projecting word embeddings.
//
// Matrices are small here (the covariance of 100-dimensional embeddings,
// sketches with a handful of columns), so clarity is preferred over
// blocking or SIMD tricks.
package mat

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates a zero matrix with the given shape.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a Dense from the given rows, which must all share one
// length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(kk)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func MulVec(m *Dense, x []float64) []float64 {
	if m.Cols != len(x) {
		panic("mat: MulVec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Gaussian fills a rows×cols matrix with standard normal samples drawn
// from rng.
func Gaussian(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// QR computes the thin QR decomposition of m (Rows >= Cols) using
// Householder reflections. It returns Q with orthonormal columns
// (Rows×Cols) and upper-triangular R (Cols×Cols) with m = Q*R.
func QR(m *Dense) (q, r *Dense) {
	rows, cols := m.Rows, m.Cols
	if rows < cols {
		panic("mat: QR requires Rows >= Cols")
	}
	a := m.Clone()
	vs := make([][]float64, 0, cols) // Householder vectors
	for k := 0; k < cols; k++ {
		// Build the Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < rows; i++ {
			norm += a.At(i, k) * a.At(i, k)
		}
		norm = math.Sqrt(norm)
		v := make([]float64, rows)
		if norm == 0 {
			// Column already zero; identity reflection.
			vs = append(vs, v)
			continue
		}
		alpha := -norm
		if a.At(k, k) < 0 {
			alpha = norm
		}
		for i := k; i < rows; i++ {
			v[i] = a.At(i, k)
		}
		v[k] -= alpha
		var vnorm float64
		for _, x := range v {
			vnorm += x * x
		}
		if vnorm > 0 {
			inv := 1 / math.Sqrt(vnorm)
			for i := range v {
				v[i] *= inv
			}
			// Apply H = I - 2*v*v^T to a's trailing columns.
			for j := k; j < cols; j++ {
				var dot float64
				for i := k; i < rows; i++ {
					dot += v[i] * a.At(i, j)
				}
				for i := k; i < rows; i++ {
					a.Set(i, j, a.At(i, j)-2*dot*v[i])
				}
			}
		}
		vs = append(vs, v)
	}
	r = NewDense(cols, cols)
	for i := 0; i < cols; i++ {
		for j := i; j < cols; j++ {
			r.Set(i, j, a.At(i, j))
		}
	}
	// Q = H_0 * H_1 * ... * H_{cols-1} applied to the thin identity.
	q = NewDense(rows, cols)
	for j := 0; j < cols; j++ {
		q.Set(j, j, 1)
	}
	for k := cols - 1; k >= 0; k-- {
		v := vs[k]
		for j := 0; j < cols; j++ {
			var dot float64
			for i := k; i < rows; i++ {
				dot += v[i] * q.At(i, j)
			}
			if dot == 0 {
				continue
			}
			for i := k; i < rows; i++ {
				q.Set(i, j, q.At(i, j)-2*dot*v[i])
			}
		}
	}
	return q, r
}

// JacobiEigen computes the eigendecomposition of the symmetric matrix s
// using the cyclic Jacobi method. It returns the eigenvalues in
// descending order together with the matching eigenvectors as the columns
// of v (so s ≈ v * diag(values) * v^T).
func JacobiEigen(s *Dense) (values []float64, v *Dense) {
	n := s.Rows
	if s.Cols != n {
		panic("mat: JacobiEigen requires a square matrix")
	}
	a := s.Clone()
	v = NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				// Rotate rows/cols p and q of a.
				for i := 0; i < n; i++ {
					aip, aiq := a.At(i, p), a.At(i, q)
					a.Set(i, p, c*aip-sn*aiq)
					a.Set(i, q, sn*aip+c*aiq)
				}
				for i := 0; i < n; i++ {
					api, aqi := a.At(p, i), a.At(q, i)
					a.Set(p, i, c*api-sn*aqi)
					a.Set(q, i, sn*api+c*aqi)
				}
				for i := 0; i < n; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vip-sn*viq)
					v.Set(i, q, sn*vip+c*viq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = a.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue (selection sort keeps the
	// column swaps simple).
	for i := 0; i < n; i++ {
		maxI := i
		for j := i + 1; j < n; j++ {
			if values[j] > values[maxI] {
				maxI = j
			}
		}
		if maxI != i {
			values[i], values[maxI] = values[maxI], values[i]
			for r := 0; r < n; r++ {
				vi, vm := v.At(r, i), v.At(r, maxI)
				v.Set(r, i, vm)
				v.Set(r, maxI, vi)
			}
		}
	}
	return values, v
}

// SVDResult holds a thin singular value decomposition a ≈ U * diag(S) * V^T.
type SVDResult struct {
	U *Dense    // Rows×k, orthonormal columns
	S []float64 // k singular values, descending
	V *Dense    // Cols×k, orthonormal columns
}

// RandomizedSVD computes an approximate rank-k thin SVD of a following
// Halko et al. (2011): sketch the range of a with a Gaussian test matrix,
// run nIter power iterations with QR re-orthonormalization, then solve the
// small projected problem exactly. oversample extra sketch columns (e.g. 7)
// improve accuracy; rng drives the Gaussian draw deterministically.
func RandomizedSVD(a *Dense, k, oversample, nIter int, rng *rand.Rand) SVDResult {
	if k <= 0 {
		panic("mat: RandomizedSVD requires k >= 1")
	}
	l := k + oversample
	if l > a.Cols {
		l = a.Cols
	}
	if l > a.Rows {
		l = a.Rows
	}
	if k > l {
		k = l
	}
	at := a.T()
	// Range finder: Y = A * Omega, orthonormalized.
	omega := Gaussian(rng, a.Cols, l)
	y := Mul(a, omega)
	q, _ := QR(y)
	for it := 0; it < nIter; it++ {
		z := Mul(at, q)
		qz, _ := QR(z)
		y = Mul(a, qz)
		q, _ = QR(y)
	}
	// B = Q^T A is l×Cols; take the eigendecomposition of B*B^T (l×l).
	b := Mul(q.T(), a)
	bbt := Mul(b, b.T())
	vals, w := JacobiEigen(bbt)
	s := make([]float64, k)
	for i := 0; i < k; i++ {
		if vals[i] > 0 {
			s[i] = math.Sqrt(vals[i])
		}
	}
	// U = Q * W[:, :k]
	wk := NewDense(l, k)
	for i := 0; i < l; i++ {
		for j := 0; j < k; j++ {
			wk.Set(i, j, w.At(i, j))
		}
	}
	u := Mul(q, wk)
	// V = B^T * W * diag(1/s)
	v := Mul(b.T(), wk)
	for j := 0; j < k; j++ {
		if s[j] == 0 {
			continue
		}
		inv := 1 / s[j]
		for i := 0; i < v.Rows; i++ {
			v.Set(i, j, v.At(i, j)*inv)
		}
	}
	return SVDResult{U: u, S: s, V: v}
}

// FrobeniusDiff returns the Frobenius norm of a-b.
func FrobeniusDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: FrobeniusDiff shape mismatch")
	}
	var s float64
	for i, v := range a.Data {
		d := v - b.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}
