package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %+v", at)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := MulVec(a, []float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func isOrthonormalCols(m *Dense, eps float64) bool {
	for i := 0; i < m.Cols; i++ {
		for j := i; j < m.Cols; j++ {
			var dot float64
			for r := 0; r < m.Rows; r++ {
				dot += m.At(r, i) * m.At(r, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > eps {
				return false
			}
		}
	}
	return true
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, shape := range [][2]int{{5, 3}, {10, 10}, {20, 4}, {3, 1}} {
		a := Gaussian(rng, shape[0], shape[1])
		q, r := QR(a)
		if !isOrthonormalCols(q, 1e-9) {
			t.Fatalf("Q not orthonormal for shape %v", shape)
		}
		if d := FrobeniusDiff(Mul(q, r), a); d > 1e-9 {
			t.Fatalf("QR reconstruction error %v for shape %v", d, shape)
		}
		// R upper-triangular.
		for i := 0; i < r.Rows; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-10 {
					t.Fatalf("R not upper triangular at (%d,%d): %v", i, j, r.At(i, j))
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// A matrix with a zero column must not produce NaNs.
	a := FromRows([][]float64{{1, 0, 2}, {2, 0, 4}, {3, 0, 5}})
	q, r := QR(a)
	prod := Mul(q, r)
	if d := FrobeniusDiff(prod, a); d > 1e-9 {
		t.Fatalf("rank-deficient QR reconstruction error %v", d)
	}
	for _, v := range q.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in Q for rank-deficient input")
		}
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// Symmetric matrix with known eigenvalues 3 and 1.
	s := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, v := JacobiEigen(s)
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	if !isOrthonormalCols(v, 1e-9) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, n := range []int{1, 2, 5, 12, 30} {
		g := Gaussian(rng, n, n)
		s := Mul(g, g.T()) // symmetric PSD
		vals, v := JacobiEigen(s)
		// Reconstruct v * diag(vals) * v^T.
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, vals[i])
		}
		rec := Mul(Mul(v, d), v.T())
		if diff := FrobeniusDiff(rec, s); diff > 1e-7*(1+FrobeniusDiff(s, NewDense(n, n))) {
			t.Fatalf("n=%d reconstruction error %v", n, diff)
		}
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
	}
}

func TestRandomizedSVDLowRank(t *testing.T) {
	// Build an exactly rank-3 matrix and verify rank-3 RSVD recovers it.
	rng := rand.New(rand.NewPCG(7, 7))
	u := Gaussian(rng, 40, 3)
	v := Gaussian(rng, 25, 3)
	a := Mul(u, v.T())
	res := RandomizedSVD(a, 3, 5, 2, rng)
	d := NewDense(3, 3)
	for i := 0; i < 3; i++ {
		d.Set(i, i, res.S[i])
	}
	rec := Mul(Mul(res.U, d), res.V.T())
	if diff := FrobeniusDiff(rec, a); diff > 1e-6 {
		t.Fatalf("rank-3 reconstruction error %v", diff)
	}
	if !isOrthonormalCols(res.U, 1e-6) || !isOrthonormalCols(res.V, 1e-6) {
		t.Fatal("U or V not orthonormal")
	}
	for i := 1; i < len(res.S); i++ {
		if res.S[i] > res.S[i-1]+1e-9 {
			t.Fatalf("singular values not descending: %v", res.S)
		}
	}
}

func TestRandomizedSVDMatchesJacobiOnCovariance(t *testing.T) {
	// The top singular values of a matrix equal the square roots of the top
	// eigenvalues of A^T A.
	rng := rand.New(rand.NewPCG(11, 13))
	a := Gaussian(rng, 60, 12)
	res := RandomizedSVD(a, 4, 8, 4, rng)
	ata := Mul(a.T(), a)
	vals, _ := JacobiEigen(ata)
	for i := 0; i < 4; i++ {
		want := math.Sqrt(vals[i])
		if math.Abs(res.S[i]-want) > 1e-5*(1+want) {
			t.Fatalf("singular value %d = %v, want %v", i, res.S[i], want)
		}
	}
}

func TestRandomizedSVDClampsRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 4))
	a := Gaussian(rng, 5, 3)
	res := RandomizedSVD(a, 10, 5, 1, rng) // k larger than min dim
	if len(res.S) > 3 {
		t.Fatalf("rank not clamped: %d singular values", len(res.S))
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		m, k, n := 1+r.IntN(8), 1+r.IntN(8), 1+r.IntN(8)
		a := Gaussian(r, m, k)
		b := Gaussian(r, k, n)
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		return FrobeniusDiff(left, right) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
