// Package hac implements hierarchical agglomerative clustering with Ward
// and complete (max) linkage via the nearest-neighbor-chain algorithm and
// Lance–Williams updates. The paper uses HAC only as a clustering
// baseline for Table 6 (cluster compactness and fitting time vs K-Means),
// on a small sample because of its quadratic memory footprint — the same
// limitation the paper reports.
package hac

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Linkage selects the merge criterion.
type Linkage int

const (
	// Ward minimizes the within-cluster variance increase.
	Ward Linkage = iota
	// Complete merges by the maximum pairwise distance (max-link).
	Complete
)

func (l Linkage) String() string {
	switch l {
	case Ward:
		return "ward"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Result is a flat clustering obtained by cutting the dendrogram at k
// clusters.
type Result struct {
	// Assign maps each input point to a cluster id in [0,k).
	Assign []int
	// Centroids holds the mean of each cluster's points (for parity with
	// the kmeans package; HAC itself does not use centroids).
	Centroids [][]float32
}

// Cluster runs agglomerative clustering until k clusters remain.
// It needs O(n²) memory for the dissimilarity matrix.
func Cluster(points [][]float32, k int, linkage Linkage) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("hac: no points")
	}
	if k < 1 {
		return nil, fmt.Errorf("hac: k = %d, want >= 1", k)
	}
	if k > n {
		k = n
	}
	if linkage != Ward && linkage != Complete {
		return nil, fmt.Errorf("hac: unknown linkage %v", linkage)
	}

	// Dissimilarity matrix. Ward's Lance–Williams recurrence operates on
	// squared Euclidean distances; complete linkage on plain distances.
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var v float64
			if linkage == Ward {
				v = vec.SqDist(points[i], points[j])
			} else {
				v = vec.Dist(points[i], points[j])
			}
			d[i][j], d[j][i] = v, v
		}
	}

	active := make([]bool, n)
	size := make([]int, n)
	parent := make([]int, n) // union-find to recover flat labels
	for i := range active {
		active[i] = true
		size[i] = 1
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	remaining := n
	chain := make([]int, 0, n)
	for remaining > k {
		if len(chain) == 0 {
			for i := 0; i < n; i++ {
				if active[i] {
					chain = append(chain, i)
					break
				}
			}
		}
		top := chain[len(chain)-1]
		// Nearest active neighbor of top; prefer the previous chain
		// element on ties so reciprocal pairs are detected.
		var prev = -1
		if len(chain) >= 2 {
			prev = chain[len(chain)-2]
		}
		nn, best := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if j == top || !active[j] {
				continue
			}
			dj := d[top][j]
			if dj < best || (dj == best && j == prev) {
				best, nn = dj, j
			}
		}
		if nn == prev && prev >= 0 {
			// Reciprocal nearest neighbors: merge top and prev into top.
			chain = chain[:len(chain)-2]
			mergeInto(d, size, active, top, prev, linkage)
			parent[find(prev)] = find(top)
			remaining--
		} else {
			chain = append(chain, nn)
		}
	}

	// Flatten labels.
	label := make(map[int]int)
	res := &Result{Assign: make([]int, n)}
	for i := 0; i < n; i++ {
		r := find(i)
		id, ok := label[r]
		if !ok {
			id = len(label)
			label[r] = id
		}
		res.Assign[i] = id
	}
	// Centroids as member means.
	kk := len(label)
	dim := len(points[0])
	sums := make([][]float64, kk)
	counts := make([]int, kk)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for i, p := range points {
		c := res.Assign[i]
		counts[c]++
		for j, v := range p {
			sums[c][j] += float64(v)
		}
	}
	res.Centroids = make([][]float32, kk)
	for c := 0; c < kk; c++ {
		cent := make([]float32, dim)
		inv := 1 / float64(counts[c])
		for j := range cent {
			cent[j] = float32(sums[c][j] * inv)
		}
		res.Centroids[c] = cent
	}
	return res, nil
}

// mergeInto merges cluster b into cluster a, updating a's dissimilarity
// row with the Lance–Williams recurrence.
func mergeInto(d [][]float64, size []int, active []bool, a, b int, linkage Linkage) {
	na, nb := float64(size[a]), float64(size[b])
	dab := d[a][b]
	for j := range d {
		if !active[j] || j == a || j == b {
			continue
		}
		var v float64
		switch linkage {
		case Ward:
			nj := float64(size[j])
			v = ((na+nj)*d[a][j] + (nb+nj)*d[b][j] - nj*dab) / (na + nb + nj)
		default: // Complete
			v = math.Max(d[a][j], d[b][j])
		}
		d[a][j], d[j][a] = v, v
	}
	size[a] += size[b]
	active[b] = false
}
