package hac

import (
	"math/rand/v2"
	"testing"

	"repro/internal/vec"
)

func blobs(rng *rand.Rand, k, count, dim int, sep, noise float64) (pts [][]float32, truth []int) {
	centers := make([][]float32, k)
	for i := range centers {
		c := make([]float32, dim)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * sep)
		}
		centers[i] = c
	}
	pts = make([][]float32, count)
	truth = make([]int, count)
	for i := range pts {
		t := rng.IntN(k)
		p := vec.Clone(centers[t])
		for j := range p {
			p[j] += float32(rng.NormFloat64() * noise)
		}
		pts[i] = p
		truth[i] = t
	}
	return pts, truth
}

func TestClusterRejectsBadInput(t *testing.T) {
	if _, err := Cluster(nil, 2, Ward); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Cluster([][]float32{{1}}, 0, Ward); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := Cluster([][]float32{{1}}, 1, Linkage(9)); err == nil {
		t.Fatal("expected error for unknown linkage")
	}
}

func purity(assign, truth []int) float64 {
	counts := make(map[[2]int]int)
	for i, c := range assign {
		counts[[2]int{c, truth[i]}]++
	}
	clusterTotal := make(map[int]int)
	clusterBest := make(map[int]int)
	for key, n := range counts {
		clusterTotal[key[0]] += n
		if n > clusterBest[key[0]] {
			clusterBest[key[0]] = n
		}
	}
	var pure, total int
	for c, tot := range clusterTotal {
		pure += clusterBest[c]
		total += tot
	}
	return float64(pure) / float64(total)
}

func TestWardRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	pts, truth := blobs(rng, 4, 200, 3, 10, 0.4)
	res, err := Cluster(pts, 4, Ward)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 4 {
		t.Fatalf("got %d clusters", len(res.Centroids))
	}
	if p := purity(res.Assign, truth); p < 0.95 {
		t.Fatalf("ward purity %v", p)
	}
}

func TestCompleteRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 2)) // seed chosen so the blobs are well separated
	pts, truth := blobs(rng, 3, 150, 3, 12, 0.4)
	res, err := Cluster(pts, 3, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(res.Assign, truth); p < 0.95 {
		t.Fatalf("complete purity %v", p)
	}
}

func TestKClampsToN(t *testing.T) {
	pts := [][]float32{{0}, {1}}
	res, err := Cluster(pts, 5, Ward)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("got %d clusters, want 2", len(res.Centroids))
	}
}

func TestSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	pts, _ := blobs(rng, 2, 50, 2, 5, 0.5)
	res, err := Cluster(pts, 1, Complete)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatalf("assignment %d in single-cluster cut", a)
		}
	}
	// Centroid must equal the global mean.
	mean := make([]float32, 2)
	vec.Mean(mean, pts)
	if vec.Dist(mean, res.Centroids[0]) > 1e-5 {
		t.Fatal("single-cluster centroid is not the global mean")
	}
}

func TestAssignLabelsAreDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	pts, _ := blobs(rng, 5, 120, 3, 8, 0.5)
	res, err := Cluster(pts, 5, Ward)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, a := range res.Assign {
		if a < 0 || a >= 5 {
			t.Fatalf("label %d out of range", a)
		}
		seen[a] = true
	}
	if len(seen) != 5 {
		t.Fatalf("only %d distinct labels", len(seen))
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := make([][]float32, 10)
	for i := range pts {
		pts[i] = []float32{3, 3}
	}
	res, err := Cluster(pts, 3, Ward)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 10 {
		t.Fatal("missing assignments")
	}
}

func TestLinkageString(t *testing.T) {
	if Ward.String() != "ward" || Complete.String() != "complete" {
		t.Fatal("Linkage.String broken")
	}
	if Linkage(7).String() == "" {
		t.Fatal("unknown linkage should format")
	}
}
