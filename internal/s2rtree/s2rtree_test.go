package s2rtree

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/scan"
	"repro/internal/vec"
)

func setup(t *testing.T, kind dataset.Kind, size int) (*dataset.Dataset, *metric.Space, *Index, *scan.Scanner) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{Kind: kind, Size: size, Dim: 24, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpace(ds)
	if err != nil {
		t.Fatal(err)
	}
	return ds, sp, Build(ds, sp, Config{Seed: 1}), scan.New(ds, sp)
}

func TestSearchMatchesScan(t *testing.T) {
	ds, _, idx, sc := setup(t, dataset.TwitterLike, 600)
	for _, lambda := range []float64{0, 0.3, 0.5, 0.7, 1} {
		for qi := 0; qi < 8; qi++ {
			q := ds.Objects[(qi*37+5)%ds.Len()]
			want := sc.Search(&q, 10, lambda, nil)
			got := idx.Search(&q, 10, lambda, nil)
			if len(got) != len(want) {
				t.Fatalf("λ=%v: got %d results", lambda, len(got))
			}
			for i := range want {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("λ=%v q=%d result %d: %v vs %v", lambda, q.ID, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestSearchMatchesScanYelp(t *testing.T) {
	ds, _, idx, sc := setup(t, dataset.YelpLike, 500)
	q := ds.Objects[100]
	want := sc.Search(&q, 25, 0.5, nil)
	got := idx.Search(&q, 25, 0.5, nil)
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestPivotsAreDistinct(t *testing.T) {
	_, _, idx, _ := setup(t, dataset.TwitterLike, 300)
	ps := idx.Pivots()
	if len(ps) != 2 {
		t.Fatalf("got %d pivots", len(ps))
	}
	if vec.Dist(ps[0], ps[1]) == 0 {
		t.Fatal("farthest-first traversal picked identical pivots")
	}
}

func TestMorePivotsStillExact(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 400, Dim: 24, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := metric.NewSpace(ds)
	idx := Build(ds, sp, Config{Pivots: 6, Seed: 2})
	sc := scan.New(ds, sp)
	q := ds.Objects[9]
	want := sc.Search(&q, 10, 0.4, nil)
	got := idx.Search(&q, 10, 0.4, nil)
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	sp := &metric.Space{DsMax: 1, DtMax: 1}
	idx := Build(&dataset.Dataset{Dim: 4}, sp, Config{})
	q := dataset.Object{Vec: make([]float32, 4)}
	if got := idx.Search(&q, 5, 0.5, nil); got != nil {
		t.Fatalf("expected nil results, got %v", got)
	}
}

func TestTinyDataset(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 3, Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := metric.NewSpace(ds)
	idx := Build(ds, sp, Config{})
	got := idx.Search(&ds.Objects[0], 10, 0.5, nil)
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
}

// The spatial-first shortcoming (§2): with λ=0 the spatial component of
// the lower bound vanishes, and the pivot MBBs alone prune little, so the
// index visits a large share of the data. This is the behaviour the paper
// criticises, so we assert it holds qualitatively.
func TestLowLambdaVisitsMany(t *testing.T) {
	ds, _, idx, _ := setup(t, dataset.TwitterLike, 2000)
	q := ds.Objects[11]
	var stLow, stHigh metric.Stats
	idx.Search(&q, 10, 0.0, &stLow)
	idx.Search(&q, 10, 1.0, &stHigh)
	if stLow.VisitedObjects <= stHigh.VisitedObjects {
		t.Fatalf("expected λ=0 (%d visited) to be worse than λ=1 (%d visited)",
			stLow.VisitedObjects, stHigh.VisitedObjects)
	}
}

// Property: the pivot-space Chebyshev gap lower-bounds the true semantic
// distance (the triangle-inequality guarantee all S²R pruning rests on).
func TestPivotLowerBoundProperty(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 400, Dim: 24, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := metric.NewSpace(ds)
	idx := Build(ds, sp, Config{Pivots: 4, Seed: 9})
	for trial := 0; trial < 300; trial++ {
		a := &ds.Objects[(trial*13)%ds.Len()]
		b := &ds.Objects[(trial*29+7)%ds.Len()]
		pa := projectVec(a.Vec, idx.pivots)
		pb := projectVec(b.Vec, idx.pivots)
		lb := chebGap(pa, pb)
		true_ := vec.Dist(a.Vec, b.Vec)
		if lb > true_+1e-6 {
			t.Fatalf("pivot bound %v exceeds true distance %v", lb, true_)
		}
	}
}
