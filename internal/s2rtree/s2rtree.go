// Package s2rtree reimplements the S²R-tree of Chen et al. (GeoInformatica
// 2020), the state-of-the-art competitor of the paper (§2, §7). It is a
// spatial-first index: an R-tree built on the spatial coordinates whose
// nodes are augmented bottom-up with m-dimensional minimum bounding boxes
// (MBBs) of pivot-projected semantic vectors, and whose leaves index the
// m-dimensional representations in a small semantic layer.
//
// The pivot projection maps a semantic vector v to the vector of its
// distances to m pivots chosen by farthest-first traversal. By the
// triangle inequality, |d(v,p_i) − d(q,p_i)| ≤ d(v,q) for every pivot, so
// the Chebyshev distance in pivot space lower-bounds the true semantic
// distance — this is the pruning signal the S²R-tree adds on top of its
// spatial mindist. Query processing is single-priority-queue best-first
// with termination when the popped lower bound reaches the current k-th
// distance, exactly as described in §2.
package s2rtree

import (
	"container/heap"
	"math/rand/v2"
	"sort"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/vec"
)

// Config controls index construction.
type Config struct {
	// Pivots is m, the pivot-space dimensionality (default 2, the value
	// the S²R-tree paper and §7.1 use for projections).
	Pivots int
	// LeafCapacity is the number of objects per spatial leaf
	// (default 64).
	LeafCapacity int
	// Fanout is the internal-node fan-out (default 32).
	Fanout int
	// GroupSize is the size of the semantic sub-groups forming the
	// per-leaf semantic layer (default 8).
	GroupSize int
	// Seed drives pivot selection.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.Pivots <= 0 {
		c.Pivots = 2
	}
	if c.LeafCapacity <= 0 {
		c.LeafCapacity = 64
	}
	if c.Fanout <= 0 {
		c.Fanout = 32
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 8
	}
}

// group is one semantic-layer sub-group of a spatial leaf. ids are
// indices into the object slice (not object IDs, which need not be
// positional).
type group struct {
	sem geo.Rect // pivot-space MBB (raw distances)
	ids []uint32
}

type node struct {
	leaf     bool
	spatial  geo.Rect // 2D
	sem      geo.Rect // pivot-space MBB (raw distances)
	children []*node
	groups   []group // populated at leaves
}

// Index is a built S²R-tree.
type Index struct {
	cfg     Config
	space   *metric.Space
	objects []dataset.Object
	pivots  [][]float32
	proj    [][]float64 // per-object raw pivot distances
	root    *node
}

// Build constructs the index over the dataset.
func Build(ds *dataset.Dataset, space *metric.Space, cfg Config) *Index {
	cfg.applyDefaults()
	idx := &Index{cfg: cfg, space: space, objects: ds.Objects}
	if ds.Len() == 0 {
		idx.root = &node{leaf: true, spatial: geo.NewRect(2), sem: geo.NewRect(cfg.Pivots)}
		return idx
	}
	idx.pivots = selectPivots(ds.Objects, cfg.Pivots, cfg.Seed)
	idx.proj = make([][]float64, len(ds.Objects))
	for i := range ds.Objects {
		idx.proj[i] = projectVec(ds.Objects[i].Vec, idx.pivots)
	}
	order := make([]int, len(ds.Objects))
	for i := range order {
		order[i] = i
	}
	leaves := idx.packLeaves(order)
	idx.root = idx.packUpper(leaves)
	return idx
}

// selectPivots picks m pivots by farthest-first traversal over a sample.
func selectPivots(objects []dataset.Object, m int, seed uint64) [][]float32 {
	rng := rand.New(rand.NewPCG(seed, 0x53325254))
	sampleSize := 2000
	if sampleSize > len(objects) {
		sampleSize = len(objects)
	}
	perm := rng.Perm(len(objects))[:sampleSize]
	if m > sampleSize {
		m = sampleSize
	}
	pivots := make([][]float32, 0, m)
	first := objects[perm[0]].Vec
	pivots = append(pivots, vec.Clone(first))
	minD := make([]float64, sampleSize)
	for i, pi := range perm {
		minD[i] = vec.SqDist(objects[pi].Vec, first)
	}
	for len(pivots) < m {
		best, bestD := 0, -1.0
		for i := range perm {
			if minD[i] > bestD {
				best, bestD = i, minD[i]
			}
		}
		p := vec.Clone(objects[perm[best]].Vec)
		pivots = append(pivots, p)
		for i, pi := range perm {
			if d := vec.SqDist(objects[pi].Vec, p); d < minD[i] {
				minD[i] = d
			}
		}
	}
	return pivots
}

func projectVec(v []float32, pivots [][]float32) []float64 {
	out := make([]float64, len(pivots))
	for i, p := range pivots {
		out[i] = vec.Dist(v, p)
	}
	return out
}

// packLeaves tiles object indices by (x,y) using STR into spatial leaves,
// each carrying its semantic layer.
func (x *Index) packLeaves(order []int) []*node {
	cap := x.cfg.LeafCapacity
	numLeaves := (len(order) + cap - 1) / cap
	slabs := intSqrtCeil(numLeaves)
	slabSize := (len(order) + slabs - 1) / slabs
	sort.Slice(order, func(a, b int) bool { return x.objects[order[a]].X < x.objects[order[b]].X })
	var leaves []*node
	for lo := 0; lo < len(order); lo += slabSize {
		hi := lo + slabSize
		if hi > len(order) {
			hi = len(order)
		}
		slab := order[lo:hi]
		sort.Slice(slab, func(a, b int) bool { return x.objects[slab[a]].Y < x.objects[slab[b]].Y })
		for l2 := 0; l2 < len(slab); l2 += cap {
			h2 := l2 + cap
			if h2 > len(slab) {
				h2 = len(slab)
			}
			leaves = append(leaves, x.buildLeaf(slab[l2:h2]))
		}
	}
	return leaves
}

// buildLeaf creates a spatial leaf and its semantic layer over members.
func (x *Index) buildLeaf(members []int) *node {
	n := &node{leaf: true, spatial: geo.NewRect(2), sem: geo.NewRect(x.cfg.Pivots)}
	// Sort members by first pivot coordinate and chop into semantic
	// groups (a 1-level STR in pivot space — the leaf-local "R-tree that
	// indexes the m-dimensional representations").
	ms := make([]int, len(members))
	copy(ms, members)
	sort.Slice(ms, func(a, b int) bool { return x.proj[ms[a]][0] < x.proj[ms[b]][0] })
	for lo := 0; lo < len(ms); lo += x.cfg.GroupSize {
		hi := lo + x.cfg.GroupSize
		if hi > len(ms) {
			hi = len(ms)
		}
		g := group{sem: geo.NewRect(x.cfg.Pivots)}
		for _, i := range ms[lo:hi] {
			g.sem.ExtendPoint(x.proj[i])
			g.ids = append(g.ids, uint32(i))
		}
		n.groups = append(n.groups, g)
		n.sem.ExtendRect(g.sem)
	}
	for _, i := range members {
		n.spatial.ExtendPoint([]float64{x.objects[i].X, x.objects[i].Y})
	}
	return n
}

// packUpper builds the internal levels over the leaves, propagating both
// the spatial MBRs and the semantic MBBs bottom-up.
func (x *Index) packUpper(level []*node) *node {
	for len(level) > 1 {
		sort.Slice(level, func(a, b int) bool {
			ca := level[a].spatial.Lo[0] + level[a].spatial.Hi[0]
			cb := level[b].spatial.Lo[0] + level[b].spatial.Hi[0]
			return ca < cb
		})
		var next []*node
		for lo := 0; lo < len(level); lo += x.cfg.Fanout {
			hi := lo + x.cfg.Fanout
			if hi > len(level) {
				hi = len(level)
			}
			p := &node{spatial: geo.NewRect(2), sem: geo.NewRect(x.cfg.Pivots)}
			for _, c := range level[lo:hi] {
				p.children = append(p.children, c)
				p.spatial.ExtendRect(c.spatial)
				p.sem.ExtendRect(c.sem)
			}
			next = append(next, p)
		}
		level = next
	}
	return level[0]
}

func intSqrtCeil(n int) int {
	if n <= 1 {
		return 1
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// pqItem is a best-first queue element.
type pqItem struct {
	lb  float64
	n   *node
	g   *group
	gn  *node // owning leaf of g (for its spatial rect)
	id  uint32
	obj bool
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].lb < p[j].lb }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(v interface{}) { *p = append(*p, v.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	v := old[n-1]
	*p = old[:n-1]
	return v
}

// Search returns the exact k nearest neighbors of q under
// d = λ·ds + (1−λ)·dt.
func (x *Index) Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	h := knn.NewHeap(k)
	if len(x.objects) == 0 {
		return nil
	}
	qp := []float64{q.X, q.Y}
	dq := projectVec(q.Vec, x.pivots)
	nodeLB := func(n *node) float64 {
		return lambda*n.spatial.MinDist(qp)/x.space.DsMax +
			(1-lambda)*n.sem.MinDistChebyshev(dq)/x.space.DtMax
	}
	var queue pq
	heap.Push(&queue, pqItem{lb: nodeLB(x.root), n: x.root})
	for queue.Len() > 0 {
		item := heap.Pop(&queue).(pqItem)
		if bound, ok := h.Bound(); ok && item.lb >= bound {
			break // best-first termination (§2)
		}
		switch {
		case item.obj:
			o := &x.objects[item.id]
			d := x.space.Distance(st, lambda, q, o)
			h.Push(knn.Result{ID: o.ID, Dist: d})
		case item.g != nil:
			for _, id := range item.g.ids {
				o := &x.objects[id]
				// Exact spatial distance plus the pivot semantic lower
				// bound.
				semLB := chebGap(dq, x.proj[id])
				lb := lambda*x.space.Spatial(st, q.X, q.Y, o.X, o.Y) +
					(1-lambda)*semLB/x.space.DtMax
				heap.Push(&queue, pqItem{lb: lb, id: id, obj: true})
			}
		default:
			if st != nil {
				st.ClustersExamined++
			}
			n := item.n
			if n.leaf {
				for i := range n.groups {
					g := &n.groups[i]
					lb := lambda*n.spatial.MinDist(qp)/x.space.DsMax +
						(1-lambda)*g.sem.MinDistChebyshev(dq)/x.space.DtMax
					heap.Push(&queue, pqItem{lb: lb, g: g, gn: n})
				}
			} else {
				for _, c := range n.children {
					heap.Push(&queue, pqItem{lb: nodeLB(c), n: c})
				}
			}
		}
	}
	return h.Sorted()
}

// chebGap returns max_i |a_i − b_i|, the pivot-space Chebyshev distance
// between two projected points.
func chebGap(a, b []float64) float64 {
	var mx float64
	for i, v := range a {
		d := v - b[i]
		if d < 0 {
			d = -d
		}
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Pivots exposes the selected pivots (for tests).
func (x *Index) Pivots() [][]float32 { return x.pivots }
