package text

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize checks the tokenizer's contract on arbitrary input: no
// panics, every token lower-case, no stop words, no separator runes.
func FuzzTokenize(f *testing.F) {
	f.Add("The quick brown fox!")
	f.Add("")
	f.Add("çafé ÜBER 123 --- \t\n")
	f.Add("a b c d e f g h")
	f.Add(strings.Repeat("word ", 100))
	f.Fuzz(func(t *testing.T, s string) {
		tokens := Tokenize(s)
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			if IsStopWord(tok) {
				t.Fatalf("stop word %q survived", tok)
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("separator rune %q in token %q", r, tok)
				}
			}
			// Lower-casing must be a fixed point. (Some uppercase runes
			// like U+03D2 have no lowercase mapping, so checking
			// unicode.IsUpper directly would be wrong.)
			if low := strings.ToLower(tok); low != tok {
				t.Fatalf("token %q not lower-cased (want %q)", tok, low)
			}
		}
	})
}
