package text

import (
	"math/rand/v2"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	got := Tokenize("The quick, brown FOX jumps over the lazy dog!")
	want := []string{"quick", "brown", "fox", "jumps", "over", "lazy", "dog"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeDropsStopWordsAndPunct(t *testing.T) {
	got := Tokenize("it is a --- ???")
	if len(got) != 0 {
		t.Fatalf("expected empty tokens, got %v", got)
	}
}

func TestTokenizeKeepsDigits(t *testing.T) {
	got := Tokenize("route 66 diner")
	if len(got) != 3 || got[1] != "66" {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("the") {
		t.Fatal("'the' should be a stop word")
	}
	if IsStopWord("restaurant") {
		t.Fatal("'restaurant' should not be a stop word")
	}
}

func TestVocabularyBasics(t *testing.T) {
	v := NewVocabulary(100, 7, 1.0)
	if v.Size() != 100 {
		t.Fatalf("Size = %d", v.Size())
	}
	if v.NumTopics() != 7 {
		t.Fatalf("NumTopics = %d", v.NumTopics())
	}
	// Every word maps back to its own rank.
	for i, w := range v.Words {
		j, ok := v.Index(w)
		if !ok || j != i {
			t.Fatalf("Index(%q) = %d,%v want %d,true", w, j, ok, i)
		}
	}
	if _, ok := v.Index("notaword"); ok {
		t.Fatal("unknown word should not be found")
	}
}

func TestWordNamesUnique(t *testing.T) {
	v := NewVocabulary(2000, 3, 1.0)
	seen := make(map[string]struct{}, v.Size())
	for _, w := range v.Words {
		if _, dup := seen[w]; dup {
			t.Fatalf("duplicate word name %q", w)
		}
		seen[w] = struct{}{}
	}
}

func TestSampleWordZipfSkew(t *testing.T) {
	v := NewVocabulary(1000, 10, 1.0)
	rng := rand.New(rand.NewPCG(1, 1))
	counts := make([]int, v.Size())
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[v.SampleWord(rng)]++
	}
	// Rank 0 should be drawn far more often than rank 100.
	if counts[0] < 4*counts[100] {
		t.Fatalf("Zipf skew missing: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
	// All draws are valid ranks (no panic) and frequent words dominate.
	var topDecile int
	for i := 0; i < 100; i++ {
		topDecile += counts[i]
	}
	if float64(topDecile)/draws < 0.5 {
		t.Fatalf("top-100 words only %d/%d draws", topDecile, draws)
	}
}

func TestSampleTopicWordRespectsTopic(t *testing.T) {
	v := NewVocabulary(500, 5, 1.0)
	rng := rand.New(rand.NewPCG(2, 3))
	for topic := 0; topic < 5; topic++ {
		for i := 0; i < 200; i++ {
			w := v.SampleTopicWord(rng, topic)
			if v.Topics[w] != topic {
				t.Fatalf("word %d has topic %d, want %d", w, v.Topics[w], topic)
			}
		}
	}
}

func TestNewVocabularyPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVocabulary(0, 1, 1.0)
}
