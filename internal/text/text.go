// Package text provides the textual preprocessing used ahead of the
// embedding lookup: tokenization, stop-word removal, a vocabulary with
// Zipf-distributed sampling, and the "at least three content words"
// filter the paper applies to tweets and reviews (§7.1).
package text

import (
	"math"
	"math/rand/v2"
	"strings"
	"unicode"
)

// stopWords is a compact English stop-word list in the spirit of the
// standard NLTK set; the paper drops stop-words before averaging word
// vectors.
var stopWords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"but": {}, "by": {}, "for": {}, "from": {}, "had": {}, "has": {},
	"have": {}, "he": {}, "her": {}, "his": {}, "i": {}, "in": {},
	"is": {}, "it": {}, "its": {}, "me": {}, "my": {}, "not": {},
	"of": {}, "on": {}, "or": {}, "our": {}, "she": {}, "so": {},
	"that": {}, "the": {}, "their": {}, "them": {}, "there": {},
	"they": {}, "this": {}, "to": {}, "was": {}, "we": {}, "were": {},
	"what": {}, "when": {}, "which": {}, "who": {}, "will": {},
	"with": {}, "you": {}, "your": {},
}

// IsStopWord reports whether w (lower-case) is in the stop-word list.
func IsStopWord(w string) bool {
	_, ok := stopWords[w]
	return ok
}

// Tokenize lower-cases s, splits it on any non-letter/digit rune, and
// drops stop-words and empty tokens. This mirrors the paper's
// preprocessing before the embedding lookup.
func Tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := fields[:0]
	for _, f := range fields {
		if IsStopWord(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// MinContentWords is the minimum number of content words a document must
// have to be kept (paper §7.1: documents with fewer than 3 words are
// dropped).
const MinContentWords = 3

// Vocabulary is a fixed set of synthetic words with Zipf-distributed
// frequencies, grouped into topics. It backs the synthetic embedding
// model (see DESIGN.md §4 on substitutions).
type Vocabulary struct {
	Words  []string // Words[i] is the i-th most frequent word
	Topics []int    // Topics[i] is the topic id of Words[i]
	// byWord maps a word back to its index.
	byWord map[string]int
	// cdf is the cumulative Zipf distribution over word ranks.
	cdf []float64
}

// NewVocabulary builds a synthetic vocabulary of size words spread over
// numTopics topics, with Zipf exponent s (s≈1 mirrors natural language).
// Words are named "w<rank>" and assigned round-robin to topics so that
// every topic mixes frequent and rare words.
func NewVocabulary(size, numTopics int, s float64) *Vocabulary {
	if size < 1 || numTopics < 1 {
		panic("text: NewVocabulary requires size >= 1 and numTopics >= 1")
	}
	v := &Vocabulary{
		Words:  make([]string, size),
		Topics: make([]int, size),
		byWord: make(map[string]int, size),
		cdf:    make([]float64, size),
	}
	var total float64
	for i := 0; i < size; i++ {
		v.Words[i] = wordName(i)
		v.Topics[i] = i % numTopics
		v.byWord[v.Words[i]] = i
		total += 1 / math.Pow(float64(i+1), s)
		v.cdf[i] = total
	}
	for i := range v.cdf {
		v.cdf[i] /= total
	}
	return v
}

// NewVocabularyFromWords wraps an externally supplied word list (e.g.
// the words of a loaded GloVe file) as a Vocabulary with uniform sampling
// weights and a single topic. Duplicate words keep their first rank.
func NewVocabularyFromWords(words []string) *Vocabulary {
	if len(words) == 0 {
		panic("text: NewVocabularyFromWords with no words")
	}
	v := &Vocabulary{
		Words:  words,
		Topics: make([]int, len(words)),
		byWord: make(map[string]int, len(words)),
		cdf:    make([]float64, len(words)),
	}
	for i, w := range words {
		if _, dup := v.byWord[w]; !dup {
			v.byWord[w] = i
		}
		v.cdf[i] = float64(i+1) / float64(len(words))
	}
	return v
}

func wordName(rank int) string {
	// A short deterministic pseudo-word: "w" + base-26 letters of rank.
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := []byte{'w'}
	r := rank
	for {
		b = append(b, letters[r%26])
		r /= 26
		if r == 0 {
			break
		}
	}
	return string(b)
}

// Size returns the number of words in the vocabulary.
func (v *Vocabulary) Size() int { return len(v.Words) }

// NumTopics returns the number of topics.
func (v *Vocabulary) NumTopics() int {
	max := 0
	for _, t := range v.Topics {
		if t > max {
			max = t
		}
	}
	return max + 1
}

// Index returns the rank of w and whether it is in the vocabulary.
func (v *Vocabulary) Index(w string) (int, bool) {
	i, ok := v.byWord[w]
	return i, ok
}

// SampleWord draws a word rank from the Zipf distribution.
func (v *Vocabulary) SampleWord(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(v.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SampleTopicWord draws a word rank whose topic equals topic, by
// rejection sampling from the Zipf distribution (falling back to a linear
// scan within the topic after too many rejections, which keeps the method
// exact for small topics).
func (v *Vocabulary) SampleTopicWord(rng *rand.Rand, topic int) int {
	for tries := 0; tries < 64; tries++ {
		w := v.SampleWord(rng)
		if v.Topics[w] == topic {
			return w
		}
	}
	// Deterministic fallback: uniformly among the topic's words.
	var members []int
	for i, t := range v.Topics {
		if t == topic {
			members = append(members, i)
		}
	}
	if len(members) == 0 {
		return v.SampleWord(rng)
	}
	return members[rng.IntN(len(members))]
}
