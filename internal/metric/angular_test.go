package metric

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/vec"
)

func TestAngularDistBasics(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if d := vec.AngularDist(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("orthogonal distance = %v, want 0.5", d)
	}
	if d := vec.AngularDist(a, []float32{-1, 0}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("opposite distance = %v, want 1", d)
	}
	if d := vec.AngularDist(a, []float32{5, 0}); d != 0 {
		t.Fatalf("parallel distance = %v, want 0 (scale invariance)", d)
	}
	if d := vec.AngularDist(a, a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestAngularDistZeroVectors(t *testing.T) {
	z := []float32{0, 0}
	a := []float32{1, 2}
	if d := vec.AngularDist(z, z); d != 0 {
		t.Fatalf("zero-zero = %v", d)
	}
	if d := vec.AngularDist(z, a); d != 1 {
		t.Fatalf("zero-nonzero = %v, want 1", d)
	}
}

// Property: the angular distance satisfies the metric axioms (symmetry,
// identity-like behavior on directions, triangle inequality) — the
// precondition for the paper's bounds (§4.2) under this metric.
func TestAngularMetricAxioms(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 2 + rng.IntN(16)
		mk := func() []float32 {
			v := make([]float32, n)
			for i := range v {
				v[i] = float32(rng.NormFloat64())
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		dab, dba := vec.AngularDist(a, b), vec.AngularDist(b, a)
		if math.Abs(dab-dba) > 1e-12 {
			return false
		}
		if dab < 0 || dab > 1 {
			return false
		}
		return vec.AngularDist(a, c) <= dab+vec.AngularDist(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewSpaceWithSemanticAngular(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 100, Dim: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpaceWithSemantic(ds, AngularSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if sp.DtMax != 1 || sp.SemanticKind != AngularSemantic {
		t.Fatalf("space = %+v", sp)
	}
	// SemanticVec routes to the angular metric.
	d := sp.SemanticVec([]float32{1, 0, 0, 0, 0, 0, 0, 0}, []float32{0, 1, 0, 0, 0, 0, 0, 0})
	if math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("angular SemanticVec = %v", d)
	}
	// The combined λ-distance remains a metric.
	for trial := 0; trial < 200; trial++ {
		a := &ds.Objects[trial%ds.Len()]
		b := &ds.Objects[(trial*7+1)%ds.Len()]
		c := &ds.Objects[(trial*13+2)%ds.Len()]
		lambda := float64(trial%11) / 10
		dac := sp.Distance(nil, lambda, a, c)
		dab := sp.Distance(nil, lambda, a, b)
		dbc := sp.Distance(nil, lambda, b, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle inequality broken at λ=%v", lambda)
		}
	}
}
