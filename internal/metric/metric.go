// Package metric defines the paper's distance model (§3): a normalized
// spatial Euclidean distance ds, a normalized semantic Euclidean distance
// dt, and their λ-weighted combination d = λ·ds + (1−λ)·dt, plus the
// projected-space variant d't used by CSSIA. All distances are normalized
// by conservative maxima estimated from per-dimension corner points
// (paper footnote 1), so every component lies in [0,1].
//
// The package also carries the distance-calculation counters the
// evaluation reports (Fig. 16 measures exactly these).
package metric

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/vec"
)

// SemanticMetric selects the semantic distance function. The paper's
// theory (§4.2) holds for arbitrary metrics; the evaluation uses the
// normalized Euclidean distance, and the angular option exists to
// demonstrate (and test) metric-independence.
type SemanticMetric int

const (
	// EuclideanSemantic is the paper's normalized Euclidean distance.
	EuclideanSemantic SemanticMetric = iota
	// AngularSemantic is the angle between embedding vectors divided by
	// π — the metric counterpart of cosine similarity.
	AngularSemantic
)

// Space is the normalized spatio-semantic metric space of one dataset.
type Space struct {
	// DsMax and DtMax are the conservative spatial/semantic diameter
	// estimates used as normalizers.
	DsMax, DtMax float64
	// DtProjMax normalizes distances in the m-dimensional projected
	// space (set by SetProjectedNormalizer; zero until then).
	DtProjMax float64
	// Semantic selects the semantic distance (default Euclidean).
	// Angular distances are natively in [0,1], so DtMax is 1 then.
	SemanticKind SemanticMetric
}

// NewSpace estimates the normalizers from the dataset using the corner
// points of the per-dimension bounding box (paper footnote 1: distance
// from the virtual all-minima point to the virtual all-maxima point),
// with the Euclidean semantic metric.
func NewSpace(ds *dataset.Dataset) (*Space, error) {
	return NewSpaceWithSemantic(ds, EuclideanSemantic)
}

// NewSpaceWithSemantic is NewSpace with an explicit semantic metric.
func NewSpaceWithSemantic(ds *dataset.Dataset, kind SemanticMetric) (*Space, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("metric: empty dataset")
	}
	minX, maxX := ds.Objects[0].X, ds.Objects[0].X
	minY, maxY := ds.Objects[0].Y, ds.Objects[0].Y
	vecs := make([][]float32, ds.Len())
	for i := range ds.Objects {
		o := &ds.Objects[i]
		if o.X < minX {
			minX = o.X
		}
		if o.X > maxX {
			maxX = o.X
		}
		if o.Y < minY {
			minY = o.Y
		}
		if o.Y > maxY {
			maxY = o.Y
		}
		vecs[i] = o.Vec
	}
	s := &Space{
		DsMax:        math.Hypot(maxX-minX, maxY-minY),
		SemanticKind: kind,
	}
	if kind == AngularSemantic {
		s.DtMax = 1 // angular distances are natively normalized
	} else {
		lo, hi := vec.MinMax(vecs)
		s.DtMax = vec.Dist(lo, hi)
	}
	if s.DsMax == 0 {
		s.DsMax = 1 // all objects at one location; any positive value works
	}
	if s.DtMax == 0 {
		s.DtMax = 1
	}
	return s, nil
}

// SetProjectedNormalizer estimates DtProjMax from the projected vectors
// with the same corner-point rule.
func (s *Space) SetProjectedNormalizer(projected [][]float32) {
	if len(projected) == 0 {
		s.DtProjMax = 1
		return
	}
	lo, hi := vec.MinMax(projected)
	s.DtProjMax = vec.Dist(lo, hi)
	if s.DtProjMax == 0 {
		s.DtProjMax = 1
	}
}

// SetProjectedNormalizerArena is SetProjectedNormalizer over a
// contiguous row-major arena of projected vectors with the given
// dimensionality (the index's SoA layout), avoiding the per-row slice
// headers.
func (s *Space) SetProjectedNormalizerArena(arena []float32, dim int) {
	if len(arena) == 0 || dim <= 0 {
		s.DtProjMax = 1
		return
	}
	lo, hi := vec.MinMaxStrided(arena, dim)
	s.DtProjMax = vec.Dist(lo, hi)
	if s.DtProjMax == 0 {
		s.DtProjMax = 1
	}
}

// Stats counts the work done while answering one query (or a batch).
// The paper reports visited objects and per-space distance calculations.
type Stats struct {
	// SpatialDistCalcs and SemanticDistCalcs count object-level distance
	// computations in each space (Fig. 16's metric is their sum).
	SpatialDistCalcs  int64 `json:"spatialDistCalcs"`
	SemanticDistCalcs int64 `json:"semanticDistCalcs"`
	// VisitedObjects counts objects whose full distance to the query was
	// evaluated.
	VisitedObjects int64 `json:"visitedObjects"`
	// InterPruned counts objects skipped because their whole cluster (or
	// subtree) was pruned; IntraPruned counts objects skipped inside an
	// examined cluster.
	InterPruned int64 `json:"interPruned"`
	IntraPruned int64 `json:"intraPruned"`
	// ClustersExamined and ClustersPruned count hybrid clusters (or
	// index nodes) examined vs pruned wholesale.
	ClustersExamined int64 `json:"clustersExamined"`
	ClustersPruned   int64 `json:"clustersPruned"`
	// ClustersOrdered counts clusters whose position in the visit order
	// was actually materialized — pops from the lazy best-first frontier
	// (a weak entry re-pushed with its refined bound is popped, and
	// counted, twice). The eager sort this replaced ordered every
	// cluster; on a pruned query ClustersOrdered stays far below
	// ClustersExamined+ClustersPruned, which is the ordering-phase win.
	ClustersOrdered int64 `json:"clustersOrdered"`
	// ClustersRouted counts clusters whose visit position was decided by
	// the learned router instead of the admissible bound order: the
	// front-loaded prefix of a routed exact query (scanned or skipped by
	// the bound test), or every cluster the routed approximate mode
	// visited. Zero on unrouted queries.
	ClustersRouted int64 `json:"clustersRouted"`
	// QuantPruned counts candidates excluded by the SQ8 quantized lower
	// bound alone (no exact semantic kernel ran); QuantReranked counts
	// candidates that survived the quantized filter and were rescored
	// with the exact float32 kernel. Their ratio is the filter's
	// selectivity — the rerank ratio the server exports as a histogram.
	QuantPruned   int64 `json:"quantPruned"`
	QuantReranked int64 `json:"quantReranked"`
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.SpatialDistCalcs += o.SpatialDistCalcs
	s.SemanticDistCalcs += o.SemanticDistCalcs
	s.VisitedObjects += o.VisitedObjects
	s.InterPruned += o.InterPruned
	s.IntraPruned += o.IntraPruned
	s.ClustersExamined += o.ClustersExamined
	s.ClustersPruned += o.ClustersPruned
	s.ClustersOrdered += o.ClustersOrdered
	s.ClustersRouted += o.ClustersRouted
	s.QuantPruned += o.QuantPruned
	s.QuantReranked += o.QuantReranked
}

// DistCalcs returns the total number of per-space distance calculations.
func (s *Stats) DistCalcs() int64 { return s.SpatialDistCalcs + s.SemanticDistCalcs }

// SpatialXY returns the normalized spatial distance between two raw
// coordinate pairs.
func (s *Space) SpatialXY(ax, ay, bx, by float64) float64 {
	return math.Hypot(ax-bx, ay-by) / s.DsMax
}

// Spatial returns ds(q,o), counting one spatial distance calculation.
func (s *Space) Spatial(st *Stats, qx, qy, ox, oy float64) float64 {
	if st != nil {
		st.SpatialDistCalcs++
	}
	return s.SpatialXY(qx, qy, ox, oy)
}

// SemanticVec returns the normalized semantic distance between two
// n-dimensional vectors under the space's semantic metric.
func (s *Space) SemanticVec(a, b []float32) float64 {
	if s.SemanticKind == AngularSemantic {
		return vec.AngularDist(a, b)
	}
	return vec.Dist(a, b) / s.DtMax
}

// Semantic returns dt(q,o), counting one semantic distance calculation.
func (s *Space) Semantic(st *Stats, a, b []float32) float64 {
	if st != nil {
		st.SemanticDistCalcs++
	}
	return s.SemanticVec(a, b)
}

// semanticBoundSlack inflates the squared early-abandon limit so that a
// candidate is only abandoned when its distance provably exceeds the
// bound: without the slack, floating-point rounding in bound*DtMax and
// the squaring could abandon a candidate whose exact normalized distance
// ties the bound to the last bit. 1e-9 relative is orders of magnitude
// above the rounding error of these few operations and orders of
// magnitude below any distance gap the float32 inputs can represent.
const semanticBoundSlack = 1e-9

// SemanticVecBound is SemanticVec with early abandonment: if the
// distance provably exceeds bound, it returns ok=false (and an undefined
// distance) without finishing the kernel. When ok is true the returned
// distance is exact and bit-identical to SemanticVec. Only the Euclidean
// metric can abandon (its partial sums are monotone); the angular metric
// computes fully and always returns ok=true.
func (s *Space) SemanticVecBound(a, b []float32, bound float64) (float64, bool) {
	if s.SemanticKind == AngularSemantic {
		return vec.AngularDist(a, b), true
	}
	if math.IsInf(bound, 1) {
		return vec.Dist(a, b) / s.DtMax, true
	}
	if bound < 0 {
		bound = 0
	}
	limit := bound * s.DtMax
	limit *= limit
	limit += limit * semanticBoundSlack
	sq := vec.SqDistBound(a, b, limit)
	if sq > limit {
		return 0, false
	}
	return math.Sqrt(sq) / s.DtMax, true
}

// SemanticBound is SemanticVecBound counting one semantic distance
// calculation (abandoned kernels count too: the work matters, not the
// outcome — and the paper's Fig. 16 counts per-object calculations).
func (s *Space) SemanticBound(st *Stats, a, b []float32, bound float64) (float64, bool) {
	if st != nil {
		st.SemanticDistCalcs++
	}
	return s.SemanticVecBound(a, b, bound)
}

// SemanticProjVec returns the normalized semantic distance in the
// projected space (d't). SetProjectedNormalizer must have been called.
func (s *Space) SemanticProjVec(a, b []float32) float64 {
	return vec.Dist(a, b) / s.DtProjMax
}

// SemanticProj returns d't(q,o), counting one semantic distance
// calculation.
func (s *Space) SemanticProj(st *Stats, a, b []float32) float64 {
	if st != nil {
		st.SemanticDistCalcs++
	}
	return s.SemanticProjVec(a, b)
}

// Combine applies the λ-weighting of Eq. 1.
func Combine(lambda, ds, dt float64) float64 {
	return lambda*ds + (1-lambda)*dt
}

// Distance computes d(q,o) = λ·ds + (1−λ)·dt for two objects, counting
// one visited object and one distance calculation per space.
func (s *Space) Distance(st *Stats, lambda float64, q, o *dataset.Object) float64 {
	if st != nil {
		st.VisitedObjects++
	}
	ds := s.Spatial(st, q.X, q.Y, o.X, o.Y)
	dt := s.Semantic(st, q.Vec, o.Vec)
	return Combine(lambda, ds, dt)
}
