package metric

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func testDataset(t *testing.T, size int) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: size, Dim: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewSpaceRejectsEmpty(t *testing.T) {
	if _, err := NewSpace(&dataset.Dataset{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestNormalizationBounds(t *testing.T) {
	ds := testDataset(t, 400)
	sp, err := NewSpace(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Every pairwise distance must normalize into [0,1]: the corner
	// estimate is conservative.
	for i := 0; i < 50; i++ {
		a, b := &ds.Objects[i], &ds.Objects[(i*7+13)%ds.Len()]
		dsv := sp.SpatialXY(a.X, a.Y, b.X, b.Y)
		dtv := sp.SemanticVec(a.Vec, b.Vec)
		if dsv < 0 || dsv > 1 {
			t.Fatalf("ds out of [0,1]: %v", dsv)
		}
		if dtv < 0 || dtv > 1 {
			t.Fatalf("dt out of [0,1]: %v", dtv)
		}
	}
}

func TestDistanceCombination(t *testing.T) {
	ds := testDataset(t, 100)
	sp, _ := NewSpace(ds)
	q, o := &ds.Objects[0], &ds.Objects[1]
	var st Stats
	d0 := sp.Distance(&st, 0, q, o)
	d1 := sp.Distance(&st, 1, q, o)
	dHalf := sp.Distance(&st, 0.5, q, o)
	wantHalf := (d0 + d1) / 2
	if math.Abs(dHalf-wantHalf) > 1e-12 {
		t.Fatalf("λ=0.5 distance %v, want midpoint %v", dHalf, wantHalf)
	}
	// λ=1 must equal pure spatial, λ=0 pure semantic.
	if math.Abs(d1-sp.SpatialXY(q.X, q.Y, o.X, o.Y)) > 1e-12 {
		t.Fatal("λ=1 is not pure spatial")
	}
	if math.Abs(d0-sp.SemanticVec(q.Vec, o.Vec)) > 1e-12 {
		t.Fatal("λ=0 is not pure semantic")
	}
}

func TestStatsCounting(t *testing.T) {
	ds := testDataset(t, 10)
	sp, _ := NewSpace(ds)
	var st Stats
	sp.Distance(&st, 0.5, &ds.Objects[0], &ds.Objects[1])
	if st.VisitedObjects != 1 || st.SpatialDistCalcs != 1 || st.SemanticDistCalcs != 1 {
		t.Fatalf("stats after one Distance: %+v", st)
	}
	if st.DistCalcs() != 2 {
		t.Fatalf("DistCalcs = %d", st.DistCalcs())
	}
	var sum Stats
	sum.Add(&st)
	sum.Add(&st)
	if sum.VisitedObjects != 2 || sum.DistCalcs() != 4 {
		t.Fatalf("Add broken: %+v", sum)
	}
	// Nil stats must be tolerated.
	if d := sp.Distance(nil, 0.5, &ds.Objects[0], &ds.Objects[1]); d <= 0 {
		t.Fatalf("nil-stats distance = %v", d)
	}
}

// The λ-combination of two metrics is itself a metric: triangle
// inequality must hold for arbitrary objects and λ.
func TestCombinedTriangleInequality(t *testing.T) {
	ds := testDataset(t, 300)
	sp, _ := NewSpace(ds)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		lambda := rng.Float64()
		a := &ds.Objects[rng.IntN(ds.Len())]
		b := &ds.Objects[rng.IntN(ds.Len())]
		c := &ds.Objects[rng.IntN(ds.Len())]
		dab := sp.Distance(nil, lambda, a, b)
		dbc := sp.Distance(nil, lambda, b, c)
		dac := sp.Distance(nil, lambda, a, c)
		if math.Abs(dab-sp.Distance(nil, lambda, b, a)) > 1e-12 {
			return false // symmetry
		}
		return dac <= dab+dbc+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSetProjectedNormalizer(t *testing.T) {
	sp := &Space{DsMax: 1, DtMax: 1}
	sp.SetProjectedNormalizer([][]float32{{0, 0}, {3, 4}})
	if sp.DtProjMax != 5 {
		t.Fatalf("DtProjMax = %v, want 5", sp.DtProjMax)
	}
	if d := sp.SemanticProjVec([]float32{0, 0}, []float32{3, 4}); d != 1 {
		t.Fatalf("projected distance = %v, want 1", d)
	}
	// Degenerate inputs fall back to 1.
	sp.SetProjectedNormalizer(nil)
	if sp.DtProjMax != 1 {
		t.Fatalf("empty fallback = %v", sp.DtProjMax)
	}
	sp.SetProjectedNormalizer([][]float32{{2, 2}, {2, 2}})
	if sp.DtProjMax != 1 {
		t.Fatalf("zero-diameter fallback = %v", sp.DtProjMax)
	}
}

func TestDegenerateDatasetNormalizers(t *testing.T) {
	// All objects identical: normalizers must stay positive.
	objs := make([]dataset.Object, 5)
	for i := range objs {
		objs[i] = dataset.Object{ID: uint32(i), X: 0.5, Y: 0.5, Vec: []float32{1, 2, 3}}
	}
	sp, err := NewSpace(&dataset.Dataset{Objects: objs, Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sp.DsMax <= 0 || sp.DtMax <= 0 {
		t.Fatalf("degenerate normalizers: %+v", sp)
	}
	if d := sp.Distance(nil, 0.5, &objs[0], &objs[1]); d != 0 {
		t.Fatalf("identical objects should have zero distance, got %v", d)
	}
}
