// Package kmeans implements Lloyd's K-Means with k-means++ seeding, the
// clustering primitive behind both the spatial and the semantic sides of
// CSSI's hybrid index (paper Alg. 1, lines 2 and 7). The paper fits
// K-Means on a 10% sample and then assigns the remaining objects to their
// nearest centroid (§7.1); SampleFit reproduces that recipe.
//
// Distances here are plain (unnormalized) Euclidean: K-Means assignments
// are invariant under the positive scaling the metric layer applies.
package kmeans

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/vec"
)

// Result is a fitted clustering.
type Result struct {
	// Centroids holds the k cluster centers.
	Centroids [][]float32
	// Assign maps every input point index to its centroid index.
	Assign []int
	// Iters is the number of Lloyd iterations run.
	Iters int
}

// Config controls Fit.
type Config struct {
	// K is the number of clusters. Required, >= 1 (clamped to the number
	// of points).
	K int
	// MaxIters bounds the Lloyd iterations (default 25; the paper notes
	// K-Means converges fast and treats iterations as a small constant).
	MaxIters int
	// Tol stops early when no assignment changes or the total centroid
	// movement falls below Tol (default 1e-6).
	Tol float64
	// Seed drives the k-means++ seeding deterministically.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.MaxIters <= 0 {
		c.MaxIters = 25
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
}

// Fit clusters points into cfg.K groups.
func Fit(points [][]float32, cfg Config) (*Result, error) {
	cfg.applyDefaults()
	if len(points) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K = %d, want >= 1", cfg.K)
	}
	k := cfg.K
	if k > len(points) {
		k = len(points)
	}
	dim := len(points[0])
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6b6d65616e73))
	centroids := seedPlusPlus(points, k, rng)

	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{Centroids: centroids, Assign: assign}
	counts := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		res.Iters = iter + 1
		changed := parallelAssign(points, centroids, assign)
		// Recompute centroids.
		for i := range counts {
			counts[i] = 0
			for j := range sums[i] {
				sums[i][j] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			s := sums[c]
			for j, v := range p {
				s[j] += float64(v)
			}
		}
		var moved float64
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Empty cluster: reseat at the point farthest from its
				// centroid, a standard repair that keeps k clusters.
				far := farthestPoint(points, centroids, assign)
				copy(centroids[c], points[far])
				assign[far] = c
				moved += 1 // force another iteration
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < dim; j++ {
				nv := float32(sums[c][j] * inv)
				d := float64(nv - centroids[c][j])
				moved += d * d
				centroids[c][j] = nv
			}
		}
		if !changed && moved < cfg.Tol*cfg.Tol {
			break
		}
	}
	// Final assignment against the final centroids.
	parallelAssign(points, centroids, assign)
	return res, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy.
func seedPlusPlus(points [][]float32, k int, rng *rand.Rand) [][]float32 {
	centroids := make([][]float32, 0, k)
	first := rng.IntN(len(points))
	centroids = append(centroids, vec.Clone(points[first]))
	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = vec.SqDist(p, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			next = rng.IntN(len(points)) // all points coincide
		} else {
			u := rng.Float64() * total
			for i, d := range d2 {
				u -= d
				if u <= 0 {
					next = i
					break
				}
			}
		}
		c := vec.Clone(points[next])
		centroids = append(centroids, c)
		for i, p := range points {
			if d := vec.SqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// farthestPoint returns the index of the point with the largest distance
// to its assigned centroid.
func farthestPoint(points [][]float32, centroids [][]float32, assign []int) int {
	best, bestD := 0, -1.0
	for i, p := range points {
		c := assign[i]
		if c < 0 {
			continue
		}
		if d := vec.SqDist(p, centroids[c]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// parallelAssign writes the nearest-centroid index of every point into
// assign and reports whether any assignment changed.
func parallelAssign(points [][]float32, centroids [][]float32, assign []int) bool {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(points) {
		workers = len(points)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(points) + workers - 1) / workers
	changedCh := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c, _ := vec.ArgNearest(points[i], centroids)
				if c != assign[i] {
					assign[i] = c
					changedCh[w] = true
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, c := range changedCh {
		if c {
			return true
		}
	}
	return false
}

// AssignAll maps every point to its nearest centroid (one pass, parallel).
func AssignAll(points [][]float32, centroids [][]float32) []int {
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	parallelAssign(points, centroids, assign)
	return assign
}

// SampleFit reproduces the paper's recipe (§7.1): fit K-Means on a
// fraction of the points (sampled deterministically from seed), then
// assign all points to the fitted centroids. fraction is clamped so at
// least max(K, 2) points are used.
func SampleFit(points [][]float32, fraction float64, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("kmeans: fraction %v out of (0,1]", fraction)
	}
	sampleSize := int(math.Ceil(fraction * float64(len(points))))
	minSize := cfg.K
	if minSize < 2 {
		minSize = 2
	}
	if sampleSize < minSize {
		sampleSize = minSize
	}
	if sampleSize > len(points) {
		sampleSize = len(points)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x73616d706c65))
	perm := rng.Perm(len(points))
	sample := make([][]float32, sampleSize)
	for i := 0; i < sampleSize; i++ {
		sample[i] = points[perm[i]]
	}
	res, err := Fit(sample, cfg)
	if err != nil {
		return nil, err
	}
	res.Assign = AssignAll(points, res.Centroids)
	return res, nil
}

// Diameters returns, per cluster, twice the maximum distance from the
// centroid to an assigned point (the diameter measure of Table 6 and
// Fig. 4a). Clusters with no members get diameter 0.
func Diameters(points [][]float32, res *Result) []float64 {
	out := make([]float64, len(res.Centroids))
	for i, p := range points {
		c := res.Assign[i]
		if d := 2 * vec.Dist(p, res.Centroids[c]); d > out[c] {
			out[c] = d
		}
	}
	return out
}
