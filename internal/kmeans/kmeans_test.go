package kmeans

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

// blobs generates count points around k well-separated centers.
func blobs(rng *rand.Rand, k, count, dim int, sep, noise float64) (pts [][]float32, truth []int) {
	centers := make([][]float32, k)
	for i := range centers {
		c := make([]float32, dim)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * sep)
		}
		centers[i] = c
	}
	pts = make([][]float32, count)
	truth = make([]int, count)
	for i := range pts {
		t := rng.IntN(k)
		p := vec.Clone(centers[t])
		for j := range p {
			p[j] += float32(rng.NormFloat64() * noise)
		}
		pts[i] = p
		truth[i] = t
	}
	return pts, truth
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil, Config{K: 2}); err == nil {
		t.Fatal("expected error for empty points")
	}
	if _, err := Fit([][]float32{{1}}, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
}

func TestFitRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	pts, truth := blobs(rng, 4, 800, 6, 10, 0.3)
	res, err := Fit(pts, Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 4 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// Purity: each fitted cluster should be dominated by one true label.
	counts := make(map[[2]int]int)
	for i, c := range res.Assign {
		counts[[2]int{c, truth[i]}]++
	}
	clusterTotal := make(map[int]int)
	clusterBest := make(map[int]int)
	for key, n := range counts {
		clusterTotal[key[0]] += n
		if n > clusterBest[key[0]] {
			clusterBest[key[0]] = n
		}
	}
	var pure, total int
	for c, tot := range clusterTotal {
		pure += clusterBest[c]
		total += tot
	}
	if float64(pure)/float64(total) < 0.95 {
		t.Fatalf("purity %v < 0.95", float64(pure)/float64(total))
	}
}

func TestFitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	pts, _ := blobs(rng, 3, 300, 4, 5, 0.5)
	a, _ := Fit(pts, Config{K: 3, Seed: 7})
	b, _ := Fit(pts, Config{K: 3, Seed: 7})
	for i := range a.Centroids {
		if vec.Dist(a.Centroids[i], b.Centroids[i]) != 0 {
			t.Fatal("same seed produced different centroids")
		}
	}
}

func TestKClampedToPoints(t *testing.T) {
	pts := [][]float32{{0, 0}, {1, 1}}
	res, err := Fit(pts, Config{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("K not clamped: %d centroids", len(res.Centroids))
	}
}

func TestAllIdenticalPoints(t *testing.T) {
	pts := make([][]float32, 20)
	for i := range pts {
		pts[i] = []float32{1, 2}
	}
	res, err := Fit(pts, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a < 0 || a >= len(res.Centroids) {
			t.Fatalf("invalid assignment %d", a)
		}
	}
}

// Property: after Fit, every point is assigned to its nearest centroid.
func TestAssignmentsAreNearest(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		k := 2 + rng.IntN(5)
		pts, _ := blobs(rng, k, 100+rng.IntN(200), 3, 4, 0.8)
		res, err := Fit(pts, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for i, p := range pts {
			nearest, nd := vec.ArgNearest(p, res.Centroids)
			got := vec.SqDist(p, res.Centroids[res.Assign[i]])
			if got > nd+1e-9 {
				_ = nearest
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNoEmptyClustersOnSeparatedData(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 4))
	pts, _ := blobs(rng, 5, 500, 2, 8, 0.2)
	res, _ := Fit(pts, Config{K: 5, Seed: 2})
	sizes := make([]int, 5)
	for _, a := range res.Assign {
		sizes[a]++
	}
	for c, n := range sizes {
		if n == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
}

func TestSampleFit(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 1))
	pts, _ := blobs(rng, 4, 2000, 4, 10, 0.3)
	res, err := SampleFit(pts, 0.1, Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != len(pts) {
		t.Fatalf("Assign covers %d of %d points", len(res.Assign), len(pts))
	}
	// All points assigned to their nearest centroid.
	for i, p := range pts {
		c, _ := vec.ArgNearest(p, res.Centroids)
		if got := vec.SqDist(p, res.Centroids[res.Assign[i]]); got > vec.SqDist(p, res.Centroids[c])+1e-9 {
			t.Fatalf("point %d not assigned to nearest centroid", i)
		}
	}
	if _, err := SampleFit(pts, 0, Config{K: 2}); err == nil {
		t.Fatal("expected error for fraction 0")
	}
	if _, err := SampleFit(nil, 0.5, Config{K: 2}); err == nil {
		t.Fatal("expected error for empty points")
	}
}

func TestSampleFitTinyFractionClamps(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	pts, _ := blobs(rng, 3, 50, 2, 5, 0.5)
	res, err := SampleFit(pts, 0.0001, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
}

func TestDiameters(t *testing.T) {
	pts := [][]float32{{0, 0}, {2, 0}, {10, 0}, {12, 0}}
	res := &Result{
		Centroids: [][]float32{{1, 0}, {11, 0}},
		Assign:    []int{0, 0, 1, 1},
	}
	d := Diameters(pts, res)
	if d[0] != 2 || d[1] != 2 {
		t.Fatalf("Diameters = %v, want [2 2]", d)
	}
}

func TestAssignAll(t *testing.T) {
	cents := [][]float32{{0, 0}, {10, 10}}
	pts := [][]float32{{1, 1}, {9, 9}, {0, 0}}
	got := AssignAll(pts, cents)
	want := []int{0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AssignAll = %v, want %v", got, want)
		}
	}
}
