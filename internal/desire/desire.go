// Package desire reimplements, memory-resident and simplified, the
// query strategy of DESIRE (Zhu et al., VLDB 2022), the second
// multi-metric competitor of §7.7. DESIRE maintains a cluster-based index
// per metric space; a combined query first runs a k-NN in a single
// ("primary") metric space, uses the resulting candidates to obtain an
// upper bound U on the combined distance, then performs a range query in
// the primary space with radius U/weight — any true result must fall in
// that range — and verifies the candidates with full combined distances.
// This is exactly the behaviour §7.7 describes ("performs a k-NN in a
// single metric space, and then uses the radius of the k-th object to
// perform a range query over the other metric space"), and is why DESIRE
// needs many more distance calculations than the hybrid clustering of
// CSSI: the per-space candidate sets are large when the two spaces are
// uncorrelated.
//
// The evaluation compares distance-calculation counts (the paper does the
// same because the original DESIRE is disk-based), so the per-space
// counters in metric.Stats are charged faithfully.
package desire

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/knn"
	"repro/internal/metric"
)

// Config controls index construction.
type Config struct {
	// ClustersPerSpace is the number of clusters per metric space
	// (default: √N/4, at least 4).
	ClustersPerSpace int
	// Seed drives the clustering.
	Seed uint64
}

// spaceKind identifies one of the two metric spaces.
type spaceKind int

const (
	spatialSpace spaceKind = iota
	semanticSpace
)

// cluster is a ball in one metric space.
type cluster struct {
	centroid []float32 // 2D (spatial, raw coords) or n-dim (semantic)
	radius   float64   // normalized distance to the farthest member
	members  []uint32  // object slice indices
}

// Index holds one cluster index per metric space.
type Index struct {
	cfg      Config
	space    *metric.Space
	objects  []dataset.Object
	spatial  []cluster
	semantic []cluster
}

// Build constructs the per-space cluster indexes.
func Build(ds *dataset.Dataset, space *metric.Space, cfg Config) (*Index, error) {
	idx := &Index{cfg: cfg, space: space, objects: ds.Objects}
	if ds.Len() == 0 {
		return idx, nil
	}
	k := cfg.ClustersPerSpace
	if k <= 0 {
		k = intSqrt(ds.Len()) / 4
		if k < 4 {
			k = 4
		}
	}
	// Spatial clustering over raw coordinates.
	spatialPts := make([][]float32, ds.Len())
	semPts := make([][]float32, ds.Len())
	for i := range ds.Objects {
		o := &ds.Objects[i]
		spatialPts[i] = []float32{float32(o.X), float32(o.Y)}
		semPts[i] = o.Vec
	}
	sres, err := kmeans.Fit(spatialPts, kmeans.Config{K: k, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	tres, err := kmeans.Fit(semPts, kmeans.Config{K: k, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	idx.spatial = idx.buildClusters(sres, spatialSpace)
	idx.semantic = idx.buildClusters(tres, semanticSpace)
	return idx, nil
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func (x *Index) buildClusters(res *kmeans.Result, kind spaceKind) []cluster {
	clusters := make([]cluster, len(res.Centroids))
	for i, c := range res.Centroids {
		clusters[i].centroid = c
	}
	for i := range x.objects {
		c := res.Assign[i]
		clusters[c].members = append(clusters[c].members, uint32(i))
		d := x.objDist(nil, kind, &x.objects[i], clusters[c].centroid)
		if d > clusters[c].radius {
			clusters[c].radius = d
		}
	}
	// Drop empty clusters.
	out := clusters[:0]
	for _, c := range clusters {
		if len(c.members) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// objDist is the normalized distance between an object and a point of the
// given space (a centroid or a query representation).
func (x *Index) objDist(st *metric.Stats, kind spaceKind, o *dataset.Object, p []float32) float64 {
	if kind == spatialSpace {
		return x.space.Spatial(st, o.X, o.Y, float64(p[0]), float64(p[1]))
	}
	return x.space.Semantic(st, o.Vec, p)
}

// queryDist is the normalized distance between the query and an object in
// the given space.
func (x *Index) queryDist(st *metric.Stats, kind spaceKind, q, o *dataset.Object) float64 {
	if kind == spatialSpace {
		return x.space.Spatial(st, q.X, q.Y, o.X, o.Y)
	}
	return x.space.Semantic(st, q.Vec, o.Vec)
}

// queryCentroidDist is the normalized distance between the query and a
// cluster centroid (charged to the per-space counters: centroids are
// full-dimensional points).
func (x *Index) queryCentroidDist(st *metric.Stats, kind spaceKind, q *dataset.Object, c *cluster) float64 {
	if kind == spatialSpace {
		return x.space.Spatial(st, q.X, q.Y, float64(c.centroid[0]), float64(c.centroid[1]))
	}
	return x.space.Semantic(st, q.Vec, c.centroid)
}

// singleSpaceKNN runs a k-NN of q in one metric space using its cluster
// index (cluster-level lower-bound pruning).
func (x *Index) singleSpaceKNN(st *metric.Stats, kind spaceKind, q *dataset.Object, k int) []knn.Result {
	clusters := x.spatial
	if kind == semanticSpace {
		clusters = x.semantic
	}
	type ordered struct {
		lb float64
		c  *cluster
	}
	ord := make([]ordered, len(clusters))
	for i := range clusters {
		d := x.queryCentroidDist(st, kind, q, &clusters[i])
		ord[i] = ordered{lb: d - clusters[i].radius, c: &clusters[i]}
	}
	sort.Slice(ord, func(a, b int) bool { return ord[a].lb < ord[b].lb })
	h := knn.NewHeap(k)
	for _, oc := range ord {
		if bound, ok := h.Bound(); ok && oc.lb >= bound {
			break
		}
		for _, mi := range oc.c.members {
			o := &x.objects[mi]
			d := x.queryDist(st, kind, q, o)
			h.Push(knn.Result{ID: mi, Dist: d})
		}
	}
	return h.Sorted()
}

// rangeQuery returns the indices of all objects within normalized radius
// r of q in the given space.
func (x *Index) rangeQuery(st *metric.Stats, kind spaceKind, q *dataset.Object, r float64) []uint32 {
	clusters := x.spatial
	if kind == semanticSpace {
		clusters = x.semantic
	}
	var out []uint32
	for i := range clusters {
		c := &clusters[i]
		d := x.queryCentroidDist(st, kind, q, c)
		if d-c.radius > r {
			continue // whole cluster outside the range
		}
		for _, mi := range c.members {
			o := &x.objects[mi]
			if x.queryDist(st, kind, q, o) <= r {
				out = append(out, mi)
			}
		}
	}
	return out
}

// Search returns the exact k nearest neighbors of q under
// d = λ·ds + (1−λ)·dt using the DESIRE strategy: single-space k-NN for an
// upper bound, then a primary-space range query for the candidate set.
func (x *Index) Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	if len(x.objects) == 0 {
		return nil
	}
	// Primary space: the one with the larger weight (spatial on ties).
	primary := spatialSpace
	weight := lambda
	if 1-lambda > lambda {
		primary = semanticSpace
		weight = 1 - lambda
	}
	if weight == 0 { // degenerate λ; both weights zero cannot happen
		weight = 1
	}

	// Step 1: k-NN in the primary space to seed candidates.
	seed := x.singleSpaceKNN(st, primary, q, k)
	h := knn.NewHeap(k)
	evaluated := make(map[uint32]struct{}, 2*k)
	for _, r := range seed {
		evaluated[r.ID] = struct{}{}
		o := &x.objects[r.ID]
		d := x.space.Distance(st, lambda, q, o)
		h.Push(knn.Result{ID: o.ID, Dist: d})
	}
	u, ok := h.Bound()
	if !ok {
		// Fewer than k objects overall: everything is a result.
		u = 2 // distances are normalized; 2 exceeds any combined distance
	}

	// Step 2: any true result o satisfies weight·d_primary(q,o) ≤ d(q,o)
	// ≤ U, so a primary-space range query with radius U/weight covers the
	// exact result set.
	cand := x.rangeQuery(st, primary, q, u/weight)
	for _, mi := range cand {
		if _, done := evaluated[mi]; done {
			continue
		}
		evaluated[mi] = struct{}{}
		o := &x.objects[mi]
		d := x.space.Distance(st, lambda, q, o)
		h.Push(knn.Result{ID: o.ID, Dist: d})
	}
	return h.Sorted()
}
