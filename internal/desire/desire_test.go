package desire

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/scan"
)

func setup(t *testing.T, size int) (*dataset.Dataset, *Index, *scan.Scanner) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: size, Dim: 16, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpace(ds)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, sp, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds, idx, scan.New(ds, sp)
}

func TestSearchMatchesScan(t *testing.T) {
	ds, idx, sc := setup(t, 600)
	for _, lambda := range []float64{0, 0.2, 0.5, 0.8, 1} {
		for qi := 0; qi < 8; qi++ {
			q := ds.Objects[(qi*59+3)%ds.Len()]
			want := sc.Search(&q, 10, lambda, nil)
			got := idx.Search(&q, 10, lambda, nil)
			if len(got) != len(want) {
				t.Fatalf("λ=%v: got %d results, want %d", lambda, len(got), len(want))
			}
			for i := range want {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("λ=%v q=%d result %d: %v vs %v", lambda, q.ID, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestNoDuplicateResults(t *testing.T) {
	ds, idx, _ := setup(t, 400)
	got := idx.Search(&ds.Objects[10], 20, 0.5, nil)
	seen := make(map[uint32]struct{})
	for _, r := range got {
		if _, dup := seen[r.ID]; dup {
			t.Fatalf("duplicate result %d", r.ID)
		}
		seen[r.ID] = struct{}{}
	}
}

func TestKExceedsDataset(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 6, Dim: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := metric.NewSpace(ds)
	idx, err := Build(ds, sp, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := idx.Search(&ds.Objects[0], 15, 0.5, nil)
	if len(got) != 6 {
		t.Fatalf("got %d results, want 6", len(got))
	}
}

func TestEmptyDataset(t *testing.T) {
	sp := &metric.Space{DsMax: 1, DtMax: 1}
	idx, err := Build(&dataset.Dataset{Dim: 4}, sp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Object{Vec: make([]float32, 4)}
	if got := idx.Search(&q, 3, 0.5, nil); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
}

// DESIRE's strategy needs many more distance calculations than a scan
// would in the balanced case when the two spaces are uncorrelated: the
// range query in the primary space is loose. We only assert that stats
// are counted and that the primary-space choice follows the weight.
func TestStatsAndPrimarySpaceChoice(t *testing.T) {
	ds, idx, _ := setup(t, 800)
	q := ds.Objects[77]
	var stSpatial, stSemantic metric.Stats
	idx.Search(&q, 10, 0.9, &stSpatial)  // primary = spatial
	idx.Search(&q, 10, 0.1, &stSemantic) // primary = semantic
	if stSpatial.DistCalcs() == 0 || stSemantic.DistCalcs() == 0 {
		t.Fatal("distance calculations not counted")
	}
	// With the spatial space primary, the k-NN phase runs on spatial
	// distances, so spatial calcs should dominate semantic ones less
	// than in the reverse configuration.
	ratioSpatialPrimary := float64(stSpatial.SpatialDistCalcs) / float64(1+stSpatial.SemanticDistCalcs)
	ratioSemanticPrimary := float64(stSemantic.SpatialDistCalcs) / float64(1+stSemantic.SemanticDistCalcs)
	if ratioSpatialPrimary <= ratioSemanticPrimary {
		t.Fatalf("primary-space choice not reflected in counters: %v vs %v",
			ratioSpatialPrimary, ratioSemanticPrimary)
	}
}
