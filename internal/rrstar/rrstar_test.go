package rrstar

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/metric"
	"repro/internal/scan"
)

func setup(t *testing.T, size int) (*dataset.Dataset, *Index, *scan.Scanner) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: size, Dim: 16, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpace(ds)
	if err != nil {
		t.Fatal(err)
	}
	return ds, Build(ds, sp, Config{Seed: 1}), scan.New(ds, sp)
}

func TestSearchMatchesScan(t *testing.T) {
	ds, idx, sc := setup(t, 600)
	for _, lambda := range []float64{0, 0.2, 0.5, 0.8, 1} {
		for qi := 0; qi < 8; qi++ {
			q := ds.Objects[(qi*43+11)%ds.Len()]
			want := sc.Search(&q, 10, lambda, nil)
			got := idx.Search(&q, 10, lambda, nil)
			if len(got) != len(want) {
				t.Fatalf("λ=%v: got %d results", lambda, len(got))
			}
			for i := range want {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("λ=%v q=%d result %d: %v vs %v", lambda, q.ID, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestMoreReferencesStillExact(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.YelpLike, Size: 400, Dim: 16, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := metric.NewSpace(ds)
	idx := Build(ds, sp, Config{RefsPerSpace: 5, Seed: 3})
	sc := scan.New(ds, sp)
	q := ds.Objects[31]
	want := sc.Search(&q, 8, 0.6, nil)
	got := idx.Search(&q, 8, 0.6, nil)
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	sp := &metric.Space{DsMax: 1, DtMax: 1}
	idx := Build(&dataset.Dataset{Dim: 4}, sp, Config{})
	q := dataset.Object{Vec: make([]float32, 4)}
	if got := idx.Search(&q, 3, 0.5, nil); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
}

func TestReferenceCountsCharged(t *testing.T) {
	ds, idx, _ := setup(t, 300)
	var st metric.Stats
	idx.Search(&ds.Objects[0], 5, 0.5, &st)
	// Mapping the query alone charges RefsPerSpace calcs per space.
	if st.SpatialDistCalcs < 3 || st.SemanticDistCalcs < 3 {
		t.Fatalf("reference mapping not charged: %+v", st)
	}
}

func TestTinyDataset(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 2, Dim: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := metric.NewSpace(ds)
	idx := Build(ds, sp, Config{Seed: 1})
	got := idx.Search(&ds.Objects[0], 10, 0.5, nil)
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
}

// Property: the reference-space lower bound never exceeds the true
// combined distance for any λ (the soundness of RR*-style pruning).
func TestReferenceLowerBoundProperty(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 300, Dim: 16, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := metric.NewSpace(ds)
	idx := Build(ds, sp, Config{RefsPerSpace: 4, Seed: 2})
	for trial := 0; trial < 200; trial++ {
		lambda := float64(trial%11) / 10
		q := &ds.Objects[(trial*17+3)%ds.Len()]
		o := &ds.Objects[(trial*31+11)%ds.Len()]
		qm := idx.mapObject(q)
		om := idx.mapObject(o)
		// The degenerate rect at o's mapped point: its bound must not
		// exceed d(q,o).
		r := geo.RectFromPoint(om)
		lb := idx.lowerBound(r, qm, lambda)
		d := sp.Distance(nil, lambda, q, o)
		if lb > d+1e-9 {
			t.Fatalf("λ=%v: reference bound %v exceeds true distance %v", lambda, lb, d)
		}
	}
}
