// Package rrstar reimplements the RR*-tree-style reference-point index of
// Franzke et al. (ICDE 2016), one of the two multi-metric competitors of
// §7.7. Each metric space (spatial, semantic) contributes a handful of
// reference points; every object is mapped to the concatenation of its
// distances to those references, and an R-tree is built over the mapped
// vectors. By the triangle inequality, the per-space Chebyshev gap in
// reference coordinates lower-bounds the true distance in that space, so
// the λ-weighted sum of per-space Chebyshev mindists lower-bounds the
// combined distance — the pruning signal of best-first search.
package rrstar

import (
	"math/rand/v2"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/rtree"
	"repro/internal/vec"
)

// Config controls index construction.
type Config struct {
	// RefsPerSpace is the number of reference points per metric space
	// (default 3).
	RefsPerSpace int
	// Fanout is the R-tree node capacity (default 32).
	Fanout int
	// Seed drives reference selection.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.RefsPerSpace <= 0 {
		c.RefsPerSpace = 3
	}
	if c.Fanout <= 0 {
		c.Fanout = 32
	}
}

// Index is a built RR*-tree-style index.
type Index struct {
	cfg     Config
	space   *metric.Space
	objects []dataset.Object
	// spatialRefs are reference locations; semanticRefs are reference
	// vectors in the original n-dimensional space.
	spatialRefs  []geo.Point
	semanticRefs [][]float32
	tree         *rtree.Tree
	mapped       [][]float64 // per-object reference coordinates
}

// Build constructs the index. Reference points are chosen by
// farthest-first traversal per space over a deterministic sample.
func Build(ds *dataset.Dataset, space *metric.Space, cfg Config) *Index {
	cfg.applyDefaults()
	idx := &Index{cfg: cfg, space: space, objects: ds.Objects}
	if ds.Len() == 0 {
		idx.tree = rtree.New(2*cfg.RefsPerSpace, cfg.Fanout)
		return idx
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x52522a))
	sample := samplePerm(rng, ds.Len(), 2000)
	idx.spatialRefs = selectSpatialRefs(ds.Objects, sample, cfg.RefsPerSpace)
	idx.semanticRefs = selectSemanticRefs(ds.Objects, sample, cfg.RefsPerSpace)

	// With tiny datasets the farthest-first selection clamps the number
	// of references, so derive the mapped dimensionality from the actual
	// reference counts.
	dims := len(idx.spatialRefs) + len(idx.semanticRefs)
	idx.mapped = make([][]float64, ds.Len())
	entries := make([]rtree.Entry, ds.Len())
	for i := range ds.Objects {
		m := idx.mapObject(&ds.Objects[i])
		idx.mapped[i] = m
		entries[i] = rtree.Entry{Rect: geo.RectFromPoint(m), ID: uint32(i)}
	}
	idx.tree = rtree.BulkLoad(entries, dims, cfg.Fanout)
	return idx
}

func samplePerm(rng *rand.Rand, n, max int) []int {
	if max > n {
		max = n
	}
	return rng.Perm(n)[:max]
}

func selectSpatialRefs(objects []dataset.Object, sample []int, m int) []geo.Point {
	if m > len(sample) {
		m = len(sample)
	}
	refs := make([]geo.Point, 0, m)
	first := geo.Point{X: objects[sample[0]].X, Y: objects[sample[0]].Y}
	refs = append(refs, first)
	minD := make([]float64, len(sample))
	for i, si := range sample {
		minD[i] = first.SqDist(geo.Point{X: objects[si].X, Y: objects[si].Y})
	}
	for len(refs) < m {
		best, bestD := 0, -1.0
		for i := range sample {
			if minD[i] > bestD {
				best, bestD = i, minD[i]
			}
		}
		p := geo.Point{X: objects[sample[best]].X, Y: objects[sample[best]].Y}
		refs = append(refs, p)
		for i, si := range sample {
			if d := p.SqDist(geo.Point{X: objects[si].X, Y: objects[si].Y}); d < minD[i] {
				minD[i] = d
			}
		}
	}
	return refs
}

func selectSemanticRefs(objects []dataset.Object, sample []int, m int) [][]float32 {
	if m > len(sample) {
		m = len(sample)
	}
	refs := make([][]float32, 0, m)
	refs = append(refs, vec.Clone(objects[sample[0]].Vec))
	minD := make([]float64, len(sample))
	for i, si := range sample {
		minD[i] = vec.SqDist(objects[si].Vec, refs[0])
	}
	for len(refs) < m {
		best, bestD := 0, -1.0
		for i := range sample {
			if minD[i] > bestD {
				best, bestD = i, minD[i]
			}
		}
		r := vec.Clone(objects[sample[best]].Vec)
		refs = append(refs, r)
		for i, si := range sample {
			if d := vec.SqDist(objects[si].Vec, r); d < minD[i] {
				minD[i] = d
			}
		}
	}
	return refs
}

// mapObject computes the reference-distance coordinates of o (raw,
// unnormalized distances; normalization happens in the bounds).
func (x *Index) mapObject(o *dataset.Object) []float64 {
	m := make([]float64, 0, len(x.spatialRefs)+len(x.semanticRefs))
	p := geo.Point{X: o.X, Y: o.Y}
	for _, r := range x.spatialRefs {
		m = append(m, p.Dist(r))
	}
	for _, r := range x.semanticRefs {
		m = append(m, vec.Dist(o.Vec, r))
	}
	return m
}

// mapQuery maps q, charging the reference-distance computations to st
// (they are real distance calculations in each metric space).
func (x *Index) mapQuery(q *dataset.Object, st *metric.Stats) []float64 {
	if st != nil {
		st.SpatialDistCalcs += int64(len(x.spatialRefs))
		st.SemanticDistCalcs += int64(len(x.semanticRefs))
	}
	return x.mapObject(q)
}

// lowerBound computes the λ-weighted combined lower bound of a mapped
// rectangle against the mapped query: per-space Chebyshev gap, normalized
// per space.
func (x *Index) lowerBound(r geo.Rect, qm []float64, lambda float64) float64 {
	ns := len(x.spatialRefs)
	var chS, chT float64
	for i := 0; i < ns; i++ {
		chS = maxf(chS, gap(qm[i], r.Lo[i], r.Hi[i]))
	}
	for i := ns; i < len(qm); i++ {
		chT = maxf(chT, gap(qm[i], r.Lo[i], r.Hi[i]))
	}
	return lambda*chS/x.space.DsMax + (1-lambda)*chT/x.space.DtMax
}

func gap(v, lo, hi float64) float64 {
	if v < lo {
		return lo - v
	}
	if v > hi {
		return v - hi
	}
	return 0
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Search returns the exact k nearest neighbors of q under
// d = λ·ds + (1−λ)·dt.
func (x *Index) Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	if len(x.objects) == 0 {
		return nil
	}
	qm := x.mapQuery(q, st)
	h := knn.NewHeap(k)
	nodes := x.tree.BestFirst(
		func(r geo.Rect) float64 { return x.lowerBound(r, qm, lambda) },
		func(id uint32, lb float64) bool {
			if bound, ok := h.Bound(); ok && lb >= bound {
				return false
			}
			o := &x.objects[id]
			d := x.space.Distance(st, lambda, q, o)
			h.Push(knn.Result{ID: o.ID, Dist: d})
			return true
		})
	if st != nil {
		st.ClustersExamined += int64(nodes)
	}
	return h.Sorted()
}
