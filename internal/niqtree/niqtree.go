// Package niqtree implements an adaptation of the NIQ-tree (Qian et al.,
// DASFAA 2016) to the paper's weighted spatio-semantic k-NN problem. The
// paper's related work (§2) describes the original: a spatial-first,
// multi-level structure — a Quadtree over the coordinates, whose leaves
// organize objects by LDA topic relevance. The S²R-tree paper compared
// against exactly such an adaptation ("spatial-first, followed by search
// in semantic dimensions") and beat it; this package exists to reproduce
// that secondary claim (see the `niq` experiment).
//
// The adaptation: a PR quadtree partitions the locations; each leaf
// groups its objects by dominant LDA topic and stores, per group, a
// semantic ball (centroid + radius in the original embedding space).
// Best-first search lower-bounds internal nodes by the λ-weighted
// spatial mindist alone (the semantic side is unknown above the leaves —
// the structural weakness of spatial-first designs the paper calls out)
// and leaf groups by spatial mindist + the semantic ball bound. The
// search is exact.
package niqtree

import (
	"container/heap"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/knn"
	"repro/internal/lda"
	"repro/internal/metric"
	"repro/internal/text"
	"repro/internal/vec"
)

// Config controls Build.
type Config struct {
	// LeafCapacity is the quadtree split threshold (default 256).
	LeafCapacity int
	// MaxDepth bounds the quadtree depth (default 12).
	MaxDepth int
}

func (c *Config) applyDefaults() {
	if c.LeafCapacity <= 0 {
		c.LeafCapacity = 256
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
}

// group is one topic group of a quadtree leaf: a semantic ball over the
// member embeddings.
type group struct {
	centroid []float32
	radius   float64 // normalized dt to the farthest member
	members  []uint32
}

// node is a PR-quadtree node.
type node struct {
	bounds   geo.Rect
	children []*node // nil at leaves; length 4 otherwise
	idxs     []uint32
	groups   []group
}

// Index is a built NIQ-style index.
type Index struct {
	cfg     Config
	space   *metric.Space
	objects []dataset.Object
	root    *node
}

// AssignTopicsLDA derives a dominant LDA topic per object by tokenizing
// each object's text against the vocabulary and fitting LDA — the
// semantic representation the NIQ-tree family uses instead of word
// embeddings.
func AssignTopicsLDA(ds *dataset.Dataset, vocab *text.Vocabulary, topics int, cfg lda.Config) ([]int, error) {
	if vocab == nil {
		return nil, fmt.Errorf("niqtree: AssignTopicsLDA requires a vocabulary")
	}
	docs := make([][]int, ds.Len())
	for i := range ds.Objects {
		for _, tok := range text.Tokenize(ds.Objects[i].Text) {
			if rank, ok := vocab.Index(tok); ok {
				docs[i] = append(docs[i], rank)
			}
		}
	}
	cfg.Topics = topics
	model, err := lda.Fit(docs, vocab.Size(), cfg)
	if err != nil {
		return nil, err
	}
	out := make([]int, ds.Len())
	for i := range out {
		out[i] = lda.DominantTopic(model.Theta[i])
	}
	return out, nil
}

// Build constructs the index. topics assigns each object to a semantic
// group within its leaf (use AssignTopicsLDA, or any labelling).
func Build(ds *dataset.Dataset, space *metric.Space, topics []int, cfg Config) (*Index, error) {
	if len(topics) != ds.Len() {
		return nil, fmt.Errorf("niqtree: %d topic labels for %d objects", len(topics), ds.Len())
	}
	cfg.applyDefaults()
	x := &Index{cfg: cfg, space: space, objects: ds.Objects}
	x.root = &node{bounds: geo.Rect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}}
	for i := range ds.Objects {
		x.insert(x.root, uint32(i), 0)
	}
	x.finalize(x.root, topics)
	return x, nil
}

// insert places an object index into the quadtree, splitting leaves at
// capacity.
func (x *Index) insert(n *node, idx uint32, depth int) {
	if n.children == nil {
		n.idxs = append(n.idxs, idx)
		if len(n.idxs) > x.cfg.LeafCapacity && depth < x.cfg.MaxDepth {
			x.split(n, depth)
		}
		return
	}
	x.insert(n.children[x.quadrant(n, idx)], idx, depth+1)
}

func (x *Index) quadrant(n *node, idx uint32) int {
	o := &x.objects[idx]
	midX := (n.bounds.Lo[0] + n.bounds.Hi[0]) / 2
	midY := (n.bounds.Lo[1] + n.bounds.Hi[1]) / 2
	q := 0
	if o.X >= midX {
		q |= 1
	}
	if o.Y >= midY {
		q |= 2
	}
	return q
}

func (x *Index) split(n *node, depth int) {
	midX := (n.bounds.Lo[0] + n.bounds.Hi[0]) / 2
	midY := (n.bounds.Lo[1] + n.bounds.Hi[1]) / 2
	mk := func(lox, loy, hix, hiy float64) *node {
		return &node{bounds: geo.Rect{Lo: []float64{lox, loy}, Hi: []float64{hix, hiy}}}
	}
	n.children = []*node{
		mk(n.bounds.Lo[0], n.bounds.Lo[1], midX, midY),
		mk(midX, n.bounds.Lo[1], n.bounds.Hi[0], midY),
		mk(n.bounds.Lo[0], midY, midX, n.bounds.Hi[1]),
		mk(midX, midY, n.bounds.Hi[0], n.bounds.Hi[1]),
	}
	for _, idx := range n.idxs {
		x.insert(n.children[x.quadrant(n, idx)], idx, depth+1)
	}
	n.idxs = nil
}

// finalize builds the per-leaf topic groups bottom-up.
func (x *Index) finalize(n *node, topics []int) {
	if n.children != nil {
		for _, c := range n.children {
			x.finalize(c, topics)
		}
		return
	}
	byTopic := map[int][]uint32{}
	for _, idx := range n.idxs {
		byTopic[topics[idx]] = append(byTopic[topics[idx]], idx)
	}
	dim := 0
	if len(x.objects) > 0 {
		dim = len(x.objects[0].Vec)
	}
	for _, members := range byTopic {
		g := group{centroid: make([]float32, dim), members: members}
		rows := make([][]float32, len(members))
		for i, mi := range members {
			rows[i] = x.objects[mi].Vec
		}
		vec.Mean(g.centroid, rows)
		for _, mi := range members {
			if d := x.space.SemanticVec(x.objects[mi].Vec, g.centroid); d > g.radius {
				g.radius = d
			}
		}
		n.groups = append(n.groups, g)
	}
	n.idxs = nil // objects now live in groups
}

// pqItem is a best-first queue element: a node or a leaf group (with its
// owning leaf for the spatial bound).
type pqItem struct {
	lb float64
	n  *node
	g  *group
	gn *node
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].lb < p[j].lb }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(v interface{}) { *p = append(*p, v.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	v := old[n-1]
	*p = old[:n-1]
	return v
}

// Search returns the exact k nearest neighbors of q under
// d = λ·ds + (1−λ)·dt.
func (x *Index) Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	if len(x.objects) == 0 {
		return nil
	}
	h := knn.NewHeap(k)
	qp := []float64{q.X, q.Y}
	spatialLB := func(n *node) float64 {
		return lambda * n.bounds.MinDist(qp) / x.space.DsMax
	}
	var queue pq
	heap.Push(&queue, pqItem{lb: spatialLB(x.root), n: x.root})
	for queue.Len() > 0 {
		item := heap.Pop(&queue).(pqItem)
		if u, full := h.Bound(); full && item.lb >= u {
			break
		}
		if item.g != nil {
			// Evaluate the group's members.
			for _, mi := range item.g.members {
				o := &x.objects[mi]
				d := x.space.Distance(st, lambda, q, o)
				h.Push(knn.Result{ID: o.ID, Dist: d})
			}
			continue
		}
		if st != nil {
			st.ClustersExamined++
		}
		n := item.n
		if n.children != nil {
			for _, c := range n.children {
				heap.Push(&queue, pqItem{lb: spatialLB(c), n: c})
			}
			continue
		}
		for gi := range n.groups {
			g := &n.groups[gi]
			semLB := x.space.SemanticVec(q.Vec, g.centroid) - g.radius
			if semLB < 0 {
				semLB = 0
			}
			lb := spatialLB(n) + (1-lambda)*semLB
			heap.Push(&queue, pqItem{lb: lb, g: g, gn: n})
		}
	}
	return h.Sorted()
}
