package niqtree

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/lda"
	"repro/internal/metric"
	"repro/internal/scan"
)

func setup(t *testing.T, size int) (*dataset.Dataset, *metric.Space, *Index, *scan.Scanner) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: size, Dim: 24, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metric.NewSpace(ds)
	if err != nil {
		t.Fatal(err)
	}
	topics, err := AssignTopicsLDA(ds, ds.Model.Vocab, 8, lda.Config{Iterations: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, sp, topics, Config{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	return ds, sp, idx, scan.New(ds, sp)
}

func TestSearchMatchesScan(t *testing.T) {
	ds, _, idx, sc := setup(t, 600)
	for _, lambda := range []float64{0, 0.3, 0.5, 0.8, 1} {
		for qi := 0; qi < 6; qi++ {
			q := ds.Objects[(qi*67+9)%ds.Len()]
			want := sc.Search(&q, 10, lambda, nil)
			got := idx.Search(&q, 10, lambda, nil)
			if len(got) != len(want) {
				t.Fatalf("λ=%v: got %d results", lambda, len(got))
			}
			for i := range want {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("λ=%v q=%d result %d: %v vs %v", lambda, q.ID, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestBuildRejectsMismatchedTopics(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 20, Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := metric.NewSpace(ds)
	if _, err := Build(ds, sp, []int{1, 2}, Config{}); err == nil {
		t.Fatal("expected error for mismatched topics")
	}
}

func TestSpatialOnlyPrunesWell(t *testing.T) {
	ds, _, idx, _ := setup(t, 3000)
	q := ds.Objects[5]
	var st metric.Stats
	idx.Search(&q, 10, 1.0, &st)
	if st.VisitedObjects >= int64(ds.Len())/2 {
		t.Fatalf("λ=1 visited %d of %d — quadtree not pruning", st.VisitedObjects, ds.Len())
	}
}

// The spatial-first weakness: at λ=0 the internal-node bounds are all
// zero and pruning is weak — the reason the paper rejects this design.
func TestSemanticOnlyPrunesPoorly(t *testing.T) {
	ds, _, idx, _ := setup(t, 3000)
	q := ds.Objects[5]
	var st0, st1 metric.Stats
	idx.Search(&q, 10, 0.0, &st0)
	idx.Search(&q, 10, 1.0, &st1)
	if st0.VisitedObjects <= st1.VisitedObjects {
		t.Fatalf("expected λ=0 (%d) to visit more than λ=1 (%d)", st0.VisitedObjects, st1.VisitedObjects)
	}
}

func TestUniformTopicsStillExact(t *testing.T) {
	// All objects in one topic group per leaf: degenerate but valid.
	ds, err := dataset.Generate(dataset.GenConfig{Kind: dataset.YelpLike, Size: 300, Dim: 16, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := metric.NewSpace(ds)
	topics := make([]int, ds.Len())
	idx, err := Build(ds, sp, topics, Config{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	sc := scan.New(ds, sp)
	q := ds.Objects[7]
	want := sc.Search(&q, 10, 0.5, nil)
	got := idx.Search(&q, 10, 0.5, nil)
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	sp := &metric.Space{DsMax: 1, DtMax: 1}
	idx, err := Build(&dataset.Dataset{Dim: 4}, sp, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Object{Vec: make([]float32, 4)}
	if got := idx.Search(&q, 3, 0.5, nil); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
}

func TestAssignTopicsLDAErrors(t *testing.T) {
	ds, _ := dataset.Generate(dataset.GenConfig{Kind: dataset.TwitterLike, Size: 20, Dim: 8, Seed: 3})
	if _, err := AssignTopicsLDA(ds, nil, 4, lda.Config{}); err == nil {
		t.Fatal("expected error for nil vocabulary")
	}
}
