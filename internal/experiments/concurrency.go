package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	cssi "repro"
)

func init() {
	register("concurrent", Concurrency)
}

// rwmutexIndex is the pre-snapshot concurrency wrapper, kept here as the
// benchmark baseline: readers take a shared lock, writers an exclusive
// one, and a Rebuild holds the exclusive lock for its whole duration.
// The production ConcurrentIndex replaced this with RCU-style snapshot
// publication; this experiment quantifies what the replacement buys.
type rwmutexIndex struct {
	mu  sync.RWMutex
	idx *cssi.Index
}

func (c *rwmutexIndex) Search(q *cssi.Object, k int, lambda float64) []cssi.Result {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Search(q, k, lambda)
}

// ApplyBatch applies the ops under ONE exclusive lock acquisition — the
// locking counterpart of the snapshot wrapper's atomic batch: readers
// must not observe a half-applied batch, so the lock is held for the
// batch's full duration.
func (c *rwmutexIndex) ApplyBatch(ops []cssi.Op) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, op := range ops {
		var err error
		switch op.Kind {
		case cssi.OpInsert:
			err = c.idx.Insert(op.Object)
		case cssi.OpDelete:
			err = c.idx.Delete(op.ID)
		default:
			err = c.idx.Update(op.Object)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *rwmutexIndex) Rebuild() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.Rebuild()
}

// concurrentReader abstracts the two wrappers for the measurement loops.
type concurrentReader interface {
	Search(q *cssi.Object, k int, lambda float64) []cssi.Result
}

// Concurrency measures read behavior under concurrent maintenance for
// the RWMutex baseline vs the lock-free snapshot wrapper, and the
// worst-case read stall while a full Rebuild runs. The writer applies
// periodic atomic batches (the serving-workload shape ApplyBatch
// exists for); under the lock that means readers wait out every batch,
// under snapshots they keep serving the previous index. On a
// single-core host the goroutines timeshare, so the headline numbers
// are read throughput retained while the writer runs and the max read
// latency — RWMutex readers stop dead behind the exclusive lock,
// snapshot readers never wait.
func Concurrency(s Setup) ([]Table, error) {
	s.applyDefaults()
	// On a 1-CPU host a tight compute loop can monopolize the only P for
	// ~10ms between preemption points, so a reader's wall latency mixes
	// lock waits with scheduler starvation. Raising GOMAXPROCS lets the
	// OS preempt at its own quantum and interleave the goroutines the
	// way a serving host would, making lock-blocking (which no amount
	// of preemption cures) visible as the dominant stall.
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	size := s.size(8000)
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.TwitterLike, Size: size, Dim: s.Dim, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	queries := ds.SampleQueries(s.Queries, s.Seed+77)
	k, lambda := 10, s.Lambda

	build := func() (*cssi.Index, error) {
		return cssi.Build(ds, cssi.Options{Seed: s.Seed})
	}

	throughput := Table{
		ID:    "concurrent",
		Title: "Read throughput and latency: RWMutex locking vs lock-free snapshots",
		Note: "readers loop Search while a saturating writer applies atomic 200-op batches back-to-back; " +
			"the lock holds readers out for every batch (RWMutex fairness queues them behind pending writers), " +
			"snapshots publish each batch as one pointer store and readers never wait",
		Header: []string{"wrapper", "readers", "writer", "queries/s", "max read ms", "ops/s"},
	}
	// Sub-scale runs (the test smoke) shrink the per-cell interval; the
	// recorded scale-1 numbers use the long one for stable medians.
	interval := 800 * time.Millisecond
	if s.Scale < 0.5 {
		interval = 50 * time.Millisecond
	}
	for _, readers := range []int{1, 2, 4} {
		for _, withWriter := range []bool{false, true} {
			for _, which := range []string{"rwmutex", "snapshot"} {
				idx, err := build()
				if err != nil {
					return nil, err
				}
				var reader concurrentReader
				var applyBatch func([]cssi.Op) error
				if which == "rwmutex" {
					w := &rwmutexIndex{idx: idx}
					reader, applyBatch = w, w.ApplyBatch
				} else {
					w := cssi.Concurrent(idx)
					reader, applyBatch = w, w.ApplyBatch
				}
				qps, maxMS, ops := measureThroughput(reader, applyBatch, ds, queries, k, lambda, readers, withWriter, interval)
				throughput.Rows = append(throughput.Rows, []string{
					which, itoa(readers), boolCell(withWriter), f1(qps), f2(maxMS), f1(ops),
				})
			}
		}
	}

	stall := Table{
		ID:    "concurrent",
		Title: "Worst-case read stall during a full Rebuild",
		Note: "max single-query latency observed while Rebuild runs concurrently; " +
			"RWMutex pins readers behind the exclusive lock for the whole rebuild, snapshots keep serving the old index",
		Header: []string{"wrapper", "rebuild ms", "max read ms", "reads during rebuild"},
	}
	for _, which := range []string{"rwmutex", "snapshot"} {
		idx, err := build()
		if err != nil {
			return nil, err
		}
		var reader concurrentReader
		var rebuild func() error
		if which == "rwmutex" {
			w := &rwmutexIndex{idx: idx}
			reader, rebuild = w, w.Rebuild
		} else {
			w := cssi.Concurrent(idx)
			reader, rebuild = w, w.Rebuild
		}
		rebuildMS, maxReadMS, reads := measureRebuildStall(reader, rebuild, &queries[0], k, lambda)
		stall.Rows = append(stall.Rows, []string{
			which, f1(rebuildMS), f2(maxReadMS), itoa(reads),
		})
	}
	return []Table{throughput, stall}, nil
}

// measureThroughput runs `readers` goroutines looping Search (round-robin
// over the workload) for the interval, optionally alongside one
// saturating writer goroutine applying atomic 200-op batches (100
// inserts + 100 deletes, net-zero) back-to-back — the serving shape
// where the locking discipline matters most, since an RWMutex under
// sustained writes queues readers behind every pending writer. Returns
// aggregate reads/s, the worst single-read latency in ms, and the
// achieved mutation ops/s (reported, not equalized: in-place locked
// writes are cheaper than COW writes, and the read columns show what
// that cheapness costs the readers).
func measureThroughput(reader concurrentReader, applyBatch func([]cssi.Op) error,
	ds *cssi.Dataset, queries []cssi.Object, k int, lambda float64,
	readers int, withWriter bool, interval time.Duration) (qps, maxReadMS, opsPerSec float64) {

	var stop atomic.Bool
	var nReads, nOps, worstNS atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local, worst := int64(0), int64(0)
			for i := g; !stop.Load(); i++ {
				t0 := time.Now()
				reader.Search(&queries[i%len(queries)], k, lambda)
				if d := time.Since(t0).Nanoseconds(); d > worst {
					worst = d
				}
				local++
			}
			nReads.Add(local)
			for { // lock-free max
				cur := worstNS.Load()
				if worst <= cur || worstNS.CompareAndSwap(cur, worst) {
					break
				}
			}
		}(g)
	}
	if withWriter {
		wg.Add(1)
		go func() {
			defer wg.Done()
			const perBatch = 100
			local := int64(0)
			for cycle := 0; !stop.Load(); cycle++ {
				ops := make([]cssi.Op, 0, 2*perBatch)
				for j := 0; j < perBatch; j++ {
					o := ds.Objects[(cycle*perBatch+j)%ds.Len()]
					o.ID = uint32(1<<30 + j)
					ops = append(ops, cssi.Op{Kind: cssi.OpInsert, Object: o})
				}
				for j := 0; j < perBatch; j++ {
					ops = append(ops, cssi.Op{Kind: cssi.OpDelete, ID: uint32(1<<30 + j)})
				}
				if applyBatch(ops) == nil {
					local += int64(len(ops))
				}
			}
			nOps.Add(local)
		}()
	}
	start := time.Now()
	time.Sleep(interval)
	stop.Store(true)
	wg.Wait()
	secs := time.Since(start).Seconds()
	return float64(nReads.Load()) / secs,
		float64(worstNS.Load()) / 1e6,
		float64(nOps.Load()) / secs
}

// measureRebuildStall times individual reads while one Rebuild runs,
// returning the rebuild's duration, the worst single-read latency
// observed by a reader goroutine that is already in its read loop when
// the rebuild starts, and how many reads completed in that window.
// (The ordering matters on a single-core host: if the rebuild ran
// first, the scheduler could let it finish before the reader ever
// attempts a read and the stall would go unmeasured.)
func measureRebuildStall(reader concurrentReader, rebuild func() error, q *cssi.Object, k int, lambda float64) (rebuildMS, maxReadMS float64, reads int) {
	var stop atomic.Bool
	var nReads, worstNS atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			t0 := time.Now()
			reader.Search(q, k, lambda)
			if d := time.Since(t0).Nanoseconds(); d > worstNS.Load() {
				worstNS.Store(d)
			}
			nReads.Add(1)
		}
	}()
	// Let the reader reach steady state before rebuilding.
	for nReads.Load() < 5 {
		time.Sleep(time.Millisecond)
	}
	before := nReads.Load()
	t0 := time.Now()
	rebuild()
	rebuildDur := time.Since(t0)
	stop.Store(true)
	<-done
	return float64(rebuildDur.Microseconds()) / 1000,
		float64(worstNS.Load()) / 1e6,
		int(nReads.Load() - before)
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
