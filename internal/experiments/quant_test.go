package experiments

import (
	"os"
	"strconv"
	"testing"
)

// TestQuantRecallGateSmoke runs the end-to-end quant-mode comparison at
// tiny scale and gates on answer quality: the exact modes (float32 and
// SQ8 filter+rerank) must report recall exactly 1 — the filter is
// bit-identical by construction, so anything else is a bound bug — and
// the approximate quantized-only path must keep recall@10 >= 0.99 at
// the default rerank multiplier. Timing columns are ignored, so the
// gate itself is deterministic, but the table still runs min-of-5
// timed trials; guarded behind CSSI_QUANT_SMOKE=1 to keep a regular
// `go test ./...` fast.
func TestQuantRecallGateSmoke(t *testing.T) {
	if os.Getenv("CSSI_QUANT_SMOKE") == "" {
		t.Skip("set CSSI_QUANT_SMOKE=1 to run the quant recall-gate smoke")
	}
	tab, err := quantEndToEndTable(Setup{Scale: 0.05, Queries: 40, K: 10, Lambda: 0.5, Dim: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	checked := 0
	for _, row := range tab.Rows {
		batch, mode, recallCell := row[0], row[1], row[4]
		recall, err := strconv.ParseFloat(recallCell, 64)
		if err != nil {
			t.Fatalf("recall cell %q (batch %s, %s): %v", recallCell, batch, mode, err)
		}
		switch mode {
		case "float32", "sq8 filter":
			// Exact modes: the SQ8 filter reranks every survivor with the
			// float32 kernel, so its answers are bit-identical and recall
			// must be exactly 1.
			if recall != 1 {
				t.Errorf("batch %s %s: recall %s, want exactly 1.0000", batch, mode, recallCell)
			}
		case "sq8 approx":
			if recall < 0.99 {
				t.Errorf("batch %s %s: recall@10 %s, want >= 0.99", batch, mode, recallCell)
			}
		default:
			t.Fatalf("unknown mode %q", mode)
		}
		checked++
		t.Logf("batch %s %-10s recall %s", batch, mode, recallCell)
	}
	if wantRows := len(quantBatchSizes) * len(quantModes); checked != wantRows {
		t.Errorf("checked %d rows, want %d", checked, wantRows)
	}
}
