// Package experiments regenerates every table and figure of the paper's
// evaluation section (§7) at a configurable scale. Each experiment is a
// function from a Setup to one or more Tables; the cssibench command and
// the root-level benchmarks drive them.
//
// The paper runs 0.5M–35M objects on a dual-Xeon server; the default
// Setup here is laptop-scale (tens of thousands of objects) with the same
// parameter ratios, so the reproduced quantity is the *shape* of each
// result — which algorithm wins, by roughly what factor, and where
// crossovers fall — rather than absolute times. Setup.Scale grows the
// workloads toward paper sizes.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/desire"
	"repro/internal/knn"
	"repro/internal/metric"
	"repro/internal/rrstar"
	"repro/internal/rtree"
	"repro/internal/s2rtree"
	"repro/internal/scan"
)

// Setup holds the experiment-wide knobs.
type Setup struct {
	// Scale multiplies every dataset size (default 1 = laptop scale;
	// the paper's Twitter default of 5M corresponds to Scale≈250).
	Scale float64
	// Queries is the number of query objects per measurement
	// (default 50; the paper uses 100).
	Queries int
	// ErrorQueries is the query count for error-rate measurements
	// (default 400; the paper uses 5000 because errors are rare).
	ErrorQueries int
	// K is the default number of neighbors (default 50, Table 3).
	K int
	// Lambda is the default balance parameter (default 0.5, Table 3).
	Lambda float64
	// Dim is the embedding dimensionality n (default 100, Table 3).
	Dim int
	// Seed drives dataset generation, index construction and query
	// sampling.
	Seed uint64
}

func (s *Setup) applyDefaults() {
	if s.Scale <= 0 {
		s.Scale = 1
	}
	if s.Queries <= 0 {
		s.Queries = 50
	}
	if s.ErrorQueries <= 0 {
		s.ErrorQueries = 400
	}
	if s.K <= 0 {
		s.K = 50
	}
	if s.Lambda == 0 {
		s.Lambda = 0.5
	}
	if s.Dim <= 0 {
		s.Dim = 100
	}
}

// Paper Table 3 size ladders, scaled down 250×: the Twitter sweep
// 5M/10M/16M/35M and the Yelp sweep 0.5M/1M/2.5M/5M keep their ratios.
func (s *Setup) twitterSizes() []int {
	return []int{s.size(20000), s.size(40000), s.size(64000), s.size(140000)}
}

func (s *Setup) yelpSizes() []int {
	return []int{s.size(2000), s.size(4000), s.size(10000), s.size(20000)}
}

// twitterDefault is the default Twitter size (the paper's default 5M is
// the smallest rung of its sweep; ours mirrors that).
func (s *Setup) twitterDefault() int { return s.size(20000) }

// yelpDefault mirrors the paper's Yelp default (5M, the largest rung).
func (s *Setup) yelpDefault() int { return s.size(20000) }

func (s *Setup) size(base int) int {
	n := int(math.Round(float64(base) * s.Scale))
	if n < 100 {
		n = 100
	}
	return n
}

// Table is one rendered result table (a figure's data series or a paper
// table).
type Table struct {
	// ID is the experiment identifier ("fig5", "table4", ...).
	ID string
	// Title describes the table; Note records the paper's expectation
	// for the shape of the numbers.
	Title, Note string
	Header      []string
	Rows        [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// searcher is the common query interface of all six algorithms.
type searcher interface {
	Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result
}

// approxSearcher adapts the CSSIA entry point to the searcher interface.
type approxSearcher struct{ idx *core.Index }

func (a approxSearcher) Search(q *dataset.Object, k int, lambda float64, st *metric.Stats) []knn.Result {
	return a.idx.SearchApprox(q, k, lambda, st)
}

// algo names a searcher for table columns.
type algo struct {
	name string
	s    searcher
}

// env is one fully-built experimental environment: a dataset, its metric
// space, the query workload, and the algorithms under test.
type env struct {
	ds      *dataset.Dataset
	space   *metric.Space
	queries []dataset.Object
	idx     *core.Index // CSSI/CSSIA index
	algos   []algo      // ordering defines column order
}

// envConfig selects which competitors to build.
type envConfig struct {
	kind         dataset.Kind
	size         int
	coreCfg      core.Config
	withBaseline bool // Scan, R-tree, S2R
	withMetric   bool // DESIRE, RR*-tree
	queries      int
}

// buildEnv generates the dataset and constructs the requested indexes.
func buildEnv(s Setup, c envConfig) (*env, error) {
	ds, err := dataset.Generate(dataset.GenConfig{
		Kind: c.kind, Size: c.size, Dim: s.Dim, Seed: s.Seed + uint64(c.size),
	})
	if err != nil {
		return nil, err
	}
	space, err := metric.NewSpace(ds)
	if err != nil {
		return nil, err
	}
	cfg := c.coreCfg
	cfg.Seed = s.Seed
	idx, err := core.Build(ds, space, cfg)
	if err != nil {
		return nil, err
	}
	nq := c.queries
	if nq <= 0 {
		nq = s.Queries
	}
	e := &env{
		ds:      ds,
		space:   space,
		queries: ds.SampleQueries(nq, s.Seed+7),
		idx:     idx,
	}
	if c.withBaseline {
		e.algos = append(e.algos,
			algo{"Scan", scan.New(ds, space)},
			algo{"R-tree", rtree.NewBaseline(ds, space, 0)},
			algo{"S2R", s2rtree.Build(ds, space, s2rtree.Config{Seed: s.Seed})},
		)
	}
	e.algos = append(e.algos,
		algo{"CSSI", idx},
		algo{"CSSIA", approxSearcher{idx}},
	)
	if c.withMetric {
		d, err := desire.Build(ds, space, desire.Config{Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		e.algos = append(e.algos,
			algo{"DESIRE", d},
			algo{"RR*-tree", rrstar.Build(ds, space, rrstar.Config{Seed: s.Seed})},
		)
	}
	return e, nil
}

// measurement aggregates one algorithm's behaviour over the workload.
type measurement struct {
	// MicrosPerQuery is the mean wall-clock query latency.
	MicrosPerQuery float64
	// Stats holds the per-query means of the work counters.
	Visited, Inter, Intra, DistCalcs float64
}

// run executes the workload against one searcher.
func run(e *env, s searcher, k int, lambda float64) measurement {
	var total metric.Stats
	start := time.Now()
	for qi := range e.queries {
		s.Search(&e.queries[qi], k, lambda, &total)
	}
	elapsed := time.Since(start)
	n := float64(len(e.queries))
	return measurement{
		MicrosPerQuery: float64(elapsed.Microseconds()) / n,
		Visited:        float64(total.VisitedObjects) / n,
		Inter:          float64(total.InterPruned) / n,
		Intra:          float64(total.IntraPruned) / n,
		DistCalcs:      float64(total.DistCalcs()) / n,
	}
}

// errorRate measures CSSIA's mean result error over many queries.
func errorRate(e *env, k int, lambda float64, queries []dataset.Object) float64 {
	exactAlgo := e.idx
	var total float64
	for qi := range queries {
		exact := exactAlgo.Search(&queries[qi], k, lambda, nil)
		approx := e.idx.SearchApprox(&queries[qi], k, lambda, nil)
		total += knn.ErrorRate(exact, approx)
	}
	return total / float64(len(queries))
}

// Formatting helpers shared by the experiment files.

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.3f%%", 100*v)
}
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// Runner is an experiment entry point.
type Runner func(Setup) ([]Table, error)

// registry maps experiment IDs to their runners; Register is called from
// the per-experiment files' init functions.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// IDs returns all registered experiment IDs, sorted with figures first.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := idRank(out[i]), idRank(out[j])
		if pi != pj {
			return pi < pj
		}
		return out[i] < out[j]
	})
	return out
}

// idRank orders "fig3" < "fig10" < "table4" numerically.
func idRank(id string) int {
	base := 0
	num := 0
	rest := id
	if strings.HasPrefix(id, "fig") {
		rest = id[3:]
	} else if strings.HasPrefix(id, "table") {
		base = 1000
		rest = id[5:]
	} else {
		return 1 << 20
	}
	fmt.Sscanf(rest, "%d", &num)
	return base + num
}
