package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	cssi "repro"
)

func init() {
	register("sharded", Sharding)
}

// shardedWriterIDBase spaces each writer goroutine's private ID range
// far above any generated dataset ID.
const shardedWriterIDBase = 1 << 30

// servingClients is the closed-loop client count in the serving-mix
// table; writesPerQuery is its ingest weight — every 64-query batch a
// client issues is accompanied by 64*writesPerQuery single-op writes,
// the write-heavy live-stream shape (think a geo-tagged firehose with
// periodic semantic queries over it).
const (
	servingClients = 4
	writesPerQuery = 4
)

// mixedWriters is the writer count in the saturated mixed table.
const mixedWriters = 4

// Sharding quantifies what hash-partitioning the concurrency layer buys
// on a serving workload. The copy-on-write snapshot wrapper charges
// every single-op write an O(n) metadata clone; P shards cut that to
// O(n/P) and let writes to distinct shards publish concurrently, while
// exact scatter/gather reads stay bit-identical to the unsharded index
// (on a single-core host the scatter runs sequentially with the k-NN
// bound carried shard to shard, so the read does the same object-level
// work as a flat scan). Three measurements:
//
//  1. Saturated single-op write throughput by shard count — the direct
//     effect of the smaller clone.
//  2. Batched-search throughput in a closed-loop write-heavy serving
//     mix: each client alternates one 64-query exact batch with a fixed
//     multiple of single-op writes, so the CPU the clones burn comes
//     straight out of query throughput. Closed-loop coupling (YCSB
//     style) makes the measurement work-conserving — no pacing, no
//     scheduler-fairness artifacts.
//  3. Saturated write-heavy mixed throughput — both sides run flat out
//     and the combined operation rate shows the end-to-end serving
//     capacity under live ingestion.
//
// All numbers come from one process timesharing the host (GOMAXPROCS
// raised as in the concurrency experiment so the scheduler interleaves
// at its quantum); speedups are therefore algorithmic — less work per
// write — not parallel hardware.
func Sharding(s Setup) ([]Table, error) {
	s.applyDefaults()
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	size := s.size(20000)
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.TwitterLike, Size: size, Dim: s.Dim, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	// A fixed 64-query batch, the /search/batch serving shape.
	batch := ds.SampleQueries(64, s.Seed+77)
	k, lambda := 10, s.Lambda

	interval, warmup := 1500*time.Millisecond, 300*time.Millisecond
	if s.Scale < 0.5 {
		interval, warmup = 50*time.Millisecond, 5*time.Millisecond
	}
	shardCounts := []int{1, 2, 4, 8}
	build := func(p int) (*cssi.ShardedIndex, error) {
		return cssi.BuildSharded(ds, p, cssi.Options{Seed: s.Seed})
	}

	writes := Table{
		ID:    "sharded",
		Title: "Saturated single-op write throughput by shard count",
		Note: "2 writers apply insert/delete ops back-to-back; each op clones only its owning shard's " +
			"O(n/P) metadata before publishing, so throughput should scale roughly with the shard count",
		Header: []string{"shards", "writers", "write ops/s", "speedup"},
	}
	var writeBase float64
	for _, p := range shardCounts {
		idx, err := build(p)
		if err != nil {
			return nil, err
		}
		ops := measureShardedWrites(idx, ds, 2, warmup, interval)
		if p == 1 {
			writeBase = ops
		}
		writes.Rows = append(writes.Rows, []string{
			itoa(p), "2", f1(ops), speedupCell(ops, writeBase),
		})
	}

	serving := Table{
		ID:    "sharded",
		Title: "Batched-search throughput in a write-heavy serving mix",
		Note: fmt.Sprintf("%d closed-loop clients each alternate one 64-query exact batch with %d single-op "+
			"writes per query (a live-ingestion mix); every clone cycle the writes save is CPU the "+
			"queries get back", servingClients, writesPerQuery),
		Header: []string{"shards", "batched queries/s", "write ops/s", "speedup (queries/s)"},
	}
	var readBase float64
	for _, p := range shardCounts {
		idx, err := build(p)
		if err != nil {
			return nil, err
		}
		qps, wps := measureShardedServingLoop(idx, ds, batch, k, lambda, warmup, interval)
		if p == 1 {
			readBase = qps
		}
		serving.Rows = append(serving.Rows, []string{
			itoa(p), f1(qps), f1(wps), speedupCell(qps, readBase),
		})
	}

	mixed := Table{
		ID:    "sharded",
		Title: fmt.Sprintf("Saturated write-heavy mixed throughput (%d writers : 1 reader)", mixedWriters),
		Note: "one reader loops 64-query exact batches while the writers apply single ops, all flat out — " +
			"the live-ingestion serving shape; combined ops/s is dominated by the write side, whose per-op " +
			"cost shrinks with the shard count",
		Header: []string{"shards", "batched queries/s", "write ops/s", "combined ops/s", "speedup"},
	}
	var mixedBase float64
	for _, p := range shardCounts {
		idx, err := build(p)
		if err != nil {
			return nil, err
		}
		qps, wps := measureShardedMixed(idx, ds, batch, k, lambda, warmup, interval)
		combined := qps + wps
		if p == 1 {
			mixedBase = combined
		}
		mixed.Rows = append(mixed.Rows, []string{
			itoa(p), f1(qps), f1(wps), f1(combined), speedupCell(combined, mixedBase),
		})
	}
	return []Table{writes, serving, mixed}, nil
}

func speedupCell(v, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", v/base)
}

// shardedWriter loops net-zero single-op writes (insert then delete,
// private ID range per writer) until stop, optionally pacing itself to
// opEvery between ops (0 = saturated). Completed ops are counted into
// ops as they happen, so callers can snapshot the counter mid-run.
func shardedWriter(idx *cssi.ShardedIndex, ds *cssi.Dataset, writer int, stop *atomic.Bool, opEvery time.Duration, ops *atomic.Int64) {
	next := time.Now()
	for i := 0; !stop.Load(); i++ {
		if opEvery > 0 {
			next = next.Add(opEvery)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		// Even iterations insert a fresh ID, odd iterations delete it
		// again, so the index size stays put for the whole run.
		id := uint32(shardedWriterIDBase + writer*1_000_000 + (i/2)%1000)
		if i%2 == 0 {
			o := ds.Objects[(writer*31+i)%ds.Len()]
			o.ID = id
			if idx.Insert(o) == nil {
				ops.Add(1)
			}
		} else if idx.Delete(id) == nil {
			ops.Add(1)
		}
	}
}

// window lets every measurement discard its warmup: it snapshots the
// live counters after the warmup, sleeps the measured interval, and
// returns each counter's delta divided by the measured wall time.
func window(warmup, interval time.Duration, counters ...*atomic.Int64) []float64 {
	time.Sleep(warmup)
	base := make([]int64, len(counters))
	for i, c := range counters {
		base[i] = c.Load()
	}
	start := time.Now()
	time.Sleep(interval)
	secs := time.Since(start).Seconds()
	rates := make([]float64, len(counters))
	for i, c := range counters {
		rates[i] = float64(c.Load()-base[i]) / secs
	}
	return rates
}

// measureShardedWrites runs `writers` saturated writer goroutines and
// returns aggregate ops/s over the post-warmup window.
func measureShardedWrites(idx *cssi.ShardedIndex, ds *cssi.Dataset, writers int, warmup, interval time.Duration) float64 {
	runtime.GC()
	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shardedWriter(idx, ds, w, &stop, 0, &total)
		}(w)
	}
	rates := window(warmup, interval, &total)
	stop.Store(true)
	wg.Wait()
	return rates[0]
}

// measureShardedServingLoop runs servingClients closed-loop clients.
// Each client cycle issues len(batch)*writesPerQuery single-op writes
// (net-zero insert/delete pairs in a client-private ID range) followed
// by one exact batched search, and returns (batched queries/s, write
// ops/s) over the post-warmup window. Because every client must finish
// its writes before it may query again, CPU spent on clones translates
// directly into lost query throughput — the coupling a real ingesting
// service experiences.
func measureShardedServingLoop(idx *cssi.ShardedIndex, ds *cssi.Dataset,
	batch []cssi.Object, k int, lambda float64, warmup, interval time.Duration) (float64, float64) {

	runtime.GC()
	var stop atomic.Bool
	var queries, writes atomic.Int64
	var wg sync.WaitGroup
	pairs := len(batch) * writesPerQuery / 2
	for c := 0; c < servingClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				for j := 0; j < pairs; j++ {
					id := uint32(shardedWriterIDBase + c*1_000_000 + j%1000)
					o := ds.Objects[(c*31+i+j)%ds.Len()]
					o.ID = id
					if idx.Insert(o) == nil {
						writes.Add(1)
					}
					if idx.Delete(id) == nil {
						writes.Add(1)
					}
				}
				// parallelism 1 per shard: the scatter itself is the only
				// fan-out, keeping the goroutine count low on a timeshared
				// core.
				if _, err := idx.BatchSearch(batch, k, lambda, false, 1, nil); err == nil {
					queries.Add(int64(len(batch)))
				}
			}
		}(c)
	}
	rates := window(warmup, interval, &queries, &writes)
	stop.Store(true)
	wg.Wait()
	return rates[0], rates[1]
}

// measureShardedMixed runs 1 saturated reader (batched search) and
// mixedWriters saturated writers — the write-heavy live-ingestion
// serving shape — and returns (batched queries/s, write ops/s) over the
// post-warmup window.
func measureShardedMixed(idx *cssi.ShardedIndex, ds *cssi.Dataset,
	batch []cssi.Object, k int, lambda float64, warmup, interval time.Duration) (float64, float64) {

	runtime.GC()
	var stop atomic.Bool
	var queries, writes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := idx.BatchSearch(batch, k, lambda, false, 1, nil); err == nil {
				queries.Add(int64(len(batch)))
			}
		}
	}()
	for w := 0; w < mixedWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shardedWriter(idx, ds, w, &stop, 0, &writes)
		}(w)
	}
	rates := window(warmup, interval, &queries, &writes)
	stop.Store(true)
	wg.Wait()
	return rates[0], rates[1]
}
