package experiments

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestRouteRecallGateSmoke runs the routed-approximate sweep at tiny
// scale and gates on answer quality: the exact row must report recall
// exactly 1, and the routed approximate mode at the default RouteTarget
// must keep recall@10 >= 0.95. Timing columns are ignored, so the gate
// itself is deterministic; guarded behind CSSI_ROUTE_SMOKE=1 to keep a
// regular `go test ./...` fast.
func TestRouteRecallGateSmoke(t *testing.T) {
	if os.Getenv("CSSI_ROUTE_SMOKE") == "" {
		t.Skip("set CSSI_ROUTE_SMOKE=1 to run the route recall-gate smoke")
	}
	tab, err := routeApproxTable(Setup{Scale: 0.05, Queries: 40, K: 10, Lambda: 0.5, Dim: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	sawDefault := false
	for _, row := range tab.Rows {
		mode, recallCell := row[0], row[3]
		recall, err := strconv.ParseFloat(recallCell, 64)
		if err != nil {
			t.Fatalf("recall cell %q (%s): %v", recallCell, mode, err)
		}
		switch {
		case mode == "cssi exact":
			if recall != 1 {
				t.Errorf("%s: recall %s, want exactly 1.0000", mode, recallCell)
			}
		case strings.HasPrefix(mode, "routed@default"):
			sawDefault = true
			if recall < 0.95 {
				t.Errorf("%s: recall@10 %s, want >= 0.95", mode, recallCell)
			}
		case mode == "routed@1.00":
			if recall < 0.95 {
				t.Errorf("%s: recall@10 %s, want >= 0.95", mode, recallCell)
			}
		}
		t.Logf("%-22s recall %s", mode, recallCell)
	}
	if !sawDefault {
		t.Error("sweep has no routed@default row")
	}
}

// TestRouteExactIdentitySmoke runs the exact-vs-routed table at tiny
// scale; the table constructor itself verifies bit-identity per run and
// fails the experiment on any divergence, so simply completing is the
// assertion. Guarded with the same env gate as the recall smoke.
func TestRouteExactIdentitySmoke(t *testing.T) {
	if os.Getenv("CSSI_ROUTE_SMOKE") == "" {
		t.Skip("set CSSI_ROUTE_SMOKE=1 to run the route exact-identity smoke")
	}
	tab, err := routeExactTable(Setup{Scale: 0.05, Queries: 40, K: 10, Lambda: 0.5, Dim: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tab.Rows))
	}
	routed := tab.Rows[1]
	if v, err := strconv.ParseFloat(routed[5], 64); err != nil || v <= 0 {
		t.Errorf("routed/q column = %q, want > 0 (the pre-pass should route clusters)", routed[5])
	}
}
