package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
)

func init() {
	register("fig9", Fig9)
	register("fig10", Fig10)
	register("fig11", Fig11)
	register("fig12", Fig12)
}

// paperMValues is the projection-dimensionality sweep of Table 3.
var paperMValues = []int{1, 2, 3, 5, 7, 9, 11, 13, 20, 30}

// Fig9 reproduces the m sweep (Fig. 9): CSSI improves with m up to ~10,
// CSSIA is fastest at small m, and the two converge around m≈5 as the
// projected space inherits the high-dimensional distance concentration.
func Fig9(s Setup) ([]Table, error) {
	s.applyDefaults()
	timeT := Table{
		ID:     "fig9",
		Title:  "Query time (µs/query) vs m — Twitter",
		Note:   "paper Fig. 9: CSSIA fastest for m < 5; curves converge for m ≥ 5; CSSI stabilizes by m ≈ 10",
		Header: []string{"m", "CSSI", "CSSIA"},
	}
	visT := Table{
		ID:     "fig9",
		Title:  "Visited objects vs m — Twitter",
		Header: timeT.Header,
	}
	for _, m := range paperMValues {
		e, err := coreOnlyEnv(s, dataset.TwitterLike, s.twitterDefault(), core.Config{M: m})
		if err != nil {
			return nil, err
		}
		mi := run(e, e.idx, s.K, s.Lambda)
		ma := run(e, approxSearcher{e.idx}, s.K, s.Lambda)
		timeT.Rows = append(timeT.Rows, []string{itoa(m), f1(mi.MicrosPerQuery), f1(ma.MicrosPerQuery)})
		visT.Rows = append(visT.Rows, []string{itoa(m), f1(mi.Visited), f1(ma.Visited)})
	}
	return []Table{timeT, visT}, nil
}

// paperFValues is the cluster-multiplier sweep of Table 3.
var paperFValues = []float64{0.1, 0.3, 0.5, 0.7, 0.9}

// Fig10 reproduces the f sweep (Fig. 10): more clusters improve pruning
// up to a point; CSSI stops improving (sorting overhead outweighs the
// gain) while CSSIA keeps improving because its inter-cluster pruning
// benefits from finer granularity.
func Fig10(s Setup) ([]Table, error) {
	s.applyDefaults()
	timeT := Table{
		ID:     "fig10",
		Title:  "Query time (µs/query) vs f — Twitter",
		Note:   "paper Fig. 10: CSSI flattens then degrades with large f; CSSIA keeps improving",
		Header: []string{"f", "clusters", "CSSI", "CSSIA"},
	}
	visT := Table{
		ID:     "fig10",
		Title:  "Visited objects vs f — Twitter",
		Header: timeT.Header,
	}
	for _, f := range paperFValues {
		e, err := coreOnlyEnv(s, dataset.TwitterLike, s.twitterDefault(), core.Config{F: f})
		if err != nil {
			return nil, err
		}
		mi := run(e, e.idx, s.K, s.Lambda)
		ma := run(e, approxSearcher{e.idx}, s.K, s.Lambda)
		nc := itoa(e.idx.NumClusters())
		timeT.Rows = append(timeT.Rows, []string{f1(f), nc, f1(mi.MicrosPerQuery), f1(ma.MicrosPerQuery)})
		visT.Rows = append(visT.Rows, []string{f1(f), nc, f1(mi.Visited), f1(ma.Visited)})
	}
	return []Table{timeT, visT}, nil
}

// Fig11 reproduces the CSSIA error sensitivity (Fig. 11): m=1 is the
// pathological case (paper: ≈40% error); m ≥ 2 keeps the error under 1%.
// Across f the error stays under 0.8%, growing slightly with more
// clusters.
func Fig11(s Setup) ([]Table, error) {
	s.applyDefaults()
	mT := Table{
		ID:     "fig11",
		Title:  "CSSIA error vs m — Twitter",
		Note:   "paper Fig. 11a: ≈40% at m=1, <1% for m ≥ 2",
		Header: []string{"m", "error"},
	}
	for _, m := range []int{1, 2, 3, 5, 7, 9} {
		e, err := coreOnlyEnv(s, dataset.TwitterLike, s.twitterDefault(), core.Config{M: m})
		if err != nil {
			return nil, err
		}
		queries := e.ds.SampleQueries(s.ErrorQueries, s.Seed+17)
		mT.Rows = append(mT.Rows, []string{itoa(m), pct(errorRate(e, s.K, s.Lambda, queries))})
	}
	fT := Table{
		ID:     "fig11",
		Title:  "CSSIA error vs f — Twitter",
		Note:   "paper Fig. 11b: < 0.8% for all f, slightly growing with cluster count",
		Header: []string{"f", "error"},
	}
	for _, f := range paperFValues {
		e, err := coreOnlyEnv(s, dataset.TwitterLike, s.twitterDefault(), core.Config{F: f})
		if err != nil {
			return nil, err
		}
		queries := e.ds.SampleQueries(s.ErrorQueries, s.Seed+17)
		fT.Rows = append(fT.Rows, []string{f1(f), pct(errorRate(e, s.K, s.Lambda, queries))})
	}
	return []Table{mT, fT}, nil
}

// Fig12 reproduces the pruning breakdown (Fig. 12): per algorithm, the
// objects skipped by inter-cluster pruning (whole clusters) vs
// intra-cluster pruning vs visited, summing to |O|. The paper observes
// CSSIA leans far more on inter-cluster pruning than CSSI, whose two
// mechanisms contribute about equally.
func Fig12(s Setup) ([]Table, error) {
	s.applyDefaults()
	e, err := buildEnv(s, envConfig{kind: dataset.TwitterLike, size: s.twitterDefault()})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "fig12",
		Title:  "Pruning breakdown (avg objects per query) — Twitter",
		Note:   "paper Fig. 12: CSSIA prunes mostly whole clusters; CSSI splits evenly; rows sum to |O|",
		Header: []string{"algorithm", "inter-pruned", "intra-pruned", "visited", "sum", "|O|"},
	}
	for _, a := range []algo{{"CSSI", e.idx}, {"CSSIA", approxSearcher{e.idx}}} {
		m := run(e, a.s, s.K, s.Lambda)
		t.Rows = append(t.Rows, []string{
			a.name, f1(m.Inter), f1(m.Intra), f1(m.Visited),
			f1(m.Inter + m.Intra + m.Visited), itoa(e.ds.Len()),
		})
	}
	return []Table{t}, nil
}
