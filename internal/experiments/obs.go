package experiments

import (
	"fmt"
	"runtime"
	"time"

	cssi "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/obs"
)

func init() {
	register("obs", Observability)
}

// obsTrials is how many alternating off/on timing trials the overhead
// table runs; each mode reports its fastest trial (min-of-N rejects
// scheduler noise, the standard microbenchmark discipline).
const obsTrials = 5

// Observability quantifies the cost of the search-internals
// instrumentation (internal/obs). Two tables:
//
//  1. Collection overhead — the same exact query workload through the
//     plain SearchInto path (obs pointer nil: every instrumentation
//     site an untaken branch) and the SearchExplainInto path
//     (collection on). Reported per mode: µs/query (min of
//     alternating trials) and heap allocs/query. The disabled path
//     must stay zero-alloc and the enabled path should cost ≤2% — the
//     design target of threading a nil-checked pointer through the
//     pooled scratch instead of wrapping the algorithms.
//  2. Sharded read efficiency by cluster-count derivation — the
//     satellite fix this PR lands: deriving a shard's Ks/Kt from the
//     GLOBAL object count (matching the flat index's granularity)
//     versus the old per-shard n/P derivation (fewer, fatter clusters
//     per shard, so the Lemma 4.4/4.5 cuts discard less). Measured
//     with SearchExplain traces over the same workload; read
//     efficiency is the fraction of accounted objects pruned (§6).
func Observability(s Setup) ([]Table, error) {
	s.applyDefaults()
	overhead, err := obsOverheadTable(s)
	if err != nil {
		return nil, err
	}
	sharded, err := obsShardedReadEffTable(s)
	if err != nil {
		return nil, err
	}
	return []Table{overhead, sharded}, nil
}

func obsOverheadTable(s Setup) (Table, error) {
	e, err := buildEnv(s, envConfig{
		kind: dataset.TwitterLike, size: s.twitterDefault(),
		queries: s.Queries,
	})
	if err != nil {
		return Table{}, err
	}
	k, lambda := s.K, s.Lambda

	// runWorkload executes every query once through the selected path,
	// reusing one result buffer and one SearchStats so steady state is
	// allocation-free in both modes.
	dst := make([]knn.Result, 0, k)
	var es obs.SearchStats
	runWorkload := func(explain bool) {
		for qi := range e.queries {
			q := &e.queries[qi]
			if explain {
				dst = e.idx.SearchExplainInto(dst[:0], q, k, lambda, false, &es)
			} else {
				dst = e.idx.SearchInto(dst[:0], q, k, lambda, nil)
			}
		}
	}
	// Warm both paths (scratch pool, caches) before any measurement.
	runWorkload(false)
	runWorkload(true)

	nq := float64(len(e.queries))
	micros := map[bool]float64{false: 0, true: 0}
	allocs := map[bool]float64{false: 0, true: 0}
	var ms0, ms1 runtime.MemStats
	for trial := 0; trial < obsTrials; trial++ {
		for _, explain := range []bool{false, true} {
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			runWorkload(explain)
			elapsed := float64(time.Since(start).Microseconds()) / nq
			runtime.ReadMemStats(&ms1)
			if trial == 0 || elapsed < micros[explain] {
				micros[explain] = elapsed
			}
			perQ := float64(ms1.Mallocs-ms0.Mallocs) / nq
			if trial == 0 || perQ < allocs[explain] {
				allocs[explain] = perQ
			}
		}
	}

	overheadPct := 0.0
	if micros[false] > 0 {
		overheadPct = 100 * (micros[true] - micros[false]) / micros[false]
	}
	t := Table{
		ID:    "obs",
		Title: "Search-internals collection overhead (exact CSSI queries)",
		Note: "collection off = plain SearchInto (nil obs pointer, every instrumentation site an untaken " +
			"branch); on = SearchExplainInto; min of alternating trials — target ≤2% overhead, 0 allocs off",
		Header: []string{"collection", "µs/query", "allocs/query", "overhead"},
		Rows: [][]string{
			{"off", f1(micros[false]), f2(allocs[false]), "-"},
			{"on", f1(micros[true]), f2(allocs[true]), fmt.Sprintf("%.2f%%", overheadPct)},
		},
	}
	return t, nil
}

func obsShardedReadEffTable(s Setup) (Table, error) {
	size := s.size(20000)
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.TwitterLike, Size: size, Dim: s.Dim, Seed: s.Seed,
	})
	if err != nil {
		return Table{}, err
	}
	queries := ds.SampleQueries(s.Queries, s.Seed+7)
	k, lambda := s.K, s.Lambda

	measure := func(idx *cssi.ShardedIndex) (readEff, visitedPerQ float64) {
		var agg obs.SearchStats
		for qi := range queries {
			_, tr := idx.SearchExplain(&queries[qi], k, lambda, false, "")
			agg.Merge(&tr.Total)
		}
		return agg.ReadEfficiency(), float64(agg.VisitedObjects) / float64(len(queries))
	}

	t := Table{
		ID:    "obs",
		Title: "Sharded read efficiency by per-shard cluster-count derivation",
		Note: "global derives each shard's Ks/Kt from the FULL object count (this PR's default), per-shard " +
			"from n/P (the old default, emulated with explicit Ks/Kt) — coarser per-shard clusters prune " +
			"less, so global should hold read efficiency near the flat index's as P grows",
		Header: []string{"config", "shards", "per-shard Ks=Kt", "read efficiency", "visited/query"},
	}
	addRow := func(name string, p, ksKt int, idx *cssi.ShardedIndex) {
		re, vis := measure(idx)
		t.Rows = append(t.Rows, []string{name, itoa(p), itoa(ksKt), pct(re), f1(vis)})
	}

	globalK := core.DeriveClusterCount(size, 0)
	flat, err := cssi.BuildSharded(ds, 1, cssi.Options{Seed: s.Seed})
	if err != nil {
		return Table{}, err
	}
	addRow("flat", 1, globalK, flat)
	for _, p := range []int{4, 8} {
		perShardK := core.DeriveClusterCount(size/p, 0)
		old, err := cssi.BuildSharded(ds, p, cssi.Options{Seed: s.Seed, Ks: perShardK, Kt: perShardK})
		if err != nil {
			return Table{}, err
		}
		addRow("per-shard (old)", p, perShardK, old)
		neu, err := cssi.BuildSharded(ds, p, cssi.Options{Seed: s.Seed})
		if err != nil {
			return Table{}, err
		}
		addRow("global (new)", p, globalK, neu)
	}
	return t, nil
}
