package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	cssi "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/obs"
)

func init() {
	register("obs", Observability)
}

// obsTrials is how many alternating off/on timing trials the overhead
// table runs; each mode reports its fastest trial (min-of-N rejects
// scheduler noise, the standard microbenchmark discipline).
const obsTrials = 5

// Observability quantifies the cost of the search-internals
// instrumentation (internal/obs). Two tables:
//
//  1. Collection overhead — the same exact query workload through the
//     plain SearchInto path (obs pointer nil: every instrumentation
//     site an untaken branch) and the SearchExplainInto path
//     (collection on). Reported per mode: µs/query (min of
//     alternating trials) and heap allocs/query. The disabled path
//     must stay zero-alloc and the enabled path should cost ≤2% — the
//     design target of threading a nil-checked pointer through the
//     pooled scratch instead of wrapping the algorithms.
//  2. Always-on tracing overhead — the same workload through Do with
//     no trace sink versus Do with the tail-sampling sink installed
//     (production default: every query records a span tree, 1-in-128
//     of normal traffic retained). Target: <1% added latency.
//  3. Sharded read efficiency by cluster-count derivation — the
//     satellite fix this PR lands: deriving a shard's Ks/Kt from the
//     GLOBAL object count (matching the flat index's granularity)
//     versus the old per-shard n/P derivation (fewer, fatter clusters
//     per shard, so the Lemma 4.4/4.5 cuts discard less). Measured
//     with SearchExplain traces over the same workload; read
//     efficiency is the fraction of accounted objects pruned (§6).
func Observability(s Setup) ([]Table, error) {
	s.applyDefaults()
	overhead, err := obsOverheadTable(s)
	if err != nil {
		return nil, err
	}
	tracing, err := obsTracingTable(s)
	if err != nil {
		return nil, err
	}
	sharded, err := obsShardedReadEffTable(s)
	if err != nil {
		return nil, err
	}
	return []Table{overhead, tracing, sharded}, nil
}

// obsTracingTable measures the cost of the always-on tracer on the
// library's serving entry point: the identical exact-query workload
// through Index.Do without a trace sink (the pre-tracing fast path)
// and with the production-default tail-sampling sink installed. The
// traced path pays one pooled Trace per query, the span's phase
// collection, and the retention decision; the target is <1% added
// latency.
func obsTracingTable(s Setup) (Table, error) {
	size := s.twitterDefault()
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.TwitterLike, Size: size, Dim: s.Dim, Seed: s.Seed + uint64(size),
	})
	if err != nil {
		return Table{}, err
	}
	idx, err := cssi.Build(ds, cssi.Options{Seed: s.Seed})
	if err != nil {
		return Table{}, err
	}
	queries := ds.SampleQueries(s.Queries, s.Seed+11)
	k, lambda := s.K, s.Lambda

	sink := obs.NewSink(obs.SinkConfig{BufferSize: 256})
	// The workload models the serving layer: every request carries a
	// pre-minted request ID (the HTTP middleware mints one with or
	// without tracing) and a Stats sink (every /search response reports
	// visited counts), so both modes pay the per-object counters and
	// the measured delta is the tracer's own cost — the pooled span,
	// the phase-timing stamps, and the tail-sampling decision.
	ids := make([]string, len(queries))
	for i := range ids {
		ids[i] = obs.NewRequestID()
	}
	var st cssi.Stats
	runWorkload := func(traced bool) {
		if traced {
			idx.SetTraceSink(sink)
		} else {
			idx.SetTraceSink(nil)
		}
		for qi := range queries {
			if _, err := idx.Do(cssi.SearchRequest{
				Query: &queries[qi], K: k, Lambda: lambda,
				Stats: &st, RequestID: ids[qi],
			}); err != nil {
				panic(err)
			}
		}
	}
	runWorkload(false)
	runWorkload(true)

	// The tracer's cost is a few µs against ~1ms queries, so comparing
	// each mode's independent minimum is dominated by machine drift
	// between trials (CPU frequency, steal time). Instead each trial
	// times the two modes back to back — drift inside one short pair
	// mostly hits both sides — and the reported overhead is the MEDIAN
	// of the per-trial on/off ratios over many pairs: single
	// interference bursts cannot move it, and with tracingPairs pairs
	// the median's remaining noise is well under the smoke gate. The
	// µs columns still report each mode's fastest trial.
	const tracingPairs = 8 * obsTrials
	nq := float64(len(queries))
	micros := map[bool]float64{}
	ratios := make([]float64, 0, tracingPairs)
	measure := func(traced bool) float64 {
		runtime.GC()
		start := time.Now()
		runWorkload(traced)
		elapsed := float64(time.Since(start).Microseconds()) / nq
		if v, ok := micros[traced]; !ok || elapsed < v {
			micros[traced] = elapsed
		}
		return elapsed
	}
	for trial := 0; trial < tracingPairs; trial++ {
		// Alternate which mode runs first so a steady within-pair drift
		// cancels across trials instead of biasing one mode.
		first := trial%2 == 0
		a := measure(first)
		b := measure(!first)
		on, off := a, b
		if !first {
			on, off = b, a
		}
		if off > 0 {
			ratios = append(ratios, on/off)
		}
	}
	idx.SetTraceSink(nil)

	sort.Float64s(ratios)
	overheadPct := 0.0
	if n := len(ratios); n > 0 {
		mid := ratios[n/2]
		if n%2 == 0 {
			mid = (ratios[n/2-1] + ratios[n/2]) / 2
		}
		overheadPct = 100 * (mid - 1)
	}
	seen, retained, _ := sink.Counts()
	return Table{
		ID:    "obs",
		Title: "Always-on tracing overhead (Index.Do, exact queries)",
		Note: "off = Do with no trace sink; on = Do with the production-default tail-sampling sink " +
			"(span tree per query, slow/errored always retained + 1-in-128 of normal traffic); " +
			"overhead is the median of paired per-trial on/off ratios — target <1% added latency",
		Header: []string{"tracing", "µs/query", "traces seen", "retained", "overhead"},
		Rows: [][]string{
			{"off", f1(micros[false]), "-", "-", "-"},
			{"on", f1(micros[true]), itoa(int(seen)), itoa(int(retained)), fmt.Sprintf("%.2f%%", overheadPct)},
		},
	}, nil
}

func obsOverheadTable(s Setup) (Table, error) {
	e, err := buildEnv(s, envConfig{
		kind: dataset.TwitterLike, size: s.twitterDefault(),
		queries: s.Queries,
	})
	if err != nil {
		return Table{}, err
	}
	k, lambda := s.K, s.Lambda

	// runWorkload executes every query once through the selected path,
	// reusing one result buffer and one SearchStats so steady state is
	// allocation-free in both modes.
	dst := make([]knn.Result, 0, k)
	var es obs.SearchStats
	runWorkload := func(explain bool) {
		for qi := range e.queries {
			q := &e.queries[qi]
			if explain {
				dst = e.idx.SearchExplainInto(dst[:0], q, k, lambda, false, &es)
			} else {
				dst = e.idx.SearchInto(dst[:0], q, k, lambda, nil)
			}
		}
	}
	// Warm both paths (scratch pool, caches) before any measurement.
	runWorkload(false)
	runWorkload(true)

	nq := float64(len(e.queries))
	micros := map[bool]float64{false: 0, true: 0}
	allocs := map[bool]float64{false: 0, true: 0}
	var ms0, ms1 runtime.MemStats
	for trial := 0; trial < obsTrials; trial++ {
		for _, explain := range []bool{false, true} {
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			runWorkload(explain)
			elapsed := float64(time.Since(start).Microseconds()) / nq
			runtime.ReadMemStats(&ms1)
			if trial == 0 || elapsed < micros[explain] {
				micros[explain] = elapsed
			}
			perQ := float64(ms1.Mallocs-ms0.Mallocs) / nq
			if trial == 0 || perQ < allocs[explain] {
				allocs[explain] = perQ
			}
		}
	}

	overheadPct := 0.0
	if micros[false] > 0 {
		overheadPct = 100 * (micros[true] - micros[false]) / micros[false]
	}
	t := Table{
		ID:    "obs",
		Title: "Search-internals collection overhead (exact CSSI queries)",
		Note: "collection off = plain SearchInto (nil obs pointer, every instrumentation site an untaken " +
			"branch); on = SearchExplainInto; min of alternating trials — target ≤2% overhead, 0 allocs off",
		Header: []string{"collection", "µs/query", "allocs/query", "overhead"},
		Rows: [][]string{
			{"off", f1(micros[false]), f2(allocs[false]), "-"},
			{"on", f1(micros[true]), f2(allocs[true]), fmt.Sprintf("%.2f%%", overheadPct)},
		},
	}
	return t, nil
}

func obsShardedReadEffTable(s Setup) (Table, error) {
	size := s.size(20000)
	ds, err := cssi.GenerateDataset(cssi.DatasetConfig{
		Kind: cssi.TwitterLike, Size: size, Dim: s.Dim, Seed: s.Seed,
	})
	if err != nil {
		return Table{}, err
	}
	queries := ds.SampleQueries(s.Queries, s.Seed+7)
	k, lambda := s.K, s.Lambda

	measure := func(idx *cssi.ShardedIndex) (readEff, visitedPerQ float64) {
		var agg obs.SearchStats
		for qi := range queries {
			_, tr := idx.SearchExplain(&queries[qi], k, lambda, false, "")
			agg.Merge(&tr.Total)
		}
		return agg.ReadEfficiency(), float64(agg.VisitedObjects) / float64(len(queries))
	}

	t := Table{
		ID:    "obs",
		Title: "Sharded read efficiency by per-shard cluster-count derivation",
		Note: "global derives each shard's Ks/Kt from the FULL object count (this PR's default), per-shard " +
			"from n/P (the old default, emulated with explicit Ks/Kt) — coarser per-shard clusters prune " +
			"less, so global should hold read efficiency near the flat index's as P grows",
		Header: []string{"config", "shards", "per-shard Ks=Kt", "read efficiency", "visited/query"},
	}
	addRow := func(name string, p, ksKt int, idx *cssi.ShardedIndex) {
		re, vis := measure(idx)
		t.Rows = append(t.Rows, []string{name, itoa(p), itoa(ksKt), pct(re), f1(vis)})
	}

	globalK := core.DeriveClusterCount(size, 0)
	flat, err := cssi.BuildSharded(ds, 1, cssi.Options{Seed: s.Seed})
	if err != nil {
		return Table{}, err
	}
	addRow("flat", 1, globalK, flat)
	for _, p := range []int{4, 8} {
		perShardK := core.DeriveClusterCount(size/p, 0)
		old, err := cssi.BuildSharded(ds, p, cssi.Options{Seed: s.Seed, Ks: perShardK, Kt: perShardK})
		if err != nil {
			return Table{}, err
		}
		addRow("per-shard (old)", p, perShardK, old)
		neu, err := cssi.BuildSharded(ds, p, cssi.Options{Seed: s.Seed})
		if err != nil {
			return Table{}, err
		}
		addRow("global (new)", p, globalK, neu)
	}
	return t, nil
}
