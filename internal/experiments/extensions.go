package experiments

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/metric"
)

func init() {
	register("parallel", Parallel)
	register("skew", Skew)
}

// Parallel measures the batch-query speedup from fanning queries over
// worker goroutines — the "parallel processing algorithms" direction of
// the paper's conclusion (§8). The index is read-only during querying,
// so the speedup should track the worker count until memory bandwidth
// saturates.
func Parallel(s Setup) ([]Table, error) {
	s.applyDefaults()
	e, err := buildEnv(s, envConfig{kind: dataset.TwitterLike, size: s.twitterDefault()})
	if err != nil {
		return nil, err
	}
	// A bigger batch than the default workload so the fan-out has work.
	queries := e.ds.SampleQueries(8*s.Queries, s.Seed+23)
	t := Table{
		ID:     "parallel",
		Title:  "Batch k-NN throughput vs worker count (paper §8 future work)",
		Note:   "read-only index: speedup should track workers until the memory bus saturates",
		Header: []string{"workers", "total ms", "speedup", "queries/s"},
	}
	var base float64
	maxWorkers := runtime.GOMAXPROCS(0)
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		elapsed := runBatch(e, queries, s.K, s.Lambda, workers)
		ms := float64(elapsed.Microseconds()) / 1000
		if workers == 1 {
			base = ms
		}
		t.Rows = append(t.Rows, []string{
			itoa(workers), f1(ms), f2(base / ms),
			f1(float64(len(queries)) / (ms / 1000)),
		})
	}
	return []Table{t}, nil
}

// runBatch executes queries over a worker pool and returns the wall
// time.
func runBatch(e *env, queries []dataset.Object, k int, lambda float64, workers int) time.Duration {
	start := time.Now()
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				e.idx.Search(&queries[qi], k, lambda, nil)
			}
		}()
	}
	for qi := range queries {
		next <- qi
	}
	close(next)
	wg.Wait()
	return time.Since(start)
}

// Skew probes robustness to query distribution (beyond the paper, which
// samples queries uniformly from the dataset): uniform in-distribution
// queries, queries concentrated in the densest spatial hot spot, and
// out-of-distribution corner queries.
func Skew(s Setup) ([]Table, error) {
	s.applyDefaults()
	e, err := buildEnv(s, envConfig{kind: dataset.TwitterLike, size: s.twitterDefault()})
	if err != nil {
		return nil, err
	}
	uniform := e.ds.SampleQueries(s.Queries, s.Seed+29)

	// Hot-spot queries: the densest 0.1×0.1 cell's objects.
	const cells = 10
	var grid [cells][cells]int
	for i := range e.ds.Objects {
		o := &e.ds.Objects[i]
		cx, cy := cellOf(o.X), cellOf(o.Y)
		grid[cx][cy]++
	}
	bestX, bestY, bestN := 0, 0, -1
	for x := 0; x < cells; x++ {
		for y := 0; y < cells; y++ {
			if grid[x][y] > bestN {
				bestX, bestY, bestN = x, y, grid[x][y]
			}
		}
	}
	var hot []dataset.Object
	for i := range e.ds.Objects {
		o := &e.ds.Objects[i]
		if cellOf(o.X) == bestX && cellOf(o.Y) == bestY {
			hot = append(hot, *o)
			if len(hot) == s.Queries {
				break
			}
		}
	}

	// Out-of-distribution: dataset text vectors placed at the corners.
	var ood []dataset.Object
	corners := [][2]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i := 0; i < s.Queries; i++ {
		q := e.ds.Objects[(i*97+13)%e.ds.Len()]
		c := corners[i%len(corners)]
		q.X, q.Y = c[0], c[1]
		ood = append(ood, q)
	}

	t := Table{
		ID:     "skew",
		Title:  "Query-distribution robustness (beyond the paper)",
		Note:   "visited objects and CSSIA error under uniform, hot-spot, and out-of-distribution queries",
		Header: []string{"workload", "CSSI visited", "CSSIA visited", "CSSIA error"},
	}
	for _, wl := range []struct {
		name    string
		queries []dataset.Object
	}{{"uniform", uniform}, {"hot spot", hot}, {"corners (OOD)", ood}} {
		if len(wl.queries) == 0 {
			continue
		}
		var stC, stA metric.Stats
		var errSum float64
		for qi := range wl.queries {
			exact := e.idx.Search(&wl.queries[qi], s.K, s.Lambda, &stC)
			approx := e.idx.SearchApprox(&wl.queries[qi], s.K, s.Lambda, &stA)
			errSum += knn.ErrorRate(exact, approx)
		}
		n := float64(len(wl.queries))
		t.Rows = append(t.Rows, []string{
			wl.name,
			f1(float64(stC.VisitedObjects) / n),
			f1(float64(stA.VisitedObjects) / n),
			pct(errSum / n),
		})
	}
	return []Table{t}, nil
}

func cellOf(v float64) int {
	c := int(v * 10)
	if c > 9 {
		c = 9
	}
	return c
}
