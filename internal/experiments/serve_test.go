package experiments

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestServeOverloadSmoke runs the serving-under-load experiment at tiny
// scale and gates on its deterministic contracts: the protected config
// sheds load (and the experiment itself verifies in-run that every 429
// carried Retry-After), the cache table clears its built-in exactness
// oracle and the 0.5 hit-ratio floor (both enforced inside Serve — a
// violation surfaces here as an error), and the protected non-shed tail
// stays bounded relative to its own median. Timing cells are otherwise
// ignored. Guarded behind CSSI_SERVE_SMOKE=1 so a regular
// `go test ./...` stays fast and scheduler-noise-free.
func TestServeOverloadSmoke(t *testing.T) {
	if os.Getenv("CSSI_SERVE_SMOKE") == "" {
		t.Skip("set CSSI_SERVE_SMOKE=1 to run the closed-loop overload smoke")
	}
	tables, err := Serve(Setup{Scale: 0.05, Queries: 40, K: 10, Lambda: 0.5, Dim: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("serve produced %d tables, want 2", len(tables))
	}

	tail := tables[0]
	if len(tail.Rows) != 2 {
		t.Fatalf("tail table has %d rows, want 2 (unprotected, protected):\n%v", len(tail.Rows), tail.Rows)
	}
	var protected []string
	for _, row := range tail.Rows {
		if row[0] == "protected" {
			protected = row
		}
	}
	if protected == nil {
		t.Fatalf("no protected row in tail table: %v", tail.Rows)
	}
	cell := func(row []string, i int) float64 {
		t.Helper()
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[i], "%"), 64)
		if err != nil {
			t.Fatalf("cell %d = %q: %v", i, row[i], err)
		}
		return v
	}
	// Columns: config, requests, shed, shed %, partial %, p50, p99, p999, max.
	if shed := cell(protected, 2); shed < 1 {
		t.Fatalf("protected config shed %v requests under sustained overload, want >= 1", shed)
	}
	// Tail sanity, not the ratio: at this tiny scale a query costs
	// ~0.1ms, so a single scheduler-starvation event (~10ms on a busy
	// single-core CI host) dwarfs the median in BOTH configs and a
	// p999/p50 ratio measures the host, not the server. The 5x-of-p50
	// acceptance shape is pinned by the recorded scale-1 run, where the
	// per-query work is large enough to dominate that noise. Here the
	// absolute bound catches the failure mode protections exist for —
	// an unbounded backlog pushing the non-shed tail toward seconds.
	if p999 := cell(protected, 7); p999 > 250 {
		t.Fatalf("protected non-shed p999 %.2fms: bounded queue + deadline should keep the tail far below 250ms", p999)
	}

	cache := tables[1]
	if len(cache.Rows) != 1 {
		t.Fatalf("cache table has %d rows, want 1", len(cache.Rows))
	}
	// Columns: requests, hits, misses, hit ratio, hit µs, miss µs, speedup, oracle checks.
	row := cache.Rows[0]
	if ratio := cell(row, 3); ratio < 0.5 {
		t.Fatalf("cache hit ratio %.3f below 0.5 (Serve should have failed in-run)", ratio)
	}
	if checks := cell(row, 7); checks < 1 {
		t.Fatalf("exactness oracle ran %v checks, want >= 1", checks)
	}
}
