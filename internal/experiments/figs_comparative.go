package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
)

func init() {
	register("fig5", Fig5)
	register("fig6", Fig6)
	register("fig8", Fig8)
	register("fig13", Fig13)
	register("fig14", Fig14)
}

// comparativeBySize runs all five algorithms over a size sweep and
// reports query time and visited objects (the layout of Figs. 5 and 13).
func comparativeBySize(s Setup, kind dataset.Kind, sizes []int, id, flavor, note string) ([]Table, error) {
	timeT := Table{
		ID:     id,
		Title:  "Query time (µs/query) vs |O| — " + flavor,
		Note:   note,
		Header: []string{"|O|", "Scan", "R-tree", "S2R", "CSSI", "CSSIA"},
	}
	visT := Table{
		ID:     id,
		Title:  "Visited objects vs |O| — " + flavor,
		Note:   "visited objects measure pruning; Scan always visits |O|",
		Header: timeT.Header,
	}
	for _, size := range sizes {
		e, err := buildEnv(s, envConfig{kind: kind, size: size, withBaseline: true})
		if err != nil {
			return nil, err
		}
		tRow := []string{itoa(size)}
		vRow := []string{itoa(size)}
		for _, a := range e.algos {
			m := run(e, a.s, s.K, s.Lambda)
			tRow = append(tRow, f1(m.MicrosPerQuery))
			vRow = append(vRow, f1(m.Visited))
		}
		timeT.Rows = append(timeT.Rows, tRow)
		visT.Rows = append(visT.Rows, vRow)
	}
	return []Table{timeT, visT}, nil
}

// Fig5 reproduces the Twitter scalability comparison (Fig. 5): query time
// and visited objects for Scan, R-tree, S2R, CSSI and CSSIA as the data
// grows. Expected shape: CSSIA fastest (2-3× over CSSI), CSSI beats all
// competitors, and on Twitter-like data the index-based baselines do not
// beat Scan (R-tree even loses to it from traversal overhead).
func Fig5(s Setup) ([]Table, error) {
	s.applyDefaults()
	return comparativeBySize(s, dataset.TwitterLike, s.twitterSizes(), "fig5", "Twitter",
		"paper Fig. 5: CSSIA < CSSI << Scan ≈ S2R ≈ R-tree; gains grow with |O|")
}

// Fig13 reproduces the Yelp scalability comparison (Fig. 13). Expected
// shape difference from Fig. 5: the strong spatial clustering of Yelp
// lets the spatial-first baselines (R-tree, S2R) beat Scan, but CSSI and
// CSSIA still win.
func Fig13(s Setup) ([]Table, error) {
	s.applyDefaults()
	return comparativeBySize(s, dataset.YelpLike, s.yelpSizes(), "fig13", "Yelp",
		"paper Fig. 13: index baselines beat Scan here (dense metros), ours beat everything")
}

// Fig6 reproduces the k sweep on Twitter (Fig. 6): beyond k≈50 the curves
// flatten; for small k CSSIA's advantage is largest.
func Fig6(s Setup) ([]Table, error) {
	s.applyDefaults()
	e, err := buildEnv(s, envConfig{kind: dataset.TwitterLike, size: s.twitterDefault(), withBaseline: true})
	if err != nil {
		return nil, err
	}
	timeT := Table{
		ID:     "fig6",
		Title:  "Query time (µs/query) vs k — Twitter",
		Note:   "paper Fig. 6: curves flatten for k > 50; CSSIA gains most at small k",
		Header: []string{"k", "Scan", "R-tree", "S2R", "CSSI", "CSSIA"},
	}
	visT := Table{
		ID:     "fig6",
		Title:  "Visited objects vs k — Twitter",
		Header: timeT.Header,
	}
	for _, k := range []int{5, 10, 25, 50, 100} {
		tRow := []string{itoa(k)}
		vRow := []string{itoa(k)}
		for _, a := range e.algos {
			m := run(e, a.s, k, s.Lambda)
			tRow = append(tRow, f1(m.MicrosPerQuery))
			vRow = append(vRow, f1(m.Visited))
		}
		timeT.Rows = append(timeT.Rows, tRow)
		visT.Rows = append(visT.Rows, vRow)
	}
	return []Table{timeT, visT}, nil
}

// lambdaSweep is the shared shape of Figs. 8 and 14: all five algorithms
// across λ ∈ {0, 0.1, …, 1}, plus CSSIA's error per λ.
func lambdaSweep(s Setup, kind dataset.Kind, size int, id, flavor, note string) ([]Table, error) {
	e, err := buildEnv(s, envConfig{kind: kind, size: size, withBaseline: true})
	if err != nil {
		return nil, err
	}
	timeT := Table{
		ID:     id,
		Title:  "Query time (µs/query) vs λ — " + flavor,
		Note:   note,
		Header: []string{"lambda", "Scan", "R-tree", "S2R", "CSSI", "CSSIA"},
	}
	visT := Table{
		ID:     id,
		Title:  "Visited objects vs λ — " + flavor,
		Header: timeT.Header,
	}
	errT := Table{
		ID:     id,
		Title:  "CSSIA error vs λ — " + flavor,
		Note:   "paper: error < 0.3% everywhere and exactly 0 at λ=1 (pure spatial)",
		Header: []string{"lambda", "error"},
	}
	errQueries := e.ds.SampleQueries(s.ErrorQueries, s.Seed+17)
	for li := 0; li <= 10; li++ {
		lambda := float64(li) / 10
		tRow := []string{f1(lambda)}
		vRow := []string{f1(lambda)}
		for _, a := range e.algos {
			m := run(e, a.s, s.K, lambda)
			tRow = append(tRow, f1(m.MicrosPerQuery))
			vRow = append(vRow, f1(m.Visited))
		}
		timeT.Rows = append(timeT.Rows, tRow)
		visT.Rows = append(visT.Rows, vRow)
		errT.Rows = append(errT.Rows, []string{f1(lambda), pct(errorRate(e, s.K, lambda, errQueries))})
	}
	return []Table{timeT, visT, errT}, nil
}

// Fig8 reproduces the λ sweep on Twitter (Fig. 8): for small λ our
// algorithms dominate while the spatial-first indexes fall behind Scan;
// only for λ > 0.7 do the index baselines beat Scan.
func Fig8(s Setup) ([]Table, error) {
	s.applyDefaults()
	return lambdaSweep(s, dataset.TwitterLike, s.twitterDefault(), "fig8", "Twitter",
		"paper Fig. 8: index baselines beat Scan only for λ > 0.7; ours win for all λ < 1")
}

// Fig14 reproduces the λ sweep on Yelp (Fig. 14): with Yelp's dense
// metros the index baselines win at λ=1, but ours win for the interior
// of the λ range.
func Fig14(s Setup) ([]Table, error) {
	s.applyDefaults()
	return lambdaSweep(s, dataset.YelpLike, s.yelpDefault(), "fig14", "Yelp",
		"paper Fig. 14: spatial-first baselines win only at λ=1; error ≤ 0.2%")
}

// coreOnlyEnv builds an environment with just CSSI/CSSIA (no baselines),
// used by the sensitivity experiments.
func coreOnlyEnv(s Setup, kind dataset.Kind, size int, cfg core.Config) (*env, error) {
	return buildEnv(s, envConfig{kind: kind, size: size, coreCfg: cfg})
}
