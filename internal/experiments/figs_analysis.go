package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metric"
)

func init() {
	register("fig3", Fig3)
	register("fig4", Fig4)
}

// Fig3 reproduces the distance-distribution histograms of Fig. 3: the
// distribution of semantic distances from a random query to every object,
// in the original n-dimensional space and in the m=2 projected space.
// The paper reports the projected distribution being much wider, with
// more than double the variance — the phenomenon motivating CSSIA (§5.1).
func Fig3(s Setup) ([]Table, error) {
	s.applyDefaults()
	e, err := buildEnv(s, envConfig{
		kind: dataset.TwitterLike, size: s.twitterDefault(), queries: 1,
	})
	if err != nil {
		return nil, err
	}
	q := &e.queries[0]
	qProj := e.idx.ProjectQuery(q.Vec)

	const bins = 20
	histN := make([]int, bins)
	histM := make([]int, bins)
	var sumN, sumM, sqN, sqM float64
	n := float64(e.ds.Len())
	for i := range e.ds.Objects {
		dn := e.space.SemanticVec(q.Vec, e.ds.Objects[i].Vec)
		dm := e.idx.ProjectedDistance(qProj, i)
		histN[binOf(dn, bins)]++
		histM[binOf(dm, bins)]++
		sumN += dn
		sumM += dm
		sqN += dn * dn
		sqM += dm * dm
	}
	varN := sqN/n - (sumN/n)*(sumN/n)
	varM := sqM/n - (sumM/n)*(sumM/n)

	hist := Table{
		ID:     "fig3",
		Title:  "Distribution of semantic distances to a random query (original n-dim vs projected m=2)",
		Note:   "paper: the projected distribution is much wider; variance(m=2) more than double variance(n)",
		Header: []string{"bin", "count(n-dim)", "count(m=2)"},
	}
	for b := 0; b < bins; b++ {
		hist.Rows = append(hist.Rows, []string{
			fmt.Sprintf("[%.2f,%.2f)", float64(b)/bins, float64(b+1)/bins),
			itoa(histN[b]), itoa(histM[b]),
		})
	}
	variance := Table{
		ID:     "fig3",
		Title:  "Variance of the two distance distributions",
		Note:   "paper reports 0.0046 (n) vs 0.01 (m=2) on 1M tweets",
		Header: []string{"space", "variance"},
		Rows: [][]string{
			{"original n-dim", fmt.Sprintf("%.5f", varN)},
			{"projected m=2", fmt.Sprintf("%.5f", varM)},
			{"ratio m/n", f2(varM / varN)},
		},
	}
	return []Table{hist, variance}, nil
}

func binOf(v float64, bins int) int {
	b := int(v * float64(bins))
	if b < 0 {
		b = 0
	}
	if b >= bins {
		b = bins - 1
	}
	return b
}

// Fig4 reproduces the cluster-overlap analysis of Fig. 4: the average
// hybrid-cluster diameter (a) and the percentage of hybrid clusters that
// enclose a random query (b), as the number of clusters grows, comparing
// the original-space semantic representation against the projected one.
// The paper finds the n-dimensional diameters barely shrink and 55-60% of
// clusters keep enclosing the query, while the projected representation
// drops toward 0% — the overlap argument of §5.1.
func Fig4(s Setup) ([]Table, error) {
	s.applyDefaults()
	size := s.twitterDefault()
	ds, err := dataset.Generate(dataset.GenConfig{
		Kind: dataset.TwitterLike, Size: size, Dim: s.Dim, Seed: s.Seed + uint64(size),
	})
	if err != nil {
		return nil, err
	}
	diam := Table{
		ID:     "fig4",
		Title:  "Average semantic cluster diameter vs number of hybrid clusters",
		Note:   "paper Fig. 4a: the n-dim diameter barely decreases with more clusters; the m=2 diameter keeps shrinking",
		Header: []string{"hybrid clusters", "avg diam (n-dim)", "avg diam (m=2)"},
	}
	encl := Table{
		ID:     "fig4",
		Title:  "Share of hybrid clusters enclosing a random query",
		Note:   "paper Fig. 4b: 55-60% under the n-dim representation, near 0% under m=2 once clusters are plentiful",
		Header: []string{"hybrid clusters", "enclosing (n-dim)", "enclosing (m=2)"},
	}
	for _, side := range []int{2, 4, 8, 16, 32} {
		space, err := metric.NewSpace(ds)
		if err != nil {
			return nil, err
		}
		idx, err := core.Build(ds, space, core.Config{Ks: side, Kt: side, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		infos := idx.ClusterStats()
		var dN, dM float64
		for _, ci := range infos {
			dN += 2 * ci.SemanticRadius
			dM += 2 * ci.SemanticRadiusProj
		}
		dN /= float64(len(infos))
		dM /= float64(len(infos))
		queries := ds.SampleQueries(s.Queries, s.Seed+13)
		var eN, eM float64
		for qi := range queries {
			o, p := idx.EnclosureRates(&queries[qi])
			eN += o
			eM += p
		}
		eN /= float64(len(queries))
		eM /= float64(len(queries))
		diam.Rows = append(diam.Rows, []string{itoa(len(infos)), f4(dN), f4(dM)})
		encl.Rows = append(encl.Rows, []string{itoa(len(infos)), pct(eN), pct(eM)})
	}
	return []Table{diam, encl}, nil
}
