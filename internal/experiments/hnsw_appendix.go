package experiments

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/hnsw"
	"repro/internal/knn"
)

func init() {
	register("hnsw", HNSWAppendix)
}

// HNSWAppendix reproduces the related-work argument of §2: single-metric
// approximate-NN indexes like HNSW "are not applicable in the context of
// multi-aspect distance functions ... a separate index would need to be
// built for each possible combination of spatial and semantic distances."
//
// The experiment builds one HNSW graph over concatenated
// weight-embedded vectors [√λb·location, √(1−λb)·embedding] (each side
// pre-normalized), which is the closest a single Euclidean index can get
// to the paper's distance — it indexes the L2 mixture
// √(λb·ds² + (1−λb)·dt²) for the one build-time λb. Querying that graph
// at other λ values shows the error exploding, while CSSIA serves every
// λ from one index with sub-1% error.
func HNSWAppendix(s Setup) ([]Table, error) {
	s.applyDefaults()
	const lambdaBuild = 0.5
	e, err := buildEnv(s, envConfig{kind: dataset.TwitterLike, size: s.twitterDefault()})
	if err != nil {
		return nil, err
	}

	// Weight-embedded vectors for the build-time λ.
	embedFor := func(x, y float64, v []float32, lambda float64) []float32 {
		out := make([]float32, 2+len(v))
		ws := sqrtf(lambda) / float32(e.space.DsMax)
		wt := sqrtf(1-lambda) / float32(e.space.DtMax)
		out[0] = float32(x) * ws
		out[1] = float32(y) * ws
		for i, c := range v {
			out[2+i] = c * wt
		}
		return out
	}
	g := hnsw.New(2+s.Dim, hnsw.Config{M: 16, EfConstruction: 128, Seed: s.Seed})
	for i := range e.ds.Objects {
		o := &e.ds.Objects[i]
		g.Add(embedFor(o.X, o.Y, o.Vec, lambdaBuild))
	}

	t := Table{
		ID:    "hnsw",
		Title: "HNSW (single graph, built for λ=0.5) vs CSSIA (one index, all λ) — missed exact neighbors",
		Note: "reproduces §2: a metric-embedding ANN index serves one λ only (and only its L2 mixture); " +
			"the hybrid-cluster index serves every λ",
		Header: []string{"query λ", "HNSW error", "CSSIA error"},
	}
	for li := 0; li <= 10; li += 2 {
		lambda := float64(li) / 10
		var hnswErr, cssiaErr float64
		for qi := range e.queries {
			q := &e.queries[qi]
			exact := e.idx.Search(q, s.K, lambda, nil)
			hres := g.Search(embedFor(q.X, q.Y, q.Vec, lambdaBuild), s.K, 128)
			// HNSW ids are insertion order == dataset positions; map to
			// object IDs for comparison.
			approx := make([]knn.Result, len(hres))
			for i, r := range hres {
				approx[i] = knn.Result{ID: e.ds.Objects[r.ID].ID, Dist: r.Dist}
			}
			hnswErr += knn.ErrorRate(exact, approx)
			cssiaErr += knn.ErrorRate(exact, e.idx.SearchApprox(q, s.K, lambda, nil))
		}
		n := float64(len(e.queries))
		t.Rows = append(t.Rows, []string{f1(lambda), pct(hnswErr / n), pct(cssiaErr / n)})
	}
	return []Table{t}, nil
}

func sqrtf(v float64) float32 {
	if v <= 0 {
		return 0
	}
	return float32(math.Sqrt(v))
}
