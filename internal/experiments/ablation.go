package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metric"
)

func init() {
	register("ablation", Ablation)
}

// Ablation quantifies the contribution of each design choice of CSSI
// (beyond the paper's figures; DESIGN.md calls these out): inter-cluster
// pruning (Lemma 4.4), intra-cluster pruning via the TA-merged array
// (Lemma 4.5), and the ascending lower-bound cluster order (Alg. 2
// line 4). Every configuration returns the exact result — the switches
// only change how much work is needed.
func Ablation(s Setup) ([]Table, error) {
	s.applyDefaults()
	e, err := buildEnv(s, envConfig{kind: dataset.TwitterLike, size: s.twitterDefault()})
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		opts core.AblationOptions
	}{
		{"full CSSI", core.AblationOptions{}},
		{"no inter-cluster pruning", core.AblationOptions{DisableInterCluster: true}},
		{"no intra-cluster pruning", core.AblationOptions{DisableIntraCluster: true}},
		{"no cluster ordering", core.AblationOptions{DisableClusterOrder: true}},
		{"no pruning at all", core.AblationOptions{DisableInterCluster: true, DisableIntraCluster: true}},
	}
	t := Table{
		ID:     "ablation",
		Title:  "CSSI design-choice ablation — Twitter, defaults",
		Note:   "all rows return identical (exact) results; switches only change the work",
		Header: []string{"configuration", "µs/query", "visited", "inter-pruned", "intra-pruned"},
	}
	for _, cfg := range configs {
		var total metric.Stats
		start := time.Now()
		for qi := range e.queries {
			e.idx.SearchAblated(&e.queries[qi], s.K, s.Lambda, cfg.opts, &total)
		}
		elapsed := time.Since(start)
		n := float64(len(e.queries))
		t.Rows = append(t.Rows, []string{
			cfg.name,
			f1(float64(elapsed.Microseconds()) / n),
			f1(float64(total.VisitedObjects) / n),
			f1(float64(total.InterPruned) / n),
			f1(float64(total.IntraPruned) / n),
		})
	}
	return []Table{t}, nil
}
